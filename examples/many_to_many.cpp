// Many-to-many communication on the simulated torus — the "more complex
// many-to-many patterns" the paper's introduction hopes its analysis
// benefits. Uses the library's sparse-pattern API (coll::Pattern /
// coll::run_many_to_many) to compare the direct transport against TPS-style
// two-phase routing as the fan-out grows from a halo exchange toward a
// full all-to-all.
//
//   ./many_to_many --shape 8x8x16 --bytes 960 --fanouts 2,8,32
#include <cstdio>

#include "src/coll/many_to_many.hpp"
#include "src/util/shape_arg.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  cli.describe("shape", "partition (default 8x8x16)");
  cli.describe("bytes", "message bytes per destination (default 960)");
  cli.describe("fanouts", "comma-separated destination counts (default 2,8,32,128)");
  cli.describe("seed", "simulation seed");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x16"), cli.program());
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 960));
  const auto fanouts = util::parse_int_list(cli.get("fanouts", "2,8,32,128"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto nodes = static_cast<std::int32_t>(shape.nodes());

  std::printf("many-to-many on %s: each node sends %llu B to its peers\n\n",
              shape.to_string().c_str(), static_cast<unsigned long long>(bytes));

  auto run = [&](const coll::Pattern& pattern, bool two_phase) {
    coll::ManyToManyOptions options;
    options.net.shape = shape;
    options.net.seed = seed;
    options.msg_bytes = bytes;
    options.two_phase = two_phase;
    const auto result = coll::run_many_to_many(pattern, options);
    if (!result.drained) std::fprintf(stderr, "warning: run stalled\n");
    return result;
  };

  util::Table table({"pattern", "messages", "direct us", "two-phase us", "2ph/direct",
                     "direct link util %"});

  const auto halo = coll::Pattern::halo(shape);
  const auto halo_direct = run(halo, false);
  const auto halo_tps = run(halo, true);
  table.add_row({"6-pt halo", std::to_string(halo_direct.messages),
                 util::fmt(halo_direct.elapsed_us, 1), util::fmt(halo_tps.elapsed_us, 1),
                 util::fmt(halo_tps.elapsed_us / halo_direct.elapsed_us, 2),
                 util::fmt(100.0 * halo_direct.links.overall_mean, 1)});

  for (const auto fanout : fanouts) {
    const auto pattern = coll::Pattern::random_subset(nodes, static_cast<int>(fanout),
                                                      seed ^ 0xabcd);
    const auto direct = run(pattern, false);
    const auto tps = run(pattern, true);
    table.add_row({"random k=" + std::to_string(fanout), std::to_string(direct.messages),
                   util::fmt(direct.elapsed_us, 1), util::fmt(tps.elapsed_us, 1),
                   util::fmt(tps.elapsed_us / direct.elapsed_us, 2),
                   util::fmt(100.0 * direct.links.overall_mean, 1)});
  }
  table.print();
  std::printf("\nSparse patterns are latency-bound and gain nothing from two-phase\n"
              "routing; as the fan-out approaches all-to-all on an asymmetric torus,\n"
              "the congestion-avoidance of the two-phase schedule starts to pay.\n");
  return 0;
}
