// Interactive exploration: run every all-to-all strategy on one partition
// across a size sweep and print a comparison matrix plus per-axis link
// utilization — the tool for reproducing the paper's "which strategy where"
// conclusions on arbitrary shapes.
//
//   ./strategy_explorer --shape 8x32x16 --sizes 8,64,240,960
#include <cstdio>
#include <vector>

#include "src/coll/direct.hpp"
#include "src/coll/schedule.hpp"
#include "src/coll/alltoall.hpp"
#include "src/coll/registry.hpp"
#include "src/network/fabric.hpp"
#include "src/trace/heatmap.hpp"
#include "src/util/shape_arg.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  cli.describe("shape", "partition (default 8x8x16)");
  cli.describe("sizes", "comma-separated payload sizes (default 8,64,240,960)");
  cli.describe("seed", "simulation seed");
  cli.describe("links", "also print per-axis link utilization per run");
  cli.describe("heatmap", "print an AR link-utilization heatmap first");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x16"), cli.program());
  auto sizes = util::parse_int_list(cli.get("sizes", "8,64,240,960"));
  const bool show_links = cli.get_bool("links", false);

  std::printf("strategy comparison on %s (%lld nodes); cells are %% of Eq. 2 peak\n\n",
              shape.to_string().c_str(), static_cast<long long>(shape.nodes()));

  if (cli.get_bool("heatmap", false)) {
    // One AR run with direct fabric access for the utilization pictures.
    bgl::net::NetworkConfig config;
    config.shape = shape;
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    coll::ScheduleExecutor client(
        config, coll::build_direct_schedule(config, 240, coll::DirectTuning::ar()),
        nullptr);
    bgl::net::Fabric fabric(config, client);
    client.bind(fabric);
    if (fabric.run()) {
      const auto elapsed = fabric.stats().last_delivery;
      std::printf("AR link utilization, 240 B message:\n%s\n%s\n",
                  trace::axis_summary(fabric, elapsed).c_str(),
                  trace::plane_heatmap(fabric, elapsed, 0).c_str());
    }
  }

  std::vector<std::string> headers = {"strategy"};
  for (const auto size : sizes) {
    headers.push_back(util::fmt_bytes(static_cast<std::uint64_t>(size)));
  }
  util::Table table(headers);

  // The registry enumerates every concrete strategy, so a new schedule
  // builder shows up in the matrix without touching this tool.
  for (const auto& info : coll::strategy_registry()) {
    std::vector<std::string> row = {info.name};
    for (const auto size : sizes) {
      coll::AlltoallOptions options;
      options.net.shape = shape;
      options.net.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
      options.msg_bytes = static_cast<std::uint64_t>(size);
      const auto result = coll::run_alltoall(info.kind, options);
      row.push_back(util::fmt(result.percent_peak, 1));
      if (show_links) {
        std::printf("%-12s %6sB: %s\n", result.strategy.c_str(),
                    util::fmt_bytes(options.msg_bytes).c_str(),
                    result.links.to_string().c_str());
      }
    }
    table.add_row(std::move(row));
  }
  if (show_links) std::printf("\n");
  table.print();
  return 0;
}
