// Message-size sweep across strategies with optional CSV/JSON output — the
// workhorse for producing Figure 6/7-style plots on any partition.
//
//   ./latency_sweep --shape 8x8x16 --sizes 1,8,64,240,960 --jobs 8 --csv sweep.csv
//
// Every (size, strategy) point is an independent simulation; --jobs N runs
// them on N worker threads with per-job seeds derived from --seed, so the
// table is bit-identical whatever the thread count.
#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/bench.hpp"
#include "src/util/shape_arg.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = harness::BenchContext::from_cli(cli);
  cli.describe("shape", "partition (default 8x8x8)");
  cli.describe("sizes", "comma-separated payload sizes (default 1,8,32,64,240,960)");
  cli.describe("strategies", "comma list of mpi,ar,dr,throttle,tps,vmesh (default ar,tps,vmesh)");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x8"), cli.program());
  const auto sizes = util::parse_int_list(cli.get("sizes", "1,8,32,64,240,960"));

  std::vector<coll::StrategyKind> kinds;
  {
    const std::string spec = cli.get("strategies", "ar,tps,vmesh");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const auto comma = spec.find(',', pos);
      const auto name = spec.substr(pos, comma == std::string::npos ? spec.npos : comma - pos);
      if (name == "mpi") kinds.push_back(coll::StrategyKind::kMpi);
      else if (name == "ar") kinds.push_back(coll::StrategyKind::kAdaptiveRandom);
      else if (name == "dr") kinds.push_back(coll::StrategyKind::kDeterministic);
      else if (name == "throttle") kinds.push_back(coll::StrategyKind::kThrottled);
      else if (name == "tps") kinds.push_back(coll::StrategyKind::kTwoPhase);
      else if (name == "vmesh") kinds.push_back(coll::StrategyKind::kVirtualMesh);
      else {
        std::fprintf(stderr, "unknown strategy: %s\n", name.c_str());
        return 1;
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  harness::Sweep sweep;
  for (const auto size : sizes) {
    for (const auto kind : kinds) {
      sweep.add(kind, ctx.base_options(shape, static_cast<std::uint64_t>(size)));
    }
  }
  const auto results = ctx.run(sweep);

  std::printf("all-to-all time (us) on %s\n\n", shape.to_string().c_str());
  std::vector<std::string> headers = {"msg bytes"};
  for (const auto kind : kinds) headers.push_back(coll::strategy_name(kind));
  util::Table table(headers);

  std::size_t job = 0;
  for (const auto size : sizes) {
    std::vector<std::string> row = {util::fmt_bytes(static_cast<std::uint64_t>(size))};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      row.push_back(util::fmt(results[job++].run.elapsed_us, 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
