// Message-size sweep across strategies with optional CSV output — the
// workhorse for producing Figure 6/7-style plots on any partition.
//
//   ./latency_sweep --shape 8x8x16 --sizes 1,8,64,240,960 --csv sweep.csv
#include <cstdio>
#include <memory>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/trace/csv.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  cli.describe("shape", "partition (default 8x8x8)");
  cli.describe("sizes", "comma-separated payload sizes (default 1,8,32,64,240,960)");
  cli.describe("strategies", "comma list of mpi,ar,dr,throttle,tps,vmesh (default ar,tps,vmesh)");
  cli.describe("csv", "also write results to this CSV file");
  cli.describe("seed", "simulation seed");
  cli.validate();

  const auto shape = topo::parse_shape(cli.get("shape", "8x8x8"));
  const auto sizes = util::parse_int_list(cli.get("sizes", "1,8,32,64,240,960"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::vector<coll::StrategyKind> kinds;
  {
    const std::string spec = cli.get("strategies", "ar,tps,vmesh");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const auto comma = spec.find(',', pos);
      const auto name = spec.substr(pos, comma == std::string::npos ? spec.npos : comma - pos);
      if (name == "mpi") kinds.push_back(coll::StrategyKind::kMpi);
      else if (name == "ar") kinds.push_back(coll::StrategyKind::kAdaptiveRandom);
      else if (name == "dr") kinds.push_back(coll::StrategyKind::kDeterministic);
      else if (name == "throttle") kinds.push_back(coll::StrategyKind::kThrottled);
      else if (name == "tps") kinds.push_back(coll::StrategyKind::kTwoPhase);
      else if (name == "vmesh") kinds.push_back(coll::StrategyKind::kVirtualMesh);
      else {
        std::fprintf(stderr, "unknown strategy: %s\n", name.c_str());
        return 1;
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  std::unique_ptr<trace::CsvWriter> csv;
  if (cli.has("csv")) {
    csv = std::make_unique<trace::CsvWriter>(
        cli.get("csv", ""),
        std::vector<std::string>{"shape", "strategy", "msg_bytes", "elapsed_us",
                                 "percent_peak", "per_node_mbps"});
  }

  std::printf("all-to-all time (us) on %s\n\n", shape.to_string().c_str());
  std::vector<std::string> headers = {"msg bytes"};
  for (const auto kind : kinds) headers.push_back(coll::strategy_name(kind));
  util::Table table(headers);

  for (const auto size : sizes) {
    std::vector<std::string> row = {util::fmt_bytes(static_cast<std::uint64_t>(size))};
    for (const auto kind : kinds) {
      coll::AlltoallOptions options;
      options.net.shape = shape;
      options.net.seed = seed;
      options.msg_bytes = static_cast<std::uint64_t>(size);
      const auto result = coll::run_alltoall(kind, options);
      row.push_back(util::fmt(result.elapsed_us, 1));
      if (csv) {
        csv->row({shape.to_string(), result.strategy, std::to_string(size),
                  util::fmt(result.elapsed_us, 3), util::fmt(result.percent_peak, 2),
                  util::fmt(result.per_node_mbps, 1)});
      }
    }
    table.add_row(std::move(row));
  }
  table.print();
  if (csv) std::printf("\nwrote %zu CSV rows\n", csv->rows_written());
  return 0;
}
