// Domain example: the all-to-all transpose inside a distributed 2-D FFT.
//
// A pencil-decomposed FFT of an N x N complex grid on P nodes performs the
// row->column redistribution as an all-to-all personalized exchange where
// every pair of nodes swaps an (N/P) x (N/P) tile of 16-byte complex
// doubles. This is the paper's canonical motivating workload: the transpose
// dominates FFT scaling on large machines, and its message size shrinks
// quadratically with P — exactly the regime where strategy choice matters.
//
//   ./fft_transpose --shape 8x8x16 --n 4096
#include <cstdio>

#include "src/coll/alltoall.hpp"
#include "src/coll/selector.hpp"
#include "src/util/shape_arg.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  cli.describe("shape", "partition (default 8x8x16)");
  cli.describe("n", "FFT grid extent N for the N x N transform (default 4096)");
  cli.describe("seed", "simulation seed");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x16"), cli.program());
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const auto nodes = static_cast<std::uint64_t>(shape.nodes());

  // Tile exchanged per node pair: (N/P rows) x (N/P cols) complex doubles.
  const std::uint64_t tile_elems = (n / nodes) * (n / nodes);
  const std::uint64_t tile_bytes = tile_elems * 16;
  if (n % nodes != 0 || tile_bytes == 0) {
    std::fprintf(stderr, "N=%llu must be a multiple of P=%llu with a non-empty tile\n",
                 static_cast<unsigned long long>(n), static_cast<unsigned long long>(nodes));
    return 1;
  }

  std::printf("2-D FFT transpose: N=%llu grid on %s (%llu nodes)\n",
              static_cast<unsigned long long>(n), shape.to_string().c_str(),
              static_cast<unsigned long long>(nodes));
  std::printf("per-pair tile: %llu complex values = %llu bytes\n\n",
              static_cast<unsigned long long>(tile_elems),
              static_cast<unsigned long long>(tile_bytes));

  const auto selection = coll::select_strategy(shape, tile_bytes);
  std::printf("selector recommends %s: %s\n\n",
              coll::strategy_name(selection.kind).c_str(), selection.rationale.c_str());

  util::Table table({"strategy", "transpose us", "% of peak", "per-node MB/s"});
  for (const auto kind : {coll::StrategyKind::kAdaptiveRandom, coll::StrategyKind::kTwoPhase,
                          coll::StrategyKind::kVirtualMesh}) {
    coll::AlltoallOptions options;
    options.net.shape = shape;
    options.net.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    options.msg_bytes = tile_bytes;
    const auto result = coll::run_alltoall(kind, options);
    table.add_row({result.strategy, util::fmt(result.elapsed_us, 1),
                   util::fmt(result.percent_peak, 1), util::fmt(result.per_node_mbps, 0)});
  }
  table.print();
  std::printf("\nOne FFT needs two such transposes per timestep; a 20%% all-to-all win is\n"
              "a direct end-to-end speedup at scale.\n");
  return 0;
}
