// Quickstart: run one all-to-all on a simulated BG/L partition and print the
// headline numbers.
//
//   ./quickstart --shape 8x8x8 --strategy ar --bytes 4096
//
// Strategies: mpi, ar, dr, throttle, tps, vmesh, best.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/coll/alltoall.hpp"
#include "src/coll/selector.hpp"
#include "src/network/faults.hpp"
#include "src/trace/stats.hpp"
#include "src/util/cli.hpp"
#include "src/util/shape_arg.hpp"

namespace {

bgl::coll::StrategyKind parse_strategy(const std::string& name) {
  using bgl::coll::StrategyKind;
  if (name == "mpi") return StrategyKind::kMpi;
  if (name == "ar") return StrategyKind::kAdaptiveRandom;
  if (name == "dr") return StrategyKind::kDeterministic;
  if (name == "throttle") return StrategyKind::kThrottled;
  if (name == "tps") return StrategyKind::kTwoPhase;
  if (name == "vmesh") return StrategyKind::kVirtualMesh;
  if (name == "best") return StrategyKind::kBest;
  throw std::runtime_error("unknown strategy: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  bgl::util::Cli cli(argc, argv);
  cli.describe("shape", "partition, e.g. 8x8x8 or 8x8x2M (default 8x8x8)");
  cli.describe("strategy", "mpi|ar|dr|throttle|tps|vmesh|best (default best)");
  cli.describe("bytes", "message payload per destination (default 4096)");
  cli.describe("seed", "simulation seed (default 1)");
  cli.describe("vc", "VC buffer capacity in 32 B chunks");
  cli.describe("vcs", "number of dynamic VCs");
  cli.describe("fifos", "injection FIFOs per node");
  cli.describe("fifosize", "injection FIFO capacity in chunks");
  cli.describe("cpulinks", "links the core can keep busy");
  cli.describe("faults", "fault spec, e.g. link:0.02,drop:1e-5 (see --faults "
                         "in any bench)");
  cli.describe("sim-threads", "simulator slab workers; results are "
                              "deterministic per (seed, N) (default 1)");
  cli.describe("verify", "check every pair's payload arrived exactly once");
  cli.validate();

  bgl::coll::AlltoallOptions options;
  options.net.shape = bgl::util::shape_arg_or_exit(cli.get("shape", "8x8x8"), "quickstart");
  options.net.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  options.net.vc_capacity_chunks =
      static_cast<std::uint16_t>(cli.get_int("vc", options.net.vc_capacity_chunks));
  options.net.dynamic_vcs =
      static_cast<std::uint8_t>(cli.get_int("vcs", options.net.dynamic_vcs));
  options.net.injection_fifos =
      static_cast<std::uint8_t>(cli.get_int("fifos", options.net.injection_fifos));
  options.net.injection_fifo_chunks =
      static_cast<std::uint16_t>(cli.get_int("fifosize", options.net.injection_fifo_chunks));
  options.net.cpu_links = cli.get_double("cpulinks", options.net.cpu_links);
  options.net.sim_threads = static_cast<int>(cli.get_int("sim-threads", 1));
  if (options.net.sim_threads < 1) {
    std::fprintf(stderr, "%s: error: option --sim-threads: must be >= 1, got %d\n",
                 cli.program().c_str(), options.net.sim_threads);
    return 2;
  }
  options.msg_bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 4096));
  const std::string fault_spec = cli.get("faults", "");
  if (!fault_spec.empty()) {
    options.net.faults = bgl::net::parse_fault_spec(fault_spec);
    options.verify = true;
  }
  if (cli.get_bool("verify", false)) options.verify = true;
  const auto kind = parse_strategy(cli.get("strategy", "best"));

  if (kind == bgl::coll::StrategyKind::kBest) {
    const bgl::net::FaultPlan plan(options.net, options.net.shape);
    const auto selection = bgl::coll::select_strategy(
        options.net.shape, options.msg_bytes, plan.enabled() ? &plan : nullptr);
    std::printf("selector: %s (%s)\n",
                bgl::coll::strategy_name(selection.kind).c_str(),
                selection.rationale.c_str());
  }

  const auto result = bgl::coll::run_alltoall(kind, options);

  std::printf("strategy        %s\n", result.strategy.c_str());
  std::printf("partition       %s (%lld nodes)\n", result.shape.to_string().c_str(),
              static_cast<long long>(result.shape.nodes()));
  std::printf("message         %llu bytes per destination\n",
              static_cast<unsigned long long>(result.msg_bytes));
  std::printf("completed       %s\n", result.drained ? "yes" : "NO (stalled!)");
  std::printf("elapsed         %.1f us (%llu cycles)\n", result.elapsed_us,
              static_cast<unsigned long long>(result.elapsed_cycles));
  std::printf("percent of peak %.1f%%\n", result.percent_peak);
  std::printf("per-node rate   %.1f MB/s\n", result.per_node_mbps);
  std::printf("packets         %llu delivered, %llu sim events\n",
              static_cast<unsigned long long>(result.packets_delivered),
              static_cast<unsigned long long>(result.events));
  if (options.verify || options.net.sim_threads > 1) {
    std::printf("sim threads     %d (%s)\n", result.sim_threads,
                bgl::net::to_string(result.sim_threads_reason));
  }
  std::printf("link util       %s\n", result.links.to_string().c_str());
  if (!fault_spec.empty()) {
    const bgl::net::FaultPlan plan(options.net, options.net.shape);
    const std::string report =
        bgl::trace::summarize_faults(plan, result.faults, result.reliability);
    if (!report.empty()) std::printf("%s\n", report.c_str());
    const std::string recovery = bgl::trace::summarize_recovery(
        result.epochs.epochs, result.epochs.replans, result.epochs.replan_cycles,
        result.epochs.residual_pairs, result.epochs.recovered_bytes,
        result.epochs.corruption_retransmits);
    if (!recovery.empty()) std::printf("%s\n", recovery.c_str());
    std::printf("delivery        %llu/%llu pairs complete, %llu unreachable%s\n",
                static_cast<unsigned long long>(result.pairs_complete),
                static_cast<unsigned long long>(
                    static_cast<std::uint64_t>(result.shape.nodes()) *
                    static_cast<std::uint64_t>(result.shape.nodes() - 1)),
                static_cast<unsigned long long>(result.unreachable_pairs),
                result.reachable_complete ? "" : "  [reachable pairs MISSING]");
  }
  return result.drained ? 0 : 1;
}
