// HPCC RandomAccess (GUPS)-style workload: every node issues a stream of
// tiny 8-byte updates to uniformly random nodes. The paper credits its
// indirect strategies to this benchmark's optimization (its reference [5]:
// software routing and aggregation of messages), and Section 4.2's virtual
// mesh is the same idea applied to all-to-all.
//
// Two implementations over the simulated torus:
//   direct:     one 64-byte packet per update (48 B header + 8 B payload,
//               rounded up) — the naive scheme;
//   aggregated: updates are bucketed per row peer of a 2-D virtual mesh and
//               flushed as combined messages (Section 4.2's two-phase
//               combining), amortizing header and startup across updates.
//
//   ./gups --shape 8x8x8 --updates 256
#include <cstdio>

#include "src/coll/alltoall.hpp"
#include "src/coll/vmesh.hpp"
#include "src/model/peak.hpp"
#include "src/util/shape_arg.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  cli.describe("shape", "partition (default 8x8x8)");
  cli.describe("updates", "updates issued per node (default 256)");
  cli.describe("seed", "simulation seed");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x8"), cli.program());
  const auto updates = static_cast<std::uint64_t>(cli.get_int("updates", 256));
  const auto nodes = static_cast<std::uint64_t>(shape.nodes());
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // A uniform random-update stream of U updates per node is, in expectation,
  // an all-to-all with m = 8*U/(P-1) bytes per pair; we model the two GUPS
  // variants through the equivalent collective, which exercises exactly the
  // same network paths and software costs.
  const std::uint64_t bytes_per_pair =
      std::max<std::uint64_t>(1, 8 * updates / (nodes - 1));

  std::printf("GUPS-style random access on %s: %llu updates of 8 B per node\n",
              shape.to_string().c_str(), static_cast<unsigned long long>(updates));
  std::printf("equivalent all-to-all payload: %llu B per pair\n\n",
              static_cast<unsigned long long>(bytes_per_pair));

  util::Table table({"scheme", "time us", "MUP/s per node", "speedup"});
  double direct_us = 0.0;
  for (const bool aggregated : {false, true}) {
    coll::AlltoallOptions options;
    options.net.shape = shape;
    options.net.seed = seed;
    options.msg_bytes = bytes_per_pair;
    const auto kind = aggregated ? coll::StrategyKind::kVirtualMesh
                                 : coll::StrategyKind::kAdaptiveRandom;
    const auto result = coll::run_alltoall(kind, options);
    if (!aggregated) direct_us = result.elapsed_us;
    const double updates_done = static_cast<double>(bytes_per_pair) / 8.0 *
                                static_cast<double>(nodes - 1);
    const double mups = updates_done / result.elapsed_us;  // updates/us == MUP/s
    table.add_row({aggregated ? "aggregated (VMesh)" : "direct (64 B packets)",
                   util::fmt(result.elapsed_us, 1), util::fmt(mups, 2),
                   util::fmt(direct_us / result.elapsed_us, 2)});
  }
  table.print();
  std::printf("\nAggregation amortizes the 48-byte header and per-message startup over\n"
              "many updates — the effect behind the paper's 2x+ short-message win and\n"
              "the HPCC RandomAccess optimization it cites.\n");
  return 0;
}
