// Deterministic parallel execution of independent, index-addressed jobs.
//
// run_indexed(count, jobs, body) runs body(0), ..., body(count-1) on a
// fixed-size ThreadPool and returns once every job has finished. Jobs write
// into slots addressed by their own index, so results are ordered by job
// index regardless of how many workers ran or in what order jobs completed.
// If jobs throw, the exception of the lowest-index failing job is rethrown
// after all jobs have run (later exceptions are dropped).
//
// An optional per-index cost vector feeds the pool's longest-first
// dispatch: expensive jobs start first, cutting the tail when job sizes are
// uneven. Costs change scheduling only, never results.
//
// derive_seed(base, index) gives each job an RNG seed that is a pure
// function of the base seed and the job's index — the property that makes a
// parallel sweep bit-identical to a serial one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "src/util/rng.hpp"

namespace bgl::harness {

/// Per-job seed: the splitmix64 output stream of `base_seed`, decorrelated
/// by job index. Distinct indices (and distinct bases) give independent
/// seeds; index 0 never returns `base_seed` itself.
constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                    std::uint64_t job_index) noexcept {
  std::uint64_t state = base_seed + job_index * 0x9e3779b97f4a7c15ULL;
  return util::splitmix64(state);
}

/// Runs body(index) for every index in [0, count) on `jobs` worker threads
/// (0 = one per hardware thread; always clamped to [1, count]). Blocks
/// until all jobs finish; rethrows the lowest-index job exception. When
/// `costs` is non-empty it must have `count` entries; higher-cost indices
/// are dispatched first.
void run_indexed(std::size_t count, int jobs,
                 const std::function<void(std::size_t)>& body,
                 const std::vector<std::uint64_t>& costs = {});

/// Typed wrapper: returns {fn(0), ..., fn(count-1)} in index order. The
/// result type must be default-constructible and movable; each slot is
/// written by exactly one job.
template <typename Fn>
auto run_ordered(std::size_t count, int jobs, Fn&& fn,
                 const std::vector<std::uint64_t>& costs = {}) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<R>,
                "run_ordered results are pre-sized; R needs a default ctor");
  std::vector<R> results(count);
  run_indexed(
      count, jobs, [&](std::size_t index) { results[index] = fn(index); }, costs);
  return results;
}

}  // namespace bgl::harness
