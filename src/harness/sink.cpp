#include "src/harness/sink.hpp"

#include <cstdlib>
#include <stdexcept>

namespace bgl::harness {

namespace {

/// True if the whole cell parses as a finite decimal number (what strtod
/// accepts), so JSON can carry it unquoted.
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(cell.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void CsvSink::begin(const std::vector<std::string>& columns) {
  writer_ = std::make_unique<trace::CsvWriter>(path_, columns);
}

void CsvSink::row(const std::vector<std::string>& cells) {
  writer_->row(cells);
  ++rows_;
}

void CsvSink::end() { writer_.reset(); }

JsonSink::~JsonSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonSink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("JsonSink: cannot create " + path_);
  }
  std::fputs("[", file_);
}

void JsonSink::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("JsonSink: row width does not match columns");
  }
  std::fputs(rows_ == 0 ? "\n" : ",\n", file_);
  std::fputs("  {", file_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) std::fputs(", ", file_);
    std::fprintf(file_, "\"%s\": ", json_escape(columns_[i]).c_str());
    if (looks_numeric(cells[i])) {
      std::fputs(cells[i].c_str(), file_);
    } else {
      std::fprintf(file_, "\"%s\"", json_escape(cells[i]).c_str());
    }
  }
  std::fputs("}", file_);
  ++rows_;
}

void JsonSink::end() {
  if (file_ == nullptr) return;
  std::fputs(rows_ == 0 ? "]\n" : "\n]\n", file_);
  std::fclose(file_);
  file_ = nullptr;
}

void MultiSink::begin(const std::vector<std::string>& columns) {
  for (auto* sink : sinks_) sink->begin(columns);
}

void MultiSink::row(const std::vector<std::string>& cells) {
  for (auto* sink : sinks_) sink->row(cells);
}

void MultiSink::end() {
  for (auto* sink : sinks_) sink->end();
}

}  // namespace bgl::harness
