#include "src/harness/sink.hpp"

#include <cstdlib>
#include <stdexcept>

namespace bgl::harness {

namespace {

/// True if the whole cell parses as a finite decimal number (what strtod
/// accepts), so JSON can carry it unquoted.
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(cell.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void CsvSink::begin(const std::vector<std::string>& columns) {
  writer_ = std::make_unique<trace::CsvWriter>(path_, columns);
}

void CsvSink::row(const std::vector<std::string>& cells) {
  writer_->row(cells);
  ++rows_;
}

void CsvSink::end() { writer_.reset(); }

JsonSink::~JsonSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonSink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("JsonSink: cannot create " + path_);
  }
  std::fputs("[", file_);
}

void JsonSink::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("JsonSink: row width does not match columns");
  }
  std::fputs(rows_ == 0 ? "\n" : ",\n", file_);
  std::fputs("  {", file_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) std::fputs(", ", file_);
    std::fprintf(file_, "\"%s\": ", json_escape(columns_[i]).c_str());
    if (looks_numeric(cells[i])) {
      std::fputs(cells[i].c_str(), file_);
    } else {
      std::fprintf(file_, "\"%s\"", json_escape(cells[i]).c_str());
    }
  }
  std::fputs("}", file_);
  ++rows_;
}

void JsonSink::end() {
  if (file_ == nullptr) return;
  std::fputs(rows_ == 0 ? "]\n" : "\n]\n", file_);
  std::fclose(file_);
  file_ = nullptr;
}

namespace {

std::string slurp_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw std::runtime_error("merge: cannot open " + path);
  std::string text;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

void write_file(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw std::runtime_error("merge: cannot create " + path);
  if (!text.empty() && std::fwrite(text.data(), 1, text.size(), file) != text.size()) {
    std::fclose(file);
    throw std::runtime_error("merge: short write to " + path);
  }
  std::fclose(file);
}

}  // namespace

void merge_csv_shards(const std::vector<std::string>& inputs,
                      const std::string& output) {
  if (inputs.empty()) throw std::runtime_error("merge: no CSV shards given");
  std::string merged;
  std::string header;
  for (const auto& path : inputs) {
    const std::string text = slurp_file(path);
    const auto newline = text.find('\n');
    if (newline == std::string::npos) {
      throw std::runtime_error("merge: " + path + " has no CSV header line");
    }
    const std::string this_header = text.substr(0, newline + 1);
    if (header.empty()) {
      header = this_header;
      merged = text;
    } else if (this_header != header) {
      throw std::runtime_error("merge: " + path +
                               " has a different CSV header than the first shard");
    } else {
      merged += text.substr(newline + 1);  // body rows only
    }
  }
  write_file(output, merged);
}

void merge_json_shards(const std::vector<std::string>& inputs,
                       const std::string& output) {
  if (inputs.empty()) throw std::runtime_error("merge: no JSON shards given");
  // Collect each shard's row block (the text between "[\n" and "\n]\n" as
  // JsonSink writes it; an empty shard is "[]\n").
  std::vector<std::string> blocks;
  for (const auto& path : inputs) {
    const std::string text = slurp_file(path);
    if (text == "[]\n" || text == "[]") continue;  // empty shard
    const std::string open = "[\n";
    const std::string close = "\n]\n";
    if (text.size() < open.size() + close.size() ||
        text.compare(0, open.size(), open) != 0 ||
        text.compare(text.size() - close.size(), close.size(), close) != 0) {
      throw std::runtime_error("merge: " + path +
                               " is not a harness JSON result array");
    }
    blocks.push_back(text.substr(open.size(), text.size() - open.size() - close.size()));
  }
  if (blocks.empty()) {
    write_file(output, "[]\n");
    return;
  }
  std::string merged = "[\n";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) merged += ",\n";
    merged += blocks[i];
  }
  merged += "\n]\n";
  write_file(output, merged);
}

void MultiSink::begin(const std::vector<std::string>& columns) {
  for (auto* sink : sinks_) sink->begin(columns);
}

void MultiSink::row(const std::vector<std::string>& cells) {
  for (auto* sink : sinks_) sink->row(cells);
}

void MultiSink::end() {
  for (auto* sink : sinks_) sink->end();
}

}  // namespace bgl::harness
