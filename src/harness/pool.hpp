// Fixed-size worker thread pool for independent simulation jobs.
//
// Every point of a bench sweep is a self-contained single-threaded Fabric
// run, so the pool needs no shared state beyond the task queue: tasks are
// submitted up front, workers drain the queue, and wait() blocks until all
// submitted work has finished. Tasks must not throw — the runner layer
// (runner.hpp) wraps each job to capture its exception per index.
//
// Dispatch is longest-first: each task carries a cost hint (for sweeps,
// nodes x msg_bytes) and the queue is a max-heap on it, so the most
// expensive simulations start first and one big partition no longer
// dominates the tail of the sweep. Equal-cost tasks run in submission
// order. Results are index-addressed by the runner, so dispatch order never
// affects output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bgl::harness {

class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Waits for all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; higher `cost` tasks are dispatched first, ties in
  /// submission order (cost 0 == plain FIFO among themselves).
  void submit(std::function<void()> task, std::uint64_t cost = 0);

  /// Blocks until every task submitted so far has completed.
  void wait();

  int threads() const noexcept { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency(), with a fallback of 1 when the
  /// runtime cannot determine it.
  static int default_threads();

 private:
  struct QueuedTask {
    std::uint64_t cost = 0;
    std::uint64_t sequence = 0;  // FIFO tie-break among equal costs
    std::function<void()> fn;
  };
  /// Heap order: highest cost first, then lowest sequence number.
  static bool heap_before(const QueuedTask& a, const QueuedTask& b) noexcept {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.sequence > b.sequence;
  }

  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::vector<QueuedTask> queue_;  // max-heap via std::push_heap/pop_heap
  std::uint64_t next_sequence_ = 0;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bgl::harness
