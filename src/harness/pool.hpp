// Fixed-size worker thread pool for independent simulation jobs.
//
// Every point of a bench sweep is a self-contained single-threaded Fabric
// run, so the pool needs no shared state beyond the task queue: tasks are
// submitted up front, workers drain the queue, and wait() blocks until all
// submitted work has finished. Tasks must not throw — the runner layer
// (runner.hpp) wraps each job to capture its exception per index.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bgl::harness {

class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Waits for all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void wait();

  int threads() const noexcept { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency(), with a fallback of 1 when the
  /// runtime cannot determine it.
  static int default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bgl::harness
