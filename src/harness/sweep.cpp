#include "src/harness/sweep.hpp"

#include <chrono>

#include "src/harness/runner.hpp"
#include "src/util/table.hpp"

namespace bgl::harness {

std::size_t Sweep::add(coll::StrategyKind kind, const coll::AlltoallOptions& options,
                       std::string label) {
  SimJob job;
  job.label = std::move(label);
  job.kind = kind;
  job.options = options;
  if (job.label.empty()) {
    job.label = options.net.shape.to_string() + "/" +
                util::fmt_bytes(options.msg_bytes) + "/" + strategy_name(kind);
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::vector<SimResult> Sweep::run(const SweepOptions& options) const {
  using clock = std::chrono::steady_clock;
  return run_ordered(jobs_.size(), options.jobs, [&](std::size_t index) {
    const SimJob& job = jobs_[index];
    SimResult result;
    result.index = index;
    result.label = job.label;

    auto sim_options = job.options;
    if (options.derive_seeds) {
      sim_options.net.seed = derive_seed(options.base_seed, index);
    }
    result.seed = sim_options.net.seed;

    const auto start = clock::now();
    result.run = coll::run_alltoall(job.kind, sim_options);
    const std::chrono::duration<double, std::milli> wall = clock::now() - start;
    result.wall_ms = wall.count();
    result.events_per_sec =
        result.wall_ms > 0.0
            ? static_cast<double>(result.run.events) / (result.wall_ms / 1000.0)
            : 0.0;
    return result;
  });
}

std::vector<std::string> result_columns() {
  return {"label",        "strategy",  "shape",         "msg_bytes",
          "elapsed_us",   "percent_peak", "per_node_mbps", "packets_delivered",
          "events",       "drained",   "seed",          "wall_ms",
          "events_per_sec"};
}

std::vector<std::string> result_cells(const SimResult& result) {
  const auto& run = result.run;
  return {result.label,
          run.strategy,
          run.shape.to_string(),
          std::to_string(run.msg_bytes),
          util::fmt(run.elapsed_us, 3),
          util::fmt(run.percent_peak, 2),
          util::fmt(run.per_node_mbps, 1),
          std::to_string(run.packets_delivered),
          std::to_string(run.events),
          run.drained ? "1" : "0",
          std::to_string(result.seed),
          util::fmt(result.wall_ms, 3),
          util::fmt(result.events_per_sec, 0)};
}

void emit(const std::vector<SimResult>& results, ResultSink& sink) {
  sink.begin(result_columns());
  for (const auto& result : results) sink.row(result_cells(result));
  sink.end();
}

std::string throughput_summary(const std::vector<SimResult>& results, int threads,
                               double sweep_wall_ms) {
  double sim_ms = 0.0;
  double events = 0.0;
  for (const auto& result : results) {
    sim_ms += result.wall_ms;
    events += static_cast<double>(result.run.events);
  }
  const double mev_per_sec =
      sweep_wall_ms > 0.0 ? events / 1000.0 / sweep_wall_ms : 0.0;
  return std::to_string(results.size()) + " jobs on " + std::to_string(threads) +
         " thread(s): " + util::fmt(sweep_wall_ms, 0) + " ms wall (" +
         util::fmt(sim_ms, 0) + " ms of simulation, " + util::fmt(mev_per_sec, 2) +
         " Mevents/s)";
}

}  // namespace bgl::harness
