#include "src/harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "src/harness/runner.hpp"
#include "src/util/table.hpp"

namespace bgl::harness {

namespace {

/// Throttled "rows done / total, ETA" line on stderr. tick() is
/// thread-safe; output is host-side only and never touches results.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total, bool enabled)
      : total_(total), enabled_(enabled), start_(clock::now()) {}

  ~ProgressMeter() {
    if (enabled_ && printed_) std::fputc('\n', stderr);
  }

  void tick() {
    const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = clock::now();
    if (done != total_ && now - last_print_ < std::chrono::milliseconds(100)) {
      return;
    }
    last_print_ = now;
    printed_ = true;
    const double elapsed_s =
        std::chrono::duration<double>(now - start_).count();
    const double eta_s =
        elapsed_s / static_cast<double>(done) * static_cast<double>(total_ - done);
    std::fprintf(stderr, "\r[harness] %zu/%zu rows (%d%%), ETA %ds   ", done,
                 total_, static_cast<int>(100 * done / total_),
                 static_cast<int>(eta_s + 0.5));
    std::fflush(stderr);
  }

 private:
  using clock = std::chrono::steady_clock;
  std::size_t total_;
  bool enabled_;
  clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::mutex mutex_;
  clock::time_point last_print_{};
  bool printed_ = false;
};

void validate_skips(const SweepOptions& options, std::size_t points) {
  if (options.skip_slots != nullptr &&
      options.skip_slots->size() !=
          points * static_cast<std::size_t>(options.repeats)) {
    throw std::invalid_argument(
        "sweep: skip_slots must have points * repeats entries, got " +
        std::to_string(options.skip_slots->size()));
  }
}

void validate(const SweepOptions& options) {
  if (options.repeats < 1) {
    throw std::invalid_argument("sweep: repeats must be >= 1, got " +
                                std::to_string(options.repeats));
  }
  if (options.shard_count < 1 || options.shard_index < 1 ||
      options.shard_index > options.shard_count) {
    throw std::invalid_argument(
        "sweep: shard must satisfy 1 <= i <= N, got " +
        std::to_string(options.shard_index) + "/" +
        std::to_string(options.shard_count));
  }
}

}  // namespace

ShardSpec parse_shard(const std::string& text) {
  const auto slash = text.find('/');
  const auto all_digits = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };
  if (slash == std::string::npos || !all_digits(text.substr(0, slash)) ||
      !all_digits(text.substr(slash + 1))) {
    throw std::runtime_error("option --shard: expected i/N with positive integers, got '" +
                             text + "'");
  }
  ShardSpec spec;
  spec.index = static_cast<int>(std::stoll(text.substr(0, slash)));
  spec.count = static_cast<int>(std::stoll(text.substr(slash + 1)));
  if (spec.count < 1 || spec.index < 1 || spec.index > spec.count) {
    throw std::runtime_error("option --shard: shard index runs 1..N, got '" + text +
                             "'");
  }
  return spec;
}

ShardRange shard_range(std::size_t points, int shard_index, int shard_count) {
  if (shard_count < 1 || shard_index < 1 || shard_index > shard_count) {
    throw std::invalid_argument("shard_range: need 1 <= i <= N, got " +
                                std::to_string(shard_index) + "/" +
                                std::to_string(shard_count));
  }
  const auto i = static_cast<std::size_t>(shard_index);
  const auto n = static_cast<std::size_t>(shard_count);
  return ShardRange{points * (i - 1) / n, points * i / n};
}

std::size_t Sweep::add(coll::StrategyKind kind, const coll::AlltoallOptions& options,
                       std::string label) {
  SimJob job;
  job.label = std::move(label);
  job.kind = kind;
  job.options = options;
  if (job.label.empty()) {
    job.label = options.net.shape.to_string() + "/" +
                util::fmt_bytes(options.msg_bytes) + "/" + strategy_name(kind);
  }
  const auto nodes = static_cast<std::uint64_t>(options.net.shape.nodes());
  job.cost = nodes * std::max<std::uint64_t>(options.msg_bytes, 1);
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::vector<SimResult> Sweep::run(const SweepOptions& options) const {
  using clock = std::chrono::steady_clock;
  validate(options);
  validate_skips(options, jobs_.size());
  const ShardRange range =
      shard_range(jobs_.size(), options.shard_index, options.shard_count);
  const auto repeats = static_cast<std::size_t>(options.repeats);
  const std::size_t total = range.size() * repeats;

  std::vector<std::uint64_t> costs;
  costs.reserve(total);
  for (std::size_t point = range.begin; point < range.end; ++point) {
    for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
      costs.push_back(jobs_[point].cost);
    }
  }

  ProgressMeter meter(total, options.progress);
  return run_ordered(
      total, options.jobs,
      [&](std::size_t slot) {
        const std::size_t point = range.begin + slot / repeats;
        const std::size_t repeat = slot % repeats;
        const SimJob& job = jobs_[point];
        SimResult result;
        result.index = point;
        result.repeat = static_cast<int>(repeat);
        result.ran = true;
        result.label = job.label;

        const std::size_t global = point * repeats + repeat;
        if (options.skip_slots != nullptr && (*options.skip_slots)[global]) {
          // Resumed slot: the caller already has this row (resume.hpp).
          result.ran = false;
          result.seed = options.derive_seeds ? derive_seed(options.base_seed, global)
                                             : job.options.net.seed;
          meter.tick();
          return result;
        }

        auto sim_options = job.options;
        if (sim_options.wall_timeout_ms <= 0.0 && options.timeout_ms > 0.0) {
          sim_options.wall_timeout_ms = options.timeout_ms;
        }
        if (options.derive_seeds) {
          // The *global* run index, so shard results are bit-identical to
          // the same rows of an unsharded run.
          sim_options.net.seed =
              derive_seed(options.base_seed, point * repeats + repeat);
        }
        result.seed = sim_options.net.seed;

        const auto start = clock::now();
        result.run = coll::run_alltoall(job.kind, sim_options);
        const std::chrono::duration<double, std::milli> wall = clock::now() - start;
        result.wall_ms = wall.count();
        result.events_per_sec =
            result.wall_ms > 0.0
                ? static_cast<double>(result.run.events) / (result.wall_ms / 1000.0)
                : 0.0;
        meter.tick();
        return result;
      },
      costs);
}

std::vector<std::string> result_columns(bool host_timing) {
  std::vector<std::string> columns = {
      "label",         "repeat",     "strategy", "shape",
      "msg_bytes",     "elapsed_us", "percent_peak", "per_node_mbps",
      "packets_delivered", "events", "drained",  "reason", "seed"};
  if (host_timing) {
    columns.push_back("wall_ms");
    columns.push_back("events_per_sec");
  }
  return columns;
}

std::string failure_reason(const coll::RunResult& run) {
  if (run.timed_out) return "timeout";
  if (!run.drained) return "aborted";
  if (run.verified && !run.reachable_complete) return "incomplete";
  return "";
}

std::vector<std::string> result_cells(const SimResult& result, bool host_timing) {
  const auto& run = result.run;
  std::vector<std::string> cells = {result.label,
                                    std::to_string(result.repeat),
                                    run.strategy,
                                    run.shape.to_string(),
                                    std::to_string(run.msg_bytes),
                                    util::fmt(run.elapsed_us, 3),
                                    util::fmt(run.percent_peak, 2),
                                    util::fmt(run.per_node_mbps, 1),
                                    std::to_string(run.packets_delivered),
                                    std::to_string(run.events),
                                    run.drained ? "1" : "0",
                                    failure_reason(run),
                                    std::to_string(result.seed)};
  if (host_timing) {
    cells.push_back(util::fmt(result.wall_ms, 3));
    cells.push_back(util::fmt(result.events_per_sec, 0));
  }
  return cells;
}

void emit(const std::vector<SimResult>& results, ResultSink& sink,
          bool host_timing) {
  sink.begin(result_columns(host_timing));
  for (const auto& result : results) sink.row(result_cells(result, host_timing));
  sink.end();
}

MetricStats summarize(const std::vector<double>& samples) {
  MetricStats stats;
  if (samples.empty()) return stats;
  stats.min = samples.front();
  stats.max = samples.front();
  double sum = 0.0;
  for (const double v : samples) {
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    sum += v;
  }
  const double n = static_cast<double>(samples.size());
  stats.mean = sum / n;
  double sq = 0.0;
  for (const double v : samples) sq += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(sq / n);  // population stddev: R == 1 gives 0
  return stats;
}

std::vector<PointStats> aggregate(const std::vector<SimResult>& results) {
  std::vector<PointStats> out;
  std::size_t i = 0;
  while (i < results.size()) {
    const std::size_t point = results[i].index;
    PointStats stats;
    stats.index = point;
    stats.label = results[i].label;
    stats.strategy = results[i].run.strategy;
    stats.shape = results[i].run.shape.to_string();
    stats.msg_bytes = results[i].run.msg_bytes;

    std::vector<double> elapsed, peak, mbps;
    for (; i < results.size() && results[i].index == point; ++i) {
      ++stats.repeats;
      if (!results[i].run.drained) continue;  // failed repeat: not in the stats
      ++stats.repeats_ok;
      elapsed.push_back(results[i].run.elapsed_us);
      peak.push_back(results[i].run.percent_peak);
      mbps.push_back(results[i].run.per_node_mbps);
    }
    stats.elapsed_us = summarize(elapsed);
    stats.percent_peak = summarize(peak);
    stats.per_node_mbps = summarize(mbps);
    out.push_back(std::move(stats));
  }
  return out;
}

std::vector<std::string> aggregate_columns() {
  return {"label",
          "strategy",
          "shape",
          "msg_bytes",
          "repeats",
          "repeats_ok",
          "elapsed_us_min",
          "elapsed_us_mean",
          "elapsed_us_max",
          "elapsed_us_stddev",
          "percent_peak_min",
          "percent_peak_mean",
          "percent_peak_max",
          "percent_peak_stddev",
          "per_node_mbps_min",
          "per_node_mbps_mean",
          "per_node_mbps_max",
          "per_node_mbps_stddev"};
}

std::vector<std::string> aggregate_cells(const PointStats& stats) {
  const auto metric = [](std::vector<std::string>& cells, const MetricStats& m,
                         int precision) {
    cells.push_back(util::fmt(m.min, precision));
    cells.push_back(util::fmt(m.mean, precision));
    cells.push_back(util::fmt(m.max, precision));
    cells.push_back(util::fmt(m.stddev, precision));
  };
  std::vector<std::string> cells = {stats.label, stats.strategy, stats.shape,
                                    std::to_string(stats.msg_bytes),
                                    std::to_string(stats.repeats),
                                    std::to_string(stats.repeats_ok)};
  metric(cells, stats.elapsed_us, 3);
  metric(cells, stats.percent_peak, 2);
  metric(cells, stats.per_node_mbps, 1);
  return cells;
}

void emit_aggregate(const std::vector<PointStats>& stats, ResultSink& sink) {
  sink.begin(aggregate_columns());
  for (const auto& point : stats) sink.row(aggregate_cells(point));
  sink.end();
}

std::string throughput_summary(const std::vector<SimResult>& results, int threads,
                               double sweep_wall_ms) {
  double sim_ms = 0.0;
  double events = 0.0;
  for (const auto& result : results) {
    sim_ms += result.wall_ms;
    events += static_cast<double>(result.run.events);
  }
  const double mev_per_sec =
      sweep_wall_ms > 0.0 ? events / 1000.0 / sweep_wall_ms : 0.0;
  return std::to_string(results.size()) + " jobs on " + std::to_string(threads) +
         " thread(s): " + util::fmt(sweep_wall_ms, 0) + " ms wall (" +
         util::fmt(sim_ms, 0) + " ms of simulation, " + util::fmt(mev_per_sec, 2) +
         " Mevents/s)";
}

}  // namespace bgl::harness
