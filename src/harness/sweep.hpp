// A sweep of independent all-to-all simulation jobs run on the harness.
//
// Benches build a Sweep (one job per simulated point), run it, and format
// their paper-facing tables from the ordered results. Each job runs a
// private Fabric + strategy client on a worker thread with a seed derived
// from (base_seed, global run index) — see runner.hpp — so the result
// vector is bit-identical for any worker count. Host wall time and
// simulator events/second are metered per run for the perf trajectory;
// they are the only nondeterministic fields and are excluded from the sink
// schema by default.
//
// v2 sweep engine:
//  - Size-aware scheduling: every job carries a cost hint (nodes x
//    msg_bytes) and the pool dispatches longest-first.
//  - Sharding: shard i/N runs the contiguous slice shard_range(points, i, N)
//    of the point list while keeping the *global* run indices for seed
//    derivation, so shard sink outputs concatenate bit-identically into the
//    unsharded run (see sink.hpp merge_csv_shards/merge_json_shards).
//  - Repeats: every point runs R times with independent derived seeds
//    (global run index = point * R + repeat); aggregate() folds the runs
//    into per-point min/mean/max/stddev for error bars.
//  - Progress: rows done / total with an ETA on stderr for long sweeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/harness/sink.hpp"

namespace bgl::harness {

struct SimJob {
  std::string label;  // free-form row tag, e.g. "8x8x8/240B"
  coll::StrategyKind kind = coll::StrategyKind::kAdaptiveRandom;
  coll::AlltoallOptions options;
  /// Scheduling hint (nodes x msg_bytes, floored at nodes); bigger runs
  /// dispatch first. Never affects results.
  std::uint64_t cost = 0;
};

struct SimResult {
  std::size_t index = 0;  // sweep point (not the expanded run index)
  int repeat = 0;         // 0-based repeat number within the point
  bool ran = false;       // false in slots a shard skipped
  std::string label;
  std::uint64_t seed = 0;  // the seed the run actually used
  coll::RunResult run;
  // Host-side metering (nondeterministic; excluded from determinism checks
  // and, by default, from the sinks).
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
};

/// Which shard of a sweep to run: slice `index` of `count`, 1-based.
struct ShardSpec {
  int index = 1;
  int count = 1;
};

/// Parses "i/N" (e.g. "2/3"). Throws std::runtime_error with a clear
/// message on malformed input or when i is outside 1..N.
ShardSpec parse_shard(const std::string& text);

/// The contiguous [begin, end) slice of `points` covered by shard i/N.
/// Shards are balanced to within one point and together cover every point
/// exactly once. Throws std::invalid_argument on an invalid spec.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};
ShardRange shard_range(std::size_t points, int shard_index, int shard_count);

struct SweepOptions {
  /// Worker threads; 0 = one per hardware thread.
  int jobs = 0;
  /// Run `point * repeats + repeat` uses seed derive_seed(base_seed, that).
  std::uint64_t base_seed = 1;
  /// Set false to honor each job's own options.net.seed instead.
  bool derive_seeds = true;
  /// Times each point runs (with independent derived seeds). Must be >= 1.
  int repeats = 1;
  /// Slice of the point list to run; defaults to the whole sweep.
  int shard_index = 1;
  int shard_count = 1;
  /// Rows done / total + ETA on stderr while the sweep runs.
  bool progress = false;
  /// Per-job host wall-clock watchdog in milliseconds; 0 = none. A job
  /// exceeding it is aborted and reported with run.timed_out == true and
  /// run.drained == false (aggregate() then excludes it from the stats).
  /// Jobs that carry their own options.wall_timeout_ms keep it.
  double timeout_ms = 0.0;
  /// Resume support: one flag per *global* run slot (point * repeats +
  /// repeat). Slots marked true are not simulated; their result comes back
  /// with `ran == false` and the caller splices the previously-written row
  /// in (see resume.hpp). nullptr = run everything. Must have exactly
  /// size() * repeats entries when set.
  const std::vector<bool>* skip_slots = nullptr;
};

class Sweep {
 public:
  /// Appends a job and returns its index (== its slot in run()'s result).
  std::size_t add(coll::StrategyKind kind, const coll::AlltoallOptions& options,
                  std::string label = "");

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const std::vector<SimJob>& jobs() const { return jobs_; }

  /// Runs every in-shard (point, repeat) pair on the pool; results are
  /// ordered by point then repeat, so with repeats == 1 and no sharding
  /// this is one result per job exactly as added. An empty sweep (or an
  /// empty shard) returns an empty vector. Job exceptions propagate
  /// (lowest run index first), after all jobs have run. Throws
  /// std::invalid_argument on invalid repeats/shard options.
  std::vector<SimResult> run(const SweepOptions& options = {}) const;

 private:
  std::vector<SimJob> jobs_;
};

/// The stable machine-readable schema shared by every bench. Pass
/// host_timing = true to append the nondeterministic wall_ms /
/// events_per_sec columns (off by default so rows — and therefore shard
/// files — are bit-identical for any worker count).
std::vector<std::string> result_columns(bool host_timing = false);
std::vector<std::string> result_cells(const SimResult& result,
                                      bool host_timing = false);

/// The row's "reason" cell: why the run failed, or "" for a healthy run.
///   "timeout"    killed by the wall-clock watchdog (metrics are garbage);
///   "aborted"    never quiesced before the cycle deadline (wedged);
///   "incomplete" drained, but per-pair verification found reachable pairs
///                short of their payload (only runs that recorded a
///                delivery matrix can report this).
std::string failure_reason(const coll::RunResult& run);

/// Streams `results` through a sink (begin/rows/end).
void emit(const std::vector<SimResult>& results, ResultSink& sink,
          bool host_timing = false);

// --- repeated-seed aggregation ---------------------------------------------

/// min/mean/max/stddev (population, so n == 1 gives 0) over a sample set.
/// Empty input yields all zeros — never NaN.
struct MetricStats {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};
MetricStats summarize(const std::vector<double>& samples);

/// Per-point statistics over repeated runs. Only drained (successful) runs
/// enter the stats; `repeats_ok` counts them, `repeats` counts attempts.
struct PointStats {
  std::size_t index = 0;
  std::string label;
  std::string strategy;
  std::string shape;
  std::uint64_t msg_bytes = 0;
  int repeats = 0;
  int repeats_ok = 0;
  MetricStats elapsed_us;
  MetricStats percent_peak;
  MetricStats per_node_mbps;
};

/// Folds per-run results (as returned by Sweep::run, ordered point-major)
/// into one PointStats per distinct point, in point order.
std::vector<PointStats> aggregate(const std::vector<SimResult>& results);

/// Machine-readable schema for aggregated rows (fully deterministic).
std::vector<std::string> aggregate_columns();
std::vector<std::string> aggregate_cells(const PointStats& stats);
void emit_aggregate(const std::vector<PointStats>& stats, ResultSink& sink);

/// One-line throughput footer: job count, worker threads, total host wall
/// time and aggregate simulator event rate.
std::string throughput_summary(const std::vector<SimResult>& results, int threads,
                               double sweep_wall_ms);

}  // namespace bgl::harness
