// A sweep of independent all-to-all simulation jobs run on the harness.
//
// Benches build a Sweep (one job per simulated point), run it, and format
// their paper-facing tables from the ordered results. Each job runs a
// private Fabric + strategy client on a worker thread with a seed derived
// from (base_seed, job index) — see runner.hpp — so the result vector is
// bit-identical for any worker count. Host wall time and simulator
// events/second are metered per job for the perf trajectory; they are the
// only nondeterministic fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/harness/sink.hpp"

namespace bgl::harness {

struct SimJob {
  std::string label;  // free-form row tag, e.g. "8x8x8/240B"
  coll::StrategyKind kind = coll::StrategyKind::kAdaptiveRandom;
  coll::AlltoallOptions options;
};

struct SimResult {
  std::size_t index = 0;
  std::string label;
  std::uint64_t seed = 0;  // the seed the job actually ran with
  coll::RunResult run;
  // Host-side metering (nondeterministic; excluded from determinism checks).
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
};

struct SweepOptions {
  /// Worker threads; 0 = one per hardware thread.
  int jobs = 0;
  /// Every job runs with net.seed = derive_seed(base_seed, index).
  std::uint64_t base_seed = 1;
  /// Set false to honor each job's own options.net.seed instead.
  bool derive_seeds = true;
};

class Sweep {
 public:
  /// Appends a job and returns its index (== its slot in run()'s result).
  std::size_t add(coll::StrategyKind kind, const coll::AlltoallOptions& options,
                  std::string label = "");

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const std::vector<SimJob>& jobs() const { return jobs_; }

  /// Runs every job on the pool; results are ordered by job index. An empty
  /// sweep returns an empty vector. Job exceptions propagate (lowest index
  /// first), after all jobs have run.
  std::vector<SimResult> run(const SweepOptions& options = {}) const;

 private:
  std::vector<SimJob> jobs_;
};

/// The stable machine-readable schema shared by every bench.
std::vector<std::string> result_columns();
std::vector<std::string> result_cells(const SimResult& result);

/// Streams `results` through a sink (begin/rows/end).
void emit(const std::vector<SimResult>& results, ResultSink& sink);

/// One-line throughput footer: job count, worker threads, total host wall
/// time and aggregate simulator event rate.
std::string throughput_summary(const std::vector<SimResult>& results, int threads,
                               double sweep_wall_ms);

}  // namespace bgl::harness
