#include "src/harness/pool.hpp"

#include <algorithm>
#include <utility>

namespace bgl::harness {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task, std::uint64_t cost) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(QueuedTask{cost, next_sequence_++, std::move(task)});
    std::push_heap(queue_.begin(), queue_.end(), heap_before);
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      std::pop_heap(queue_.begin(), queue_.end(), heap_before);
      task = std::move(queue_.back().fn);
      queue_.pop_back();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace bgl::harness
