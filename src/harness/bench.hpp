// Shared context for the reproduction benches: paper-shape scaling, the
// parallel-runner options (--jobs, --seed) and the machine-readable output
// sinks (--csv, --json). Formatting helpers (headers, shape notes) stay in
// bench/bench_util.hpp.
//
// Partitions above `node_budget` nodes are expensive to simulate
// packet-by-packet, so by default such rows run on a shape scaled down by
// halving dimensions while preserving the asymmetry ratios; `--full` runs
// the paper-exact sizes (documented per bench in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/harness/sweep.hpp"
#include "src/topology/torus.hpp"
#include "src/util/cli.hpp"

namespace bgl::harness {

inline constexpr std::int64_t kDefaultNodeBudget = 1024;

struct BenchContext {
  bool full = false;
  std::int64_t node_budget = kDefaultNodeBudget;
  SweepOptions sweep{};
  std::string csv_path;   // empty = no CSV sink
  std::string json_path;  // empty = no JSON sink
  /// Append the nondeterministic wall_ms/events_per_sec columns to per-run
  /// sink rows (off by default so shard outputs merge bit-identically).
  bool host_timing = false;
  /// Fault injection applied to every point (--faults spec; disabled by
  /// default). Simulation results remain deterministic for a fixed seed.
  net::FaultConfig faults{};
  /// Worker threads inside each simulation (--sim-threads; the slab-parallel
  /// fabric core). Orthogonal to --jobs, which parallelizes across sweep
  /// points: for many small points prefer --jobs, for one huge partition
  /// prefer --sim-threads. Fault injection and hop observers run parallel
  /// too; only zero-lookahead configs and dependency-gated schedules fall
  /// back to 1 per run (RunResult::sim_threads_reason says why).
  int sim_threads = 1;
  /// Partial CSV/JSON output of an interrupted run (--resume): slots whose
  /// drained rows are already present are skipped, and the sinks write a
  /// merged file byte-identical to an uninterrupted run (see resume.hpp).
  /// Requires --csv or --json; incompatible with --repeats > 1 and
  /// --host-timing. Resumed points print as zero rows in the bench tables.
  std::string resume_path;

  /// Declares and reads the shared bench options (--full, --budget, --seed,
  /// --jobs, --shard, --repeats, --progress, --csv, --json, --host-timing,
  /// --timeout, --faults, --sim-threads). Call before cli.validate(). Prints
  /// a clear error to stderr and exits with status 2 on invalid values
  /// (--jobs 0, --repeats 0, malformed --shard or --faults, non-numeric
  /// values).
  static BenchContext from_cli(util::Cli& cli);

  std::uint64_t seed() const { return sweep.base_seed; }

  /// The shape a row actually runs at. Preference: halve *every* non-trivial
  /// dimension at once, which preserves the paper shape's asymmetry ratios
  /// exactly (32x32x16 -> 16x16x8); when some dimension is too small for
  /// that, halve the largest halvable dimension instead. Wrap flags are
  /// kept; dimensions never drop below 2.
  topo::Shape runnable(const topo::Shape& paper_shape) const;

  /// Options for one simulated point (the per-job seed is derived later,
  /// when the sweep runs).
  coll::AlltoallOptions base_options(const topo::Shape& shape,
                                     std::uint64_t msg_bytes) const;

  /// Runs the sweep on the worker pool, streams the rows into any
  /// configured sinks (per-run rows when --repeats is 1, aggregated
  /// min/mean/max/stddev rows otherwise), prints the throughput footer,
  /// and returns one representative result per sweep point in job order:
  /// the repeat-0 run for points this shard executed, and a zeroed result
  /// with `ran == false` for points outside the shard (so bench table
  /// indexing stays valid under --shard).
  std::vector<SimResult> run(const Sweep& sweep_jobs) const;
};

}  // namespace bgl::harness
