// Resumable sweeps: reuse the rows of an interrupted run's CSV/JSON output.
//
// A sweep writes one deterministic row per (point, repeat) run. When a long
// sweep dies partway (host crash, --timeout budget, a killed shard), the
// rows already on disk are still valid — the per-run schema carries the
// label, repeat and seed that identify the slot, and every simulated value
// is a pure function of them. `--resume <file>` parses the partial output,
// skips every slot whose drained row is already present, reruns only the
// missing slots, and writes a merged file byte-identical to what the
// uninterrupted run would have produced.
//
// Resume matches slots by (label, repeat, seed), so changing the sweep's
// base seed, point list or labels simply reruns the affected slots; a stale
// file never corrupts results. Rows with drained == 0 (stalls, timeouts)
// are rerun, not reused. The resume schema is the deterministic per-run
// form: aggregated (--repeats > 1) and --host-timing outputs are refused at
// the CLI layer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/harness/sink.hpp"
#include "src/harness/sweep.hpp"

namespace bgl::harness {

/// Rows recovered from a previous run's per-run CSV or JSON output.
struct ResumeLog {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC 4180 CSV text (as CsvSink writes it): quoted cells, ""
/// escapes, embedded commas/newlines. Throws std::runtime_error on
/// structurally broken input (unterminated quote, ragged row).
ResumeLog parse_result_csv(const std::string& text);

/// Parses a harness JSON result array (as JsonSink writes it: a flat array
/// of one-level objects). Throws std::runtime_error when the text is not in
/// that shape or rows disagree on their keys.
ResumeLog parse_result_json(const std::string& text);

/// Loads `path`, picking the parser by extension (".json" → JSON, anything
/// else → CSV). Throws std::runtime_error on unreadable files.
ResumeLog load_resume_log(const std::string& path);

/// Which (point, repeat) slots of a sweep can be skipped, and the original
/// cells to splice into the merged output for each skipped slot.
struct ResumePlan {
  /// One entry per global run slot (point * repeats + repeat).
  std::vector<bool> skip;
  /// Original row cells for skipped slots (empty vectors elsewhere).
  std::vector<std::vector<std::string>> saved;
  std::size_t reused = 0;
};

/// Matches `log` against the sweep's slots by (label, repeat, seed) — the
/// seed each slot would use under `options`. Only drained rows are reused.
/// Throws std::runtime_error when the log's columns are not the per-run
/// schema (result_columns()).
ResumePlan plan_resume(const ResumeLog& log, const Sweep& sweep,
                       const SweepOptions& options);

/// Streams the merged output: saved cells for slots the plan skipped,
/// freshly formatted cells for slots this run executed. With the same base
/// seed the result is byte-identical to an uninterrupted run's file.
void emit_merged(const std::vector<SimResult>& results, const ResumePlan& plan,
                 int repeats, ResultSink& sink);

}  // namespace bgl::harness
