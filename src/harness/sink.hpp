// Pluggable result sinks: one row per simulation job, fixed columns.
//
// The paper-facing tables (paper-reported columns next to measured ones)
// stay in the benches; sinks carry the machine-readable form of the same
// sweep with a schema that is stable across every bench (see
// sweep.hpp::result_columns), so plotting scripts and the perf trajectory
// can consume any bench's output without bespoke parsing.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/csv.hpp"

namespace bgl::harness {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once, before any row, with the column names.
  virtual void begin(const std::vector<std::string>& columns) = 0;

  /// One result row; cells align with the columns passed to begin().
  virtual void row(const std::vector<std::string>& cells) = 0;

  /// Called once after the last row (flush/close point).
  virtual void end() {}
};

/// RFC 4180 CSV file (delegates to trace::CsvWriter).
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::string path) : path_(std::move(path)) {}

  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void end() override;

  std::size_t rows_written() const { return rows_; }

 private:
  std::string path_;
  std::unique_ptr<trace::CsvWriter> writer_;
  std::size_t rows_ = 0;
};

/// JSON array of flat objects, one per row. Numeric-looking cells are
/// emitted as JSON numbers so downstream tooling (and the BENCH_*.json perf
/// trajectory) gets typed values; everything else is a quoted string.
class JsonSink final : public ResultSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}
  ~JsonSink() override;

  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void end() override;

  std::size_t rows_written() const { return rows_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<std::string> columns_;
  std::size_t rows_ = 0;
};

/// Fans begin/row/end out to several sinks (none owned).
class MultiSink final : public ResultSink {
 public:
  void attach(ResultSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  bool empty() const { return sinks_.empty(); }

  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void end() override;

 private:
  std::vector<ResultSink*> sinks_;
};

// --- shard merging ----------------------------------------------------------
//
// A sweep run with --shard i/N writes only its slice of the rows; these
// helpers concatenate the per-shard files back into a byte-identical copy
// of the unsharded output (same header/bracket structure the sinks write).
// Inputs must be passed in shard order (1/N first). Both throw
// std::runtime_error on unreadable or structurally foreign inputs, and the
// CSV merge rejects shards whose header differs from the first shard's.

void merge_csv_shards(const std::vector<std::string>& inputs,
                      const std::string& output);
void merge_json_shards(const std::vector<std::string>& inputs,
                       const std::string& output);

}  // namespace bgl::harness
