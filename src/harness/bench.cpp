#include "src/harness/bench.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/harness/pool.hpp"

namespace bgl::harness {

BenchContext BenchContext::from_cli(util::Cli& cli) {
  cli.describe("full", "run paper-exact partition sizes (slow)");
  cli.describe("budget", "max nodes before scaling a row down");
  cli.describe("seed", "base seed; job i runs with splitmix64(seed, i)");
  cli.describe("jobs", "worker threads for simulation jobs (0 = all cores)");
  cli.describe("csv", "also write machine-readable rows to this CSV file");
  cli.describe("json", "also write machine-readable rows to this JSON file");
  BenchContext ctx;
  ctx.full = cli.get_bool("full", false);
  ctx.node_budget = cli.get_int("budget", kDefaultNodeBudget);
  ctx.sweep.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  ctx.sweep.jobs = static_cast<int>(cli.get_int("jobs", 0));
  ctx.csv_path = cli.get("csv", "");
  ctx.json_path = cli.get("json", "");
  return ctx;
}

topo::Shape BenchContext::runnable(const topo::Shape& paper_shape) const {
  if (full) return paper_shape;
  topo::Shape shape = paper_shape;
  // Ratio-preserving halving divides a 3-D shape by 8, so allow 25% slack
  // rather than overshooting to 1/8th of the budget.
  while (shape.nodes() > node_budget + node_budget / 4) {
    bool all_halvable = true;
    for (int a = 0; a < topo::kAxes; ++a) {
      const int extent = shape.dim[static_cast<std::size_t>(a)];
      if (extent > 1 && (extent < 4 || extent % 2 != 0)) all_halvable = false;
    }
    if (all_halvable) {
      for (int a = 0; a < topo::kAxes; ++a) {
        auto& extent = shape.dim[static_cast<std::size_t>(a)];
        if (extent > 1) extent /= 2;
      }
      continue;
    }
    int axis = -1;
    for (int a = 0; a < topo::kAxes; ++a) {
      const int extent = shape.dim[static_cast<std::size_t>(a)];
      if (extent >= 4 && extent % 2 == 0 &&
          (axis < 0 || extent > shape.dim[static_cast<std::size_t>(axis)])) {
        axis = a;
      }
    }
    if (axis < 0) break;
    shape.dim[static_cast<std::size_t>(axis)] /= 2;
  }
  return shape;
}

coll::AlltoallOptions BenchContext::base_options(const topo::Shape& shape,
                                                 std::uint64_t msg_bytes) const {
  coll::AlltoallOptions options;
  options.net.shape = shape;
  options.net.seed = sweep.base_seed;
  options.msg_bytes = msg_bytes;
  return options;
}

std::vector<SimResult> BenchContext::run(const Sweep& sweep_jobs) const {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  auto results = sweep_jobs.run(sweep);
  const std::chrono::duration<double, std::milli> wall = clock::now() - start;

  CsvSink csv(csv_path);
  JsonSink json(json_path);
  MultiSink sinks;
  if (!csv_path.empty()) sinks.attach(&csv);
  if (!json_path.empty()) sinks.attach(&json);
  if (!sinks.empty()) emit(results, sinks);

  const int threads =
      sweep.jobs > 0 ? sweep.jobs : ThreadPool::default_threads();
  const auto used = static_cast<int>(
      std::min<std::size_t>(results.size(), static_cast<std::size_t>(threads)));
  std::printf("[harness] %s\n",
              throughput_summary(results, used, wall.count()).c_str());
  return results;
}

}  // namespace bgl::harness
