#include "src/harness/bench.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>

#include <unistd.h>

#include "src/harness/pool.hpp"
#include "src/harness/resume.hpp"
#include "src/network/faults.hpp"

namespace bgl::harness {

BenchContext BenchContext::from_cli(util::Cli& cli) {
  cli.describe("full", "run paper-exact partition sizes (slow)");
  cli.describe("budget", "max nodes before scaling a row down");
  cli.describe("seed", "base seed; run i of the sweep uses splitmix64(seed, i)");
  cli.describe("jobs", "worker threads for simulation jobs (default: all cores)");
  cli.describe("shard", "run slice i of N of the sweep (format i/N); shard "
                        "CSV/JSON outputs merge bit-identically");
  cli.describe("repeats", "run every point R times; sinks carry "
                          "min/mean/max/stddev per point");
  cli.describe("progress", "rows done / total + ETA on stderr "
                           "(default: on when stderr is a terminal)");
  cli.describe("csv", "also write machine-readable rows to this CSV file");
  cli.describe("json", "also write machine-readable rows to this JSON file");
  cli.describe("host-timing", "append nondeterministic wall_ms/events_per_sec "
                              "columns to per-run sink rows");
  cli.describe("timeout", "per-job wall-clock watchdog in seconds; a job "
                          "exceeding it is marked failed and excluded from "
                          "aggregates (default: none)");
  cli.describe("faults", "fault-injection spec, e.g. link:0.02,drop:1e-5,seed:7 "
                         "(keys: link tlink repair fail_at degrade degrade_mult "
                         "node drop seed rto retries stuck)");
  cli.describe("sim-threads", "slab-parallel worker threads inside each "
                              "simulation (default 1 = reference engine; "
                              "see --jobs for across-point parallelism)");
  cli.describe("resume", "partial CSV/JSON output of an interrupted run; "
                         "already-completed points are skipped and the sinks "
                         "write the merged result");
  BenchContext ctx;
  try {
    ctx.full = cli.get_bool("full", false);
    ctx.node_budget = cli.get_int("budget", kDefaultNodeBudget);
    ctx.sweep.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    ctx.sweep.jobs = static_cast<int>(cli.get_int("jobs", 0));
    if (cli.has("jobs") && ctx.sweep.jobs < 1) {
      throw std::runtime_error(
          "option --jobs: must be >= 1 (omit the flag for one worker per "
          "hardware thread)");
    }
    ctx.sim_threads = static_cast<int>(cli.get_int("sim-threads", 1));
    if (ctx.sim_threads < 1) {
      throw std::runtime_error("option --sim-threads: must be >= 1, got " +
                               std::to_string(ctx.sim_threads));
    }
    ctx.sweep.repeats = static_cast<int>(cli.get_int("repeats", 1));
    if (ctx.sweep.repeats < 1) {
      throw std::runtime_error("option --repeats: must be >= 1, got " +
                               std::to_string(ctx.sweep.repeats));
    }
    const std::string shard = cli.get("shard", "");
    if (!shard.empty() || cli.has("shard")) {
      const ShardSpec spec = parse_shard(shard);
      ctx.sweep.shard_index = spec.index;
      ctx.sweep.shard_count = spec.count;
    }
    ctx.sweep.progress = cli.get_bool("progress", ::isatty(2) != 0);
    ctx.csv_path = cli.get("csv", "");
    ctx.json_path = cli.get("json", "");
    ctx.host_timing = cli.get_bool("host-timing", false);
    const double timeout_s = cli.get_double("timeout", 0.0);
    if (cli.has("timeout") && timeout_s <= 0.0) {
      throw std::runtime_error("option --timeout: must be > 0 seconds, got " +
                               cli.get("timeout", ""));
    }
    ctx.sweep.timeout_ms = timeout_s * 1000.0;
    const std::string fault_spec = cli.get("faults", "");
    if (!fault_spec.empty() || cli.has("faults")) {
      ctx.faults = net::parse_fault_spec(fault_spec);
    }
    ctx.resume_path = cli.get("resume", "");
    if (cli.has("resume")) {
      if (ctx.resume_path.empty()) {
        throw std::runtime_error("option --resume: needs the partial output file");
      }
      if (ctx.csv_path.empty() && ctx.json_path.empty()) {
        throw std::runtime_error(
            "option --resume: needs --csv or --json to write the merged output");
      }
      if (ctx.sweep.repeats > 1) {
        throw std::runtime_error(
            "option --resume: aggregated --repeats output has no per-run rows "
            "to resume from");
      }
      if (ctx.host_timing) {
        throw std::runtime_error(
            "option --resume: --host-timing rows are nondeterministic and "
            "cannot merge byte-identically");
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: error: %s\n", cli.program().c_str(), error.what());
    std::exit(2);
  }
  return ctx;
}

topo::Shape BenchContext::runnable(const topo::Shape& paper_shape) const {
  if (full) return paper_shape;
  topo::Shape shape = paper_shape;
  // Ratio-preserving halving divides a 3-D shape by 8, so allow 25% slack
  // rather than overshooting to 1/8th of the budget.
  while (shape.nodes() > node_budget + node_budget / 4) {
    bool all_halvable = true;
    for (int a = 0; a < paper_shape.axis_count(); ++a) {
      const int extent = shape.dim[static_cast<std::size_t>(a)];
      if (extent > 1 && (extent < 4 || extent % 2 != 0)) all_halvable = false;
    }
    if (all_halvable) {
      for (int a = 0; a < paper_shape.axis_count(); ++a) {
        auto& extent = shape.dim[static_cast<std::size_t>(a)];
        if (extent > 1) extent /= 2;
      }
      continue;
    }
    int axis = -1;
    for (int a = 0; a < paper_shape.axis_count(); ++a) {
      const int extent = shape.dim[static_cast<std::size_t>(a)];
      if (extent >= 4 && extent % 2 == 0 &&
          (axis < 0 || extent > shape.dim[static_cast<std::size_t>(axis)])) {
        axis = a;
      }
    }
    if (axis < 0) break;
    shape.dim[static_cast<std::size_t>(axis)] /= 2;
  }
  return shape;
}

coll::AlltoallOptions BenchContext::base_options(const topo::Shape& shape,
                                                 std::uint64_t msg_bytes) const {
  coll::AlltoallOptions options;
  options.net.shape = shape;
  options.net.seed = sweep.base_seed;
  options.net.faults = faults;
  // Under --faults every point verifies per-pair delivery, so a drained but
  // short run surfaces as reason == "incomplete" in the sinks instead of
  // passing silently (the chaos-smoke CI gate keys off that column).
  options.verify = faults.enabled();
  options.net.sim_threads = sim_threads;
  options.msg_bytes = msg_bytes;
  return options;
}

std::vector<SimResult> BenchContext::run(const Sweep& sweep_jobs) const {
  using clock = std::chrono::steady_clock;

  // --resume: skip every slot whose drained row the partial output already
  // carries; the sinks then splice those rows back in (byte-identically).
  std::optional<ResumePlan> resume;
  SweepOptions sweep_options = sweep;
  if (!resume_path.empty()) {
    resume = plan_resume(load_resume_log(resume_path), sweep_jobs, sweep);
    sweep_options.skip_slots = &resume->skip;
  }

  const auto start = clock::now();
  auto runs = sweep_jobs.run(sweep_options);
  const std::chrono::duration<double, std::milli> wall = clock::now() - start;

  CsvSink csv(csv_path);
  JsonSink json(json_path);
  MultiSink sinks;
  if (!csv_path.empty()) sinks.attach(&csv);
  if (!json_path.empty()) sinks.attach(&json);
  if (!sinks.empty()) {
    if (resume.has_value()) {
      emit_merged(runs, *resume, sweep.repeats, sinks);
    } else if (sweep.repeats == 1) {
      emit(runs, sinks, host_timing);
    } else {
      emit_aggregate(aggregate(runs), sinks);
    }
  }

  const int threads =
      sweep.jobs > 0 ? sweep.jobs : ThreadPool::default_threads();
  const auto used = static_cast<int>(
      std::min<std::size_t>(runs.size(), static_cast<std::size_t>(threads)));
  const std::string footer = throughput_summary(runs, used, wall.count());
  std::size_t timed_out = 0;
  for (const auto& result : runs) {
    if (result.run.timed_out) ++timed_out;
  }

  // One representative row per sweep point for the paper-facing tables:
  // the repeat-0 run where available, a zeroed `ran == false` placeholder
  // for points outside this shard.
  std::vector<SimResult> table(sweep_jobs.size());
  for (auto& result : runs) {
    if (result.repeat == 0) table[result.index] = std::move(result);
  }
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (!table[i].ran) {
      table[i].index = i;
      table[i].label = sweep_jobs.jobs()[i].label;
    }
  }

  if (sweep.shard_count > 1) {
    const auto range =
        shard_range(sweep_jobs.size(), sweep.shard_index, sweep.shard_count);
    std::printf("[harness] shard %d/%d: points %zu..%zu of %zu "
                "(rows outside the shard print as zero)\n",
                sweep.shard_index, sweep.shard_count, range.begin, range.end,
                sweep_jobs.size());
  }
  if (sweep.repeats > 1) {
    std::printf("[harness] repeats %d: tables show the first repeat; sinks "
                "carry min/mean/max/stddev per point\n",
                sweep.repeats);
  }
  if (resume.has_value()) {
    std::printf("[harness] resume: reused %zu of %zu rows from %s "
                "(reused points print as zero in the tables)\n",
                resume->reused, runs.size(), resume_path.c_str());
  }
  if (timed_out > 0) {
    std::printf("[harness] %zu run(s) hit --timeout (%.1fs): marked failed "
                "(drained=0) and excluded from aggregates\n",
                timed_out, sweep.timeout_ms / 1000.0);
  }
  std::printf("[harness] %s\n", footer.c_str());
  return table;
}

}  // namespace bgl::harness
