#include "src/harness/runner.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "src/harness/pool.hpp"

namespace bgl::harness {

void run_indexed(std::size_t count, int jobs,
                 const std::function<void(std::size_t)>& body,
                 const std::vector<std::uint64_t>& costs) {
  if (count == 0) return;
  if (!costs.empty() && costs.size() != count) {
    throw std::invalid_argument("run_indexed: costs must be empty or one per job");
  }
  const auto requested =
      static_cast<std::size_t>(jobs > 0 ? jobs : ThreadPool::default_threads());
  const int workers = static_cast<int>(std::min(count, requested));

  // One slot per job: exceptions are captured where they happen and
  // rethrown by ascending index, so the caller sees the same error no
  // matter the thread count or completion order.
  std::vector<std::exception_ptr> errors(count);
  {
    ThreadPool pool(workers);
    for (std::size_t index = 0; index < count; ++index) {
      pool.submit(
          [&body, &errors, index] {
            try {
              body(index);
            } catch (...) {
              errors[index] = std::current_exception();
            }
          },
          costs.empty() ? 0 : costs[index]);
    }
    pool.wait();
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace bgl::harness
