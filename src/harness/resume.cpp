#include "src/harness/resume.hpp"

#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "src/harness/runner.hpp"

namespace bgl::harness {

namespace {

std::string slurp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw std::runtime_error("resume: cannot open " + path);
  std::string text;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

/// The slot identity key. \x1f (unit separator) cannot appear in the repeat
/// or seed fields and is vanishingly unlikely in a label.
std::string slot_key(const std::string& label, const std::string& repeat,
                     const std::string& seed) {
  return label + '\x1f' + repeat + '\x1f' + seed;
}

std::size_t column_index(const std::vector<std::string>& columns,
                         const std::string& name) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  throw std::runtime_error("resume: input has no '" + name + "' column");
}

}  // namespace

ResumeLog parse_result_csv(const std::string& text) {
  ResumeLog log;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  bool cell_started = false;
  const auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
    cell_started = false;
  };
  const auto end_row = [&] {
    end_cell();
    if (log.columns.empty()) {
      log.columns = row;
    } else {
      if (row.size() != log.columns.size()) {
        throw std::runtime_error("resume: CSV row " +
                                 std::to_string(log.rows.size() + 2) + " has " +
                                 std::to_string(row.size()) + " cells, header has " +
                                 std::to_string(log.columns.size()));
      }
      log.rows.push_back(row);
    }
    row.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cell_started && cell.empty()) {
          quoted = true;
          cell_started = true;
        } else {
          cell += c;  // interior quote in an unquoted cell (writer never
        }             // produces this, but accept it)
        break;
      case ',': end_cell(); break;
      case '\r': break;  // tolerate CRLF
      case '\n': end_row(); break;
      default:
        cell += c;
        cell_started = true;
    }
  }
  if (quoted) throw std::runtime_error("resume: CSV ends inside a quoted cell");
  if (cell_started || !row.empty()) end_row();  // final line without newline
  if (log.columns.empty()) throw std::runtime_error("resume: CSV has no header");
  return log;
}

ResumeLog parse_result_json(const std::string& text) {
  ResumeLog log;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' ||
                               text[i] == '\r' || text[i] == '\t' ||
                               text[i] == ',')) {
      ++i;
    }
  };
  const auto fail = [&](const std::string& what) -> std::runtime_error {
    return std::runtime_error("resume: JSON parse error near offset " +
                              std::to_string(i) + ": " + what);
  };
  const auto parse_string = [&]() -> std::string {
    if (i >= text.size() || text[i] != '"') throw fail("expected string");
    ++i;
    std::string out;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        ++i;
        switch (text[i]) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: out += text[i];
        }
      } else {
        out += text[i];
      }
      ++i;
    }
    if (i >= text.size()) throw fail("unterminated string");
    ++i;  // closing quote
    return out;
  };
  const auto parse_scalar = [&]() -> std::string {
    if (i < text.size() && text[i] == '"') return parse_string();
    std::string out;  // bare number / true / false, kept verbatim
    while (i < text.size() && text[i] != ',' && text[i] != '}' &&
           text[i] != '\n' && text[i] != ' ') {
      out += text[i];
      ++i;
    }
    if (out.empty()) throw fail("expected value");
    return out;
  };

  skip_ws();
  if (i >= text.size() || text[i] != '[') throw fail("expected '['");
  ++i;
  skip_ws();
  while (i < text.size() && text[i] != ']') {
    if (text[i] != '{') throw fail("expected '{'");
    ++i;
    std::vector<std::string> keys;
    std::vector<std::string> cells;
    skip_ws();
    while (i < text.size() && text[i] != '}') {
      keys.push_back(parse_string());
      skip_ws();
      if (i >= text.size() || text[i] != ':') throw fail("expected ':'");
      ++i;
      skip_ws();
      cells.push_back(parse_scalar());
      skip_ws();
    }
    if (i >= text.size()) throw fail("unterminated object");
    ++i;  // '}'
    if (log.columns.empty()) {
      log.columns = keys;
    } else if (keys != log.columns) {
      throw fail("rows disagree on their keys");
    }
    log.rows.push_back(std::move(cells));
    skip_ws();
  }
  if (i >= text.size()) throw fail("unterminated array");
  return log;
}

ResumeLog load_resume_log(const std::string& path) {
  const std::string text = slurp(path);
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  return json ? parse_result_json(text) : parse_result_csv(text);
}

ResumePlan plan_resume(const ResumeLog& log, const Sweep& sweep,
                       const SweepOptions& options) {
  if (log.columns != result_columns(false)) {
    throw std::runtime_error(
        "resume: input columns do not match the per-run result schema "
        "(aggregated --repeats and --host-timing outputs cannot be resumed)");
  }
  const std::size_t label_col = column_index(log.columns, "label");
  const std::size_t repeat_col = column_index(log.columns, "repeat");
  const std::size_t seed_col = column_index(log.columns, "seed");
  const std::size_t drained_col = column_index(log.columns, "drained");

  std::unordered_map<std::string, const std::vector<std::string>*> by_key;
  for (const auto& row : log.rows) {
    if (row[drained_col] != "1") continue;  // stalled/timed-out rows rerun
    by_key.emplace(slot_key(row[label_col], row[repeat_col], row[seed_col]),
                   &row);
  }

  const auto repeats = static_cast<std::size_t>(options.repeats);
  ResumePlan plan;
  plan.skip.assign(sweep.size() * repeats, false);
  plan.saved.resize(sweep.size() * repeats);
  for (std::size_t point = 0; point < sweep.size(); ++point) {
    for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
      const std::size_t slot = point * repeats + repeat;
      const std::uint64_t seed =
          options.derive_seeds
              ? derive_seed(options.base_seed, slot)
              : sweep.jobs()[point].options.net.seed;
      const auto it = by_key.find(slot_key(sweep.jobs()[point].label,
                                           std::to_string(repeat),
                                           std::to_string(seed)));
      if (it == by_key.end()) continue;
      plan.skip[slot] = true;
      plan.saved[slot] = *it->second;
      ++plan.reused;
    }
  }
  return plan;
}

void emit_merged(const std::vector<SimResult>& results, const ResumePlan& plan,
                 int repeats, ResultSink& sink) {
  sink.begin(result_columns(false));
  for (const auto& result : results) {
    const std::size_t slot =
        result.index * static_cast<std::size_t>(repeats) +
        static_cast<std::size_t>(result.repeat);
    if (slot < plan.skip.size() && plan.skip[slot]) {
      sink.row(plan.saved[slot]);
    } else {
      sink.row(result_cells(result, false));
    }
  }
  sink.end();
}

}  // namespace bgl::harness
