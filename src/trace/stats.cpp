#include "src/trace/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace bgl::trace {

LinkReport summarize_links(const net::Fabric& fabric, net::Tick elapsed) {
  LinkReport report;
  if (elapsed == 0) return report;
  const auto& busy = fabric.link_busy_cycles();
  const auto& torus = fabric.torus();

  std::array<double, topo::kAxes> sum{};
  std::array<int, topo::kAxes> count{};
  for (auto& a : report.axis) {
    a.min = 1.0;
  }

  for (topo::Rank n = 0; n < torus.nodes(); ++n) {
    for (int d = 0; d < topo::kDirections; ++d) {
      if (torus.neighbor(n, topo::Direction::from_index(d)) < 0) continue;  // mesh edge
      const double util =
          static_cast<double>(busy[static_cast<std::size_t>(n * topo::kDirections + d)]) /
          static_cast<double>(elapsed);
      const int axis = d / 2;
      const auto ax = static_cast<std::size_t>(axis);
      sum[ax] += util;
      ++count[ax];
      report.axis[ax].max = std::max(report.axis[ax].max, util);
      report.axis[ax].min = std::min(report.axis[ax].min, util);
      report.overall_max = std::max(report.overall_max, util);
    }
  }

  double total = 0.0;
  int links = 0;
  for (int a = 0; a < topo::kAxes; ++a) {
    const auto ax = static_cast<std::size_t>(a);
    if (count[ax] == 0) {
      report.axis[ax].min = 0.0;
      continue;
    }
    report.axis[ax].mean = sum[ax] / count[ax];
    total += sum[ax];
    links += count[ax];
  }
  if (links > 0) report.overall_mean = total / links;
  return report;
}

std::vector<int> utilization_histogram(const net::Fabric& fabric, net::Tick elapsed,
                                       int buckets) {
  std::vector<int> histogram(static_cast<std::size_t>(buckets), 0);
  if (elapsed == 0 || buckets <= 0) return histogram;
  const auto& busy = fabric.link_busy_cycles();
  const auto& torus = fabric.torus();
  for (topo::Rank n = 0; n < torus.nodes(); ++n) {
    for (int d = 0; d < topo::kDirections; ++d) {
      if (torus.neighbor(n, topo::Direction::from_index(d)) < 0) continue;
      const double util =
          static_cast<double>(busy[static_cast<std::size_t>(n * topo::kDirections + d)]) /
          static_cast<double>(elapsed);
      int bucket = static_cast<int>(util * buckets);
      bucket = std::clamp(bucket, 0, buckets - 1);
      ++histogram[static_cast<std::size_t>(bucket)];
    }
  }
  return histogram;
}

std::string LinkReport::to_string() const {
  char buf[256];
  std::string out;
  static constexpr const char* kNames[topo::kAxes] = {"X", "Y", "Z"};
  for (int a = 0; a < topo::kAxes; ++a) {
    const auto& ax = axis[static_cast<std::size_t>(a)];
    std::snprintf(buf, sizeof(buf), "%s: mean %.1f%% max %.1f%%  ", kNames[a],
                  100.0 * ax.mean, 100.0 * ax.max);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "overall mean %.1f%%", 100.0 * overall_mean);
  out += buf;
  return out;
}

}  // namespace bgl::trace
