#include "src/trace/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace bgl::trace {

LinkReport summarize_links(const net::Fabric& fabric, net::Tick elapsed) {
  LinkReport report;
  const auto& torus = fabric.torus();
  const int dirs = torus.directions();
  report.axes = torus.axis_count();
  if (elapsed == 0) return report;
  const auto& busy = fabric.link_busy_cycles();

  std::array<double, topo::kMaxAxes> sum{};
  std::array<int, topo::kMaxAxes> count{};
  for (auto& a : report.axis) {
    a.min = 1.0;
  }

  for (topo::Rank n = 0; n < torus.nodes(); ++n) {
    for (int d = 0; d < dirs; ++d) {
      if (torus.neighbor(n, topo::Direction::from_index(d)) < 0) continue;  // mesh edge
      const double util =
          static_cast<double>(busy[static_cast<std::size_t>(n * dirs + d)]) /
          static_cast<double>(elapsed);
      const int axis = d / 2;
      const auto ax = static_cast<std::size_t>(axis);
      sum[ax] += util;
      ++count[ax];
      report.axis[ax].max = std::max(report.axis[ax].max, util);
      report.axis[ax].min = std::min(report.axis[ax].min, util);
      report.overall_max = std::max(report.overall_max, util);
    }
  }

  double total = 0.0;
  int links = 0;
  for (int a = 0; a < topo::kMaxAxes; ++a) {
    const auto ax = static_cast<std::size_t>(a);
    if (count[ax] == 0) {
      report.axis[ax].min = 0.0;
      continue;
    }
    report.axis[ax].mean = sum[ax] / count[ax];
    total += sum[ax];
    links += count[ax];
  }
  if (links > 0) report.overall_mean = total / links;
  return report;
}

std::vector<int> utilization_histogram(const net::Fabric& fabric, net::Tick elapsed,
                                       int buckets) {
  std::vector<int> histogram(static_cast<std::size_t>(buckets), 0);
  if (elapsed == 0 || buckets <= 0) return histogram;
  const auto& busy = fabric.link_busy_cycles();
  const auto& torus = fabric.torus();
  const int dirs = torus.directions();
  for (topo::Rank n = 0; n < torus.nodes(); ++n) {
    for (int d = 0; d < dirs; ++d) {
      if (torus.neighbor(n, topo::Direction::from_index(d)) < 0) continue;
      const double util =
          static_cast<double>(busy[static_cast<std::size_t>(n * dirs + d)]) /
          static_cast<double>(elapsed);
      int bucket = static_cast<int>(util * buckets);
      bucket = std::clamp(bucket, 0, buckets - 1);
      ++histogram[static_cast<std::size_t>(bucket)];
    }
  }
  return histogram;
}

std::string summarize_faults(const net::FaultPlan& plan, const net::FaultStats& faults,
                             const rt::ReliabilityStats& reliability) {
  if (!plan.enabled() && faults.total_dropped() == 0 &&
      faults.unroutable_at_injection == 0 && reliability.retransmits == 0) {
    return "";
  }
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "faults: %zu dead / %zu degraded links, %zu dead nodes, "
                "%zu transient outages (%llu strikes, %llu cycles down)\n",
                plan.dead_link_count(), plan.degraded_link_count(), plan.dead_node_count(),
                plan.transients().size(),
                static_cast<unsigned long long>(faults.transient_strikes),
                static_cast<unsigned long long>(faults.link_down_cycles));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "drops: %llu in flight, %llu lost, %llu stuck; "
                "%llu corrupted in flight, %llu unroutable at injection, "
                "%llu reroute vetoes\n",
                static_cast<unsigned long long>(faults.dropped_in_flight),
                static_cast<unsigned long long>(faults.dropped_prob),
                static_cast<unsigned long long>(faults.dropped_stuck),
                static_cast<unsigned long long>(faults.corrupted_payloads),
                static_cast<unsigned long long>(faults.unroutable_at_injection),
                static_cast<unsigned long long>(faults.reroute_vetoes));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "reliability: %llu sequenced, %llu retransmits, %llu duplicates "
                "dropped, %llu corrupt rejected, %llu+%llu acks "
                "(standalone+piggybacked), %llu given up",
                static_cast<unsigned long long>(reliability.data_sequenced),
                static_cast<unsigned long long>(reliability.retransmits),
                static_cast<unsigned long long>(reliability.duplicates_dropped),
                static_cast<unsigned long long>(reliability.corrupt_rejected),
                static_cast<unsigned long long>(reliability.acks_standalone),
                static_cast<unsigned long long>(reliability.acks_piggybacked),
                static_cast<unsigned long long>(reliability.gave_up));
  out += buf;
  return out;
}

std::string summarize_recovery(int epochs, int replans, net::Tick replan_cycles,
                               std::uint64_t residual_pairs,
                               std::uint64_t recovered_bytes,
                               std::uint64_t corruption_retransmits) {
  if (epochs <= 1 && corruption_retransmits == 0) return "";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "recovery: %d epochs (%d re-plans, %llu cycles), "
                "%llu residual pairs, %llu bytes recovered, "
                "%llu corruption retransmits",
                epochs, replans, static_cast<unsigned long long>(replan_cycles),
                static_cast<unsigned long long>(residual_pairs),
                static_cast<unsigned long long>(recovered_bytes),
                static_cast<unsigned long long>(corruption_retransmits));
  return buf;
}

std::string LinkReport::to_string() const {
  char buf[256];
  std::string out;
  static constexpr const char* kNames[topo::kMaxAxes] = {"X", "Y", "Z", "W"};
  for (int a = 0; a < axes; ++a) {
    const auto& ax = axis[static_cast<std::size_t>(a)];
    std::snprintf(buf, sizeof(buf), "%s: mean %.1f%% max %.1f%%  ", kNames[a],
                  100.0 * ax.mean, 100.0 * ax.max);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "overall mean %.1f%%", 100.0 * overall_mean);
  out += buf;
  return out;
}

}  // namespace bgl::trace
