#include "src/trace/heatmap.hpp"

#include <algorithm>

namespace bgl::trace {

namespace {

constexpr char kShades[] = " .:-=+*#%@";
constexpr int kShadeCount = 10;

double link_util(const net::Fabric& fabric, net::Tick elapsed, topo::Rank node, int dir) {
  if (elapsed == 0) return 0.0;
  const auto& busy = fabric.link_busy_cycles();
  return static_cast<double>(
             busy[static_cast<std::size_t>(node) * topo::kDirections +
                  static_cast<std::size_t>(dir)]) /
         static_cast<double>(elapsed);
}

}  // namespace

char shade(double utilization) {
  const int index = std::clamp(static_cast<int>(utilization * kShadeCount), 0,
                               kShadeCount - 1);
  return kShades[index];
}

std::string plane_heatmap(const net::Fabric& fabric, net::Tick elapsed, int z) {
  const topo::Torus& torus = fabric.torus();
  const auto& shape = torus.shape();
  std::string out = "z=" + std::to_string(z) + " plane (cell: +X+Y link shades)\n";
  for (int y = shape.dim[1] - 1; y >= 0; --y) {
    for (int x = 0; x < shape.dim[0]; ++x) {
      const topo::Rank node = torus.rank_of({{x, y, z}});
      out += shade(link_util(fabric, elapsed, node, 0));  // X+
      out += shade(link_util(fabric, elapsed, node, 2));  // Y+
      out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::string axis_summary(const net::Fabric& fabric, net::Tick elapsed) {
  const topo::Torus& torus = fabric.torus();
  const auto& shape = torus.shape();
  static constexpr const char* kNames[topo::kAxes] = {"X", "Y", "Z"};
  std::string out;
  for (int axis = 0; axis < topo::kAxes; ++axis) {
    out += kNames[axis];
    out += " lines: ";
    // One character per line along `axis`: iterate over the other two dims.
    const int a1 = (axis + 1) % topo::kAxes;
    const int a2 = (axis + 2) % topo::kAxes;
    for (int i = 0; i < shape.dim[static_cast<std::size_t>(a1)]; ++i) {
      for (int j = 0; j < shape.dim[static_cast<std::size_t>(a2)]; ++j) {
        double total = 0.0;
        int links = 0;
        for (int k = 0; k < shape.dim[static_cast<std::size_t>(axis)]; ++k) {
          topo::Coord c;
          c[axis] = k;
          c[a1] = i;
          c[a2] = j;
          const topo::Rank node = torus.rank_of(c);
          for (int sign = 0; sign < 2; ++sign) {
            const int dir = axis * 2 + sign;
            if (torus.neighbor(node, topo::Direction::from_index(dir)) < 0) continue;
            total += link_util(fabric, elapsed, node, dir);
            ++links;
          }
        }
        out += shade(links > 0 ? total / links : 0.0);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace bgl::trace
