#include "src/trace/heatmap.hpp"

#include <algorithm>

namespace bgl::trace {

namespace {

constexpr char kShades[] = " .:-=+*#%@";
constexpr int kShadeCount = 10;

double link_util(const net::Fabric& fabric, net::Tick elapsed, topo::Rank node, int dir) {
  const int dirs = fabric.torus().directions();
  if (elapsed == 0 || dir >= dirs) return 0.0;  // axis absent from this shape
  const auto& busy = fabric.link_busy_cycles();
  return static_cast<double>(
             busy[static_cast<std::size_t>(node) * static_cast<std::size_t>(dirs) +
                  static_cast<std::size_t>(dir)]) /
         static_cast<double>(elapsed);
}

}  // namespace

char shade(double utilization) {
  const int index = std::clamp(static_cast<int>(utilization * kShadeCount), 0,
                               kShadeCount - 1);
  return kShades[index];
}

std::string plane_heatmap(const net::Fabric& fabric, net::Tick elapsed, int z) {
  const topo::Torus& torus = fabric.torus();
  const auto& shape = torus.shape();
  std::string out = "z=" + std::to_string(z) + " plane (cell: +X+Y link shades)\n";
  for (int y = shape.dim[1] - 1; y >= 0; --y) {
    for (int x = 0; x < shape.dim[0]; ++x) {
      const topo::Rank node = torus.rank_of({{x, y, z}});
      out += shade(link_util(fabric, elapsed, node, 0));  // X+
      out += shade(link_util(fabric, elapsed, node, 2));  // Y+
      out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::string axis_summary(const net::Fabric& fabric, net::Tick elapsed) {
  const topo::Torus& torus = fabric.torus();
  const auto& shape = torus.shape();
  const int axes = shape.axis_count();
  static constexpr const char* kNames[topo::kMaxAxes] = {"X", "Y", "Z", "W"};
  std::string out;
  for (int axis = 0; axis < axes; ++axis) {
    out += kNames[axis];
    out += " lines: ";
    // One character per line along `axis`: odometer over the remaining axes
    // in (axis+1, axis+2, ...) order, the last one varying fastest.
    std::vector<int> others;
    for (int o = 1; o < axes; ++o) others.push_back((axis + o) % axes);
    std::size_t lines = 1;
    for (const int o : others) {
      lines *= static_cast<std::size_t>(shape.dim[static_cast<std::size_t>(o)]);
    }
    std::array<int, topo::kMaxAxes> idx{};
    for (std::size_t t = 0; t < lines; ++t) {
      topo::Coord c;
      for (std::size_t oi = 0; oi < others.size(); ++oi) {
        c[others[oi]] = idx[oi];
      }
      double total = 0.0;
      int links = 0;
      for (int k = 0; k < shape.dim[static_cast<std::size_t>(axis)]; ++k) {
        c[axis] = k;
        const topo::Rank node = torus.rank_of(c);
        for (int sign = 0; sign < 2; ++sign) {
          const int dir = axis * 2 + sign;
          if (torus.neighbor(node, topo::Direction::from_index(dir)) < 0) continue;
          total += link_util(fabric, elapsed, node, dir);
          ++links;
        }
      }
      out += shade(links > 0 ? total / links : 0.0);
      for (std::size_t oi = others.size(); oi-- > 0;) {
        if (++idx[oi] < shape.dim[static_cast<std::size_t>(others[oi])]) break;
        idx[oi] = 0;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace bgl::trace
