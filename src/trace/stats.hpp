// Post-run instrumentation: per-dimension link utilization summaries.
//
// The paper's contention analysis (Sections 3.2 and 4.1) is about *which*
// links saturate: on a 2n x n x n torus the X links carry twice the load of
// Y and Z. These summaries let examples and benches show exactly that.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/network/fabric.hpp"
#include "src/runtime/reliability.hpp"
#include "src/topology/torus.hpp"

namespace bgl::trace {

struct AxisUtilization {
  double mean = 0.0;  // average utilization of the axis' directed links
  double max = 0.0;   // most-loaded directed link
  double min = 0.0;   // least-loaded directed link (0 if axis has no links)
};

struct LinkReport {
  std::array<AxisUtilization, topo::kMaxAxes> axis{};
  /// Axes of the summarized fabric (entries beyond it are all-zero).
  int axes = topo::kMaxAxes;
  double overall_mean = 0.0;
  double overall_max = 0.0;

  std::string to_string() const;
};

/// Summarizes fabric link busy-cycle counters over `elapsed` cycles.
/// Mesh-edge pseudo links (which do not exist) are excluded.
LinkReport summarize_links(const net::Fabric& fabric, net::Tick elapsed);

/// Utilization histogram over all existing directed links (for ablations).
std::vector<int> utilization_histogram(const net::Fabric& fabric, net::Tick elapsed,
                                       int buckets);

/// One-paragraph human-readable summary of a degraded run: plan size (dead /
/// degraded links, dead nodes, transient outages), fabric drop and reroute
/// counters, and the reliability layer's retransmission work. Returns "" for
/// a disabled plan with all-zero counters.
std::string summarize_faults(const net::FaultPlan& plan, const net::FaultStats& faults,
                             const rt::ReliabilityStats& reliability);

/// One-line summary of a run's epoch recovery (scalars rather than the coll
/// layer's EpochStats — trace sits below coll). Returns "" for an
/// unremarkable run (single epoch, no corruption handled).
std::string summarize_recovery(int epochs, int replans, net::Tick replan_cycles,
                               std::uint64_t residual_pairs,
                               std::uint64_t recovered_bytes,
                               std::uint64_t corruption_retransmits);

}  // namespace bgl::trace
