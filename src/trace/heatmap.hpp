// ASCII heatmaps of per-link utilization — the quickest way to *see* the
// paper's contention stories: the X links of a 2n x n x n torus glowing at
// twice the Y/Z shade under AR, or TPS evening them out.
#pragma once

#include <string>

#include "src/network/fabric.hpp"
#include "src/topology/torus.hpp"

namespace bgl::trace {

/// Renders one Z-plane of the partition as a grid of cells; each cell shows
/// the utilization of the node's +X and +Y links as shade characters
/// (" .:-=+*#%@" for 0..100%). Returns a multi-line string.
std::string plane_heatmap(const net::Fabric& fabric, net::Tick elapsed, int z);

/// Renders per-axis utilization of every X/Y/Z line as one shaded character
/// per line, averaged over the line's directed links — a compact full-machine
/// view (one row per axis).
std::string axis_summary(const net::Fabric& fabric, net::Tick elapsed);

/// Shade character for a utilization in [0, 1].
char shade(double utilization);

}  // namespace bgl::trace
