#include "src/trace/journey.hpp"

namespace bgl::trace {

std::string dir_name(int dir) {
  static constexpr const char* kNames[topo::kMaxDirections] = {
      "X+", "X-", "Y+", "Y-", "Z+", "Z-", "W+", "W-"};
  if (dir < 0 || dir >= topo::kMaxDirections) return "?";
  return kNames[dir];
}

JourneyRecorder::JourneyRecorder(net::Fabric& fabric, std::uint64_t sample_every)
    : sample_every_(sample_every == 0 ? 1 : sample_every) {
  fabric.set_hop_observer(
      [this](const net::Packet& packet, topo::Rank node, int dir, int target_vc) {
        if (packet.tag % sample_every_ != 0) return;
        journeys_[packet.tag].push_back(Hop{node, dir, target_vc});
      });
}

std::string JourneyRecorder::to_string(std::uint64_t tag) const {
  const auto it = journeys_.find(tag);
  if (it == journeys_.end()) return "";
  std::string out;
  for (const Hop& hop : it->second) {
    out += std::to_string(hop.from);
    out += " -";
    out += dir_name(hop.dir);
    if (hop.vc >= 0) {
      out += "(vc" + std::to_string(hop.vc) + ")";
    }
    out += "-> ";
  }
  out += "delivered";
  return out;
}

std::size_t JourneyRecorder::hops(std::uint64_t tag) const {
  const auto it = journeys_.find(tag);
  return it == journeys_.end() ? 0 : it->second.size();
}

}  // namespace bgl::trace
