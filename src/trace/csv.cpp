#include "src/trace/csv.hpp"

#include <stdexcept>

namespace bgl::trace {

namespace {

void write_row(std::FILE* file, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) std::fputc(',', file);
    std::fputs(CsvWriter::escape(cells[i]).c_str(), file);
  }
  std::fputc('\n', file);
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& headers)
    : columns_(headers.size()) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) throw std::runtime_error("cannot open CSV file: " + path);
  write_row(file_, headers);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CSV row width mismatch");
  }
  write_row(file_, cells);
  ++rows_;
}

std::string csv_line(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvWriter::escape(cells[i]);
  }
  return out;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace bgl::trace
