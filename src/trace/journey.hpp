// Packet-journey recording via the fabric's hop observer: captures the
// sequence of (node, direction, VC) hops of sampled packets — the tool for
// debugging routing behavior and for the routing-discipline tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/network/fabric.hpp"

namespace bgl::trace {

struct Hop {
  topo::Rank from = -1;
  int dir = -1;  // direction index 0..5 (X+,X-,Y+,Y-,Z+,Z-)
  int vc = -1;   // downstream VC, or -1 for the delivery hop
};

class JourneyRecorder {
 public:
  /// Attaches to the fabric's hop observer. `sample_every` = record packets
  /// whose tag is a multiple of it (1 = all); clients must put distinct tags
  /// on the packets they want traced.
  explicit JourneyRecorder(net::Fabric& fabric, std::uint64_t sample_every = 1);

  const std::map<std::uint64_t, std::vector<Hop>>& journeys() const { return journeys_; }

  /// "0 -X+(vc0)-> 1 -Y-(vc2)-> 5 -> delivered" for one tag; "" if unseen.
  std::string to_string(std::uint64_t tag) const;

  /// Hops recorded for a tag (0 if unseen).
  std::size_t hops(std::uint64_t tag) const;

 private:
  std::uint64_t sample_every_;
  std::map<std::uint64_t, std::vector<Hop>> journeys_;
};

/// Direction index -> "X+", "X-", ...
std::string dir_name(int dir);

}  // namespace bgl::trace
