// Minimal CSV emission for bench results (plot-friendly output).
//
// Cells containing commas, quotes or newlines are quoted per RFC 4180 so
// downstream tooling (pandas, gnuplot with `set datafile separator`) reads
// the files unmodified.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bgl::trace {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be created.
  CsvWriter(const std::string& path, const std::vector<std::string>& headers);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

  /// Escapes one cell per RFC 4180 (exposed for tests).
  static std::string escape(const std::string& cell);

 private:
  std::FILE* file_ = nullptr;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

/// Formats one CSV row (no trailing newline) with the same RFC 4180 escaping
/// as CsvWriter, for callers that build CSV text in memory.
std::string csv_line(const std::vector<std::string>& cells);

}  // namespace bgl::trace
