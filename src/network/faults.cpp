#include "src/network/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/cli.hpp"
#include "src/util/rng.hpp"

namespace bgl::net {
namespace {

[[noreturn]] void spec_error(const std::string& detail) {
  throw std::runtime_error("option --faults: " + detail);
}

double fraction(const std::string& value, const std::string& key) {
  const double f = util::parse_strict_double(value, "option --faults " + key);
  if (!(f >= 0.0 && f <= 1.0)) {
    spec_error(key + " must be in [0, 1], got '" + value + "'");
  }
  return f;
}

std::int64_t non_negative(const std::string& value, const std::string& key) {
  const std::int64_t n = util::parse_strict_int(value, "option --faults " + key);
  if (n < 0) spec_error(key + " must be >= 0, got '" + value + "'");
  return n;
}

}  // namespace

FaultConfig parse_fault_spec(const std::string& text) {
  FaultConfig out;
  std::vector<std::string> seen;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const auto entry =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (entry.empty()) {
      if (text.empty()) break;
      spec_error("empty entry in '" + text + "'");
    }
    auto sep = entry.find(':');
    if (sep == std::string::npos) sep = entry.find('=');
    if (sep == std::string::npos || sep == 0 || sep + 1 >= entry.size()) {
      spec_error("expected key:value, got '" + entry + "'");
    }
    const std::string key = entry.substr(0, sep);
    const std::string value = entry.substr(sep + 1);
    // Last-wins would make "link:0.1,link:0" silently disable the fault the
    // user thought they configured; duplicates are always a spec bug.
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      spec_error("duplicate key '" + key + "' in '" + text + "'");
    }
    seen.push_back(key);
    if (key == "link") {
      out.link_fail = fraction(value, key);
    } else if (key == "tlink") {
      out.link_transient = fraction(value, key);
    } else if (key == "repair") {
      const auto n = non_negative(value, key);
      if (n == 0) spec_error("repair must be > 0");
      out.repair_cycles = n;
    } else if (key == "fail_at") {
      out.fail_at = non_negative(value, key);
    } else if (key == "degrade") {
      out.degrade = fraction(value, key);
    } else if (key == "degrade_mult") {
      const auto n = non_negative(value, key);
      if (n < 2 || n > 1024) spec_error("degrade_mult must be in [2, 1024]");
      out.degrade_mult = static_cast<std::uint32_t>(n);
    } else if (key == "node") {
      out.node_fail = static_cast<int>(non_negative(value, key));
    } else if (key == "drop") {
      out.drop_prob = fraction(value, key);
    } else if (key == "corrupt") {
      out.corrupt_prob = fraction(value, key);
    } else if (key == "seed") {
      out.seed = static_cast<std::uint64_t>(
          util::parse_strict_int(value, "option --faults seed"));
    } else if (key == "rto") {
      const auto n = non_negative(value, key);
      if (n == 0) spec_error("rto must be > 0");
      out.retrans_timeout = n;
    } else if (key == "retries") {
      out.max_retries = static_cast<int>(non_negative(value, key));
    } else if (key == "stuck") {
      out.stuck_drop_cycles = non_negative(value, key);
    } else {
      spec_error("unknown key '" + key + "' (expected link, tlink, repair, fail_at, " +
                 "degrade, degrade_mult, node, drop, corrupt, seed, rto, retries, stuck)");
    }
  }
  return out;
}

FaultPlan::FaultPlan(const NetworkConfig& config, const topo::Shape& shape)
    : torus_(shape) {
  faults_ = config.faults;
  enabled_ = faults_.enabled();
  if (!enabled_) return;

  const std::size_t links = static_cast<std::size_t>(torus_.nodes()) *
                            static_cast<std::size_t>(torus_.directions());
  link_state_.assign(links, static_cast<std::uint8_t>(LinkHealth::kUp));
  node_dead_.assign(static_cast<std::size_t>(torus_.nodes()), 0);

  // seed 0 derives from the network seed, so repeated sweep jobs sample
  // independent fault placements while staying reproducible.
  derived_seed_ =
      faults_.seed != 0 ? faults_.seed : (config.seed ^ 0x6661756c74ULL);  // "fault"
  std::uint64_t sm = derived_seed_;
  util::Xoshiro256StarStar rng(util::splitmix64(sm));

  // Enumerate undirected links as (node, +axis) ports that have a peer; the
  // paired (-axis) port on the peer is derived, so failing an entry always
  // fails both directions.
  std::vector<std::pair<topo::Rank, int>> undirected;
  for (topo::Rank node = 0; node < torus_.nodes(); ++node) {
    for (int axis = 0; axis < torus_.axis_count(); ++axis) {
      const topo::Direction plus{axis, +1};
      if (torus_.neighbor(node, plus) >= 0) undirected.emplace_back(node, axis);
    }
  }
  rng.shuffle(undirected);

  const auto count = [&](double frac) {
    return std::min(undirected.size(),
                    static_cast<std::size_t>(
                        std::llround(frac * static_cast<double>(undirected.size()))));
  };
  const std::size_t n_dead = count(faults_.link_fail);
  const std::size_t n_trans = count(faults_.link_transient);
  const std::size_t n_degr = count(faults_.degrade);

  const auto mark_both = [&](std::size_t idx, LinkHealth health) {
    const auto [node, axis] = undirected[idx];
    const topo::Direction plus{axis, +1};
    const topo::Rank peer = torus_.neighbor(node, plus);
    link_state_[static_cast<std::size_t>(link_id(node, plus.index()))] =
        static_cast<std::uint8_t>(health);
    link_state_[static_cast<std::size_t>(
        link_id(peer, topo::Direction{axis, -1}.index()))] =
        static_cast<std::uint8_t>(health);
  };

  // The shuffled list is consumed in disjoint segments: dead, then transient,
  // then degraded, clamped to the number of links available.
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n_dead && cursor < undirected.size(); ++i, ++cursor) {
    mark_both(cursor, LinkHealth::kDead);
    ++dead_links_;
  }
  for (std::size_t i = 0; i < n_trans && cursor < undirected.size(); ++i, ++cursor) {
    mark_both(cursor, LinkHealth::kTransient);
    const auto [node, axis] = undirected[cursor];
    TransientOutage outage;
    outage.link = link_id(node, topo::Direction{axis, +1}.index());
    outage.down_at =
        faults_.fail_at + static_cast<Tick>(rng.below(
                              static_cast<std::uint64_t>(faults_.repair_cycles)));
    outage.up_at = outage.down_at + faults_.repair_cycles;
    transients_.push_back(outage);
  }
  for (std::size_t i = 0; i < n_degr && cursor < undirected.size(); ++i, ++cursor) {
    mark_both(cursor, LinkHealth::kDegraded);
    ++degraded_links_;
  }

  // Node failures kill every incident directed link (both in and out), so all
  // fault checks in the fabric reduce to link checks.
  if (faults_.node_fail > 0) {
    std::vector<topo::Rank> nodes(static_cast<std::size_t>(torus_.nodes()));
    for (topo::Rank r = 0; r < torus_.nodes(); ++r) nodes[static_cast<std::size_t>(r)] = r;
    rng.shuffle(nodes);
    const std::size_t n_nodes =
        std::min(nodes.size(), static_cast<std::size_t>(faults_.node_fail));
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const topo::Rank victim = nodes[i];
      node_dead_[static_cast<std::size_t>(victim)] = 1;
      ++dead_nodes_;
      for (int d = 0; d < torus_.directions(); ++d) {
        const topo::Direction dir = topo::Direction::from_index(d);
        const topo::Rank peer = torus_.neighbor(victim, dir);
        if (peer < 0) continue;
        link_state_[static_cast<std::size_t>(link_id(victim, d))] =
            static_cast<std::uint8_t>(LinkHealth::kDead);
        link_state_[static_cast<std::size_t>(
            link_id(peer, topo::Direction{dir.axis, -dir.sign}.index()))] =
            static_cast<std::uint8_t>(LinkHealth::kDead);
      }
    }
  }

  // Drop transients whose link a permanent fault already killed (segment
  // overlap cannot happen, but a node failure can land on a transient link).
  std::erase_if(transients_, [&](const TransientOutage& t) {
    return link_state_[static_cast<std::size_t>(t.link)] !=
           static_cast<std::uint8_t>(LinkHealth::kTransient);
  });
  std::sort(transients_.begin(), transients_.end(),
            [](const TransientOutage& a, const TransientOutage& b) {
              return a.down_at != b.down_at ? a.down_at < b.down_at : a.link < b.link;
            });
}

bool FaultPlan::route_live(topo::Rank node, const HopVec& hops, RoutingMode mode,
                           RouteMemo* memo) const {
  if (!node_alive(node)) return false;
  if (hops[0] == 0 && hops[1] == 0 && hops[2] == 0 && hops[3] == 0) return true;

  RouteMemo& cache = memo != nullptr ? *memo : route_memo_;
  const RouteKey key{node, static_cast<std::uint8_t>(mode), hops};
  if (const auto it = cache.find(key); it != cache.end()) {
    return it->second;
  }

  bool live = false;
  for (int axis = 0; axis < torus_.axis_count() && !live; ++axis) {
    if (hops[static_cast<std::size_t>(axis)] == 0) continue;
    const int sign = hops[static_cast<std::size_t>(axis)] > 0 ? +1 : -1;
    const topo::Direction dir{axis, sign};
    if (link_state_[static_cast<std::size_t>(link_id(node, dir.index()))] !=
        static_cast<std::uint8_t>(LinkHealth::kDead)) {
      auto next = hops;
      next[static_cast<std::size_t>(axis)] =
          static_cast<std::int16_t>(next[static_cast<std::size_t>(axis)] - sign);
      live = route_live(torus_.neighbor(node, dir), next, mode, memo);
    }
    // Dimension-ordered routing has no second choice: only the first
    // unfinished axis may move.
    if (mode == RoutingMode::kDeterministic) break;
  }
  cache.emplace(key, live);
  return live;
}

bool FaultPlan::pair_routable(topo::Rank src, topo::Rank dst, RoutingMode mode,
                              RouteMemo* memo) const {
  if (!enabled_) return true;
  if (!node_alive(src) || !node_alive(dst)) return false;
  if (src == dst) return true;

  const topo::Coord a = torus_.coord_of(src);
  const topo::Coord b = torus_.coord_of(dst);
  const int axes = torus_.axis_count();
  HopVec hops{};
  std::array<bool, topo::kMaxAxes> tie{};
  for (int axis = 0; axis < axes; ++axis) {
    hops[static_cast<std::size_t>(axis)] =
        static_cast<std::int16_t>(torus_.hops_signed(a[axis], b[axis], axis));
    tie[static_cast<std::size_t>(axis)] = torus_.is_halfway_tie(a[axis], b[axis], axis);
  }
  // Try every sign assignment of the half-way tie axes: a pair is routable
  // when any minimal path under any legal tie resolution survives.
  for (int combo = 0; combo < (1 << axes); ++combo) {
    auto trial = hops;
    bool valid = true;
    for (int axis = 0; axis < axes; ++axis) {
      const bool flip = (combo >> axis) & 1;
      if (flip && !tie[static_cast<std::size_t>(axis)]) {
        valid = false;
        break;
      }
      if (flip) {
        trial[static_cast<std::size_t>(axis)] =
            static_cast<std::int16_t>(-trial[static_cast<std::size_t>(axis)]);
      }
    }
    if (valid && route_live(src, trial, mode, memo)) return true;
  }
  return false;
}

HopVec FaultPlan::choose_hops(topo::Rank src, topo::Rank dst, RoutingMode mode,
                              const std::function<bool()>& coin,
                              RouteMemo* memo) const {
  const topo::Coord a = torus_.coord_of(src);
  const topo::Coord b = torus_.coord_of(dst);
  const int axes = torus_.axis_count();
  HopVec hops{};
  std::array<bool, topo::kMaxAxes> tie{};
  bool any_tie = false;
  for (int axis = 0; axis < axes; ++axis) {
    hops[static_cast<std::size_t>(axis)] =
        static_cast<std::int16_t>(torus_.hops_signed(a[axis], b[axis], axis));
    tie[static_cast<std::size_t>(axis)] = torus_.is_halfway_tie(a[axis], b[axis], axis);
    any_tie = any_tie || tie[static_cast<std::size_t>(axis)];
  }
  if (!any_tie) return hops;

  // Draw the tie coins the same way the fault-free injector does, then keep
  // the draw only if it leads somewhere; otherwise fall back to the first
  // live tie resolution in a fixed enumeration order.
  auto preferred = hops;
  for (int axis = 0; axis < axes; ++axis) {
    if (tie[static_cast<std::size_t>(axis)] && coin()) {
      preferred[static_cast<std::size_t>(axis)] =
          static_cast<std::int16_t>(-preferred[static_cast<std::size_t>(axis)]);
    }
  }
  if (!enabled_ || route_live(src, preferred, mode, memo)) return preferred;
  for (int combo = 0; combo < (1 << axes); ++combo) {
    auto trial = hops;
    bool valid = true;
    for (int axis = 0; axis < axes; ++axis) {
      const bool flip = (combo >> axis) & 1;
      if (flip && !tie[static_cast<std::size_t>(axis)]) {
        valid = false;
        break;
      }
      if (flip) {
        trial[static_cast<std::size_t>(axis)] =
            static_cast<std::int16_t>(-trial[static_cast<std::size_t>(axis)]);
      }
    }
    if (valid && route_live(src, trial, mode, memo)) return trial;
  }
  // No live resolution: return the coin draw; callers gate on pair_routable.
  return preferred;
}

}  // namespace bgl::net
