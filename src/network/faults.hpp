// Deterministic fault injection for the simulated torus.
//
// A FaultPlan expands a FaultConfig into concrete faults on a concrete
// Shape: which undirected links are permanently dead or degraded, which
// nodes are down, and when each transient link failure strikes and repairs.
// The expansion is a pure function of (config, shape) — the plan built by
// the Fabric and the plan a strategy client plans against are guaranteed to
// agree, and a sweep is bit-identical for any worker count.
//
// The plan also carries the minimal-path routability oracle used by
//  - strategy clients, to skip destinations that cannot be reached and to
//    re-pick live intermediates (TPS),
//  - the fabric, to refuse grants that would walk a packet into a dead end
//    it could never leave, and
//  - verification, to define the "reachable pairs" a degraded run must
//    still deliver exactly.
// Routability is evaluated against the *permanent* fault state: transient
// link failures heal, so they delay packets (or force retransmits) without
// making a pair unreachable.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/network/config.hpp"
#include "src/topology/torus.hpp"

namespace bgl::net {

/// Counter-based (stateless) fault randomness: a splitmix64-style mix of a
/// seed and two key words. Every stochastic per-packet fault decision (drop,
/// corruption) is a pure function of (fault seed, flow identity, attempt,
/// hop) through this hash, never a draw from a sequential RNG stream — so
/// the realization is independent of event-processing order and a run
/// reproduces the same faults at any `--sim-threads N`.
inline std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t a,
                                std::uint64_t b) noexcept {
  std::uint64_t x = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b * 0xc2b2ae3d27d4eb4fULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// The hash as a uniform draw in [0, 1) (53 mantissa bits).
inline double fault_unit(std::uint64_t seed, std::uint64_t a,
                         std::uint64_t b) noexcept {
  return static_cast<double>(fault_hash(seed, a, b) >> 11) * 0x1.0p-53;
}

/// Parses the CLI fault spec: a comma-separated list of key:value (or
/// key=value) entries, e.g. "link:0.02,drop:1e-5,seed=7".
///   link:F          fraction of undirected links failed permanently
///   tlink:F         fraction of undirected links failing transiently
///   repair:T        transient downtime in cycles
///   fail_at:T       strike tick for permanent faults (default 0)
///   degrade:F       fraction of undirected links degraded
///   degrade_mult:K  chunk-cycle multiplier on degraded links
///   node:N          number of failed nodes
///   drop:P          per-arrival packet drop probability
///   seed:S          fault-plan seed (0 derives from the network seed)
///   rto:T           base retransmission timeout in cycles
///   retries:N       retransmission budget per packet
/// Throws std::runtime_error with a message naming --faults on malformed
/// input (unknown key, bad number, out-of-range value).
FaultConfig parse_fault_spec(const std::string& text);

/// State of one directed link under the plan.
enum class LinkHealth : std::uint8_t {
  kUp = 0,
  kDegraded = 1,   // serialization takes degrade_mult x chunk_cycles
  kTransient = 2,  // scheduled to fail and repair once
  kDead = 3,       // permanently down from fail_at on
};

/// One transient link outage (applies to both directions of the link).
struct TransientOutage {
  std::int32_t link = 0;  // directed link id of the + direction end
  Tick down_at = 0;
  Tick up_at = 0;
};

class FaultPlan {
 public:
  // Memo key for route_live: exact-match (node, mode, hop vector). A packed
  // uint64 no longer fits now that hops are 4 x int16, so the key hashes
  // FNV-1a over its bytes and compares exactly (no collision risk).
  struct RouteKey {
    topo::Rank node = 0;
    std::uint8_t mode = 0;
    HopVec hops{0, 0, 0, 0};
    friend bool operator==(const RouteKey&, const RouteKey&) = default;
  };
  struct RouteKeyHash {
    std::size_t operator()(const RouteKey& k) const noexcept {
      std::uint64_t h = 1469598103934665603ULL;
      const auto mix = [&h](std::uint64_t v, int bytes) {
        for (int i = 0; i < bytes; ++i) {
          h = (h ^ ((v >> (8 * i)) & 0xffu)) * 1099511628211ULL;
        }
      };
      mix(static_cast<std::uint32_t>(k.node), 4);
      mix(k.mode, 1);
      for (const auto hop : k.hops) mix(static_cast<std::uint16_t>(hop), 2);
      return static_cast<std::size_t>(h);
    }
  };
  /// Routability memo. The plan keeps an internal one for single-threaded
  /// callers; parallel workers pass their own shard-owned memo instead (the
  /// oracle itself is a pure function of immutable plan state, so per-shard
  /// memos answer identically — only the caching is sharded).
  using RouteMemo = std::unordered_map<RouteKey, bool, RouteKeyHash>;

  FaultPlan() = default;

  /// Expands `config.faults` over `shape`. A disabled config yields an
  /// empty plan (`enabled() == false`).
  FaultPlan(const NetworkConfig& config, const topo::Shape& shape);

  bool enabled() const noexcept { return enabled_; }
  const FaultConfig& config() const noexcept { return faults_; }
  const topo::Torus& torus() const noexcept { return torus_; }

  /// Seed the plan actually used (faults.seed, or the value derived from the
  /// network seed when faults.seed == 0); consumers needing more fault
  /// randomness (the fabric's drop RNG) fork from this.
  std::uint64_t derived_seed() const noexcept { return derived_seed_; }

  /// Directed link id, mirroring Fabric::link_id (2n directions per node).
  int link_id(topo::Rank node, int dir) const noexcept {
    return node * torus_.directions() + dir;
  }

  /// Permanent health of a directed link (kTransient links count as up).
  LinkHealth link_health(int link) const noexcept {
    return enabled_ ? static_cast<LinkHealth>(link_state_[static_cast<std::size_t>(link)])
                    : LinkHealth::kUp;
  }
  bool link_dead(int link) const noexcept {
    return link_health(link) == LinkHealth::kDead;
  }
  bool node_alive(topo::Rank node) const noexcept {
    return !enabled_ || node_dead_[static_cast<std::size_t>(node)] == 0;
  }

  const std::vector<TransientOutage>& transients() const noexcept { return transients_; }
  std::size_t dead_link_count() const noexcept { return dead_links_; }
  std::size_t degraded_link_count() const noexcept { return degraded_links_; }
  std::size_t dead_node_count() const noexcept { return dead_nodes_; }

  /// True when a packet at `node` with remaining signed hops `hops` can
  /// still reach its destination over live links and nodes under `mode`
  /// (adaptive: any live path in the minimal DAG; deterministic: the single
  /// dimension-order path). Memoized in `memo` when given, else in the
  /// plan's internal (not thread-safe) memo; call only on plans with faults.
  bool route_live(topo::Rank node, const HopVec& hops, RoutingMode mode,
                  RouteMemo* memo = nullptr) const;

  /// True when (src, dst) is deliverable under `mode`: both endpoints are
  /// alive and some choice of half-way tie directions yields a live minimal
  /// path. Always true on a disabled plan (src != dst assumed).
  bool pair_routable(topo::Rank src, topo::Rank dst, RoutingMode mode,
                     RouteMemo* memo = nullptr) const;

  /// Signed hop vector for (src, dst) with half-way ties resolved toward a
  /// live route when possible; ambiguous live ties are broken with `coin`.
  HopVec choose_hops(topo::Rank src, topo::Rank dst, RoutingMode mode,
                     const std::function<bool()>& coin,
                     RouteMemo* memo = nullptr) const;

  /// Forget memoized routability (call after a permanent fault epoch
  /// change, i.e. when fail_at > 0 strikes).
  void invalidate_routes() const { route_memo_.clear(); }

 private:
  bool enabled_ = false;
  FaultConfig faults_{};
  std::uint64_t derived_seed_ = 0;
  topo::Torus torus_{};
  std::vector<std::uint8_t> link_state_;  // per directed link, LinkHealth
  std::vector<std::uint8_t> node_dead_;
  std::vector<TransientOutage> transients_;
  std::size_t dead_links_ = 0;
  std::size_t degraded_links_ = 0;
  std::size_t dead_nodes_ = 0;

  mutable RouteMemo route_memo_;
};

}  // namespace bgl::net
