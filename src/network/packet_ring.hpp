// Growable power-of-two FIFO ring, the per-buffer packet store of the
// fabric's structure-of-arrays router state.
//
// std::deque<Packet> allocates a separate multi-KB block per buffer (6 ports
// x 3 VCs x P nodes of them) and chases a map of chunk pointers on every
// front()/push_back(). The all-to-all working set keeps only a handful of
// packets per buffer, so a small inline ring that doubles on overflow keeps
// the head/tail hot in cache and allocates nothing at all until a buffer is
// first used. FIFO semantics (and therefore simulation results) are
// identical to the deque it replaces.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bgl::net {

template <typename T>
class RingQueue {
 public:
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  T& front() noexcept {
    assert(count_ > 0);
    return slots_[head_];
  }
  const T& front() const noexcept {
    assert(count_ > 0);
    return slots_[head_];
  }

  /// i-th element from the front (0 == front()); i < size().
  const T& at(std::size_t i) const noexcept {
    assert(i < count_);
    return slots_[(head_ + i) & mask_];
  }

  void push_back(const T& value) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & mask_] = value;
    ++count_;
  }

  void pop_front() noexcept {
    assert(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

  // Minimal forward iteration (front to back) for invariant checks and
  // debug dumps; not invalidation-safe across push/pop.
  class const_iterator {
   public:
    const_iterator(const RingQueue* q, std::size_t i) noexcept : q_(q), i_(i) {}
    const T& operator*() const noexcept { return q_->at(i_); }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& other) const noexcept { return i_ != other.i_; }

   private:
    const RingQueue* q_;
    std::size_t i_;
  };
  const_iterator begin() const noexcept { return const_iterator(this, 0); }
  const_iterator end() const noexcept { return const_iterator(this, count_); }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? kInitialCapacity : slots_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) next[i] = slots_[(head_ + i) & mask_];
    slots_ = std::move(next);
    mask_ = cap - 1;
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 4;

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace bgl::net
