// Configuration of the simulated Blue Gene/L torus network.
//
// Defaults reflect the published BG/L parameters (IBM J. R&D 49(2/3), 2005):
//   - 6 bidirectional links per node, 0.25 B/cycle per direction at 700 MHz;
//     we simulate at 32 B chunk granularity, so one chunk = 128 cycles.
//   - packets of 32..256 B in 32 B multiples (<= 8 chunks);
//   - 1 KB of input-buffer space per virtual channel (32 chunks);
//   - 2 dynamic (adaptive) VCs plus the "bubble normal" escape VC used for
//     deterministic dimension-ordered routing and deadlock prevention. The
//     high-priority VC is not used by all-to-all traffic and is not modeled.
//   - the cores can keep about 4 links busy when data is out of L1
//     (`cpu_links`), the limit the paper measures in Section 2.
#pragma once

#include <array>
#include <cstdint>

#include "src/sim/event_queue.hpp"
#include "src/topology/torus.hpp"

namespace bgl::net {

using sim::Tick;
using topo::Rank;

/// Remaining signed hops per axis (packet route state and the fault layer's
/// routability queries). Fixed capacity kMaxAxes; entries at axes beyond the
/// shape's dimensionality are always 0. int16 covers rings up to 2^15 nodes.
using HopVec = std::array<std::int16_t, topo::kMaxAxes>;

inline constexpr int kChunkBytes = 32;

/// Virtual channels per input port: `dynamic_vcs` adaptive VCs numbered
/// 0..dynamic_vcs-1 followed by the bubble escape VC at index dynamic_vcs.
/// kMaxVcs bounds the per-port buffer array.
inline constexpr int kMaxVcs = 7;

enum class RoutingMode : std::uint8_t {
  kAdaptive = 0,       // dynamic VCs, minimal adaptive (JSQ-like), bubble escape
  kDeterministic = 1,  // dimension order (X, Y, Z) on the bubble VC only
};

/// Deterministic fault-injection parameters. The zero-initialized config is
/// "no faults": every fault code path in the fabric and the end-to-end
/// reliability layer is gated on `enabled()`, so fault-free runs are
/// bit-identical to a build without the subsystem.
///
/// Faults are expanded into a concrete, seeded FaultPlan (see faults.hpp):
/// which links die, when transients strike and recover, which nodes fail.
/// The same (config, shape) pair always yields the same plan.
struct FaultConfig {
  /// Fraction of existing undirected links that fail permanently (both
  /// directions) at `fail_at`.
  double link_fail = 0.0;
  /// Fraction of undirected links that fail transiently: each goes down at
  /// a plan-chosen tick in [fail_at, fail_at + repair_cycles) and comes back
  /// `repair_cycles` later.
  double link_transient = 0.0;
  /// Downtime of a transient link failure, in cycles.
  Tick repair_cycles = 2'000'000;
  /// Tick at which permanent faults (links, nodes, degradations) strike.
  /// 0 (the default) applies them before the first packet; strategies plan
  /// around them. Later strikes are recovered by retransmission only.
  Tick fail_at = 0;
  /// Fraction of undirected links running degraded (rail-degraded midplane):
  /// serialization takes `degrade_mult` x chunk_cycles on those links.
  double degrade = 0.0;
  std::uint32_t degrade_mult = 4;
  /// Number of nodes that fail outright (all their links die with them).
  int node_fail = 0;
  /// Per-arrival probabilistic packet drop (models lost packets).
  double drop_prob = 0.0;
  /// Per-arrival probabilistic payload corruption (Byzantine link): the
  /// packet is *delivered* with flipped payload bits instead of dropped.
  /// The link-level CRC protects the routing header on real BG/L hardware,
  /// so in-simulation header fields stay intact; only the end-to-end payload
  /// checksum is damaged, and the receiver must detect it (see
  /// src/runtime/reliability.hpp).
  double corrupt_prob = 0.0;
  /// Seed of the fault plan; 0 derives from the network seed so repeated
  /// sweeps sample independent fault placements.
  std::uint64_t seed = 0;

  // --- end-to-end reliability knobs (active only when faults are enabled) ---
  /// Base retransmission timeout in cycles; doubles per retry (capped).
  Tick retrans_timeout = 500'000;
  /// Retries before a packet is abandoned and its pair counted undeliverable.
  int max_retries = 10;
  /// A head packet that has not moved for this many cycles is dropped so the
  /// network cannot wedge (end-to-end retransmission recovers it); 0 = auto
  /// (4 x retrans_timeout).
  Tick stuck_drop_cycles = 0;

  /// True when any fault mechanism is configured.
  bool enabled() const noexcept {
    return link_fail > 0.0 || link_transient > 0.0 || degrade > 0.0 ||
           node_fail > 0 || drop_prob > 0.0 || corrupt_prob > 0.0;
  }
  friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

struct NetworkConfig {
  topo::Shape shape{};

  /// Cycles for one 32 B chunk to cross a link (0.25 B/cycle => 128).
  std::uint32_t chunk_cycles = 128;

  /// Largest packet on the wire, in chunks (256 B => 8).
  std::uint16_t max_packet_chunks = 8;

  /// Input buffer capacity per VC, in chunks (1 KB => 32).
  std::uint16_t vc_capacity_chunks = 32;

  /// Number of dynamic (adaptive) VCs per input port. The BG/L router has
  /// two plus chunk-granularity token flow control; at packet granularity
  /// extra VC parallelism stands in for the chunk-level streaming the
  /// packet model cannot express (see DESIGN.md).
  std::uint8_t dynamic_vcs = 2;

  /// Injection FIFOs per node and per-FIFO capacity in chunks (BG/L has 8
  /// injection FIFOs per node).
  std::uint8_t injection_fifos = 8;
  std::uint16_t injection_fifo_chunks = 32;

  /// Links' worth of bandwidth the core can sustain when injecting
  /// (paper Section 2: ~4 out of L1, ~5 in L1).
  double cpu_links = 4.0;

  /// Per-hop pipeline latency in cycles added on top of serialization.
  std::uint32_t hop_latency_cycles = 64;

  /// Seed for all tie-breaking randomness (half-way direction choice).
  std::uint64_t seed = 0x5eedULL;

  bool collect_link_stats = true;

  /// Worker threads for the simulator core. 1 (the default) is the reference
  /// single-threaded engine, bit-identical run to run. Values > 1 partition
  /// the torus into axis-aligned slabs driven by conservative time windows
  /// (see DESIGN.md "Threading model"); results stay deterministic for a
  /// fixed (seed, sim_threads) pair, delivery matrices are preserved
  /// exactly, and completion times may differ from 1-thread runs only
  /// through the relaxed cross-slab credit-return timing. Fault injection
  /// and hop observers run parallel too (counter-based fault draws,
  /// slab-owned fault state, barrier-drained observer buffers — see
  /// DESIGN.md); only zero-cost-link configs (no lookahead window) and
  /// schedules with cross-node extra_deps fall back to 1 thread, and the
  /// fallback cause is reported in RunResult::sim_threads_reason.
  int sim_threads = 1;

  /// Fault injection; the default is a healthy network.
  FaultConfig faults{};

  /// Run the fabric's internal invariant check() at fault events and at the
  /// end of every run (property tests and the sanitizer CI enable this so
  /// fault-path credit leaks fail loudly instead of skewing results).
  bool debug_checks = false;
};

}  // namespace bgl::net
