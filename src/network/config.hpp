// Configuration of the simulated Blue Gene/L torus network.
//
// Defaults reflect the published BG/L parameters (IBM J. R&D 49(2/3), 2005):
//   - 6 bidirectional links per node, 0.25 B/cycle per direction at 700 MHz;
//     we simulate at 32 B chunk granularity, so one chunk = 128 cycles.
//   - packets of 32..256 B in 32 B multiples (<= 8 chunks);
//   - 1 KB of input-buffer space per virtual channel (32 chunks);
//   - 2 dynamic (adaptive) VCs plus the "bubble normal" escape VC used for
//     deterministic dimension-ordered routing and deadlock prevention. The
//     high-priority VC is not used by all-to-all traffic and is not modeled.
//   - the cores can keep about 4 links busy when data is out of L1
//     (`cpu_links`), the limit the paper measures in Section 2.
#pragma once

#include <cstdint>

#include "src/sim/event_queue.hpp"
#include "src/topology/torus.hpp"

namespace bgl::net {

using sim::Tick;
using topo::Rank;

inline constexpr int kChunkBytes = 32;

/// Virtual channels per input port: `dynamic_vcs` adaptive VCs numbered
/// 0..dynamic_vcs-1 followed by the bubble escape VC at index dynamic_vcs.
/// kMaxVcs bounds the per-port buffer array.
inline constexpr int kMaxVcs = 7;

enum class RoutingMode : std::uint8_t {
  kAdaptive = 0,       // dynamic VCs, minimal adaptive (JSQ-like), bubble escape
  kDeterministic = 1,  // dimension order (X, Y, Z) on the bubble VC only
};

struct NetworkConfig {
  topo::Shape shape{};

  /// Cycles for one 32 B chunk to cross a link (0.25 B/cycle => 128).
  std::uint32_t chunk_cycles = 128;

  /// Largest packet on the wire, in chunks (256 B => 8).
  std::uint16_t max_packet_chunks = 8;

  /// Input buffer capacity per VC, in chunks (1 KB => 32).
  std::uint16_t vc_capacity_chunks = 32;

  /// Number of dynamic (adaptive) VCs per input port. The BG/L router has
  /// two plus chunk-granularity token flow control; at packet granularity
  /// extra VC parallelism stands in for the chunk-level streaming the
  /// packet model cannot express (see DESIGN.md).
  std::uint8_t dynamic_vcs = 2;

  /// Injection FIFOs per node and per-FIFO capacity in chunks (BG/L has 8
  /// injection FIFOs per node).
  std::uint8_t injection_fifos = 8;
  std::uint16_t injection_fifo_chunks = 32;

  /// Links' worth of bandwidth the core can sustain when injecting
  /// (paper Section 2: ~4 out of L1, ~5 in L1).
  double cpu_links = 4.0;

  /// Per-hop pipeline latency in cycles added on top of serialization.
  std::uint32_t hop_latency_cycles = 64;

  /// Seed for all tie-breaking randomness (half-way direction choice).
  std::uint64_t seed = 0x5eedULL;

  bool collect_link_stats = true;
};

}  // namespace bgl::net
