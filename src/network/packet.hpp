// In-network packet representation and the client-side injection descriptor.
#pragma once

#include <array>
#include <cstdint>

#include "src/network/config.hpp"
#include "src/topology/torus.hpp"

namespace bgl::net {

/// A packet in flight. Route state is the remaining signed hop count per
/// axis; the sign encodes the travel direction chosen at injection (minimal
/// path, half-way ties broken at random).
struct Packet {
  Rank src = -1;
  Rank dst = -1;
  std::uint64_t tag = 0;            // opaque client cookie
  std::uint32_t payload_bytes = 0;  // application bytes carried (stats only)
  std::uint16_t chunks = 1;         // wire size in 32 B chunks
  /// Remaining signed hops per axis; entries at axes beyond the shape's
  /// dimensionality stay 0. int16 so a 1-D ring of up to 2^15 nodes routes.
  HopVec hops{0, 0, 0, 0};
  RoutingMode mode = RoutingMode::kAdaptive;
  std::uint8_t vc = 0;  // VC the packet currently occupies

  // End-to-end reliability header (rides in the 8 B proto header the chunk
  // accounting already charges; see src/runtime/reliability.hpp). All-zero —
  // and ignored by every fault-free code path — when faults are disabled.
  std::uint32_t seq = 0;       // 1-based per-(src,dst) sequence; 0 = unsequenced
  std::uint32_t ack_cum = 0;   // all sequences <= ack_cum delivered back to src
  std::uint32_t ack_bits = 0;  // SACK bitmap for sequences in (ack_cum, ack_cum+32]
  /// Transmission attempt (0 = first send, k = k-th retransmit, saturating).
  /// Part of the counter-based fault key so a retransmission is not
  /// deterministically re-dropped at the same hop as the original.
  std::uint8_t attempt = 0;
  /// End-to-end payload checksum stamped by the sender over the header and
  /// payload identity; a Byzantine link (corrupt_prob) XORs it in flight and
  /// the receiver rejects the packet on mismatch. All-zero and ignored when
  /// faults are disabled.
  std::uint32_t checksum = 0;

  bool at_destination() const noexcept {
    return hops[0] == 0 && hops[1] == 0 && hops[2] == 0 && hops[3] == 0;
  }

  /// First axis (in dimension order) with remaining hops, or -1 at
  /// destination.
  int dim_order_axis() const noexcept {
    for (int a = 0; a < topo::kMaxAxes; ++a) {
      if (hops[static_cast<std::size_t>(a)] != 0) return a;
    }
    return -1;
  }
};

/// What a client hands the fabric when the node's core injects a packet.
struct InjectDesc {
  Rank dst = -1;
  std::uint64_t tag = 0;
  std::uint32_t payload_bytes = 0;
  std::uint16_t wire_chunks = 1;
  RoutingMode mode = RoutingMode::kAdaptive;
  std::uint8_t fifo = 0;  // injection FIFO index (TPS reserves FIFO groups)
  /// Non-pipelined software cost charged to the core for this packet on top
  /// of the bandwidth-proportional injection cost (the paper's per-message α).
  std::uint32_t extra_cpu_cycles = 0;

  /// Reliability header copied verbatim into the packet (see Packet).
  std::uint32_t seq = 0;
  std::uint32_t ack_cum = 0;
  std::uint32_t ack_bits = 0;
  std::uint32_t checksum = 0;
  std::uint8_t attempt = 0;
};

}  // namespace bgl::net
