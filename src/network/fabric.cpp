#include "src/network/fabric.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace bgl::net {

namespace {

constexpr int axis_of(int dir) noexcept { return dir / 2; }
constexpr int sign_of(int dir) noexcept { return (dir % 2 == 0) ? +1 : -1; }
constexpr int dir_index(int axis, int sign) noexcept { return axis * 2 + (sign > 0 ? 0 : 1); }

/// Events between watchdog polls on a parallel worker (mirrors
/// sim::Engine::kAbortPollMask).
constexpr std::uint64_t kMtPollMask = 0x1fff;

}  // namespace

thread_local Fabric::Shard* Fabric::shard_ctx_ = nullptr;

Fabric::Fabric(const NetworkConfig& config, Client& client)
    : config_(config),
      torus_(config.shape),
      client_(&client),
      engine_(*this),
      rng_(config.seed) {
  for (int a = 0; a < config_.shape.axis_count(); ++a) {
    // Route state is int16 signed hops per axis; a ring of 32768 peaks at
    // 16384 hops.
    if (config_.shape.dim[static_cast<std::size_t>(a)] > 32768) {
      throw std::invalid_argument("dimension extent > 32768 not supported");
    }
  }
  if (config_.shape.nodes() > std::numeric_limits<std::int32_t>::max()) {
    throw std::invalid_argument("node count overflows int32");
  }
  if (config_.injection_fifos == 0) throw std::invalid_argument("need >= 1 injection FIFO");
  if (config_.max_packet_chunks == 0 ||
      config_.max_packet_chunks > config_.vc_capacity_chunks) {
    throw std::invalid_argument("max packet must fit in a VC buffer");
  }

  if (config_.dynamic_vcs < 1 || config_.dynamic_vcs >= kMaxVcs) {
    throw std::invalid_argument("dynamic_vcs must be in [1, kMaxVcs)");
  }

  const int nodes = torus_.nodes();
  dirs_ = torus_.directions();
  fifo_count_ = config_.injection_fifos;
  inputs_per_link_ = dirs_ + fifo_count_;
  vcs_ = config_.dynamic_vcs + 1;
  vc_bubble_ = config_.dynamic_vcs;

  // The bubble escape VC is accounted in max-packet *slots* (one per packet
  // regardless of its size): chunk-granular accounting lets small packets
  // fragment the escape ring's free space until no full-sized packet can
  // continue anywhere, wedging the ring despite the bubble invariant.
  bubble_slots_ = config_.vc_capacity_chunks / config_.max_packet_chunks;
  if (bubble_slots_ < 2) {
    throw std::invalid_argument("VC buffer must hold >= 2 max packets (bubble rule)");
  }
  buffers_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(dirs_) *
                  static_cast<std::size_t>(vcs_));
  buffer_free_.assign(buffers_.size(), config_.vc_capacity_chunks);
  for (Rank n = 0; n < nodes; ++n) {
    for (int p = 0; p < dirs_; ++p) {
      buffer_free_[static_cast<std::size_t>(buf_id(n, p, vc_bubble_))] = bubble_slots_;
    }
  }

  buffer_want_.assign(buffers_.size(), 0);

  fifos_.resize(static_cast<std::size_t>(nodes) * fifo_count_);
  fifo_free_.assign(fifos_.size(), config_.injection_fifo_chunks);
  fifo_want_.assign(fifos_.size(), 0);

  const std::size_t links =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(dirs_);
  link_busy_until_.assign(links, 0);
  node_dir_want_.assign(links, 0);
  arb_scheduled_.assign(links, 0);
  rr_next_.assign(links, 0);
  link_peer_.resize(links);
  link_busy_.assign(links, 0);
  for (Rank n = 0; n < nodes; ++n) {
    for (int d = 0; d < dirs_; ++d) {
      link_peer_[static_cast<std::size_t>(link_id(n, d))] =
          torus_.neighbor(n, topo::Direction::from_index(d));
    }
  }

  cpu_.resize(static_cast<std::size_t>(nodes));

  engine_.set_strict(config_.debug_checks);
  // Conservative lookahead of the parallel run: any cross-slab packet takes
  // at least one chunk of serialization plus the hop latency, so a window of
  // that length can be simulated per slab without seeing a neighbor's events.
  window_cycles_ = static_cast<Tick>(config_.chunk_cycles) + config_.hop_latency_cycles;

  init_faults();
}

void Fabric::init_faults() {
  fault_plan_ = FaultPlan(config_, config_.shape);
  faults_active_ = fault_plan_.enabled();
  if (!faults_active_) return;
  const FaultConfig& fc = config_.faults;
  // fail_at == 0: permanent faults are applied (and planned around) from the
  // start, exactly as before. fail_at > 0: the network runs blind until the
  // strike — doomed nodes pump, traffic routes into them — and the plan's
  // permanent state only becomes consultable at kPermStrike.
  struck_ = (fc.fail_at == 0);
  drop_seed_ = fault_plan_.derived_seed() ^ 0x64726f70ULL;     // "drop"
  corrupt_seed_ = fault_plan_.derived_seed() ^ 0x636f7272ULL;  // "corr"
  stuck_cycles_ =
      fc.stuck_drop_cycles != 0 ? fc.stuck_drop_cycles : 4 * fc.retrans_timeout;
  link_down_.assign(link_peer_.size(), 0);
  link_degraded_.assign(link_peer_.size(), 0);
  head_since_.assign(buffers_.size(), 0);
  fifo_head_since_.assign(fifos_.size(), 0);
  for (std::size_t l = 0; l < link_peer_.size(); ++l) {
    const LinkHealth health = fault_plan_.link_health(static_cast<int>(l));
    if (health == LinkHealth::kDegraded) link_degraded_[l] = 1;
    if (health == LinkHealth::kDead && fc.fail_at == 0) link_down_[l] = 1;
  }
}

void Fabric::prime_fault_events() {
  if (!faults_active_ || fault_events_scheduled_) return;
  fault_events_scheduled_ = true;
  const FaultConfig& fc = config_.faults;
  const bool strike_pending =
      fc.fail_at > 0 &&
      fault_plan_.dead_link_count() + fault_plan_.dead_node_count() > 0;
  if (shards_.empty()) {
    if (strike_pending) engine_.schedule(fc.fail_at, kEvFault, kPermStrike, 0);
    for (std::uint32_t i = 0; i < fault_plan_.transients().size(); ++i) {
      const TransientOutage& outage = fault_plan_.transients()[i];
      engine_.schedule(outage.down_at, kEvFault, i, 0);
      engine_.schedule(outage.up_at, kEvFault, i, 1);
    }
    return;
  }
  // Parallel run: the strike goes to every slab (each applies its own slice
  // of links, cores and in-flight packets); a transient outage goes to the
  // owner slab(s) of its two directed ends.
  if (strike_pending) {
    for (Shard& shard : shards_) shard.wheel.push(fc.fail_at, kEvFault, kPermStrike, 0);
  }
  for (std::uint32_t i = 0; i < fault_plan_.transients().size(); ++i) {
    const TransientOutage& outage = fault_plan_.transients()[i];
    const Rank node_a = static_cast<Rank>(outage.link / dirs_);
    const Rank node_b = link_peer_[static_cast<std::size_t>(outage.link)];
    const std::int32_t slab_a = node_slab_[static_cast<std::size_t>(node_a)];
    const std::int32_t slab_b = node_slab_[static_cast<std::size_t>(node_b)];
    shards_[static_cast<std::size_t>(slab_a)].wheel.push(outage.down_at, kEvFault, i, 0);
    shards_[static_cast<std::size_t>(slab_a)].wheel.push(outage.up_at, kEvFault, i, 1);
    if (slab_b != slab_a) {
      shards_[static_cast<std::size_t>(slab_b)].wheel.push(outage.down_at, kEvFault, i, 0);
      shards_[static_cast<std::size_t>(slab_b)].wheel.push(outage.up_at, kEvFault, i, 1);
    }
  }
}

bool Fabric::run(Tick deadline) {
  const int threads = plan_threads();
  if (threads > 1) return run_parallel(threads, deadline);
  if (!primed_) {
    primed_ = true;
    prime_fault_events();
    const int nodes = torus_.nodes();
    for (Rank n = 0; n < nodes; ++n) {
      CpuState& cpu = cpu_[static_cast<std::size_t>(n)];
      if (faults_active_ && struck_ && !fault_plan_.node_alive(n)) {
        cpu.idle = true;  // a dead node's core never pumps
        continue;
      }
      cpu.pump_scheduled = true;
      engine_.schedule(0, kEvCpu, static_cast<std::uint32_t>(n));
    }
  }
  const bool quiescent = engine_.run(deadline);
  if (config_.debug_checks) run_debug_checks(quiescent);
  return quiescent;
}

int Fabric::plan_threads(ThreadFallbackReason* reason) const noexcept {
  const auto give = [reason](ThreadFallbackReason r) {
    if (reason != nullptr) *reason = r;
  };
  int threads = config_.sim_threads;
  if (threads <= 1) {
    give(ThreadFallbackReason::kNotRequested);
    return 1;
  }
  // The only remaining hard fallback: a zero lookahead window (zero-cost
  // links) would serialize the slabs anyway. Faults and hop observers are
  // slab-eligible — counter-based fault draws and barrier-drained observer
  // buffers need no global event order.
  if (window_cycles_ == 0) {
    give(ThreadFallbackReason::kZeroWindow);
    return 1;
  }
  // A run primed into the engine (an earlier single-threaded call) cannot
  // migrate mid-flight.
  if (primed_ && !mt_primed_) {
    give(ThreadFallbackReason::kPrimedEngine);
    return 1;
  }
  const int extent = config_.shape.dim[static_cast<std::size_t>(slab_axis())];
  if (extent <= 1) {
    give(ThreadFallbackReason::kNarrowShape);
    return 1;
  }
  give(ThreadFallbackReason::kNone);
  return std::max(1, std::min(threads, extent));
}

int Fabric::slab_axis() const noexcept {
  int best = 0;
  for (int a = 1; a < config_.shape.axis_count(); ++a) {
    if (config_.shape.dim[static_cast<std::size_t>(a)] >=
        config_.shape.dim[static_cast<std::size_t>(best)]) {
      best = a;
    }
  }
  return best;
}

void Fabric::setup_shards(int threads) {
  const int axis = slab_axis();
  const auto extent =
      static_cast<std::int64_t>(config_.shape.dim[static_cast<std::size_t>(axis)]);
  node_slab_.assign(static_cast<std::size_t>(torus_.nodes()), 0);
  for (Rank n = 0; n < torus_.nodes(); ++n) {
    const auto c = static_cast<std::int64_t>(torus_.coord_of(n)[axis]);
    node_slab_[static_cast<std::size_t>(n)] =
        static_cast<std::int32_t>(c * threads / extent);
  }
  shards_.clear();
  shards_.resize(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    Shard& shard = shards_[static_cast<std::size_t>(i)];
    shard.id = i;
    // Independent per-slab stream derived from the run seed, so a run is
    // reproducible for a fixed (seed, sim_threads) pair.
    shard.rng = util::Xoshiro256StarStar(
        config_.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1));
    shard.outbox.resize(static_cast<std::size_t>(threads));
    shard.struck = struck_;
  }
}

bool Fabric::run_parallel(int threads, Tick deadline) {
  if (!mt_primed_) {
    setup_shards(threads);
    mt_primed_ = true;
    primed_ = true;
    prime_fault_events();
    for (Rank n = 0; n < torus_.nodes(); ++n) {
      CpuState& cpu = cpu_[static_cast<std::size_t>(n)];
      if (faults_active_ && struck_ && !fault_plan_.node_alive(n)) {
        cpu.idle = true;  // a dead node's core never pumps
        continue;
      }
      cpu.pump_scheduled = true;
      shards_[static_cast<std::size_t>(node_slab_[static_cast<std::size_t>(n)])]
          .wheel.push(0, kEvCpu, static_cast<std::uint32_t>(n), 0);
    }
  }
  mt_done_ = false;
  mt_drained_ = false;
  mt_aborted_ = false;
  mt_abort_flag_.store(false, std::memory_order_relaxed);
  advance_window(deadline);
  if (!mt_done_) {
    std::barrier sync(threads, [this, deadline]() noexcept { barrier_phase(deadline); });
    auto worker = [&](int index) {
      Shard& shard = shards_[static_cast<std::size_t>(index)];
      for (;;) {
        try {
          shard_step(shard);
        } catch (...) {
          shard_ctx_ = nullptr;
          {
            const std::lock_guard<std::mutex> lock(mt_error_mutex_);
            if (!mt_error_) mt_error_ = std::current_exception();
          }
          mt_abort_flag_.store(true, std::memory_order_relaxed);
        }
        sync.arrive_and_wait();
        if (mt_done_) break;
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads) - 1);
    for (int i = 1; i < threads; ++i) pool.emplace_back(worker, i);
    worker(0);
    for (std::thread& t : pool) t.join();
  }
  merge_shard_stats();
  if (mt_error_) {
    const std::exception_ptr error = mt_error_;
    mt_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (config_.debug_checks) run_debug_checks(mt_drained_);
  return mt_drained_;
}

void Fabric::shard_step(Shard& shard) {
  shard_ctx_ = &shard;
  const Tick limit = window_end_ - 1;  // window_end_ is exclusive and >= 1
  while (auto event = shard.wheel.pop_if_at_most(limit)) {
    shard.now = event->time;
    ++shard.processed;
    handle(*event);
    if ((shard.processed & kMtPollMask) == 0) {
      if (mt_abort_flag_.load(std::memory_order_relaxed)) break;
      if (shard.id == 0 && abort_check_ && abort_check_()) {
        mt_abort_flag_.store(true, std::memory_order_relaxed);
        break;
      }
    }
  }
  shard_ctx_ = nullptr;
}

void Fabric::barrier_phase(Tick deadline) noexcept {
  // Runs on exactly one thread, between the last arrive and the release:
  // every worker's window writes happen-before this and its reads
  // happen-after, so boundary application needs no further synchronization.
  // Hop-observer buffers drain first (they describe the window just
  // finished), then boundary messages in deterministic order: by source
  // shard, then destination, then insertion.
  if (hop_observer_) {
    try {
      drain_hop_logs();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mt_error_mutex_);
      if (!mt_error_) mt_error_ = std::current_exception();
      mt_abort_flag_.store(true, std::memory_order_relaxed);
    }
  }
  for (Shard& src : shards_) {
    for (std::size_t d = 0; d < src.outbox.size(); ++d) {
      for (const BoundaryMsg& msg : src.outbox[d]) apply_boundary(shards_[d], msg);
      src.outbox[d].clear();
    }
  }
  shard_ctx_ = nullptr;
  if (mt_abort_flag_.load(std::memory_order_relaxed)) {
    mt_done_ = true;
    mt_drained_ = false;
    if (!mt_error_) mt_aborted_ = true;  // watchdog abort, not a worker error
    return;
  }
  advance_window(deadline);
}

void Fabric::advance_window(Tick deadline) {
  Tick min_next = ~Tick{0};
  bool any = false;
  for (Shard& shard : shards_) {
    if (const auto t = shard.wheel.next_time()) {
      any = true;
      min_next = std::min(min_next, *t);
    }
  }
  if (!any) {
    mt_done_ = true;
    mt_drained_ = true;
    return;
  }
  if (min_next > deadline) {
    mt_done_ = true;
    mt_drained_ = false;
    return;
  }
  Tick end = min_next + window_cycles_;
  if (end < min_next) end = ~Tick{0};                          // saturate
  if (deadline != ~Tick{0} && end > deadline + 1) end = deadline + 1;
  window_end_ = end;
  // Window starts never retreat a slab's own clock (a neighbor's boundary
  // credit may hold the global minimum below a busier slab's local time).
  for (Shard& shard : shards_) shard.now = std::max(shard.now, min_next);
}

void Fabric::apply_boundary(Shard& dst, const BoundaryMsg& msg) {
  shard_ctx_ = &dst;
  if (msg.is_credit) {
    buffer_free_[static_cast<std::size_t>(msg.buf)] += msg.chunks;
    // The wake fires no earlier than the receiving slab's clock: a boundary
    // credit may thus act up to one window later than an in-slab return
    // would have (the documented timing relaxation of the parallel run).
    schedule_arb_if_idle(msg.node, msg.port, std::max(msg.at, dst.now));
  } else {
    const std::uint32_t slot = alloc_flight_slot();
    FlightSlot& flight = dst.flights[slot];
    flight.packet = msg.packet;
    flight.to_node = msg.node;
    flight.link = msg.link;
    flight.port = msg.port;
    flight.deliver = msg.deliver;
    // A boundary packet whose link is down right now died on the wire: the
    // outage event fired while the handoff sat in the outbox, so the
    // receiving slab's arena scan could not mark it.
    if (faults_active_ && link_down_[static_cast<std::size_t>(msg.link)] != 0) {
      flight.dropped = true;
    }
    dst.wheel.push(msg.at, kEvArrival, slot, 0);
  }
}

void Fabric::drain_hop_logs() {
  // Merge all slabs' buffered grants and replay them in (tick, link) order —
  // total and deterministic, since a link grants at most once per tick.
  hop_scratch_.clear();
  for (Shard& shard : shards_) {
    hop_scratch_.insert(hop_scratch_.end(), shard.hop_log.begin(), shard.hop_log.end());
    shard.hop_log.clear();
  }
  std::sort(hop_scratch_.begin(), hop_scratch_.end(),
            [](const HopRecord& a, const HopRecord& b) {
              return a.at != b.at ? a.at < b.at : a.link < b.link;
            });
  for (const HopRecord& rec : hop_scratch_) {
    hop_observer_(rec.packet, static_cast<Rank>(rec.link / static_cast<std::uint32_t>(dirs_)),
                  static_cast<int>(rec.link % static_cast<std::uint32_t>(dirs_)),
                  rec.target);
  }
}

void Fabric::merge_shard_stats() {
  FabricStats total;
  std::int64_t net = 0;
  std::uint64_t events = 0;
  bool struck = struck_;
  FaultStats ftotal;
  // stranded_relay_bytes is computed post-run by the strategy client and
  // written into the global counter, never into a shard; preserve it across
  // merges (the recovery loop re-runs the fabric after it is set).
  ftotal.stranded_relay_bytes = fault_stats_.stranded_relay_bytes;
  for (const Shard& shard : shards_) {
    total.packets_injected += shard.stats.packets_injected;
    total.packets_delivered += shard.stats.packets_delivered;
    total.payload_bytes_delivered += shard.stats.payload_bytes_delivered;
    total.chunk_hops += shard.stats.chunk_hops;
    total.first_injection = std::min(total.first_injection, shard.stats.first_injection);
    total.last_delivery = std::max(total.last_delivery, shard.stats.last_delivery);
    total.arb_grants += shard.stats.arb_grants;
    total.arb_no_candidate += shard.stats.arb_no_candidate;
    total.arb_blocked += shard.stats.arb_blocked;
    net += shard.in_network;
    events += shard.processed;
    struck = struck || shard.struck;
    ftotal.dropped_in_flight += shard.fstats.dropped_in_flight;
    ftotal.dropped_prob += shard.fstats.dropped_prob;
    ftotal.dropped_stuck += shard.fstats.dropped_stuck;
    ftotal.corrupted_payloads += shard.fstats.corrupted_payloads;
    ftotal.unroutable_at_injection += shard.fstats.unroutable_at_injection;
    ftotal.reroute_vetoes += shard.fstats.reroute_vetoes;
    ftotal.transient_strikes += shard.fstats.transient_strikes;
    ftotal.link_down_cycles += shard.fstats.link_down_cycles;
    ftotal.stranded_relay_bytes += shard.fstats.stranded_relay_bytes;
  }
  stats_ = total;
  in_network_ = net;
  mt_events_ = events;
  if (faults_active_) {
    fault_stats_ = ftotal;
    if (struck && !struck_) {
      struck_ = true;  // post-run queries see the struck state
      fault_plan_.invalidate_routes();
    }
  }
}

void Fabric::post(Tick at, std::uint32_t type, std::uint32_t a, std::uint64_t b) {
  Shard* shard = shard_ctx_;
  if (shard == nullptr) {
    engine_.schedule(at, type, a, b);
    return;
  }
  if (at < shard->now) {
    if (config_.debug_checks) {
      throw std::logic_error("Fabric::post into the past: type=" + std::to_string(type) +
                             " at=" + std::to_string(at) +
                             " now=" + std::to_string(shard->now));
    }
    at = shard->now;
  }
  shard->wheel.push(at, type, a, b);
}

void Fabric::run_debug_checks(bool quiescent) const {
  const std::string violation = check_invariants(quiescent);
  if (!violation.empty()) {
    throw std::logic_error("fabric invariant violated: " + violation);
  }
}

void Fabric::handle(const sim::Event& event) {
  switch (event.type) {
    case kEvArb:
      arbitrate(static_cast<int>(event.a));
      break;
    case kEvArrival:
      on_arrival(event.a);
      break;
    case kEvCpu:
      pump_cpu(static_cast<Rank>(event.a));
      break;
    case kEvTimer:
      // Timers of a fail-stopped node die with it: its reliability scan loop
      // would otherwise re-arm forever and the run could only end by
      // exhausting the watchdog timeout.
      if (node_alive_now(static_cast<Rank>(event.a))) {
        client_->on_timer(static_cast<Rank>(event.a), event.b);
      }
      break;
    case kEvFault:
      on_fault_event(event.a, event.b);
      break;
    case kEvSweep:
      stuck_sweep();
      break;
    default:
      assert(false && "unknown event type");
  }
}

void Fabric::wake_cpu(Rank node) {
  if (!node_alive_now(node)) return;
  CpuState& cpu = cpu_[static_cast<std::size_t>(node)];
  if (cpu.stalled) return;  // will resume when its FIFO drains
  cpu.idle = false;
  if (cpu.pump_scheduled) return;
  cpu.pump_scheduled = true;
  post(std::max(now(), cpu.next_free), kEvCpu, static_cast<std::uint32_t>(node));
}

void Fabric::schedule_timer(Rank node, Tick delay, std::uint64_t cookie) {
  post(now() + delay, kEvTimer, static_cast<std::uint32_t>(node), cookie);
}

int Fabric::fifo_free_chunks(Rank node, int fifo) const {
  return fifo_free_[static_cast<std::size_t>(fifo_id(node, fifo))];
}

int Fabric::pick_fifo(Rank node, int begin, int end) const {
  int best = begin;
  int best_free = -1;
  for (int f = begin; f < end; ++f) {
    const int free = fifo_free_chunks(node, f);
    if (free > best_free) {
      best_free = free;
      best = f;
    }
  }
  return best;
}

Tick Fabric::cpu_inject_cycles(const InjectDesc& desc) const noexcept {
  const double bandwidth_cost =
      static_cast<double>(desc.wire_chunks) * config_.chunk_cycles / config_.cpu_links;
  const Tick cycles = desc.extra_cpu_cycles + static_cast<Tick>(std::ceil(bandwidth_cost));
  return cycles == 0 ? 1 : cycles;
}

void Fabric::pump_cpu(Rank node) {
  CpuState& cpu = cpu_[static_cast<std::size_t>(node)];
  cpu.pump_scheduled = false;
  if (!node_alive_now(node)) {
    // A pump queued before the node fail-stopped; the core is dead.
    cpu.idle = true;
    return;
  }
  if (now() < cpu.next_free) {
    cpu.pump_scheduled = true;
    post(cpu.next_free, kEvCpu, static_cast<std::uint32_t>(node));
    return;
  }

  if (cpu.stalled) {
    if (!try_inject(node, cpu.pending)) return;  // still no FIFO space
    cpu.stalled = false;
  } else {
    InjectDesc desc;
    if (!client_->next_packet(node, desc)) {
      cpu.idle = true;
      return;
    }
    assert(desc.dst >= 0 && desc.dst < torus_.nodes() && desc.dst != node);
    assert(desc.wire_chunks >= 1 && desc.wire_chunks <= config_.max_packet_chunks);
    assert(desc.fifo < fifo_count_);
    if (!try_inject(node, desc)) {
      cpu.pending = desc;
      cpu.stalled = true;
      return;  // resumes when the FIFO pops
    }
    cpu.pending = desc;  // keep for cost accounting below
  }

  cpu.next_free = now() + cpu_inject_cycles(cpu.pending);
  cpu.pump_scheduled = true;
  post(cpu.next_free, kEvCpu, static_cast<std::uint32_t>(node));
}

bool Fabric::try_inject(Rank node, const InjectDesc& desc) {
  if (faults_active_ && struck_now() &&
      !fault_plan_.pair_routable(node, desc.dst, desc.mode, live_route_memo())) {
    // No live minimal path can ever deliver this packet. Consume the
    // descriptor (the core still pays its injection cost) and count it,
    // rather than letting an undeliverable packet wedge a FIFO forever.
    ++live_fault_stats().unroutable_at_injection;
    return true;
  }
  const std::size_t fid = static_cast<std::size_t>(fifo_id(node, desc.fifo));
  if (fifo_free_[fid] < desc.wire_chunks) return false;

  Packet packet;
  packet.src = node;
  packet.dst = desc.dst;
  packet.tag = desc.tag;
  packet.payload_bytes = desc.payload_bytes;
  packet.chunks = desc.wire_chunks;
  packet.mode = desc.mode;
  packet.seq = desc.seq;
  packet.ack_cum = desc.ack_cum;
  packet.ack_bits = desc.ack_bits;
  packet.checksum = desc.checksum;
  packet.attempt = desc.attempt;

  if (faults_active_ && struck_now()) {
    // Same tie-coin draw as below, but steered away from tie resolutions
    // whose minimal DAG is severed by permanent faults.
    packet.hops = fault_plan_.choose_hops(node, desc.dst, desc.mode,
                                          [this] { return live_rng().coin(); },
                                          live_route_memo());
  } else {
    const topo::Coord from = torus_.coord_of(node);
    const topo::Coord to = torus_.coord_of(desc.dst);
    for (int a = 0; a < torus_.axis_count(); ++a) {
      int signed_hops = torus_.hops_signed(from[a], to[a], a);
      // A half-way destination on an even torus ring is reachable both ways;
      // random choice balances the two directions across the all-to-all.
      if (signed_hops != 0 && torus_.is_halfway_tie(from[a], to[a], a) &&
          live_rng().coin()) {
        signed_hops = -signed_hops;
      }
      packet.hops[static_cast<std::size_t>(a)] = static_cast<std::int16_t>(signed_hops);
    }
  }
  assert(!packet.at_destination());

  fifo_free_[fid] -= desc.wire_chunks;
  const bool becomes_head = fifos_[fid].empty();
  fifos_[fid].push_back(packet);
  ++live_in_network();
  FabricStats& stats = live_stats();
  if (stats.first_injection == FabricStats::kNever) stats.first_injection = now();
  ++stats.packets_injected;
  if (becomes_head) {
    set_fifo_want(fid, want_mask(packet));
    if (faults_active_) fifo_head_since_[fid] = now();
    schedule_profitable_arbs(node, packet);
  }
  if (faults_active_) arm_sweep();
  return true;
}

void Fabric::schedule_arb_if_idle(Rank node, int dir) {
  schedule_arb_if_idle(node, dir, now());
}

void Fabric::schedule_arb_if_idle(Rank node, int dir, Tick at) {
  const std::size_t link = static_cast<std::size_t>(link_id(node, dir));
  if (link_peer_[link] < 0) return;        // mesh edge: no link
  if (faults_active_ && link_down_[link]) return;  // re-armed at repair
  if (arb_scheduled_[link]) return;
  if (link_busy_until_[link] > at) return;  // busy-end arb already pending
  // Skip the event when no current head wants this output; whichever future
  // head appears will trigger its own wakeup. This prunes the vast majority
  // of would-be no-candidate arbitration events under congestion. The
  // per-(node, dir) head counter answers in one load (the predicate is
  // identical to scanning every buffer/FIFO want mask, which the want
  // setters keep it in lockstep with).
  if (node_dir_want_[link] == 0) return;
  arb_scheduled_[link] = 1;
  post(at, kEvArb, static_cast<std::uint32_t>(link));
}

void Fabric::schedule_profitable_arbs(Rank node, const Packet& packet) {
  if (packet.mode == RoutingMode::kDeterministic) {
    const int axis = packet.dim_order_axis();
    if (axis < 0) return;
    const int sign = packet.hops[static_cast<std::size_t>(axis)] > 0 ? +1 : -1;
    schedule_arb_if_idle(node, dir_index(axis, sign));
    return;
  }
  for (int a = 0; a < topo::kMaxAxes; ++a) {
    const std::int16_t h = packet.hops[static_cast<std::size_t>(a)];
    if (h != 0) schedule_arb_if_idle(node, dir_index(a, h > 0 ? +1 : -1));
  }
}

bool Fabric::wants_output(const Packet& packet, int axis, int sign) noexcept {
  const std::int16_t h = packet.hops[static_cast<std::size_t>(axis)];
  if (packet.mode == RoutingMode::kAdaptive) {
    return static_cast<int>(h) * sign > 0;
  }
  return packet.dim_order_axis() == axis && static_cast<int>(h) * sign > 0;
}

std::uint8_t Fabric::want_mask(const Packet& packet) noexcept {
  if (packet.mode == RoutingMode::kDeterministic) {
    const int axis = packet.dim_order_axis();
    if (axis < 0) return 0;
    const int sign = packet.hops[static_cast<std::size_t>(axis)] > 0 ? +1 : -1;
    return static_cast<std::uint8_t>(1u << dir_index(axis, sign));
  }
  std::uint8_t mask = 0;
  for (int a = 0; a < topo::kMaxAxes; ++a) {
    const std::int16_t h = packet.hops[static_cast<std::size_t>(a)];
    if (h != 0) mask |= static_cast<std::uint8_t>(1u << dir_index(a, h > 0 ? +1 : -1));
  }
  return mask;
}

int Fabric::select_downstream(const Packet& packet, Rank node, int dir, bool entering) const {
  const int axis = axis_of(dir);
  const int sign = sign_of(dir);
  // Delivery: this hop is the packet's last.
  if (packet.hops[static_cast<std::size_t>(axis)] == sign) {
    bool others_zero = true;
    for (int a = 0; a < topo::kMaxAxes; ++a) {
      if (a != axis && packet.hops[static_cast<std::size_t>(a)] != 0) others_zero = false;
    }
    if (others_zero) return kDeliverHere;
  }

  const Rank peer = link_peer_[static_cast<std::size_t>(link_id(node, dir))];
  assert(peer >= 0);

  if (packet.mode == RoutingMode::kAdaptive) {
    // JSQ across the two dynamic VCs: take the one with most free space.
    // BG/L's token flow control works at 32 B granularity with virtual
    // cut-through, so a transfer may *start* as soon as any space exists:
    // the tail chunks stream in as the buffer drains (only one link feeds
    // each buffer, so nobody else can claim that space). We model this by
    // granting with >= 1 free chunk and letting the counter go transiently
    // negative by at most a packet; strict full-packet accounting would
    // leave links idle whenever free < packet size and caps all-to-all
    // throughput near 50% — far below the hardware's measured behaviour.
    int best = kBlocked;
    std::int32_t best_free = 0;
    for (int vc = 0; vc < vc_bubble_; ++vc) {
      const std::int32_t free = buffer_free_[static_cast<std::size_t>(buf_id(peer, dir, vc))];
      if (free > best_free) {
        best_free = free;
        best = vc;
      }
    }
    if (best != kBlocked) return best;
    // Escape path: bubble VC, only along the dimension-order hop.
    if (packet.dim_order_axis() != axis) return kBlocked;
  }

  // Bubble VC with the bubble insertion rule, in max-packet slots: a packet
  // entering the ring (from injection, a turn, or a dynamic VC) must leave
  // one whole slot free; a packet continuing along the ring needs only its
  // own slot.
  const std::int32_t free = buffer_free_[static_cast<std::size_t>(buf_id(peer, dir, vc_bubble_))];
  const std::int32_t need = entering ? 2 : 1;
  return free >= need ? vc_bubble_ : kBlocked;
}

void Fabric::arbitrate(int link) {
  const std::size_t lk = static_cast<std::size_t>(link);
  arb_scheduled_[lk] = 0;
  if (link_busy_until_[lk] > now()) return;
  if (faults_active_ && link_down_[lk]) return;  // a down link grants nothing
  const Rank peer = link_peer_[lk];
  if (peer < 0) return;

  const Rank node = static_cast<Rank>(link / dirs_);
  const int dir = link % dirs_;
  const int axis = axis_of(dir);
  const std::uint8_t dir_bit = static_cast<std::uint8_t>(1u << dir);

  // Transit traffic has strict priority over injection (as on BG/L: a
  // packet already in the network covers several hops, so flow conservation
  // requires transit to win most grants; fair sharing with injection clogs
  // the network and collapses throughput). Round-robin within each class.
  // The contiguous want-mask arrays let the scan skip ineligible inputs
  // without touching the packet deques.
  bool saw_candidate = false;
  const int start = rr_next_[lk];

  for (int i = 0; i < dirs_; ++i) {
    const int input = (start + i) % dirs_;
    const int base = buf_id(node, input, 0);
    for (int vc = 0; vc < vcs_; ++vc) {
      if ((buffer_want_[static_cast<std::size_t>(base + vc)] & dir_bit) == 0) continue;
      auto& queue = buffers_[static_cast<std::size_t>(base + vc)];
      Packet& head = queue.front();
      // A packet "continues" on the bubble ring only if it is already on the
      // bubble VC and keeps its axis; joining the ring from a dynamic VC or
      // from another dimension is an entry and must pay the bubble rule.
      const bool entering = (axis_of(input) != axis) || (vc != vc_bubble_);
      saw_candidate = true;
      const int target = select_downstream(head, node, dir, entering);
      if (target == kBlocked) continue;
      // Never walk a packet into a region it could not leave: if the
      // remaining minimal DAG past `peer` is severed by permanent faults,
      // refuse this output (adaptive packets take another live direction).
      if (faults_active_ && struck_now() && target != kDeliverHere &&
          !continuation_live(head, peer, dir)) {
        ++live_fault_stats().reroute_vetoes;
        continue;
      }

      const Packet granted = head;
      queue.pop_front();
      const std::int32_t credit = (vc == vc_bubble_ ? 1 : granted.chunks);
      // Credit return: the upstream link feeding this buffer may now proceed.
      // The free counter is owned by the feeder's slab, so when that slab is
      // not ours the return travels as a boundary message instead.
      const Rank upstream = torus_.neighbor(node, topo::Direction::from_index(input ^ 1));
      const bool credit_cross =
          shard_ctx_ != nullptr && upstream >= 0 &&
          node_slab_[static_cast<std::size_t>(upstream)] != shard_ctx_->id;
      if (!credit_cross) buffer_free_[static_cast<std::size_t>(base + vc)] += credit;
      set_buffer_want(static_cast<std::size_t>(base + vc),
                      queue.empty() ? 0 : want_mask(queue.front()));
      if (faults_active_ && !queue.empty()) {
        head_since_[static_cast<std::size_t>(base + vc)] = now();
      }
      if (credit_cross) {
        BoundaryMsg msg;
        msg.at = now();
        msg.node = upstream;
        msg.buf = base + vc;
        msg.chunks = credit;
        msg.port = static_cast<std::uint8_t>(input);
        msg.is_credit = true;
        shard_ctx_->outbox[static_cast<std::size_t>(
            node_slab_[static_cast<std::size_t>(upstream)])].push_back(msg);
      } else if (upstream >= 0) {
        schedule_arb_if_idle(upstream, input);
      }
      if (!queue.empty()) schedule_profitable_arbs(node, queue.front());

      rr_next_[lk] = static_cast<std::uint8_t>((input + 1) % dirs_);
      commit_grant(lk, node, dir, peer, granted, target);
      return;
    }
  }

  for (int i = 0; i < fifo_count_; ++i) {
    const int fifo = (start + i) % fifo_count_;
    const std::size_t fid = static_cast<std::size_t>(fifo_id(node, fifo));
    if ((fifo_want_[fid] & dir_bit) == 0) continue;
    auto& queue = fifos_[fid];
    Packet& head = queue.front();
    saw_candidate = true;
    const int target = select_downstream(head, node, dir, /*entering=*/true);
    if (target == kBlocked) continue;
    if (faults_active_ && struck_now() && target != kDeliverHere &&
        !continuation_live(head, peer, dir)) {
      ++live_fault_stats().reroute_vetoes;
      continue;
    }

    const Packet granted = head;
    queue.pop_front();
    fifo_free_[fid] += granted.chunks;
    set_fifo_want(fid, queue.empty() ? 0 : want_mask(queue.front()));
    if (faults_active_ && !queue.empty()) fifo_head_since_[fid] = now();
    // The core may be stalled waiting for space in this FIFO.
    CpuState& cpu = cpu_[static_cast<std::size_t>(node)];
    if (cpu.stalled && cpu.pending.fifo == fifo && !cpu.pump_scheduled) {
      cpu.pump_scheduled = true;
      post(std::max(now(), cpu.next_free), kEvCpu, static_cast<std::uint32_t>(node));
    }
    if (!queue.empty()) schedule_profitable_arbs(node, queue.front());

    commit_grant(lk, node, dir, peer, granted, target);
    return;
  }

  // No grant: the link stays idle; state changes re-schedule arbitration.
  if (saw_candidate) {
    ++live_stats().arb_blocked;
  } else {
    ++live_stats().arb_no_candidate;
  }
}

void Fabric::commit_grant(std::size_t lk, Rank node, int dir, Rank peer,
                          const Packet& granted_in, int target) {
  ++live_stats().arb_grants;
  Packet granted = granted_in;
  const int axis = axis_of(dir);
  const int sign = sign_of(dir);
  granted.hops[static_cast<std::size_t>(axis)] =
      static_cast<std::int16_t>(granted.hops[static_cast<std::size_t>(axis)] - sign);
  if (hop_observer_) {
    if (shard_ctx_ != nullptr) {
      // Buffered, not invoked: observers may touch cross-slab state, so the
      // replay happens single-threaded at the window barrier.
      shard_ctx_->hop_log.push_back(
          {now(), static_cast<std::uint32_t>(lk), target, granted});
    } else {
      hop_observer_(granted, node, dir, target);
    }
  }
  Tick busy = static_cast<Tick>(granted.chunks) * config_.chunk_cycles;
  if (faults_active_ && link_degraded_[lk]) busy *= config_.faults.degrade_mult;
  link_busy_until_[lk] = now() + busy;
  if (config_.collect_link_stats) link_busy_[lk] += busy;
  live_stats().chunk_hops += granted.chunks;

  const bool deliver = (target == kDeliverHere);
  // The downstream reservation below stays slab-local even when `peer` does
  // not: buffer (peer, dir) is fed by this very link, so its free counter is
  // owned by our slab (feeder ownership).
  if (!deliver) {
    granted.vc = static_cast<std::uint8_t>(target);
    buffer_free_[static_cast<std::size_t>(buf_id(peer, dir, target))] -=
        (target == vc_bubble_ ? 1 : granted.chunks);
  }
  const Tick arrive_at = now() + busy + config_.hop_latency_cycles;
  if (shard_ctx_ != nullptr &&
      node_slab_[static_cast<std::size_t>(peer)] != shard_ctx_->id) {
    // Cross-slab hop: the arrival tick is exact (serialization + hop latency
    // >= the lookahead window, so it lands at or past the next window start).
    BoundaryMsg msg;
    msg.at = arrive_at;
    msg.packet = granted;
    msg.node = peer;
    msg.link = static_cast<std::uint32_t>(lk);
    msg.port = static_cast<std::uint8_t>(dir);
    msg.deliver = deliver;
    shard_ctx_->outbox[static_cast<std::size_t>(
        node_slab_[static_cast<std::size_t>(peer)])].push_back(msg);
  } else {
    const std::uint32_t slot = alloc_flight_slot();
    FlightSlot& flight = flight_at(slot);
    flight.packet = granted;
    flight.to_node = peer;
    flight.link = static_cast<std::uint32_t>(lk);
    flight.port = static_cast<std::uint8_t>(dir);
    flight.deliver = deliver;
    post(arrive_at, kEvArrival, slot);
  }
  arb_scheduled_[lk] = 1;
  post(link_busy_until_[lk], kEvArb, static_cast<std::uint32_t>(lk));
}

void Fabric::on_arrival(std::uint32_t slot_index) {
  FlightSlot& flight = flight_at(slot_index);
  assert(flight.in_use);
  Packet packet = flight.packet;
  const Rank node = flight.to_node;
  const bool deliver = flight.deliver;
  const std::uint8_t port = flight.port;
  const bool link_died = flight.dropped;
  flight.dropped = false;
  flight.in_use = false;
  (shard_ctx_ != nullptr ? shard_ctx_->free_flights : free_flights_).push_back(slot_index);

  if (faults_active_) {
    // Counter-based per-packet fault draws: pure functions of the fault seed
    // and the packet's identity — (src, dst) flow, sequence number, attempt
    // and the remaining-hop count after this hop (minimal routing shrinks it
    // by exactly 1 per hop regardless of the adaptive path taken, so it is a
    // path- and timing-independent hop index). Any (seed, shape) therefore
    // reproduces the same fault realization at any --sim-threads N. Only
    // sequenced packets (reliability-layer data) are eligible: ack packets
    // are unsequenced and their population depends on delivery timing, which
    // would make the realization interleaving-dependent.
    const std::uint64_t flow =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(packet.src)) << 32) |
        static_cast<std::uint32_t>(packet.dst);
    int remaining = 0;
    for (const std::int16_t h : packet.hops) remaining += h < 0 ? -h : h;
    const std::uint64_t life = (static_cast<std::uint64_t>(packet.seq) << 32) |
                               (static_cast<std::uint64_t>(packet.attempt) << 16) |
                               static_cast<std::uint64_t>(remaining & 0xffff);
    bool drop = link_died;
    if (drop) {
      ++live_fault_stats().dropped_in_flight;
    } else if (config_.faults.drop_prob > 0.0 && packet.seq != 0 &&
               fault_unit(drop_seed_, flow, life) < config_.faults.drop_prob) {
      drop = true;
      ++live_fault_stats().dropped_prob;
    }
    if (drop) {
      --live_in_network();
      if (!deliver) {
        // Return the downstream credit reserved at grant time; the freed
        // space may unblock the link feeding this buffer.
        return_buffer_credit(node, port, packet);
      }
      return;
    }
    // Byzantine link: the packet crosses the hop intact on the wire model
    // but its payload bits flip. The link-level CRC keeps the routing header
    // usable, so in-simulation we damage only the end-to-end checksum — the
    // receiver (ReliableClient) must reject it; silent acceptance would
    // deliver garbage. Only the final hop corrupts, mirroring drop_prob's
    // per-arrival accounting and keeping one counter per injected fault.
    if (deliver && config_.faults.corrupt_prob > 0.0 && packet.seq != 0 &&
        fault_unit(corrupt_seed_, flow, life) < config_.faults.corrupt_prob) {
      std::uint32_t mask =
          static_cast<std::uint32_t>(fault_hash(corrupt_seed_ ^ 0x6d61736bULL, flow, life));
      if (mask == 0) mask = 1;
      packet.checksum ^= mask;
      ++live_fault_stats().corrupted_payloads;
    }
  }

  if (deliver) {
    assert(packet.at_destination());
    assert(packet.dst == node);
    --live_in_network();
    FabricStats& stats = live_stats();
    ++stats.packets_delivered;
    stats.payload_bytes_delivered += packet.payload_bytes;
    stats.last_delivery = std::max(stats.last_delivery, now());
    client_->on_delivery(node, packet);
    return;
  }

  const std::size_t buf = static_cast<std::size_t>(buf_id(node, port, packet.vc));
  auto& queue = buffers_[buf];
  const bool becomes_head = queue.empty();
  queue.push_back(packet);
  if (becomes_head) {
    set_buffer_want(buf, want_mask(packet));
    if (faults_active_) {
      head_since_[buf] = now();
      // Parallel runs arm the sweep per slab: a slab that only relays (its
      // own cores idle) would otherwise never arm its wedge backstop.
      if (shard_ctx_ != nullptr) arm_sweep();
    }
    schedule_profitable_arbs(node, packet);
  }
}

void Fabric::on_fault_event(std::uint32_t a, std::uint64_t b) {
  if (shard_ctx_ != nullptr) {
    mt_fault_event(a, b);
    return;
  }
  if (a == kPermStrike) {
    // The blind phase ends here: permanent state becomes consultable, links
    // die and fail-stopped cores halt (their queued descriptors die with
    // them; in-flight relay custody is what stranded_relay_bytes accounts).
    struck_ = true;
    fault_plan_.invalidate_routes();
    for (std::size_t l = 0; l < link_peer_.size(); ++l) {
      if (fault_plan_.link_dead(static_cast<int>(l))) {
        set_link_state(static_cast<int>(l), /*down=*/true);
      }
    }
    for (Rank n = 0; n < torus_.nodes(); ++n) {
      if (fault_plan_.node_alive(n)) continue;
      CpuState& cpu = cpu_[static_cast<std::size_t>(n)];
      cpu.idle = true;
      cpu.stalled = false;
    }
    // Traffic already committed into dead nodes can never drain on its own;
    // the stuck sweep is the backstop that returns its credits.
    arm_sweep();
    if (config_.debug_checks) run_debug_checks(false);
    return;
  }
  const TransientOutage& outage =
      fault_plan_.transients()[static_cast<std::size_t>(a)];
  // `outage.link` is the + direction port, so the paired reverse link is the
  // matching - direction port on the peer.
  const Rank peer = link_peer_[static_cast<std::size_t>(outage.link)];
  const int dir = outage.link % dirs_;
  const int reverse = link_id(peer, dir ^ 1);
  const bool repaired = b != 0;
  if (repaired) {
    fault_stats_.link_down_cycles += outage.up_at - outage.down_at;
    set_link_state(outage.link, false);
    set_link_state(reverse, false);
  } else {
    ++fault_stats_.transient_strikes;
    set_link_state(outage.link, true);
    set_link_state(reverse, true);
  }
  if (config_.debug_checks) run_debug_checks(false);
}

void Fabric::mt_fault_event(std::uint32_t a, std::uint64_t b) {
  // Parallel-run fault events are replicated to every slab they concern;
  // each slab applies only the slice it owns, so no shared cell sees two
  // writers: link down bits by the link's node owner, core state by the
  // node owner, in-flight drops by an arena scan of the slab's own flights
  // (a packet crossing a link can only sit in the arena of the granting or
  // the receiving slab, both of which receive the event).
  Shard& shard = *shard_ctx_;
  if (a == kPermStrike) {
    shard.struck = true;
    shard.route_memo.clear();
    for (std::size_t l = 0; l < link_peer_.size(); ++l) {
      if (!fault_plan_.link_dead(static_cast<int>(l))) continue;
      if (node_slab_[static_cast<std::size_t>(static_cast<Rank>(l) / dirs_)] == shard.id) {
        link_down_[l] = 1;
      }
    }
    for (FlightSlot& flight : shard.flights) {
      if (flight.in_use && !flight.dropped &&
          fault_plan_.link_dead(static_cast<int>(flight.link))) {
        flight.dropped = true;
      }
    }
    for (Rank n = 0; n < torus_.nodes(); ++n) {
      if (node_slab_[static_cast<std::size_t>(n)] != shard.id) continue;
      if (fault_plan_.node_alive(n)) continue;
      CpuState& cpu = cpu_[static_cast<std::size_t>(n)];
      cpu.idle = true;
      cpu.stalled = false;
    }
    arm_sweep();
    return;
  }
  const TransientOutage& outage =
      fault_plan_.transients()[static_cast<std::size_t>(a)];
  const Rank node_a = static_cast<Rank>(outage.link / dirs_);
  const Rank node_b = link_peer_[static_cast<std::size_t>(outage.link)];
  const int dir = outage.link % dirs_;
  const int reverse = link_id(node_b, dir ^ 1);
  const bool repaired = b != 0;
  const bool own_a = node_slab_[static_cast<std::size_t>(node_a)] == shard.id;
  const bool own_b = node_slab_[static_cast<std::size_t>(node_b)] == shard.id;
  if (own_a) {
    // One bookkeeper per outage: the + end's owner counts it.
    if (repaired) {
      shard.fstats.link_down_cycles += outage.up_at - outage.down_at;
    } else {
      ++shard.fstats.transient_strikes;
    }
  }
  if (repaired) {
    if (own_a) {
      link_down_[static_cast<std::size_t>(outage.link)] = 0;
      schedule_arb_if_idle(node_a, dir);
    }
    if (own_b) {
      link_down_[static_cast<std::size_t>(reverse)] = 0;
      schedule_arb_if_idle(node_b, dir ^ 1);
    }
  } else {
    if (own_a) link_down_[static_cast<std::size_t>(outage.link)] = 1;
    if (own_b) link_down_[static_cast<std::size_t>(reverse)] = 1;
    for (FlightSlot& flight : shard.flights) {
      if (flight.in_use && !flight.dropped &&
          (flight.link == static_cast<std::uint32_t>(outage.link) ||
           flight.link == static_cast<std::uint32_t>(reverse))) {
        flight.dropped = true;
      }
    }
  }
}

void Fabric::set_link_state(int link, bool down) {
  const std::size_t lk = static_cast<std::size_t>(link);
  if (link_down_[lk] == static_cast<std::uint8_t>(down ? 1 : 0)) return;
  link_down_[lk] = down ? 1 : 0;
  if (down) {
    drop_in_flight_on_link(static_cast<std::uint32_t>(link));
  } else {
    // Restart flow: whichever heads queued up behind the outage want out.
    schedule_arb_if_idle(static_cast<Rank>(link / dirs_), link % dirs_);
  }
}

void Fabric::drop_in_flight_on_link(std::uint32_t link) {
  for (FlightSlot& flight : flights_) {
    if (flight.in_use && !flight.dropped && flight.link == link) {
      flight.dropped = true;
    }
  }
}

bool Fabric::continuation_live(const Packet& head, Rank peer, int dir) const {
  auto hops = head.hops;
  const int axis = axis_of(dir);
  hops[static_cast<std::size_t>(axis)] = static_cast<std::int16_t>(
      hops[static_cast<std::size_t>(axis)] - sign_of(dir));
  return fault_plan_.route_live(peer, hops, head.mode, live_route_memo());
}

void Fabric::return_buffer_credit(Rank node, int port, const Packet& packet) {
  const std::size_t buf = static_cast<std::size_t>(buf_id(node, port, packet.vc));
  const std::int32_t credit = (packet.vc == vc_bubble_ ? 1 : packet.chunks);
  const Rank upstream = torus_.neighbor(node, topo::Direction::from_index(port ^ 1));
  if (shard_ctx_ != nullptr && upstream >= 0 &&
      node_slab_[static_cast<std::size_t>(upstream)] != shard_ctx_->id) {
    BoundaryMsg msg;
    msg.at = now();
    msg.node = upstream;
    msg.buf = static_cast<std::int32_t>(buf);
    msg.chunks = credit;
    msg.port = static_cast<std::uint8_t>(port);
    msg.is_credit = true;
    shard_ctx_->outbox[static_cast<std::size_t>(
        node_slab_[static_cast<std::size_t>(upstream)])].push_back(msg);
    return;
  }
  buffer_free_[buf] += credit;
  if (upstream >= 0) schedule_arb_if_idle(upstream, port);
}

void Fabric::arm_sweep() {
  bool& armed = shard_ctx_ != nullptr ? shard_ctx_->sweep_scheduled : sweep_scheduled_;
  if (armed || stuck_cycles_ == 0) return;
  armed = true;
  post(now() + stuck_cycles_, kEvSweep);
}

void Fabric::stuck_sweep() {
  if (shard_ctx_ != nullptr) {
    // Parallel: sweep only the slab's own nodes. The shard's in_network is a
    // delta (not a census), so occupancy of the owned queues drives re-arm.
    Shard& shard = *shard_ctx_;
    shard.sweep_scheduled = false;
    const Tick cutoff = now() >= stuck_cycles_ ? now() - stuck_cycles_ : 0;
    bool occupied = false;
    for (Rank n = 0; n < torus_.nodes(); ++n) {
      if (node_slab_[static_cast<std::size_t>(n)] != shard.id) continue;
      for (int p = 0; p < dirs_; ++p) {
        for (int vc = 0; vc < vcs_; ++vc) {
          const std::size_t b = static_cast<std::size_t>(buf_id(n, p, vc));
          while (!buffers_[b].empty() && head_since_[b] <= cutoff) drop_buffer_head(b);
          occupied = occupied || !buffers_[b].empty();
        }
      }
      for (int f = 0; f < fifo_count_; ++f) {
        const std::size_t fid = static_cast<std::size_t>(fifo_id(n, f));
        while (!fifos_[fid].empty() && fifo_head_since_[fid] <= cutoff) {
          drop_fifo_head(n, f);
        }
        occupied = occupied || !fifos_[fid].empty();
      }
    }
    if (occupied) {
      shard.sweep_scheduled = true;
      post(now() + stuck_cycles_, kEvSweep);
    }
    return;
  }
  sweep_scheduled_ = false;
  if (in_network_ == 0) return;  // re-armed by the next injection
  const Tick cutoff = now() >= stuck_cycles_ ? now() - stuck_cycles_ : 0;
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    while (!buffers_[b].empty() && head_since_[b] <= cutoff) drop_buffer_head(b);
  }
  for (Rank n = 0; n < torus_.nodes(); ++n) {
    for (int f = 0; f < fifo_count_; ++f) {
      const std::size_t fid = static_cast<std::size_t>(fifo_id(n, f));
      while (!fifos_[fid].empty() && fifo_head_since_[fid] <= cutoff) {
        drop_fifo_head(n, f);
      }
    }
  }
  // While packets remain, keep sweeping: this guarantees a fault scenario
  // can wedge at most stuck_cycles_ before the backstop unwinds it, and the
  // event queue drains (quiescence) once the network truly empties.
  if (in_network_ > 0) {
    sweep_scheduled_ = true;
    post(now() + stuck_cycles_, kEvSweep);
  }
}

void Fabric::drop_buffer_head(std::size_t buf) {
  auto& queue = buffers_[buf];
  const Packet victim = queue.front();
  queue.pop_front();
  set_buffer_want(buf, queue.empty() ? 0 : want_mask(queue.front()));
  --live_in_network();
  ++live_fault_stats().dropped_stuck;
  const Rank node =
      static_cast<Rank>(buf / (static_cast<std::size_t>(dirs_) *
                               static_cast<std::size_t>(vcs_)));
  const int port = static_cast<int>(buf / static_cast<std::size_t>(vcs_)) % dirs_;
  return_buffer_credit(node, port, victim);
  if (!queue.empty()) {
    head_since_[buf] = now();
    schedule_profitable_arbs(node, queue.front());
  }
}

void Fabric::drop_fifo_head(Rank node, int fifo) {
  const std::size_t fid = static_cast<std::size_t>(fifo_id(node, fifo));
  auto& queue = fifos_[fid];
  const Packet victim = queue.front();
  queue.pop_front();
  fifo_free_[fid] += victim.chunks;
  set_fifo_want(fid, queue.empty() ? 0 : want_mask(queue.front()));
  --live_in_network();
  ++live_fault_stats().dropped_stuck;
  CpuState& cpu = cpu_[static_cast<std::size_t>(node)];
  if (cpu.stalled && cpu.pending.fifo == fifo && !cpu.pump_scheduled &&
      node_alive_now(node)) {
    cpu.pump_scheduled = true;
    post(std::max(now(), cpu.next_free), kEvCpu, static_cast<std::uint32_t>(node));
  }
  if (!queue.empty()) {
    fifo_head_since_[fid] = now();
    schedule_profitable_arbs(node, queue.front());
  }
}

std::string Fabric::check_invariants(bool quiescent) const {
  const int nodes = torus_.nodes();
  auto fail = [](const std::string& what) { return what; };

  for (Rank n = 0; n < nodes; ++n) {
    for (int p = 0; p < dirs_; ++p) {
      for (int vc = 0; vc < vcs_; ++vc) {
        const std::size_t b = static_cast<std::size_t>(buf_id(n, p, vc));
        const auto& queue = buffers_[b];
        const std::int32_t free = buffer_free_[b];
        const std::int32_t cap =
            vc == vc_bubble_ ? bubble_slots_ : config_.vc_capacity_chunks;
        // Dynamic VCs may transiently overfill by less than one max packet
        // (chunk-streaming model); the bubble VC never may.
        const std::int32_t floor_free =
            vc == vc_bubble_ ? 0 : -(static_cast<std::int32_t>(config_.max_packet_chunks) - 1);
        if (free < floor_free || free > cap) {
          return fail("buffer free out of range at node " + std::to_string(n));
        }
        const std::uint8_t want = buffer_want_[b];
        if (queue.empty() && want != 0) {
          return fail("stale want mask on empty buffer at node " + std::to_string(n));
        }
        if (!queue.empty() && want != want_mask(queue.front())) {
          return fail("want mask does not match head at node " + std::to_string(n));
        }
        if (quiescent && (!queue.empty() || free != cap)) {
          return fail("non-drained buffer at node " + std::to_string(n));
        }
        for (const Packet& packet : queue) {
          if (packet.at_destination()) {
            return fail("terminated packet still buffered at node " + std::to_string(n));
          }
          if (packet.vc != vc) {
            return fail("packet VC tag mismatch at node " + std::to_string(n));
          }
        }
      }
    }
    for (int f = 0; f < fifo_count_; ++f) {
      const std::size_t fid = static_cast<std::size_t>(fifo_id(n, f));
      const auto& queue = fifos_[fid];
      const std::int32_t free = fifo_free_[fid];
      if (free < 0 || free > config_.injection_fifo_chunks) {
        return fail("fifo free out of range at node " + std::to_string(n));
      }
      std::int32_t queued = 0;
      for (const Packet& packet : queue) queued += packet.chunks;
      if (free + queued != config_.injection_fifo_chunks) {
        return fail("fifo accounting mismatch at node " + std::to_string(n));
      }
      if (queue.empty() != (fifo_want_[fid] == 0)) {
        return fail("fifo want mask inconsistent at node " + std::to_string(n));
      }
      if (quiescent && !queue.empty()) {
        return fail("non-drained fifo at node " + std::to_string(n));
      }
    }
  }
  for (Rank n = 0; n < nodes; ++n) {
    for (int d = 0; d < dirs_; ++d) {
      std::uint16_t expect = 0;
      const std::uint8_t bit = static_cast<std::uint8_t>(1u << d);
      for (int p = 0; p < dirs_; ++p) {
        for (int vc = 0; vc < vcs_; ++vc) {
          if (buffer_want_[static_cast<std::size_t>(buf_id(n, p, vc))] & bit) ++expect;
        }
      }
      for (int f = 0; f < fifo_count_; ++f) {
        if (fifo_want_[static_cast<std::size_t>(fifo_id(n, f))] & bit) ++expect;
      }
      if (node_dir_want_[static_cast<std::size_t>(link_id(n, d))] != expect) {
        return fail("want counter out of sync at node " + std::to_string(n) +
                    " dir " + std::to_string(d));
      }
    }
  }
  if (quiescent && in_network_ != 0) {
    return fail("packets still in network: " + std::to_string(in_network_));
  }
  std::int64_t inflight = 0;
  for (const FlightSlot& slot : flights_) inflight += slot.in_use;
  for (const Shard& shard : shards_) {
    for (const FlightSlot& slot : shard.flights) inflight += slot.in_use;
  }
  if (quiescent && inflight != 0) return fail("flight slots leaked");
  return "";
}

void Fabric::dump_state() const {
  std::fprintf(stderr, "=== fabric state at t=%llu, in_network=%lld ===\n",
               static_cast<unsigned long long>(now()), static_cast<long long>(in_network_));
  for (Rank n = 0; n < torus_.nodes(); ++n) {
    const CpuState& cpu = cpu_[static_cast<std::size_t>(n)];
    if (cpu.stalled) {
      std::fprintf(stderr, "node %d: CPU stalled on fifo %d (dst %d, %d chunks)\n", n,
                   cpu.pending.fifo, cpu.pending.dst, cpu.pending.wire_chunks);
    }
    for (int f = 0; f < fifo_count_; ++f) {
      const auto& q = fifos_[static_cast<std::size_t>(fifo_id(n, f))];
      if (q.empty()) continue;
      const Packet& h = q.front();
      std::fprintf(stderr,
                   "node %d fifo %d: %zu pkts, head dst=%d hops=(%d,%d,%d,%d) mode=%d\n",
                   n, f, q.size(), h.dst, h.hops[0], h.hops[1], h.hops[2], h.hops[3],
                   static_cast<int>(h.mode));
    }
    for (int p = 0; p < dirs_; ++p) {
      for (int vc = 0; vc < vcs_; ++vc) {
        const auto& q = buffers_[static_cast<std::size_t>(buf_id(n, p, vc))];
        if (q.empty()) continue;
        const Packet& h = q.front();
        std::fprintf(stderr,
                     "node %d port %d vc %d: %zu pkts free=%d, head dst=%d "
                     "hops=(%d,%d,%d,%d) mode=%d\n",
                     n, p, vc, q.size(),
                     buffer_free_[static_cast<std::size_t>(buf_id(n, p, vc))], h.dst,
                     h.hops[0], h.hops[1], h.hops[2], h.hops[3], static_cast<int>(h.mode));
      }
    }
    for (int d = 0; d < dirs_; ++d) {
      const auto link = static_cast<std::size_t>(link_id(n, d));
      if (link_busy_until_[link] > now() || arb_scheduled_[link]) {
        std::fprintf(stderr, "node %d link %d: busy_until=%llu arb_scheduled=%d\n", n, d,
                     static_cast<unsigned long long>(link_busy_until_[link]),
                     arb_scheduled_[link]);
      }
    }
  }
}

void Fabric::kick() {
  for (Rank n = 0; n < torus_.nodes(); ++n) {
    for (int d = 0; d < dirs_; ++d) schedule_arb_if_idle(n, d);
    CpuState& cpu = cpu_[static_cast<std::size_t>(n)];
    if (!cpu.pump_scheduled && node_alive_now(n)) {
      cpu.pump_scheduled = true;
      post(std::max(now(), cpu.next_free), kEvCpu, static_cast<std::uint32_t>(n));
    }
  }
}

void Fabric::trace_wait_cycle() const {
  // Find some non-empty transit buffer head.
  int start_buf = -1;
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    if (!buffers_[b].empty()) {
      start_buf = static_cast<int>(b);
      break;
    }
  }
  if (start_buf < 0) {
    std::fprintf(stderr, "trace: no queued packets\n");
    return;
  }
  std::vector<char> visited(buffers_.size(), 0);
  int buf = start_buf;
  for (int step = 0; step < 200; ++step) {
    const Rank node = static_cast<Rank>(buf / (dirs_ * vcs_));
    const int port = (buf / vcs_) % dirs_;
    const int vc = buf % vcs_;
    const Packet& head = buffers_[static_cast<std::size_t>(buf)].front();
    std::fprintf(stderr,
                 "step %d: node %d port %d vc %d head: dst=%d hops=(%d,%d,%d,%d) "
                 "chunks=%d (buffer free=%d, %zu pkts)\n",
                 step, node, port, vc, head.dst, head.hops[0], head.hops[1], head.hops[2],
                 head.hops[3], head.chunks, buffer_free_[static_cast<std::size_t>(buf)],
                 buffers_[static_cast<std::size_t>(buf)].size());
    if (visited[static_cast<std::size_t>(buf)]) {
      std::fprintf(stderr, "  -> CYCLE (revisited this buffer)\n");
      return;
    }
    visited[static_cast<std::size_t>(buf)] = 1;

    // Which buffers could this head move into, and why is each blocked?
    int next_buf = -1;
    for (int d = 0; d < dirs_; ++d) {
      const int axis = d / 2;
      const int sign = (d % 2 == 0) ? +1 : -1;
      if (!wants_output(head, axis, sign)) continue;
      const std::size_t lk = static_cast<std::size_t>(link_id(node, d));
      if (link_peer_[lk] < 0) continue;
      if (link_busy_until_[lk] > now()) {
        std::fprintf(stderr, "  output %d: link busy (not deadlocked)\n", d);
        return;
      }
      const bool entering = (port / 2 != axis) || (vc != vc_bubble_);
      const int target = select_downstream(head, node, d, entering);
      if (target == kDeliverHere) {
        std::fprintf(stderr, "  output %d: would deliver — arbitration starvation?\n", d);
        return;
      }
      if (target >= 0) {
        std::fprintf(stderr, "  output %d: grantable to vc %d — lost wakeup!\n", d, target);
        return;
      }
      // Blocked: report the fullest constraint and follow the bubble target.
      const Rank peer = link_peer_[lk];
      for (int tvc = 0; tvc < vcs_; ++tvc) {
        std::fprintf(stderr, "  output %d -> peer %d vc %d free=%d%s\n", d, peer, tvc,
                     buffer_free_[static_cast<std::size_t>(buf_id(peer, d, tvc))],
                     tvc == vc_bubble_ && entering ? " (entering: needs chunks+max)" : "");
      }
      if (next_buf < 0) {
        // Follow the most-loaded downstream buffer that has a head.
        for (int tvc = 0; tvc < vcs_; ++tvc) {
          const int cand = buf_id(peer, d, tvc);
          if (!buffers_[static_cast<std::size_t>(cand)].empty()) {
            next_buf = cand;
            break;
          }
        }
      }
    }
    if (next_buf < 0) {
      std::fprintf(stderr, "  no downstream buffer with queued head to follow\n");
      return;
    }
    buf = next_buf;
  }
}

std::uint32_t Fabric::alloc_flight_slot() {
  std::vector<FlightSlot>& flights =
      shard_ctx_ != nullptr ? shard_ctx_->flights : flights_;
  std::vector<std::uint32_t>& free_list =
      shard_ctx_ != nullptr ? shard_ctx_->free_flights : free_flights_;
  std::uint32_t slot;
  if (!free_list.empty()) {
    slot = free_list.back();
    free_list.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flights.size());
    flights.emplace_back();
  }
  flights[slot].in_use = true;
  flights[slot].dropped = false;
  return slot;
}

}  // namespace bgl::net
