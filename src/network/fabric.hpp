// The torus network fabric: routers, links, virtual channels, injection
// FIFOs and the per-node core (CPU) injection model, driven by a discrete
// event engine.
//
// Model summary (see DESIGN.md Section 5):
//  - Input-queued routers: each node has one input buffer per (incoming
//    direction, VC) pair with `vc_capacity_chunks` of space, plus
//    `injection_fifos` local injection FIFOs.
//  - Virtual cut-through at packet granularity: a granted packet occupies the
//    link for `chunks * chunk_cycles` and is appended to the downstream
//    buffer `hop_latency_cycles` later. Credits (free chunks) are reserved at
//    grant time and returned when the packet later leaves that buffer.
//  - Adaptive routing: at each output-link arbitration, head packets of any
//    input wanting that direction compete round-robin. An adaptive packet
//    takes the dynamic VC with the most free downstream space; if neither
//    dynamic VC fits and the link is the packet's dimension-order hop it may
//    use the bubble escape VC. A packet *entering* a ring on the bubble VC
//    (from injection or a turn) must leave one max-packet bubble free,
//    guaranteeing deadlock freedom; packets continuing along the ring only
//    need space for themselves.
//  - Deterministic routing: bubble VC only, strict X->Y->Z dimension order.
//  - Core model: a node's core injects packets sequentially; each packet
//    costs `extra_cpu_cycles + chunks*chunk_cycles/cpu_links`, so a core can
//    keep about `cpu_links` links busy, as measured in the paper. TPS
//    forwarding re-injections share this budget, which reproduces the
//    CPU-limited two-phase result on 8x8x8.
//
// The fabric pulls traffic from a Client (one per simulation, covering all
// nodes). Clients are the all-to-all strategies in src/coll.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/network/config.hpp"
#include "src/network/faults.hpp"
#include "src/network/packet.hpp"
#include "src/network/packet_ring.hpp"
#include "src/sim/engine.hpp"
#include "src/topology/torus.hpp"
#include "src/util/rng.hpp"

namespace bgl::net {

class Fabric;

/// Traffic source/sink for every node. Implemented by all-to-all strategies.
class Client {
 public:
  virtual ~Client() = default;

  /// Called when `node`'s core is free and willing to inject. Fill `out` and
  /// return true to inject; return false to go idle (the fabric will not ask
  /// again until `Fabric::wake_cpu(node)` is called).
  virtual bool next_packet(Rank node, InjectDesc& out) = 0;

  /// A packet addressed to `node` arrived. May call Fabric::wake_cpu.
  virtual void on_delivery(Rank node, const Packet& packet) = 0;

  /// A timer scheduled with Fabric::schedule_timer fired.
  virtual void on_timer(Rank node, std::uint64_t cookie) { (void)node, (void)cookie; }
};

/// Aggregate counters for a run.
struct FabricStats {
  /// `first_injection` value while no packet has ever been injected. A real
  /// injection at tick 0 is common (the first core pump), so 0 cannot double
  /// as the "empty run" marker.
  static constexpr Tick kNever = ~Tick{0};

  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t payload_bytes_delivered = 0;
  std::uint64_t chunk_hops = 0;   // chunks x links traversed
  Tick first_injection = kNever;  // kNever until the first injection
  Tick last_delivery = 0;

  /// Ticks between the first injection and the last delivery; 0 for a run
  /// that never injected (so time-averaged stats divide by zero nowhere).
  Tick active_span() const noexcept {
    return first_injection == kNever || last_delivery < first_injection
               ? Tick{0}
               : last_delivery - first_injection;
  }
  // Arbitration outcome counters (diagnosis of idle links).
  std::uint64_t arb_grants = 0;
  std::uint64_t arb_no_candidate = 0;  // no head wanted this output
  std::uint64_t arb_blocked = 0;       // candidates existed, all credit-blocked
};

/// Counters of the fault subsystem; all zero on a fault-free run.
struct FaultStats {
  std::uint64_t dropped_in_flight = 0;   // on a link that died under them
  std::uint64_t dropped_prob = 0;        // probabilistic loss drops
  std::uint64_t dropped_stuck = 0;       // stuck-head sweep (wedge backstop)
  /// Packets delivered with payload bits flipped by a Byzantine link
  /// (corrupt_prob): not dropped — the receiver's end-to-end checksum must
  /// reject every one (ReliabilityStats::corrupt_rejected matches this).
  std::uint64_t corrupted_payloads = 0;
  std::uint64_t unroutable_at_injection = 0;  // no live minimal path existed
  std::uint64_t reroute_vetoes = 0;      // grants refused into dead ends
  std::uint64_t transient_strikes = 0;   // transient link outages begun
  Tick link_down_cycles = 0;             // summed transient downtime (per link)
  /// Relay payload accepted by nodes that later fail-stopped (fail_at > 0):
  /// bytes owed to final destinations that died with their custodian. The
  /// strategy client computes it at quiescence (see
  /// StrategyClient::stranded_relay_bytes); nonzero means the shortfall in
  /// the delivery matrix is explained by the strike, not a simulator bug.
  std::uint64_t stranded_relay_bytes = 0;

  std::uint64_t total_dropped() const noexcept {
    return dropped_in_flight + dropped_prob + dropped_stuck;
  }
};

/// Why a run that asked for --sim-threads N executed on fewer threads (or on
/// the single-threaded reference engine). Surfaced through
/// RunResult::sim_threads_reason so a silent fallback is always explainable.
enum class ThreadFallbackReason : std::uint8_t {
  kNone = 0,        // parallel engine in use at the requested width (or capped
                    // only by the slab-axis extent)
  kNotRequested,    // sim_threads <= 1: nobody asked
  kZeroWindow,      // zero-cost links leave no conservative lookahead window
  kPrimedEngine,    // an earlier single-threaded run() primed the reference
                    // engine; a mid-flight migration is impossible
  kNarrowShape,     // the widest axis has extent 1: nothing to partition
  kLegacyClient,    // collective layer: the client is not slab-safe
  kCrossNodeDeps,   // collective layer: schedule phases carry cross-node
                    // dependencies that need a global event order
};

constexpr const char* to_string(ThreadFallbackReason reason) noexcept {
  switch (reason) {
    case ThreadFallbackReason::kNone: return "parallel";
    case ThreadFallbackReason::kNotRequested: return "not requested";
    case ThreadFallbackReason::kZeroWindow: return "zero lookahead window";
    case ThreadFallbackReason::kPrimedEngine: return "engine already primed";
    case ThreadFallbackReason::kNarrowShape: return "slab axis extent 1";
    case ThreadFallbackReason::kLegacyClient: return "legacy client";
    case ThreadFallbackReason::kCrossNodeDeps: return "cross-node schedule deps";
  }
  return "?";
}

class Fabric : public sim::EventHandler {
 public:
  Fabric(const NetworkConfig& config, Client& client);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Runs until quiescent (all traffic drained and all cores idle) or until
  /// `deadline`. Returns true when quiescent. Can be called repeatedly; the
  /// first call primes every node's core.
  bool run(Tick deadline = ~Tick{0});

  /// Current simulation time: the executing slab's clock on a parallel run,
  /// the engine clock otherwise. Slab clocks may differ transiently (bounded
  /// by the lookahead window) but each handler only ever observes its own.
  Tick now() const noexcept { return shard_ctx_ != nullptr ? shard_now() : engine_.now(); }
  const topo::Torus& torus() const noexcept { return torus_; }
  const NetworkConfig& config() const noexcept { return config_; }
  const FabricStats& stats() const noexcept { return stats_; }

  /// The expanded fault plan (empty/disabled on a healthy network) and the
  /// fault-event counters.
  const FaultPlan& fault_plan() const noexcept { return fault_plan_; }
  const FaultStats& fault_stats() const noexcept { return fault_stats_; }

  /// True once permanent faults have actually been applied to the network.
  /// With fail_at == 0 that is before the first packet (today's planning
  /// semantics); with fail_at > 0 the network runs *blind* — healthy routing,
  /// no plan steering — until the strike lands mid-run. The reliability
  /// layer keys its give-up logic off this so pre-strike traffic is not
  /// abandoned against a fault plan nobody is supposed to know yet. On a
  /// parallel run each slab observes its *own* strike flag (flipped by its
  /// own kPermStrike event), so a handler never reads a neighbor's toggle
  /// mid-window.
  bool perm_faults_struck() const noexcept { return struck_now(); }

  /// Thread-safe routability oracle for clients running inside handlers:
  /// answers against the permanent fault state *as this node currently sees
  /// it* (always routable while the network is still blind), memoized in the
  /// executing slab's private memo on a parallel run. Strategy clients must
  /// use this instead of fault_plan().pair_routable() — the plan's internal
  /// memo is not thread-safe.
  bool pair_routable_now(Rank src, Rank dst, RoutingMode mode) const {
    if (!faults_active_ || !struck_now()) return true;
    return fault_plan_.pair_routable(src, dst, mode, live_route_memo());
  }

  /// The executing slab's private routability memo — nullptr on a
  /// single-threaded run, where the plan's internal memo is safe. Clients
  /// that consult the plan's oracle directly inside handlers (the schedule
  /// executor's relay re-picking) must pass this through so parallel slabs
  /// never share the plan's unsynchronized cache.
  FaultPlan::RouteMemo* route_memo_scratch() const noexcept {
    return live_route_memo();
  }

  /// Re-arms `node`'s core if idle (clients call this when new work arrives,
  /// e.g. a TPS forward enqueued by on_delivery).
  void wake_cpu(Rank node);

  /// Fires Client::on_timer(node, cookie) after `delay` cycles.
  void schedule_timer(Rank node, Tick delay, std::uint64_t cookie);

  /// Free space of an injection FIFO, in chunks (for client FIFO choice).
  int fifo_free_chunks(Rank node, int fifo) const;
  /// Least-occupied FIFO index in [begin, end).
  int pick_fifo(Rank node, int begin, int end) const;

  /// Packets currently inside the network (FIFOs + buffers + in flight).
  std::int64_t packets_in_network() const noexcept { return in_network_; }

  /// Host-side watchdog for wedged runs: polled every few thousand events;
  /// returning true aborts run() (which then reports not-drained). See
  /// sim::Engine::set_abort_check.
  void set_abort_check(std::function<bool()> check) {
    abort_check_ = std::move(check);
    engine_.set_abort_check(abort_check_);
  }
  bool aborted() const noexcept { return engine_.aborted() || mt_aborted_; }

  /// Busy cycles of the directed link (node, direction); divide by elapsed
  /// time for utilization. Empty when collect_link_stats is off.
  const std::vector<Tick>& link_busy_cycles() const noexcept { return link_busy_; }

  void handle(const sim::Event& event) override;

  std::uint64_t events_processed() const noexcept {
    return engine_.events_processed() + mt_events_;
  }

  /// Worker threads the last/next run() actually uses after eligibility
  /// gating (1 on single-thread runs; see NetworkConfig::sim_threads).
  int effective_sim_threads() const noexcept { return plan_threads(); }

  /// Why the effective thread count fell short of the request (kNone when
  /// the parallel engine runs).
  ThreadFallbackReason sim_threads_reason() const noexcept {
    ThreadFallbackReason reason = ThreadFallbackReason::kNone;
    (void)plan_threads(&reason);
    return reason;
  }

  /// Observer invoked at every link grant: (packet after hop decrement,
  /// node granting, direction index, downstream VC or kDeliverHere).
  /// For tests and tracing; adds a branch per grant when unset. On a
  /// parallel run grants are buffered per slab and the observer is invoked
  /// at each window barrier in (tick, link id) order — a total, deterministic
  /// order (a link grants at most once per tick), though generally different
  /// from the single-threaded interleaving across links.
  using HopObserver = std::function<void(const Packet&, Rank, int, int)>;
  void set_hop_observer(HopObserver observer) { hop_observer_ = std::move(observer); }

  /// Validates internal consistency; returns "" or a description of the
  /// first violation. With `quiescent` also requires empty queues, full
  /// credit counters and an empty network.
  std::string check_invariants(bool quiescent) const;

  /// Debug dump of all non-empty buffers/FIFOs and stalled cores (stderr).
  void dump_state() const;

  /// Debug aid: re-arm arbitration on every link and re-ask every idle core.
  /// If a subsequent run() makes progress, a wakeup was lost somewhere.
  void kick();

  /// Debug aid: starting from an arbitrary blocked head packet, follow the
  /// chain of "waits for buffer X, whose head waits for..." and print it
  /// until a repeat (the deadlock cycle) or a movable packet is found.
  void trace_wait_cycle() const;

 private:
  // --- event types ---
  static constexpr std::uint32_t kEvArb = 0;      // a = link id
  static constexpr std::uint32_t kEvArrival = 1;  // a = flight slot
  static constexpr std::uint32_t kEvCpu = 2;      // a = node
  static constexpr std::uint32_t kEvTimer = 3;    // a = node, b = cookie
  static constexpr std::uint32_t kEvFault = 4;    // a = outage idx / kPermStrike, b = up?
  static constexpr std::uint32_t kEvSweep = 5;    // stuck-head sweep tick

  /// kEvFault `a` value for the delayed permanent strike (fail_at > 0).
  static constexpr std::uint32_t kPermStrike = ~std::uint32_t{0};

  struct FlightSlot {
    Packet packet;
    Rank to_node = -1;
    std::uint32_t link = 0;  // directed link being crossed (fault drops)
    std::uint8_t port = 0;
    bool deliver = false;
    bool dropped = false;  // link died under this packet; discard on arrival
    bool in_use = false;
  };

  struct CpuState {
    Tick next_free = 0;
    bool pump_scheduled = false;
    bool idle = false;     // client said "no work"; needs wake_cpu
    bool stalled = false;  // has a descriptor waiting for FIFO space
    InjectDesc pending{};
  };

  /// One cross-slab handoff, produced by the owning worker during a window
  /// and applied single-threaded at the window barrier. Two kinds:
  ///  - packet: a link grant whose downstream node lives in another slab.
  ///    `at` is the exact arrival tick (>= the next window start, because
  ///    serialization + hop latency bound the lookahead window).
  ///  - credit: a buffer pop whose feeding link lives in another slab. The
  ///    free-space counter of a buffer is owned by the *feeder's* slab (the
  ///    only writer at grant time), so the return travels as a message and
  ///    lands at the next barrier — a bounded (< one window) timing
  ///    relaxation on boundary credit returns.
  struct BoundaryMsg {
    Tick at = 0;
    Packet packet{};         // packet kind only
    Rank node = -1;          // packet: downstream node; credit: feeder node
    std::int32_t buf = 0;    // credit: buffer index whose free count grows
    std::int32_t chunks = 0; // credit: chunks (or bubble slots) returned
    std::uint32_t link = 0;  // packet: directed link crossed
    std::uint8_t port = 0;   // packet: input port; credit: direction to re-arb
    bool deliver = false;
    bool is_credit = false;
  };

  /// One buffered hop-observer grant (parallel runs only): replayed at the
  /// window barrier in (at, link) order. node/dir are derived from `link`.
  struct HopRecord {
    Tick at = 0;
    std::uint32_t link = 0;
    std::int32_t target = 0;
    Packet packet{};
  };

  /// Per-worker slab state: its own event wheel, clock, flight-slot arena,
  /// RNG, stat counters and fault-side state. Torus state arrays (buffers,
  /// credits, links, cores) stay in the shared structure-of-arrays vectors;
  /// slab ownership partitions their *indices*, so workers never write the
  /// same cell.
  struct Shard {
    int id = 0;
    sim::TimingWheel wheel;
    Tick now = 0;
    std::uint64_t processed = 0;
    std::vector<FlightSlot> flights;
    std::vector<std::uint32_t> free_flights;
    util::Xoshiro256StarStar rng;
    FabricStats stats;
    std::int64_t in_network = 0;
    /// Outgoing messages, indexed by destination shard.
    std::vector<std::vector<BoundaryMsg>> outbox;
    // Shard-owned fault state: counters merged at merge_shard_stats, a
    // private strike flag flipped by this slab's own kPermStrike event, a
    // private routability memo (the plan's internal one is not thread-safe)
    // and a private stuck-sweep arm flag.
    FaultStats fstats;
    bool struck = false;
    bool sweep_scheduled = false;
    FaultPlan::RouteMemo route_memo;
    /// Buffered hop-observer grants, drained at the window barrier.
    std::vector<HopRecord> hop_log;
  };

  // --- indexing helpers (dirs_ = 2n directions on an n-dimensional shape) ---
  int link_id(Rank node, int dir) const noexcept { return node * dirs_ + dir; }
  int buf_id(Rank node, int port, int vc) const noexcept {
    return (node * dirs_ + port) * vcs_ + vc;
  }
  int fifo_id(Rank node, int fifo) const noexcept { return node * fifo_count_ + fifo; }

  // --- event dispatch (single- or multi-threaded) ---
  /// Schedules an event on the executing slab's wheel (parallel run) or the
  /// engine (single-threaded run). All call sites schedule slab-local events
  /// by construction; cross-slab effects go through BoundaryMsg instead.
  void post(Tick at, std::uint32_t type, std::uint32_t a = 0, std::uint64_t b = 0);
  Tick shard_now() const noexcept { return shard_ctx_->now; }
  FabricStats& live_stats() noexcept {
    return shard_ctx_ != nullptr ? shard_ctx_->stats : stats_;
  }
  std::int64_t& live_in_network() noexcept {
    return shard_ctx_ != nullptr ? shard_ctx_->in_network : in_network_;
  }
  util::Xoshiro256StarStar& live_rng() noexcept {
    return shard_ctx_ != nullptr ? shard_ctx_->rng : rng_;
  }
  FlightSlot& flight_at(std::uint32_t slot) noexcept {
    return shard_ctx_ != nullptr ? shard_ctx_->flights[slot] : flights_[slot];
  }
  FaultStats& live_fault_stats() noexcept {
    return shard_ctx_ != nullptr ? shard_ctx_->fstats : fault_stats_;
  }
  /// Slab-private routability memo, or nullptr (= the plan's internal memo)
  /// on a single-threaded run.
  FaultPlan::RouteMemo* live_route_memo() const noexcept {
    return shard_ctx_ != nullptr ? &shard_ctx_->route_memo : nullptr;
  }
  bool struck_now() const noexcept {
    return shard_ctx_ != nullptr ? shard_ctx_->struck : struck_;
  }

  // --- parallel (slab-partitioned) run ---
  int plan_threads(ThreadFallbackReason* reason = nullptr) const noexcept;
  int slab_axis() const noexcept;
  bool run_parallel(int threads, Tick deadline);
  void setup_shards(int threads);
  void shard_step(Shard& shard);
  void apply_boundary(Shard& dst, const BoundaryMsg& msg);
  void barrier_phase(Tick deadline) noexcept;
  void advance_window(Tick deadline);
  void merge_shard_stats();
  void drain_hop_logs();

  // --- core simulation steps ---
  void pump_cpu(Rank node);
  void arbitrate(int link);
  void commit_grant(std::size_t lk, Rank node, int dir, Rank peer, const Packet& granted,
                    int target);
  void on_arrival(std::uint32_t slot_index);
  bool try_inject(Rank node, const InjectDesc& desc);
  void schedule_arb_if_idle(Rank node, int dir);
  void schedule_arb_if_idle(Rank node, int dir, Tick at);
  void schedule_profitable_arbs(Rank node, const Packet& packet);

  // --- fault machinery (no-ops unless faults_active_) ---
  void init_faults();
  /// Schedules the fault timeline (delayed permanent strike, transient
  /// outages) into the engine (single-threaded) or the shard wheels
  /// (parallel), exactly once per fabric, at prime time.
  void prime_fault_events();
  void on_fault_event(std::uint32_t a, std::uint64_t b);
  /// Parallel-run fault event: the executing slab applies only its own slice
  /// (its links' down bits, its nodes' cores, its flight arena, its memo).
  void mt_fault_event(std::uint32_t a, std::uint64_t b);
  void set_link_state(int link, bool down);
  void drop_in_flight_on_link(std::uint32_t link);
  /// Returns the downstream credit a dropped packet reserved in buffer
  /// (node, port, packet.vc) and re-arms the feeding link. The free counter
  /// is owned by the feeder's slab, so on a parallel run with a foreign
  /// feeder the return travels as a boundary credit message.
  void return_buffer_credit(Rank node, int port, const Packet& packet);
  /// True when `head`, after crossing `dir` into `peer`, still has a live
  /// minimal continuation (permanent fault state).
  bool continuation_live(const Packet& head, Rank peer, int dir) const;
  void arm_sweep();
  void stuck_sweep();
  void drop_buffer_head(std::size_t buf);
  void drop_fifo_head(Rank node, int fifo);
  void run_debug_checks(bool quiescent) const;

  /// Downstream VC selection; returns VC index, kDeliverHere, or kBlocked.
  static constexpr int kDeliverHere = -1;
  static constexpr int kBlocked = -2;
  int select_downstream(const Packet& packet, Rank node, int dir, bool entering) const;

  /// True if `packet` may use output axis/sign under its routing mode.
  static bool wants_output(const Packet& packet, int axis, int sign) noexcept;

  /// Bitmask over direction indices the packet may use as its next hop.
  static std::uint8_t want_mask(const Packet& packet) noexcept;

  // Every want-mask write goes through these setters so the per-(node, dir)
  // head counters (node_dir_want_) stay exact; the arbitration wakeup scan
  // then tests one counter instead of walking every buffer and FIFO mask.
  void update_want_counts(Rank node, std::uint8_t old_mask, std::uint8_t new_mask) {
    const std::uint8_t gained = new_mask & static_cast<std::uint8_t>(~old_mask);
    const std::uint8_t lost = old_mask & static_cast<std::uint8_t>(~new_mask);
    if ((gained | lost) == 0) return;
    const std::size_t base = static_cast<std::size_t>(node) * static_cast<std::size_t>(dirs_);
    for (int d = 0; d < dirs_; ++d) {
      const std::uint8_t bit = static_cast<std::uint8_t>(1u << d);
      if (gained & bit) ++node_dir_want_[base + static_cast<std::size_t>(d)];
      if (lost & bit) --node_dir_want_[base + static_cast<std::size_t>(d)];
    }
  }
  void set_buffer_want(std::size_t buf, std::uint8_t mask) {
    const std::uint8_t old = buffer_want_[buf];
    if (old == mask) return;
    buffer_want_[buf] = mask;
    update_want_counts(static_cast<Rank>(buf / (static_cast<std::size_t>(dirs_) *
                                                static_cast<std::size_t>(vcs_))),
                       old, mask);
  }
  void set_fifo_want(std::size_t fid, std::uint8_t mask) {
    const std::uint8_t old = fifo_want_[fid];
    if (old == mask) return;
    fifo_want_[fid] = mask;
    update_want_counts(static_cast<Rank>(fid / static_cast<std::size_t>(fifo_count_)),
                       old, mask);
  }

  Tick cpu_inject_cycles(const InjectDesc& desc) const noexcept;

  std::uint32_t alloc_flight_slot();

  NetworkConfig config_;
  topo::Torus torus_;
  Client* client_;
  sim::Engine engine_;
  util::Xoshiro256StarStar rng_;

  int dirs_;             // link directions per node (2n)
  int fifo_count_;
  int inputs_per_link_;  // 2n transit ports + injection FIFOs
  int vcs_;              // dynamic VCs + 1 bubble escape
  int vc_bubble_;        // index of the bubble VC (== config.dynamic_vcs)
  int bubble_slots_;     // bubble VC capacity in max-packet slots

  // Per (node, port, vc): queued packets and free space in chunks (the
  // bubble VC counts max-packet slots instead; see constructor). Ownership
  // under a parallel run: the queue and want mask belong to the node's slab;
  // the free counter belongs to the slab of the link *feeding* the buffer
  // (its only reader/writer at grant time).
  std::vector<RingQueue<Packet>> buffers_;
  std::vector<std::int32_t> buffer_free_;
  // Output-direction wish mask of each buffer's head packet (0 if empty);
  // contiguous so arbitration scans without touching the queues.
  std::vector<std::uint8_t> buffer_want_;
  // Per (node, dir): how many heads (transit buffers + injection FIFOs of
  // that node) currently want the direction. Kept exact by the want setters;
  // lets schedule_arb_if_idle answer "does anybody want this output?" with
  // one load instead of a scan over dirs_*vcs_ + fifo masks.
  std::vector<std::uint16_t> node_dir_want_;

  // Per (node, fifo).
  std::vector<RingQueue<Packet>> fifos_;
  std::vector<std::int32_t> fifo_free_;
  std::vector<std::uint8_t> fifo_want_;

  // Per directed link.
  std::vector<Tick> link_busy_until_;
  std::vector<std::uint8_t> arb_scheduled_;
  std::vector<std::uint8_t> rr_next_;
  std::vector<Rank> link_peer_;  // downstream node, -1 if mesh edge
  std::vector<Tick> link_busy_;  // accumulated busy cycles (stats)

  std::vector<CpuState> cpu_;

  std::vector<FlightSlot> flights_;
  std::vector<std::uint32_t> free_flights_;

  FabricStats stats_;
  std::int64_t in_network_ = 0;
  bool primed_ = false;
  HopObserver hop_observer_;

  // --- parallel-run state (empty on single-threaded runs) ---
  /// Slab of the worker executing the current handler; null outside
  /// run_parallel. Thread-local so nested fabrics on different host threads
  /// (harness --jobs) cannot alias.
  static thread_local Shard* shard_ctx_;
  std::vector<Shard> shards_;
  std::vector<std::int32_t> node_slab_;
  std::function<bool()> abort_check_;
  Tick window_cycles_ = 0;
  Tick window_end_ = 0;     // exclusive; written only at barriers
  bool mt_primed_ = false;  // primed into shard wheels (vs. the engine)
  bool mt_done_ = false;
  bool mt_drained_ = false;
  bool mt_aborted_ = false;
  std::uint64_t mt_events_ = 0;
  std::atomic<bool> mt_abort_flag_{false};
  std::mutex mt_error_mutex_;
  std::exception_ptr mt_error_;
  /// Scratch for the barrier's hop-observer drain (capacity reused).
  std::vector<HopRecord> hop_scratch_;

  // --- fault state (sized only when the fault plan is enabled) ---
  FaultPlan fault_plan_;
  bool faults_active_ = false;
  /// Permanent faults applied? True from construction when fail_at == 0
  /// (plan-ahead semantics, unchanged), false until the kPermStrike event
  /// when fail_at > 0 (blind mid-run fail-stop). Gates every consultation of
  /// the plan's permanent state: routability, hop steering, reroute vetoes,
  /// node liveness.
  bool struck_ = false;
  bool node_alive_now(Rank node) const noexcept {
    return !faults_active_ || !struck_now() || fault_plan_.node_alive(node);
  }
  Tick stuck_cycles_ = 0;  // stuck-head drop budget (0 = sweep disabled)
  bool sweep_scheduled_ = false;
  std::vector<std::uint8_t> link_down_;      // current (incl. transient) state
  std::vector<std::uint8_t> link_degraded_;  // serialization multiplier applies
  // Tick at which the current head of each buffer/FIFO became head; the
  // stuck sweep drops heads older than stuck_cycles_.
  std::vector<Tick> head_since_;
  std::vector<Tick> fifo_head_since_;
  /// Seeds of the counter-based per-packet fault draws (see fault_hash in
  /// faults.hpp): a drop/corruption decision is a pure function of
  /// (seed, flow, seq, attempt, remaining hops), never a sequential RNG
  /// draw, so the realization is identical at any thread count. Only
  /// sequenced packets (seq != 0, i.e. reliability-layer data) are eligible:
  /// ack packets are unsequenced and their population is timing-dependent,
  /// which would make the fault realization depend on the interleaving.
  std::uint64_t drop_seed_ = 0;
  std::uint64_t corrupt_seed_ = 0;
  bool fault_events_scheduled_ = false;
  FaultStats fault_stats_;
};

}  // namespace bgl::net
