#include "src/coll/direct.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/model/peak.hpp"

namespace bgl::coll {

CommSchedule build_direct_schedule(const net::NetworkConfig& config,
                                   std::uint64_t msg_bytes,
                                   const DirectTuning& tuning) {
  assert(tuning.burst >= 1);
  CommSchedule sched;
  sched.shape = config.shape;
  sched.torus = topo::Torus{config.shape};
  sched.msg_bytes = msg_bytes;
  sched.injection_fifos = config.injection_fifos;
  sched.form = StreamForm::kOrdered;

  PhaseSpec phase;
  phase.mode = tuning.mode;
  phase.fifo_class = 0;
  phase.packets = rt::packetize(msg_bytes, rt::WireFormat::direct());
  phase.first_packet_extra_cycles = tuning.alpha_cycles;
  phase.per_packet_cycles = tuning.per_packet_cycles;
  if (tuning.pace_factor > 0.0) {
    const double pace = tuning.pace_factor * model::bottleneck_factor(config.shape) *
                        config.chunk_cycles;
    const double bandwidth =
        static_cast<double>(config.chunk_cycles) / config.cpu_links;
    phase.pace_extra_per_chunk = std::max(0.0, pace - bandwidth);
  }

  sched.stream.rounds = static_cast<std::uint32_t>(
      (phase.packets.size() + static_cast<std::size_t>(tuning.burst) - 1) /
      static_cast<std::size_t>(tuning.burst));
  sched.stream.burst = tuning.burst;
  sched.phases.push_back(std::move(phase));
  sched.fifo_classes.push_back(FifoClass{});  // all FIFOs, round-robin

  const auto nodes = static_cast<std::size_t>(config.shape.nodes());
  util::Xoshiro256StarStar master(config.seed ^ 0xd1ec7ULL);
  sched.orders.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    sched.orders.emplace_back(static_cast<topo::Rank>(n),
                              static_cast<std::int32_t>(nodes), rng, tuning.order);
  }
  return sched;
}

DirectClient::DirectClient(const net::NetworkConfig& config, std::uint64_t msg_bytes,
                           const DirectTuning& tuning, DeliveryMatrix* matrix,
                           const net::FaultPlan* faults)
    : config_(config),
      msg_bytes_(msg_bytes),
      tuning_(tuning),
      packets_(rt::packetize(msg_bytes, rt::WireFormat::direct())) {
  matrix_ = matrix;
  faults_ = faults;
  assert(tuning_.burst >= 1);
  rounds_ = static_cast<std::uint32_t>(
      (packets_.size() + static_cast<std::size_t>(tuning_.burst) - 1) /
      static_cast<std::size_t>(tuning_.burst));

  // Throttle surcharge: injecting at the Eq. 2 rate means one packet every
  // pace_factor * C * wire_cycles; the surcharge is what the normal
  // bandwidth-proportional cost leaves uncovered (per chunk, to handle mixed
  // packet sizes).
  pace_extra_per_chunk_ = 0.0;
  if (tuning_.pace_factor > 0.0) {
    const double pace =
        tuning_.pace_factor * model::bottleneck_factor(config_.shape) * config_.chunk_cycles;
    const double bandwidth = static_cast<double>(config_.chunk_cycles) / config_.cpu_links;
    pace_extra_per_chunk_ = std::max(0.0, pace - bandwidth);
  }

  const auto nodes = static_cast<std::size_t>(config_.shape.nodes());
  util::Xoshiro256StarStar master(config_.seed ^ 0xd1ec7ULL);
  nodes_.resize(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    nodes_[n].order = DestOrder(static_cast<topo::Rank>(n),
                                static_cast<std::int32_t>(nodes), rng, tuning_.order);
  }
}

bool DirectClient::next_packet(topo::Rank node, net::InjectDesc& out) {
  NodeState& s = nodes_[static_cast<std::size_t>(node)];
  if (s.done) return false;

  while (true) {
    if (s.position >= s.order.positions()) {
      s.position = 0;
      s.burst_sent = 0;
      if (++s.round >= rounds_) {
        s.done = true;
        return false;
      }
    }
    const topo::Rank dst = s.order.at(s.position);
    if (dst < 0) {  // affine-mode self slot
      ++s.position;
      continue;
    }
    if (faults_ != nullptr && !faults_->pair_routable(node, dst, tuning_.mode)) {
      ++s.position;  // no live path will ever exist; skip the destination
      continue;
    }
    const std::uint32_t pkt_index =
        s.round * static_cast<std::uint32_t>(tuning_.burst) + s.burst_sent;
    if (pkt_index >= packets_.size()) {  // message shorter than burst*rounds
      ++s.position;
      s.burst_sent = 0;
      continue;
    }

    const rt::PacketSpec& spec = packets_[pkt_index];
    out.dst = dst;
    out.tag = 0;
    out.payload_bytes = spec.payload_bytes;
    out.wire_chunks = spec.wire_chunks;
    out.mode = tuning_.mode;
    out.fifo = static_cast<std::uint8_t>(s.fifo_rr % config_.injection_fifos);
    ++s.fifo_rr;

    double extra = tuning_.per_packet_cycles + pace_extra_per_chunk_ * spec.wire_chunks;
    if (pkt_index == 0) extra += tuning_.alpha_cycles;
    out.extra_cpu_cycles = static_cast<std::uint32_t>(std::lround(extra));

    // Advance the schedule.
    if (++s.burst_sent >= static_cast<std::uint32_t>(tuning_.burst) ||
        pkt_index + 1 >= packets_.size()) {
      s.burst_sent = 0;
      ++s.position;
    }
    return true;
  }
}

void DirectClient::on_delivery(topo::Rank node, const net::Packet& packet) {
  note_final_delivery();
  if (matrix_ != nullptr) matrix_->record(packet.src, node, packet.payload_bytes);
}

std::uint64_t DirectClient::expected_deliveries() const {
  const auto nodes = static_cast<std::uint64_t>(config_.shape.nodes());
  return nodes * (nodes - 1) * packets_.size();
}

}  // namespace bgl::coll
