#include "src/coll/direct.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/model/peak.hpp"

namespace bgl::coll {

CommSchedule build_direct_schedule(const net::NetworkConfig& config,
                                   std::uint64_t msg_bytes,
                                   const DirectTuning& tuning) {
  assert(tuning.burst >= 1);
  CommSchedule sched;
  sched.shape = config.shape;
  sched.torus = topo::Torus{config.shape};
  sched.msg_bytes = msg_bytes;
  sched.injection_fifos = config.injection_fifos;
  sched.form = StreamForm::kOrdered;

  PhaseSpec phase;
  phase.mode = tuning.mode;
  phase.fifo_class = 0;
  phase.packets = rt::packetize(msg_bytes, rt::WireFormat::direct());
  phase.first_packet_extra_cycles = tuning.alpha_cycles;
  phase.per_packet_cycles = tuning.per_packet_cycles;
  if (tuning.pace_factor > 0.0) {
    const double pace = tuning.pace_factor * model::bottleneck_factor(config.shape) *
                        config.chunk_cycles;
    const double bandwidth =
        static_cast<double>(config.chunk_cycles) / config.cpu_links;
    phase.pace_extra_per_chunk = std::max(0.0, pace - bandwidth);
  }

  sched.stream.rounds = static_cast<std::uint32_t>(
      (phase.packets.size() + static_cast<std::size_t>(tuning.burst) - 1) /
      static_cast<std::size_t>(tuning.burst));
  sched.stream.burst = tuning.burst;
  sched.phases.push_back(std::move(phase));
  sched.fifo_classes.push_back(FifoClass{});  // all FIFOs, round-robin

  const auto nodes = static_cast<std::size_t>(config.shape.nodes());
  util::Xoshiro256StarStar master(config.seed ^ 0xd1ec7ULL);
  sched.orders.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    sched.orders.emplace_back(static_cast<topo::Rank>(n),
                              static_cast<std::int32_t>(nodes), rng, tuning.order);
  }
  return sched;
}

}  // namespace bgl::coll
