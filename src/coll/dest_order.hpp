// Per-node randomized destination orderings.
//
// The production MPI all-to-all and the paper's AR scheme inject packets in a
// random permutation of destinations to smooth out link contention. For
// partitions up to kShuffleLimit nodes we materialize a true Fisher-Yates
// permutation per node; above that (e.g. the 20,480-node partition) we use an
// O(1)-memory random affine bijection, which decorrelates nodes equally well
// for this purpose without the O(P^2) memory.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/torus.hpp"
#include "src/util/rng.hpp"

namespace bgl::coll {

inline constexpr std::int32_t kShuffleLimit = 4096;

/// How a node orders its P-1 destinations.
enum class OrderPolicy {
  kRandom,    // per-node random permutation (the paper's randomized schemes)
  kRotation,  // self+1, self+2, ... — the classic non-random baseline
  kIdentity,  // 0, 1, 2, ... identical on every node — pathological convoys
};

class DestOrder {
 public:
  DestOrder() = default;

  DestOrder(topo::Rank self, std::int32_t nodes, util::Xoshiro256StarStar& rng,
            OrderPolicy policy = OrderPolicy::kRandom)
      : self_(self), nodes_(nodes) {
    if (policy != OrderPolicy::kRandom || nodes_ <= kShuffleLimit) {
      list_.reserve(static_cast<std::size_t>(nodes_) - 1);
      if (policy == OrderPolicy::kRotation) {
        for (topo::Rank offset = 1; offset < nodes_; ++offset) {
          list_.push_back(static_cast<topo::Rank>((self_ + offset) % nodes_));
        }
      } else {
        for (topo::Rank r = 0; r < nodes_; ++r) {
          if (r != self_) list_.push_back(r);
        }
      }
      if (policy == OrderPolicy::kRandom) rng.shuffle(list_);
    } else {
      affine_ = util::AffinePermutation(static_cast<std::uint64_t>(nodes_), rng);
      use_affine_ = true;
    }
  }

  /// Number of order positions; positions may yield -1 (self) in affine mode.
  std::uint32_t positions() const {
    return use_affine_ ? static_cast<std::uint32_t>(nodes_)
                       : static_cast<std::uint32_t>(list_.size());
  }

  /// Destination at position i, or -1 when the position maps to self
  /// (affine mode only; callers skip it).
  topo::Rank at(std::uint32_t i) const {
    if (!use_affine_) return list_[i];
    const auto r = static_cast<topo::Rank>(affine_(i));
    return r == self_ ? -1 : r;
  }

  /// Swap two positions (used by credit flow control to defer a blocked
  /// destination). Only supported in materialized mode.
  bool swappable() const { return !use_affine_; }
  void swap(std::uint32_t i, std::uint32_t j) { std::swap(list_[i], list_[j]); }

 private:
  topo::Rank self_ = 0;
  std::int32_t nodes_ = 0;
  std::vector<topo::Rank> list_;
  util::AffinePermutation affine_;
  bool use_affine_ = false;
};

}  // namespace bgl::coll
