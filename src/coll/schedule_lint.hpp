// Static schedule validation — no simulation required.
//
// schedule_lint() checks a CommSchedule against the invariants every
// correct all-to-all schedule must satisfy:
//
//   structure    phase/FIFO-class/op indices well-formed, barrier metadata
//                consistent, ordered streams long enough for their message;
//   fifo-budget  classes inside the hardware FIFO range, reserved classes
//                pairwise disjoint;
//   coverage     every pair the schedule claims to cover is carried by
//                exactly one logical transfer (and uncovered pairs by none);
//   deps         extra dependency edges reference real transfers, respect
//                phase order and form no cycle;
//   relay        under a fault plan, every relay is alive and both legs of
//                every relayed transfer are routable.
//
// The checks run on the same for_each_transfer enumeration the CSV/JSON
// dumps use, so a passing lint certifies the dump, the executor's stream and
// the coverage mask agree. Cost is O(P^2) pair state — lint shapes, not the
// 20k-node partitions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/coll/schedule.hpp"

namespace bgl::coll {

struct LintIssue {
  std::string check;    // "structure", "fifo-budget", "coverage", "deps", "relay"
  std::string message;  // human-readable description
};

struct LintReport {
  std::vector<LintIssue> issues;
  std::int64_t transfers = 0;       // enumerated logical transfers
  std::uint64_t covered_pairs = 0;  // ordered pairs the schedule carries

  bool ok() const { return issues.empty(); }
  /// One line per issue ("check: message"), or "ok" when clean.
  std::string to_string() const;
};

/// Validates `sched` under `faults` (nullptr = fault-free). Never simulates.
LintReport schedule_lint(const CommSchedule& sched,
                         const net::FaultPlan* faults = nullptr);

}  // namespace bgl::coll
