// Schedule synthesis: a deterministic, seedable beam search (with an
// optional simulated-annealing refinement pass) over the CommSchedule IR.
//
// The search space is a genome per strategy *family*:
//   kDirect     routing mode, destination order, burst, RNG salt;
//   kRelay      TPS-style store-and-forward: relay axis, reserved-FIFO split,
//               credit window, salt;
//   kCombine2D  virtual-mesh combining: physical mapping, mesh factorization,
//               salt;
//   kCombine3D  a k-stage axis-aligned combining scheme the paper never
//               measured (one stage per shape axis; historically three):
//               stage g sends combined messages along one physical axis,
//               gated by one barrier per stage boundary (the multi-barrier
//               BarrierSpec machinery exists for this).
//
// Every genome expands to a CommSchedule via build_genome_schedule — a pure
// function of (genome, network config, message size, fault plan) — so a
// winner is reproducible from its genome string alone. Candidates are gated
// by schedule_lint as a cheap fitness filter, then scored by short
// simulations through the harness thread pool (`jobs`); scoring is
// index-addressed, so the synthesized winner is bit-identical for any
// worker count. Winners are cached in a content-addressed store keyed by
// (shape, msg_bytes, fault plan); select_strategy_cached consults the cache
// as a seventh registry entry, falling back to the paper's selector when
// the cache has no better-than-baseline entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/coll/schedule.hpp"
#include "src/coll/selector.hpp"
#include "src/network/config.hpp"
#include "src/network/faults.hpp"

namespace bgl::coll::synth {

enum class GenomeFamily : std::uint8_t { kDirect, kRelay, kCombine2D, kCombine3D };

/// One point of the search space. Fields outside the genome's family are
/// ignored (and kept at defaults so key() is canonical).
struct Genome {
  GenomeFamily family = GenomeFamily::kDirect;

  // --- kDirect ---
  int mode = 0;   // 0 = adaptive, 1 = deterministic
  int order = 0;  // 0 = random permutation, 1 = rotation
  int burst = 1;  // packets per destination per round: 1, 2 or 4

  // --- kRelay ---
  int relay_axis = 0;     // linear axis of the store-and-forward leg
  int fifo_split = 4;     // 0 = shared FIFO classes; else reserved [0,split)
  int credit_window = 0;  // phase-1 packets in flight per (src, relay); 0 = off

  // --- kCombine2D / kCombine3D ---
  int mapping = 0;       // physical axis order (MeshMapping value)
  int factor_index = 0;  // kCombine2D: index into the divisor-pair ladder

  /// Extra seed material for the per-node shuffles; 0 reproduces the
  /// registry builder's RNG streams exactly.
  std::uint64_t salt = 0;

  /// Canonical compact encoding, e.g. "R:a1,f4,c0,s0". Equal genomes have
  /// equal keys; the cache stores winners by this string.
  std::string key() const;

  friend bool operator==(const Genome&, const Genome&) = default;
};

/// Parses a Genome::key() string; returns false on malformed input.
bool genome_from_key(const std::string& key, Genome& out);

/// The divisor-pair ladder kCombine2D's factor_index walks: (pvx, pvy) with
/// pvx * pvy == nodes and pvx >= pvy, near-square first.
std::vector<std::pair<int, int>> mesh_factor_ladder(std::int32_t nodes);

/// Expands a genome into its CommSchedule. Pure function of the arguments;
/// `faults` is the planning fault plan (nullptr = fault-free).
CommSchedule build_genome_schedule(const Genome& genome,
                                   const net::NetworkConfig& net,
                                   std::uint64_t msg_bytes,
                                   const net::FaultPlan* faults);

/// The k-stage combining builder (kCombine3D; the "C3" key is kept for
/// cache compatibility): stage 0 combines all blocks sharing the
/// destination's first-axis coordinate into one message per first-axis
/// peer; each later stage forwards along the next mapped axis, gated by a
/// BarrierSpec on the previous stage's arrivals plus a gamma-cost re-sort.
/// One stage per shape axis (three on the classic 3-D torus, down to a
/// single direct stage on a ring). Messages use the combining wire format.
/// Under a fault plan, ops/finalize lists/coverage all derive from one
/// chain predicate so lint, execution and verification agree.
CommSchedule build_combine3d_schedule(const net::NetworkConfig& config,
                                      std::uint64_t msg_bytes, int mapping,
                                      const net::FaultPlan* faults);

struct SynthOptions {
  /// Evaluation network (shape, seed, chunk timing, fault config).
  net::NetworkConfig net{};
  std::uint64_t msg_bytes = 240;

  std::uint64_t seed = 1;  // search seed (mutation/SA randomness)
  int beam_width = 4;
  int generations = 3;
  int mutations_per_survivor = 4;
  int sa_steps = 0;  // optional simulated-annealing refinement of the winner
  int jobs = 1;      // scoring parallelism; never changes the result
  /// Simulator worker threads per scoring run. The parallel engine is
  /// deterministic per (seed, N): the synthesized winner is reproducible
  /// from (problem, seeds, budget, sim_threads) — record sim_threads next
  /// to the seeds when reproducibility across machines matters. The pool's
  /// `jobs` is shrunk so jobs x sim_threads never oversubscribes the host
  /// (jobs itself never changes results; sim_threads can).
  int sim_threads = 1;
  /// Per-candidate wall-clock kill switch, forwarded to the scoring runs.
  double wall_timeout_ms = 0.0;
  /// Also score the six registry strategies to fill SynthResult::baseline_*.
  bool score_baselines = true;
};

struct Candidate {
  Genome genome{};
  /// Simulated elapsed cycles; UINT64_MAX = lint-rejected or failed run.
  std::uint64_t cycles = ~std::uint64_t{0};
  bool lint_ok = false;
  bool drained = false;
};

struct SynthResult {
  Candidate best{};
  std::vector<Candidate> beam;  // final beam, best first
  int evaluated = 0;            // simulations run (lint rejections excluded)
  int lint_rejected = 0;
  std::string baseline_name;    // best registry strategy on this problem
  std::uint64_t baseline_cycles = ~std::uint64_t{0};
};

/// Runs the beam search (plus optional SA pass). Deterministic per
/// (opts.seed, budget knobs, opts.sim_threads): identical results for any
/// opts.jobs.
SynthResult synthesize(const SynthOptions& opts);

/// One cached winner. `genome` round-trips through Genome::key().
struct CacheEntry {
  std::string key;  // SynthCache::problem_key of the (shape, bytes, faults)
  Genome genome{};
  std::uint64_t msg_bytes = 0;
  std::uint64_t cycles = ~std::uint64_t{0};
  std::string baseline_name;
  std::uint64_t baseline_cycles = ~std::uint64_t{0};
  std::uint64_t net_seed = 0;     // evaluation seed the winner was scored with
  std::uint64_t search_seed = 0;  // provenance
  std::string budget;             // e.g. "bw4:g3:m4:sa0"
};

/// Content-addressed winner store: one text file per problem key under
/// `dir`, named by the key's FNV-1a hash with an FNV checksum line.
/// Corrupt or truncated entries read as misses (the caller re-synthesizes).
class SynthCache {
 public:
  explicit SynthCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Canonical problem key: shape, message bytes and every FaultConfig
  /// field, e.g. "4x4x8|m64|link=0.02,node=1,fseed=7".
  static std::string problem_key(const topo::Shape& shape, std::uint64_t msg_bytes,
                                 const net::FaultConfig& faults);

  std::string path_for(const std::string& key) const;

  /// False on miss, unreadable file, checksum mismatch or malformed entry.
  bool lookup(const std::string& key, CacheEntry& out) const;

  /// Atomically (write + rename) persists `entry` under entry.key.
  void store(const CacheEntry& entry) const;

 private:
  std::string dir_;
};

/// Cache-through synthesis: returns the cached winner for the options'
/// problem key when present, otherwise runs synthesize() and stores the
/// result. The returned SynthResult is identical either way (beam contents
/// are only populated on a fresh run).
SynthResult synthesize_cached(const SynthOptions& opts, const SynthCache& cache);

/// Rebuilds a cached winner's schedule exactly as it was scored: the
/// genome expanded against `net` with the entry's recorded evaluation seed.
CommSchedule build_cached_schedule(const CacheEntry& entry,
                                   const net::NetworkConfig& net,
                                   const net::FaultPlan* faults);

/// The cache as a seventh registry entry: consults `cache` for this
/// problem; when a cached winner beat its recorded registry baseline, the
/// selection says to run it (use_synth). Otherwise falls through to the
/// paper's select_strategy.
struct CachedSelection {
  bool use_synth = false;
  CacheEntry entry{};      // valid when use_synth
  Selection registry{};    // always filled (the fallback pick)
};

CachedSelection select_strategy_cached(const topo::Shape& shape,
                                       std::uint64_t msg_bytes,
                                       const net::FaultPlan* faults,
                                       const SynthCache& cache);

}  // namespace bgl::coll::synth
