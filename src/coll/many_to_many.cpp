#include "src/coll/many_to_many.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "src/coll/tps.hpp"
#include "src/network/fabric.hpp"
#include "src/util/rng.hpp"

namespace bgl::coll {

namespace {

constexpr std::uint64_t kKindFinal = 1;

std::uint64_t make_tag(std::uint64_t kind, topo::Rank orig_src, topo::Rank final_dst) {
  return (kind << 62) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(orig_src) & 0xffffffU) << 24) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(final_dst) & 0xffffffU);
}

}  // namespace

std::size_t Pattern::total_messages() const {
  std::size_t total = 0;
  for (std::size_t n = 0; n < dests.size(); ++n) {
    for (const topo::Rank d : dests[n]) {
      total += (d != static_cast<topo::Rank>(n));
    }
  }
  return total;
}

Pattern Pattern::random_subset(std::int32_t nodes, int fanout, std::uint64_t seed) {
  Pattern pattern;
  pattern.dests.resize(static_cast<std::size_t>(nodes));
  util::Xoshiro256StarStar master(seed);
  for (std::int32_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    std::set<topo::Rank> chosen;
    while (chosen.size() < static_cast<std::size_t>(std::min(fanout, nodes - 1))) {
      const auto d = static_cast<topo::Rank>(rng.below(static_cast<std::uint64_t>(nodes)));
      if (d != n) chosen.insert(d);
    }
    pattern.dests[static_cast<std::size_t>(n)].assign(chosen.begin(), chosen.end());
  }
  return pattern;
}

Pattern Pattern::halo(const topo::Shape& shape) {
  const topo::Torus torus{shape};
  Pattern pattern;
  pattern.dests.resize(static_cast<std::size_t>(torus.nodes()));
  for (topo::Rank n = 0; n < torus.nodes(); ++n) {
    std::set<topo::Rank> neighbors;
    for (int d = 0; d < torus.directions(); ++d) {
      const topo::Rank peer = torus.neighbor(n, topo::Direction::from_index(d));
      if (peer >= 0 && peer != n) neighbors.insert(peer);
    }
    pattern.dests[static_cast<std::size_t>(n)].assign(neighbors.begin(), neighbors.end());
  }
  return pattern;
}

Pattern Pattern::grid_partners(std::int32_t nodes, int cols) {
  assert(cols > 0 && nodes % cols == 0);
  Pattern pattern;
  pattern.dests.resize(static_cast<std::size_t>(nodes));
  for (std::int32_t n = 0; n < nodes; ++n) {
    const std::int32_t row = n / cols;
    const std::int32_t col = n % cols;
    auto& dests = pattern.dests[static_cast<std::size_t>(n)];
    for (std::int32_t c = 0; c < cols; ++c) {
      if (c != col) dests.push_back(row * cols + c);
    }
    for (std::int32_t r = 0; r < nodes / cols; ++r) {
      if (r != row) dests.push_back(r * cols + col);
    }
  }
  return pattern;
}

SparseClient::SparseClient(const net::NetworkConfig& config, const Pattern& pattern,
                           const ManyToManyOptions& options)
    : config_(config),
      torus_(config.shape),
      options_(options),
      packets_(rt::packetize(options.msg_bytes, rt::WireFormat::direct())) {
  matrix_ = options.deliveries;
  assert(pattern.dests.size() == static_cast<std::size_t>(torus_.nodes()));
  if (options_.two_phase) {
    linear_axis_ = options_.linear_axis >= 0 ? options_.linear_axis
                                             : choose_linear_axis(config_.shape);
  }

  util::Xoshiro256StarStar master(config_.seed ^ 0x5b195eULL);
  nodes_.resize(pattern.dests.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    auto rng = master.fork();
    auto& dests = nodes_[n].dests;
    for (const topo::Rank d : pattern.dests[n]) {
      if (d != static_cast<topo::Rank>(n)) dests.push_back(d);
    }
    rng.shuffle(dests);
    expected_final_ += dests.size() * packets_.size();
  }
}

topo::Rank SparseClient::intermediate_for(topo::Rank src, topo::Rank dst) const {
  topo::Coord c = torus_.coord_of(src);
  c[linear_axis_] = torus_.coord_of(dst)[linear_axis_];
  return torus_.rank_of(c);
}

std::uint8_t SparseClient::pick_fifo(NodeState& s, bool phase1) {
  const int fifos = config_.injection_fifos;
  if (!options_.two_phase || fifos < 2) {
    const auto fifo = static_cast<std::uint8_t>(s.fifo_rr1 % fifos);
    ++s.fifo_rr1;
    return fifo;
  }
  const int half = fifos / 2;
  std::uint8_t& rr = phase1 ? s.fifo_rr1 : s.fifo_rr2;
  const int begin = phase1 ? 0 : half;
  const int count = phase1 ? half : fifos - half;
  const auto fifo = static_cast<std::uint8_t>(begin + (rr % count));
  ++rr;
  return fifo;
}

bool SparseClient::next_packet(topo::Rank node, net::InjectDesc& out) {
  NodeState& s = nodes_[static_cast<std::size_t>(node)];

  if (!s.forwards.empty()) {
    const Forward f = s.forwards.front();
    s.forwards.pop_front();
    out.dst = f.final_dst;
    out.tag = make_tag(kKindFinal, f.orig_src, f.final_dst);
    out.payload_bytes = f.payload_bytes;
    out.wire_chunks = f.chunks;
    out.mode = options_.mode;
    out.fifo = pick_fifo(s, /*phase1=*/false);
    out.extra_cpu_cycles = options_.forward_cpu_cycles;
    return true;
  }

  if (s.dest_index >= s.dests.size()) return false;
  const topo::Rank dst = s.dests[s.dest_index];
  const rt::PacketSpec& spec = packets_[s.packet_index];

  topo::Rank wire_dst = dst;
  std::uint64_t kind = kKindFinal;
  bool phase1 = false;
  if (options_.two_phase) {
    const topo::Rank inter = intermediate_for(node, dst);
    phase1 = inter != node;
    if (inter != node && inter != dst) {
      wire_dst = inter;
      kind = 0;  // store and forward
    }
  }

  out.dst = wire_dst;
  out.tag = make_tag(kind, node, dst);
  out.payload_bytes = spec.payload_bytes;
  out.wire_chunks = spec.wire_chunks;
  out.mode = options_.mode;
  out.fifo = pick_fifo(s, phase1);
  double extra = 0.0;
  if (s.packet_index == 0) extra += options_.alpha_cycles;
  out.extra_cpu_cycles = static_cast<std::uint32_t>(std::lround(extra));

  if (++s.packet_index >= packets_.size()) {
    s.packet_index = 0;
    ++s.dest_index;
  }
  return true;
}

void SparseClient::on_delivery(topo::Rank node, const net::Packet& packet) {
  const std::uint64_t kind = packet.tag >> 62;
  const auto orig_src = static_cast<topo::Rank>((packet.tag >> 24) & 0xffffffU);
  const auto final_dst = static_cast<topo::Rank>(packet.tag & 0xffffffU);

  if (kind == kKindFinal) {
    assert(final_dst == node);
    note_final_delivery();
    if (matrix_ != nullptr) matrix_->record(orig_src, node, packet.payload_bytes);
    return;
  }
  NodeState& s = nodes_[static_cast<std::size_t>(node)];
  s.forwards.push_back(Forward{final_dst, orig_src, packet.payload_bytes, packet.chunks});
  fabric_->wake_cpu(node);
}

ManyToManyResult run_many_to_many(const Pattern& pattern, const ManyToManyOptions& options) {
  SparseClient client(options.net, pattern, options);
  net::Fabric fabric(options.net, client);
  client.bind(fabric);

  ManyToManyResult result;
  result.drained = fabric.run();
  result.elapsed_cycles = client.completion_cycles();
  result.elapsed_us = static_cast<double>(result.elapsed_cycles) / 700.0;
  result.messages = pattern.total_messages();
  result.packets_delivered = fabric.stats().packets_delivered;
  if (options.net.collect_link_stats) {
    result.links = trace::summarize_links(fabric, result.elapsed_cycles);
  }
  return result;
}

}  // namespace bgl::coll
