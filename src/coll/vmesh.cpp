#include "src/coll/vmesh.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <tuple>

namespace bgl::coll {

std::pair<int, int> vmesh_factorize(std::int32_t nodes) {
  const int root = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(nodes))));
  for (int pvx = root; pvx <= nodes; ++pvx) {
    if (nodes % pvx == 0) return {pvx, nodes / pvx};
  }
  return {nodes, 1};
}

CommSchedule build_vmesh_schedule(const net::NetworkConfig& config,
                                  std::uint64_t msg_bytes,
                                  const VmeshTuning& tuning,
                                  const net::FaultPlan* faults) {
  const auto nodes = static_cast<std::int32_t>(config.shape.nodes());
  int pvx = 1;
  int pvy = 1;
  if (tuning.pvx > 0 && tuning.pvy > 0) {
    assert(static_cast<std::int64_t>(tuning.pvx) * tuning.pvy == nodes);
    pvx = tuning.pvx;
    pvy = tuning.pvy;
  } else {
    std::tie(pvx, pvy) = vmesh_factorize(nodes);
  }
  const double gamma_cycles_per_byte = tuning.gamma_ns_per_byte * tuning.clock_ghz;

  CommSchedule sched;
  sched.shape = config.shape;
  sched.torus = topo::Torus{config.shape};
  sched.msg_bytes = msg_bytes;
  sched.injection_fifos = config.injection_fifos;
  sched.form = StreamForm::kExplicit;

  // Virtual rank order per `mapping` (first axis varies fastest).
  std::vector<int> vrank_of_rank(static_cast<std::size_t>(nodes));
  std::vector<topo::Rank> rank_of_vrank(static_cast<std::size_t>(nodes));
  {
    std::array<int, topo::kAxes> order{};
    switch (tuning.mapping) {
      case MeshMapping::kXYZ: order = {topo::kX, topo::kY, topo::kZ}; break;
      case MeshMapping::kZYX: order = {topo::kZ, topo::kY, topo::kX}; break;
      case MeshMapping::kYXZ: order = {topo::kY, topo::kX, topo::kZ}; break;
    }
    int vrank = 0;
    topo::Coord c;
    for (int k = 0; k < config.shape.dim[static_cast<std::size_t>(order[2])]; ++k) {
      for (int j = 0; j < config.shape.dim[static_cast<std::size_t>(order[1])]; ++j) {
        for (int i = 0; i < config.shape.dim[static_cast<std::size_t>(order[0])]; ++i) {
          c[order[0]] = i;
          c[order[1]] = j;
          c[order[2]] = k;
          const topo::Rank r = sched.torus.rank_of(c);
          vrank_of_rank[static_cast<std::size_t>(r)] = vrank;
          rank_of_vrank[static_cast<std::size_t>(vrank)] = r;
          ++vrank;
        }
      }
    }
  }
  const auto col_of = [&](topo::Rank r) {
    return vrank_of_rank[static_cast<std::size_t>(r)] % pvx;
  };
  const auto row_of = [&](topo::Rank r) {
    return vrank_of_rank[static_cast<std::size_t>(r)] / pvx;
  };
  const auto rank_at = [&](int col, int row) {
    return rank_of_vrank[static_cast<std::size_t>(row * pvx + col)];
  };
  const auto leg_ok = [&](topo::Rank from, topo::Rank to) {
    if (faults == nullptr || !faults->enabled() || from == to) return true;
    return faults->pair_routable(from, to, net::RoutingMode::kAdaptive);
  };

  PhaseSpec row_phase;  // combined row messages
  row_phase.mode = net::RoutingMode::kAdaptive;
  row_phase.fifo_class = 0;
  row_phase.packets = rt::packetize(static_cast<std::uint64_t>(pvy) * msg_bytes,
                                    rt::WireFormat::combining());
  row_phase.first_packet_extra_cycles =
      tuning.alpha_msg_cycles + gamma_cycles_per_byte * static_cast<double>(pvy) *
                                    static_cast<double>(msg_bytes);
  PhaseSpec col_phase;  // combined column messages, after the re-sort barrier
  col_phase.gate = PhaseGate::kLocalBarrier;
  col_phase.mode = net::RoutingMode::kAdaptive;
  col_phase.fifo_class = 0;
  col_phase.packets = rt::packetize(static_cast<std::uint64_t>(pvx) * msg_bytes,
                                    rt::WireFormat::combining());
  col_phase.first_packet_extra_cycles = tuning.alpha_msg_cycles;
  const std::size_t row_message_packets = row_phase.packets.size();
  sched.phases.push_back(std::move(row_phase));
  sched.phases.push_back(std::move(col_phase));
  sched.fifo_classes.push_back(
      FifoClass{0, 0, FifoPolicy::kPositional, false});

  BarrierSpec barrier;
  barrier.phase = 1;
  barrier.expected.resize(static_cast<std::size_t>(nodes));
  barrier.compute_cycles.resize(static_cast<std::size_t>(nodes));
  sched.op_begin.reserve(static_cast<std::size_t>(nodes) + 1);
  sched.op_begin.push_back(0);
  if (faults != nullptr && faults->enabled()) sched.covered = PairMask(nodes);

  std::vector<topo::Rank> row_peers, col_peers;
  util::Xoshiro256StarStar master(config.seed ^ 0x3e5affULL);
  for (std::int32_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    const int col = col_of(n);
    const int row = row_of(n);
    // Under a fault plan, peers we cannot reach are dropped from the send
    // schedule, and phase 2 only waits for row peers that can reach *us*.
    std::uint64_t p1_senders = 0;
    row_peers.clear();
    for (int j = 0; j < pvx; ++j) {
      if (j == col) continue;
      const topo::Rank peer = rank_at(j, row);
      if (leg_ok(n, peer)) row_peers.push_back(peer);
      if (leg_ok(peer, n)) ++p1_senders;
    }
    col_peers.clear();
    for (int k = 0; k < pvy; ++k) {
      if (k == row) continue;
      const topo::Rank peer = rank_at(col, k);
      if (leg_ok(n, peer)) col_peers.push_back(peer);
    }
    rng.shuffle(row_peers);
    rng.shuffle(col_peers);

    barrier.expected[static_cast<std::size_t>(n)] =
        p1_senders * row_message_packets;
    const double resort_bytes = static_cast<double>(row_peers.size()) *
                                static_cast<double>(pvy) *
                                static_cast<double>(msg_bytes);
    barrier.compute_cycles[static_cast<std::size_t>(n)] =
        static_cast<net::Tick>(std::llround(gamma_cycles_per_byte * resort_bytes));

    // The blocks a phase-2 message from this node carries: one per row
    // member whose phase-1 message could reach us (plus our own).
    const auto finalize_begin =
        static_cast<std::int32_t>(sched.finalize_pool.size());
    for (int j = 0; j < pvx; ++j) {
      const topo::Rank orig = rank_at(j, row);
      if (orig != n && !leg_ok(orig, n)) continue;
      sched.finalize_pool.push_back(orig);
    }
    const auto finalize_count =
        static_cast<std::int32_t>(sched.finalize_pool.size()) - finalize_begin;

    for (std::size_t i = 0; i < row_peers.size(); ++i) {
      SendOp op;
      op.dst = row_peers[i];
      op.phase = 0;
      op.flags = SendOp::kFinalizeSelf;
      op.peer_index = static_cast<std::uint16_t>(i);
      sched.ops.push_back(op);
    }
    for (std::size_t i = 0; i < col_peers.size(); ++i) {
      SendOp op;
      op.dst = col_peers[i];
      op.phase = 1;
      op.peer_index = static_cast<std::uint16_t>(i);
      op.finalize_begin = finalize_begin;
      op.finalize_count = finalize_count;
      sched.ops.push_back(op);
    }
    sched.op_begin.push_back(static_cast<std::uint32_t>(sched.ops.size()));
  }

  if (faults != nullptr && faults->enabled()) {
    for (topo::Rank s = 0; s < nodes; ++s) {
      for (topo::Rank d = 0; d < nodes; ++d) {
        if (s == d) continue;
        // Data for (s, d) travels s -> relay (row message) -> d (column
        // message); either leg degenerates when the relay is an endpoint.
        const topo::Rank relay = rank_at(col_of(d), row_of(s));
        const bool ok = faults->node_alive(relay) && faults->node_alive(s) &&
                        faults->node_alive(d) && leg_ok(s, relay) &&
                        leg_ok(relay, d);
        if (!ok) sched.covered.set_unreachable(s, d);
      }
    }
  }
  sched.barriers.push_back(std::move(barrier));
  return sched;
}

VirtualMeshClient::VirtualMeshClient(const net::NetworkConfig& config,
                                     std::uint64_t msg_bytes, const VmeshTuning& tuning,
                                     DeliveryMatrix* matrix, const net::FaultPlan* faults)
    : config_(config), msg_bytes_(msg_bytes), tuning_(tuning) {
  matrix_ = matrix;
  faults_ = faults;
  const std::int32_t nodes = static_cast<std::int32_t>(config.shape.nodes());
  if (tuning_.pvx > 0 && tuning_.pvy > 0) {
    assert(static_cast<std::int64_t>(tuning_.pvx) * tuning_.pvy == nodes);
    pvx_ = tuning_.pvx;
    pvy_ = tuning_.pvy;
  } else {
    std::tie(pvx_, pvy_) = vmesh_factorize(nodes);
  }
  gamma_cycles_per_byte_ = tuning_.gamma_ns_per_byte * tuning_.clock_ghz;
  build_mapping(config_.shape);

  row_packets_ = rt::packetize(static_cast<std::uint64_t>(pvy_) * msg_bytes_,
                               rt::WireFormat::combining());
  col_packets_ = rt::packetize(static_cast<std::uint64_t>(pvx_) * msg_bytes_,
                               rt::WireFormat::combining());

  util::Xoshiro256StarStar master(config_.seed ^ 0x3e5affULL);
  nodes_.resize(static_cast<std::size_t>(nodes));
  for (std::int32_t n = 0; n < nodes; ++n) {
    NodeState& s = nodes_[static_cast<std::size_t>(n)];
    auto rng = master.fork();
    const int col = col_of(n);
    const int row = row_of(n);
    // Under a fault plan, peers we cannot reach are dropped from the send
    // schedule, and phase 2 only waits for row peers that can reach *us* —
    // a dead row peer must not gate the phase transition forever.
    std::uint64_t p1_senders = 0;
    s.row_peers.reserve(static_cast<std::size_t>(pvx_) - 1);
    for (int j = 0; j < pvx_; ++j) {
      if (j == col) continue;
      const topo::Rank peer = rank_at(j, row);
      if (leg_ok(n, peer)) s.row_peers.push_back(peer);
      if (leg_ok(peer, n)) ++p1_senders;
    }
    s.col_peers.reserve(static_cast<std::size_t>(pvy_) - 1);
    for (int k = 0; k < pvy_; ++k) {
      if (k == row) continue;
      const topo::Rank peer = rank_at(col, k);
      if (leg_ok(n, peer)) s.col_peers.push_back(peer);
    }
    rng.shuffle(s.row_peers);
    rng.shuffle(s.col_peers);

    s.p1_packets_left = p1_senders * row_packets_.size();
    s.p1_msg_left.assign(static_cast<std::size_t>(pvx_),
                         static_cast<std::uint32_t>(row_packets_.size()));
    s.p2_msg_left.assign(static_cast<std::size_t>(pvy_),
                         static_cast<std::uint32_t>(col_packets_.size()));
    // A single-row mesh has no phase-1 receives: phase 2 is ready at once
    // (and has no messages either when pvy == 1).
    if (s.p1_packets_left == 0) s.phase2_ready = true;
  }
}

void VirtualMeshClient::build_mapping(const topo::Shape& shape) {
  const topo::Torus torus{shape};
  const std::size_t nodes = static_cast<std::size_t>(torus.nodes());
  vrank_of_rank_.resize(nodes);
  rank_of_vrank_.resize(nodes);

  // Axis iteration order: first entry varies fastest in the virtual order.
  std::array<int, topo::kAxes> order{};
  switch (tuning_.mapping) {
    case MeshMapping::kXYZ: order = {topo::kX, topo::kY, topo::kZ}; break;
    case MeshMapping::kZYX: order = {topo::kZ, topo::kY, topo::kX}; break;
    case MeshMapping::kYXZ: order = {topo::kY, topo::kX, topo::kZ}; break;
  }

  int vrank = 0;
  topo::Coord c;
  for (int k = 0; k < shape.dim[static_cast<std::size_t>(order[2])]; ++k) {
    for (int j = 0; j < shape.dim[static_cast<std::size_t>(order[1])]; ++j) {
      for (int i = 0; i < shape.dim[static_cast<std::size_t>(order[0])]; ++i) {
        c[order[0]] = i;
        c[order[1]] = j;
        c[order[2]] = k;
        const topo::Rank r = torus.rank_of(c);
        vrank_of_rank_[static_cast<std::size_t>(r)] = vrank;
        rank_of_vrank_[static_cast<std::size_t>(vrank)] = r;
        ++vrank;
      }
    }
  }
}

bool VirtualMeshClient::leg_ok(topo::Rank from, topo::Rank to) const {
  if (faults_ == nullptr || !faults_->enabled() || from == to) return true;
  return faults_->pair_routable(from, to, net::RoutingMode::kAdaptive);
}

void VirtualMeshClient::mark_reachable(PairMask& mask) const {
  if (faults_ == nullptr || !faults_->enabled()) return;
  for (topo::Rank s = 0; s < mask.nodes(); ++s) {
    for (topo::Rank d = 0; d < mask.nodes(); ++d) {
      if (s == d) continue;
      // Data for (s, d) travels s -> relay (row message) -> d (column
      // message); either leg degenerates when the relay is an endpoint.
      const topo::Rank relay = rank_at(col_of(d), row_of(s));
      const bool ok = faults_->node_alive(relay) && faults_->node_alive(s) &&
                      faults_->node_alive(d) && leg_ok(s, relay) && leg_ok(relay, d);
      if (!ok) mask.set_unreachable(s, d);
    }
  }
}

bool VirtualMeshClient::next_packet(topo::Rank node, net::InjectDesc& out) {
  NodeState& s = nodes_[static_cast<std::size_t>(node)];
  if (s.done) return false;

  const bool in_phase2 = s.phase2_sending;
  const auto& peers = in_phase2 ? s.col_peers : s.row_peers;
  const auto& packets = in_phase2 ? col_packets_ : row_packets_;

  if (s.send_peer >= peers.size()) {
    if (!in_phase2) {
      // Finished phase-1 sends; phase 2 must also wait for receives + copy.
      s.phase2_sending = true;
      s.send_peer = 0;
      s.send_pkt = 0;
      if (!s.phase2_ready) return false;  // timer will wake us
      return next_packet(node, out);
    }
    s.done = true;
    return false;
  }
  if (in_phase2 && !s.phase2_ready) return false;

  const rt::PacketSpec& spec = packets[s.send_pkt];
  out.dst = peers[s.send_peer];
  out.tag = make_tag(in_phase2 ? 2 : 1, node);
  out.payload_bytes = spec.payload_bytes;
  out.wire_chunks = spec.wire_chunks;
  out.mode = net::RoutingMode::kAdaptive;
  out.fifo = static_cast<std::uint8_t>((s.send_peer + s.send_pkt) % config_.injection_fifos);

  double extra = 0.0;
  if (s.send_pkt == 0) {
    extra += tuning_.alpha_msg_cycles;
    if (!in_phase2) {
      // Send-side combining: gather the Pvy destination blocks into one
      // contiguous message.
      extra += gamma_cycles_per_byte_ * static_cast<double>(pvy_) *
               static_cast<double>(msg_bytes_);
    }
  }
  out.extra_cpu_cycles = static_cast<std::uint32_t>(std::lround(extra));

  if (++s.send_pkt >= packets.size()) {
    s.send_pkt = 0;
    ++s.send_peer;
  }
  return true;
}

void VirtualMeshClient::on_delivery(topo::Rank node, const net::Packet& packet) {
  NodeState& s = nodes_[static_cast<std::size_t>(node)];
  const int phase = static_cast<int>(packet.tag >> 62);
  const auto sender = static_cast<topo::Rank>(packet.tag & 0xffffffffU);
  note_final_delivery();

  if (phase == 1) {
    assert(row_of(sender) == row_of(node));
    if (matrix_ != nullptr) {
      auto& left = s.p1_msg_left[static_cast<std::size_t>(col_of(sender))];
      assert(left > 0);
      if (--left == 0) {
        // The block destined to this node itself arrived with this message.
        matrix_->record(sender, node, msg_bytes_);
      }
    }
    assert(s.p1_packets_left > 0);
    if (--s.p1_packets_left == 0) {
      // Re-sort the received blocks into column messages: a memory copy of
      // everything received, at gamma cost, before phase 2 may start.
      const double bytes = static_cast<double>(s.row_peers.size()) *
                           static_cast<double>(pvy_) * static_cast<double>(msg_bytes_);
      const auto delay =
          static_cast<net::Tick>(std::llround(gamma_cycles_per_byte_ * bytes));
      fabric_->schedule_timer(node, delay, /*cookie=*/1);
    }
    return;
  }

  assert(phase == 2);
  assert(col_of(sender) == col_of(node));
  if (matrix_ != nullptr) {
    auto& left = s.p2_msg_left[static_cast<std::size_t>(row_of(sender))];
    assert(left > 0);
    if (--left == 0) {
      // This combined message carried one block from every node of the
      // sender's row (including the sender itself) — under faults, only
      // from row members whose phase-1 message could reach the sender.
      const int sender_row = row_of(sender);
      for (int j = 0; j < pvx_; ++j) {
        const topo::Rank orig = rank_at(j, sender_row);
        if (orig != sender && !leg_ok(orig, sender)) continue;
        matrix_->record(orig, node, msg_bytes_);
      }
    }
  }
}

void VirtualMeshClient::on_timer(topo::Rank node, std::uint64_t cookie) {
  assert(cookie == 1);
  (void)cookie;
  NodeState& s = nodes_[static_cast<std::size_t>(node)];
  s.phase2_ready = true;
  fabric_->wake_cpu(node);
}

}  // namespace bgl::coll
