#include "src/coll/vmesh.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <tuple>

namespace bgl::coll {

std::vector<int> mesh_axis_order(MeshMapping mapping, int axes) {
  std::vector<int> order(static_cast<std::size_t>(axes));
  for (int a = 0; a < axes; ++a) order[static_cast<std::size_t>(a)] = a;
  switch (mapping) {
    case MeshMapping::kXYZ:
      break;  // natural order: first axis varies fastest
    case MeshMapping::kZYX:
      std::reverse(order.begin(), order.end());
      break;
    case MeshMapping::kYXZ:
      if (axes >= 2) std::swap(order[0], order[1]);
      break;
  }
  return order;
}

std::pair<int, int> vmesh_factorize(std::int32_t nodes) {
  const int root = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(nodes))));
  for (int pvx = root; pvx <= nodes; ++pvx) {
    if (nodes % pvx == 0) return {pvx, nodes / pvx};
  }
  return {nodes, 1};
}

CommSchedule build_vmesh_schedule(const net::NetworkConfig& config,
                                  std::uint64_t msg_bytes,
                                  const VmeshTuning& tuning,
                                  const net::FaultPlan* faults) {
  const auto nodes = static_cast<std::int32_t>(config.shape.nodes());
  int pvx = 1;
  int pvy = 1;
  if (tuning.pvx > 0 && tuning.pvy > 0) {
    assert(static_cast<std::int64_t>(tuning.pvx) * tuning.pvy == nodes);
    pvx = tuning.pvx;
    pvy = tuning.pvy;
  } else {
    std::tie(pvx, pvy) = vmesh_factorize(nodes);
  }
  const double gamma_cycles_per_byte = tuning.gamma_ns_per_byte * tuning.clock_ghz;

  CommSchedule sched;
  sched.shape = config.shape;
  sched.torus = topo::Torus{config.shape};
  sched.msg_bytes = msg_bytes;
  sched.injection_fifos = config.injection_fifos;
  sched.form = StreamForm::kExplicit;

  // Virtual rank order per `mapping` (first axis varies fastest): an
  // n-deep odometer over the axes in mapping order.
  std::vector<int> vrank_of_rank(static_cast<std::size_t>(nodes));
  std::vector<topo::Rank> rank_of_vrank(static_cast<std::size_t>(nodes));
  {
    const int axes = config.shape.axis_count();
    const std::vector<int> order = mesh_axis_order(tuning.mapping, axes);
    topo::Coord c;
    std::array<int, topo::kMaxAxes> idx{};
    for (int vrank = 0; vrank < nodes; ++vrank) {
      for (int a = 0; a < axes; ++a) {
        c[order[static_cast<std::size_t>(a)]] = idx[static_cast<std::size_t>(a)];
      }
      const topo::Rank r = sched.torus.rank_of(c);
      vrank_of_rank[static_cast<std::size_t>(r)] = vrank;
      rank_of_vrank[static_cast<std::size_t>(vrank)] = r;
      for (int a = 0; a < axes; ++a) {
        auto& digit = idx[static_cast<std::size_t>(a)];
        const auto extent = config.shape.dim[static_cast<std::size_t>(
            order[static_cast<std::size_t>(a)])];
        if (++digit < extent) break;
        digit = 0;
      }
    }
  }
  const auto col_of = [&](topo::Rank r) {
    return vrank_of_rank[static_cast<std::size_t>(r)] % pvx;
  };
  const auto row_of = [&](topo::Rank r) {
    return vrank_of_rank[static_cast<std::size_t>(r)] / pvx;
  };
  const auto rank_at = [&](int col, int row) {
    return rank_of_vrank[static_cast<std::size_t>(row * pvx + col)];
  };
  const auto leg_ok = [&](topo::Rank from, topo::Rank to) {
    if (faults == nullptr || !faults->enabled() || from == to) return true;
    return faults->pair_routable(from, to, net::RoutingMode::kAdaptive);
  };

  PhaseSpec row_phase;  // combined row messages
  row_phase.mode = net::RoutingMode::kAdaptive;
  row_phase.fifo_class = 0;
  row_phase.packets = rt::packetize(static_cast<std::uint64_t>(pvy) * msg_bytes,
                                    rt::WireFormat::combining());
  row_phase.first_packet_extra_cycles =
      tuning.alpha_msg_cycles + gamma_cycles_per_byte * static_cast<double>(pvy) *
                                    static_cast<double>(msg_bytes);
  PhaseSpec col_phase;  // combined column messages, after the re-sort barrier
  col_phase.gate = PhaseGate::kLocalBarrier;
  col_phase.mode = net::RoutingMode::kAdaptive;
  col_phase.fifo_class = 0;
  col_phase.packets = rt::packetize(static_cast<std::uint64_t>(pvx) * msg_bytes,
                                    rt::WireFormat::combining());
  col_phase.first_packet_extra_cycles = tuning.alpha_msg_cycles;
  const std::size_t row_message_packets = row_phase.packets.size();
  sched.phases.push_back(std::move(row_phase));
  sched.phases.push_back(std::move(col_phase));
  sched.fifo_classes.push_back(
      FifoClass{0, 0, FifoPolicy::kPositional, false});

  BarrierSpec barrier;
  barrier.phase = 1;
  barrier.expected.resize(static_cast<std::size_t>(nodes));
  barrier.compute_cycles.resize(static_cast<std::size_t>(nodes));
  sched.op_begin.reserve(static_cast<std::size_t>(nodes) + 1);
  sched.op_begin.push_back(0);
  if (faults != nullptr && faults->enabled()) sched.covered = PairMask(nodes);

  std::vector<topo::Rank> row_peers, col_peers;
  util::Xoshiro256StarStar master(config.seed ^ 0x3e5affULL);
  for (std::int32_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    const int col = col_of(n);
    const int row = row_of(n);
    // Under a fault plan, peers we cannot reach are dropped from the send
    // schedule, and phase 2 only waits for row peers that can reach *us*.
    std::uint64_t p1_senders = 0;
    row_peers.clear();
    for (int j = 0; j < pvx; ++j) {
      if (j == col) continue;
      const topo::Rank peer = rank_at(j, row);
      if (leg_ok(n, peer)) row_peers.push_back(peer);
      if (leg_ok(peer, n)) ++p1_senders;
    }
    col_peers.clear();
    for (int k = 0; k < pvy; ++k) {
      if (k == row) continue;
      const topo::Rank peer = rank_at(col, k);
      if (leg_ok(n, peer)) col_peers.push_back(peer);
    }
    rng.shuffle(row_peers);
    rng.shuffle(col_peers);

    barrier.expected[static_cast<std::size_t>(n)] =
        p1_senders * row_message_packets;
    const double resort_bytes = static_cast<double>(row_peers.size()) *
                                static_cast<double>(pvy) *
                                static_cast<double>(msg_bytes);
    barrier.compute_cycles[static_cast<std::size_t>(n)] =
        static_cast<net::Tick>(std::llround(gamma_cycles_per_byte * resort_bytes));

    // The blocks a phase-2 message from this node carries: one per row
    // member whose phase-1 message could reach us (plus our own).
    const auto finalize_begin =
        static_cast<std::int32_t>(sched.finalize_pool.size());
    for (int j = 0; j < pvx; ++j) {
      const topo::Rank orig = rank_at(j, row);
      if (orig != n && !leg_ok(orig, n)) continue;
      sched.finalize_pool.push_back(orig);
    }
    const auto finalize_count =
        static_cast<std::int32_t>(sched.finalize_pool.size()) - finalize_begin;

    for (std::size_t i = 0; i < row_peers.size(); ++i) {
      SendOp op;
      op.dst = row_peers[i];
      op.phase = 0;
      op.flags = SendOp::kFinalizeSelf;
      op.peer_index = static_cast<std::uint16_t>(i);
      sched.ops.push_back(op);
    }
    for (std::size_t i = 0; i < col_peers.size(); ++i) {
      SendOp op;
      op.dst = col_peers[i];
      op.phase = 1;
      op.peer_index = static_cast<std::uint16_t>(i);
      op.finalize_begin = finalize_begin;
      op.finalize_count = finalize_count;
      sched.ops.push_back(op);
    }
    sched.op_begin.push_back(static_cast<std::uint32_t>(sched.ops.size()));
  }

  if (faults != nullptr && faults->enabled()) {
    for (topo::Rank s = 0; s < nodes; ++s) {
      for (topo::Rank d = 0; d < nodes; ++d) {
        if (s == d) continue;
        // Data for (s, d) travels s -> relay (row message) -> d (column
        // message); either leg degenerates when the relay is an endpoint.
        const topo::Rank relay = rank_at(col_of(d), row_of(s));
        const bool ok = faults->node_alive(relay) && faults->node_alive(s) &&
                        faults->node_alive(d) && leg_ok(s, relay) &&
                        leg_ok(relay, d);
        if (!ok) sched.covered.set_unreachable(s, d);
      }
    }
  }
  sched.barriers.push_back(std::move(barrier));
  return sched;
}

}  // namespace bgl::coll
