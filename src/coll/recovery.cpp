#include "src/coll/recovery.hpp"

#include <algorithm>
#include <utility>

#include "src/coll/schedule_lint.hpp"

namespace bgl::coll {
namespace {

std::uint64_t residual_bytes(const std::vector<ResidualPair>& residual) {
  std::uint64_t total = 0;
  for (const ResidualPair& r : residual) total += r.bytes;
  return total;
}

void merge_faults(net::FaultStats& into, const net::FaultStats& from) {
  into.dropped_in_flight += from.dropped_in_flight;
  into.dropped_prob += from.dropped_prob;
  into.dropped_stuck += from.dropped_stuck;
  into.corrupted_payloads += from.corrupted_payloads;
  into.unroutable_at_injection += from.unroutable_at_injection;
  into.reroute_vetoes += from.reroute_vetoes;
  into.transient_strikes += from.transient_strikes;
  into.link_down_cycles += from.link_down_cycles;
  // stranded_relay_bytes is not additive: the caller re-derives it from the
  // epoch-0 custody ledger against the final delivery matrix.
}

void merge_reliability(rt::ReliabilityStats& into, const rt::ReliabilityStats& from) {
  into.data_sequenced += from.data_sequenced;
  into.retransmits += from.retransmits;
  into.gave_up += from.gave_up;
  into.acks_standalone += from.acks_standalone;
  into.acks_piggybacked += from.acks_piggybacked;
  into.duplicates_dropped += from.duplicates_dropped;
  into.corrupt_rejected += from.corrupt_rejected;
}

}  // namespace

LivenessView exchange_liveness(const net::NetworkConfig& net,
                               const net::FaultPlan& plan) {
  LivenessView view;
  const std::int32_t nodes = static_cast<std::int32_t>(net.shape.nodes());
  view.alive.resize(static_cast<std::size_t>(nodes), 0);
  for (topo::Rank n = 0; n < nodes; ++n) {
    if (plan.node_alive(n)) {
      view.alive[static_cast<std::size_t>(n)] = 1;
      ++view.survivors;
    }
  }
  // Agreement cost model: survivors allgather one liveness chunk around the
  // ring of each axis in turn (the torus-native analogue of the membership
  // exchange); each axis costs (extent - 1) store-and-forward hops.
  for (int a = 0; a < net.shape.axis_count(); ++a) {
    const int extent = net.shape.dim[static_cast<std::size_t>(a)];
    if (extent < 2) continue;
    view.agree_cycles += static_cast<Tick>(extent - 1) *
                         (net.hop_latency_cycles + net.chunk_cycles);
  }
  return view;
}

bool pair_recoverable(const net::FaultPlan& plan, topo::Rank src, topo::Rank dst) {
  return plan.node_alive(src) && plan.node_alive(dst) &&
         plan.pair_routable(src, dst, net::RoutingMode::kAdaptive);
}

std::vector<ResidualPair> compute_residual(const DeliveryMatrix& matrix,
                                           std::uint64_t msg_bytes,
                                           const net::FaultPlan& plan) {
  std::vector<ResidualPair> residual;
  const std::int32_t nodes = matrix.nodes();
  for (topo::Rank s = 0; s < nodes; ++s) {
    for (topo::Rank d = 0; d < nodes; ++d) {
      if (s == d) continue;
      const std::uint64_t have = matrix.bytes(s, d);
      if (have >= msg_bytes) continue;
      if (!pair_recoverable(plan, s, d)) continue;
      residual.push_back(ResidualPair{s, d, msg_bytes - have});
    }
  }
  return residual;
}

CommSchedule build_repair_schedule(const net::NetworkConfig& net,
                                   std::uint64_t msg_bytes,
                                   const std::vector<ResidualPair>& residual) {
  CommSchedule sched;
  sched.shape = net.shape;
  sched.torus = topo::Torus(net.shape);
  sched.msg_bytes = msg_bytes;
  sched.injection_fifos = net.injection_fifos;
  sched.form = StreamForm::kExplicit;

  PhaseSpec phase;
  phase.gate = PhaseGate::kPipelined;
  phase.mode = net::RoutingMode::kAdaptive;
  phase.fifo_class = 0;
  phase.packets = rt::packetize(msg_bytes, rt::WireFormat::direct());
  phase.override_format = rt::WireFormat::direct();
  sched.phases.push_back(std::move(phase));
  sched.fifo_classes.push_back(FifoClass{});  // all FIFOs, round robin

  const std::int32_t nodes = sched.nodes();
  // Coverage is the residual and nothing else: start all-unreachable and
  // re-mark exactly the pairs the repair carries.
  sched.covered = PairMask(nodes);
  for (topo::Rank s = 0; s < nodes; ++s) {
    for (topo::Rank d = 0; d < nodes; ++d) {
      if (s != d) sched.covered.set_unreachable(s, d);
    }
  }

  // One direct send per residual pair, grouped by source (compute_residual
  // emits src-major order). A full-message residual uses the phase shape;
  // a partial one overrides the payload to exactly the missing bytes.
  std::vector<std::vector<const ResidualPair*>> by_src(
      static_cast<std::size_t>(nodes));
  for (const ResidualPair& r : residual) {
    by_src[static_cast<std::size_t>(r.src)].push_back(&r);
    sched.covered.set_reachable(r.src, r.dst);
  }
  sched.op_begin.push_back(0);
  for (topo::Rank n = 0; n < nodes; ++n) {
    std::uint16_t peer_index = 0;
    for (const ResidualPair* r : by_src[static_cast<std::size_t>(n)]) {
      SendOp op;
      op.dst = r->dst;
      op.phase = 0;
      op.flags = SendOp::kFinalizeSelf;
      op.peer_index = peer_index++;
      if (r->bytes < msg_bytes) {
        op.payload_bytes = static_cast<std::uint32_t>(r->bytes);
      }
      sched.ops.push_back(op);
    }
    sched.op_begin.push_back(static_cast<std::uint32_t>(sched.ops.size()));
  }
  return sched;
}

bool recover_epochs(RunResult& result, const AlltoallOptions& options,
                    const net::NetworkConfig& net, const net::FaultPlan& plan,
                    DeliveryMatrix& matrix,
                    const std::vector<StrandedRelay>& stranded) {
  const std::int32_t nodes = matrix.nodes();
  const std::uint64_t msg = options.msg_bytes;

  // Epoch transition, step 1: survivors discard partial flows no repair can
  // complete (an endpoint died or the pair is severed) so the exactly-once
  // ledger the repair epochs extend starts consistent.
  std::uint64_t discarded = 0;
  for (topo::Rank s = 0; s < nodes; ++s) {
    for (topo::Rank d = 0; d < nodes; ++d) {
      if (s == d) continue;
      const std::uint64_t have = matrix.bytes(s, d);
      if (have != 0 && have != msg && !pair_recoverable(plan, s, d)) {
        discarded += matrix.discard(s, d);
      }
    }
  }

  // Step 2: the residual the repair epochs owe.
  std::vector<ResidualPair> residual = compute_residual(matrix, msg, plan);
  if (residual.empty() && discarded == 0) return false;

  const std::uint64_t owed = residual_bytes(residual);
  result.epochs.residual_pairs = residual.size();

  const LivenessView view = exchange_liveness(net, plan);
  // Survivors now plan openly: the strike has landed, so repair epochs run
  // with the same fault plan applied from tick 0 (the plan's dead sets are
  // independent of fail_at — see FaultPlan).
  net::NetworkConfig repair_net = net;
  repair_net.faults.fail_at = 0;

  Tick replan_cycles = 0;
  constexpr int kMaxReplans = 3;
  while (!residual.empty() && result.epochs.replans < kMaxReplans) {
    replan_cycles += view.agree_cycles;
    CommSchedule repair = build_repair_schedule(repair_net, msg, residual);
    const net::FaultPlan repair_plan(repair_net, repair_net.shape);
    if (!schedule_lint(repair, &repair_plan).ok()) break;

    AlltoallOptions ropts = options;
    ropts.net = repair_net;
    ropts.recover = false;       // this loop is the epoch driver
    ropts.deliveries = &matrix;  // shared exactly-once ledger
    ropts.verify = false;
    ropts.deadline = 0;
    const std::uint64_t before = residual_bytes(residual);
    RunResult repaired = run_schedule(std::move(repair), ropts, "repair");

    ++result.epochs.replans;
    replan_cycles += repaired.elapsed_cycles;
    result.events += repaired.events;
    result.packets_delivered += repaired.packets_delivered;
    result.payload_bytes += repaired.payload_bytes;
    result.abandoned_pairs += repaired.abandoned_pairs;
    merge_faults(result.faults, repaired.faults);
    merge_reliability(result.reliability, repaired.reliability);
    result.timed_out = result.timed_out || repaired.timed_out;
    if (!repaired.drained || repaired.timed_out) {
      result.drained = false;
      break;
    }
    residual = compute_residual(matrix, msg, plan);
    if (residual_bytes(residual) >= before) break;  // no progress: stop
  }

  result.epochs.epochs = 1 + result.epochs.replans;
  result.epochs.replan_cycles = replan_cycles;
  result.epochs.recovered_bytes = owed - residual_bytes(residual);
  result.epochs.corruption_retransmits = result.reliability.corrupt_rejected;

  // Time and throughput reflect the whole epoch sequence.
  result.elapsed_cycles += replan_cycles;
  result.elapsed_us = static_cast<double>(result.elapsed_cycles) / 700.0;
  const double peak = peak_cycles_for(net.shape, msg, net.chunk_cycles);
  result.percent_peak =
      result.elapsed_cycles > 0
          ? 100.0 * peak / static_cast<double>(result.elapsed_cycles)
          : 0.0;
  const double payload_per_node =
      static_cast<double>(nodes - 1) * static_cast<double>(msg);
  result.per_node_mbps =
      result.elapsed_us > 0 ? payload_per_node / result.elapsed_us : 0.0;

  // Post-recovery reachability is the survivors' view: a pair counts
  // reachable when a repair can still serve it — or when it was already
  // delivered in full before the strike took an endpoint.
  PairMask mask(nodes);
  for (topo::Rank s = 0; s < nodes; ++s) {
    for (topo::Rank d = 0; d < nodes; ++d) {
      if (s != d && !pair_recoverable(plan, s, d) && matrix.bytes(s, d) != msg) {
        mask.set_unreachable(s, d);
      }
    }
  }
  result.reachable = std::move(mask);
  result.unreachable_pairs = result.reachable.unreachable_pairs();
  result.pairs_complete = matrix.complete_pairs(msg);
  result.reachable_complete = matrix.complete_reachable(msg, result.reachable);

  // Custody the repairs failed to replace is all that stays stranded; a
  // successful recovery drains this to zero.
  std::uint64_t still_stranded = 0;
  for (const StrandedRelay& r : stranded) {
    if (matrix.bytes(r.orig_src, r.final_dst) != msg) {
      still_stranded += r.payload_bytes;
    }
  }
  result.faults.stranded_relay_bytes = still_stranded;
  return true;
}

}  // namespace bgl::coll
