#include "src/coll/alltoall.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

#include "src/coll/direct.hpp"
#include "src/coll/selector.hpp"
#include "src/coll/tps.hpp"
#include "src/coll/vmesh.hpp"
#include "src/model/peak.hpp"

namespace bgl::coll {

std::string strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kMpi: return "MPI";
    case StrategyKind::kAdaptiveRandom: return "AR";
    case StrategyKind::kDeterministic: return "DR";
    case StrategyKind::kThrottled: return "AR+throttle";
    case StrategyKind::kTwoPhase: return "TPS";
    case StrategyKind::kVirtualMesh: return "VMesh";
    case StrategyKind::kBest: return "best";
  }
  return "?";
}

double peak_cycles_for(const topo::Shape& shape, std::uint64_t msg_bytes,
                       std::uint32_t chunk_cycles) {
  const double chunks_per_pair = static_cast<double>(
      rt::wire_chunks_total(msg_bytes, rt::WireFormat::direct()));
  return model::aa_peak_cycles(shape, chunks_per_pair, chunk_cycles);
}

RunResult run_alltoall(StrategyKind kind, const AlltoallOptions& options) {
  if (kind == StrategyKind::kBest) {
    kind = select_strategy(options.net.shape, options.msg_bytes).kind;
  }
  if (options.net.shape.nodes() < 2) {
    throw std::invalid_argument("all-to-all needs at least 2 nodes");
  }

  std::unique_ptr<StrategyClient> client;
  switch (kind) {
    case StrategyKind::kMpi: {
      DirectTuning t = DirectTuning::mpi();
      t.burst = options.burst > 0 ? options.burst : t.burst;
      t.order = options.order;
      client = std::make_unique<DirectClient>(options.net, options.msg_bytes, t,
                                              options.deliveries);
      break;
    }
    case StrategyKind::kAdaptiveRandom: {
      DirectTuning t = DirectTuning::ar();
      t.burst = options.burst;
      t.order = options.order;
      client = std::make_unique<DirectClient>(options.net, options.msg_bytes, t,
                                              options.deliveries);
      break;
    }
    case StrategyKind::kDeterministic: {
      DirectTuning t = DirectTuning::dr();
      t.burst = options.burst;
      t.order = options.order;
      client = std::make_unique<DirectClient>(options.net, options.msg_bytes, t,
                                              options.deliveries);
      break;
    }
    case StrategyKind::kThrottled: {
      DirectTuning t = DirectTuning::throttled(options.throttle);
      t.burst = options.burst;
      t.order = options.order;
      client = std::make_unique<DirectClient>(options.net, options.msg_bytes, t,
                                              options.deliveries);
      break;
    }
    case StrategyKind::kTwoPhase: {
      TpsTuning t;
      t.linear_axis = options.linear_axis;
      t.forward_cpu_cycles = options.forward_cpu_cycles;
      t.reserved_fifos = options.reserved_fifos;
      t.credit_window = options.credit_window;
      t.credit_batch = options.credit_batch;
      client = std::make_unique<TwoPhaseClient>(options.net, options.msg_bytes, t,
                                                options.deliveries);
      break;
    }
    case StrategyKind::kVirtualMesh: {
      VmeshTuning t;
      t.pvx = options.pvx;
      t.pvy = options.pvy;
      t.mapping = static_cast<MeshMapping>(options.vmesh_mapping);
      client = std::make_unique<VirtualMeshClient>(options.net, options.msg_bytes, t,
                                                   options.deliveries);
      break;
    }
    case StrategyKind::kBest:
      assert(false);
      break;
  }

  net::Fabric fabric(options.net, *client);
  client->bind(fabric);

  const double peak = peak_cycles_for(options.net.shape, options.msg_bytes,
                                      options.net.chunk_cycles);
  // Generous watchdog: a healthy run finishes within a few peak times plus
  // the CPU-bound startup term; hitting this means a stall (drained=false).
  const Tick deadline = options.deadline != 0
                            ? options.deadline
                            : static_cast<Tick>(peak * 200.0) + (Tick{4} << 32);

  RunResult result;
  result.drained = fabric.run(deadline);
  result.strategy = strategy_name(kind);
  result.shape = options.net.shape;
  result.msg_bytes = options.msg_bytes;
  result.elapsed_cycles = client->completion_cycles();
  result.elapsed_us = static_cast<double>(result.elapsed_cycles) / 700.0;
  result.percent_peak = result.elapsed_cycles > 0
                            ? 100.0 * peak / static_cast<double>(result.elapsed_cycles)
                            : 0.0;
  const double payload_per_node =
      static_cast<double>(options.net.shape.nodes() - 1) *
      static_cast<double>(options.msg_bytes);
  result.per_node_mbps = result.elapsed_us > 0
                             ? payload_per_node / result.elapsed_us  // B/us == MB/s
                             : 0.0;
  result.packets_delivered = fabric.stats().packets_delivered;
  result.payload_bytes = fabric.stats().payload_bytes_delivered;
  result.events = fabric.events_processed();
  if (options.net.collect_link_stats) {
    result.links = trace::summarize_links(fabric, result.elapsed_cycles);
  }
  return result;
}

}  // namespace bgl::coll
