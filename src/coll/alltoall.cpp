#include "src/coll/alltoall.hpp"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>

#include "src/coll/direct.hpp"
#include "src/coll/recovery.hpp"
#include "src/coll/registry.hpp"
#include "src/coll/schedule.hpp"
#include "src/coll/selector.hpp"
#include "src/coll/tps.hpp"
#include "src/coll/vmesh.hpp"
#include "src/model/peak.hpp"

namespace bgl::coll {

std::string strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kMpi: return "MPI";
    case StrategyKind::kAdaptiveRandom: return "AR";
    case StrategyKind::kDeterministic: return "DR";
    case StrategyKind::kThrottled: return "AR+throttle";
    case StrategyKind::kTwoPhase: return "TPS";
    case StrategyKind::kVirtualMesh: return "VMesh";
    case StrategyKind::kBest: return "best";
  }
  return "?";
}

double peak_cycles_for(const topo::Shape& shape, std::uint64_t msg_bytes,
                       std::uint32_t chunk_cycles) {
  const double chunks_per_pair = static_cast<double>(
      rt::wire_chunks_total(msg_bytes, rt::WireFormat::direct()));
  return model::aa_peak_cycles(shape, chunks_per_pair, chunk_cycles);
}

namespace {

net::NetworkConfig effective_net(const AlltoallOptions& options) {
  if (options.net.shape.nodes() < 2) {
    throw std::invalid_argument("all-to-all needs at least 2 nodes");
  }
  net::NetworkConfig net = options.net;
  // BGL_CHECK=1 turns on the fabric invariant checks (property tests and the
  // sanitizer CI set it; it is too slow for sweeps to default on).
  if (const char* env = std::getenv("BGL_CHECK");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    net.debug_checks = true;
  }
  return net;
}

// Shared back half of run_alltoall/run_schedule: the slab-parallel
// eligibility gate, the reliability wrapper, the fabric run and the
// RunResult bookkeeping.
RunResult finish_run(net::NetworkConfig net, StrategyClient& client,
                     const AlltoallOptions& options, const net::FaultPlan& plan,
                     const net::FaultPlan* faults, DeliveryMatrix* matrix,
                     const std::string& label) {
  // Eligibility gate for the slab-parallel core (see DESIGN.md "Threading
  // model"). Fault runs are parallel-eligible now that every stochastic
  // fault decision is counter-based and fault state is slab-owned; what
  // still needs one global event order is the legacy (non-executor) client
  // path and schedules with cross-node dependency gates.
  auto coll_fallback = net::ThreadFallbackReason::kNone;
  if (net.sim_threads > 1) {
    const auto* executor = dynamic_cast<const ScheduleExecutor*>(&client);
    if (executor == nullptr) {
      coll_fallback = net::ThreadFallbackReason::kLegacyClient;
    } else if (!executor->schedule().extra_deps.empty()) {
      coll_fallback = net::ThreadFallbackReason::kCrossNodeDeps;
    }
    if (coll_fallback != net::ThreadFallbackReason::kNone) net.sim_threads = 1;
  }

  // Under faults the strategy is wrapped in the end-to-end reliability
  // layer; the fabric then pulls from (and delivers to) the wrapper.
  std::optional<rt::ReliableClient> reliable;
  if (faults != nullptr) reliable.emplace(net, client);
  net::Client& top = reliable.has_value() ? static_cast<net::Client&>(*reliable)
                                          : static_cast<net::Client&>(client);

  net::Fabric fabric(net, top);
  client.bind(fabric);
  if (reliable.has_value()) reliable->attach(fabric);
  if (options.hop_observer) fabric.set_hop_observer(options.hop_observer);

  const double peak = peak_cycles_for(net.shape, options.msg_bytes, net.chunk_cycles);
  // Generous watchdog: a healthy run finishes within a few peak times plus
  // the CPU-bound startup term; hitting this means a stall (drained=false).
  const Tick deadline = options.deadline != 0
                            ? options.deadline
                            : static_cast<Tick>(peak * 200.0) + (Tick{4} << 32);

  if (options.wall_timeout_ms > 0.0) {
    const auto kill_at = std::chrono::steady_clock::now() +
                         std::chrono::duration<double, std::milli>(options.wall_timeout_ms);
    fabric.set_abort_check(
        [kill_at] { return std::chrono::steady_clock::now() >= kill_at; });
  }

  RunResult result;
  result.drained = fabric.run(deadline);
  result.timed_out = fabric.aborted();
  result.strategy = label;
  result.shape = net.shape;
  result.msg_bytes = options.msg_bytes;
  result.elapsed_cycles = client.completion_cycles();
  result.elapsed_us = static_cast<double>(result.elapsed_cycles) / 700.0;
  result.percent_peak = result.elapsed_cycles > 0
                            ? 100.0 * peak / static_cast<double>(result.elapsed_cycles)
                            : 0.0;
  const double payload_per_node =
      static_cast<double>(net.shape.nodes() - 1) * static_cast<double>(options.msg_bytes);
  result.per_node_mbps = result.elapsed_us > 0
                             ? payload_per_node / result.elapsed_us  // B/us == MB/s
                             : 0.0;
  result.packets_delivered = fabric.stats().packets_delivered;
  result.payload_bytes = fabric.stats().payload_bytes_delivered;
  result.events = fabric.events_processed();
  result.sim_threads = fabric.effective_sim_threads();
  result.sim_threads_reason = coll_fallback != net::ThreadFallbackReason::kNone
                                  ? coll_fallback
                                  : fabric.sim_threads_reason();
  if (net.collect_link_stats) {
    result.links = trace::summarize_links(fabric, result.elapsed_cycles);
  }
  if (faults != nullptr) {
    result.faults = fabric.fault_stats();
    // Relay payload stranded in the custody of fail-stopped nodes: the part
    // of the delivery shortfall the strike itself explains.
    result.faults.stranded_relay_bytes = client.stranded_relay_bytes(plan);
    result.reachable = PairMask(static_cast<std::int32_t>(net.shape.nodes()));
    client.mark_reachable(result.reachable);
    result.unreachable_pairs = result.reachable.unreachable_pairs();
    if (reliable.has_value()) {
      result.reliability = reliable->stats();
      result.abandoned_pairs = reliable->abandoned_pairs().size();
      result.epochs.corruption_retransmits = result.reliability.corrupt_rejected;
    }
  }
  if (matrix != nullptr) {
    result.verified = true;
    result.pairs_complete = matrix->complete_pairs(options.msg_bytes);
    result.reachable_complete =
        matrix->complete_reachable(options.msg_bytes, result.reachable);
  }
  return result;
}

// Whether a run's shortfall is eligible for epoch recovery: a delayed
// permanent strike (dead links or nodes landing mid-run) with recovery
// enabled. Drop/corruption-only fault configs are repaired inline by the
// reliability layer and never re-plan.
bool recovery_armed(const AlltoallOptions& options, const net::NetworkConfig& net,
                    const net::FaultPlan& plan, bool blind_strike) {
  return options.recover && blind_strike &&
         (plan.dead_link_count() > 0 || plan.dead_node_count() > 0);
}

// Epoch recovery after the struck epoch-0 run, shared by both entry points.
void maybe_recover(RunResult& result, StrategyClient& client,
                   const AlltoallOptions& options, const net::NetworkConfig& net,
                   const net::FaultPlan& plan, DeliveryMatrix* matrix) {
  // A wedged or killed epoch 0 never recovers: its ledger is mid-flight
  // garbage and re-planning from it would double-deliver.
  if (matrix == nullptr || !result.drained || result.timed_out) return;
  std::vector<StrandedRelay> stranded;
  client.collect_stranded(plan, stranded);
  recover_epochs(result, options, net, plan, *matrix, stranded);
}

}  // namespace

RunResult run_alltoall(StrategyKind kind, const AlltoallOptions& options) {
  net::NetworkConfig net = effective_net(options);

  // One plan, shared by planning (here), the Fabric (which expands its own
  // identical copy — the expansion is a pure function of config and shape)
  // and reachability verification.
  const net::FaultPlan plan(net, net.shape);
  const net::FaultPlan* faults = plan.enabled() ? &plan : nullptr;

  // A delayed strike (fail_at > 0) is invisible to planning: schedules and
  // clients are built as if the network were healthy, because at plan time it
  // *is* — nobody may steer around faults that have not happened. The fabric
  // flips perm_faults_struck() when the strike lands; the resulting shortfall
  // is reported as reachable_complete == false plus the stranded relay-byte
  // count, never silently planned away.
  const bool blind_strike = faults != nullptr && net.faults.fail_at > 0;
  const net::FaultPlan* planning_faults = blind_strike ? nullptr : faults;

  if (kind == StrategyKind::kBest) {
    kind = select_strategy(net.shape, options.msg_bytes, planning_faults).kind;
  }

  // Epoch recovery needs the per-pair ledger to compute its residual.
  const bool recover = recovery_armed(options, net, plan, blind_strike);

  // Delivery recording: the caller's matrix, or an internal one when only
  // the RunResult summary is wanted (or recovery may trigger).
  std::optional<DeliveryMatrix> local_matrix;
  DeliveryMatrix* matrix = options.deliveries;
  if (matrix == nullptr && (options.verify || recover)) {
    local_matrix.emplace(static_cast<std::int32_t>(net.shape.nodes()));
    matrix = &*local_matrix;
  }

  // Build the strategy's declarative schedule and interpret it with the one
  // executor (the equivalence suite pins its behavior to stored goldens).
  ScheduleExecutor client(
      net, build_schedule(kind, net, options.msg_bytes, options, planning_faults),
      matrix, planning_faults);

  RunResult result =
      finish_run(net, client, options, plan, faults, matrix, strategy_name(kind));
  if (recover) maybe_recover(result, client, options, net, plan, matrix);
  return result;
}

RunResult run_schedule(CommSchedule schedule, const AlltoallOptions& options,
                       const std::string& label) {
  net::NetworkConfig net = effective_net(options);
  if (schedule.shape != net.shape) {
    throw std::invalid_argument(
        "run_schedule: schedule shape " + schedule.shape.to_string() +
        " does not match network " + net.shape.to_string());
  }

  const net::FaultPlan plan(net, net.shape);
  const net::FaultPlan* faults = plan.enabled() ? &plan : nullptr;
  // As in run_alltoall: a delayed strike is invisible at plan time, so the
  // executor must not get to steer around faults that have not happened yet.
  const bool blind_strike = faults != nullptr && net.faults.fail_at > 0;
  const net::FaultPlan* planning_faults = blind_strike ? nullptr : faults;

  const bool recover = recovery_armed(options, net, plan, blind_strike);

  std::optional<DeliveryMatrix> local_matrix;
  DeliveryMatrix* matrix = options.deliveries;
  if (matrix == nullptr && (options.verify || recover)) {
    local_matrix.emplace(static_cast<std::int32_t>(net.shape.nodes()));
    matrix = &*local_matrix;
  }

  ScheduleExecutor client(net, std::move(schedule), matrix, planning_faults);
  RunResult result = finish_run(net, client, options, plan, faults, matrix, label);
  if (recover) maybe_recover(result, client, options, net, plan, matrix);
  return result;
}

}  // namespace bgl::coll
