#include "src/coll/tps.hpp"

#include <algorithm>
#include <cassert>

namespace bgl::coll {

int choose_linear_axis(const topo::Shape& shape) {
  const int axes = shape.axis_count();
  // Below three dimensions there is no "plane left behind"; the bottleneck
  // (longest) axis is the only sensible linear phase.
  if (axes < 3) return shape.longest_axis();
  // Symmetric candidates: removing this axis leaves all remaining extents
  // mutually equal (the paper's "symmetric plane" generalized to n-1 axes).
  std::vector<int> candidates;
  for (int a = 0; a < axes; ++a) {
    bool symmetric = true;
    int other = -1;
    for (int b = 0; b < axes; ++b) {
      if (b == a) continue;
      const int d = shape.dim[static_cast<std::size_t>(b)];
      if (other < 0) {
        other = d;
      } else if (d != other) {
        symmetric = false;
        break;
      }
    }
    if (symmetric && shape.dim[static_cast<std::size_t>(a)] > 1) {
      candidates.push_back(a);
    }
  }
  // Hypercube: every axis is equivalent; pick the last (Z for 3-D cubes,
  // matching the paper's listing of Z for 8^3).
  if (static_cast<int>(candidates.size()) == axes) return axes - 1;
  if (candidates.size() == 1) return candidates.front();
  // Otherwise the longest dimension (the bottleneck) is the linear phase.
  return shape.longest_axis();
}

CommSchedule build_tps_schedule(const net::NetworkConfig& config,
                                std::uint64_t msg_bytes, const TpsTuning& tuning) {
  CommSchedule sched;
  sched.shape = config.shape;
  sched.torus = topo::Torus{config.shape};
  sched.msg_bytes = msg_bytes;
  sched.injection_fifos = config.injection_fifos;
  sched.form = StreamForm::kOrdered;

  const int linear_axis =
      tuning.linear_axis >= 0 ? tuning.linear_axis : choose_linear_axis(config.shape);
  if (tuning.reserved_fifos) assert(config.injection_fifos >= 2);

  PhaseSpec linear;  // phase-1 legs toward the intermediate
  linear.mode = net::RoutingMode::kAdaptive;
  linear.fifo_class = 0;
  linear.packets = rt::packetize(msg_bytes, rt::WireFormat::direct());
  linear.first_packet_extra_cycles = tuning.alpha_cycles;
  PhaseSpec planar = linear;  // phase-2 legs toward the final destination
  planar.fifo_class = 1;
  planar.forward_cpu_cycles = tuning.forward_cpu_cycles;

  sched.stream.rounds = static_cast<std::uint32_t>(linear.packets.size());
  sched.stream.burst = 1;
  sched.stream.relay = RelayRule::kLinearAxis;
  sched.stream.relay_axis = linear_axis;
  sched.stream.relayed_phase = 0;
  sched.stream.final_phase = 1;
  sched.phases.push_back(std::move(linear));
  sched.phases.push_back(std::move(planar));

  // Even without reserved groups the two phases keep separate rotation
  // counters over the full FIFO range, matching the legacy client.
  FifoClass group1, group2;
  if (tuning.reserved_fifos && config.injection_fifos >= 2) {
    const int half = config.injection_fifos / 2;
    group1 = FifoClass{0, half, FifoPolicy::kRoundRobin, true};
    group2 = FifoClass{half, config.injection_fifos - half,
                       FifoPolicy::kRoundRobin, true};
  }
  sched.fifo_classes.push_back(group1);
  sched.fifo_classes.push_back(group2);

  if (tuning.credit_window > 0) {
    // W >= B guarantees sources drain even though up to B-1 forwards stay
    // permanently un-credited (see tps.hpp).
    sched.credits.window = std::max(tuning.credit_window, tuning.credit_batch);
    sched.credits.batch = tuning.credit_batch;
    sched.credits.credit_cpu_cycles = tuning.credit_cpu_cycles;
  }

  const auto nodes = static_cast<std::size_t>(config.shape.nodes());
  util::Xoshiro256StarStar master(config.seed ^ 0x79511ULL);
  sched.orders.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    sched.orders.emplace_back(static_cast<topo::Rank>(n),
                              static_cast<std::int32_t>(nodes), rng);
  }
  return sched;
}

}  // namespace bgl::coll
