#include "src/coll/tps.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bgl::coll {

int choose_linear_axis(const topo::Shape& shape) {
  // Planar-symmetric candidates: removing this axis leaves two equal extents.
  std::vector<int> candidates;
  for (int a = 0; a < topo::kAxes; ++a) {
    int other[2];
    int k = 0;
    for (int b = 0; b < topo::kAxes; ++b) {
      if (b != a) other[k++] = shape.dim[static_cast<std::size_t>(b)];
    }
    if (other[0] == other[1] && shape.dim[static_cast<std::size_t>(a)] > 1) {
      candidates.push_back(a);
    }
  }
  if (candidates.size() == 3) return topo::kZ;  // cube: all equivalent
  if (candidates.size() == 1) return candidates.front();
  // Otherwise the longest dimension (the bottleneck) is the linear phase.
  return shape.longest_axis();
}

CommSchedule build_tps_schedule(const net::NetworkConfig& config,
                                std::uint64_t msg_bytes, const TpsTuning& tuning) {
  CommSchedule sched;
  sched.shape = config.shape;
  sched.torus = topo::Torus{config.shape};
  sched.msg_bytes = msg_bytes;
  sched.injection_fifos = config.injection_fifos;
  sched.form = StreamForm::kOrdered;

  const int linear_axis =
      tuning.linear_axis >= 0 ? tuning.linear_axis : choose_linear_axis(config.shape);
  if (tuning.reserved_fifos) assert(config.injection_fifos >= 2);

  PhaseSpec linear;  // phase-1 legs toward the intermediate
  linear.mode = net::RoutingMode::kAdaptive;
  linear.fifo_class = 0;
  linear.packets = rt::packetize(msg_bytes, rt::WireFormat::direct());
  linear.first_packet_extra_cycles = tuning.alpha_cycles;
  PhaseSpec planar = linear;  // phase-2 legs toward the final destination
  planar.fifo_class = 1;
  planar.forward_cpu_cycles = tuning.forward_cpu_cycles;

  sched.stream.rounds = static_cast<std::uint32_t>(linear.packets.size());
  sched.stream.burst = 1;
  sched.stream.relay = RelayRule::kLinearAxis;
  sched.stream.relay_axis = linear_axis;
  sched.stream.relayed_phase = 0;
  sched.stream.final_phase = 1;
  sched.phases.push_back(std::move(linear));
  sched.phases.push_back(std::move(planar));

  // Even without reserved groups the two phases keep separate rotation
  // counters over the full FIFO range, matching the legacy client.
  FifoClass group1, group2;
  if (tuning.reserved_fifos && config.injection_fifos >= 2) {
    const int half = config.injection_fifos / 2;
    group1 = FifoClass{0, half, FifoPolicy::kRoundRobin, true};
    group2 = FifoClass{half, config.injection_fifos - half,
                       FifoPolicy::kRoundRobin, true};
  }
  sched.fifo_classes.push_back(group1);
  sched.fifo_classes.push_back(group2);

  if (tuning.credit_window > 0) {
    // W >= B guarantees sources drain even though up to B-1 forwards stay
    // permanently un-credited (see tps.hpp).
    sched.credits.window = std::max(tuning.credit_window, tuning.credit_batch);
    sched.credits.batch = tuning.credit_batch;
    sched.credits.credit_cpu_cycles = tuning.credit_cpu_cycles;
  }

  const auto nodes = static_cast<std::size_t>(config.shape.nodes());
  util::Xoshiro256StarStar master(config.seed ^ 0x79511ULL);
  sched.orders.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    sched.orders.emplace_back(static_cast<topo::Rank>(n),
                              static_cast<std::int32_t>(nodes), rng);
  }
  return sched;
}

std::uint64_t TwoPhaseClient::make_tag(Kind kind, topo::Rank orig_src, topo::Rank final_dst,
                                       std::uint32_t aux) {
  return (static_cast<std::uint64_t>(kind) << 62) |
         (static_cast<std::uint64_t>(aux & 0x3fffU) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(orig_src) & 0xffffffU) << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(final_dst) & 0xffffffU));
}

TwoPhaseClient::TwoPhaseClient(const net::NetworkConfig& config, std::uint64_t msg_bytes,
                               const TpsTuning& tuning, DeliveryMatrix* matrix,
                               const net::FaultPlan* faults)
    : config_(config),
      torus_(config.shape),
      msg_bytes_(msg_bytes),
      tuning_(tuning),
      packets_(rt::packetize(msg_bytes, rt::WireFormat::direct())) {
  matrix_ = matrix;
  faults_ = faults;
  linear_axis_ = tuning_.linear_axis >= 0 ? tuning_.linear_axis : choose_linear_axis(config.shape);
  linear_extent_ = config_.shape.dim[static_cast<std::size_t>(linear_axis_)];
  if (tuning_.reserved_fifos) assert(config_.injection_fifos >= 2);
  if (tuning_.credit_window > 0) {
    // W >= B guarantees sources drain even though up to B-1 forwards stay
    // permanently un-credited (see tps.hpp).
    tuning_.credit_window = std::max(tuning_.credit_window, tuning_.credit_batch);
  }

  const auto nodes = static_cast<std::size_t>(config_.shape.nodes());
  util::Xoshiro256StarStar master(config_.seed ^ 0x79511ULL);
  nodes_.resize(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    nodes_[n].order =
        DestOrder(static_cast<topo::Rank>(n), static_cast<std::int32_t>(nodes), rng);
    if (tuning_.credit_window > 0) {
      nodes_[n].outstanding.assign(static_cast<std::size_t>(linear_extent_), 0);
      nodes_[n].to_credit.assign(static_cast<std::size_t>(linear_extent_), 0);
    }
  }
}

topo::Rank TwoPhaseClient::intermediate_for(topo::Rank src, topo::Rank dst) const {
  topo::Coord c = torus_.coord_of(src);
  c[linear_axis_] = torus_.coord_of(dst)[linear_axis_];
  return torus_.rank_of(c);
}

bool TwoPhaseClient::leg_ok(topo::Rank from, topo::Rank to) const {
  if (from == to) return true;
  return faults_->pair_routable(from, to, net::RoutingMode::kAdaptive);
}

topo::Rank TwoPhaseClient::pick_intermediate(topo::Rank src, topo::Rank dst) const {
  const topo::Rank canon = intermediate_for(src, dst);
  if (faults_ == nullptr || !faults_->enabled()) return canon;
  if (faults_->node_alive(canon) && leg_ok(src, canon) && leg_ok(canon, dst)) {
    return canon;
  }
  // Degrade: any live node on src's linear-axis line can relay (phase 2 then
  // also corrects the linear coordinate — adaptive routing handles that).
  topo::Coord c = torus_.coord_of(src);
  for (int k = 0; k < linear_extent_; ++k) {
    c[linear_axis_] = k;
    const topo::Rank inter = torus_.rank_of(c);
    if (inter == canon) continue;
    if (faults_->node_alive(inter) && leg_ok(src, inter) && leg_ok(inter, dst)) {
      return inter;
    }
  }
  return -1;
}

void TwoPhaseClient::mark_reachable(PairMask& mask) const {
  if (faults_ == nullptr || !faults_->enabled()) return;
  for (topo::Rank s = 0; s < mask.nodes(); ++s) {
    for (topo::Rank d = 0; d < mask.nodes(); ++d) {
      if (s != d && pick_intermediate(s, d) < 0) mask.set_unreachable(s, d);
    }
  }
}

std::uint8_t TwoPhaseClient::pick_phase_fifo(NodeState& s, bool phase1) {
  const int fifos = config_.injection_fifos;
  int begin = 0;
  int count = fifos;
  if (tuning_.reserved_fifos && fifos >= 2) {
    const int half = fifos / 2;
    begin = phase1 ? 0 : half;
    count = phase1 ? half : fifos - half;
  }
  std::uint8_t& rr = phase1 ? s.fifo_rr1 : s.fifo_rr2;
  const auto fifo = static_cast<std::uint8_t>(begin + (rr % count));
  ++rr;
  return fifo;
}

bool TwoPhaseClient::next_packet(topo::Rank node, net::InjectDesc& out) {
  NodeState& s = nodes_[static_cast<std::size_t>(node)];

  // 1) Credits unblock remote senders; they are tiny — send them first.
  if (!s.credit_queue.empty()) {
    const topo::Rank src = s.credit_queue.front();
    s.credit_queue.pop_front();
    out.dst = src;
    out.tag = make_tag(kCredit, node, src, static_cast<std::uint32_t>(tuning_.credit_batch));
    out.payload_bytes = 0;
    out.wire_chunks = 1;
    out.mode = net::RoutingMode::kAdaptive;
    out.fifo = pick_phase_fifo(s, /*phase1=*/true);  // credits travel the linear axis
    out.extra_cpu_cycles = tuning_.credit_cpu_cycles;
    ++credit_packets_;
    return true;
  }

  // 2) Forward arrived phase-1 packets across the plane.
  if (!s.forwards.empty()) {
    if (first_forward_ == 0 && fabric_ != nullptr) first_forward_ = fabric_->now();
    const Forward f = s.forwards.front();
    s.forwards.pop_front();
    out.dst = f.final_dst;
    out.tag = make_tag(kFinal, f.orig_src, f.final_dst);
    out.payload_bytes = f.payload_bytes;
    out.wire_chunks = f.chunks;
    out.mode = net::RoutingMode::kAdaptive;
    out.fifo = pick_phase_fifo(s, /*phase1=*/false);
    out.extra_cpu_cycles = tuning_.forward_cpu_cycles;
    return true;
  }

  // 3) Our own stream.
  return emit_stream_packet(node, s, out);
}

bool TwoPhaseClient::emit_stream_packet(topo::Rank node, NodeState& s, net::InjectDesc& out) {
  if (s.stream_done) return false;

  int scanned = 0;
  while (true) {
    if (s.position >= s.order.positions()) {
      s.position = 0;
      if (++s.round >= packets_.size()) {
        s.stream_done = true;
        return false;
      }
    }
    const topo::Rank dst = s.order.at(s.position);
    if (dst < 0) {  // affine-mode self slot
      ++s.position;
      continue;
    }

    const topo::Rank inter = pick_intermediate(node, dst);
    if (inter < 0) {  // unreachable under the fault plan: skip the pair
      ++s.position;
      continue;
    }
    const bool store_forward = (inter != node) && (inter != dst);

    if (store_forward && tuning_.credit_window > 0) {
      const int lin = torus_.coord_of(inter)[linear_axis_];
      if (s.outstanding[static_cast<std::size_t>(lin)] >= tuning_.credit_window) {
        // Blocked on credits: defer this destination if we can find another.
        if (s.order.swappable() && scanned < 64 &&
            s.position + 1 < s.order.positions()) {
          const std::uint32_t probe =
              s.position + 1 +
              static_cast<std::uint32_t>(scanned) % (s.order.positions() - s.position - 1);
          s.order.swap(s.position, probe);
          ++scanned;
          continue;
        }
        return false;  // fully blocked; a credit delivery wakes us
      }
      s.outstanding[static_cast<std::size_t>(lin)] += 1;
    }

    const rt::PacketSpec& spec = packets_[s.round];
    const bool phase1 = (inter != node);
    out.dst = phase1 ? inter : dst;
    out.tag = make_tag(store_forward ? kStoreForward : kFinal, node, dst);
    out.payload_bytes = spec.payload_bytes;
    out.wire_chunks = spec.wire_chunks;
    out.mode = net::RoutingMode::kAdaptive;
    out.fifo = pick_phase_fifo(s, phase1);
    double extra = 0.0;
    if (s.round == 0) extra += tuning_.alpha_cycles;
    out.extra_cpu_cycles = static_cast<std::uint32_t>(std::lround(extra));

    if (fabric_ != nullptr) {
      last_stream_packet_ = std::max(last_stream_packet_, fabric_->now());
    }
    ++s.position;
    return true;
  }
}

void TwoPhaseClient::on_delivery(topo::Rank node, const net::Packet& packet) {
  const auto kind = static_cast<Kind>(packet.tag >> 62);
  const auto orig_src = static_cast<topo::Rank>((packet.tag >> 24) & 0xffffffU);
  const auto final_dst = static_cast<topo::Rank>(packet.tag & 0xffffffU);
  NodeState& s = nodes_[static_cast<std::size_t>(node)];

  switch (kind) {
    case kFinal: {
      assert(final_dst == node);
      note_final_delivery();
      if (matrix_ != nullptr) matrix_->record(orig_src, node, packet.payload_bytes);
      return;
    }
    case kStoreForward: {
      assert(final_dst != node);
      s.forwards.push_back(Forward{final_dst, orig_src, packet.payload_bytes, packet.chunks});
      max_forward_backlog_ = std::max(max_forward_backlog_, s.forwards.size());
      if (tuning_.credit_window > 0) {
        const int lin = torus_.coord_of(orig_src)[linear_axis_];
        if (++s.to_credit[static_cast<std::size_t>(lin)] >= tuning_.credit_batch) {
          s.to_credit[static_cast<std::size_t>(lin)] -= tuning_.credit_batch;
          s.credit_queue.push_back(orig_src);
        }
      }
      fabric_->wake_cpu(node);
      return;
    }
    case kCredit: {
      const int lin = torus_.coord_of(packet.src)[linear_axis_];
      const auto released = static_cast<std::int32_t>((packet.tag >> 48) & 0x3fffU);
      s.outstanding[static_cast<std::size_t>(lin)] -= released;
      fabric_->wake_cpu(node);
      return;
    }
  }
  assert(false && "bad TPS tag");
}

}  // namespace bgl::coll
