// Correctness checking for all-to-all runs.
//
// In verification mode every *final* delivery is recorded per (source,
// destination) pair; a complete all-to-all of m bytes must put exactly m
// bytes in every off-diagonal cell. Indirect strategies record the original
// source (carried in the packet tag), not the forwarding intermediate, so
// the check also catches mis-forwarded data.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "src/topology/torus.hpp"

namespace bgl::coll {

class DeliveryMatrix {
 public:
  explicit DeliveryMatrix(std::int32_t nodes)
      : nodes_(nodes),
        bytes_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes), 0) {}

  void record(topo::Rank src, topo::Rank dst, std::uint64_t payload_bytes) {
    bytes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst)] += payload_bytes;
  }

  std::uint64_t bytes(topo::Rank src, topo::Rank dst) const {
    return bytes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
                  static_cast<std::size_t>(dst)];
  }

  /// True when every ordered pair (src != dst) received exactly
  /// `expected_per_pair` bytes and every diagonal cell is zero.
  bool complete(std::uint64_t expected_per_pair) const {
    for (topo::Rank s = 0; s < nodes_; ++s) {
      for (topo::Rank d = 0; d < nodes_; ++d) {
        const std::uint64_t want = (s == d) ? 0 : expected_per_pair;
        if (bytes(s, d) != want) return false;
      }
    }
    return true;
  }

  /// Human-readable description of the first mismatching pair, or "".
  std::string first_error(std::uint64_t expected_per_pair) const {
    for (topo::Rank s = 0; s < nodes_; ++s) {
      for (topo::Rank d = 0; d < nodes_; ++d) {
        const std::uint64_t want = (s == d) ? 0 : expected_per_pair;
        if (bytes(s, d) != want) {
          return "pair (" + std::to_string(s) + " -> " + std::to_string(d) + "): got " +
                 std::to_string(bytes(s, d)) + " bytes, want " + std::to_string(want);
        }
      }
    }
    return "";
  }

  /// Total bytes recorded across all pairs — for conservation checks
  /// against the injected volume (nodes * (nodes-1) * m for an all-to-all).
  std::uint64_t total_bytes() const {
    return std::accumulate(bytes_.begin(), bytes_.end(), std::uint64_t{0});
  }

  std::int32_t nodes() const { return nodes_; }

 private:
  std::int32_t nodes_;
  std::vector<std::uint64_t> bytes_;
};

}  // namespace bgl::coll
