// Correctness checking for all-to-all runs.
//
// In verification mode every *final* delivery is recorded per (source,
// destination) pair; a complete all-to-all of m bytes must put exactly m
// bytes in every off-diagonal cell. Indirect strategies record the original
// source (carried in the packet tag), not the forwarding intermediate, so
// the check also catches mis-forwarded data.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "src/topology/torus.hpp"

namespace bgl::coll {

/// Which ordered (src, dst) pairs a strategy can still serve under the run's
/// fault plan. Default-constructed (or nodes() == 0) means "everything
/// reachable" — the fault-free case costs nothing. Strategies fill it via
/// StrategyClient::mark_reachable.
class PairMask {
 public:
  PairMask() = default;
  explicit PairMask(std::int32_t nodes)
      : nodes_(nodes),
        reachable_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes), 1) {}

  void set_unreachable(topo::Rank src, topo::Rank dst) {
    reachable_[index(src, dst)] = 0;
  }

  /// Re-marks a pair reachable (sparse coverage masks built bottom-up, e.g.
  /// a repair schedule covering only its residual pairs).
  void set_reachable(topo::Rank src, topo::Rank dst) {
    reachable_[index(src, dst)] = 1;
  }

  bool reachable(topo::Rank src, topo::Rank dst) const {
    if (nodes_ == 0) return true;  // empty mask: no faults, all pairs live
    return reachable_[index(src, dst)] != 0;
  }

  /// Off-diagonal pairs marked unreachable.
  std::uint64_t unreachable_pairs() const {
    std::uint64_t count = 0;
    for (topo::Rank s = 0; s < nodes_; ++s) {
      for (topo::Rank d = 0; d < nodes_; ++d) {
        if (s != d && reachable_[index(s, d)] == 0) ++count;
      }
    }
    return count;
  }

  std::int32_t nodes() const { return nodes_; }

 private:
  std::size_t index(topo::Rank src, topo::Rank dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst);
  }

  std::int32_t nodes_ = 0;
  std::vector<std::uint8_t> reachable_;
};

class DeliveryMatrix {
 public:
  explicit DeliveryMatrix(std::int32_t nodes)
      : nodes_(nodes),
        bytes_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes), 0) {}

  void record(topo::Rank src, topo::Rank dst, std::uint64_t payload_bytes) {
    bytes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst)] += payload_bytes;
  }

  std::uint64_t bytes(topo::Rank src, topo::Rank dst) const {
    return bytes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
                  static_cast<std::size_t>(dst)];
  }

  /// Epoch-transition bookkeeping: a survivor discards the partial flow of a
  /// pair it can never complete (source or destination fail-stopped mid-
  /// message), returning the bytes dropped. Keeps the matrix exactly-once
  /// accountable across repair epochs — see src/coll/recovery.hpp.
  std::uint64_t discard(topo::Rank src, topo::Rank dst) {
    std::uint64_t& cell =
        bytes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
               static_cast<std::size_t>(dst)];
    const std::uint64_t dropped = cell;
    cell = 0;
    return dropped;
  }

  /// True when every ordered pair (src != dst) received exactly
  /// `expected_per_pair` bytes and every diagonal cell is zero.
  bool complete(std::uint64_t expected_per_pair) const {
    for (topo::Rank s = 0; s < nodes_; ++s) {
      for (topo::Rank d = 0; d < nodes_; ++d) {
        const std::uint64_t want = (s == d) ? 0 : expected_per_pair;
        if (bytes(s, d) != want) return false;
      }
    }
    return true;
  }

  /// Human-readable description of the first mismatching pair, or "".
  std::string first_error(std::uint64_t expected_per_pair) const {
    for (topo::Rank s = 0; s < nodes_; ++s) {
      for (topo::Rank d = 0; d < nodes_; ++d) {
        const std::uint64_t want = (s == d) ? 0 : expected_per_pair;
        if (bytes(s, d) != want) {
          return "pair (" + std::to_string(s) + " -> " + std::to_string(d) + "): got " +
                 std::to_string(bytes(s, d)) + " bytes, want " + std::to_string(want);
        }
      }
    }
    return "";
  }

  /// Fault-tolerant variant of complete(): every *reachable* off-diagonal
  /// pair must have received exactly `expected_per_pair` bytes; unreachable
  /// pairs (and the diagonal) must have received nothing — the strategies
  /// skip them at the source, so any bytes there mean misrouted data.
  bool complete_reachable(std::uint64_t expected_per_pair, const PairMask& mask) const {
    return first_error_reachable(expected_per_pair, mask).empty();
  }

  /// Human-readable description of the first pair violating the reachable
  /// delivery contract, or "".
  std::string first_error_reachable(std::uint64_t expected_per_pair,
                                    const PairMask& mask) const {
    for (topo::Rank s = 0; s < nodes_; ++s) {
      for (topo::Rank d = 0; d < nodes_; ++d) {
        const bool want_data = s != d && mask.reachable(s, d);
        const std::uint64_t want = want_data ? expected_per_pair : 0;
        if (bytes(s, d) != want) {
          return "pair (" + std::to_string(s) + " -> " + std::to_string(d) + ", " +
                 (want_data ? "reachable" : "unreachable") + "): got " +
                 std::to_string(bytes(s, d)) + " bytes, want " + std::to_string(want);
        }
      }
    }
    return "";
  }

  /// Ordered off-diagonal pairs that received exactly `expected_per_pair`
  /// bytes (the degradation sweeps' "delivered pairs" numerator).
  std::uint64_t complete_pairs(std::uint64_t expected_per_pair) const {
    std::uint64_t count = 0;
    for (topo::Rank s = 0; s < nodes_; ++s) {
      for (topo::Rank d = 0; d < nodes_; ++d) {
        if (s != d && bytes(s, d) == expected_per_pair) ++count;
      }
    }
    return count;
  }

  /// Total bytes recorded across all pairs — for conservation checks
  /// against the injected volume (nodes * (nodes-1) * m for an all-to-all).
  std::uint64_t total_bytes() const {
    return std::accumulate(bytes_.begin(), bytes_.end(), std::uint64_t{0});
  }

  std::int32_t nodes() const { return nodes_; }

 private:
  std::int32_t nodes_;
  std::vector<std::uint64_t> bytes_;
};

}  // namespace bgl::coll
