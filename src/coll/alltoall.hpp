// Public entry point: run an all-to-all personalized exchange on a simulated
// Blue Gene/L partition with one of the paper's strategies.
//
//   AlltoallOptions opts;
//   opts.net.shape = topo::parse_shape("8x32x16");
//   opts.msg_bytes = 4096;
//   RunResult r = run_alltoall(StrategyKind::kTwoPhase, opts);
//   // r.percent_peak, r.elapsed_us, r.links ...
#pragma once

#include <cstdint>
#include <string>

#include "src/coll/dest_order.hpp"
#include "src/coll/verify.hpp"
#include "src/network/config.hpp"
#include "src/runtime/reliability.hpp"
#include "src/topology/torus.hpp"
#include "src/trace/stats.hpp"

namespace bgl::coll {

using net::Tick;

enum class StrategyKind {
  kMpi,            // production-MPI-like baseline: message runtime overheads, burst 2
  kAdaptiveRandom, // AR: randomized, adaptively routed, low-overhead (paper §3)
  kDeterministic,  // DR: randomized order on the deterministic bubble VC
  kThrottled,      // AR paced at the Eq. 2 bisection rate
  kTwoPhase,       // TPS: linear phase + planar phase, reserved FIFOs (paper §4.1)
  kVirtualMesh,    // 2-D virtual mesh message combining (paper §4.2)
  kBest,           // paper §5 selection rule; see selector.hpp
};

std::string strategy_name(StrategyKind kind);

/// Epoch accounting of a run that crossed one or more recovery re-plans
/// (see src/coll/recovery.hpp). A run that never re-planned reports
/// epochs == 1 and zeros elsewhere; corruption_retransmits can be nonzero
/// on its own under FaultConfig::corrupt_prob.
struct EpochStats {
  /// Execution epochs: 1 for the initial run plus one per repair schedule.
  int epochs = 1;
  /// Repair re-plan cycles executed (epochs - 1 on a recovered run).
  int replans = 0;
  /// Simulated cycles spent past the initial run: liveness agreement plus
  /// every repair epoch's elapsed time (already folded into elapsed_cycles).
  Tick replan_cycles = 0;
  /// Ordered pairs the first re-plan found short of msg_bytes.
  std::uint64_t residual_pairs = 0;
  /// Residual bytes the repair epochs actually delivered.
  std::uint64_t recovered_bytes = 0;
  /// Deliveries rejected by the end-to-end payload checksum, each covered
  /// by a retransmission (== ReliabilityStats::corrupt_rejected).
  std::uint64_t corruption_retransmits = 0;
};

struct AlltoallOptions {
  /// Payload bytes per destination (the paper's m).
  std::uint64_t msg_bytes = 240;

  net::NetworkConfig net{};

  // --- direct-family tuning ---
  /// Packets sent to one destination before moving to the next (the MPI
  /// tuning parameter; usually 1 or 2).
  int burst = 1;
  /// Throttle pace multiplier (kThrottled): 1.0 = exactly the Eq. 2 rate.
  double throttle = 1.0;
  /// Destination ordering for the direct family (randomization ablation).
  OrderPolicy order = OrderPolicy::kRandom;

  // --- TPS tuning ---
  /// Linear (phase 1) dimension; -1 selects per the paper's rule.
  int linear_axis = -1;
  /// Software cost of forwarding one packet at the intermediate node.
  std::uint32_t forward_cpu_cycles = 200;
  /// Reserve half the injection FIFOs for each phase (ablation switch).
  bool reserved_fifos = true;
  /// Credit-based flow control for intermediate memory (paper §5 future
  /// work): max phase-1 packets in flight per (source, intermediate);
  /// 0 disables.
  int credit_window = 0;
  /// Forwarded packets per credit packet returned.
  int credit_batch = 10;

  // --- VMesh tuning ---
  /// Virtual mesh extents; 0 = automatic near-square factorization.
  int pvx = 0;
  int pvy = 0;
  /// Physical layout of the virtual mesh (0=XYZ fastest-X, 1=ZYX, 2=YXZ);
  /// kept as an int to avoid pulling vmesh.hpp into this header.
  int vmesh_mapping = 0;

  /// Epoch-based recovery from a delayed permanent strike (fail_at > 0):
  /// after the struck run quiesces, survivors agree on a liveness view,
  /// compute the undelivered residual from the delivery matrix and execute
  /// lint-checked repair schedules until every still-reachable pair is whole
  /// (see src/coll/recovery.hpp). A delivery matrix is allocated internally
  /// when recovery may trigger.
  bool recover = true;

  /// Optional per-hop observer forwarded to Fabric::set_hop_observer
  /// (link-level tracing). Observer runs stay parallel-eligible: on a
  /// --sim-threads run grants are buffered per slab and replayed at each
  /// window barrier in deterministic (tick, link id) order.
  net::Fabric::HopObserver hop_observer;

  /// Optional per-pair delivery verification (small partitions only).
  DeliveryMatrix* deliveries = nullptr;

  /// Record deliveries into an internal matrix (O(nodes^2) memory) and fill
  /// RunResult::pairs_complete / reachable_complete, without the caller
  /// managing a DeliveryMatrix. Implied by `deliveries != nullptr`.
  bool verify = false;

  /// Abort-if-not-quiescent deadline in cycles; 0 = automatic.
  Tick deadline = 0;

  /// Host wall-clock watchdog per run, in milliseconds; 0 = none. A run
  /// that exceeds it is aborted mid-simulation and reported with
  /// `timed_out == true` and `drained == false` (its metrics are garbage;
  /// the harness excludes such runs from aggregates).
  double wall_timeout_ms = 0.0;
};

struct RunResult {
  std::string strategy;
  topo::Shape shape{};
  std::uint64_t msg_bytes = 0;

  Tick elapsed_cycles = 0;
  double elapsed_us = 0.0;
  /// Measured vs the Eq. 2 peak for this payload (direct wire format).
  double percent_peak = 0.0;
  /// Application payload moved per node per second, MB/s (Figures 3, 6, 7).
  double per_node_mbps = 0.0;

  std::uint64_t packets_delivered = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t events = 0;
  /// Simulator worker threads actually used after eligibility gating (1 on
  /// the reference engine; see NetworkConfig::sim_threads).
  int sim_threads = 1;
  /// Why sim_threads fell short of the request (kNone when the parallel
  /// engine ran at the requested width).
  net::ThreadFallbackReason sim_threads_reason = net::ThreadFallbackReason::kNone;
  bool drained = false;
  /// True when the run was killed by AlltoallOptions::wall_timeout_ms.
  bool timed_out = false;

  trace::LinkReport links;

  // --- delivery verification (only when a DeliveryMatrix was recorded) ---
  /// True when per-pair delivery state was recorded, i.e. pairs_complete and
  /// reachable_complete are meaningful (verify, a caller matrix, or recovery).
  bool verified = false;
  /// Ordered pairs that received their full msg_bytes.
  std::uint64_t pairs_complete = 0;
  /// Every reachable pair delivered exactly, nothing delivered elsewhere.
  bool reachable_complete = false;

  // --- fault injection (all zero / empty on a healthy run) ---
  /// Fabric-level fault counters (drops, vetoes, transient downtime).
  net::FaultStats faults{};
  /// End-to-end reliability counters (retransmits, acks, duplicates).
  rt::ReliabilityStats reliability{};
  /// Ordered pairs the strategy could not serve under the fault plan.
  std::uint64_t unreachable_pairs = 0;
  /// Reachable pairs abandoned after the retry budget (0 = full delivery).
  std::uint64_t abandoned_pairs = 0;
  /// Per-pair reachability (nodes() == 0 when fault-free); combine with
  /// AlltoallOptions::deliveries + DeliveryMatrix::complete_reachable.
  PairMask reachable;
  /// Epoch-based recovery accounting (epochs == 1 when no re-plan ran).
  EpochStats epochs{};
};

RunResult run_alltoall(StrategyKind kind, const AlltoallOptions& options);

struct CommSchedule;

/// Run an arbitrary `CommSchedule` program (e.g. a synthesized one) through
/// the same fabric / reliability / verification path as `run_alltoall`. The
/// schedule must target `options.net.shape` and must have been built against
/// the same fault plan the options imply (pass the plan to the builder).
/// `label` becomes `RunResult::strategy`. Strategy-tuning fields of `options`
/// (burst, linear_axis, ...) are ignored — the schedule already encodes them.
RunResult run_schedule(CommSchedule schedule, const AlltoallOptions& options,
                       const std::string& label = "synth");

/// Eq. 2 peak time in cycles for an m-byte-per-pair AA on `shape`, counting
/// the wire chunks of the direct packet format (used as the percent-of-peak
/// denominator for every strategy).
double peak_cycles_for(const topo::Shape& shape, std::uint64_t msg_bytes,
                       std::uint32_t chunk_cycles);

}  // namespace bgl::coll
