#include "src/coll/registry.hpp"

#include <stdexcept>

namespace bgl::coll {

DirectTuning direct_tuning_for(StrategyKind kind, const AlltoallOptions& options) {
  DirectTuning t;
  switch (kind) {
    case StrategyKind::kMpi:
      t = DirectTuning::mpi();
      t.burst = options.burst > 0 ? options.burst : t.burst;
      break;
    case StrategyKind::kAdaptiveRandom:
      t = DirectTuning::ar();
      t.burst = options.burst;
      break;
    case StrategyKind::kDeterministic:
      t = DirectTuning::dr();
      t.burst = options.burst;
      break;
    case StrategyKind::kThrottled:
      t = DirectTuning::throttled(options.throttle);
      t.burst = options.burst;
      break;
    default:
      throw std::invalid_argument("not a direct-family strategy");
  }
  t.order = options.order;
  return t;
}

TpsTuning tps_tuning_for(const AlltoallOptions& options) {
  TpsTuning t;
  t.linear_axis = options.linear_axis;
  t.forward_cpu_cycles = options.forward_cpu_cycles;
  t.reserved_fifos = options.reserved_fifos;
  t.credit_window = options.credit_window;
  t.credit_batch = options.credit_batch;
  return t;
}

VmeshTuning vmesh_tuning_for(const AlltoallOptions& options) {
  VmeshTuning t;
  t.pvx = options.pvx;
  t.pvy = options.pvy;
  t.mapping = static_cast<MeshMapping>(options.vmesh_mapping);
  return t;
}

namespace {

template <StrategyKind Kind>
CommSchedule build_direct_entry(const net::NetworkConfig& net, std::uint64_t msg_bytes,
                                const AlltoallOptions& options,
                                const net::FaultPlan* /*faults*/) {
  return build_direct_schedule(net, msg_bytes, direct_tuning_for(Kind, options));
}

CommSchedule build_tps_entry(const net::NetworkConfig& net, std::uint64_t msg_bytes,
                             const AlltoallOptions& options,
                             const net::FaultPlan* /*faults*/) {
  return build_tps_schedule(net, msg_bytes, tps_tuning_for(options));
}

CommSchedule build_vmesh_entry(const net::NetworkConfig& net, std::uint64_t msg_bytes,
                               const AlltoallOptions& options,
                               const net::FaultPlan* faults) {
  return build_vmesh_schedule(net, msg_bytes, vmesh_tuning_for(options), faults);
}

}  // namespace

const std::vector<StrategyInfo>& strategy_registry() {
  static const std::vector<StrategyInfo> kRegistry = {
      {StrategyKind::kMpi, "MPI", true,
       "message-object baseline: larger alpha, per-packet cost, burst 2",
       &build_direct_entry<StrategyKind::kMpi>},
      {StrategyKind::kAdaptiveRandom, "AR", true,
       "randomized direct sends on adaptive routing (paper Section 3)",
       &build_direct_entry<StrategyKind::kAdaptiveRandom>},
      {StrategyKind::kDeterministic, "DR", true,
       "randomized direct sends on the deterministic bubble VC",
       &build_direct_entry<StrategyKind::kDeterministic>},
      {StrategyKind::kThrottled, "AR+throttle", true,
       "direct AR paced to the Eq. 2 bisection rate",
       &build_direct_entry<StrategyKind::kThrottled>},
      {StrategyKind::kTwoPhase, "TPS", false,
       "linear phase + planar phase with reserved FIFOs (paper Section 4.1)",
       &build_tps_entry},
      {StrategyKind::kVirtualMesh, "VMesh", false,
       "2-D virtual mesh message combining (paper Section 4.2)",
       &build_vmesh_entry},
  };
  return kRegistry;
}

const StrategyInfo* find_strategy(StrategyKind kind) {
  for (const StrategyInfo& info : strategy_registry()) {
    if (info.kind == kind) return &info;
  }
  return nullptr;
}

const StrategyInfo* find_strategy(const std::string& name) {
  for (const StrategyInfo& info : strategy_registry()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

CommSchedule build_schedule(StrategyKind kind, const net::NetworkConfig& net,
                            std::uint64_t msg_bytes, const AlltoallOptions& options,
                            const net::FaultPlan* faults) {
  const StrategyInfo* info = find_strategy(kind);
  if (info == nullptr) {
    throw std::invalid_argument("no schedule builder for strategy " +
                                strategy_name(kind));
  }
  return info->build(net, msg_bytes, options, faults);
}

}  // namespace bgl::coll
