#include "src/coll/schedule_lint.hpp"

#include <algorithm>
#include <deque>

namespace bgl::coll {

namespace {

void add(LintReport& report, const char* check, std::string message) {
  report.issues.push_back(LintIssue{check, std::move(message)});
}

std::string pair_str(topo::Rank s, topo::Rank d) {
  return "(" + std::to_string(s) + " -> " + std::to_string(d) + ")";
}

/// Structural well-formedness; returns false when the schedule is too broken
/// for the transfer-level checks to run safely.
bool check_structure(const CommSchedule& sched, LintReport& report) {
  bool safe = true;
  if (sched.phases.empty()) {
    add(report, "structure", "schedule has no phases");
    return false;
  }
  if (sched.fifo_classes.empty()) {
    add(report, "structure", "schedule has no FIFO classes");
    return false;
  }
  const auto phase_count = static_cast<int>(sched.phases.size());
  const auto class_count = static_cast<int>(sched.fifo_classes.size());
  for (int p = 0; p < phase_count; ++p) {
    const PhaseSpec& phase = sched.phases[static_cast<std::size_t>(p)];
    if (phase.packets.empty()) {
      add(report, "structure", "phase " + std::to_string(p) + " has an empty message");
    }
    if (phase.fifo_class >= class_count) {
      add(report, "structure",
          "phase " + std::to_string(p) + " references FIFO class " +
              std::to_string(phase.fifo_class) + " of " + std::to_string(class_count));
      safe = false;
    }
  }

  // Barrier table: every kLocalBarrier phase needs exactly one BarrierSpec,
  // specs come sorted by phase, and each spec's vectors cover every node.
  std::vector<int> barrier_spec_of(static_cast<std::size_t>(phase_count), -1);
  int prev_barrier_phase = 0;
  for (std::size_t g = 0; g < sched.barriers.size(); ++g) {
    const BarrierSpec& barrier = sched.barriers[g];
    if (barrier.phase <= 0 || barrier.phase >= phase_count) {
      add(report, "structure",
          "barrier " + std::to_string(g) + " gates phase " +
              std::to_string(barrier.phase) +
              " out of range (needs a preceding phase to gate on)");
      continue;
    }
    if (barrier.phase <= prev_barrier_phase && g > 0) {
      add(report, "structure",
          "barrier " + std::to_string(g) + " gates phase " +
              std::to_string(barrier.phase) +
              " out of order (barriers must be sorted by ascending phase)");
    }
    prev_barrier_phase = barrier.phase;
    if (barrier_spec_of[static_cast<std::size_t>(barrier.phase)] >= 0) {
      add(report, "structure",
          "phase " + std::to_string(barrier.phase) +
              " gated by more than one barrier");
    }
    barrier_spec_of[static_cast<std::size_t>(barrier.phase)] =
        static_cast<int>(g);
    const auto nodes = static_cast<std::size_t>(sched.nodes());
    if (barrier.expected.size() != nodes ||
        barrier.compute_cycles.size() != nodes) {
      add(report, "structure", "barrier vectors not sized to the node count");
    }
  }
  for (int p = 0; p < phase_count; ++p) {
    const bool gated =
        sched.phases[static_cast<std::size_t>(p)].gate == PhaseGate::kLocalBarrier;
    const bool has_spec = barrier_spec_of[static_cast<std::size_t>(p)] >= 0;
    if (gated && !has_spec) {
      add(report, "structure",
          "phase " + std::to_string(p) +
              " is barrier-gated but has no BarrierSpec");
    } else if (!gated && has_spec) {
      add(report, "structure",
          "phase " + std::to_string(p) +
              " has a BarrierSpec but is not barrier-gated");
    }
  }
  if (!sched.barriers.empty() && sched.form != StreamForm::kExplicit) {
    add(report, "structure", "barriers require an explicit-form schedule");
  }

  if (sched.form == StreamForm::kOrdered) {
    if (sched.orders.size() != static_cast<std::size_t>(sched.nodes())) {
      add(report, "structure", "ordered stream needs one DestOrder per node");
      safe = false;
    }
    if (sched.stream.final_phase >= phase_count ||
        sched.stream.relayed_phase >= phase_count) {
      add(report, "structure", "ordered stream references a phase out of range");
      safe = false;
    } else {
      // Every packet of the message must be emitted by the round/burst walk.
      const auto& packets =
          sched.phases[static_cast<std::size_t>(sched.stream.final_phase)].packets;
      const std::uint64_t emitted = static_cast<std::uint64_t>(sched.stream.rounds) *
                                    static_cast<std::uint64_t>(sched.stream.burst);
      if (sched.stream.burst < 1) {
        add(report, "structure", "ordered stream burst < 1");
      } else if (emitted < packets.size()) {
        add(report, "structure",
            "ordered stream emits " + std::to_string(emitted) + " of " +
                std::to_string(packets.size()) + " message packets");
      }
    }
    if (sched.stream.relay == RelayRule::kLinearAxis &&
        (sched.stream.relay_axis < 0 ||
         sched.stream.relay_axis >= sched.shape.axis_count())) {
      add(report, "structure", "relay axis out of range");
      safe = false;
    }
  } else {
    const auto nodes = static_cast<std::size_t>(sched.nodes());
    if (sched.op_begin.size() != nodes + 1 || sched.op_begin.front() != 0 ||
        sched.op_begin.back() != sched.ops.size() ||
        !std::is_sorted(sched.op_begin.begin(), sched.op_begin.end())) {
      add(report, "structure", "op_begin is not a valid node offset table");
      return false;
    }
    for (std::size_t i = 0; i < sched.ops.size(); ++i) {
      const SendOp& op = sched.ops[i];
      if (op.dst < 0 || op.dst >= sched.nodes()) {
        add(report, "structure", "op " + std::to_string(i) + " has dst out of range");
        safe = false;
      }
      if (op.phase >= phase_count) {
        add(report, "structure", "op " + std::to_string(i) + " has phase out of range");
        safe = false;
      }
      if ((op.flags & SendOp::kFinalizeSelf) == 0 && op.finalize_count > 0 &&
          (op.finalize_begin < 0 ||
           static_cast<std::size_t>(op.finalize_begin) +
               static_cast<std::size_t>(op.finalize_count) >
               sched.finalize_pool.size())) {
        add(report, "structure",
            "op " + std::to_string(i) + " finalize span outside the pool");
        safe = false;
      }
    }
    if (sched.covered.nodes() != 0 && sched.covered.nodes() != sched.nodes()) {
      add(report, "structure", "coverage mask not sized to the node count");
      safe = false;
    }
  }
  return safe;
}

void check_fifo_budget(const CommSchedule& sched, LintReport& report) {
  const int fifos = sched.injection_fifos;
  std::vector<int> reserved_owner(static_cast<std::size_t>(fifos), -1);
  for (std::size_t c = 0; c < sched.fifo_classes.size(); ++c) {
    const FifoClass& fc = sched.fifo_classes[c];
    const int count = fc.resolved_count(fifos);
    if (fc.begin < 0 || count < 1 || fc.begin + count > fifos) {
      add(report, "fifo-budget",
          "class " + std::to_string(c) + " spans [" + std::to_string(fc.begin) +
              ", " + std::to_string(fc.begin + count) + ") of " +
              std::to_string(fifos) + " FIFOs");
      continue;
    }
    if (!fc.reserved) continue;
    for (int f = fc.begin; f < fc.begin + count; ++f) {
      int& owner = reserved_owner[static_cast<std::size_t>(f)];
      if (owner >= 0) {
        add(report, "fifo-budget",
            "reserved classes " + std::to_string(owner) + " and " +
                std::to_string(c) + " both claim FIFO " + std::to_string(f));
      } else {
        owner = static_cast<int>(c);
      }
    }
  }
}

void check_transfers(const CommSchedule& sched, const net::FaultPlan* faults,
                     LintReport& report, std::vector<std::uint8_t>& phase_of) {
  const auto nodes = static_cast<std::size_t>(sched.nodes());
  std::vector<std::uint8_t> carried(nodes * nodes, 0);
  const bool faulted = faults != nullptr && faults->enabled();

  sched.for_each_transfer(faults, [&](const Transfer& t) {
    ++report.transfers;
    phase_of.push_back(t.phase);
    if (t.src < 0 || t.src >= sched.nodes() || t.dst < 0 || t.dst >= sched.nodes()) {
      add(report, "coverage",
          "transfer " + std::to_string(t.id) + " has endpoints out of range");
      return;
    }
    if (t.src == t.dst) {
      add(report, "coverage",
          "transfer " + std::to_string(t.id) + " carries the diagonal pair " +
              pair_str(t.src, t.dst));
      return;
    }
    std::uint8_t& count = carried[static_cast<std::size_t>(t.src) * nodes +
                                  static_cast<std::size_t>(t.dst)];
    if (count < 255) ++count;

    if (faulted) {
      bool live = faults->node_alive(t.src) && faults->node_alive(t.dst);
      topo::Rank hop_src = t.src;
      for (int i = 0; i < t.relay_count; ++i) {
        const topo::Rank relay = t.relays[static_cast<std::size_t>(i)];
        live = live && faults->node_alive(relay) &&
               faults->pair_routable(hop_src, relay, net::RoutingMode::kAdaptive);
        hop_src = relay;
      }
      if (live && hop_src != t.dst) {
        live = faults->pair_routable(hop_src, t.dst,
                                     sched.phases[t.phase].mode);
      }
      if (!live) {
        add(report, "relay",
            "transfer " + std::to_string(t.id) + " " + pair_str(t.src, t.dst) +
                " rides a dead relay or leg under the fault plan");
      }
    }
  });

  for (topo::Rank s = 0; s < sched.nodes(); ++s) {
    for (topo::Rank d = 0; d < sched.nodes(); ++d) {
      if (s == d) continue;
      const std::uint8_t count =
          carried[static_cast<std::size_t>(s) * nodes + static_cast<std::size_t>(d)];
      const bool want = sched.pair_covered(s, d, faults);
      if (want) ++report.covered_pairs;
      if (want && count == 0) {
        add(report, "coverage", "covered pair " + pair_str(s, d) + " is never carried");
      } else if (!want && count > 0) {
        add(report, "coverage",
            "uncovered pair " + pair_str(s, d) + " is carried " +
                std::to_string(count) + "x");
      } else if (count > 1) {
        add(report, "coverage",
            "pair " + pair_str(s, d) + " is carried " + std::to_string(count) + "x");
      }
    }
  }
}

void check_deps(const CommSchedule& sched, LintReport& report,
                const std::vector<std::uint8_t>& phase_of) {
  if (sched.extra_deps.empty()) return;
  // The executor can only gate emission in the ordered relay-free form (one
  // message per (src, dst) pair, one cursor position); anywhere else the
  // declared constraint would be unenforceable and is rejected up front,
  // matching ScheduleExecutor::init_extra_deps.
  if (sched.form == StreamForm::kExplicit) {
    add(report, "deps", "extra_deps are not executable on an explicit-form schedule");
  } else if (sched.stream.relay != RelayRule::kNone) {
    add(report, "deps", "extra_deps are not executable on a relaying schedule");
  }
  const auto transfers = static_cast<std::int64_t>(phase_of.size());
  std::vector<std::vector<std::int64_t>> out_edges(phase_of.size());
  std::vector<std::int32_t> in_degree(phase_of.size(), 0);
  for (const auto& [before, after] : sched.extra_deps) {
    if (before < 0 || before >= transfers || after < 0 || after >= transfers) {
      add(report, "deps",
          "dependency (" + std::to_string(before) + " -> " + std::to_string(after) +
              ") references a transfer out of range");
      continue;
    }
    if (phase_of[static_cast<std::size_t>(before)] >
        phase_of[static_cast<std::size_t>(after)]) {
      add(report, "deps",
          "dependency (" + std::to_string(before) + " -> " + std::to_string(after) +
              ") runs backwards across phases");
    }
    out_edges[static_cast<std::size_t>(before)].push_back(after);
    ++in_degree[static_cast<std::size_t>(after)];
  }

  // Kahn's algorithm; anything left over sits on a cycle.
  std::deque<std::int64_t> ready;
  for (std::int64_t t = 0; t < transfers; ++t) {
    if (in_degree[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
  }
  std::int64_t ordered = 0;
  while (!ready.empty()) {
    const std::int64_t t = ready.front();
    ready.pop_front();
    ++ordered;
    for (const std::int64_t next : out_edges[static_cast<std::size_t>(t)]) {
      if (--in_degree[static_cast<std::size_t>(next)] == 0) ready.push_back(next);
    }
  }
  if (ordered != transfers) {
    add(report, "deps",
        std::to_string(transfers - ordered) + " transfers sit on a dependency cycle");
  }
}

}  // namespace

std::string LintReport::to_string() const {
  if (issues.empty()) return "ok";
  std::string out;
  for (const LintIssue& issue : issues) {
    if (!out.empty()) out += '\n';
    out += issue.check + ": " + issue.message;
  }
  return out;
}

LintReport schedule_lint(const CommSchedule& sched, const net::FaultPlan* faults) {
  LintReport report;
  if (!check_structure(sched, report)) return report;
  check_fifo_budget(sched, report);
  std::vector<std::uint8_t> phase_of;
  check_transfers(sched, faults, report, phase_of);
  check_deps(sched, report, phase_of);
  return report;
}

}  // namespace bgl::coll
