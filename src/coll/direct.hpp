// Direct all-to-all strategies (paper Section 3).
//
// Every node sends its data straight to each destination as a stream of
// packets, visiting destinations in a per-node random order. One "round"
// sends `burst` packets to each destination before moving on (the MPI tuning
// parameter; AR uses burst 1), so a message of k packets takes ceil(k/burst)
// rounds. Variants differ in routing mode and software overheads:
//
//   AR        adaptive routing, two dynamic VCs + bubble escape,
//             alpha ~= 450 cycles per destination (paper Section 3);
//   DR        same schedule on the deterministic bubble VC, dimension order;
//   Throttled AR paced to the Eq. 2 bisection rate;
//   MPI       message-object baseline: larger alpha, per-packet protocol
//             cost, burst 2 (the production library described in Section 3).
#pragma once

#include <cstdint>

#include "src/coll/dest_order.hpp"
#include "src/coll/schedule.hpp"
#include "src/runtime/packetizer.hpp"

namespace bgl::coll {

struct DirectTuning {
  net::RoutingMode mode = net::RoutingMode::kAdaptive;
  /// Per-destination startup, charged with the message's first packet.
  double alpha_cycles = 450.0;
  /// Extra software cost per packet (protocol/message-object overhead).
  std::uint32_t per_packet_cycles = 0;
  /// Packets per destination per round.
  int burst = 1;
  /// >0: pace injection to `pace_factor` x the Eq. 2 per-packet interval.
  double pace_factor = 0.0;
  /// Destination ordering; the paper's schemes randomize to smooth
  /// contention (kept as a knob for the randomization ablation).
  OrderPolicy order = OrderPolicy::kRandom;

  static DirectTuning ar() { return DirectTuning{}; }
  static DirectTuning dr() {
    DirectTuning t;
    t.mode = net::RoutingMode::kDeterministic;
    return t;
  }
  static DirectTuning throttled(double factor = 1.0) {
    DirectTuning t;
    t.pace_factor = factor;
    return t;
  }
  static DirectTuning mpi() {
    DirectTuning t;
    t.alpha_cycles = 1170.0;    // message-object allocation + protocol startup
    t.per_packet_cycles = 100;  // per-packet protocol handling
    t.burst = 2;
    return t;
  }
};

/// The direct family as a schedule builder: a single pipelined phase over a
/// per-node random destination order (no relays). Pure function of
/// (config, msg_bytes, tuning), executed via ScheduleExecutor.
CommSchedule build_direct_schedule(const net::NetworkConfig& config,
                                   std::uint64_t msg_bytes,
                                   const DirectTuning& tuning);

}  // namespace bgl::coll
