// 2-D Virtual Mesh message-combining all-to-all (paper Section 4.2).
//
// The P nodes are arranged in a Pvx x Pvy virtual mesh (rank r sits at
// column r % Pvx of row r / Pvx; with BG/L's X-major rank order a row is a
// contiguous slab of the physical torus, e.g. a half XY-plane for the 32x16
// mesh on an 8x8x8 midplane — the mapping the paper uses).
//
//   Phase 1: every node combines, for each row peer w at column j, the m-byte
//            blocks destined to all Pvy nodes of column j into one
//            Pvy*m-byte message and sends it to w.  (Pvx-1 messages.)
//   Phase 2: after all row messages arrive, the node re-sorts the received
//            blocks by destination row (a gamma-cost memory copy) and sends
//            each column peer one Pvx*m-byte combined message. (Pvy-1.)
//
// The phases do not overlap at a node: phase 2 starts only after the node's
// phase-1 receives complete plus the copy delay. Messages use the combining
// runtime's small (8 B) protocol header but pay the message-passing alpha
// (~1170 cycles) per message — the trade the paper's Eq. 4 captures.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/coll/dest_order.hpp"
#include "src/coll/schedule.hpp"
#include "src/runtime/packetizer.hpp"

namespace bgl::coll {

/// Which axis varies fastest when laying the virtual mesh over the torus.
/// The paper aligns rows with compact physical regions (half XY-planes on
/// the 8x8x8 midplane); kXYZ reproduces that for the natural rank order,
/// while the alternatives let the mapping ablation measure misalignment.
enum class MeshMapping : std::uint8_t { kXYZ, kZYX, kYXZ };

struct VmeshTuning {
  int pvx = 0;  // 0 = automatic near-square factorization (pvx >= pvy)
  int pvy = 0;
  MeshMapping mapping = MeshMapping::kXYZ;
  double alpha_msg_cycles = 1170.0;
  double gamma_ns_per_byte = 1.6;
  double clock_ghz = 0.7;
};

/// Near-square factorization P = pvx * pvy with pvx >= pvy; pvx is the
/// smallest divisor of P at or above sqrt(P).
std::pair<int, int> vmesh_factorize(std::int32_t nodes);

/// Axis iteration order for `mapping` over an `axes`-dimensional shape
/// (first entry varies fastest): kXYZ is the natural axis order, kZYX
/// reverses it, kYXZ swaps the first two axes.
std::vector<int> mesh_axis_order(MeshMapping mapping, int axes);

/// VMesh as a schedule builder: an explicit two-phase op list (combined row
/// messages, then barrier-gated combined column messages) with per-node
/// barrier counts, finalize lists and the fault-plan coverage mask all
/// precomputed, executed via ScheduleExecutor.
CommSchedule build_vmesh_schedule(const net::NetworkConfig& config,
                                  std::uint64_t msg_bytes,
                                  const VmeshTuning& tuning,
                                  const net::FaultPlan* faults = nullptr);

}  // namespace bgl::coll
