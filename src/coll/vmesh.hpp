// 2-D Virtual Mesh message-combining all-to-all (paper Section 4.2).
//
// The P nodes are arranged in a Pvx x Pvy virtual mesh (rank r sits at
// column r % Pvx of row r / Pvx; with BG/L's X-major rank order a row is a
// contiguous slab of the physical torus, e.g. a half XY-plane for the 32x16
// mesh on an 8x8x8 midplane — the mapping the paper uses).
//
//   Phase 1: every node combines, for each row peer w at column j, the m-byte
//            blocks destined to all Pvy nodes of column j into one
//            Pvy*m-byte message and sends it to w.  (Pvx-1 messages.)
//   Phase 2: after all row messages arrive, the node re-sorts the received
//            blocks by destination row (a gamma-cost memory copy) and sends
//            each column peer one Pvx*m-byte combined message. (Pvy-1.)
//
// The phases do not overlap at a node: phase 2 starts only after the node's
// phase-1 receives complete plus the copy delay. Messages use the combining
// runtime's small (8 B) protocol header but pay the message-passing alpha
// (~1170 cycles) per message — the trade the paper's Eq. 4 captures.
#pragma once

#include <cstdint>
#include <vector>

#include "src/coll/dest_order.hpp"
#include "src/coll/schedule.hpp"
#include "src/coll/strategy_client.hpp"
#include "src/runtime/packetizer.hpp"

namespace bgl::coll {

/// Which axis varies fastest when laying the virtual mesh over the torus.
/// The paper aligns rows with compact physical regions (half XY-planes on
/// the 8x8x8 midplane); kXYZ reproduces that for the natural rank order,
/// while the alternatives let the mapping ablation measure misalignment.
enum class MeshMapping : std::uint8_t { kXYZ, kZYX, kYXZ };

struct VmeshTuning {
  int pvx = 0;  // 0 = automatic near-square factorization (pvx >= pvy)
  int pvy = 0;
  MeshMapping mapping = MeshMapping::kXYZ;
  double alpha_msg_cycles = 1170.0;
  double gamma_ns_per_byte = 1.6;
  double clock_ghz = 0.7;
};

/// Near-square factorization P = pvx * pvy with pvx >= pvy; pvx is the
/// smallest divisor of P at or above sqrt(P).
std::pair<int, int> vmesh_factorize(std::int32_t nodes);

/// VMesh as a schedule builder: an explicit two-phase op list (combined row
/// messages, then barrier-gated combined column messages) with per-node
/// barrier counts, finalize lists and the fault-plan coverage mask all
/// precomputed. Executing the result via ScheduleExecutor is bit-identical
/// to VirtualMeshClient.
CommSchedule build_vmesh_schedule(const net::NetworkConfig& config,
                                  std::uint64_t msg_bytes,
                                  const VmeshTuning& tuning,
                                  const net::FaultPlan* faults = nullptr);

class VirtualMeshClient : public StrategyClient {
 public:
  VirtualMeshClient(const net::NetworkConfig& config, std::uint64_t msg_bytes,
                    const VmeshTuning& tuning, DeliveryMatrix* matrix,
                    const net::FaultPlan* faults = nullptr);

  bool next_packet(topo::Rank node, net::InjectDesc& out) override;
  void on_delivery(topo::Rank node, const net::Packet& packet) override;
  void on_timer(topo::Rank node, std::uint64_t cookie) override;

  /// A pair is reachable when its relay (the node in the source's row and
  /// the destination's column) is alive and both mesh legs have live paths.
  void mark_reachable(PairMask& mask) const override;

  int pvx() const { return pvx_; }
  int pvy() const { return pvy_; }

 private:
  // tag: [63:62] phase (1 or 2), [31:0] sending rank.
  static std::uint64_t make_tag(int phase, topo::Rank sender) {
    return (static_cast<std::uint64_t>(phase) << 62) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender));
  }

  struct NodeState {
    std::vector<topo::Rank> row_peers;  // shuffled, size pvx-1
    std::vector<topo::Rank> col_peers;  // shuffled, size pvy-1
    std::uint32_t send_peer = 0;        // index into the active peer list
    std::uint32_t send_pkt = 0;         // packet index within current message
    bool phase2_sending = false;        // phase-1 sends finished
    bool phase2_ready = false;          // receives + copy done
    bool done = false;
    std::uint64_t p1_packets_left = 0;  // phase-1 packets still expected
    std::vector<std::uint32_t> p1_msg_left;  // per row-peer column, for verify
    std::vector<std::uint32_t> p2_msg_left;  // per col-peer row, for verify
  };

  // The virtual mesh is laid over a *virtual* rank order (a relinearization
  // of the torus coordinates per `mapping`); vrank_of/rank_of translate.
  int col_of(topo::Rank r) const { return vrank_of(r) % pvx_; }
  int row_of(topo::Rank r) const { return vrank_of(r) / pvx_; }
  topo::Rank rank_at(int col, int row) const {
    return rank_of_vrank_[static_cast<std::size_t>(row * pvx_ + col)];
  }
  int vrank_of(topo::Rank r) const {
    return vrank_of_rank_[static_cast<std::size_t>(r)];
  }
  void build_mapping(const topo::Shape& shape);
  /// Alive endpoints + a live adaptive path (trivially true for from == to
  /// or without a fault plan).
  bool leg_ok(topo::Rank from, topo::Rank to) const;

  net::NetworkConfig config_;
  std::uint64_t msg_bytes_;
  VmeshTuning tuning_;
  int pvx_ = 1;
  int pvy_ = 1;
  double gamma_cycles_per_byte_;
  std::vector<rt::PacketSpec> row_packets_;  // phase-1 message shape
  std::vector<rt::PacketSpec> col_packets_;  // phase-2 message shape
  std::vector<NodeState> nodes_;
  std::vector<int> vrank_of_rank_;
  std::vector<topo::Rank> rank_of_vrank_;
};

}  // namespace bgl::coll
