// Strategy registry: one table mapping every concrete strategy to its name,
// family and schedule builder.
//
// The registry is the single source of truth consumed by run_alltoall (to
// build the schedule the executor interprets), the selector (to score
// candidates under faults), tools/schedule_lint and the example explorers —
// adding a strategy means adding one entry here plus its builder.
#pragma once

#include <string>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/coll/direct.hpp"
#include "src/coll/schedule.hpp"
#include "src/coll/tps.hpp"
#include "src/coll/vmesh.hpp"

namespace bgl::coll {

struct StrategyInfo {
  StrategyKind kind;
  const char* name;    // matches strategy_name(kind)
  bool direct_family;  // uses the direct-family tuning knobs (burst/order/...)
  const char* summary;
  CommSchedule (*build)(const net::NetworkConfig& net, std::uint64_t msg_bytes,
                        const AlltoallOptions& options, const net::FaultPlan* faults);
};

/// Every concrete strategy, in StrategyKind order (kBest excluded — it
/// resolves to one of these via the selector).
const std::vector<StrategyInfo>& strategy_registry();

/// nullptr when `kind` has no registry entry (kBest).
const StrategyInfo* find_strategy(StrategyKind kind);
/// Case-sensitive lookup by strategy_name(); nullptr when unknown.
const StrategyInfo* find_strategy(const std::string& name);

/// Tuning assembly shared by the registry builders and the legacy-client
/// path, so both construct byte-identical parameters from the same options.
DirectTuning direct_tuning_for(StrategyKind kind, const AlltoallOptions& options);
TpsTuning tps_tuning_for(const AlltoallOptions& options);
VmeshTuning vmesh_tuning_for(const AlltoallOptions& options);

/// Builds `kind`'s schedule from the options. `kind` must be a registry
/// entry (not kBest).
CommSchedule build_schedule(StrategyKind kind, const net::NetworkConfig& net,
                            std::uint64_t msg_bytes, const AlltoallOptions& options,
                            const net::FaultPlan* faults);

}  // namespace bgl::coll
