#include "src/coll/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/trace/csv.hpp"

namespace bgl::coll {

// --- CommSchedule -----------------------------------------------------------

bool CommSchedule::leg_ok(topo::Rank from, topo::Rank to,
                          const net::FaultPlan* faults,
                          net::FaultPlan::RouteMemo* memo) const {
  if (faults == nullptr || from == to) return true;
  return faults->pair_routable(from, to, net::RoutingMode::kAdaptive, memo);
}

topo::Rank CommSchedule::relay_for(topo::Rank src, topo::Rank dst,
                                   const net::FaultPlan* faults,
                                   net::FaultPlan::RouteMemo* memo) const {
  const auto axis = static_cast<std::size_t>(stream.relay_axis);
  topo::Coord c = torus.coord_of(src);
  c[stream.relay_axis] = torus.coord_of(dst)[stream.relay_axis];
  const topo::Rank canon = torus.rank_of(c);
  if (faults == nullptr || !faults->enabled()) return canon;
  if (faults->node_alive(canon) && leg_ok(src, canon, faults, memo) &&
      leg_ok(canon, dst, faults, memo)) {
    return canon;
  }
  // Degrade exactly like the legacy TPS client: the first live node on src's
  // relay-axis line with both legs routable (k == src's own coordinate
  // degenerates to a direct send).
  topo::Coord probe = torus.coord_of(src);
  for (int k = 0; k < shape.dim[axis]; ++k) {
    probe[stream.relay_axis] = k;
    const topo::Rank inter = torus.rank_of(probe);
    if (inter == canon) continue;
    if (faults->node_alive(inter) && leg_ok(src, inter, faults, memo) &&
        leg_ok(inter, dst, faults, memo)) {
      return inter;
    }
  }
  return -1;
}

bool CommSchedule::pair_covered(topo::Rank src, topo::Rank dst,
                                const net::FaultPlan* faults,
                                net::FaultPlan::RouteMemo* memo) const {
  if (src == dst) return false;
  if (faults == nullptr || !faults->enabled()) return true;
  if (form == StreamForm::kExplicit) {
    return covered.nodes() == 0 || covered.reachable(src, dst);
  }
  if (stream.relay == RelayRule::kLinearAxis) {
    return relay_for(src, dst, faults, memo) >= 0;
  }
  return faults->pair_routable(src, dst,
                               phases[stream.final_phase].mode, memo);
}

void CommSchedule::finalize_list(const SendOp& op, topo::Rank op_src,
                                 std::vector<topo::Rank>& out) const {
  out.clear();
  if ((op.flags & SendOp::kFinalizeSelf) != 0) {
    out.push_back(op_src);
    return;
  }
  for (std::int32_t i = 0; i < op.finalize_count; ++i) {
    out.push_back(finalize_pool[static_cast<std::size_t>(op.finalize_begin + i)]);
  }
}

std::int64_t CommSchedule::transfer_count(const net::FaultPlan* faults) const {
  std::int64_t count = 0;
  for_each_transfer(faults, [&](const Transfer&) { ++count; });
  return count;
}

std::string CommSchedule::to_csv(const net::FaultPlan* faults) const {
  std::string out = "transfer,phase,src,dst,relays,bytes,fifo_class\n";
  for_each_transfer(faults, [&](const Transfer& t) {
    std::string relays;
    for (int i = 0; i < t.relay_count; ++i) {
      if (i > 0) relays += ';';
      relays += std::to_string(t.relays[static_cast<std::size_t>(i)]);
    }
    out += trace::csv_line({std::to_string(t.id), std::to_string(t.phase),
                            std::to_string(t.src), std::to_string(t.dst), relays,
                            std::to_string(t.bytes), std::to_string(t.fifo_class)});
    out += '\n';
  });
  return out;
}

std::string CommSchedule::to_json(const net::FaultPlan* faults) const {
  std::string out = "{\n";
  out += "  \"shape\": \"" + shape.to_string() + "\",\n";
  out += "  \"msg_bytes\": " + std::to_string(msg_bytes) + ",\n";
  out += "  \"form\": \"";
  out += (form == StreamForm::kOrdered ? "ordered" : "explicit");
  out += "\",\n";
  out += "  \"phases\": " + std::to_string(phases.size()) + ",\n";
  out += "  \"fifo_classes\": " + std::to_string(fifo_classes.size()) + ",\n";
  out += "  \"transfers\": [";
  bool first = true;
  for_each_transfer(faults, [&](const Transfer& t) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(t.id) + ", \"phase\": " +
           std::to_string(t.phase) + ", \"src\": " + std::to_string(t.src) +
           ", \"dst\": " + std::to_string(t.dst) + ", \"relays\": [";
    for (int i = 0; i < t.relay_count; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(t.relays[static_cast<std::size_t>(i)]);
    }
    out += "], \"bytes\": " + std::to_string(t.bytes) + ", \"fifo_class\": " +
           std::to_string(t.fifo_class) + "}";
  });
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

// --- ScheduleExecutor -------------------------------------------------------

std::uint64_t ScheduleExecutor::make_tag(Kind kind, topo::Rank orig_src,
                                         topo::Rank final_dst, std::uint32_t aux) {
  return (static_cast<std::uint64_t>(kind) << 62) |
         (static_cast<std::uint64_t>(aux & 0x3fffU) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(orig_src) & 0xffffffU)
          << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(final_dst) & 0xffffffU));
}

std::uint64_t ScheduleExecutor::make_combined_tag(std::uint32_t op_index) {
  return (static_cast<std::uint64_t>(kCombined) << 62) |
         static_cast<std::uint64_t>(op_index);
}

ScheduleExecutor::ScheduleExecutor(const net::NetworkConfig& config,
                                   CommSchedule schedule, DeliveryMatrix* matrix,
                                   const net::FaultPlan* faults)
    : config_(config), schedule_(std::move(schedule)) {
  matrix_ = matrix;
  faults_ = faults;
  assert(!schedule_.phases.empty());
  assert(!schedule_.fifo_classes.empty());

  const auto nodes = static_cast<std::size_t>(schedule_.shape.nodes());
  // Barrier gating is an explicit-form construct: emission is gated per op,
  // and arming counts kCombined arrivals of the preceding phase. Validate the
  // barrier table up front — a mis-ordered or mis-sized table would otherwise
  // deadlock or index out of range mid-run.
  if (!schedule_.barriers.empty()) {
    if (schedule_.form != StreamForm::kExplicit) {
      throw std::invalid_argument("barriers require an explicit-form schedule");
    }
    int prev_phase = 0;
    for (const BarrierSpec& barrier : schedule_.barriers) {
      if (barrier.phase <= prev_phase ||
          barrier.phase >= static_cast<int>(schedule_.phases.size())) {
        throw std::invalid_argument(
            "schedule barriers must be in strictly increasing phase order, "
            "each gating a phase after the first");
      }
      if (barrier.expected.size() != nodes || barrier.compute_cycles.size() != nodes) {
        throw std::invalid_argument("barrier vectors not sized to the node count");
      }
      prev_phase = barrier.phase;
    }
  }
  barrier_of_phase_.assign(schedule_.phases.size(), -1);
  for (std::size_t g = 0; g < schedule_.barriers.size(); ++g) {
    barrier_of_phase_[static_cast<std::size_t>(schedule_.barriers[g].phase)] =
        static_cast<std::int32_t>(g);
  }
  const bool credits = schedule_.credits.window > 0 &&
                       schedule_.form == StreamForm::kOrdered &&
                       schedule_.stream.relay == RelayRule::kLinearAxis;
  const int relay_extent =
      schedule_.shape.dim[static_cast<std::size_t>(schedule_.stream.relay_axis)];
  nodes_.resize(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    NodeState& s = nodes_[n];
    s.fifo_rr.assign(schedule_.fifo_classes.size(), 0);
    if (schedule_.form == StreamForm::kExplicit) {
      s.op = schedule_.op_begin[n];
    }
    if (credits) {
      s.outstanding.assign(static_cast<std::size_t>(relay_extent), 0);
      s.to_credit.assign(static_cast<std::size_t>(relay_extent), 0);
    }
    s.barrier_open.resize(schedule_.barriers.size());
    s.barrier_left.resize(schedule_.barriers.size());
    for (std::size_t g = 0; g < schedule_.barriers.size(); ++g) {
      s.barrier_left[g] = schedule_.barriers[g].expected[n];
      s.barrier_open[g] = (s.barrier_left[g] == 0) ? 1 : 0;
    }
  }
  if (schedule_.form == StreamForm::kExplicit) {
    combined_remaining_.assign(schedule_.ops.size(), 0);
    // Pre-packetize payload overrides so every cursor and the delivery
    // accounting agree on each op's wire shape. An override names exactly
    // the bytes of one pair's message, so it is incompatible with combined
    // multi-origin finalize lists (which share the phase's full shape).
    bool any_override = false;
    for (const SendOp& op : schedule_.ops) {
      if (op.payload_bytes != 0) {
        any_override = true;
        if ((op.flags & SendOp::kFinalizeSelf) == 0 && op.finalize_count != 1) {
          throw std::invalid_argument(
              "SendOp payload override requires a single finalize origin");
        }
      }
    }
    if (any_override) {
      op_packets_.resize(schedule_.ops.size());
      for (std::size_t i = 0; i < schedule_.ops.size(); ++i) {
        const SendOp& op = schedule_.ops[i];
        if (op.payload_bytes != 0) {
          op_packets_[i] = rt::packetize(
              op.payload_bytes,
              schedule_.phases[op.phase].override_format);
        }
      }
    }
  }
  init_extra_deps();
}

const std::vector<rt::PacketSpec>& ScheduleExecutor::op_message(
    std::uint32_t op_index) const {
  if (op_index < op_packets_.size() && !op_packets_[op_index].empty()) {
    return op_packets_[op_index];
  }
  return schedule_.phases[schedule_.ops[op_index].phase].packets;
}

void ScheduleExecutor::init_extra_deps() {
  if (schedule_.extra_deps.empty()) return;
  // Dependency edges name transfer ids, and a transfer only has a gateable
  // emission point in the ordered relay-free form (one message per (src,
  // dst) pair, emitted at one cursor position). Other forms must be rejected
  // here — the declared constraint would otherwise be silently ignored.
  if (schedule_.form != StreamForm::kOrdered ||
      schedule_.stream.relay != RelayRule::kNone) {
    throw std::invalid_argument(
        "extra_deps are executable only on ordered relay-free schedules");
  }
  std::vector<std::uint64_t> keys;  // transfer id -> pair key
  schedule_.for_each_transfer(
      faults_, [&](const Transfer& t) { keys.push_back(pair_key(t.src, t.dst)); });
  const auto count = static_cast<std::int64_t>(keys.size());
  for (const auto& [before, after] : schedule_.extra_deps) {
    if (before < 0 || before >= count || after < 0 || after >= count) {
      throw std::invalid_argument("extra_deps transfer id out of range");
    }
    if (before == after) {
      throw std::invalid_argument("extra_deps self-dependency");
    }
    ++dep_gates_[keys[static_cast<std::size_t>(after)]];
    DepWatch& watch = dep_watch_[keys[static_cast<std::size_t>(before)]];
    watch.bytes_left = static_cast<std::int64_t>(schedule_.msg_bytes);
    watch.release.push_back(keys[static_cast<std::size_t>(after)]);
  }
}

void ScheduleExecutor::note_dep_delivery(topo::Rank orig_src, topo::Rank dst,
                                         std::uint32_t payload_bytes) {
  const auto it = dep_watch_.find(pair_key(orig_src, dst));
  if (it == dep_watch_.end()) return;
  it->second.bytes_left -= payload_bytes;
  if (it->second.bytes_left > 0) return;
  for (const std::uint64_t gated : it->second.release) {
    const auto gate = dep_gates_.find(gated);
    assert(gate != dep_gates_.end() && gate->second > 0);
    if (--gate->second == 0) {
      dep_gates_.erase(gate);
      // The waiting sender parked in emit_ordered; re-ask its core.
      fabric_->wake_cpu(static_cast<topo::Rank>(gated >> 32));
    }
  }
  dep_watch_.erase(it);
}

std::uint8_t ScheduleExecutor::pick_fifo(NodeState& s, std::uint8_t fifo_class,
                                         std::uint32_t peer_index,
                                         std::uint32_t pkt_index) {
  const FifoClass& fc = schedule_.fifo_classes[fifo_class];
  const int count = fc.resolved_count(config_.injection_fifos);
  if (fc.policy == FifoPolicy::kPositional) {
    return static_cast<std::uint8_t>(fc.begin + (peer_index + pkt_index) %
                                                    static_cast<std::uint32_t>(count));
  }
  std::uint8_t& rr = s.fifo_rr[fifo_class];
  const auto fifo = static_cast<std::uint8_t>(fc.begin + (rr % count));
  ++rr;
  return fifo;
}

bool ScheduleExecutor::next_packet(topo::Rank node, net::InjectDesc& out) {
  NodeState& s = nodes_[static_cast<std::size_t>(node)];

  // 1) Credits unblock remote senders; they are tiny — send them first.
  if (!s.credit_queue.empty()) {
    const topo::Rank src = s.credit_queue.front();
    s.credit_queue.pop_front();
    const PhaseSpec& phase = schedule_.phases[schedule_.stream.relayed_phase];
    out.dst = src;
    out.tag = make_tag(kCredit, node, src,
                       static_cast<std::uint32_t>(schedule_.credits.batch));
    out.payload_bytes = 0;
    out.wire_chunks = 1;
    out.mode = net::RoutingMode::kAdaptive;
    out.fifo = pick_fifo(s, phase.fifo_class, 0, 0);
    out.extra_cpu_cycles = schedule_.credits.credit_cpu_cycles;
    credit_packets_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // 2) Relayed traffic waiting to be re-injected toward its destination.
  if (!s.forwards.empty()) {
    const Forward f = s.forwards.front();
    s.forwards.pop_front();
    const PhaseSpec& phase = schedule_.phases[schedule_.stream.final_phase];
    out.dst = f.final_dst;
    out.tag = make_tag(kFinal, f.orig_src, f.final_dst);
    out.payload_bytes = f.payload_bytes;
    out.wire_chunks = f.chunks;
    out.mode = phase.mode;
    out.fifo = pick_fifo(s, phase.fifo_class, 0, 0);
    out.extra_cpu_cycles = phase.forward_cpu_cycles;
    return true;
  }

  // 3) The node's own statically-scheduled stream.
  return schedule_.form == StreamForm::kOrdered ? emit_ordered(node, s, out)
                                                : emit_explicit(node, s, out);
}

bool ScheduleExecutor::emit_ordered(topo::Rank node, NodeState& s,
                                    net::InjectDesc& out) {
  if (s.done) return false;
  const OrderedStream& st = schedule_.stream;
  DestOrder& order = schedule_.orders[static_cast<std::size_t>(node)];

  int scanned = 0;
  while (true) {
    if (s.position >= order.positions()) {
      s.position = 0;
      s.burst_sent = 0;
      if (++s.round >= st.rounds) {
        s.done = true;
        return false;
      }
    }
    const topo::Rank dst = order.at(s.position);
    if (dst < 0) {  // affine-mode self slot
      ++s.position;
      continue;
    }

    topo::Rank wire_dst = dst;
    bool store_forward = false;
    std::uint8_t phase_index = st.final_phase;
    if (st.relay == RelayRule::kLinearAxis) {
      // Route the routability probes through the executing slab's memo:
      // under --sim-threads the plan's internal cache is shared state.
      const topo::Rank inter = schedule_.relay_for(
          node, dst, faults_,
          fabric_ != nullptr ? fabric_->route_memo_scratch() : nullptr);
      if (inter < 0) {  // unreachable under the fault plan: skip the pair
        ++s.position;
        continue;
      }
      store_forward = (inter != node) && (inter != dst);

      if (store_forward && schedule_.credits.window > 0) {
        const auto lin = static_cast<std::size_t>(
            schedule_.torus.coord_of(inter)[st.relay_axis]);
        if (s.outstanding[lin] >= schedule_.credits.window) {
          // Blocked on credits: defer this destination if we can find another.
          if (order.swappable() && scanned < 64 &&
              s.position + 1 < order.positions()) {
            const std::uint32_t probe =
                s.position + 1 +
                static_cast<std::uint32_t>(scanned) %
                    (order.positions() - s.position - 1);
            order.swap(s.position, probe);
            ++scanned;
            continue;
          }
          return false;  // fully blocked; a credit delivery wakes us
        }
        s.outstanding[lin] += 1;
      }
      const bool relayed_leg = (inter != node);
      wire_dst = relayed_leg ? inter : dst;
      phase_index = relayed_leg ? st.relayed_phase : st.final_phase;
    } else if (faults_ != nullptr &&
               !faults_->pair_routable(
                   node, dst, schedule_.phases[st.final_phase].mode,
                   fabric_ != nullptr ? fabric_->route_memo_scratch()
                                      : nullptr)) {
      ++s.position;  // no live path will ever exist; skip the destination
      continue;
    }

    if (!dep_gates_.empty()) {
      const auto gate = dep_gates_.find(pair_key(node, dst));
      if (gate != dep_gates_.end() && gate->second > 0) {
        // This transfer waits on an extra_deps edge: park the whole stream
        // (ordered semantics) until note_dep_delivery re-wakes the core.
        return false;
      }
    }

    const PhaseSpec& phase = schedule_.phases[phase_index];
    const std::uint32_t pkt_index =
        s.round * static_cast<std::uint32_t>(st.burst) + s.burst_sent;
    if (pkt_index >= phase.packets.size()) {  // message shorter than burst*rounds
      ++s.position;
      s.burst_sent = 0;
      continue;
    }

    const rt::PacketSpec& spec = phase.packets[pkt_index];
    out.dst = wire_dst;
    out.tag = make_tag(store_forward ? kStoreForward : kFinal, node, dst);
    out.payload_bytes = spec.payload_bytes;
    out.wire_chunks = spec.wire_chunks;
    out.mode = phase.mode;
    out.fifo = pick_fifo(s, phase.fifo_class, 0, 0);

    double extra =
        phase.per_packet_cycles + phase.pace_extra_per_chunk * spec.wire_chunks;
    if (pkt_index == 0) extra += phase.first_packet_extra_cycles;
    out.extra_cpu_cycles = static_cast<std::uint32_t>(std::lround(extra));

    if (++s.burst_sent >= static_cast<std::uint32_t>(st.burst) ||
        pkt_index + 1 >= phase.packets.size()) {
      s.burst_sent = 0;
      ++s.position;
    }
    return true;
  }
}

bool ScheduleExecutor::emit_explicit(topo::Rank node, NodeState& s,
                                     net::InjectDesc& out) {
  if (s.done) return false;
  const std::uint32_t end = schedule_.op_begin[static_cast<std::size_t>(node) + 1];
  if (s.op >= end) {
    s.done = true;
    return false;
  }
  const SendOp& op = schedule_.ops[s.op];
  if (const std::int32_t gate = barrier_of_phase_[op.phase];
      gate >= 0 && !s.barrier_open[static_cast<std::size_t>(gate)]) {
    return false;  // the barrier timer will wake us
  }
  const PhaseSpec& phase = schedule_.phases[op.phase];
  const std::vector<rt::PacketSpec>& message = op_message(s.op);
  const rt::PacketSpec& spec = message[s.pkt];
  out.dst = op.dst;
  out.tag = make_combined_tag(s.op);
  out.payload_bytes = spec.payload_bytes;
  out.wire_chunks = spec.wire_chunks;
  out.mode = phase.mode;
  out.fifo = pick_fifo(s, phase.fifo_class, op.peer_index, s.pkt);

  double extra =
      phase.per_packet_cycles + phase.pace_extra_per_chunk * spec.wire_chunks;
  if (s.pkt == 0) extra += phase.first_packet_extra_cycles;
  out.extra_cpu_cycles = static_cast<std::uint32_t>(std::lround(extra));

  if (++s.pkt >= message.size()) {
    s.pkt = 0;
    ++s.op;
  }
  return true;
}

void ScheduleExecutor::on_delivery(topo::Rank node, const net::Packet& packet) {
  const auto kind = static_cast<Kind>(packet.tag >> 62);
  NodeState& s = nodes_[static_cast<std::size_t>(node)];

  switch (kind) {
    case kFinal: {
      const auto orig_src = static_cast<topo::Rank>((packet.tag >> 24) & 0xffffffU);
      note_final_delivery();
      if (matrix_ != nullptr) matrix_->record(orig_src, node, packet.payload_bytes);
      if (!dep_watch_.empty()) note_dep_delivery(orig_src, node, packet.payload_bytes);
      return;
    }
    case kStoreForward: {
      const auto orig_src = static_cast<topo::Rank>((packet.tag >> 24) & 0xffffffU);
      const auto final_dst = static_cast<topo::Rank>(packet.tag & 0xffffffU);
      assert(final_dst != node);
      s.forwards.push_back(
          Forward{final_dst, orig_src, packet.payload_bytes, packet.chunks});
      const std::size_t backlog = s.forwards.size();
      std::size_t seen = max_forward_backlog_.load(std::memory_order_relaxed);
      while (seen < backlog && !max_forward_backlog_.compare_exchange_weak(
                                   seen, backlog, std::memory_order_relaxed)) {
      }
      if (schedule_.credits.window > 0) {
        const auto lin = static_cast<std::size_t>(
            schedule_.torus.coord_of(orig_src)[schedule_.stream.relay_axis]);
        if (++s.to_credit[lin] >= schedule_.credits.batch) {
          s.to_credit[lin] -= schedule_.credits.batch;
          s.credit_queue.push_back(orig_src);
        }
      }
      fabric_->wake_cpu(node);
      return;
    }
    case kCredit: {
      const auto lin = static_cast<std::size_t>(
          schedule_.torus.coord_of(packet.src)[schedule_.stream.relay_axis]);
      const auto released = static_cast<std::int32_t>((packet.tag >> 48) & 0x3fffU);
      s.outstanding[lin] -= released;
      fabric_->wake_cpu(node);
      return;
    }
    case kCombined: {
      const auto op_index = static_cast<std::uint32_t>(packet.tag & 0xffffffffU);
      const SendOp& op = schedule_.ops[op_index];
      note_final_delivery();
      if (matrix_ != nullptr) {
        // Seeded on the message's first packet; an op's deliveries all land
        // at its one destination, so the cell is never shared across slabs.
        std::uint32_t& left = combined_remaining_[op_index];
        if (left == 0) {
          left = static_cast<std::uint32_t>(op_message(op_index).size());
        }
        assert(left > 0);
        if (--left == 0) {
          const std::uint64_t bytes =
              op.payload_bytes != 0 ? op.payload_bytes : schedule_.msg_bytes;
          std::vector<topo::Rank> finalize;
          schedule_.finalize_list(op, packet.src, finalize);
          for (const topo::Rank orig : finalize) {
            matrix_->record(orig, node, bytes);
          }
        }
      }
      if (const std::size_t next = static_cast<std::size_t>(op.phase) + 1;
          next < barrier_of_phase_.size() && barrier_of_phase_[next] >= 0) {
        const auto g = static_cast<std::size_t>(barrier_of_phase_[next]);
        assert(s.barrier_left[g] > 0);
        if (--s.barrier_left[g] == 0) {
          fabric_->schedule_timer(
              node,
              schedule_.barriers[g].compute_cycles[static_cast<std::size_t>(node)],
              /*cookie=*/g + 1);
        }
      }
      return;
    }
  }
  assert(false && "bad schedule-executor tag");
}

void ScheduleExecutor::on_timer(topo::Rank node, std::uint64_t cookie) {
  assert(cookie >= 1 && cookie <= schedule_.barriers.size());
  const auto g = static_cast<std::size_t>(cookie - 1);
  NodeState& s = nodes_[static_cast<std::size_t>(node)];
  s.barrier_open[g] = 1;
  fabric_->wake_cpu(node);
}

void ScheduleExecutor::mark_reachable(PairMask& mask) const {
  if (faults_ == nullptr || !faults_->enabled()) return;
  for (topo::Rank s = 0; s < mask.nodes(); ++s) {
    for (topo::Rank d = 0; d < mask.nodes(); ++d) {
      if (s != d && !schedule_.pair_covered(s, d, faults_)) {
        mask.set_unreachable(s, d);
      }
    }
  }
}

void ScheduleExecutor::collect_stranded(const net::FaultPlan& plan,
                                        std::vector<StrandedRelay>& out) const {
  if (!plan.enabled() || plan.dead_node_count() == 0) return;
  std::vector<topo::Rank> origs;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const auto rank = static_cast<topo::Rank>(n);
    if (plan.node_alive(rank)) continue;
    const NodeState& s = nodes_[n];
    // Ordered relaying: custody sits in the dead node's forward queue.
    for (const Forward& f : s.forwards) {
      out.push_back(StrandedRelay{f.orig_src, f.final_dst, f.payload_bytes});
    }
    if (schedule_.form != StreamForm::kExplicit) continue;
    // Explicit combining: custody is implicit in the dead node's unsent ops.
    // Only ops whose barrier opened are counted — the barrier certifies the
    // previous stage's blocks had all arrived, so the node really held them.
    // Earlier or ungated phases carry the node's own data, not custody.
    for (std::uint32_t i = std::max(s.op, schedule_.op_begin[n]);
         i < schedule_.op_begin[n + 1]; ++i) {
      const SendOp& op = schedule_.ops[i];
      const std::int32_t gate = barrier_of_phase_[op.phase];
      if (gate < 0 || !s.barrier_open[static_cast<std::size_t>(gate)]) continue;
      const std::uint64_t bytes =
          op.payload_bytes != 0 ? op.payload_bytes : schedule_.msg_bytes;
      schedule_.finalize_list(op, rank, origs);
      for (const topo::Rank orig : origs) {
        if (orig != rank) out.push_back(StrandedRelay{orig, op.dst, bytes});
      }
    }
  }
}

std::uint64_t ScheduleExecutor::stranded_relay_bytes(const net::FaultPlan& plan) const {
  std::vector<StrandedRelay> records;
  collect_stranded(plan, records);
  std::uint64_t bytes = 0;
  for (const StrandedRelay& r : records) bytes += r.payload_bytes;
  return bytes;
}

}  // namespace bgl::coll
