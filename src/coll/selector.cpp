#include "src/coll/selector.hpp"

#include <algorithm>
#include <exception>

#include "src/coll/registry.hpp"
#include "src/model/predict.hpp"

namespace bgl::coll {

namespace {

Selection paper_rule(const topo::Shape& shape, std::uint64_t msg_bytes) {
  if (msg_bytes <= kShortMessageBytes && shape.nodes() >= kVmeshMinNodes) {
    return Selection{StrategyKind::kVirtualMesh,
                     "short message at or below the 32-64 B change-over on a large partition",
                     {}};
  }
  if (shape.symmetric() && shape.full_torus()) {
    return Selection{StrategyKind::kAdaptiveRandom,
                     "symmetric torus: randomized adaptive direct reaches ~99% of peak",
                     {}};
  }
  return Selection{StrategyKind::kTwoPhase,
                   "asymmetric partition: TPS avoids adaptive-routing congestion",
                   {}};
}

/// Healthy closed-form estimate (Eqs. 3/2/4) scaled by the live-link
/// fraction — a crude but monotone degraded-peak proxy for tie-breaking.
double degraded_estimate_us(StrategyKind kind, const topo::Shape& shape,
                            std::uint64_t msg_bytes, const net::FaultPlan& faults) {
  double healthy_us;
  switch (kind) {
    case StrategyKind::kVirtualMesh: {
      const auto [pvx, pvy] =
          vmesh_factorize(static_cast<std::int32_t>(shape.nodes()));
      healthy_us = model::vmesh_aa_time_us(shape, pvx, pvy, msg_bytes);
      break;
    }
    case StrategyKind::kTwoPhase:
      healthy_us = model::peak_aa_time_us(shape, msg_bytes);
      break;
    default:
      healthy_us = model::direct_aa_time_us(shape, msg_bytes);
      break;
  }
  const double total_links =
      static_cast<double>(shape.nodes()) * shape.directions();
  const double dead_links =
      static_cast<double>(faults.dead_link_count()) +
      static_cast<double>(faults.dead_node_count()) * shape.directions();
  const double live_fraction =
      std::max(0.1, 1.0 - dead_links / std::max(1.0, total_links));
  return healthy_us / live_fraction;
}

CandidateScore score_candidate(StrategyKind kind, const topo::Shape& shape,
                               std::uint64_t msg_bytes, const net::FaultPlan& faults) {
  CandidateScore score;
  score.kind = kind;
  const auto nodes = static_cast<std::int64_t>(shape.nodes());
  score.total_pairs = static_cast<std::uint64_t>(nodes) *
                      static_cast<std::uint64_t>(nodes - 1);
  score.degraded_est_us = degraded_estimate_us(kind, shape, msg_bytes, faults);

  // Coverage comes from the schedule IR — the same pair_covered logic the
  // linter certifies against the executor's transfer enumeration. Coverage
  // is seed-independent, so a default config with this shape suffices. A
  // builder that rejects the configuration (e.g. an unsupported shape
  // dimensionality) scores zero coverage instead of aborting selection.
  net::NetworkConfig net;
  net.shape = shape;
  AlltoallOptions options;
  options.msg_bytes = msg_bytes;
  options.net = net;
  try {
    const CommSchedule sched = build_schedule(kind, net, msg_bytes, options, &faults);
    for (topo::Rank s = 0; s < shape.nodes(); ++s) {
      for (topo::Rank d = 0; d < shape.nodes(); ++d) {
        if (s != d && sched.pair_covered(s, d, &faults)) ++score.covered_pairs;
      }
    }
  } catch (const std::exception& e) {
    score.eligible = false;
    score.ineligible_reason = e.what();
    score.covered_pairs = 0;
  }
  return score;
}

}  // namespace

Selection select_strategy(const topo::Shape& shape, std::uint64_t msg_bytes,
                          const net::FaultPlan* faults) {
  Selection pick = paper_rule(shape, msg_bytes);
  const bool permanent_faults = faults != nullptr && faults->enabled() &&
                                (faults->dead_link_count() > 0 ||
                                 faults->dead_node_count() > 0);
  if (!permanent_faults) return pick;

  if (shape.nodes() > kSelectorScoreLimit) {
    // Too large to score pair coverage; AR's per-packet adaptive rerouting
    // is the robust default around failed hardware.
    pick.kind = StrategyKind::kAdaptiveRandom;
    pick.rationale = "permanent faults on a partition too large to score: "
                     "fall back to direct AR, which reroutes adaptively";
    return pick;
  }

  // Score the paper pick against the robust alternatives on IR-computed
  // coverage; break coverage ties on the degraded time estimate.
  std::vector<StrategyKind> kinds{pick.kind};
  for (const StrategyKind alt :
       {StrategyKind::kAdaptiveRandom, StrategyKind::kTwoPhase}) {
    if (std::find(kinds.begin(), kinds.end(), alt) == kinds.end()) {
      kinds.push_back(alt);
    }
  }
  if (msg_bytes <= kShortMessageBytes && shape.nodes() >= kVmeshMinNodes &&
      std::find(kinds.begin(), kinds.end(), StrategyKind::kVirtualMesh) ==
          kinds.end()) {
    kinds.push_back(StrategyKind::kVirtualMesh);
  }
  for (const StrategyKind kind : kinds) {
    pick.candidates.push_back(score_candidate(kind, shape, msg_bytes, *faults));
  }
  std::stable_sort(pick.candidates.begin(), pick.candidates.end(),
                   [](const CandidateScore& a, const CandidateScore& b) {
                     if (a.covered_pairs != b.covered_pairs) {
                       return a.covered_pairs > b.covered_pairs;
                     }
                     return a.degraded_est_us < b.degraded_est_us;
                   });
  const CandidateScore& best = pick.candidates.front();
  pick.kind = best.kind;
  pick.rationale = "permanent faults: " + strategy_name(best.kind) + " covers " +
                   std::to_string(best.covered_pairs) + "/" +
                   std::to_string(best.total_pairs) +
                   " pairs with the best degraded-time estimate";
  return pick;
}

}  // namespace bgl::coll
