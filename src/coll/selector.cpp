#include "src/coll/selector.hpp"

namespace bgl::coll {

Selection select_strategy(const topo::Shape& shape, std::uint64_t msg_bytes) {
  if (msg_bytes <= kShortMessageBytes && shape.nodes() >= kVmeshMinNodes) {
    return Selection{StrategyKind::kVirtualMesh,
                     "short message at or below the 32-64 B change-over on a large partition"};
  }
  if (shape.symmetric() && shape.full_torus()) {
    return Selection{StrategyKind::kAdaptiveRandom,
                     "symmetric torus: randomized adaptive direct reaches ~99% of peak"};
  }
  return Selection{StrategyKind::kTwoPhase,
                   "asymmetric partition: TPS avoids adaptive-routing congestion"};
}

}  // namespace bgl::coll
