#include "src/coll/selector.hpp"

namespace bgl::coll {

Selection select_strategy(const topo::Shape& shape, std::uint64_t msg_bytes,
                          const net::FaultPlan* faults) {
  Selection pick;
  if (msg_bytes <= kShortMessageBytes && shape.nodes() >= kVmeshMinNodes) {
    pick = Selection{StrategyKind::kVirtualMesh,
                     "short message at or below the 32-64 B change-over on a large partition"};
  } else if (shape.symmetric() && shape.full_torus()) {
    pick = Selection{StrategyKind::kAdaptiveRandom,
                     "symmetric torus: randomized adaptive direct reaches ~99% of peak"};
  } else {
    pick = Selection{StrategyKind::kTwoPhase,
                     "asymmetric partition: TPS avoids adaptive-routing congestion"};
  }
  if (faults != nullptr && faults->enabled() && pick.kind != StrategyKind::kAdaptiveRandom &&
      (faults->dead_link_count() > 0 || faults->dead_node_count() > 0)) {
    pick.kind = StrategyKind::kAdaptiveRandom;
    pick.rationale = "permanent faults strand the indirect schedules' relays: "
                     "fall back to direct AR, which reroutes adaptively";
  }
  return pick;
}

}  // namespace bgl::coll
