// Two Phase Schedule (TPS) indirect all-to-all (paper Section 4.1).
//
// Phase 1 sends every packet along a chosen "linear" dimension to the
// intermediate node that shares the final destination's linear coordinate
// (and the source's planar coordinates). Phase 2 forwards from the
// intermediate across the remaining two "planar" dimensions. The phases are
// pipelined: forwarding starts as soon as phase-1 packets arrive, and each
// phase has its own reserved injection-FIFO group so a linear packet is
// never queued behind a planar packet (or vice versa). Both phases use
// adaptive routing on the dynamic VCs.
//
// Linear-dimension choice (paper rule): the dimension whose removal leaves a
// symmetric plane, if one exists; otherwise the longest dimension. For a
// cube every choice is equivalent by symmetry (the paper lists Z for 8^3 and
// X for 16^3); we use Z.
//
// The optional credit-based flow control implements the paper's Section 5
// future work: a source may have at most `credit_window` un-forwarded
// packets at any intermediate; intermediates return one 32-byte credit
// packet per `credit_batch` forwards. This bounds intermediate memory at
// the cost of ~1 extra packet per `credit_batch` data packets.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/coll/dest_order.hpp"
#include "src/coll/schedule.hpp"
#include "src/coll/strategy_client.hpp"
#include "src/runtime/packetizer.hpp"

namespace bgl::coll {

struct TpsTuning {
  int linear_axis = -1;  // -1 = paper's selection rule
  double alpha_cycles = 450.0;
  std::uint32_t forward_cpu_cycles = 200;
  bool reserved_fifos = true;
  int credit_window = 0;  // phase-1 packets in flight per (src, intermediate); 0 = off
  int credit_batch = 10;
  std::uint32_t credit_cpu_cycles = 50;
};

/// The paper's linear-dimension selection rule for `shape`.
int choose_linear_axis(const topo::Shape& shape);

/// TPS as a schedule builder: two pipelined phases (linear legs, planar
/// forwards) with reserved FIFO classes, a kLinearAxis relay rule and the
/// optional credit flow control. Executing the result via ScheduleExecutor is
/// bit-identical to TwoPhaseClient.
CommSchedule build_tps_schedule(const net::NetworkConfig& config,
                                std::uint64_t msg_bytes, const TpsTuning& tuning);

class TwoPhaseClient : public StrategyClient {
 public:
  TwoPhaseClient(const net::NetworkConfig& config, std::uint64_t msg_bytes,
                 const TpsTuning& tuning, DeliveryMatrix* matrix,
                 const net::FaultPlan* faults = nullptr);

  bool next_packet(topo::Rank node, net::InjectDesc& out) override;
  void on_delivery(topo::Rank node, const net::Packet& packet) override;

  /// A pair is reachable when some intermediate on the source's linear-axis
  /// line (including the degenerate direct send) has both legs live.
  void mark_reachable(PairMask& mask) const override;

  int linear_axis() const { return linear_axis_; }

  /// Peak packets queued for forwarding at any single intermediate node —
  /// the memory cost the Section 5 credit flow control bounds.
  std::size_t max_forward_backlog() const { return max_forward_backlog_; }
  std::uint64_t credit_packets_sent() const { return credit_packets_; }

  /// Pipelining evidence (paper Section 4.1: "this is done in a pipelined
  /// fashion allowing Phase 1 and Phase 2 to overlap"): the first phase-2
  /// forward is injected long before the last phase-1 packet is sent.
  net::Tick first_forward_cycles() const { return first_forward_; }
  net::Tick last_stream_packet_cycles() const { return last_stream_packet_; }

 private:
  enum Kind : std::uint64_t { kStoreForward = 0, kFinal = 1, kCredit = 2 };
  static std::uint64_t make_tag(Kind kind, topo::Rank orig_src, topo::Rank final_dst,
                                std::uint32_t aux = 0);

  struct Forward {
    topo::Rank final_dst;
    topo::Rank orig_src;
    std::uint32_t payload_bytes;
    std::uint16_t chunks;
  };

  struct NodeState {
    DestOrder order;
    std::uint32_t position = 0;
    std::uint32_t round = 0;
    bool stream_done = false;
    std::deque<Forward> forwards;
    std::uint8_t fifo_rr1 = 0;  // phase-1 group rotation
    std::uint8_t fifo_rr2 = 0;  // phase-2 group rotation
    // Credit flow control (indexed by the peer's linear coordinate).
    std::vector<std::int32_t> outstanding;    // as source: un-credited sends
    std::vector<std::int32_t> to_credit;      // as intermediate: forwards since credit
    std::deque<topo::Rank> credit_queue;      // credit packets to send
  };

  topo::Rank intermediate_for(topo::Rank src, topo::Rank dst) const;
  /// Both-endpoints-alive + live-minimal-path check (trivially true for a
  /// degenerate leg from a node to itself, or without a fault plan).
  bool leg_ok(topo::Rank from, topo::Rank to) const;
  /// The canonical intermediate when its legs are live; otherwise the first
  /// node on src's linear-axis line with both legs live (k = src's own
  /// coordinate degenerates to a direct send); -1 when the pair is
  /// unreachable. Deterministic, so mark_reachable matches the schedule.
  topo::Rank pick_intermediate(topo::Rank src, topo::Rank dst) const;
  std::uint8_t pick_phase_fifo(NodeState& s, bool phase1);
  bool emit_stream_packet(topo::Rank node, NodeState& s, net::InjectDesc& out);

  net::NetworkConfig config_;
  topo::Torus torus_;
  std::uint64_t msg_bytes_;
  TpsTuning tuning_;
  int linear_axis_;
  int linear_extent_;
  std::vector<rt::PacketSpec> packets_;
  std::vector<NodeState> nodes_;
  std::size_t max_forward_backlog_ = 0;
  std::uint64_t credit_packets_ = 0;
  net::Tick first_forward_ = 0;
  net::Tick last_stream_packet_ = 0;
};

}  // namespace bgl::coll
