// Two Phase Schedule (TPS) indirect all-to-all (paper Section 4.1).
//
// Phase 1 sends every packet along a chosen "linear" dimension to the
// intermediate node that shares the final destination's linear coordinate
// (and the source's planar coordinates). Phase 2 forwards from the
// intermediate across the remaining "planar" dimensions. The phases are
// pipelined: forwarding starts as soon as phase-1 packets arrive, and each
// phase has its own reserved injection-FIFO group so a linear packet is
// never queued behind a planar packet (or vice versa). Both phases use
// adaptive routing on the dynamic VCs.
//
// Linear-dimension choice (paper rule): the dimension whose removal leaves a
// symmetric plane, if one exists; otherwise the longest dimension. For a
// cube every choice is equivalent by symmetry (the paper lists Z for 8^3 and
// X for 16^3); we use Z.
//
// The optional credit-based flow control implements the paper's Section 5
// future work: a source may have at most `credit_window` un-forwarded
// packets at any intermediate; intermediates return one 32-byte credit
// packet per `credit_batch` forwards. This bounds intermediate memory at
// the cost of ~1 extra packet per `credit_batch` data packets.
#pragma once

#include <cstdint>

#include "src/coll/dest_order.hpp"
#include "src/coll/schedule.hpp"
#include "src/runtime/packetizer.hpp"

namespace bgl::coll {

struct TpsTuning {
  int linear_axis = -1;  // -1 = paper's selection rule
  double alpha_cycles = 450.0;
  std::uint32_t forward_cpu_cycles = 200;
  bool reserved_fifos = true;
  int credit_window = 0;  // phase-1 packets in flight per (src, intermediate); 0 = off
  int credit_batch = 10;
  std::uint32_t credit_cpu_cycles = 50;
};

/// The paper's linear-dimension selection rule generalized to n axes:
/// the axis whose removal leaves all remaining extents mutually equal, if
/// exactly one exists; for a hypercube (all candidates) the last axis; with
/// fewer than three axes, or no symmetric candidate, the longest axis.
int choose_linear_axis(const topo::Shape& shape);

/// TPS as a schedule builder: two pipelined phases (linear legs, planar
/// forwards) with reserved FIFO classes, a kLinearAxis relay rule and the
/// optional credit flow control, executed via ScheduleExecutor.
CommSchedule build_tps_schedule(const net::NetworkConfig& config,
                                std::uint64_t msg_bytes, const TpsTuning& tuning);

}  // namespace bgl::coll
