// Common base for the all-to-all strategy fabric clients.
#pragma once

#include <atomic>
#include <vector>

#include "src/coll/verify.hpp"
#include "src/network/fabric.hpp"

namespace bgl::coll {

/// One unit of relay custody stranded at a fail-stopped node: payload a dead
/// custodian accepted for (orig_src -> final_dst) and can never re-inject.
/// The recovery layer re-sources these pairs from their original senders in
/// a repair epoch (see src/coll/recovery.hpp).
struct StrandedRelay {
  topo::Rank orig_src = -1;
  topo::Rank final_dst = -1;
  std::uint64_t payload_bytes = 0;
};

class StrategyClient : public net::Client {
 public:
  void bind(net::Fabric& fabric) { fabric_ = &fabric; }

  /// Completion time of the collective: the last delivery of *final*
  /// application data (excludes e.g. credit packets).
  net::Tick completion_cycles() const { return completion_.load(std::memory_order_relaxed); }

  /// Final application packets delivered so far (for progress checks).
  std::uint64_t final_deliveries() const {
    return final_deliveries_.load(std::memory_order_relaxed);
  }

  /// Clears `mask` bits for pairs this strategy cannot serve under the fault
  /// plan it was constructed with (no-op when fault-free). The base rule —
  /// a pair is reachable iff a live minimal path exists — fits the direct
  /// family; indirect strategies override it with their relay constraints.
  virtual void mark_reachable(PairMask& mask) const {
    if (faults_ == nullptr || !faults_->enabled()) return;
    for (topo::Rank s = 0; s < mask.nodes(); ++s) {
      for (topo::Rank d = 0; d < mask.nodes(); ++d) {
        if (s != d && !faults_->pair_routable(s, d, reach_mode())) {
          mask.set_unreachable(s, d);
        }
      }
    }
  }

  /// Relay payload bytes accepted into custody by nodes that `plan` marks
  /// fail-stopped — data owed to final destinations that died with its
  /// custodian and can never drain (mid-run strikes, fail_at > 0).
  /// Strategies without store-and-forward state have none.
  virtual std::uint64_t stranded_relay_bytes(const net::FaultPlan& plan) const {
    (void)plan;
    return 0;
  }

  /// Itemizes the custody behind stranded_relay_bytes, one record per
  /// stranded (orig_src, final_dst) unit, appended to `out` in deterministic
  /// order. The epoch-recovery layer uses the records to decide which pairs
  /// a repair schedule must re-source and to account what stays stranded
  /// when a pair is unrecoverable. Strategies without relay custody append
  /// nothing.
  virtual void collect_stranded(const net::FaultPlan& plan,
                                std::vector<StrandedRelay>& out) const {
    (void)plan;
    (void)out;
  }

 protected:
  /// Routing mode the base mark_reachable checks paths under.
  virtual net::RoutingMode reach_mode() const { return net::RoutingMode::kAdaptive; }

  // Delivery bookkeeping is thread-safe: under a parallel run concurrent
  // slabs deliver concurrently. Relaxed ordering suffices (monotone counters,
  // merged views only read after the run joins); on a single-threaded run
  // the values are bit-identical to the plain fields they replace.
  void note_final_delivery() {
    final_deliveries_.fetch_add(1, std::memory_order_relaxed);
    net::Tick at = fabric_->now();
    net::Tick seen = completion_.load(std::memory_order_relaxed);
    while (seen < at &&
           !completion_.compare_exchange_weak(seen, at, std::memory_order_relaxed)) {
    }
  }

  net::Fabric* fabric_ = nullptr;
  DeliveryMatrix* matrix_ = nullptr;
  const net::FaultPlan* faults_ = nullptr;  // owned by run_alltoall; may be null
  std::atomic<net::Tick> completion_{0};
  std::atomic<std::uint64_t> final_deliveries_{0};
};

}  // namespace bgl::coll
