// Common base for the all-to-all strategy fabric clients.
#pragma once

#include "src/coll/verify.hpp"
#include "src/network/fabric.hpp"

namespace bgl::coll {

class StrategyClient : public net::Client {
 public:
  void bind(net::Fabric& fabric) { fabric_ = &fabric; }

  /// Completion time of the collective: the last delivery of *final*
  /// application data (excludes e.g. credit packets).
  net::Tick completion_cycles() const { return completion_; }

  /// Final application packets delivered so far (for progress checks).
  std::uint64_t final_deliveries() const { return final_deliveries_; }

 protected:
  void note_final_delivery() {
    ++final_deliveries_;
    completion_ = fabric_->now();
  }

  net::Fabric* fabric_ = nullptr;
  DeliveryMatrix* matrix_ = nullptr;
  net::Tick completion_ = 0;
  std::uint64_t final_deliveries_ = 0;
};

}  // namespace bgl::coll
