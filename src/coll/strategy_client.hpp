// Common base for the all-to-all strategy fabric clients.
#pragma once

#include "src/coll/verify.hpp"
#include "src/network/fabric.hpp"

namespace bgl::coll {

class StrategyClient : public net::Client {
 public:
  void bind(net::Fabric& fabric) { fabric_ = &fabric; }

  /// Completion time of the collective: the last delivery of *final*
  /// application data (excludes e.g. credit packets).
  net::Tick completion_cycles() const { return completion_; }

  /// Final application packets delivered so far (for progress checks).
  std::uint64_t final_deliveries() const { return final_deliveries_; }

  /// Clears `mask` bits for pairs this strategy cannot serve under the fault
  /// plan it was constructed with (no-op when fault-free). The base rule —
  /// a pair is reachable iff a live minimal path exists — fits the direct
  /// family; indirect strategies override it with their relay constraints.
  virtual void mark_reachable(PairMask& mask) const {
    if (faults_ == nullptr || !faults_->enabled()) return;
    for (topo::Rank s = 0; s < mask.nodes(); ++s) {
      for (topo::Rank d = 0; d < mask.nodes(); ++d) {
        if (s != d && !faults_->pair_routable(s, d, reach_mode())) {
          mask.set_unreachable(s, d);
        }
      }
    }
  }

 protected:
  /// Routing mode the base mark_reachable checks paths under.
  virtual net::RoutingMode reach_mode() const { return net::RoutingMode::kAdaptive; }

  void note_final_delivery() {
    ++final_deliveries_;
    completion_ = fabric_->now();
  }

  net::Fabric* fabric_ = nullptr;
  DeliveryMatrix* matrix_ = nullptr;
  const net::FaultPlan* faults_ = nullptr;  // owned by run_alltoall; may be null
  net::Tick completion_ = 0;
  std::uint64_t final_deliveries_ = 0;
};

}  // namespace bgl::coll
