// Communication-schedule IR: one declarative description of an all-to-all
// algorithm, interpreted against the fabric by a single ScheduleExecutor.
//
// A CommSchedule captures what used to live in five bespoke StrategyClient
// subclasses: the phase structure (pipelined vs. barrier-gated), the wire
// shape of each message, the injection-FIFO class discipline, CPU cost
// parameters, relay rules and credit flow control. Strategies become pure
// *schedule builders* — functions of (config, msg_bytes, tuning, fault plan)
// — and the executor handles packetization cursors, store-and-forward
// relaying, barrier gating and fault-plan filtering in one place. The IR is
// also statically analyzable: schedule_lint.hpp checks pair coverage,
// dependency acyclicity, FIFO budgets and relay liveness without running a
// simulation, and the same transfer enumeration drives the CSV/JSON dumps.
//
// Two stream forms keep the IR compact at scale:
//  - kOrdered: per-node generative streams (a DestOrder permutation walked
//    in rounds of `burst` packets, with an optional relay rule). This covers
//    the direct family and TPS without materializing O(P^2) transfer
//    records, so the 20,480-node paper partitions still build in O(P).
//  - kExplicit: per-node op lists (vmesh's combined messages, hand-built
//    schedules). Each op is one wire message with an optional finalize list
//    naming the original sources whose blocks it carries.
//
// Logical transfers (src, dst, relay chain, bytes, FIFO class) are
// *enumerated on demand* from either form via for_each_transfer — the
// lint/dump view of the schedule — rather than stored.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/coll/dest_order.hpp"
#include "src/coll/strategy_client.hpp"
#include "src/network/config.hpp"
#include "src/network/faults.hpp"
#include "src/runtime/packetizer.hpp"
#include "src/topology/torus.hpp"

namespace bgl::coll {

/// How a FIFO class picks the injection FIFO for a packet.
enum class FifoPolicy : std::uint8_t {
  kRoundRobin,   // per-node per-class rotating counter (direct family, TPS)
  kPositional,   // (peer_index + packet_index) % count (vmesh)
};

/// A contiguous group of injection FIFOs with a selection policy. Classes
/// may alias the full FIFO range (separate rotation counters, shared
/// hardware) or reserve disjoint sub-ranges (TPS's per-phase groups).
struct FifoClass {
  int begin = 0;
  int count = 0;  // 0 = all injection FIFOs
  FifoPolicy policy = FifoPolicy::kRoundRobin;
  /// Reserved classes claim exclusive FIFOs: the linter checks that all
  /// reserved classes are pairwise disjoint and fit the hardware budget.
  bool reserved = false;

  int resolved_count(int injection_fifos) const {
    return count > 0 ? count : injection_fifos;
  }
};

/// Whether a phase's sends may start immediately (pipelined with earlier
/// phases) or only after the node's previous-phase receives complete plus a
/// local compute delay (vmesh's re-sort barrier).
enum class PhaseGate : std::uint8_t { kPipelined, kLocalBarrier };

struct PhaseSpec {
  PhaseGate gate = PhaseGate::kPipelined;
  net::RoutingMode mode = net::RoutingMode::kAdaptive;
  std::uint8_t fifo_class = 0;
  /// Wire shape of one message in this phase (never empty).
  std::vector<rt::PacketSpec> packets;
  /// CPU cost model, charged via InjectDesc::extra_cpu_cycles:
  ///   lround(per_packet + pace_extra * chunks [+ first_packet_extra on the
  ///   message's packet 0]).
  double first_packet_extra_cycles = 0.0;
  double per_packet_cycles = 0.0;
  double pace_extra_per_chunk = 0.0;
  /// Software cost of re-injecting a relayed packet that lands in this phase.
  std::uint32_t forward_cpu_cycles = 0;
  /// Wire format used to packetize per-op payload overrides
  /// (SendOp::payload_bytes != 0) landing in this phase; irrelevant for ops
  /// that use the phase's `packets` shape.
  rt::WireFormat override_format = rt::WireFormat::direct();
};

enum class StreamForm : std::uint8_t { kOrdered, kExplicit };

/// Relay rule for ordered streams.
enum class RelayRule : std::uint8_t {
  kNone,        // direct: every stream packet goes straight to its pair dst
  kLinearAxis,  // TPS: via the node on src's relay-axis line at dst's
                // coordinate (re-picked along the line under faults)
};

/// Generative per-node stream: walk the node's DestOrder in `rounds` rounds
/// of `burst` packets per destination (the direct family's schedule), with
/// an optional relay rule routing each message through an intermediate.
struct OrderedStream {
  std::uint32_t rounds = 1;
  int burst = 1;
  RelayRule relay = RelayRule::kNone;
  int relay_axis = 0;
  /// Phase of legs that terminate at a relay / at the final destination.
  std::uint8_t relayed_phase = 0;
  std::uint8_t final_phase = 0;
};

/// One statically-scheduled wire message from a node (kExplicit form).
struct SendOp {
  topo::Rank dst = -1;
  std::uint8_t phase = 0;
  std::uint8_t flags = 0;
  /// Index of this op within its node's ops *of the same phase* (input to
  /// the positional FIFO policy).
  std::uint16_t peer_index = 0;
  /// Original sources whose blocks this combined message carries: a span of
  /// CommSchedule::finalize_pool, recorded into the delivery matrix when the
  /// message's last packet arrives. kFinalizeSelf means the single-entry
  /// list {sending node} without pool storage.
  std::int32_t finalize_begin = -1;
  std::int32_t finalize_count = 0;
  /// Per-op payload override, in bytes: 0 (the default) means the op carries
  /// the schedule's full msg_bytes and uses its phase's message shape.
  /// Nonzero ops are re-packetized with the phase's override_format — repair
  /// schedules use this to top up partially-delivered pairs with exactly the
  /// missing bytes, never duplicating data that already arrived.
  std::uint32_t payload_bytes = 0;

  static constexpr std::uint8_t kFinalizeSelf = 1;
};

/// One local-barrier gate of an explicit-form schedule. Ops of phase `phase`
/// wait until all of the node's expected packets of phase `phase - 1` have
/// arrived plus a local compute delay (vmesh's gamma-cost re-sort copy).
/// A schedule may carry several barriers — multi-stage combining schemes gate
/// each stage on the previous one — listed in strictly increasing phase
/// order, each matching a PhaseGate::kLocalBarrier phase.
struct BarrierSpec {
  int phase = -1;
  /// Per node: packets of phase `phase - 1` that must arrive before the
  /// barrier compute starts (0 = gate open immediately).
  std::vector<std::uint64_t> expected;
  /// Per node: local compute cycles between the last gated arrival and the
  /// barrier phase opening.
  std::vector<net::Tick> compute_cycles;
};

/// Credit-based flow control for relayed ordered streams (TPS, paper §5):
/// at most `window` un-credited packets per (source, relay-line coordinate);
/// relays return one credit packet per `batch` forwards.
struct CreditSpec {
  int window = 0;  // 0 = off
  int batch = 10;
  std::uint32_t credit_cpu_cycles = 50;
};

/// A logical transfer: one message-worth of application data for an ordered
/// (src, dst) pair, with the relay chain it travels through. Enumerated on
/// demand by CommSchedule::for_each_transfer — never stored.
struct Transfer {
  std::int64_t id = 0;
  topo::Rank src = -1;
  topo::Rank dst = -1;
  /// Store-and-forward intermediates, in travel order (empty = direct).
  std::array<topo::Rank, 2> relays{-1, -1};
  int relay_count = 0;
  std::uint64_t bytes = 0;
  /// Phase of the *final* leg (the delivery that completes the pair).
  std::uint8_t phase = 0;
  std::uint8_t fifo_class = 0;
};

struct CommSchedule {
  topo::Shape shape{};
  topo::Torus torus{};
  std::uint64_t msg_bytes = 0;
  int injection_fifos = 8;
  StreamForm form = StreamForm::kOrdered;

  std::vector<PhaseSpec> phases;
  std::vector<FifoClass> fifo_classes;

  // --- kOrdered ---
  OrderedStream stream{};
  std::vector<DestOrder> orders;  // one per node

  // --- kExplicit ---
  std::vector<SendOp> ops;              // grouped by node, phase-major
  std::vector<std::uint32_t> op_begin;  // nodes + 1 offsets into `ops`
  std::vector<topo::Rank> finalize_pool;
  /// Pair coverage claimed by the builder under its fault plan (empty =
  /// every off-diagonal pair). The linter cross-checks this claim against
  /// the enumerated transfers.
  PairMask covered;

  // --- barrier gating (explicit form; one BarrierSpec per kLocalBarrier
  // phase, sorted by phase) ---
  std::vector<BarrierSpec> barriers;

  CreditSpec credits{};

  /// Extra transfer-level dependency edges (before, after), by transfer id.
  /// Execution-level ordering comes from phases, barriers and relay chains;
  /// these edges annotate additional constraints for composed or generated
  /// schedules and are validated (phase order + acyclicity) by the linter.
  std::vector<std::pair<std::int64_t, std::int64_t>> extra_deps;

  std::int32_t nodes() const { return static_cast<std::int32_t>(shape.nodes()); }

  /// The relay an ordered stream routes (src -> dst) through: src itself for
  /// a direct send, or -1 when no live relay exists under `faults`.
  /// Deterministic, so coverage, lint and execution agree.
  /// When called from inside a parallel fabric handler, pass the executing
  /// slab's memo (Fabric::route_memo_scratch) — the plan's internal memo is
  /// not thread-safe.
  topo::Rank relay_for(topo::Rank src, topo::Rank dst,
                       const net::FaultPlan* faults,
                       net::FaultPlan::RouteMemo* memo = nullptr) const;

  /// Whether this schedule carries (src, dst) under `faults` — the IR-derived
  /// replacement for the per-strategy mark_reachable overrides.
  bool pair_covered(topo::Rank src, topo::Rank dst,
                    const net::FaultPlan* faults,
                    net::FaultPlan::RouteMemo* memo = nullptr) const;

  /// Enumerates every logical transfer in deterministic id order (lint and
  /// dump view; O(P * positions) for ordered streams — do not call on the
  /// 20k-node shapes in a hot path). `fn` is called as fn(const Transfer&).
  template <typename Fn>
  void for_each_transfer(const net::FaultPlan* faults, Fn&& fn) const;

  /// Total enumerated transfers (same walk as for_each_transfer).
  std::int64_t transfer_count(const net::FaultPlan* faults) const;

  /// CSV dump of the transfer table (header + one row per transfer).
  std::string to_csv(const net::FaultPlan* faults) const;
  /// JSON dump: schedule summary + transfer array.
  std::string to_json(const net::FaultPlan* faults) const;

  /// The finalize list of `op` (handles kFinalizeSelf), written into `out`.
  void finalize_list(const SendOp& op, topo::Rank op_src,
                     std::vector<topo::Rank>& out) const;

 private:
  bool leg_ok(topo::Rank from, topo::Rank to, const net::FaultPlan* faults,
              net::FaultPlan::RouteMemo* memo) const;
};

/// Interprets any CommSchedule against the fabric: per-node stream cursors,
/// FIFO-class rotation, store-and-forward relaying with credit flow control,
/// barrier gating with the local compute timer, delivery recording and
/// IR-derived reachability. Wrapped by rt::ReliableClient under faults
/// exactly like the legacy clients.
class ScheduleExecutor : public StrategyClient {
 public:
  ScheduleExecutor(const net::NetworkConfig& config, CommSchedule schedule,
                   DeliveryMatrix* matrix, const net::FaultPlan* faults = nullptr);

  bool next_packet(topo::Rank node, net::InjectDesc& out) override;
  void on_delivery(topo::Rank node, const net::Packet& packet) override;
  void on_timer(topo::Rank node, std::uint64_t cookie) override;

  /// Reachability comes from the schedule IR (CommSchedule::pair_covered),
  /// not from per-strategy logic.
  void mark_reachable(PairMask& mask) const override;

  /// Relay payload parked in the forward queues of nodes `plan` marks
  /// fail-stopped: accepted into custody, never re-injectable (see
  /// FaultStats::stranded_relay_bytes). For explicit-form schedules the
  /// custody lives in a dead node's unsent combining ops instead of a
  /// forward queue; an op counts once its phase's barrier opened (the stage
  /// inputs had all arrived), a deliberate lower bound — partially-arrived
  /// stage inputs are not itemizable per origin.
  std::uint64_t stranded_relay_bytes(const net::FaultPlan& plan) const override;

  /// Itemized view of the same custody (see StrategyClient).
  void collect_stranded(const net::FaultPlan& plan,
                        std::vector<StrandedRelay>& out) const override;

  const CommSchedule& schedule() const { return schedule_; }
  std::uint64_t credit_packets_sent() const {
    return credit_packets_.load(std::memory_order_relaxed);
  }
  std::size_t max_forward_backlog() const {
    return max_forward_backlog_.load(std::memory_order_relaxed);
  }

 private:
  // Tag layout (opaque to the fabric; executor-private):
  //   [63:62] kind; kFinal/kStoreForward/kCredit: [61:48] aux,
  //   [47:24] original source, [23:0] final destination;
  //   kCombined: [31:0] op index into schedule_.ops.
  enum Kind : std::uint64_t { kFinal = 0, kStoreForward = 1, kCredit = 2, kCombined = 3 };
  static std::uint64_t make_tag(Kind kind, topo::Rank orig_src, topo::Rank final_dst,
                                std::uint32_t aux = 0);
  static std::uint64_t make_combined_tag(std::uint32_t op_index);

  struct Forward {
    topo::Rank final_dst;
    topo::Rank orig_src;
    std::uint32_t payload_bytes;
    std::uint16_t chunks;
  };

  struct NodeState {
    // Ordered-stream cursor.
    std::uint32_t position = 0;
    std::uint32_t round = 0;
    std::uint32_t burst_sent = 0;
    // Explicit-stream cursor.
    std::uint32_t op = 0;   // absolute index into schedule_.ops
    std::uint32_t pkt = 0;  // packet within the current op's message
    bool done = false;
    // Barrier gates, one slot per CommSchedule::barriers entry.
    std::vector<std::uint8_t> barrier_open;
    std::vector<std::uint64_t> barrier_left;
    // Relaying.
    std::deque<Forward> forwards;
    // Per-FIFO-class rotation counters (uint8 wrap matches the legacy
    // clients' counters bit-for-bit).
    std::vector<std::uint8_t> fifo_rr;
    // Credit flow control, indexed by the peer's relay-axis coordinate.
    std::vector<std::int32_t> outstanding;
    std::vector<std::int32_t> to_credit;
    std::deque<topo::Rank> credit_queue;
  };

  std::uint8_t pick_fifo(NodeState& s, std::uint8_t fifo_class, std::uint32_t peer_index,
                         std::uint32_t pkt_index);
  bool emit_ordered(topo::Rank node, NodeState& s, net::InjectDesc& out);
  bool emit_explicit(topo::Rank node, NodeState& s, net::InjectDesc& out);
  /// Wire message of op `op_index`: the phase's shape, or the op's private
  /// packetization when SendOp::payload_bytes overrides it.
  const std::vector<rt::PacketSpec>& op_message(std::uint32_t op_index) const;

  // --- extra_deps execution (ordered relay-free schedules only) ---
  /// Key of an ordered (src, dst) pair — the transfer identity the dependency
  /// edges resolve to.
  std::uint64_t pair_key(topo::Rank src, topo::Rank dst) const {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
           static_cast<std::uint32_t>(dst);
  }
  void init_extra_deps();
  void note_dep_delivery(topo::Rank orig_src, topo::Rank dst,
                         std::uint32_t payload_bytes);

  net::NetworkConfig config_;
  CommSchedule schedule_;
  std::vector<NodeState> nodes_;
  /// Barrier index gating each phase (-1 = ungated), derived from
  /// schedule_.barriers; arrivals of phase p arm barrier_of_phase_[p + 1].
  std::vector<std::int32_t> barrier_of_phase_;
  /// Private packetizations of ops with a payload_bytes override, keyed by
  /// absolute op index (empty vector = no override, use the phase shape).
  std::vector<std::vector<rt::PacketSpec>> op_packets_;
  /// Packets still missing per in-flight combined message, indexed by op
  /// (0 = message not yet seen; seeded from the op's phase message shape on
  /// its first delivery). A dense vector rather than a map so concurrent
  /// slabs never touch shared map structure — each op's deliveries all land
  /// at its one destination node. Delivery-matrix bookkeeping only.
  std::vector<std::uint32_t> combined_remaining_;
  /// Unsatisfied-dependency count per gated transfer, keyed by pair. The
  /// sender polls its head transfer's gate in emit_ordered and parks until
  /// the count reaches zero (extra_deps schedules run single-threaded).
  std::unordered_map<std::uint64_t, std::uint32_t> dep_gates_;
  struct DepWatch {
    std::int64_t bytes_left = 0;
    std::vector<std::uint64_t> release;  // gated pair keys to decrement
  };
  /// Transfers other transfers wait on, keyed by pair; bytes_left counts the
  /// watched transfer's outstanding final-delivery payload.
  std::unordered_map<std::uint64_t, DepWatch> dep_watch_;
  std::atomic<std::uint64_t> credit_packets_{0};
  std::atomic<std::size_t> max_forward_backlog_{0};
};

// --- inline transfer enumeration -------------------------------------------

template <typename Fn>
void CommSchedule::for_each_transfer(const net::FaultPlan* faults, Fn&& fn) const {
  std::int64_t id = 0;
  const std::int32_t node_count = nodes();
  if (form == StreamForm::kOrdered) {
    for (topo::Rank n = 0; n < node_count; ++n) {
      const DestOrder& order = orders[static_cast<std::size_t>(n)];
      for (std::uint32_t pos = 0; pos < order.positions(); ++pos) {
        const topo::Rank dst = order.at(pos);
        if (dst < 0) continue;
        Transfer t;
        t.src = n;
        t.dst = dst;
        t.bytes = msg_bytes;
        if (stream.relay == RelayRule::kLinearAxis) {
          const topo::Rank inter = relay_for(n, dst, faults);
          if (inter < 0) continue;  // pair skipped at the source
          if (inter != n && inter != dst) {
            t.relays[0] = inter;
            t.relay_count = 1;
          }
          t.phase = (inter != n) ? stream.relayed_phase : stream.final_phase;
          if (t.relay_count > 0) t.phase = stream.final_phase;
        } else {
          if (faults != nullptr &&
              !faults->pair_routable(n, dst,
                                     phases[stream.final_phase].mode)) {
            continue;
          }
          t.phase = stream.final_phase;
        }
        t.fifo_class = phases[t.phase].fifo_class;
        t.id = id++;
        fn(static_cast<const Transfer&>(t));
      }
    }
    return;
  }
  std::vector<topo::Rank> origs;
  for (topo::Rank n = 0; n < node_count; ++n) {
    for (std::uint32_t i = op_begin[static_cast<std::size_t>(n)];
         i < op_begin[static_cast<std::size_t>(n) + 1]; ++i) {
      const SendOp& op = ops[i];
      finalize_list(op, n, origs);
      for (const topo::Rank orig : origs) {
        Transfer t;
        t.src = orig;
        t.dst = op.dst;
        t.bytes = op.payload_bytes != 0 ? op.payload_bytes : msg_bytes;
        t.phase = op.phase;
        t.fifo_class = phases[op.phase].fifo_class;
        if (orig != n) {
          t.relays[0] = n;
          t.relay_count = 1;
        }
        t.id = id++;
        fn(static_cast<const Transfer&>(t));
      }
    }
  }
}

}  // namespace bgl::coll
