// Epoch-based recovery from mid-collective fail-stop strikes.
//
// A delayed permanent strike (FaultConfig::fail_at > 0) lands while the
// collective is in flight: planning was blind to it (see run_alltoall), so
// when the struck run quiesces, payload is missing — abandoned by the
// retransmission budget, stranded in dead relays' custody, or simply never
// sent to severed destinations. This module turns that wreckage into a
// deterministic epoch sequence:
//
//   epoch 0   the original (struck) run, exactly as before;
//   ---       epoch transition: survivors agree on a liveness view (a
//             modeled ring allgather per torus axis), discard partial flows
//             no repair can complete, and compute the *residual* — every
//             still-reachable ordered pair short of its msg_bytes;
//   epoch k   a lint-checked explicit-form repair CommSchedule re-sends
//             exactly the residual (payload overrides top up partial pairs,
//             never duplicating delivered bytes), executed through the same
//             fabric / reliability / verification path with the strike
//             applied from tick 0 — survivors now plan openly around it.
//
// The loop re-plans until the residual drains (or stops shrinking, or a
// bounded epoch budget is spent), then rewrites the RunResult: elapsed time
// grows by the agreement + repair cycles, delivery/ fault / reliability
// counters accumulate, reachability becomes the survivors' view, and
// stranded_relay_bytes keeps only the custody the repairs failed to replace.
// Everything is a pure function of (config, seed), so a recovered run is as
// bit-reproducible as a healthy one.
#pragma once

#include <cstdint>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/coll/schedule.hpp"
#include "src/network/faults.hpp"

namespace bgl::coll {

/// Survivors' agreed post-strike liveness view, plus the modeled cost of
/// reaching agreement: one ring allgather per torus axis, each costing
/// (extent - 1) hops of a single liveness chunk.
struct LivenessView {
  std::vector<std::uint8_t> alive;  // indexed by rank
  std::int64_t survivors = 0;
  Tick agree_cycles = 0;
};

LivenessView exchange_liveness(const net::NetworkConfig& net,
                               const net::FaultPlan& plan);

/// Whether a repair epoch can still serve (src -> dst): both endpoints
/// alive and a live adaptive path between them.
bool pair_recoverable(const net::FaultPlan& plan, topo::Rank src, topo::Rank dst);

/// One undelivered residual: a recoverable ordered pair whose delivery-
/// matrix cell is `bytes` short of the collective's msg_bytes.
struct ResidualPair {
  topo::Rank src = -1;
  topo::Rank dst = -1;
  std::uint64_t bytes = 0;
};

/// Scans the delivery matrix for recoverable pairs short of `msg_bytes`,
/// in deterministic (src, dst) order.
std::vector<ResidualPair> compute_residual(const DeliveryMatrix& matrix,
                                           std::uint64_t msg_bytes,
                                           const net::FaultPlan& plan);

/// Builds the explicit-form repair schedule delivering exactly `residual`:
/// one direct adaptive send per pair (payload override = the missing bytes),
/// coverage mask = the residual pairs and nothing else. The result lints
/// clean under the post-strike plan whenever every residual pair is
/// recoverable — callers still run schedule_lint before executing it.
CommSchedule build_repair_schedule(const net::NetworkConfig& net,
                                   std::uint64_t msg_bytes,
                                   const std::vector<ResidualPair>& residual);

/// Post-quiescence epoch orchestration (called by run_alltoall/run_schedule
/// after the struck epoch-0 run): performs the epoch transition and executes
/// repair epochs until the residual drains, rewriting `result` in place as
/// described above. `stranded` is epoch 0's itemized dead-custodian ledger
/// (StrategyClient::collect_stranded). Returns true when an epoch transition
/// ran; false when the strike left nothing to repair (result untouched).
bool recover_epochs(RunResult& result, const AlltoallOptions& options,
                    const net::NetworkConfig& net, const net::FaultPlan& plan,
                    DeliveryMatrix& matrix,
                    const std::vector<StrandedRelay>& stranded);

}  // namespace bgl::coll
