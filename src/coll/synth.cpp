#include "src/coll/synth.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/coll/direct.hpp"
#include "src/coll/registry.hpp"
#include "src/coll/schedule_lint.hpp"
#include "src/coll/tps.hpp"
#include "src/coll/vmesh.hpp"
#include "src/harness/runner.hpp"
#include "src/runtime/packetizer.hpp"
#include "src/util/rng.hpp"

namespace bgl::coll::synth {

namespace {

constexpr std::uint64_t kNoScore = ~std::uint64_t{0};

// --- genome encoding --------------------------------------------------------

const char* family_code(GenomeFamily family) {
  switch (family) {
    case GenomeFamily::kDirect: return "D";
    case GenomeFamily::kRelay: return "R";
    case GenomeFamily::kCombine2D: return "C2";
    case GenomeFamily::kCombine3D: return "C3";
  }
  return "?";
}

bool parse_field(const std::string& text, std::size_t& pos, char tag,
                 std::uint64_t& value, bool last) {
  if (pos >= text.size() || text[pos] != tag) return false;
  ++pos;
  const std::size_t end = last ? text.size() : text.find(',', pos);
  if (end == std::string::npos || end == pos) return false;
  std::uint64_t v = 0;
  for (std::size_t i = pos; i < end; ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(text[i] - '0');
  }
  value = v;
  pos = end + (last ? 0 : 1);
  return true;
}

}  // namespace

std::string Genome::key() const {
  std::string out = family_code(family);
  out += ':';
  const auto num = [](std::uint64_t v) { return std::to_string(v); };
  switch (family) {
    case GenomeFamily::kDirect:
      out += "m" + num(static_cast<std::uint64_t>(mode)) + ",o" +
             num(static_cast<std::uint64_t>(order)) + ",b" +
             num(static_cast<std::uint64_t>(burst)) + ",s" + num(salt);
      break;
    case GenomeFamily::kRelay:
      out += "a" + num(static_cast<std::uint64_t>(relay_axis)) + ",f" +
             num(static_cast<std::uint64_t>(fifo_split)) + ",c" +
             num(static_cast<std::uint64_t>(credit_window)) + ",s" + num(salt);
      break;
    case GenomeFamily::kCombine2D:
      out += "p" + num(static_cast<std::uint64_t>(mapping)) + ",f" +
             num(static_cast<std::uint64_t>(factor_index)) + ",s" + num(salt);
      break;
    case GenomeFamily::kCombine3D:
      out += "p" + num(static_cast<std::uint64_t>(mapping)) + ",s" + num(salt);
      break;
  }
  return out;
}

bool genome_from_key(const std::string& key, Genome& out) {
  Genome g;
  std::size_t pos = key.find(':');
  if (pos == std::string::npos) return false;
  const std::string code = key.substr(0, pos);
  ++pos;
  std::uint64_t a = 0, b = 0, c = 0, s = 0;
  if (code == "D") {
    g.family = GenomeFamily::kDirect;
    if (!parse_field(key, pos, 'm', a, false) || !parse_field(key, pos, 'o', b, false) ||
        !parse_field(key, pos, 'b', c, false) || !parse_field(key, pos, 's', s, true)) {
      return false;
    }
    g.mode = static_cast<int>(a);
    g.order = static_cast<int>(b);
    g.burst = static_cast<int>(c);
  } else if (code == "R") {
    g.family = GenomeFamily::kRelay;
    if (!parse_field(key, pos, 'a', a, false) || !parse_field(key, pos, 'f', b, false) ||
        !parse_field(key, pos, 'c', c, false) || !parse_field(key, pos, 's', s, true)) {
      return false;
    }
    g.relay_axis = static_cast<int>(a);
    g.fifo_split = static_cast<int>(b);
    g.credit_window = static_cast<int>(c);
  } else if (code == "C2") {
    g.family = GenomeFamily::kCombine2D;
    if (!parse_field(key, pos, 'p', a, false) || !parse_field(key, pos, 'f', b, false) ||
        !parse_field(key, pos, 's', s, true)) {
      return false;
    }
    g.mapping = static_cast<int>(a);
    g.factor_index = static_cast<int>(b);
  } else if (code == "C3") {
    g.family = GenomeFamily::kCombine3D;
    if (!parse_field(key, pos, 'p', a, false) || !parse_field(key, pos, 's', s, true)) {
      return false;
    }
    g.mapping = static_cast<int>(a);
  } else {
    return false;
  }
  g.salt = s;
  if (g.key() != key) return false;  // reject non-canonical spellings
  out = g;
  return true;
}

std::vector<std::pair<int, int>> mesh_factor_ladder(std::int32_t nodes) {
  std::vector<std::pair<int, int>> ladder;
  const int root =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(nodes))));
  for (int pvx = root; pvx <= nodes; ++pvx) {
    if (nodes % pvx == 0) ladder.emplace_back(pvx, nodes / pvx);
  }
  return ladder;
}

// --- genome -> CommSchedule -------------------------------------------------

namespace {

/// Salt != 0 re-seeds the builder's per-node RNG streams; salt == 0 keeps
/// them bit-identical to the registry builder for the same options.
net::NetworkConfig salted(const net::NetworkConfig& net, std::uint64_t salt) {
  net::NetworkConfig cfg = net;
  if (salt != 0) cfg.seed = harness::derive_seed(net.seed, salt);
  return cfg;
}

}  // namespace

CommSchedule build_combine3d_schedule(const net::NetworkConfig& config,
                                      std::uint64_t msg_bytes, int mapping,
                                      const net::FaultPlan* faults) {
  const auto nodes = static_cast<std::int32_t>(config.shape.nodes());
  const int axes = config.shape.axis_count();
  // Stage g moves blocks along physical axis ax[g]; the mapping permutes
  // which axis each stage walks (same encoding as the 2-D virtual mesh).
  const std::vector<int> ax =
      mesh_axis_order(static_cast<MeshMapping>(mapping % 3), axes);
  std::array<int, topo::kMaxAxes> v{1, 1, 1, 1};
  for (int i = 0; i < axes; ++i) {
    v[static_cast<std::size_t>(i)] =
        config.shape.dim[static_cast<std::size_t>(ax[static_cast<std::size_t>(i)])];
  }
  // VMesh's cost constants (paper Section 4.2): the combining runtime pays
  // the message alpha per combined message and gamma per re-sorted byte.
  const VmeshTuning costs{};
  const double gamma_cycles_per_byte = costs.gamma_ns_per_byte * costs.clock_ghz;
  const double alpha = costs.alpha_msg_cycles;

  CommSchedule sched;
  sched.shape = config.shape;
  sched.torus = topo::Torus{config.shape};
  sched.msg_bytes = msg_bytes;
  sched.injection_fifos = config.injection_fifos;
  sched.form = StreamForm::kExplicit;

  const bool faulted = faults != nullptr && faults->enabled();
  const auto alive = [&](topo::Rank r) {
    return !faulted || faults->node_alive(r);
  };
  const auto leg_ok = [&](topo::Rank from, topo::Rank to) {
    if (!faulted || from == to) return true;
    return faults->pair_routable(from, to, net::RoutingMode::kAdaptive);
  };
  const auto peer_at = [&](topo::Rank n, int stage, int k) {
    topo::Coord c = sched.torus.coord_of(n);
    c[ax[static_cast<std::size_t>(stage)]] = k;
    return sched.torus.rank_of(c);
  };
  // The route of block (s -> d): relay i matches d's first i+1 mapped
  // coordinates (r1 matches ax0, r2 additionally ax1, ...), ending at d
  // after the last stage. The block finalizes at the first hop equal to d;
  // chain_ok is the one predicate ops, finalize lists and the coverage
  // mask all derive from, so lint/execution/verification agree. The linter
  // sees only the finalizing op's sender as the relay, hence the extra
  // leg_ok(s, prev) on chains of three or more legs.
  const auto chain_ok = [&](topo::Rank s, topo::Rank d) {
    if (s == d) return false;
    if (!faulted) return true;
    if (!alive(s) || !alive(d)) return false;
    topo::Coord c = sched.torus.coord_of(s);
    const topo::Coord cd = sched.torus.coord_of(d);
    topo::Rank prev = s;
    for (int stage = 0; stage < axes; ++stage) {
      const int a = ax[static_cast<std::size_t>(stage)];
      c[a] = cd[a];
      const topo::Rank next = sched.torus.rank_of(c);
      if (next == d) {
        if (prev != s && !leg_ok(s, prev)) return false;
        return leg_ok(prev, d);
      }
      if (!alive(next) || !leg_ok(prev, next)) return false;
      prev = next;
    }
    return false;  // unreachable: the last stage always lands on d
  };

  // Stage message shapes: stage 0 carries every block sharing the
  // destination's ax0 coordinate (nodes / v0 blocks), and so on.
  std::array<std::uint64_t, topo::kMaxAxes> stage_blocks{};
  for (int stage = 0; stage < axes; ++stage) {
    stage_blocks[static_cast<std::size_t>(stage)] =
        static_cast<std::uint64_t>(nodes) /
        static_cast<std::uint64_t>(v[static_cast<std::size_t>(stage)]);
  }
  for (int stage = 0; stage < axes; ++stage) {
    PhaseSpec phase;
    phase.gate = stage == 0 ? PhaseGate::kPipelined : PhaseGate::kLocalBarrier;
    phase.mode = net::RoutingMode::kAdaptive;
    phase.fifo_class = 0;
    phase.packets = rt::packetize(
        stage_blocks[static_cast<std::size_t>(stage)] * msg_bytes,
        rt::WireFormat::combining());
    phase.first_packet_extra_cycles =
        stage == 0 ? alpha + gamma_cycles_per_byte *
                                 static_cast<double>(stage_blocks[0] * msg_bytes)
                   : alpha;
    sched.phases.push_back(std::move(phase));
  }
  sched.fifo_classes.push_back(FifoClass{0, 0, FifoPolicy::kPositional, false});

  std::vector<BarrierSpec> barriers(static_cast<std::size_t>(axes - 1));
  for (int g = 0; g < axes - 1; ++g) {
    barriers[static_cast<std::size_t>(g)].phase = g + 1;
    barriers[static_cast<std::size_t>(g)].expected.resize(
        static_cast<std::size_t>(nodes));
    barriers[static_cast<std::size_t>(g)].compute_cycles.resize(
        static_cast<std::size_t>(nodes));
  }
  sched.op_begin.reserve(static_cast<std::size_t>(nodes) + 1);
  sched.op_begin.push_back(0);
  if (faulted) sched.covered = PairMask(nodes);

  util::Xoshiro256StarStar master(config.seed ^ 0xc3d17aULL);
  std::vector<topo::Rank> peers;
  std::vector<topo::Rank> origs;
  for (std::int32_t n = 0; n < nodes; ++n) {
    auto rng = master.fork();
    const topo::Coord cn = sched.torus.coord_of(n);

    // Barrier g is armed by stage-(g-1) arrivals: one op per live sender,
    // each a full stage-(g-1) message. Compute cost models the re-sort of
    // the received bytes before the next stage's combined messages go out.
    for (int g = 1; g < axes; ++g) {
      const int stage = g - 1;
      const int extent = v[static_cast<std::size_t>(stage)];
      std::uint64_t senders = 0;
      for (int k = 0; k < extent; ++k) {
        const topo::Rank peer = peer_at(n, stage, k);
        if (peer == n) continue;
        // Sender-side emission condition, mirrored: stage-0 ops exist iff
        // chain_ok (finalize-self), stage-1 ops iff the leg is routable.
        const bool sends = stage == 0 ? chain_ok(peer, n) : leg_ok(peer, n);
        if (sends) ++senders;
      }
      BarrierSpec& barrier = barriers[static_cast<std::size_t>(g - 1)];
      barrier.expected[static_cast<std::size_t>(n)] =
          senders * sched.phases[static_cast<std::size_t>(stage)].packets.size();
      barrier.compute_cycles[static_cast<std::size_t>(n)] =
          static_cast<net::Tick>(std::llround(
              gamma_cycles_per_byte *
              static_cast<double>(senders *
                                  stage_blocks[static_cast<std::size_t>(stage)] *
                                  msg_bytes)));
    }

    for (int stage = 0; stage < axes; ++stage) {
      const int extent = v[static_cast<std::size_t>(stage)];
      peers.clear();
      for (int k = 0; k < extent; ++k) {
        const topo::Rank peer = peer_at(n, stage, k);
        if (peer == n) continue;
        const bool send = stage == 0 ? chain_ok(n, peer) : leg_ok(n, peer);
        if (send) peers.push_back(peer);
      }
      rng.shuffle(peers);
      for (std::size_t i = 0; i < peers.size(); ++i) {
        SendOp op;
        op.dst = peers[i];
        op.phase = static_cast<std::uint8_t>(stage);
        op.peer_index = static_cast<std::uint16_t>(i);
        if (stage == 0) {
          op.flags = SendOp::kFinalizeSelf;
        } else {
          // Blocks this combined message completes: originals whose route
          // parks them at this node for exactly this hop — the subcube
          // spanned by the already-walked axes ax[0..stage-1] through n
          // (stage 1: n's ax0-line; stage 2: n's ax0 x ax1 plane; ...).
          op.finalize_begin = static_cast<std::int32_t>(sched.finalize_pool.size());
          origs.clear();
          {
            topo::Coord c = cn;
            std::array<int, topo::kMaxAxes> idx{};
            int total = 1;
            for (int j = 0; j < stage; ++j) total *= v[static_cast<std::size_t>(j)];
            for (int t = 0; t < total; ++t) {
              for (int j = 0; j < stage; ++j) {
                c[ax[static_cast<std::size_t>(j)]] = idx[static_cast<std::size_t>(j)];
              }
              origs.push_back(sched.torus.rank_of(c));
              for (int j = 0; j < stage; ++j) {
                auto& digit = idx[static_cast<std::size_t>(j)];
                if (++digit < v[static_cast<std::size_t>(j)]) break;
                digit = 0;
              }
            }
          }
          for (const topo::Rank orig : origs) {
            if (chain_ok(orig, peers[i])) sched.finalize_pool.push_back(orig);
          }
          op.finalize_count =
              static_cast<std::int32_t>(sched.finalize_pool.size()) -
              op.finalize_begin;
        }
        sched.ops.push_back(op);
      }
    }
    sched.op_begin.push_back(static_cast<std::uint32_t>(sched.ops.size()));
  }
  for (auto& barrier : barriers) sched.barriers.push_back(std::move(barrier));

  if (faulted) {
    for (topo::Rank s = 0; s < nodes; ++s) {
      for (topo::Rank d = 0; d < nodes; ++d) {
        if (s != d && !chain_ok(s, d)) sched.covered.set_unreachable(s, d);
      }
    }
  }
  return sched;
}

CommSchedule build_genome_schedule(const Genome& genome,
                                   const net::NetworkConfig& net,
                                   std::uint64_t msg_bytes,
                                   const net::FaultPlan* faults) {
  const net::NetworkConfig cfg = salted(net, genome.salt);
  switch (genome.family) {
    case GenomeFamily::kDirect: {
      DirectTuning tuning;
      tuning.mode = genome.mode == 0 ? net::RoutingMode::kAdaptive
                                     : net::RoutingMode::kDeterministic;
      tuning.order = genome.order == 0 ? OrderPolicy::kRandom : OrderPolicy::kRotation;
      tuning.burst = std::max(1, genome.burst);
      return build_direct_schedule(cfg, msg_bytes, tuning);
    }
    case GenomeFamily::kRelay: {
      TpsTuning tuning;
      tuning.linear_axis = genome.relay_axis;
      tuning.reserved_fifos = genome.fifo_split != 0;
      tuning.credit_window = genome.credit_window;
      CommSchedule sched = build_tps_schedule(cfg, msg_bytes, tuning);
      const int fifos = sched.injection_fifos;
      if (genome.fifo_split != 0 && genome.fifo_split != fifos / 2) {
        // Re-balance the reserved split: phase 1 keeps [0, split), phase 2
        // gets the rest (the builder's default is the even half split).
        const int split = std::clamp(genome.fifo_split, 1, fifos - 1);
        sched.fifo_classes.clear();
        sched.fifo_classes.push_back(
            FifoClass{0, split, FifoPolicy::kRoundRobin, true});
        sched.fifo_classes.push_back(
            FifoClass{split, fifos - split, FifoPolicy::kRoundRobin, true});
      }
      return sched;
    }
    case GenomeFamily::kCombine2D: {
      VmeshTuning tuning;
      tuning.mapping = static_cast<MeshMapping>(genome.mapping % 3);
      const auto ladder = mesh_factor_ladder(net.shape.nodes());
      const auto index = static_cast<std::size_t>(
          std::clamp<int>(genome.factor_index, 0,
                          static_cast<int>(ladder.size()) - 1));
      tuning.pvx = ladder[index].first;
      tuning.pvy = ladder[index].second;
      return build_vmesh_schedule(cfg, msg_bytes, tuning, faults);
    }
    case GenomeFamily::kCombine3D:
      return build_combine3d_schedule(cfg, msg_bytes, genome.mapping, faults);
  }
  throw std::invalid_argument("unknown genome family");
}

// --- search -----------------------------------------------------------------

namespace {

struct EvalOut {
  std::uint64_t cycles = kNoScore;
  bool lint_ok = false;
  bool drained = false;
};

/// Builds, lints and (when lint passes) simulates one genome. Pure function
/// of (genome, opts) — the property the memo table and any `jobs` count rely
/// on. Scoring honors opts.sim_threads: the parallel engine is deterministic
/// per (seed, N), so the winner is reproducible from the recorded budget
/// (which includes the thread count).
EvalOut evaluate_genome(const Genome& genome, const SynthOptions& opts) {
  net::NetworkConfig net = opts.net;
  net.sim_threads = std::max(1, opts.sim_threads);
  const net::FaultPlan plan(net, net.shape);
  const net::FaultPlan* faults = plan.enabled() ? &plan : nullptr;
  const bool blind_strike = faults != nullptr && net.faults.fail_at > 0;
  const net::FaultPlan* planning = blind_strike ? nullptr : faults;

  EvalOut out;
  CommSchedule sched;
  try {
    sched = build_genome_schedule(genome, net, opts.msg_bytes, planning);
  } catch (const std::exception&) {
    return out;  // unbuildable genome scores as rejected
  }
  if (!schedule_lint(sched, planning).ok()) return out;
  out.lint_ok = true;

  AlltoallOptions run_opts;
  run_opts.net = net;
  run_opts.msg_bytes = opts.msg_bytes;
  run_opts.wall_timeout_ms = opts.wall_timeout_ms;
  const RunResult r = run_schedule(std::move(sched), run_opts, genome.key());
  out.drained = r.drained && !r.timed_out;
  if (out.drained) out.cycles = r.elapsed_cycles;
  return out;
}

std::vector<Genome> seed_genomes() {
  std::vector<Genome> seeds;
  Genome direct;
  direct.family = GenomeFamily::kDirect;
  seeds.push_back(direct);
  Genome relay;
  relay.family = GenomeFamily::kRelay;
  relay.relay_axis = 0;  // deliberately not the paper's rule — the search
                         // has to rediscover the right axis on its own
  seeds.push_back(relay);
  Genome c2;
  c2.family = GenomeFamily::kCombine2D;
  seeds.push_back(c2);
  Genome c3;
  c3.family = GenomeFamily::kCombine3D;
  seeds.push_back(c3);
  return seeds;
}

Genome mutate(const Genome& base, util::Xoshiro256StarStar& rng,
              int factor_choices, int axes) {
  Genome g = base;
  switch (g.family) {
    case GenomeFamily::kDirect:
      switch (rng.below(4)) {
        case 0: g.mode ^= 1; break;
        case 1: g.order ^= 1; break;
        case 2: g.burst = 1 << rng.below(3); break;
        default: g.salt = 1 + rng.below(0xFFFF); break;
      }
      break;
    case GenomeFamily::kRelay:
      switch (rng.below(4)) {
        case 0:
          g.relay_axis = static_cast<int>(rng.below(static_cast<std::uint64_t>(axes)));
          break;
        case 1: g.fifo_split = static_cast<int>(2 * rng.below(4)); break;
        case 2: g.credit_window = static_cast<int>(16 * rng.below(3)); break;
        default: g.salt = 1 + rng.below(0xFFFF); break;
      }
      break;
    case GenomeFamily::kCombine2D:
      switch (rng.below(3)) {
        case 0: g.mapping = static_cast<int>(rng.below(3)); break;
        case 1:
          g.factor_index = static_cast<int>(
              rng.below(static_cast<std::uint64_t>(std::max(1, factor_choices))));
          break;
        default: g.salt = 1 + rng.below(0xFFFF); break;
      }
      break;
    case GenomeFamily::kCombine3D:
      if (rng.below(2) == 0) {
        g.mapping = static_cast<int>(rng.below(3));
      } else {
        g.salt = 1 + rng.below(0xFFFF);
      }
      break;
  }
  return g;
}

bool better(const Candidate& a, const Candidate& b) {
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  return a.genome.key() < b.genome.key();
}

}  // namespace

SynthResult synthesize(const SynthOptions& opts) {
  if (opts.net.shape.nodes() < 2) {
    throw std::invalid_argument("synthesize: shape needs at least 2 nodes");
  }
  if (opts.beam_width < 1 || opts.generations < 0 ||
      opts.mutations_per_survivor < 0 || opts.sa_steps < 0) {
    throw std::invalid_argument("synthesize: malformed search budget");
  }

  SynthResult result;
  // Nested-parallelism budget: each scoring run may itself spawn
  // opts.sim_threads slab workers, so shrink the pool's job count until
  // jobs x sim_threads fits the host. jobs never changes results, so this
  // only trades wall clock.
  const int sim_threads = std::max(1, opts.sim_threads);
  int jobs = std::max(1, opts.jobs);
  if (sim_threads > 1) {
    const int hw =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    jobs = std::max(1, std::min(jobs, hw / sim_threads));
  }
  // Score the registry strategies for the baseline column. Same evaluation
  // config as the candidates, so the comparison is apples to apples.
  if (opts.score_baselines) {
    const auto& registry = strategy_registry();
    const auto scores = harness::run_ordered(
        registry.size(), jobs, [&](std::size_t i) -> std::uint64_t {
          AlltoallOptions run_opts;
          run_opts.net = opts.net;
          run_opts.net.sim_threads = sim_threads;
          run_opts.msg_bytes = opts.msg_bytes;
          run_opts.wall_timeout_ms = opts.wall_timeout_ms;
          const RunResult r = run_alltoall(registry[i].kind, run_opts);
          return (r.drained && !r.timed_out) ? r.elapsed_cycles : kNoScore;
        });
    for (std::size_t i = 0; i < registry.size(); ++i) {
      if (scores[i] < result.baseline_cycles) {
        result.baseline_cycles = scores[i];
        result.baseline_name = registry[i].name;
      }
    }
  }

  const int factor_choices = std::min(
      6, static_cast<int>(mesh_factor_ladder(opts.net.shape.nodes()).size()));
  const int axes = opts.net.shape.axis_count();

  // key -> score memo. Lint rejections are memoized too, so a rejected
  // genome never costs twice; only fresh keys are simulated.
  std::map<std::string, EvalOut> memo;
  const auto evaluate_batch = [&](const std::vector<Genome>& genomes) {
    std::vector<Genome> fresh;
    for (const Genome& g : genomes) {
      const std::string key = g.key();
      if (memo.count(key) == 0) {
        memo.emplace(key, EvalOut{});  // reserve so duplicates stay out
        fresh.push_back(g);
      }
    }
    const auto outs =
        harness::run_ordered(fresh.size(), jobs, [&](std::size_t i) {
          return evaluate_genome(fresh[i], opts);
        });
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      memo[fresh[i].key()] = outs[i];
      if (outs[i].lint_ok) {
        ++result.evaluated;
      } else {
        ++result.lint_rejected;
      }
    }
  };
  const auto candidate_of = [&](const Genome& g) {
    const EvalOut& out = memo.at(g.key());
    return Candidate{g, out.cycles, out.lint_ok, out.drained};
  };

  // Generation 0: the four family seeds.
  std::vector<Genome> population = seed_genomes();
  evaluate_batch(population);
  std::vector<Candidate> beam;
  for (const Genome& g : population) beam.push_back(candidate_of(g));
  std::sort(beam.begin(), beam.end(), better);
  if (beam.size() > static_cast<std::size_t>(opts.beam_width)) {
    beam.resize(static_cast<std::size_t>(opts.beam_width));
  }

  for (int gen = 0; gen < opts.generations; ++gen) {
    std::vector<Genome> mutants;
    for (std::size_t i = 0; i < beam.size(); ++i) {
      // One RNG stream per (generation, survivor), derived from the search
      // seed — mutation proposals never depend on evaluation order or jobs.
      util::Xoshiro256StarStar rng(harness::derive_seed(
          opts.seed, (static_cast<std::uint64_t>(gen) << 8) | i));
      for (int m = 0; m < opts.mutations_per_survivor; ++m) {
        mutants.push_back(mutate(beam[i].genome, rng, factor_choices, axes));
      }
    }
    evaluate_batch(mutants);
    std::vector<Candidate> pool = beam;
    for (const Genome& g : mutants) pool.push_back(candidate_of(g));
    std::sort(pool.begin(), pool.end(), better);
    pool.erase(std::unique(pool.begin(), pool.end(),
                           [](const Candidate& a, const Candidate& b) {
                             return a.genome == b.genome;
                           }),
               pool.end());
    if (pool.size() > static_cast<std::size_t>(opts.beam_width)) {
      pool.resize(static_cast<std::size_t>(opts.beam_width));
    }
    beam = std::move(pool);
  }

  // Optional simulated-annealing refinement of the beam winner: sequential
  // Metropolis walk with a linearly decaying temperature. Evaluations go
  // through the same memo, so repeats are free and the walk is
  // deterministic (jobs plays no role in a single-candidate evaluation).
  if (opts.sa_steps > 0 && !beam.empty() && beam.front().cycles != kNoScore) {
    util::Xoshiro256StarStar rng(harness::derive_seed(opts.seed, 0x5a11edULL));
    Candidate current = beam.front();
    Candidate best = current;
    const double t0 = std::max(1.0, static_cast<double>(current.cycles) * 0.05);
    for (int step = 0; step < opts.sa_steps; ++step) {
      const Genome next = mutate(current.genome, rng, factor_choices, axes);
      evaluate_batch({next});
      const Candidate cand = candidate_of(next);
      const double temp =
          t0 * (1.0 - static_cast<double>(step) / static_cast<double>(opts.sa_steps)) +
          1e-9;
      bool accept = false;
      if (cand.cycles != kNoScore) {
        if (cand.cycles <= current.cycles) {
          accept = true;
        } else {
          const double delta = static_cast<double>(cand.cycles - current.cycles);
          accept = rng.unit() < std::exp(-delta / temp);
        }
      }
      if (accept) current = cand;
      if (better(current, best)) best = current;
    }
    if (better(best, beam.front())) {
      beam.insert(beam.begin(), best);
      beam.erase(std::unique(beam.begin(), beam.end(),
                             [](const Candidate& a, const Candidate& b) {
                               return a.genome == b.genome;
                             }),
                 beam.end());
      if (beam.size() > static_cast<std::size_t>(opts.beam_width)) {
        beam.resize(static_cast<std::size_t>(opts.beam_width));
      }
    }
  }

  result.beam = beam;
  if (!beam.empty()) result.best = beam.front();
  return result;
}

// --- winner cache -----------------------------------------------------------

namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

SynthCache::SynthCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; store() reports
}

std::string SynthCache::problem_key(const topo::Shape& shape,
                                    std::uint64_t msg_bytes,
                                    const net::FaultConfig& faults) {
  // Every FaultConfig field is spelled out: two plans that differ anywhere
  // must never share a cache slot.
  std::string key = shape.to_string() + "|m" + std::to_string(msg_bytes) + "|";
  key += "link=" + fmt_double(faults.link_fail);
  key += ",tlink=" + fmt_double(faults.link_transient);
  key += ",repair=" + std::to_string(faults.repair_cycles);
  key += ",fail_at=" + std::to_string(faults.fail_at);
  key += ",degrade=" + fmt_double(faults.degrade);
  key += ",degrade_mult=" + std::to_string(faults.degrade_mult);
  key += ",node=" + std::to_string(faults.node_fail);
  key += ",drop=" + fmt_double(faults.drop_prob);
  key += ",corrupt=" + fmt_double(faults.corrupt_prob);
  key += ",fseed=" + std::to_string(faults.seed);
  key += ",rto=" + std::to_string(faults.retrans_timeout);
  key += ",retries=" + std::to_string(faults.max_retries);
  key += ",stuck=" + std::to_string(faults.stuck_drop_cycles);
  return key;
}

std::string SynthCache::path_for(const std::string& key) const {
  return dir_ + "/" + hex64(fnv1a64(key)) + ".synth";
}

bool SynthCache::lookup(const std::string& key, CacheEntry& out) const {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // The last line must be "sum <hex fnv of everything before it>".
  const std::size_t sum_pos = text.rfind("sum ");
  if (sum_pos == std::string::npos || sum_pos == 0 || text[sum_pos - 1] != '\n') {
    return false;
  }
  std::string sum_line = text.substr(sum_pos + 4);
  while (!sum_line.empty() && (sum_line.back() == '\n' || sum_line.back() == '\r')) {
    sum_line.pop_back();
  }
  if (sum_line != hex64(fnv1a64(text.substr(0, sum_pos)))) return false;

  CacheEntry entry;
  std::string genome_key;
  bool have_key = false, have_genome = false, have_bytes = false,
       have_cycles = false, have_baseline_cycles = false;
  std::istringstream lines(text.substr(0, sum_pos));
  std::string line;
  if (!std::getline(lines, line) || line != "bgl-synth-cache v1") return false;
  while (std::getline(lines, line)) {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) return false;
    const std::string field = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    std::uint64_t v = 0;
    if (field == "key") {
      entry.key = value;
      have_key = true;
    } else if (field == "genome") {
      genome_key = value;
      have_genome = true;
    } else if (field == "msg_bytes") {
      if (!parse_u64(value, entry.msg_bytes)) return false;
      have_bytes = true;
    } else if (field == "cycles") {
      if (!parse_u64(value, entry.cycles)) return false;
      have_cycles = true;
    } else if (field == "baseline") {
      entry.baseline_name = value;
    } else if (field == "baseline_cycles") {
      if (!parse_u64(value, entry.baseline_cycles)) return false;
      have_baseline_cycles = true;
    } else if (field == "net_seed") {
      if (!parse_u64(value, v)) return false;
      entry.net_seed = v;
    } else if (field == "search_seed") {
      if (!parse_u64(value, v)) return false;
      entry.search_seed = v;
    } else if (field == "budget") {
      entry.budget = value;
    } else {
      return false;  // unknown field: treat as corruption, not extension
    }
  }
  if (!have_key || !have_genome || !have_bytes || !have_cycles ||
      !have_baseline_cycles || entry.key != key) {
    return false;
  }
  if (!genome_from_key(genome_key, entry.genome)) return false;
  out = entry;
  return true;
}

void SynthCache::store(const CacheEntry& entry) const {
  std::string body = "bgl-synth-cache v1\n";
  body += "key " + entry.key + "\n";
  body += "genome " + entry.genome.key() + "\n";
  body += "msg_bytes " + std::to_string(entry.msg_bytes) + "\n";
  body += "cycles " + std::to_string(entry.cycles) + "\n";
  body += "baseline " + entry.baseline_name + "\n";
  body += "baseline_cycles " + std::to_string(entry.baseline_cycles) + "\n";
  body += "net_seed " + std::to_string(entry.net_seed) + "\n";
  body += "search_seed " + std::to_string(entry.search_seed) + "\n";
  body += "budget " + entry.budget + "\n";
  const std::string full = body + "sum " + hex64(fnv1a64(body)) + "\n";

  const std::string path = path_for(entry.key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("synth cache: cannot write " + tmp);
    out << full;
    if (!out) throw std::runtime_error("synth cache: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw std::runtime_error("synth cache: rename failed: " + ec.message());
}

SynthResult synthesize_cached(const SynthOptions& opts, const SynthCache& cache) {
  const std::string key =
      SynthCache::problem_key(opts.net.shape, opts.msg_bytes, opts.net.faults);
  CacheEntry entry;
  if (cache.lookup(key, entry)) {
    SynthResult result;
    result.best = Candidate{entry.genome, entry.cycles, true,
                            entry.cycles != kNoScore};
    result.baseline_name = entry.baseline_name;
    result.baseline_cycles = entry.baseline_cycles;
    return result;
  }
  SynthResult result = synthesize(opts);
  entry.key = key;
  entry.genome = result.best.genome;
  entry.msg_bytes = opts.msg_bytes;
  entry.cycles = result.best.cycles;
  entry.baseline_name = result.baseline_name;
  entry.baseline_cycles = result.baseline_cycles;
  entry.net_seed = opts.net.seed;
  entry.search_seed = opts.seed;
  entry.budget = "bw" + std::to_string(opts.beam_width) + ":g" +
                 std::to_string(opts.generations) + ":m" +
                 std::to_string(opts.mutations_per_survivor) + ":sa" +
                 std::to_string(opts.sa_steps) + ":t" +
                 std::to_string(std::max(1, opts.sim_threads));
  cache.store(entry);
  return result;
}

CommSchedule build_cached_schedule(const CacheEntry& entry,
                                   const net::NetworkConfig& net,
                                   const net::FaultPlan* faults) {
  net::NetworkConfig cfg = net;
  cfg.seed = entry.net_seed;
  return build_genome_schedule(entry.genome, cfg, entry.msg_bytes, faults);
}

CachedSelection select_strategy_cached(const topo::Shape& shape,
                                       std::uint64_t msg_bytes,
                                       const net::FaultPlan* faults,
                                       const SynthCache& cache) {
  CachedSelection selection;
  selection.registry = select_strategy(shape, msg_bytes, faults);
  const net::FaultConfig fault_config =
      faults != nullptr ? faults->config() : net::FaultConfig{};
  CacheEntry entry;
  if (cache.lookup(SynthCache::problem_key(shape, msg_bytes, fault_config), entry) &&
      entry.cycles < entry.baseline_cycles) {
    selection.use_synth = true;
    selection.entry = entry;
  }
  return selection;
}

}  // namespace bgl::coll::synth
