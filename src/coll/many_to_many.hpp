// Sparse (many-to-many) personalized communication over the same substrate
// as the all-to-all strategies — the generalization the paper's introduction
// and summary motivate ("we hope the performance analysis and optimization
// techniques ... can also be applied for more complex many-to-many
// communication patterns").
//
// A Pattern lists each node's destinations. Two transports are provided:
//   - direct: randomized destination order, adaptive or deterministic
//     routing (the AR/DR machinery applied to a sparse pattern);
//   - two-phase: the TPS trick applied per message — packets first travel
//     the chosen linear dimension to an intermediate that shares the
//     destination's linear coordinate, then are forwarded within the plane,
//     with the phases in separate injection-FIFO groups.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/coll/strategy_client.hpp"
#include "src/coll/verify.hpp"
#include "src/network/config.hpp"
#include "src/runtime/packetizer.hpp"
#include "src/topology/torus.hpp"
#include "src/trace/stats.hpp"

namespace bgl::coll {

/// Per-node destination lists (self entries are ignored).
struct Pattern {
  std::vector<std::vector<topo::Rank>> dests;

  std::size_t total_messages() const;

  /// Every node sends to `fanout` distinct uniform-random peers.
  static Pattern random_subset(std::int32_t nodes, int fanout, std::uint64_t seed);

  /// 6-point halo exchange: each node talks to its torus neighbors
  /// (deduplicated; mesh edges skipped).
  static Pattern halo(const topo::Shape& shape);

  /// Row/column partners of a process grid laid over the ranks: each node
  /// sends to every rank sharing its row or column of an rows x cols grid
  /// (a common sub-communicator collective footprint).
  static Pattern grid_partners(std::int32_t nodes, int cols);
};

struct ManyToManyOptions {
  net::NetworkConfig net{};
  std::uint64_t msg_bytes = 240;
  net::RoutingMode mode = net::RoutingMode::kAdaptive;
  /// Route through TPS-style intermediates instead of directly.
  bool two_phase = false;
  int linear_axis = -1;  // -1 = paper rule (two_phase only)
  double alpha_cycles = 450.0;
  std::uint32_t forward_cpu_cycles = 200;
  DeliveryMatrix* deliveries = nullptr;
};

struct ManyToManyResult {
  net::Tick elapsed_cycles = 0;
  double elapsed_us = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t packets_delivered = 0;
  bool drained = false;
  trace::LinkReport links;
};

ManyToManyResult run_many_to_many(const Pattern& pattern, const ManyToManyOptions& options);

/// The fabric client behind run_many_to_many (exposed for tests).
class SparseClient : public StrategyClient {
 public:
  SparseClient(const net::NetworkConfig& config, const Pattern& pattern,
               const ManyToManyOptions& options);

  bool next_packet(topo::Rank node, net::InjectDesc& out) override;
  void on_delivery(topo::Rank node, const net::Packet& packet) override;

  int linear_axis() const { return linear_axis_; }
  std::uint64_t expected_final_packets() const { return expected_final_; }

 private:
  struct Forward {
    topo::Rank final_dst;
    topo::Rank orig_src;
    std::uint32_t payload_bytes;
    std::uint16_t chunks;
  };
  struct NodeState {
    std::vector<topo::Rank> dests;  // shuffled
    std::uint32_t dest_index = 0;
    std::uint32_t packet_index = 0;
    std::deque<Forward> forwards;
    std::uint8_t fifo_rr1 = 0;
    std::uint8_t fifo_rr2 = 0;
  };

  topo::Rank intermediate_for(topo::Rank src, topo::Rank dst) const;
  std::uint8_t pick_fifo(NodeState& s, bool phase1);

  net::NetworkConfig config_;
  topo::Torus torus_;
  ManyToManyOptions options_;
  int linear_axis_ = -1;
  std::vector<rt::PacketSpec> packets_;
  std::vector<NodeState> nodes_;
  std::uint64_t expected_final_ = 0;
};

}  // namespace bgl::coll
