// Strategy selection rule from the paper's conclusion (Section 5):
//  - short messages (at or below the measured 32-64 B change-over) on large
//    partitions: the virtual-mesh message-combining scheme;
//  - symmetric torus: the direct AR strategy (randomization + adaptive
//    routing already reach ~99% of peak);
//  - asymmetric torus or mesh: the Two Phase Schedule.
//
// Under permanent faults the paper pick may strand pairs at dead relays, so
// the selector scores candidates on their schedule IR instead of guessing:
// each candidate's reachable-pair coverage comes from the same
// CommSchedule::pair_covered logic the linter checks, and ties break on a
// degraded closed-form time estimate (Eqs. 3/2/4 scaled by the live-link
// fraction). Above kSelectorScoreLimit nodes the O(P^2) coverage scan is too
// expensive and the selector falls back to direct AR, whose adaptive routing
// reroutes around failed hardware packet by packet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/network/faults.hpp"
#include "src/topology/torus.hpp"

namespace bgl::coll {

/// One fault-mode candidate's score card.
struct CandidateScore {
  StrategyKind kind = StrategyKind::kAdaptiveRandom;
  /// Ordered pairs the candidate's schedule still carries under the plan.
  std::uint64_t covered_pairs = 0;
  std::uint64_t total_pairs = 0;
  /// Closed-form healthy-time estimate scaled by the live-link fraction, us.
  double degraded_est_us = 0.0;
  /// False when the builder rejected the configuration (e.g. a shape
  /// dimensionality it does not support); such candidates score zero
  /// coverage and never win, but scoring itself does not throw.
  bool eligible = true;
  /// The builder's rejection message when !eligible.
  std::string ineligible_reason;
};

struct Selection {
  StrategyKind kind = StrategyKind::kAdaptiveRandom;
  std::string rationale;
  /// Scored fault-mode candidates, best first (empty when the paper rule
  /// applied directly: no permanent faults, or above kSelectorScoreLimit).
  std::vector<CandidateScore> candidates;
};

/// Message size at or below which the combining scheme wins (paper: the
/// measured change-over sits between 32 and 64 bytes).
inline constexpr std::uint64_t kShortMessageBytes = 64;

/// Partitions smaller than this have negligible combining benefit (and the
/// virtual mesh needs enough nodes for its two phases to pay off).
inline constexpr std::int64_t kVmeshMinNodes = 256;

/// Largest partition the fault-mode selector scores with the O(P^2)
/// coverage scan; larger faulted partitions fall back to direct AR.
inline constexpr std::int64_t kSelectorScoreLimit = 2048;

/// Applies the paper's rule; with permanent faults, scores candidates by
/// IR-computed coverage and degraded-peak estimate as described above.
Selection select_strategy(const topo::Shape& shape, std::uint64_t msg_bytes,
                          const net::FaultPlan* faults = nullptr);

}  // namespace bgl::coll
