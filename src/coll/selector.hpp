// Strategy selection rule from the paper's conclusion (Section 5):
//  - short messages (at or below the measured 32-64 B change-over) on large
//    partitions: the virtual-mesh message-combining scheme;
//  - symmetric torus: the direct AR strategy (randomization + adaptive
//    routing already reach ~99% of peak);
//  - asymmetric torus or mesh: the Two Phase Schedule.
#pragma once

#include <cstdint>
#include <string>

#include "src/coll/alltoall.hpp"
#include "src/network/faults.hpp"
#include "src/topology/torus.hpp"

namespace bgl::coll {

struct Selection {
  StrategyKind kind = StrategyKind::kAdaptiveRandom;
  std::string rationale;
};

/// Message size at or below which the combining scheme wins (paper: the
/// measured change-over sits between 32 and 64 bytes).
inline constexpr std::uint64_t kShortMessageBytes = 64;

/// Partitions smaller than this have negligible combining benefit (and the
/// virtual mesh needs enough nodes for its two phases to pay off).
inline constexpr std::int64_t kVmeshMinNodes = 256;

/// Applies the paper's rule, then degrades: when `faults` (optional) carries
/// permanent link or node failures, the indirect strategies' fixed relays
/// become fragile — phase-2 data is stranded wherever a relay or a leg died —
/// so the selector falls back to direct AR, whose adaptive routing reroutes
/// around the failed hardware packet by packet.
Selection select_strategy(const topo::Shape& shape, std::uint64_t msg_bytes,
                          const net::FaultPlan* faults = nullptr);

}  // namespace bgl::coll
