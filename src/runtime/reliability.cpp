#include "src/runtime/reliability.hpp"

#include <algorithm>

namespace bgl::rt {
namespace {

// End-to-end checksum over the packet identity the 8 B proto header commits
// to: who sent what to whom, under which sequence and ack state. The DES
// carries no payload bytes, so the checksum doubles as the payload's proxy —
// a Byzantine link "flips payload bits" by XORing this field in flight
// (fabric.cpp), and any nonzero XOR is detected by recomputation.
std::uint32_t header_checksum(std::uint32_t src, std::uint32_t dst,
                              std::uint64_t tag, std::uint32_t payload,
                              std::uint32_t seq, std::uint32_t ack_cum,
                              std::uint32_t ack_bits) {
  std::uint64_t h = 0x42474c6373756dULL;  // "BGLcsum"
  const auto mix = [&h](std::uint64_t v) {
    h += v;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
  };
  mix((std::uint64_t{src} << 32) | dst);
  mix(tag);
  mix((std::uint64_t{payload} << 32) | seq);
  mix((std::uint64_t{ack_cum} << 32) | ack_bits);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

std::uint32_t stamp_checksum(net::Rank src, const net::InjectDesc& desc) {
  return header_checksum(static_cast<std::uint32_t>(src),
                         static_cast<std::uint32_t>(desc.dst), desc.tag,
                         desc.payload_bytes, desc.seq, desc.ack_cum,
                         desc.ack_bits);
}

std::uint32_t expected_checksum(const net::Packet& packet) {
  return header_checksum(static_cast<std::uint32_t>(packet.src),
                         static_cast<std::uint32_t>(packet.dst), packet.tag,
                         packet.payload_bytes, packet.seq, packet.ack_cum,
                         packet.ack_bits);
}

}  // namespace

ReliableClient::ReliableClient(const net::NetworkConfig& config, net::Client& inner)
    : inner_(&inner),
      rto_(config.faults.retrans_timeout),
      ack_delay_(std::max<Tick>(1, config.faults.retrans_timeout / 8)),
      scan_period_(std::max<Tick>(1, config.faults.retrans_timeout / 4)),
      max_retries_(config.faults.max_retries) {
  const std::size_t nodes = static_cast<std::size_t>(config.shape.nodes());
  send_.resize(nodes);
  recv_.resize(nodes);
  ready_.resize(nodes);
  unacked_count_.assign(nodes, 0);
  scan_armed_.assign(nodes, 0);
  stats_by_node_.resize(nodes);
  abandoned_by_node_.resize(nodes);
}

bool ReliableClient::routable(Rank from, Rank to, net::RoutingMode mode) const {
  // Until a delayed permanent strike (fail_at > 0) actually lands, the
  // network is healthy and nobody may consult the plan's permanent state:
  // giving up on a pair the plan *will* sever would abandon traffic that is
  // deliverable right now. pair_routable_now encodes exactly that (and on a
  // parallel run answers through the executing slab's private memo).
  return fabric_->pair_routable_now(from, to, mode);
}

bool ReliableClient::next_packet(Rank node, net::InjectDesc& out) {
  auto& queue = ready_[static_cast<std::size_t>(node)];
  if (!queue.empty()) {
    out = queue.front();
    queue.pop_front();
    refresh_ack(node, out);
    out.checksum = stamp_checksum(node, out);  // ack fields just changed
    return true;
  }

  net::InjectDesc desc;
  if (!inner_->next_packet(node, desc)) return false;
  if (routable(node, desc.dst, desc.mode)) {
    SenderFlow& flow = send_[static_cast<std::size_t>(node)][desc.dst];
    desc.seq = ++flow.next_seq;
    Pending pending;
    pending.desc = desc;
    pending.sent_at = fabric_->now();
    flow.unacked.emplace(desc.seq, pending);
    ++unacked_count_[static_cast<std::size_t>(node)];
    ++stats_by_node_[static_cast<std::size_t>(node)].data_sequenced;
    arm_scan(node);
  }
  // else: no live path exists; the fabric consumes the descriptor and counts
  // it unroutable, and tracking it would only retransmit into the void.
  refresh_ack(node, desc);
  desc.checksum = stamp_checksum(node, desc);
  out = desc;
  return true;
}

void ReliableClient::refresh_ack(Rank node, net::InjectDesc& desc) {
  auto& flows = recv_[static_cast<std::size_t>(node)];
  const auto it = flows.find(desc.dst);
  if (it == flows.end()) return;
  ReceiverFlow& flow = it->second;
  desc.ack_cum = flow.cum;
  std::uint32_t bits = 0;
  for (int b = 0; b < 32; ++b) {
    if (flow.ooo.count(flow.cum + 1 + static_cast<std::uint32_t>(b))) {
      bits |= (std::uint32_t{1} << b);
    }
  }
  desc.ack_bits = bits;
  if (flow.ack_pending) {
    flow.ack_pending = false;
    ++stats_by_node_[static_cast<std::size_t>(node)].acks_piggybacked;
  }
}

void ReliableClient::on_delivery(Rank node, const net::Packet& packet) {
  // Integrity first: a packet that fails the end-to-end checksum crossed a
  // Byzantine link, and nothing in it can be trusted — not the payload and
  // not the piggybacked acks. Reject it before any protocol state is
  // touched. Re-advertising the receiver state after the ack delay acts as
  // a NACK (the sender sees the gap and its scan retransmits with backoff);
  // a corrupted standalone ack is simply dropped and a later ack, or the
  // sender's own timeout, covers for it.
  if (packet.checksum != expected_checksum(packet)) {
    ++stats_by_node_[static_cast<std::size_t>(node)].corrupt_rejected;
    if (packet.seq != 0) {
      ReceiverFlow& flow = recv_[static_cast<std::size_t>(node)][packet.src];
      flow.ack_pending = true;
      if (!flow.flush_scheduled) {
        flow.flush_scheduled = true;
        fabric_->schedule_timer(node, ack_delay_,
                                kCookieFlag | kAckFlushBit |
                                    static_cast<std::uint32_t>(packet.src));
      }
    }
    return;
  }
  // Every packet — data, duplicate, or standalone ack — carries fresh ack
  // state for the reverse flow.
  process_ack(node, packet.src, packet.ack_cum, packet.ack_bits);
  if (packet.seq == 0) return;  // standalone ack: header only, no payload

  ReceiverFlow& flow = recv_[static_cast<std::size_t>(node)][packet.src];
  const std::uint32_t seq = packet.seq;
  const bool duplicate = seq <= flow.cum || flow.ooo.count(seq) != 0;
  if (duplicate) {
    ++stats_by_node_[static_cast<std::size_t>(node)].duplicates_dropped;
  } else {
    flow.ooo.insert(seq);
    while (flow.ooo.erase(flow.cum + 1) != 0) ++flow.cum;
    inner_->on_delivery(node, packet);
  }
  // Ack (or re-ack — the previous ack may itself have been lost): piggyback
  // on the next reverse data packet, or flush standalone after the delay.
  flow.ack_pending = true;
  if (!flow.flush_scheduled) {
    flow.flush_scheduled = true;
    fabric_->schedule_timer(node, ack_delay_,
                            kCookieFlag | kAckFlushBit |
                                static_cast<std::uint32_t>(packet.src));
  }
}

void ReliableClient::process_ack(Rank node, Rank peer, std::uint32_t cum,
                                 std::uint32_t bits) {
  auto& flows = send_[static_cast<std::size_t>(node)];
  const auto it = flows.find(peer);
  if (it == flows.end()) return;
  SenderFlow& flow = it->second;
  auto& unacked = flow.unacked;
  while (!unacked.empty() && unacked.begin()->first <= cum) {
    unacked.erase(unacked.begin());
    --unacked_count_[static_cast<std::size_t>(node)];
  }
  for (int b = 0; b < 32 && bits != 0; ++b) {
    if ((bits >> b) & 1) {
      if (unacked.erase(cum + 1 + static_cast<std::uint32_t>(b)) != 0) {
        --unacked_count_[static_cast<std::size_t>(node)];
      }
    }
  }
}

void ReliableClient::on_timer(Rank node, std::uint64_t cookie) {
  if ((cookie & kCookieFlag) == 0) {
    inner_->on_timer(node, cookie);
    return;
  }
  if (cookie & kAckFlushBit) {
    ack_flush(node, static_cast<Rank>(cookie & 0xffffffffu));
    return;
  }
  scan(node);
}

void ReliableClient::ack_flush(Rank node, Rank sender) {
  ReceiverFlow& flow = recv_[static_cast<std::size_t>(node)][sender];
  flow.flush_scheduled = false;
  if (!flow.ack_pending) return;  // a data packet carried it meanwhile
  flow.ack_pending = false;
  if (!routable(node, sender, net::RoutingMode::kAdaptive)) return;
  net::InjectDesc ack;
  ack.dst = sender;
  ack.payload_bytes = 0;
  ack.wire_chunks = 1;  // the 8 B proto header rides in one 32 B chunk
  ack.mode = net::RoutingMode::kAdaptive;
  ack.fifo = 0;
  ready_[static_cast<std::size_t>(node)].push_back(ack);
  ++stats_by_node_[static_cast<std::size_t>(node)].acks_standalone;
  fabric_->wake_cpu(node);
}

void ReliableClient::arm_scan(Rank node) {
  if (scan_armed_[static_cast<std::size_t>(node)]) return;
  scan_armed_[static_cast<std::size_t>(node)] = 1;
  fabric_->schedule_timer(node, scan_period_, kCookieFlag);
}

void ReliableClient::scan(Rank node) {
  scan_armed_[static_cast<std::size_t>(node)] = 0;
  const Tick now = fabric_->now();
  bool emitted = false;
  for (auto& [peer, flow] : send_[static_cast<std::size_t>(node)]) {
    for (auto it = flow.unacked.begin(); it != flow.unacked.end();) {
      Pending& pending = it->second;
      const int backoff = std::min(pending.tries - 1, 6);
      const Tick patience = rto_ << backoff;
      if (now - pending.sent_at < patience) {
        ++it;
        continue;
      }
      if (pending.tries > max_retries_ ||
          !routable(node, peer, pending.desc.mode)) {
        ++stats_by_node_[static_cast<std::size_t>(node)].gave_up;
        abandoned_by_node_[static_cast<std::size_t>(node)].push_back(peer);
        --unacked_count_[static_cast<std::size_t>(node)];
        it = flow.unacked.erase(it);
        continue;
      }
      ++pending.tries;
      pending.sent_at = now;
      // A retransmission is a new transmission attempt for the fault hash:
      // stamp the attempt counter so the counter-based drop draw re-rolls
      // instead of deterministically re-dropping the copy at the same hop.
      pending.desc.attempt = static_cast<std::uint8_t>(
          std::min(pending.tries - 1, 255));
      ready_[static_cast<std::size_t>(node)].push_back(pending.desc);
      ++stats_by_node_[static_cast<std::size_t>(node)].retransmits;
      emitted = true;
      ++it;
    }
  }
  if (emitted) fabric_->wake_cpu(node);
  // Re-arm only while something is unacked, so a finished run quiesces.
  if (unacked_count_[static_cast<std::size_t>(node)] > 0) arm_scan(node);
}

}  // namespace bgl::rt
