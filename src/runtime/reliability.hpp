// End-to-end reliability for degraded networks.
//
// ReliableClient wraps a strategy's fabric client and adds, per ordered
// (injector, destination) pair:
//   - sequence numbers stamped into the packet's 8 B proto header,
//   - receiver-side duplicate suppression (cumulative counter + an
//     out-of-order set),
//   - acknowledgements: every data packet piggybacks the current cumulative
//     ack + a 32-bit SACK bitmap for its reverse flow; when no reverse
//     traffic appears within an ack delay, a standalone 1-chunk ack packet
//     is sent,
//   - retransmission from a per-node scan timer with exponential backoff
//     (rto << tries, capped) and a bounded retry budget; abandoned packets
//     are counted and their pairs reported.
//
// The wrapper is only interposed when fault injection is enabled
// (see coll::run_alltoall), so fault-free runs pay zero extra packets and
// remain bit-identical. Indirect strategies (TPS, VMesh) are covered per
// leg: each injection, including a forward from an intermediate, is its own
// reliable flow, so a lost packet is retried by the node that injected it.
//
// Timer cookies claim the bit-63 namespace; anything else is forwarded to
// the inner client (VMesh's phase gate uses cookie 1).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/network/fabric.hpp"

namespace bgl::rt {

using net::Rank;
using net::Tick;

struct ReliabilityStats {
  std::uint64_t data_sequenced = 0;      // data packets given a sequence number
  std::uint64_t retransmits = 0;         // re-emissions of unacked packets
  std::uint64_t gave_up = 0;             // packets abandoned after the budget
  std::uint64_t acks_standalone = 0;     // dedicated ack packets injected
  std::uint64_t acks_piggybacked = 0;    // pending acks carried by data
  std::uint64_t duplicates_dropped = 0;  // retransmit copies suppressed
  /// Deliveries rejected by the end-to-end payload checksum (Byzantine
  /// links, FaultConfig::corrupt_prob). Every corruption the fabric injects
  /// must land here — corrupt_rejected == FaultStats::corrupted_payloads on
  /// a drained run, or silent garbage reached the application.
  std::uint64_t corrupt_rejected = 0;
};

class ReliableClient final : public net::Client {
 public:
  /// `inner` must outlive this wrapper. Reliability knobs come from
  /// `config.faults` (retrans_timeout, max_retries).
  ReliableClient(const net::NetworkConfig& config, net::Client& inner);

  /// Call once, after the Fabric is constructed with *this* as its client.
  void attach(net::Fabric& fabric) { fabric_ = &fabric; }

  bool next_packet(Rank node, net::InjectDesc& out) override;
  void on_delivery(Rank node, const net::Packet& packet) override;
  void on_timer(Rank node, std::uint64_t cookie) override;

  /// Aggregated across nodes. All mutable protocol state is sharded per
  /// node (a node's handlers run on exactly one slab of a parallel run), so
  /// the accessors sum the shards instead of returning a shared counter.
  ReliabilityStats stats() const noexcept {
    ReliabilityStats total;
    for (const ReliabilityStats& s : stats_by_node_) {
      total.data_sequenced += s.data_sequenced;
      total.retransmits += s.retransmits;
      total.gave_up += s.gave_up;
      total.acks_standalone += s.acks_standalone;
      total.acks_piggybacked += s.acks_piggybacked;
      total.duplicates_dropped += s.duplicates_dropped;
      total.corrupt_rejected += s.corrupt_rejected;
    }
    return total;
  }

  /// Ordered (injector, destination) pairs with at least one abandoned
  /// packet; data for these pairs is incomplete despite being routable.
  /// Ordered by injector rank, then abandonment time within the rank.
  std::vector<std::pair<Rank, Rank>> abandoned_pairs() const {
    std::vector<std::pair<Rank, Rank>> out;
    for (Rank n = 0; n < static_cast<Rank>(abandoned_by_node_.size()); ++n) {
      for (const Rank peer : abandoned_by_node_[static_cast<std::size_t>(n)]) {
        out.emplace_back(n, peer);
      }
    }
    return out;
  }

 private:
  // Timer cookie namespace: bit 63 marks ours, bit 62 selects ack flush
  // (low 32 bits = sender being acked) vs the per-node retransmit scan.
  static constexpr std::uint64_t kCookieFlag = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kAckFlushBit = std::uint64_t{1} << 62;

  struct Pending {
    net::InjectDesc desc{};  // re-emittable copy, sequence number included
    Tick sent_at = 0;
    int tries = 1;  // sends so far
  };
  struct SenderFlow {
    std::uint32_t next_seq = 0;
    std::map<std::uint32_t, Pending> unacked;
  };
  struct ReceiverFlow {
    std::uint32_t cum = 0;            // all of 1..cum delivered to the app
    std::set<std::uint32_t> ooo;      // received above the cumulative point
    bool ack_pending = false;
    bool flush_scheduled = false;
  };

  bool routable(Rank from, Rank to, net::RoutingMode mode) const;
  void arm_scan(Rank node);
  void scan(Rank node);
  void ack_flush(Rank node, Rank sender);
  void process_ack(Rank node, Rank peer, std::uint32_t cum, std::uint32_t bits);
  /// Stamps the current receiver state for flow (desc.dst -> node) into the
  /// outgoing descriptor's ack fields.
  void refresh_ack(Rank node, net::InjectDesc& desc);

  net::Client* inner_;
  net::Fabric* fabric_ = nullptr;
  Tick rto_;
  Tick ack_delay_;
  Tick scan_period_;
  int max_retries_;

  // All per-node containers are std::map keyed by peer rank so iteration
  // order (and therefore every retransmission decision) is deterministic.
  std::vector<std::map<Rank, SenderFlow>> send_;
  std::vector<std::map<Rank, ReceiverFlow>> recv_;
  std::vector<std::deque<net::InjectDesc>> ready_;  // acks + retransmits
  std::vector<std::uint32_t> unacked_count_;
  std::vector<std::uint8_t> scan_armed_;

  // Sharded per injector node so concurrent slabs never share a counter.
  std::vector<ReliabilityStats> stats_by_node_;
  std::vector<std::vector<Rank>> abandoned_by_node_;
};

}  // namespace bgl::rt
