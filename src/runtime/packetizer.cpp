#include "src/runtime/packetizer.hpp"

#include <algorithm>
#include <cassert>

namespace bgl::rt {

namespace {

constexpr std::uint32_t round_up_chunks(std::uint32_t bytes) {
  return (bytes + kChunkBytes - 1) / kChunkBytes;
}

constexpr std::uint32_t capacity(int overhead) {
  return static_cast<std::uint32_t>(kMaxWireBytes - overhead);
}

}  // namespace

std::vector<PacketSpec> packetize(std::uint64_t payload_bytes, const WireFormat& format) {
  assert(format.first_packet_overhead >= 0 && format.first_packet_overhead < kMaxWireBytes);
  assert(format.later_packet_overhead >= 0 && format.later_packet_overhead < kMaxWireBytes);

  std::vector<PacketSpec> packets;
  std::uint64_t remaining = payload_bytes;

  const std::uint32_t first_take =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(remaining, capacity(format.first_packet_overhead)));
  packets.push_back(PacketSpec{
      first_take,
      static_cast<std::uint16_t>(std::max<std::uint32_t>(
          1, round_up_chunks(first_take + static_cast<std::uint32_t>(format.first_packet_overhead))))});
  remaining -= first_take;

  while (remaining > 0) {
    const std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, capacity(format.later_packet_overhead)));
    packets.push_back(PacketSpec{
        take,
        static_cast<std::uint16_t>(round_up_chunks(
            take + static_cast<std::uint32_t>(format.later_packet_overhead)))});
    remaining -= take;
  }
  return packets;
}

std::uint64_t wire_chunks_total(std::uint64_t payload_bytes, const WireFormat& format) {
  // First packet.
  const std::uint64_t first_take =
      std::min<std::uint64_t>(payload_bytes, capacity(format.first_packet_overhead));
  std::uint64_t chunks = std::max<std::uint32_t>(
      1, round_up_chunks(static_cast<std::uint32_t>(first_take) +
                         static_cast<std::uint32_t>(format.first_packet_overhead)));
  std::uint64_t remaining = payload_bytes - first_take;

  if (remaining > 0) {
    const std::uint64_t cap = capacity(format.later_packet_overhead);
    const std::uint64_t full = remaining / cap;
    const std::uint64_t tail = remaining % cap;
    chunks += full * round_up_chunks(static_cast<std::uint32_t>(cap) +
                                     static_cast<std::uint32_t>(format.later_packet_overhead));
    if (tail > 0) {
      chunks += round_up_chunks(static_cast<std::uint32_t>(tail) +
                                static_cast<std::uint32_t>(format.later_packet_overhead));
    }
  }
  return chunks;
}

std::uint64_t packet_count(std::uint64_t payload_bytes, const WireFormat& format) {
  const std::uint64_t first_take =
      std::min<std::uint64_t>(payload_bytes, capacity(format.first_packet_overhead));
  std::uint64_t count = 1;
  std::uint64_t remaining = payload_bytes - first_take;
  if (remaining > 0) {
    const std::uint64_t cap = capacity(format.later_packet_overhead);
    count += (remaining + cap - 1) / cap;
  }
  return count;
}

}  // namespace bgl::rt
