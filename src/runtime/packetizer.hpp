// Message packetization matching the Blue Gene/L messaging runtime described
// in the paper (Section 3):
//  - packets are 32..256 byte multiples of 32 bytes on the wire;
//  - direct strategies and TPS place a ~48 byte software header in the first
//    packet of each message (making the shortest all-to-all packet 64 bytes);
//    subsequent packets carry only the ~16 byte hardware header, so a full
//    256 byte packet holds 240 bytes of payload;
//  - the virtual-mesh (message combining) runtime instead uses a small ~8
//    byte protocol header carrying size and source (Section 4.2).
#pragma once

#include <cstdint>
#include <vector>

namespace bgl::rt {

inline constexpr int kChunkBytes = 32;
inline constexpr int kMaxWireBytes = 256;
inline constexpr int kHwOverheadBytes = 16;

/// Per-message wire overhead layout.
struct WireFormat {
  /// Overhead bytes in the message's first packet (includes hardware header).
  int first_packet_overhead = 48;
  /// Overhead bytes in every subsequent packet.
  int later_packet_overhead = kHwOverheadBytes;

  /// Direct strategies / TPS: 48 B software header, first packet only.
  static WireFormat direct() { return WireFormat{48, kHwOverheadBytes}; }
  /// Message-combining runtime: 8 B protocol header + hardware header.
  static WireFormat combining() { return WireFormat{8 + kHwOverheadBytes, kHwOverheadBytes}; }
};

struct PacketSpec {
  std::uint32_t payload_bytes = 0;
  std::uint16_t wire_chunks = 1;
};

/// Splits a `payload_bytes` message into wire packets. A zero-byte payload
/// still produces one (header-only) packet, as a real runtime must move the
/// envelope. The result is never empty.
std::vector<PacketSpec> packetize(std::uint64_t payload_bytes, const WireFormat& format);

/// Total wire chunks for a message without materializing the packet list.
std::uint64_t wire_chunks_total(std::uint64_t payload_bytes, const WireFormat& format);

/// Number of packets for a message.
std::uint64_t packet_count(std::uint64_t payload_bytes, const WireFormat& format);

}  // namespace bgl::rt
