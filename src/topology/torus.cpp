#include "src/topology/torus.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace bgl::topo {

int Shape::longest() const noexcept {
  int best = dim[0];
  for (int a = 1; a < axes; ++a) best = std::max(best, dim[static_cast<std::size_t>(a)]);
  return best;
}

int Shape::longest_axis() const noexcept {
  int best = 0;
  for (int a = 1; a < axes; ++a) {
    if (dim[static_cast<std::size_t>(a)] > dim[static_cast<std::size_t>(best)]) best = a;
  }
  return best;
}

bool Shape::symmetric() const noexcept {
  // The paper calls a partition symmetric when all dimensions of extent > 1
  // are equal: a 16x16 plane and an 8-node line count as symmetric.
  int ref = 0;
  for (int a = 0; a < axes; ++a) {
    const int d = dim[static_cast<std::size_t>(a)];
    if (d == 1) continue;
    if (ref == 0) {
      ref = d;
    } else if (d != ref) {
      return false;
    }
  }
  return true;
}

bool Shape::full_torus() const noexcept {
  for (int a = 0; a < axes; ++a) {
    if (dim[static_cast<std::size_t>(a)] > 1 && !wrap[static_cast<std::size_t>(a)]) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::string out;
  for (int a = 0; a < axes; ++a) {
    const auto i = static_cast<std::size_t>(a);
    if (a > 0) out += "x";
    out += std::to_string(dim[i]);
    if (dim[i] > 1 && !wrap[i]) out += "M";
  }
  return out;
}

Shape parse_shape(const std::string& text) {
  Shape shape;
  shape.dim.fill(1);
  shape.wrap.fill(false);
  int axis = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (axis >= kMaxAxes) {
      throw std::invalid_argument("too many dimensions (max " + std::to_string(kMaxAxes) +
                                  "): " + text);
    }
    std::size_t end = pos;
    std::int64_t extent = 0;
    bool overflow = false;
    while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end]))) {
      extent = extent * 10 + (text[end] - '0');
      if (extent > std::numeric_limits<std::int32_t>::max()) overflow = true;
      ++end;
    }
    if (end == pos) throw std::invalid_argument("bad partition spec: " + text);
    if (extent <= 0) {
      throw std::invalid_argument("extent must be positive in: " + text);
    }
    if (overflow) {
      throw std::invalid_argument("extent overflows int32 in: " + text);
    }
    bool wrap = true;
    if (end < text.size() && (text[end] == 'M' || text[end] == 'm')) {
      wrap = false;
      ++end;
    }
    shape.dim[static_cast<std::size_t>(axis)] = static_cast<int>(extent);
    shape.wrap[static_cast<std::size_t>(axis)] = wrap && extent > 1;
    ++axis;
    if (end < text.size()) {
      if (text[end] != 'x' && text[end] != 'X') {
        throw std::invalid_argument("bad separator in: " + text);
      }
      ++end;
      if (end == text.size()) throw std::invalid_argument("trailing separator: " + text);
    }
    pos = end;
  }
  if (axis == 0) throw std::invalid_argument("empty partition spec");
  shape.axes = axis;
  std::int64_t total = 1;
  for (int a = 0; a < shape.axes; ++a) {
    total *= shape.dim[static_cast<std::size_t>(a)];
    if (total > std::numeric_limits<std::int32_t>::max()) {
      throw std::invalid_argument("node count overflows int32: " + text);
    }
  }
  return shape;
}

Torus::Torus(Shape shape) : shape_(shape) {
  nodes_ = static_cast<std::int32_t>(shape_.nodes());
  assert(nodes_ >= 1);
}

Rank Torus::rank_of(const Coord& c) const noexcept {
  std::int64_t r = 0;
  for (int a = shape_.axes - 1; a >= 0; --a) {
    r = r * shape_.dim[static_cast<std::size_t>(a)] + c[a];
  }
  return static_cast<Rank>(r);
}

Coord Torus::coord_of(Rank r) const noexcept {
  Coord c;
  std::int64_t rest = r;
  for (int a = 0; a < shape_.axes; ++a) {
    const int extent = shape_.dim[static_cast<std::size_t>(a)];
    c[a] = static_cast<int>(rest % extent);
    rest /= extent;
  }
  return c;
}

Rank Torus::neighbor(Rank r, Direction dir) const noexcept {
  Coord c = coord_of(r);
  const auto axis = static_cast<std::size_t>(dir.axis);
  const int extent = shape_.dim[axis];
  int next = c[dir.axis] + dir.sign;
  if (next < 0 || next >= extent) {
    if (!shape_.wrap[axis]) return -1;
    next = (next + extent) % extent;
  }
  c[dir.axis] = next;
  return rank_of(c);
}

int Torus::hops_signed(int a, int b, int axis) const noexcept {
  const auto ax = static_cast<std::size_t>(axis);
  const int extent = shape_.dim[ax];
  int delta = b - a;
  if (!shape_.wrap[ax]) return delta;
  // Reduce to the minimal representative in (-extent/2, extent/2].
  delta %= extent;
  if (delta > extent / 2) delta -= extent;
  if (delta < -(extent - 1) / 2) delta += extent;
  return delta;
}

int Torus::hops(int a, int b, int axis) const noexcept {
  return std::abs(hops_signed(a, b, axis));
}

int Torus::distance(Rank a, Rank b) const noexcept {
  const Coord ca = coord_of(a);
  const Coord cb = coord_of(b);
  int total = 0;
  for (int axis = 0; axis < shape_.axes; ++axis) total += hops(ca[axis], cb[axis], axis);
  return total;
}

double Torus::mean_hops(int axis) const noexcept {
  const auto ax = static_cast<std::size_t>(axis);
  const int extent = shape_.dim[ax];
  if (extent <= 1) return 0.0;
  // Exact mean over all ordered pairs (a, b) including a == b, matching the
  // averaging in the paper's Eq. 2 (which uses M/4 for a torus).
  std::int64_t total = 0;
  for (int a = 0; a < extent; ++a) {
    for (int b = 0; b < extent; ++b) total += hops(a, b, axis);
  }
  return static_cast<double>(total) / (static_cast<double>(extent) * extent);
}

bool Torus::is_halfway_tie(int a, int b, int axis) const noexcept {
  const auto ax = static_cast<std::size_t>(axis);
  if (!shape_.wrap[ax]) return false;
  const int extent = shape_.dim[ax];
  if (extent % 2 != 0) return false;
  return hops(a, b, axis) == extent / 2;
}

}  // namespace bgl::topo
