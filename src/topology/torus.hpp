// Three-dimensional torus / mesh topology for the Blue Gene/L network.
//
// A partition is a box of Dx x Dy x Dz nodes; each dimension independently is
// either a torus (wraparound links present) or a mesh. The paper's partition
// notation "8 x 8 x 2M" means the Z dimension is a mesh. Node ranks are
// X-major: rank = x + Dx * (y + Dy * z), matching BG/L's natural ordering.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bgl::topo {

using Rank = std::int32_t;

/// Dimension indices; BG/L routes dimension order X, then Y, then Z.
enum Axis : int { kX = 0, kY = 1, kZ = 2 };
inline constexpr int kAxes = 3;

/// One of the six torus directions: axis + sign.
struct Direction {
  int axis = 0;   // 0..2
  int sign = +1;  // +1 or -1

  /// Dense index in [0, 6): X+,X-,Y+,Y-,Z+,Z-.
  constexpr int index() const noexcept { return axis * 2 + (sign > 0 ? 0 : 1); }
  static constexpr Direction from_index(int i) noexcept {
    return Direction{i / 2, (i % 2 == 0) ? +1 : -1};
  }
  friend constexpr bool operator==(const Direction&, const Direction&) = default;
};
inline constexpr int kDirections = 6;

struct Coord {
  std::array<int, kAxes> v{0, 0, 0};
  int& operator[](int axis) { return v[static_cast<std::size_t>(axis)]; }
  int operator[](int axis) const { return v[static_cast<std::size_t>(axis)]; }
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Shape of a partition: per-dimension extent and wrap (torus) flag.
struct Shape {
  std::array<int, kAxes> dim{1, 1, 1};
  std::array<bool, kAxes> wrap{true, true, true};

  std::int64_t nodes() const noexcept {
    return static_cast<std::int64_t>(dim[0]) * dim[1] * dim[2];
  }
  /// Longest dimension extent (the paper's M).
  int longest() const noexcept;
  /// Axis of the longest dimension (ties broken toward X).
  int longest_axis() const noexcept;
  bool symmetric() const noexcept;
  /// True if every dimension wraps.
  bool full_torus() const noexcept;
  std::string to_string() const;

  friend bool operator==(const Shape&, const Shape&) = default;
};

/// Parses the paper's partition notation: "8", "8x8", "40x32x16", with an
/// optional "M" suffix per dimension marking it as a mesh ("8x8x2M").
/// Dimensions of extent 1 are treated as meshes (wrap is meaningless).
/// Throws std::invalid_argument on malformed input.
Shape parse_shape(const std::string& text);

/// Geometry queries over a Shape. Cheap value type; copy freely.
class Torus {
 public:
  Torus() = default;
  explicit Torus(Shape shape);

  const Shape& shape() const noexcept { return shape_; }
  std::int32_t nodes() const noexcept { return nodes_; }

  Rank rank_of(const Coord& c) const noexcept;
  Coord coord_of(Rank r) const noexcept;

  /// Neighbor along `dir`; returns -1 when stepping off a mesh edge.
  Rank neighbor(Rank r, Direction dir) const noexcept;

  /// Minimal signed hop count from `a` to `b` along `axis`; positive means
  /// travel in the + direction. On a torus an exact half-way distance is a
  /// tie; this deterministic variant prefers +. See `hops_signed_rand`.
  int hops_signed(int a, int b, int axis) const noexcept;

  /// Number of hops (absolute) on the minimal path along `axis`.
  int hops(int a, int b, int axis) const noexcept;

  /// Total minimal hop distance between two ranks.
  int distance(Rank a, Rank b) const noexcept;

  /// Mean hops along `axis` over ordered pairs (including self pairs), the
  /// quantity the paper's Eq. 2 peak uses: M/4 for a torus, ~M/3 for a mesh.
  double mean_hops(int axis) const noexcept;

  /// True if the half-way tie case exists for this axis distance (torus with
  /// even extent and |delta| == extent/2).
  bool is_halfway_tie(int a, int b, int axis) const noexcept;

 private:
  Shape shape_{};
  std::int32_t nodes_ = 1;
};

}  // namespace bgl::topo
