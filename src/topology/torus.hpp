// k-ary n-dimensional torus / mesh topology (n in [1, kMaxAxes]).
//
// A partition is a box of D0 x D1 x ... x D(n-1) nodes; each dimension
// independently is either a torus (wraparound links present) or a mesh. The
// paper's partition notation "8 x 8 x 2M" means the last dimension is a
// mesh. Node ranks are axis-0-major: rank = c0 + D0 * (c1 + D1 * (c2 + ...)),
// matching BG/L's natural X-major ordering on 3-D shapes. The dimensionality
// is a runtime property of Shape; storage is fixed-capacity arrays so Coord
// and Shape stay cheap value types (no heap, trivially copyable).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bgl::topo {

using Rank = std::int32_t;

/// Axis indices for code that names specific axes; BG/L routes dimension
/// order along axis 0, then 1, then 2 (X, Y, Z on a 3-D shape).
enum Axis : int { kX = 0, kY = 1, kZ = 2, kW = 3 };

/// Maximum supported dimensionality. Fixed-capacity so Coord/Shape stay
/// trivially copyable; 2 * kMaxAxes directions fit the fabric's 8-bit
/// direction want-masks exactly.
inline constexpr int kMaxAxes = 4;
inline constexpr int kMaxDirections = 2 * kMaxAxes;

/// One torus direction: axis + sign. On an n-dimensional shape the valid
/// dense indices are [0, 2n): A0+, A0-, A1+, A1-, ... The reverse of
/// direction index i is i ^ 1.
struct Direction {
  int axis = 0;   // 0 .. axes-1
  int sign = +1;  // +1 or -1

  /// Dense index in [0, 2n).
  constexpr int index() const noexcept { return axis * 2 + (sign > 0 ? 0 : 1); }
  static constexpr Direction from_index(int i) noexcept {
    return Direction{i / 2, (i % 2 == 0) ? +1 : -1};
  }
  friend constexpr bool operator==(const Direction&, const Direction&) = default;
};

/// A node coordinate. Entries at axes >= the shape's axis count are always 0.
struct Coord {
  std::array<int, kMaxAxes> v{0, 0, 0, 0};
  int& operator[](int axis) { return v[static_cast<std::size_t>(axis)]; }
  int operator[](int axis) const { return v[static_cast<std::size_t>(axis)]; }
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Shape of a partition: runtime dimensionality, per-dimension extent and
/// wrap (torus) flag. Entries at axes >= `axes` are extent 1 and never
/// consulted. Default-constructed shapes are 3-D (1x1x1) for compatibility
/// with the original fixed-3-D API.
struct Shape {
  std::array<int, kMaxAxes> dim{1, 1, 1, 1};
  std::array<bool, kMaxAxes> wrap{true, true, true, true};
  int axes = 3;

  /// Runtime dimensionality n.
  int axis_count() const noexcept { return axes; }
  /// Number of link directions, 2n.
  int directions() const noexcept { return 2 * axes; }

  std::int64_t nodes() const noexcept {
    std::int64_t n = 1;
    for (int a = 0; a < axes; ++a) n *= dim[static_cast<std::size_t>(a)];
    return n;
  }
  /// Longest dimension extent (the paper's M).
  int longest() const noexcept;
  /// Axis of the longest dimension (ties broken toward axis 0).
  int longest_axis() const noexcept;
  bool symmetric() const noexcept;
  /// True if every dimension wraps.
  bool full_torus() const noexcept;
  std::string to_string() const;

  friend bool operator==(const Shape&, const Shape&) = default;
};

/// Parses the paper's partition notation with 1 to kMaxAxes dimensions:
/// "64", "8x8", "40x32x16", "4x4x4x4", with an optional "M" suffix per
/// dimension marking it as a mesh ("8x8x2M"). Dimensions of extent 1 are
/// treated as meshes (wrap is meaningless). The parsed dimensionality is the
/// number of dimensions written: "8x8" is 2-D, "8x8x1" is 3-D. Rejects zero
/// or negative extents and node counts that overflow int32.
/// Throws std::invalid_argument on malformed input.
Shape parse_shape(const std::string& text);

/// Geometry queries over a Shape. Cheap value type; copy freely.
class Torus {
 public:
  Torus() = default;
  explicit Torus(Shape shape);

  const Shape& shape() const noexcept { return shape_; }
  std::int32_t nodes() const noexcept { return nodes_; }
  int axis_count() const noexcept { return shape_.axes; }
  int directions() const noexcept { return 2 * shape_.axes; }

  Rank rank_of(const Coord& c) const noexcept;
  Coord coord_of(Rank r) const noexcept;

  /// Neighbor along `dir`; returns -1 when stepping off a mesh edge.
  Rank neighbor(Rank r, Direction dir) const noexcept;

  /// Minimal signed hop count from `a` to `b` along `axis`; positive means
  /// travel in the + direction. On a torus an exact half-way distance is a
  /// tie; this deterministic variant prefers +. See `hops_signed_rand`.
  int hops_signed(int a, int b, int axis) const noexcept;

  /// Number of hops (absolute) on the minimal path along `axis`.
  int hops(int a, int b, int axis) const noexcept;

  /// Total minimal hop distance between two ranks.
  int distance(Rank a, Rank b) const noexcept;

  /// Mean hops along `axis` over ordered pairs (including self pairs), the
  /// quantity the paper's Eq. 2 peak uses: M/4 for a torus, ~M/3 for a mesh.
  double mean_hops(int axis) const noexcept;

  /// True if the half-way tie case exists for this axis distance (torus with
  /// even extent and |delta| == extent/2).
  bool is_halfway_tie(int a, int b, int axis) const noexcept;

 private:
  Shape shape_{};
  std::int32_t nodes_ = 1;
};

}  // namespace bgl::topo
