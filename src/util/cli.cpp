#include "src/util/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace bgl::util {

// std::stoll silently accepts trailing junk ("--seed 12x" used to run with
// seed 12), so numeric options are parsed strictly: the whole token must be
// one finite number or the option is rejected with a clear message.

std::int64_t parse_strict_int(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error(what + ": expected an integer, got '" + text + "'");
  }
  return value;
}

double parse_strict_double(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error(what + ": expected a number, got '" + text + "'");
  }
  return value;
}

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself an option; otherwise a
    // bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return parse_strict_int(it->second, "option --" + name);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return parse_strict_double(it->second, "option --" + name);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "on" || it->second == "yes") {
    return true;
  }
  return false;
}

void Cli::describe(const std::string& name, const std::string& help) {
  described_.emplace_back(name, help);
}

void Cli::validate() const {
  if (has("help")) {
    std::printf("usage: %s [options]\n", program_.c_str());
    for (const auto& [name, help] : described_) {
      std::printf("  --%-20s %s\n", name.c_str(), help.c_str());
    }
    std::exit(0);
  }
  if (described_.empty()) return;
  for (const auto& [key, value] : options_) {
    (void)value;
    bool known = key == "help";
    for (const auto& [name, help] : described_) {
      (void)help;
      if (name == key) {
        known = true;
        break;
      }
    }
    if (!known) throw std::runtime_error("unknown option: --" + key);
  }
}

std::vector<std::int64_t> parse_int_list(const std::string& text) {
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto comma = text.find(',', pos);
    const auto piece = text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!piece.empty()) out.push_back(parse_strict_int(piece, "list entry"));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace bgl::util
