// Shared CLI handling of --shape style arguments. A malformed partition
// spec (zero/negative extent, too many dimensions, int32 overflow, stray
// characters) is a user error, not a programming error: report the parser's
// message on stderr and exit 2, the same convention the bench harness uses
// for every other bad option.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "src/topology/torus.hpp"

namespace bgl::util {

inline topo::Shape shape_arg_or_exit(const std::string& spec,
                                     const std::string& program) {
  try {
    return topo::parse_shape(spec);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: error: %s\n", program.c_str(), error.what());
    std::exit(2);
  }
}

}  // namespace bgl::util
