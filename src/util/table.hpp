// Plain-text table rendering for bench output.
//
// Every reproduction bench prints a table whose rows mirror the paper's table
// or figure series, with paper-reported and measured columns side by side.
#pragma once

#include <string>
#include <vector>

namespace bgl::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment; numeric-looking cells right-aligned.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming to a fixed notation.
std::string fmt(double value, int precision = 1);

/// Formats a byte count with unit suffix for axis labels ("8B", "4KB").
std::string fmt_bytes(std::uint64_t bytes);

}  // namespace bgl::util
