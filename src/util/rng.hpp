// Deterministic pseudo-random number generation for the simulator.
//
// All randomness in the library flows through Xoshiro256StarStar seeded via
// SplitMix64 so that a run is exactly reproducible from a single 64-bit seed.
// We deliberately avoid <random> engines in the hot path: the simulator draws
// per-packet tie-break bits, and std::mt19937_64 is several times slower and
// its distributions are not reproducible across standard library versions.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

namespace bgl::util {

/// SplitMix64 step; used to expand a single seed into a full generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double unit() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool coin() noexcept { return ((*this)() >> 63) != 0; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derive an independent child generator (for per-node streams).
  Xoshiro256StarStar fork() noexcept { return Xoshiro256StarStar{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// A random bijection on [0, n) with O(1) memory: i -> (a*i + b) mod n with
/// gcd(a, n) == 1. Used for destination orderings on partitions too large to
/// materialize a shuffled permutation per node.
class AffinePermutation {
 public:
  AffinePermutation() = default;

  AffinePermutation(std::uint64_t n, Xoshiro256StarStar& rng) : n_(n) {
    if (n_ == 0) return;
    do {
      a_ = 1 + rng.below(n_);
    } while (std::gcd(a_, n_) != 1);
    b_ = rng.below(n_);
  }

  std::uint64_t size() const noexcept { return n_; }

  std::uint64_t operator()(std::uint64_t i) const noexcept {
    return (a_ * (i % n_) + b_) % n_;
  }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t a_ = 1;
  std::uint64_t b_ = 0;
};

}  // namespace bgl::util
