#include "src/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>

namespace bgl::util {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (const char c : cell) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == '%' || c == 'e')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      out += ' ';
      if (looks_numeric(row[c])) {
        out.append(pad, ' ');
        out += row[c];
      } else {
        out += row[c];
        out.append(pad, ' ');
      }
      out += " |";
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (const std::size_t w : widths) {
    out.append(w + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluMB", static_cast<unsigned long long>(bytes / (1024 * 1024)));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluKB", static_cast<unsigned long long>(bytes / 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace bgl::util
