// Minimal command-line option parsing shared by benches and examples.
//
// Supports `--flag`, `--key value` and `--key=value` forms. Unknown options
// raise an error so a typo'd sweep parameter cannot silently run the default
// experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bgl::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  /// Strict: the whole value must parse as one integer/number, otherwise a
  /// std::runtime_error naming the option is thrown ("--seed 12x" is an
  /// error, not seed 12).
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

  /// Declares an accepted option for `--help` output and typo checking.
  /// Call before `validate()`.
  void describe(const std::string& name, const std::string& help);

  /// Exits with usage text when `--help` given; throws std::runtime_error on
  /// unknown options if any were described.
  void validate() const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> described_;
};

/// Parses a comma-separated list of integers ("8,64,512"). Throws
/// std::runtime_error on non-integer entries.
std::vector<std::int64_t> parse_int_list(const std::string& text);

/// Strict full-string numeric parsing (the machinery behind get_int /
/// get_double, shared by structured option parsers like --shard and
/// --faults): the whole token must be a single finite number, otherwise a
/// std::runtime_error naming `what` is thrown.
std::int64_t parse_strict_int(const std::string& text, const std::string& what);
double parse_strict_double(const std::string& text, const std::string& what);

}  // namespace bgl::util
