#include "src/sim/engine.hpp"

namespace bgl::sim {

bool Engine::run(Tick deadline) {
  while (auto event = queue_.pop_if_at_most(deadline)) {
    now_ = event->time;
    ++processed_;
    handler_->handle(*event);
    if (abort_check_ && (processed_ & kAbortPollMask) == 0 && abort_check_()) {
      aborted_ = true;
      return false;
    }
  }
  return queue_.empty();
}

}  // namespace bgl::sim
