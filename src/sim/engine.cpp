#include "src/sim/engine.hpp"

namespace bgl::sim {

bool Engine::run(Tick deadline) {
  while (auto event = queue_.pop_if_at_most(deadline)) {
    now_ = event->time;
    ++processed_;
    handler_->handle(*event);
  }
  return queue_.empty();
}

}  // namespace bgl::sim
