// Event loop driving a single handler (the network fabric).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "src/sim/event_queue.hpp"

namespace bgl::sim {

/// Receiver of simulation events. One handler per engine; event `type`
/// namespaces are the handler's concern.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void handle(const Event& event) = 0;
};

class Engine {
 public:
  explicit Engine(EventHandler& handler) : handler_(&handler) {}

  Tick now() const noexcept { return now_; }

  void schedule(Tick at, std::uint32_t type, std::uint32_t a = 0, std::uint64_t b = 0) {
    if (at < now_) {
      // A handler scheduling into the past is a bug: the event would fire
      // "now" and silently reorder against already-queued same-tick events.
      // Strict mode (BGL_CHECK / debug_checks) reports it; the permissive
      // default clamps so release sweeps degrade instead of dying.
      if (strict_) throw_past_due(at, type);
      at = now_;
    }
    queue_.push(at, type, a, b);
  }
  void schedule_in(Tick delay, std::uint32_t type, std::uint32_t a = 0, std::uint64_t b = 0) {
    queue_.push(now_ + delay, type, a, b);
  }

  /// Runs until the queue drains or `deadline` passes. Returns true if the
  /// queue drained (i.e. the simulation reached quiescence).
  bool run(Tick deadline = ~Tick{0});

  /// Processed event count (for micro-benchmarks and budget checks).
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Host-side watchdog, polled every few thousand events inside run();
  /// returning true aborts the loop (run() then reports not-drained and
  /// aborted() turns true). Used for per-job wall-clock timeouts — results
  /// of an aborted run are not meaningful and must be discarded.
  void set_abort_check(std::function<bool()> check) { abort_check_ = std::move(check); }
  bool aborted() const noexcept { return aborted_; }

  /// Strict mode: abort (throw) on past-due schedule() calls instead of
  /// clamping them to now(). Wired to NetworkConfig::debug_checks.
  void set_strict(bool strict) noexcept { strict_ = strict; }

  TimingWheel& queue() noexcept { return queue_; }

 private:
  /// Events between abort-check polls (power of two; a steady_clock read
  /// every ~8k events is noise even for micro benches).
  static constexpr std::uint64_t kAbortPollMask = 0x1fff;

  [[noreturn]] void throw_past_due(Tick at, std::uint32_t type) const {
    throw std::logic_error("Engine::schedule into the past: type=" +
                           std::to_string(type) + " at=" + std::to_string(at) +
                           " now=" + std::to_string(now_));
  }

  EventHandler* handler_;
  TimingWheel queue_;
  Tick now_ = 0;
  std::uint64_t processed_ = 0;
  std::function<bool()> abort_check_;
  bool aborted_ = false;
  bool strict_ = false;
};

}  // namespace bgl::sim
