// Event loop driving a single handler (the network fabric).
#pragma once

#include <cstdint>
#include <functional>

#include "src/sim/event_queue.hpp"

namespace bgl::sim {

/// Receiver of simulation events. One handler per engine; event `type`
/// namespaces are the handler's concern.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void handle(const Event& event) = 0;
};

class Engine {
 public:
  explicit Engine(EventHandler& handler) : handler_(&handler) {}

  Tick now() const noexcept { return now_; }

  void schedule(Tick at, std::uint32_t type, std::uint32_t a = 0, std::uint64_t b = 0) {
    queue_.push(at < now_ ? now_ : at, type, a, b);
  }
  void schedule_in(Tick delay, std::uint32_t type, std::uint32_t a = 0, std::uint64_t b = 0) {
    queue_.push(now_ + delay, type, a, b);
  }

  /// Runs until the queue drains or `deadline` passes. Returns true if the
  /// queue drained (i.e. the simulation reached quiescence).
  bool run(Tick deadline = ~Tick{0});

  /// Processed event count (for micro-benchmarks and budget checks).
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Host-side watchdog, polled every few thousand events inside run();
  /// returning true aborts the loop (run() then reports not-drained and
  /// aborted() turns true). Used for per-job wall-clock timeouts — results
  /// of an aborted run are not meaningful and must be discarded.
  void set_abort_check(std::function<bool()> check) { abort_check_ = std::move(check); }
  bool aborted() const noexcept { return aborted_; }

  TimingWheel& queue() noexcept { return queue_; }

 private:
  /// Events between abort-check polls (power of two; a steady_clock read
  /// every ~8k events is noise even for micro benches).
  static constexpr std::uint64_t kAbortPollMask = 0x1fff;

  EventHandler* handler_;
  TimingWheel queue_;
  Tick now_ = 0;
  std::uint64_t processed_ = 0;
  std::function<bool()> abort_check_;
  bool aborted_ = false;
};

}  // namespace bgl::sim
