#include "src/sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace bgl::sim {

void EventQueue::push(Tick time, std::uint32_t type, std::uint32_t a, std::uint64_t b) {
  heap_.push_back(Event{time, next_seq_++, type, a, b});
  sift_up(heap_.size() - 1);
}

void EventQueue::push_event(const Event& event) {
  heap_.push_back(event);
  next_seq_ = std::max(next_seq_, event.seq + 1);
  sift_up(heap_.size() - 1);
}

Event EventQueue::pop() {
  Event out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
}

void EventQueue::sift_up(std::size_t i) noexcept {
  Event e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  Event e = heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && later(heap_[child], heap_[child + 1])) ++child;
    if (!later(e, heap_[child])) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

TimingWheel::TimingWheel(std::size_t size_pow2) : buckets_(size_pow2), mask_(size_pow2 - 1) {
  assert((size_pow2 & mask_) == 0 && "wheel size must be a power of two");
}

void TimingWheel::push(Tick time, std::uint32_t type, std::uint32_t a, std::uint64_t b) {
  if (time < cursor_) time = cursor_;
  const Event event{time, next_seq_++, type, a, b};
  if (time - cursor_ < buckets_.size()) {
    buckets_[time & mask_].push_back(event);
    ++count_;
  } else {
    overflow_.push_event(event);
  }
}

std::optional<Tick> TimingWheel::next_time() const noexcept {
  if (count_ > 0) {
    // Bucket events are all earlier than anything in overflow (the overflow
    // heap only holds events at or beyond cursor + size).
    for (Tick t = cursor_;; ++t) {
      const auto& bucket = buckets_[t & mask_];
      const std::size_t pos = (t == cursor_) ? bucket_pos_ : 0;
      if (pos < bucket.size()) return bucket[pos].time;
    }
  }
  if (!overflow_.empty()) return overflow_.next_time();
  return std::nullopt;
}

std::optional<Event> TimingWheel::pop_if_at_most(Tick deadline) {
  while (true) {
    auto& bucket = buckets_[cursor_ & mask_];
    if (bucket_pos_ < bucket.size()) {
      const Event event = bucket[bucket_pos_];
      assert(event.time == cursor_);
      if (event.time > deadline) return std::nullopt;
      ++bucket_pos_;
      --count_;
      if (bucket_pos_ == bucket.size()) {
        bucket.clear();
        bucket_pos_ = 0;
      }
      return event;
    }
    bucket.clear();
    bucket_pos_ = 0;

    if (count_ == 0) {
      if (overflow_.empty()) return std::nullopt;
      // Jump over the empty span straight to the next overflow event.
      cursor_ = overflow_.next_time();
    } else {
      ++cursor_;
    }
    // Migrate overflow events that fit the horizon *before* any handler can
    // push same-time events directly, keeping (time, seq) order intact.
    while (!overflow_.empty() && overflow_.next_time() - cursor_ < buckets_.size()) {
      const Event event = overflow_.pop();
      buckets_[event.time & mask_].push_back(event);
      ++count_;
    }
  }
}

}  // namespace bgl::sim
