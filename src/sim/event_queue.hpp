// Discrete-event queues for the network simulator.
//
// Two implementations with the same ordering contract — events fire in
// (time, sequence) order, so simultaneous events fire in scheduling order
// and runs are bit-for-bit deterministic:
//
//   EventQueue   binary min-heap; O(log n) push/pop, any time horizon.
//   TimingWheel  cycle-indexed calendar queue; O(1) push/pop for delays
//                within the wheel horizon, falling back to an internal heap
//                for far-future events (client timers, throttle pacing).
//
// The simulator fires ~1-2 events per simulated cycle under load, which is
// exactly the density a per-cycle wheel wants; the wheel is ~3x faster than
// the heap end-to-end and is what Engine uses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace bgl::sim {

/// Simulation time in processor cycles (700 MHz on BG/L).
using Tick = std::uint64_t;

struct Event {
  Tick time = 0;
  std::uint64_t seq = 0;
  std::uint32_t type = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
};

/// Binary min-heap on (time, seq). Used as the wheel's overflow store and
/// directly in tests as the ordering reference.
class EventQueue {
 public:
  void push(Tick time, std::uint32_t type, std::uint32_t a, std::uint64_t b);
  void push_event(const Event& event);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest event time; queue must be non-empty.
  Tick next_time() const noexcept { return heap_.front().time; }

  /// Removes and returns the earliest event; queue must be non-empty.
  Event pop();

  /// Total events pushed over the queue's lifetime (for micro-benchmarks).
  std::uint64_t total_pushed() const noexcept { return next_seq_; }

  void clear();

 private:
  static bool later(const Event& x, const Event& y) noexcept {
    if (x.time != y.time) return x.time > y.time;
    return x.seq > y.seq;
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Calendar queue over a power-of-two ring of per-cycle buckets.
///
/// Invariant: bucket[t & mask] holds only events with time == t for
/// t in [cursor, cursor + size); events at or beyond the horizon wait in the
/// overflow heap and migrate into the wheel as the cursor approaches them.
class TimingWheel {
 public:
  explicit TimingWheel(std::size_t size_pow2 = 8192);

  void push(Tick time, std::uint32_t type, std::uint32_t a, std::uint64_t b);

  bool empty() const noexcept { return count_ == 0 && overflow_.empty(); }
  std::size_t size() const noexcept { return count_ + overflow_.size(); }

  /// Pops the earliest event if its time is <= deadline.
  std::optional<Event> pop_if_at_most(Tick deadline);

  /// Exact time of the earliest queued event without popping it (scans the
  /// ring from the cursor; O(size) worst case — meant for the parallel
  /// engine's once-per-window lower-bound computation, not per-event use).
  std::optional<Tick> next_time() const noexcept;

  std::uint64_t total_pushed() const noexcept { return next_seq_; }

 private:
  void advance_to_nonempty();

  std::vector<std::vector<Event>> buckets_;
  std::size_t mask_;
  Tick cursor_ = 0;        // earliest time the wheel can hold
  std::size_t bucket_pos_ = 0;  // next unread index within the current bucket
  std::size_t count_ = 0;  // events stored in buckets
  EventQueue overflow_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace bgl::sim
