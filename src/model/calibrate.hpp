// Model-parameter calibration (paper Section 2.1: "The model parameters are
// measured from ping-pong benchmark and measuring all-to-all performance
// with small messages on smaller processor partitions").
//
// Runs single-message transfers of increasing size across an idle simulated
// partition and least-squares fits T(m) = alpha + beta * m, recovering the
// simulator's effective startup overhead and per-byte cost — the same
// procedure the authors used on hardware to obtain alpha ~= 450 cycles and
// beta = 6.48 ns/B.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/network/config.hpp"
#include "src/topology/torus.hpp"

namespace bgl::model {

struct PingPongSample {
  std::uint64_t payload_bytes = 0;
  net::Tick one_way_cycles = 0;
};

struct Calibration {
  double alpha_cycles = 0.0;      // fitted startup overhead
  double beta_cycles_per_byte = 0.0;
  double beta_ns_per_byte = 0.0;  // at 700 MHz
  std::vector<PingPongSample> samples;
};

/// One-way message time from `src` to `dst` on an otherwise idle partition,
/// in cycles (measured from injection start to last-packet delivery). Each
/// call is a self-contained Fabric run, so distinct sizes can be measured
/// concurrently (bench/calibration.cpp runs the size sweep on the harness
/// pool).
net::Tick ping_message_cycles(const net::NetworkConfig& config, topo::Rank src,
                              topo::Rank dst, std::uint64_t payload_bytes);

/// The neighbor pair calibrate() pings: rank 0 and its +X neighbor. Throws
/// std::invalid_argument when the partition has no such pair.
std::pair<topo::Rank, topo::Rank> calibration_pair(const net::NetworkConfig& config);

/// Runs the size sweep between two neighboring nodes and fits alpha/beta.
Calibration calibrate(const net::NetworkConfig& config,
                      const std::vector<std::uint64_t>& sizes);

/// Fits alpha/beta over already-measured samples — the last step of
/// calibrate(), split out so callers can collect the samples in parallel.
/// The least-squares sums are symmetric in the samples, so the fit is
/// independent of measurement order.
Calibration fit_calibration(std::vector<PingPongSample> samples);

/// Ordinary least squares fit of T = alpha + beta * m over the samples.
void fit_alpha_beta(const std::vector<PingPongSample>& samples, double& alpha,
                    double& beta);

}  // namespace bgl::model
