// Closed-form all-to-all time predictions — the paper's Equations 1, 3 and 4.
//
// All predictions return microseconds using the paper's measured constants
// (src/model/constants.hpp) unless a custom PaperConstants is passed. The
// contention factor C is the generalized bottleneck load factor from
// src/model/peak.hpp (C = M/8 for the longest torus dimension, Eq. 2).
#pragma once

#include <cstdint>

#include "src/model/constants.hpp"
#include "src/topology/torus.hpp"

namespace bgl::model {

/// Eq. 1: point-to-point time for an m-byte message over `hops` links.
/// T = alpha + (m + h) * C * beta + L, with L = hops * per_hop_latency.
double ptp_time_us(std::uint64_t m_bytes, double contention, int hops,
                   const PaperConstants& k = kPaper);

/// Eq. 3: direct all-to-all, T ~= P*alpha + P*C*(m+h)*beta.
double direct_aa_time_us(const topo::Shape& shape, std::uint64_t m_bytes,
                         const PaperConstants& k = kPaper);

/// Eq. 2 with no startup overheads: the achievable peak AA time.
double peak_aa_time_us(const topo::Shape& shape, std::uint64_t m_bytes,
                       const PaperConstants& k = kPaper);

/// Eq. 4: balanced 2-D virtual mesh,
/// T ~= (Pvx+Pvy)*alpha_msg + 2*P*(m+proto)*(C*beta + gamma).
double vmesh_aa_time_us(const topo::Shape& shape, int pvx, int pvy,
                        std::uint64_t m_bytes, const PaperConstants& k = kPaper);

/// The paper's analytical AR-vs-VMesh change-over message size,
/// m = h - 2*proto (Section 4.2): ~32 bytes with the default constants.
double vmesh_changeover_bytes(const PaperConstants& k = kPaper);

/// Peak bisection-limited per-node throughput in MB/s for large messages
/// (Figure 3's reference curve): 1 / (C * beta).
double peak_per_node_mbps(const topo::Shape& shape, const PaperConstants& k = kPaper);

}  // namespace bgl::model
