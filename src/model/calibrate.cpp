#include "src/model/calibrate.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "src/network/fabric.hpp"
#include "src/runtime/packetizer.hpp"

namespace bgl::model {

namespace {

/// Sends one packetized message and records the delivery of its last packet.
class PingClient : public net::Client {
 public:
  PingClient(topo::Rank src, topo::Rank dst, std::uint64_t payload_bytes)
      : src_(src), dst_(dst),
        packets_(rt::packetize(payload_bytes, rt::WireFormat::direct())) {}

  bool next_packet(topo::Rank node, net::InjectDesc& out) override {
    if (node != src_ || index_ >= packets_.size()) return false;
    const rt::PacketSpec& spec = packets_[index_];
    out.dst = dst_;
    out.payload_bytes = spec.payload_bytes;
    out.wire_chunks = spec.wire_chunks;
    out.extra_cpu_cycles = index_ == 0 ? 450 : 0;  // the AR per-message alpha
    ++index_;
    return true;
  }

  void on_delivery(topo::Rank node, const net::Packet&) override {
    assert(node == dst_);
    (void)node;
    ++delivered_;
  }

  std::size_t expected() const { return packets_.size(); }
  std::size_t delivered() const { return delivered_; }

 private:
  topo::Rank src_;
  topo::Rank dst_;
  std::vector<rt::PacketSpec> packets_;
  std::size_t index_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace

net::Tick ping_message_cycles(const net::NetworkConfig& config, topo::Rank src,
                              topo::Rank dst, std::uint64_t payload_bytes) {
  PingClient client(src, dst, payload_bytes);
  net::Fabric fabric(config, client);
  if (!fabric.run()) throw std::runtime_error("ping did not drain");
  if (client.delivered() != client.expected()) {
    throw std::runtime_error("ping lost packets");
  }
  return fabric.stats().last_delivery;
}

void fit_alpha_beta(const std::vector<PingPongSample>& samples, double& alpha,
                    double& beta) {
  if (samples.size() < 2) throw std::invalid_argument("need >= 2 samples to fit");
  double sum_m = 0, sum_t = 0, sum_mm = 0, sum_mt = 0;
  const double n = static_cast<double>(samples.size());
  for (const PingPongSample& s : samples) {
    const double m = static_cast<double>(s.payload_bytes);
    const double t = static_cast<double>(s.one_way_cycles);
    sum_m += m;
    sum_t += t;
    sum_mm += m * m;
    sum_mt += m * t;
  }
  const double denom = n * sum_mm - sum_m * sum_m;
  if (denom == 0.0) throw std::invalid_argument("degenerate size sweep");
  beta = (n * sum_mt - sum_m * sum_t) / denom;
  alpha = (sum_t - beta * sum_m) / n;
}

std::pair<topo::Rank, topo::Rank> calibration_pair(const net::NetworkConfig& config) {
  const topo::Torus torus{config.shape};
  if (torus.nodes() < 2) throw std::invalid_argument("need >= 2 nodes");
  const topo::Rank src = 0;
  const topo::Rank dst = torus.neighbor(src, topo::Direction{topo::kX, +1});
  if (dst < 0) throw std::invalid_argument("no +X neighbor for the ping pair");
  return {src, dst};
}

Calibration fit_calibration(std::vector<PingPongSample> samples) {
  Calibration result;
  result.samples = std::move(samples);
  fit_alpha_beta(result.samples, result.alpha_cycles, result.beta_cycles_per_byte);
  result.beta_ns_per_byte = result.beta_cycles_per_byte / 0.7;  // 700 MHz
  return result;
}

Calibration calibrate(const net::NetworkConfig& config,
                      const std::vector<std::uint64_t>& sizes) {
  const auto [src, dst] = calibration_pair(config);
  std::vector<PingPongSample> samples;
  for (const std::uint64_t bytes : sizes) {
    samples.push_back(
        PingPongSample{bytes, ping_message_cycles(config, src, dst, bytes)});
  }
  return fit_calibration(std::move(samples));
}

}  // namespace bgl::model
