#include "src/model/predict.hpp"

#include "src/model/peak.hpp"

namespace bgl::model {

namespace {

/// Per-hop latency used for Eq. 1's L term; the paper notes it is not
/// critical for all-to-all since many packets pipeline on the network.
constexpr double kHopLatencyUs = 0.1;

}  // namespace

double ptp_time_us(std::uint64_t m_bytes, double contention, int hops,
                   const PaperConstants& k) {
  const double alpha_us = k.alpha_ar_us();
  const double transfer_us = static_cast<double>(m_bytes + static_cast<std::uint64_t>(k.sw_header_bytes)) *
                             contention * k.beta_ns_per_byte * 1e-3;
  return alpha_us + transfer_us + hops * kHopLatencyUs;
}

double direct_aa_time_us(const topo::Shape& shape, std::uint64_t m_bytes,
                         const PaperConstants& k) {
  const double nodes = static_cast<double>(shape.nodes());
  const double contention = bottleneck_factor(shape);
  const double alpha_us = k.alpha_ar_us();
  const double bytes = static_cast<double>(m_bytes) + k.sw_header_bytes;
  return nodes * alpha_us + nodes * contention * bytes * k.beta_ns_per_byte * 1e-3;
}

double peak_aa_time_us(const topo::Shape& shape, std::uint64_t m_bytes,
                       const PaperConstants& k) {
  const double nodes = static_cast<double>(shape.nodes());
  const double contention = bottleneck_factor(shape);
  return nodes * contention * static_cast<double>(m_bytes) * k.beta_ns_per_byte * 1e-3;
}

double vmesh_aa_time_us(const topo::Shape& shape, int pvx, int pvy,
                        std::uint64_t m_bytes, const PaperConstants& k) {
  const double nodes = static_cast<double>(shape.nodes());
  const double contention = bottleneck_factor(shape);
  const double alpha_us = k.alpha_msg_us();
  const double bytes = static_cast<double>(m_bytes) + k.proto_header_bytes;
  const double per_byte_us = contention * k.beta_ns_per_byte * 1e-3 + k.gamma_ns_per_byte * 1e-3;
  return (pvx + pvy) * alpha_us + 2.0 * nodes * bytes * per_byte_us;
}

double vmesh_changeover_bytes(const PaperConstants& k) {
  return static_cast<double>(k.sw_header_bytes) - 2.0 * k.proto_header_bytes;
}

double peak_per_node_mbps(const topo::Shape& shape, const PaperConstants& k) {
  const double contention = bottleneck_factor(shape);
  if (contention <= 0.0) return 0.0;
  // 1 / (C * beta) bytes per ns = 1e3 MB/s per (ns/byte).
  return 1e3 / (contention * k.beta_ns_per_byte);
}

}  // namespace bgl::model
