// Peak (zero-overhead) all-to-all time on a torus/mesh partition — the
// paper's Equation 2 generalized to exact per-dimension link loads.
//
// For a full all-to-all where every ordered pair exchanges `chunks_per_pair`
// 32 B chunks on the wire, the busiest directed link belongs to the dimension
// maximizing the per-link load factor:
//   torus dimension of extent E:  mean_hops(E) / 2      (E/8 per direction
//     when E is even, matching the paper's C = M/8)
//   mesh dimension of extent E:   max_k (k+1)(E-k-1)/E  (E/4 at the center
//     cut, the paper's doubled contention for meshes)
// and the peak time is  P * factor * chunks_per_pair * chunk_cycles.
#pragma once

#include <cstdint>

#include "src/topology/torus.hpp"

namespace bgl::model {

/// Per-link load factor of one dimension (dimensionless; multiplies P * m).
double axis_load_factor(const topo::Shape& shape, int axis);

/// The bottleneck dimension's load factor; max over axes.
double bottleneck_factor(const topo::Shape& shape);

/// Axis achieving the bottleneck factor (ties toward X).
int bottleneck_axis(const topo::Shape& shape);

/// Peak AA time in cycles for `chunks_per_pair` wire chunks per ordered pair.
double aa_peak_cycles(const topo::Shape& shape, double chunks_per_pair,
                      std::uint32_t chunk_cycles);

/// Peak achievable per-node throughput (bytes/cycle of application payload)
/// for large messages, bisection-limited: payload_bytes_per_pair / (factor *
/// wire_chunks_per_pair * chunk_cycles). Used for Figure 3's top curve.
double peak_per_node_bytes_per_cycle(const topo::Shape& shape,
                                     double payload_bytes_per_pair,
                                     double wire_chunks_per_pair,
                                     std::uint32_t chunk_cycles);

}  // namespace bgl::model
