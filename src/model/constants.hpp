// Model parameters measured by the paper on Blue Gene/L (Sections 2-4).
#pragma once

namespace bgl::model {

struct PaperConstants {
  /// Core/network clock: 700 MHz.
  double clock_ghz = 0.7;

  /// AR per-destination startup overhead: ~450 processor cycles. (The paper
  /// text says "450 processor cycles or 640 us"; 450 cycles at 700 MHz is
  /// 0.643 us, so the printed "us" value carries an obvious typo.)
  double alpha_ar_cycles = 450.0;

  /// Message-passing runtime startup used by the virtual-mesh scheme:
  /// ~1170 cycles (= 1.7 us).
  double alpha_msg_cycles = 1170.0;

  /// Network per-byte transfer time from main memory: 6.48 ns/byte.
  double beta_ns_per_byte = 6.48;

  /// Intermediate-node copy cost for message combining: ~1.1 byte/cycle,
  /// i.e. 1.6 ns/byte for short copies.
  double gamma_ns_per_byte = 1.6;

  /// Software header on direct/TPS messages (first packet only).
  int sw_header_bytes = 48;

  /// Protocol header on combining-runtime messages.
  int proto_header_bytes = 8;

  double alpha_ar_us() const { return alpha_ar_cycles / (clock_ghz * 1e3); }
  double alpha_msg_us() const { return alpha_msg_cycles / (clock_ghz * 1e3); }

  double cycles_to_us(double cycles) const { return cycles / (clock_ghz * 1e3); }
  double ns_per_byte_to_cycles(double ns_per_byte) const { return ns_per_byte * clock_ghz; }
};

inline constexpr PaperConstants kPaper{};

}  // namespace bgl::model
