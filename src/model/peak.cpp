#include "src/model/peak.hpp"

#include <algorithm>

namespace bgl::model {

double axis_load_factor(const topo::Shape& shape, int axis) {
  const auto ax = static_cast<std::size_t>(axis);
  const int extent = shape.dim[ax];
  if (extent <= 1) return 0.0;
  if (shape.wrap[ax]) {
    const topo::Torus ring{shape};
    return ring.mean_hops(axis) / 2.0;  // traffic splits over 2 directions
  }
  // Mesh: the center cut is the bottleneck; one directed link per line.
  double worst = 0.0;
  for (int k = 0; k + 1 < extent; ++k) {
    const double crossing = static_cast<double>(k + 1) * (extent - 1 - k) / extent;
    worst = std::max(worst, crossing);
  }
  return worst;
}

double bottleneck_factor(const topo::Shape& shape) {
  double worst = 0.0;
  for (int a = 0; a < shape.axis_count(); ++a) worst = std::max(worst, axis_load_factor(shape, a));
  return worst;
}

int bottleneck_axis(const topo::Shape& shape) {
  int best = 0;
  double worst = -1.0;
  for (int a = 0; a < shape.axis_count(); ++a) {
    const double f = axis_load_factor(shape, a);
    if (f > worst) {
      worst = f;
      best = a;
    }
  }
  return best;
}

double aa_peak_cycles(const topo::Shape& shape, double chunks_per_pair,
                      std::uint32_t chunk_cycles) {
  const double nodes = static_cast<double>(shape.nodes());
  return nodes * bottleneck_factor(shape) * chunks_per_pair * chunk_cycles;
}

double peak_per_node_bytes_per_cycle(const topo::Shape& shape,
                                     double payload_bytes_per_pair,
                                     double wire_chunks_per_pair,
                                     std::uint32_t chunk_cycles) {
  const double factor = bottleneck_factor(shape);
  if (factor <= 0.0) return 0.0;
  // Time per destination pair at peak is factor * wire_chunks * chunk_cycles;
  // a node moves payload_bytes_per_pair of application data in that time.
  return payload_bytes_per_pair / (factor * wire_chunks_per_pair * chunk_cycles);
}

}  // namespace bgl::model
