// Figure 3: per-node all-to-all throughput across partitions — the peak
// bisection bandwidth per node, a one-packet all-to-all, and a large-message
// all-to-all.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/model/predict.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.validate();

  bench::print_header(
      "Figure 3 — AR per-node throughput (MB/s) vs partition",
      "peak bisection BW/node (model) vs 1-packet (240 B) vs large-message AA");

  const char* shapes[] = {"8",      "16",      "8x8",     "16x16",  "8x8x8",
                          "8x8x16", "8x16x16", "16x16x8", "16x16x16"};

  harness::Sweep sweep;
  for (const char* spec : shapes) {
    const auto shape = ctx.runnable(topo::parse_shape(spec));
    sweep.add(coll::StrategyKind::kAdaptiveRandom, bench::base_options(shape, 240, ctx));
    const std::uint64_t large = shape.nodes() <= 512 ? 3840 : 480;
    sweep.add(coll::StrategyKind::kAdaptiveRandom, bench::base_options(shape, large, ctx));
  }
  const auto results = ctx.run(sweep);

  util::Table table({"partition", "run as", "peak MB/s (model)", "1-packet MB/s",
                     "large-msg MB/s", "large %"});
  std::size_t job = 0;
  for (const char* spec : shapes) {
    const auto paper_shape = topo::parse_shape(spec);
    const auto shape = ctx.runnable(paper_shape);
    const double peak_mbps = model::peak_per_node_mbps(shape);
    const auto& r1 = results[job++].run;
    const auto& r2 = results[job++].run;
    table.add_row({spec, bench::shape_note(paper_shape, shape), util::fmt(peak_mbps, 0),
                   util::fmt(r1.per_node_mbps, 0), util::fmt(r2.per_node_mbps, 0),
                   util::fmt(r2.percent_peak, 1)});
  }
  table.print();
  std::printf("\nPaper: a one-packet all-to-all already achieves close to the achievable\n"
              "throughput; symmetric partitions track the bisection limit.\n");
  return 0;
}
