// Figure 7: all-to-all time on the asymmetric 8x32x16 partition (4096
// nodes): AR vs Two Phase Schedule vs a 128x32 virtual mesh, short messages.
//
// Paper landmarks at 8 B: VMesh ~2x faster than TPS and ~3x faster than AR;
// the TPS/VMesh change-over is at 64 B; AR trails even at 80 B because of
// network contention on the asymmetric torus.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("sizes", "comma-separated payload sizes in bytes");
  cli.validate();

  const auto paper_shape = topo::parse_shape("8x32x16");
  const auto shape = ctx.runnable(paper_shape);
  bench::print_header("Figure 7 — AR vs TPS vs VMesh on 8x32x16 (4096 nodes), time in us",
                      ("running on " + bench::shape_note(paper_shape, shape)).c_str());

  // The paper maps a 128x32 virtual mesh: rows are the planes perpendicular
  // to the bottleneck (Y) dimension, columns are the Y lines. Scale that
  // mapping with the partition.
  const int longest = shape.longest_axis();
  const int pvy = shape.dim[static_cast<std::size_t>(longest)];
  const int pvx = static_cast<int>(shape.nodes()) / pvy;

  std::vector<std::int64_t> sizes = {1, 8, 16, 32, 64, 128, 240};
  if (cli.has("sizes")) sizes = util::parse_int_list(cli.get("sizes", ""));

  harness::Sweep sweep;
  for (const std::int64_t size : sizes) {
    auto options = bench::base_options(shape, static_cast<std::uint64_t>(size), ctx);
    sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
    sweep.add(coll::StrategyKind::kTwoPhase, options);
    options.pvx = pvx;
    options.pvy = pvy;
    sweep.add(coll::StrategyKind::kVirtualMesh, options);
  }
  const auto results = ctx.run(sweep);

  util::Table table({"msg bytes", "AR us", "TPS us", "VMesh us", "winner"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto m = static_cast<std::uint64_t>(sizes[i]);
    const auto& ar = results[3 * i].run;
    const auto& tps = results[3 * i + 1].run;
    const auto& vm = results[3 * i + 2].run;

    const char* winner = "AR";
    if (tps.elapsed_cycles <= ar.elapsed_cycles && tps.elapsed_cycles <= vm.elapsed_cycles) {
      winner = "TPS";
    } else if (vm.elapsed_cycles <= ar.elapsed_cycles) {
      winner = "VMesh";
    }
    table.add_row({util::fmt_bytes(m), util::fmt(ar.elapsed_us, 1),
                   util::fmt(tps.elapsed_us, 1), util::fmt(vm.elapsed_us, 1), winner});
  }
  table.print();
  std::printf("\nPaper claims to check: VMesh wins the shortest sizes, TPS takes over at\n"
              "~64 B, and AR trails throughout on this asymmetric partition.\n");
  return 0;
}
