// Ablation: destination-order randomization in the direct strategies.
//
// The production MPI all-to-all and the paper's AR scheme inject packets in
// a random permutation "to smoothen the areas of link contention". This
// bench removes that: `rotation` visits self+1, self+2, ... (the classic
// structured order) and `identity` makes every node target node 0 first —
// serializing the whole machine on one reception hotspot after another.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination (default 240)");
  cli.validate();
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 240));

  bench::print_header("Ablation — destination-order randomization (AR strategy)",
                      "percent of Eq. 2 peak by ordering policy");

  const char* shapes[] = {"8x8x8", "8x8x16", "16x16", "16"};
  const coll::OrderPolicy policies[] = {coll::OrderPolicy::kRandom,
                                        coll::OrderPolicy::kRotation,
                                        coll::OrderPolicy::kIdentity};

  harness::Sweep sweep;
  for (const char* spec : shapes) {
    const auto shape = topo::parse_shape(spec);
    for (const auto policy : policies) {
      auto options = bench::base_options(shape, bytes, ctx);
      options.order = policy;
      sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
    }
  }
  const auto results = ctx.run(sweep);

  util::Table table({"partition", "random *", "rotation", "identity"});
  std::size_t job = 0;
  for (const char* spec : shapes) {
    std::vector<std::string> row = {spec};
    for (std::size_t p = 0; p < std::size(policies); ++p) {
      row.push_back(util::fmt(results[job++].run.percent_peak, 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nReading: the identity order turns the all-to-all into a rolling\n"
              "congestion hotspot; rotation is balanced in aggregate but phase-locks\n"
              "nodes onto the same links. Randomization decorrelates both — the paper's\n"
              "premise for AR and the production MPI implementation.\n");
  return 0;
}
