// Merge the CSV/JSON outputs of a sharded sweep back into one file.
//
//   bench --shard 1/2 --csv s1.csv     # machine A
//   bench --shard 2/2 --csv s2.csv     # machine B
//   sweep_merge --out full.csv s1.csv s2.csv
//
// Because per-job seeds are derived from the *global* run index, the merged
// file is byte-identical to the file an unsharded run would have written
// (CI diffs exactly that). Inputs must be listed in shard order. The format
// is taken from --format, or inferred from the --out extension.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/harness/sink.hpp"
#include "src/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  cli.describe("out", "merged output file (required)");
  cli.describe("format", "csv or json (default: from the --out extension)");

  try {
    cli.validate();
    const std::string out = cli.get("out", "");
    if (out.empty()) throw std::runtime_error("--out is required");
    const std::vector<std::string>& shards = cli.positional();
    if (shards.empty()) {
      throw std::runtime_error("no shard files given (pass them in shard order)");
    }
    std::string format = cli.get("format", "");
    if (format.empty()) {
      const auto dot = out.rfind('.');
      format = (dot != std::string::npos && out.substr(dot) == ".json") ? "json"
                                                                        : "csv";
    }
    if (format == "csv") {
      harness::merge_csv_shards(shards, out);
    } else if (format == "json") {
      harness::merge_json_shards(shards, out);
    } else {
      throw std::runtime_error("--format must be csv or json, got '" + format + "'");
    }
    std::printf("merged %zu shard(s) into %s\n", shards.size(), out.c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: error: %s\n", cli.program().c_str(), error.what());
    return 2;
  }
  return 0;
}
