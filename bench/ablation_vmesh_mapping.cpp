// Ablation: virtual-mesh <-> physical-torus alignment (paper Section 4.2).
//
// The paper carefully maps virtual-mesh rows onto compact physical regions
// ("the 32 processors of each row ... are spread out on half of an XY plane
// of the physical 3D torus"). This bench lays the same 2-D virtual mesh
// over the torus in three different axis orders and measures the cost of
// misalignment, plus the row/column aspect-ratio sensitivity the paper
// notes ("for the best performance the sizes of rows and columns should be
// similar").
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/coll/vmesh.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination (default 16)");
  cli.validate();
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 16));

  bench::print_header("Ablation — virtual-mesh mapping and aspect ratio",
                      "short-message VMesh all-to-all time (us) on the 8x8x8 midplane");

  const auto shape = topo::parse_shape("8x8x8");
  const std::vector<std::pair<int, int>> aspects = {
      {32, 16}, {64, 8}, {128, 4}, {256, 2}, {16, 32}};

  harness::Sweep sweep;
  for (int mapping = 0; mapping < 3; ++mapping) {
    auto options = bench::base_options(shape, bytes, ctx);
    options.vmesh_mapping = mapping;
    sweep.add(coll::StrategyKind::kVirtualMesh, options);
  }
  for (const auto& [pvx, pvy] : aspects) {
    auto options = bench::base_options(shape, bytes, ctx);
    options.pvx = pvx;
    options.pvy = pvy;
    sweep.add(coll::StrategyKind::kVirtualMesh, options);
  }
  const auto results = ctx.run(sweep);
  std::size_t job = 0;

  {
    const auto [pvx, pvy] = coll::vmesh_factorize(static_cast<std::int32_t>(shape.nodes()));
    util::Table table({"partition", "mesh", "XYZ map us *", "ZYX map us", "YXZ map us"});
    std::vector<std::string> row = {"8x8x8",
                                    std::to_string(pvx) + "x" + std::to_string(pvy)};
    for (int mapping = 0; mapping < 3; ++mapping) {
      row.push_back(util::fmt(results[job++].run.elapsed_us, 1));
    }
    table.add_row(std::move(row));
    table.print();
    std::printf("\n");
  }
  {
    util::Table table({"mesh (pvx x pvy)", "time us", "phase msgs per node"});
    for (const auto& [pvx, pvy] : aspects) {
      table.add_row({std::to_string(pvx) + "x" + std::to_string(pvy),
                     util::fmt(results[job++].run.elapsed_us, 1),
                     std::to_string(pvx - 1 + pvy - 1)});
    }
    table.print();
  }
  std::printf("\nReading: near-square decompositions minimize (Pvx+Pvy)*alpha, matching\n"
              "the paper's \"rows and columns should be about the same\"; mapping order\n"
              "moves row traffic between compact planes and scattered lines.\n");
  return 0;
}
