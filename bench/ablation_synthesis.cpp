// Ablation — schedule synthesis vs the hand-built registry.
//
// For a set of (shape, message size, fault plan) problems — including
// fault plans and shapes the paper never measured — runs the beam search
// with a fixed budget and compares the synthesized winner against the best
// of the six registry strategies on the same pinned evaluation config.
// With --cache DIR the winners land in the content-addressed store, so a
// second invocation resolves every problem in O(1) (the "cached" column).
//
//   ablation_synthesis --jobs 16
//   ablation_synthesis --jobs 16 --cache /tmp/synth-cache --sa 8
//
// The search is deterministic per (--seed, budget knobs) at any --jobs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/coll/synth.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  cli.describe("jobs", "scoring worker threads (default 8)");
  cli.describe("sim-threads",
               "simulator slab workers per scoring run; the pool budget "
               "shrinks so jobs x sim-threads fits the host (default 1)");
  cli.describe("seed", "search seed (default 2)");
  cli.describe("beam", "beam width (default 3)");
  cli.describe("generations", "beam generations (default 2)");
  cli.describe("mutations", "mutations per survivor (default 3)");
  cli.describe("sa", "simulated-annealing steps on the winner (default 0)");
  cli.describe("cache", "winner-cache directory (default: search every time)");
  cli.validate();

  const int jobs = static_cast<int>(cli.get_int("jobs", 8));
  const int sim_threads = static_cast<int>(cli.get_int("sim-threads", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2));
  const int beam = static_cast<int>(cli.get_int("beam", 3));
  const int generations = static_cast<int>(cli.get_int("generations", 2));
  const int mutations = static_cast<int>(cli.get_int("mutations", 3));
  const int sa_steps = static_cast<int>(cli.get_int("sa", 0));
  const std::string cache_dir = cli.get("cache", "");

  bench::print_header("Ablation — schedule synthesis vs the registry",
                      "beam-searched CommSchedule programs against the best "
                      "hand-built strategy");

  struct Problem {
    const char* shape;
    std::uint64_t bytes;
    const char* faults;  // parse_fault_spec text; "" = healthy
    const char* note;
  };
  // The first two shapes bracket the paper's asymmetric story; the faulted
  // rows are (shape, fault plan) points the paper never measured.
  const Problem problems[] = {
      {"4x4x8", 64, "", "paper-adjacent, healthy"},
      {"4x4x16", 240, "", "TPS territory, healthy"},
      {"4x4x8", 240, "node:2,seed:7", "unmeasured: dead nodes"},
      {"8x8x4", 240, "link:0.02,seed:11", "unmeasured: dead links"},
      {"4x4x16", 240, "node:1,seed:5", "unmeasured: dead node in TPS territory"},
  };

  util::Table table({"problem", "faults", "registry best", "cycles", "synthesized",
                     "cycles", "gain", "cached"});
  bool synthesized_win_outside_paper = false;
  for (const Problem& p : problems) {
    coll::synth::SynthOptions opts;
    opts.net.shape = topo::parse_shape(p.shape);
    opts.net.seed = 1;
    opts.msg_bytes = p.bytes;
    if (p.faults[0] != '\0') opts.net.faults = net::parse_fault_spec(p.faults);
    opts.seed = seed;
    opts.beam_width = beam;
    opts.generations = generations;
    opts.mutations_per_survivor = mutations;
    opts.sa_steps = sa_steps;
    opts.jobs = jobs;
    opts.sim_threads = sim_threads;

    coll::synth::SynthResult result;
    bool cached = false;
    if (!cache_dir.empty()) {
      const coll::synth::SynthCache cache(cache_dir);
      coll::synth::CacheEntry probe;
      cached = cache.lookup(coll::synth::SynthCache::problem_key(
                                opts.net.shape, opts.msg_bytes, opts.net.faults),
                            probe);
      result = coll::synth::synthesize_cached(opts, cache);
    } else {
      result = coll::synth::synthesize(opts);
    }

    const bool viable = result.best.lint_ok && result.best.drained;
    const double gain =
        viable && result.baseline_cycles > 0 &&
                result.baseline_cycles != ~std::uint64_t{0}
            ? 100.0 * (static_cast<double>(result.baseline_cycles) -
                       static_cast<double>(result.best.cycles)) /
                  static_cast<double>(result.baseline_cycles)
            : 0.0;
    if (gain > 0.0 && p.faults[0] != '\0') synthesized_win_outside_paper = true;
    table.add_row({std::string(p.shape) + " m" + std::to_string(p.bytes),
                   p.faults[0] == '\0' ? "-" : p.faults, result.baseline_name,
                   std::to_string(result.baseline_cycles),
                   viable ? result.best.genome.key() : "(none)",
                   viable ? std::to_string(result.best.cycles) : "-",
                   util::fmt(gain, 2) + "%", cached ? "hit" : "miss"});
  }
  table.print();
  std::printf(
      "\nGain: registry-best cycles vs synthesized cycles (positive = the\n"
      "search beat every hand-built strategy). Budget bw%d:g%d:m%d:sa%d,\n"
      "search seed %llu; winners are bit-identical at any --jobs count.\n",
      beam, generations, mutations, sa_steps,
      static_cast<unsigned long long>(seed));
  if (synthesized_win_outside_paper) {
    std::printf("Synthesis beat the registry on at least one fault plan the "
                "paper never measured.\n");
  }
  return 0;
}
