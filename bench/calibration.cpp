// Section 2.1 — "Measuring model parameters": the ping-pong size sweep that
// recovers alpha and beta, run against the simulator instead of hardware.
//
// The paper measured alpha ~= 450 cycles per destination and beta = 6.48
// ns/byte on BG/L. The simulator's ground truth is 450 cycles of charged
// software startup plus a 0.25 B/cycle link (5.71 ns/B raw, ~6 ns/B with
// the 16 B per-packet hardware header) — the fit should land close to both.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/harness/runner.hpp"
#include "src/model/calibrate.hpp"
#include "src/model/constants.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.validate();

  bench::print_header("Section 2.1 — model-parameter calibration by ping-pong",
                      "one-way neighbor message times, least-squares alpha/beta fit");

  net::NetworkConfig config;
  config.shape = topo::parse_shape("8x8x8");
  config.seed = ctx.seed();

  const std::vector<std::uint64_t> sizes = {64,   128,  256,  512,   1024,
                                            2048, 4096, 8192, 16384, 32768};
  // Every ping is a self-contained run on an idle fabric, so the size sweep
  // runs on the harness pool (--jobs). The least-squares fit consumes the
  // index-ordered sample vector and its sums are symmetric in the samples,
  // so the fitted alpha/beta are identical to the old serial loop's.
  const auto [src, dst] = model::calibration_pair(config);
  const auto calibration = model::fit_calibration(harness::run_ordered(
      sizes.size(), ctx.sweep.jobs, [&](std::size_t i) {
        return model::PingPongSample{
            sizes[i], model::ping_message_cycles(config, src, dst, sizes[i])};
      }));

  util::Table table({"msg bytes", "one-way us", "fit us"});
  for (const auto& sample : calibration.samples) {
    const double measured_us = static_cast<double>(sample.one_way_cycles) / 700.0;
    const double fit_us = (calibration.alpha_cycles +
                           calibration.beta_cycles_per_byte *
                               static_cast<double>(sample.payload_bytes)) /
                          700.0;
    table.add_row({util::fmt_bytes(sample.payload_bytes), util::fmt(measured_us, 2),
                   util::fmt(fit_us, 2)});
  }
  table.print();

  std::printf("\nfitted alpha: %.0f cycles (%.2f us)   paper: %.0f cycles (%.2f us)\n",
              calibration.alpha_cycles, calibration.alpha_cycles / 700.0,
              model::kPaper.alpha_ar_cycles, model::kPaper.alpha_ar_us());
  std::printf("fitted beta:  %.2f ns/byte            paper: %.2f ns/byte\n",
              calibration.beta_ns_per_byte, model::kPaper.beta_ns_per_byte);
  std::printf("\nThe fitted beta reflects the simulated 0.25 B/cycle links plus packet\n"
              "header overhead; the fitted alpha recovers the charged 450-cycle\n"
              "software startup plus pipeline latency.\n");
  return 0;
}
