// Table 4: 1-byte all-to-all latency, Two Phase Schedule vs AR.
//
// Paper: on small partitions the extra forwarding hop makes TPS slower, but
// from 4096 nodes up the 64-byte packets of the direct scheme contend enough
// that TPS wins (8x32x16: 8.1 vs 12.4 ms; 32x32x16: 35.9 vs 65.2 ms).
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.validate();

  bench::print_header("Table 4 — 1-byte all-to-all latency (ms), TPS vs AR",
                      "paper-reported vs simulated");

  struct Row {
    const char* shape;
    double paper_tps_ms;
    double paper_ar_ms;
  };
  const Row rows[] = {
      {"8x8x8", 0.81, 0.52},    {"8x8x16", 1.64, 1.25},   {"16x16x16", 7.5, 4.7},
      {"8x32x16", 8.1, 12.4},   {"32x32x16", 35.9, 65.2},
  };

  harness::Sweep sweep;
  for (const Row& row : rows) {
    const auto shape = ctx.runnable(topo::parse_shape(row.shape));
    const auto options = bench::base_options(shape, 1, ctx);
    sweep.add(coll::StrategyKind::kTwoPhase, options);
    sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
  }
  const auto results = ctx.run(sweep);

  util::Table table({"partition", "run as", "TPS ms", "AR ms", "paper TPS", "paper AR",
                     "faster"});
  std::size_t job = 0;
  for (const Row& row : rows) {
    const auto paper_shape = topo::parse_shape(row.shape);
    const auto shape = ctx.runnable(paper_shape);
    const auto& tps = results[job++].run;
    const auto& ar = results[job++].run;
    table.add_row({row.shape, bench::shape_note(paper_shape, shape),
                   util::fmt(tps.elapsed_us / 1000.0, 2), util::fmt(ar.elapsed_us / 1000.0, 2),
                   util::fmt(row.paper_tps_ms, 2), util::fmt(row.paper_ar_ms, 2),
                   tps.elapsed_cycles < ar.elapsed_cycles ? "TPS" : "AR"});
  }
  table.print();
  std::printf("\nPaper claim: AR wins the latency race on small/symmetric partitions;\n"
              "on large asymmetric partitions 64-byte packets already contend and the\n"
              "Two Phase Schedule becomes faster.\n");
  return 0;
}
