// Figure 2: AR strategy performance and prediction on a 16x16x16 partition
// (4096 nodes). Scaled to 8x8x8 by default; --full runs the paper size.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/model/predict.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("sizes", "comma-separated payload sizes in bytes");
  cli.validate();

  const auto paper_shape = topo::parse_shape("16x16x16");
  const auto shape = ctx.runnable(paper_shape);
  bench::print_header("Figure 2 — AR all-to-all on 16x16x16 (4096 nodes)",
                      ("running on " + bench::shape_note(paper_shape, shape) +
                       "; measured vs Eq. 3 model vs Eq. 2 peak (us)")
                          .c_str());

  std::vector<std::int64_t> sizes = {8, 64, 240, 960};
  if (shape.nodes() > 1024) sizes = {8, 64, 240};  // keep default runs snappy
  if (cli.has("sizes")) sizes = util::parse_int_list(cli.get("sizes", ""));

  harness::Sweep sweep;
  for (const std::int64_t size : sizes) {
    const auto m = static_cast<std::uint64_t>(size);
    sweep.add(coll::StrategyKind::kAdaptiveRandom, bench::base_options(shape, m, ctx));
  }
  const auto results = ctx.run(sweep);

  util::Table table({"msg bytes", "measured us", "model us", "peak us", "% of peak"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto m = static_cast<std::uint64_t>(sizes[i]);
    const auto& result = results[i].run;
    table.add_row({util::fmt_bytes(m), util::fmt(result.elapsed_us, 1),
                   util::fmt(model::direct_aa_time_us(shape, m), 1),
                   util::fmt(model::peak_aa_time_us(shape, m), 1),
                   util::fmt(result.percent_peak, 1)});
  }
  table.print();
  std::printf("\nPaper: the Eq. 3 model tracks AR on the symmetric 4096-node torus and\n"
              "large messages approach the Eq. 2 peak.\n");
  return 0;
}
