// Simulator-core throughput: host-side packets-simulated/sec of the
// single-threaded reference engine vs the slab-parallel core, written as a
// machine-readable perf artifact (BENCH_simcore.json) for CI trend tracking.
//
// Three variants exercise the engine's hot paths:
//   clean     fault-free AR all-to-all (the historical bench point)
//   faulted   dead links + probabilistic drops + corruption, with the
//             reliability wrapper interposed — the configuration that used
//             to force the reference engine and now runs on all slabs
//   observer  fault-free with a hop observer attached (per-slab buffered,
//             barrier-drained under MT)
// Each variant runs at 1, 2, 4 and --sim-threads/hardware threads
// (deduplicated), reporting packets/sec per thread count.
//
// This measures the *simulator*, not the simulated network: delivered
// results are thread-invariant (the equivalence and mt_faults suites check
// the delivery matrices); only wall time may differ.
//
// --baseline OLD.json re-reads a previous artifact and exits nonzero if any
// (variant, threads) point regressed by more than 10% packets/sec — the CI
// perf gate.
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/coll/alltoall.hpp"
#include "src/network/faults.hpp"
#include "src/util/shape_arg.hpp"

namespace {

struct Run {
  std::string variant;
  int requested = 0;
  int used = 0;
  bool drained = false;
  bool complete = false;
  double wall_ms = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t events = 0;
  double packets_per_sec = 0.0;
};

/// Minimal scan of a previous BENCH_simcore.json: pulls (variant,
/// sim_threads, packets_per_sec) out of each run line. Tolerant of the old
/// pre-variant schema (such lines parse with variant "clean").
struct BaselinePoint {
  std::string variant;
  int threads = 0;
  double packets_per_sec = 0.0;
};

std::vector<BaselinePoint> load_baseline(const std::string& path) {
  std::vector<BaselinePoint> points;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto tpos = line.find("\"sim_threads\":");
    const auto ppos = line.find("\"packets_per_sec\":");
    if (tpos == std::string::npos || ppos == std::string::npos) continue;
    BaselinePoint p;
    p.variant = "clean";
    if (const auto vpos = line.find("\"variant\": \""); vpos != std::string::npos) {
      const auto begin = vpos + 12;
      const auto end = line.find('"', begin);
      if (end != std::string::npos) p.variant = line.substr(begin, end - begin);
    }
    p.threads = std::atoi(line.c_str() + tpos + 14);
    p.packets_per_sec = std::atof(line.c_str() + ppos + 18);
    points.push_back(p);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("shape", "partition (default 8x8x8; the paper-scale point is 32x32x20)");
  cli.describe("bytes", "payload per destination (default 240)");
  cli.describe("out", "perf artifact path (default BENCH_simcore.json)");
  cli.describe("baseline",
               "previous BENCH_simcore.json; exit 1 if any (variant, threads) "
               "point lost more than 10% packets/sec against it");
  cli.describe("verify",
               "also check the delivery matrix is complete in every run "
               "(default 1; costs nodes^2 words of memory at large shapes)");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x8"), cli.program());
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 240));
  const std::string out_path = cli.get("out", "BENCH_simcore.json");
  const std::string baseline_path = cli.get("baseline", "");
  const bool verify = cli.get_int("verify", 1) != 0;
  const int parallel = ctx.sim_threads > 1
                           ? ctx.sim_threads
                           : static_cast<int>(
                                 std::max(2u, std::thread::hardware_concurrency()));
  bench::print_header(
      "Simulator core throughput — reference engine vs slab-parallel",
      ("partition " + shape.to_string() + ", " + std::to_string(bytes) +
       " B per destination, AR; clean / faulted / observer variants, up to " +
       std::to_string(parallel) + " threads")
          .c_str());

  std::vector<int> thread_counts;
  for (const int t : {1, 2, 4, parallel}) {
    bool seen = false;
    for (const int have : thread_counts) seen = seen || have == t;
    if (!seen && t <= parallel) thread_counts.push_back(t);
  }

  const char* kFaultSpec = "link:0.02,drop:1e-4,corrupt:5e-5,seed:9";
  std::uint64_t observed_grants = 0;

  std::vector<Run> runs;
  for (const char* variant : {"clean", "faulted", "observer"}) {
    for (const int threads : thread_counts) {
      coll::AlltoallOptions options = ctx.base_options(shape, bytes);
      options.net.sim_threads = threads;
      options.verify = verify;
      const bool faulted = std::string(variant) == "faulted";
      if (faulted) options.net.faults = net::parse_fault_spec(kFaultSpec);
      if (std::string(variant) == "observer") {
        options.hop_observer = [&observed_grants](const net::Packet&,
                                                  topo::Rank, int, int) {
          ++observed_grants;
        };
      }
      const auto start = std::chrono::steady_clock::now();
      const coll::RunResult r =
          coll::run_alltoall(coll::StrategyKind::kAdaptiveRandom, options);
      const std::chrono::duration<double, std::milli> wall =
          std::chrono::steady_clock::now() - start;
      Run run;
      run.variant = variant;
      run.requested = threads;
      run.used = r.sim_threads;
      run.drained = r.drained;
      run.complete = !verify || r.reachable_complete;
      run.wall_ms = wall.count();
      run.packets = r.packets_delivered;
      run.events = r.events;
      run.packets_per_sec =
          wall.count() > 0.0
              ? 1000.0 * static_cast<double>(r.packets_delivered) / wall.count()
              : 0.0;
      runs.push_back(run);
    }
  }

  util::Table table({"variant", "threads (used)", "drained", "complete",
                     "wall ms", "packets", "packets/sec", "events"});
  for (const Run& r : runs) {
    table.add_row({r.variant,
                   std::to_string(r.requested) + " (" + std::to_string(r.used) + ")",
                   r.drained ? "yes" : "NO",
                   verify ? (r.complete ? "yes" : "NO") : "-",
                   util::fmt(r.wall_ms, 1), std::to_string(r.packets),
                   util::fmt(r.packets_per_sec, 0), std::to_string(r.events)});
  }
  table.print();

  // Per-variant speedup of the widest run against its own single-thread row.
  double faulted_speedup = 0.0;
  for (const char* variant : {"clean", "faulted", "observer"}) {
    double base_ms = 0.0, wide_ms = 0.0;
    int wide_threads = 0;
    for (const Run& r : runs) {
      if (r.variant != variant) continue;
      if (r.requested == 1) base_ms = r.wall_ms;
      if (r.requested >= wide_threads) {
        wide_threads = r.requested;
        wide_ms = r.wall_ms;
      }
    }
    const double speedup = wide_ms > 0.0 ? base_ms / wide_ms : 0.0;
    if (std::string(variant) == "faulted") faulted_speedup = speedup;
    std::printf("%-9s speedup: %.2fx at %d threads\n", variant, speedup,
                wide_threads);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"simcore\",\n  \"shape\": \"%s\",\n"
                    "  \"msg_bytes\": %llu,\n  \"runs\": [\n",
               shape.to_string().c_str(),
               static_cast<unsigned long long>(bytes));
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    std::fprintf(out,
                 "    {\"variant\": \"%s\", \"sim_threads\": %d, "
                 "\"sim_threads_used\": %d, \"drained\": %s, \"complete\": %s, "
                 "\"wall_ms\": %.3f, \"packets\": %llu, "
                 "\"packets_per_sec\": %.1f, \"events\": %llu}%s\n",
                 r.variant.c_str(), r.requested, r.used,
                 r.drained ? "true" : "false", r.complete ? "true" : "false",
                 r.wall_ms, static_cast<unsigned long long>(r.packets),
                 r.packets_per_sec, static_cast<unsigned long long>(r.events),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"verified\": %s,\n  \"faulted_speedup\": %.3f\n}\n",
               verify ? "true" : "false", faulted_speedup);
  std::fclose(out);
  std::printf("Wrote %s\n", out_path.c_str());

  for (const Run& r : runs) {
    if (!r.drained || !r.complete) {
      std::fprintf(stderr, "FAIL: %s run at %d threads %s\n", r.variant.c_str(),
                   r.requested,
                   r.drained ? "left the delivery matrix incomplete"
                             : "did not drain");
      return 1;
    }
  }

  if (!baseline_path.empty()) {
    const auto baseline = load_baseline(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "FAIL: baseline %s has no parseable run lines\n",
                   baseline_path.c_str());
      return 1;
    }
    bool regressed = false;
    for (const BaselinePoint& b : baseline) {
      for (const Run& r : runs) {
        if (r.variant != b.variant || r.requested != b.threads) continue;
        if (b.packets_per_sec > 0.0 &&
            r.packets_per_sec < 0.9 * b.packets_per_sec) {
          std::fprintf(stderr,
                       "REGRESSION: %s @%d threads: %.0f -> %.0f packets/sec "
                       "(-%.1f%%)\n",
                       b.variant.c_str(), b.threads, b.packets_per_sec,
                       r.packets_per_sec,
                       100.0 * (1.0 - r.packets_per_sec / b.packets_per_sec));
          regressed = true;
        }
      }
    }
    if (regressed) return 1;
    std::printf("Baseline check passed against %s (%zu points).\n",
                baseline_path.c_str(), baseline.size());
  }
  return 0;
}
