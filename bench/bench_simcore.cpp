// Simulator-core throughput: host-side packets-simulated/sec of the
// single-threaded reference engine vs the slab-parallel core on one
// all-to-all point, written as a machine-readable perf artifact
// (BENCH_simcore.json) for CI trend tracking.
//
// This measures the *simulator*, not the simulated network: simulated
// results are identical across thread counts (the equivalence suite checks
// the delivery matrix); only wall time may differ.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/coll/alltoall.hpp"
#include "src/util/shape_arg.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("shape", "partition (default 8x8x16; the paper-scale point is 32x32x20)");
  cli.describe("bytes", "payload per destination (default 240)");
  cli.describe("out", "perf artifact path (default BENCH_simcore.json)");
  cli.describe("verify",
               "also check the delivery matrix is complete in every run "
               "(default 1; costs nodes^2 words of memory at large shapes)");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x16"), cli.program());
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 240));
  const std::string out_path = cli.get("out", "BENCH_simcore.json");
  const bool verify = cli.get_int("verify", 1) != 0;
  const int parallel = ctx.sim_threads > 1
                           ? ctx.sim_threads
                           : std::max(2u, std::thread::hardware_concurrency());
  bench::print_header(
      "Simulator core throughput — reference engine vs slab-parallel",
      ("partition " + shape.to_string() + ", " + std::to_string(bytes) +
       " B per destination, AR; parallel run asks for " +
       std::to_string(parallel) + " threads")
          .c_str());

  struct Run {
    int requested = 0;
    int used = 0;
    bool drained = false;
    bool complete = false;
    double wall_ms = 0.0;
    std::uint64_t packets = 0;
    std::uint64_t events = 0;
    double packets_per_sec = 0.0;
  };
  std::vector<Run> runs;
  for (const int threads : {1, parallel}) {
    coll::AlltoallOptions options = ctx.base_options(shape, bytes);
    options.net.sim_threads = threads;
    options.verify = verify;
    const auto start = std::chrono::steady_clock::now();
    const coll::RunResult r =
        coll::run_alltoall(coll::StrategyKind::kAdaptiveRandom, options);
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start;
    Run run;
    run.requested = threads;
    run.used = r.sim_threads;
    run.drained = r.drained;
    run.complete = !verify || r.reachable_complete;
    run.wall_ms = wall.count();
    run.packets = r.packets_delivered;
    run.events = r.events;
    run.packets_per_sec =
        wall.count() > 0.0 ? 1000.0 * static_cast<double>(r.packets_delivered) /
                                 wall.count()
                           : 0.0;
    runs.push_back(run);
  }

  util::Table table({"threads (used)", "drained", "complete", "wall ms",
                     "packets", "packets/sec", "events"});
  for (const Run& r : runs) {
    table.add_row({std::to_string(r.requested) + " (" + std::to_string(r.used) + ")",
                   r.drained ? "yes" : "NO",
                   verify ? (r.complete ? "yes" : "NO") : "-",
                   util::fmt(r.wall_ms, 1), std::to_string(r.packets),
                   util::fmt(r.packets_per_sec, 0), std::to_string(r.events)});
  }
  table.print();
  const double speedup = runs[1].wall_ms > 0.0 ? runs[0].wall_ms / runs[1].wall_ms : 0.0;
  std::printf("\nSpeedup: %.2fx with %d worker threads.\n", speedup, runs[1].used);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"simcore\",\n  \"shape\": \"%s\",\n"
                    "  \"msg_bytes\": %llu,\n  \"runs\": [\n",
               shape.to_string().c_str(),
               static_cast<unsigned long long>(bytes));
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    std::fprintf(out,
                 "    {\"sim_threads\": %d, \"sim_threads_used\": %d, "
                 "\"drained\": %s, \"complete\": %s, \"wall_ms\": %.3f, "
                 "\"packets\": %llu, \"packets_per_sec\": %.1f, "
                 "\"events\": %llu}%s\n",
                 r.requested, r.used, r.drained ? "true" : "false",
                 r.complete ? "true" : "false", r.wall_ms,
                 static_cast<unsigned long long>(r.packets), r.packets_per_sec,
                 static_cast<unsigned long long>(r.events),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"verified\": %s,\n  \"speedup\": %.3f\n}\n",
               verify ? "true" : "false", speedup);
  std::fclose(out);
  std::printf("Wrote %s\n", out_path.c_str());
  for (const Run& r : runs) {
    if (!r.drained || !r.complete) {
      std::fprintf(stderr, "FAIL: run at %d threads %s\n", r.requested,
                   r.drained ? "left the delivery matrix incomplete"
                             : "did not drain");
      return 1;
    }
  }
  return 0;
}
