// Micro-benchmarks (google-benchmark) for the simulator's hot components:
// event queues, topology math, packetization and a small end-to-end AA.
#include <benchmark/benchmark.h>

#include "src/coll/alltoall.hpp"
#include "src/runtime/packetizer.hpp"
#include "src/sim/event_queue.hpp"
#include "src/topology/torus.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace bgl;

void BM_EventQueueHeap(benchmark::State& state) {
  util::Xoshiro256StarStar rng(1);
  sim::EventQueue queue;
  for (int i = 0; i < 1024; ++i) queue.push(rng.below(4096), 0, 0, 0);
  for (auto _ : state) {
    const sim::Event e = queue.pop();
    queue.push(e.time + 1 + rng.below(1024), 0, 0, 0);
    benchmark::DoNotOptimize(queue.size());
  }
}
BENCHMARK(BM_EventQueueHeap);

void BM_TimingWheel(benchmark::State& state) {
  util::Xoshiro256StarStar rng(1);
  sim::TimingWheel wheel;
  for (int i = 0; i < 1024; ++i) wheel.push(rng.below(4096), 0, 0, 0);
  for (auto _ : state) {
    const auto e = wheel.pop_if_at_most(~sim::Tick{0});
    wheel.push(e->time + 1 + rng.below(1024), 0, 0, 0);
    benchmark::DoNotOptimize(wheel.size());
  }
}
BENCHMARK(BM_TimingWheel);

void BM_TorusRoute(benchmark::State& state) {
  const topo::Torus torus{topo::parse_shape("32x32x16")};
  util::Xoshiro256StarStar rng(2);
  for (auto _ : state) {
    const auto a = static_cast<topo::Rank>(rng.below(static_cast<std::uint64_t>(torus.nodes())));
    const auto b = static_cast<topo::Rank>(rng.below(static_cast<std::uint64_t>(torus.nodes())));
    benchmark::DoNotOptimize(torus.distance(a, b));
  }
}
BENCHMARK(BM_TorusRoute);

void BM_Packetize4K(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::packetize(4096, rt::WireFormat::direct()));
  }
}
BENCHMARK(BM_Packetize4K);

void BM_Rng(benchmark::State& state) {
  util::Xoshiro256StarStar rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(rng.below(1000));
}
BENCHMARK(BM_Rng);

void BM_AlltoallEndToEnd(benchmark::State& state) {
  // Small complete AA per iteration; reports simulated events per second.
  std::uint64_t events = 0;
  for (auto _ : state) {
    coll::AlltoallOptions options;
    options.net.shape = topo::parse_shape("4x4x4");
    options.net.seed = 42;
    options.msg_bytes = 240;
    const auto result = coll::run_alltoall(coll::StrategyKind::kAdaptiveRandom, options);
    events += result.events;
    benchmark::DoNotOptimize(result.elapsed_cycles);
  }
  state.counters["sim_events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AlltoallEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
