// Section 3 text claim: on an 8x8x8 midplane with a 4 KB message, the
// low-overhead AR scheme reaches ~99% of peak vs ~97% for the production
// MPI all-to-all (message-object allocation, protocol headers, burst 2).
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.validate();

  const auto shape = topo::parse_shape("8x8x8");
  bench::print_header("Section 3 — production MPI baseline vs the AR scheme (8x8x8, 4 KB)",
                      "paper: MPI 97% of peak, AR 99% of peak");

  const std::pair<coll::StrategyKind, double> cases[] = {
      {coll::StrategyKind::kMpi, 97.0},
      {coll::StrategyKind::kAdaptiveRandom, 99.0},
  };

  harness::Sweep sweep;
  for (const auto& [kind, paper] : cases) {
    (void)paper;
    sweep.add(kind, bench::base_options(shape, 4096, ctx));
  }
  const auto results = ctx.run(sweep);

  util::Table table({"strategy", "measured %", "elapsed us", "paper %"});
  std::size_t job = 0;
  for (const auto& [kind, paper] : cases) {
    (void)kind;
    const auto& result = results[job++].run;
    table.add_row({result.strategy, util::fmt(result.percent_peak, 1),
                   util::fmt(result.elapsed_us, 1), util::fmt(paper, 0)});
  }
  table.print();
  std::printf("\nPaper claim: removing MPI's per-message overheads buys ~2%% of peak at\n"
              "4 KB (and more at small sizes).\n");
  return 0;
}
