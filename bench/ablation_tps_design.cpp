// Ablation: the Two Phase Schedule's design choices (paper Section 4.1).
//
//   - reserved injection-FIFO groups vs shared FIFOs (the paper's argument:
//     phase-1 packets must never queue behind phase-2 packets);
//   - the linear-dimension choice: the paper's rule vs each forced axis;
//   - the forwarding software cost (the 8x8x8 dip is CPU-bound).
// All three sub-sweeps run as one harness batch.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/coll/tps.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination (default 240)");
  cli.validate();
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 240));

  bench::print_header("Ablation — Two Phase Schedule design choices",
                      "percent of Eq. 2 peak; default configuration marked *");

  const char* fifo_shapes[] = {"8x8x16", "8x16x8", "16x8x8"};
  const char* axis_shapes[] = {"8x8x16", "16x8x8", "8x16x8"};
  const std::uint32_t forward_costs[] = {0u, 200u, 800u};
  const auto midplane = topo::parse_shape("8x8x8");

  harness::Sweep sweep;
  for (const char* spec : fifo_shapes) {
    auto options = bench::base_options(topo::parse_shape(spec), bytes, ctx);
    sweep.add(coll::StrategyKind::kTwoPhase, options);  // reserved (default)
    options.reserved_fifos = false;
    sweep.add(coll::StrategyKind::kTwoPhase, options);  // shared
  }
  for (const char* spec : axis_shapes) {
    auto options = bench::base_options(topo::parse_shape(spec), bytes, ctx);
    sweep.add(coll::StrategyKind::kTwoPhase, options);  // paper rule
    for (int axis = 0; axis < 3; ++axis) {
      options.linear_axis = axis;
      sweep.add(coll::StrategyKind::kTwoPhase, options);
    }
  }
  for (const std::uint32_t cost : forward_costs) {
    auto options = bench::base_options(midplane, bytes, ctx);
    options.forward_cpu_cycles = cost;
    sweep.add(coll::StrategyKind::kTwoPhase, options);
  }
  const auto results = ctx.run(sweep);
  std::size_t job = 0;

  {
    util::Table table({"partition", "reserved FIFOs *", "shared FIFOs"});
    for (const char* spec : fifo_shapes) {
      const auto& reserved = results[job++].run;
      const auto& shared = results[job++].run;
      table.add_row({spec, util::fmt(reserved.percent_peak, 1),
                     util::fmt(shared.percent_peak, 1)});
    }
    table.print();
    std::printf("\n");
  }
  {
    util::Table table({"partition", "rule (axis)", "force X", "force Y", "force Z"});
    for (const char* spec : axis_shapes) {
      const auto shape = topo::parse_shape(spec);
      std::vector<std::string> row = {spec};
      const auto& rule = results[job++].run;
      row.push_back(util::fmt(rule.percent_peak, 1) + " (" +
                    "XYZ"[coll::choose_linear_axis(shape)] + std::string(")"));
      for (int axis = 0; axis < 3; ++axis) {
        row.push_back(util::fmt(results[job++].run.percent_peak, 1));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  {
    util::Table table({"forward cost (cycles)", "8x8x8 TPS %"});
    for (const std::uint32_t cost : forward_costs) {
      table.add_row({std::to_string(cost) + (cost == 200 ? " *" : ""),
                     util::fmt(results[job++].run.percent_peak, 1)});
    }
    table.print();
  }
  std::printf("\nReading: the paper's linear-axis rule matches the best forced axis; the\n"
              "midplane dip (Table 3's 77%%) scales directly with the per-packet\n"
              "forwarding cost — the core, not the network, is the limiter there.\n");
  return 0;
}
