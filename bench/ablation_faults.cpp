// Degradation sweep: all-to-all throughput and delivery under injected
// link failures.
//
// For each strategy, a fraction of the undirected torus links is failed
// permanently (plus a light probabilistic packet-drop rate, exercising the
// end-to-end retransmission path) and the run reports
//   - percent of the *healthy* Eq. 2 peak (so columns are comparable),
//   - the fraction of ordered pairs the strategy could still serve, and
//   - whether every reachable pair received its data exactly once.
// Direct AR degrades gracefully (adaptive routing reroutes inside the
// minimal DAG); DR loses every pair whose single dimension-order path dies;
// TPS re-picks live intermediates; VMesh is the most brittle since one dead
// relay strands a whole row/column of the virtual mesh.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/util/shape_arg.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination (default 240)");
  cli.describe("shape", "partition to degrade (default 8x8x8)");
  cli.describe("drop", "extra per-arrival packet drop probability (default 1e-5)");
  cli.validate();
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 240));
  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x8"), cli.program());
  const double drop = cli.get_double("drop", 1e-5);

  bench::print_header("Ablation — graceful degradation under link faults",
                      "percent of healthy peak / % of pairs served, by failed-link fraction");

  const double link_fracs[] = {0.0, 0.01, 0.02, 0.05, 0.10};
  const coll::StrategyKind kinds[] = {
      coll::StrategyKind::kAdaptiveRandom, coll::StrategyKind::kDeterministic,
      coll::StrategyKind::kTwoPhase, coll::StrategyKind::kVirtualMesh};
  const char* kind_names[] = {"AR", "DR", "TPS", "VMesh"};

  harness::Sweep sweep;
  for (const auto kind : kinds) {
    for (const double frac : link_fracs) {
      auto options = bench::base_options(shape, bytes, ctx);
      options.verify = true;
      options.net.faults.link_fail = frac;
      if (frac > 0.0) options.net.faults.drop_prob = drop;
      sweep.add(kind, options,
                shape.to_string() + "/" + coll::strategy_name(kind) + "/link" +
                    util::fmt(100.0 * frac, 0) + "%");
    }
  }
  const auto results = ctx.run(sweep);

  const auto nodes = static_cast<double>(shape.nodes());
  const double all_pairs = nodes * (nodes - 1.0);

  std::vector<std::string> header = {"strategy"};
  for (const double frac : link_fracs) {
    header.push_back(util::fmt(100.0 * frac, 0) + "% links");
  }
  util::Table table(header);
  std::size_t job = 0;
  bool all_reachable_served = true;
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    std::vector<std::string> row = {kind_names[k]};
    for (std::size_t f = 0; f < std::size(link_fracs); ++f) {
      const auto& r = results[job++];
      if (!r.ran) {
        row.push_back("-");
        continue;
      }
      const double served =
          all_pairs > 0.0 ? 100.0 * static_cast<double>(r.run.pairs_complete) / all_pairs
                          : 0.0;
      row.push_back(util::fmt(r.run.percent_peak, 1) + " / " + util::fmt(served, 1) + "%" +
                    (r.run.reachable_complete ? "" : " !"));
      if (!r.run.reachable_complete) all_reachable_served = false;
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nCell: percent of healthy peak / %% of the %d ordered pairs fully\n"
              "delivered ('!' marks a run where some *reachable* pair was not served —\n"
              "a reliability bug, not expected at these fault rates). Fault plans and\n"
              "results are bit-deterministic for a fixed --seed at any --jobs count.\n",
              static_cast<int>(all_pairs));
  if (!all_reachable_served) {
    std::printf("WARNING: at least one run failed to deliver all reachable pairs.\n");
  }
  return 0;
}
