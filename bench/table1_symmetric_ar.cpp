// Table 1: all-to-all peak performance of the AR strategy on symmetric
// lines, planes and cubes.
//
//   Partition   paper AR % of peak
//   8           98.2     16          97.7
//   8x8         98.7     16x16       99.7
//   8x8x8       99.0     16x16x16    99.0
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination (default: large-message proxy)");
  cli.validate();

  bench::print_header("Table 1 — AR % of peak on symmetric partitions (large messages)",
                      "paper-reported vs simulated percent of the Eq. 2 peak");

  struct Row {
    const char* shape;
    double paper;
  };
  const Row rows[] = {{"8", 98.2},       {"16", 97.7},      {"8x8", 98.7},
                      {"16x16", 99.7},   {"8x8x8", 99.0},   {"16x16x16", 99.0}};

  harness::Sweep sweep;
  for (const Row& row : rows) {
    const auto run_shape = ctx.runnable(topo::parse_shape(row.shape));
    const std::uint64_t default_bytes = run_shape.nodes() <= 512 ? 3840 : 960;
    const auto bytes = static_cast<std::uint64_t>(
        cli.get_int("bytes", static_cast<std::int64_t>(default_bytes)));
    sweep.add(coll::StrategyKind::kAdaptiveRandom,
              bench::base_options(run_shape, bytes, ctx));
  }
  const auto results = ctx.run(sweep);

  util::Table table({"partition", "run as", "paper %", "measured %", "elapsed us"});
  std::size_t job = 0;
  for (const Row& row : rows) {
    const auto paper_shape = topo::parse_shape(row.shape);
    const auto run_shape = ctx.runnable(paper_shape);
    const auto& result = results[job++].run;
    table.add_row({row.shape, bench::shape_note(paper_shape, run_shape),
                   util::fmt(row.paper, 1), util::fmt(result.percent_peak, 1),
                   util::fmt(result.elapsed_us, 1)});
  }
  table.print();
  std::printf("\nPaper claim: randomization + adaptive routing reach 97-99+%% of peak on\n"
              "every symmetric partition (no persistent hot-spots).\n");
  return 0;
}
