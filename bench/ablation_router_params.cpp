// Ablation: router micro-architecture parameters vs all-to-all throughput.
//
// Three sweeps on a symmetric and an asymmetric partition:
//   - VC buffer capacity (the adaptive-routing congestion collapse on
//     asymmetric tori shows a sharp phase transition in buffer depth);
//   - number of dynamic VCs;
//   - injection FIFO count (FIFO head-of-line blocking at the source).
// These are the design-space knobs behind DESIGN.md's fidelity discussion.
// All three sub-sweeps run as one harness batch.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination (default 240)");
  cli.validate();
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 240));

  bench::print_header("Ablation — router parameters vs AR % of peak",
                      "symmetric 8x8x8 vs asymmetric 8x8x16; default marked *");

  const auto sym = topo::parse_shape("8x8x8");
  const auto asym = topo::parse_shape("8x8x16");
  const int vc_capacities[] = {32, 64, 96, 128};
  const int dynamic_vcs[] = {1, 2, 4};
  const int fifo_counts[] = {2, 4, 8};

  harness::Sweep sweep;
  auto add_pair = [&](auto mutate) {
    for (const auto& shape : {sym, asym}) {
      auto options = bench::base_options(shape, bytes, ctx);
      mutate(options.net);
      sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
    }
  };
  for (const int vc : vc_capacities) {
    add_pair([&](net::NetworkConfig& c) {
      c.vc_capacity_chunks = static_cast<std::uint16_t>(vc);
    });
  }
  for (const int vcs : dynamic_vcs) {
    add_pair([&](net::NetworkConfig& c) {
      c.dynamic_vcs = static_cast<std::uint8_t>(vcs);
    });
  }
  for (const int fifos : fifo_counts) {
    add_pair([&](net::NetworkConfig& c) {
      c.injection_fifos = static_cast<std::uint8_t>(fifos);
    });
  }
  const auto results = ctx.run(sweep);
  std::size_t job = 0;

  {
    util::Table table({"VC capacity (chunks)", "8x8x8 %", "8x8x16 %"});
    for (const int vc : vc_capacities) {
      const auto& a = results[job++].run;
      const auto& b = results[job++].run;
      table.add_row({std::to_string(vc) + (vc == 32 ? " *" : ""),
                     util::fmt(a.percent_peak, 1), util::fmt(b.percent_peak, 1)});
    }
    table.print();
    std::printf("\n");
  }
  {
    util::Table table({"dynamic VCs", "8x8x8 %", "8x8x16 %"});
    for (const int vcs : dynamic_vcs) {
      const auto& a = results[job++].run;
      const auto& b = results[job++].run;
      table.add_row({std::to_string(vcs) + (vcs == 2 ? " *" : ""),
                     util::fmt(a.percent_peak, 1), util::fmt(b.percent_peak, 1)});
    }
    table.print();
    std::printf("\n");
  }
  {
    util::Table table({"injection FIFOs", "8x8x8 %", "8x8x16 %"});
    for (const int fifos : fifo_counts) {
      const auto& a = results[job++].run;
      const auto& b = results[job++].run;
      table.add_row({std::to_string(fifos) + (fifos == 8 ? " *" : ""),
                     util::fmt(a.percent_peak, 1), util::fmt(b.percent_peak, 1)});
    }
    table.print();
  }
  std::printf("\nReading: symmetric throughput is insensitive to buffering (randomization\n"
              "already balances load); the asymmetric collapse is a buffer-depth\n"
              "phenomenon — exactly the congestion-buildup mechanism of Section 3.2.\n");
  return 0;
}
