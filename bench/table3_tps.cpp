// Table 3: all-to-all performance of the Two Phase Schedule (TPS) for long
// messages, with the chosen phase-1 (linear) dimension.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/coll/tps.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination");
  cli.validate();

  bench::print_header("Table 3 — Two Phase Schedule % of peak for long messages",
                      "paper-reported vs simulated, with the selected linear dimension");

  struct Row {
    const char* shape;
    double paper;
    char paper_dim;
  };
  const Row rows[] = {
      {"8x8x8", 77.2, 'Z'},     {"16x8x8", 99.0, 'X'},   {"8x16x8", 98.9, 'Y'},
      {"8x8x16", 97.9, 'Z'},    {"16x16x8", 97.5, 'Z'},  {"16x8x16", 97.4, 'Y'},
      {"8x16x16", 97.2, 'X'},   {"8x32x16", 99.5, 'Y'},  {"16x16x16", 96.1, 'X'},
      {"16x32x16", 99.8, 'Y'},  {"32x16x16", 99.8, 'X'}, {"32x32x16", 96.8, 'Z'},
      {"40x32x16", 99.5, 'X'},
  };

  harness::Sweep sweep;
  for (const Row& row : rows) {
    const auto shape = ctx.runnable(topo::parse_shape(row.shape));
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        cli.get_int("bytes", shape.nodes() <= 512 ? 960 : 240));
    const auto options = bench::base_options(shape, bytes, ctx);
    sweep.add(coll::StrategyKind::kTwoPhase, options);
    sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
  }
  const auto results = ctx.run(sweep);

  util::Table table({"partition", "run as", "paper %", "measured %", "dim (paper)",
                     "dim (ours)", "AR %"});
  std::size_t job = 0;
  for (const Row& row : rows) {
    const auto paper_shape = topo::parse_shape(row.shape);
    const auto shape = ctx.runnable(paper_shape);
    const auto& tps = results[job++].run;
    const auto& ar = results[job++].run;
    const char dim = "XYZ"[coll::choose_linear_axis(shape)];
    table.add_row({row.shape, bench::shape_note(paper_shape, shape),
                   util::fmt(row.paper, 1), util::fmt(tps.percent_peak, 1),
                   std::string(1, row.paper_dim), std::string(1, dim),
                   util::fmt(ar.percent_peak, 1)});
  }
  table.print();
  std::printf("\nPaper claims to check: TPS reaches the high 90s on every asymmetric\n"
              "partition (vs 71-88%% for AR), and dips on 8x8x8 where forwarding\n"
              "saturates the core (the direct strategy already wins there).\n"
              "For cubes every linear dimension is equivalent; we always pick Z.\n");
  return 0;
}
