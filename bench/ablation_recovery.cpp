// Recovery-cost sweep: what a mid-collective fail-stop costs with epoch
// recovery on, by strike time and strategy — plus corruption-detection
// overhead for the Byzantine-link (corrupt:p) fault mode.
//
// Table 1 strikes one node at a fraction of the healthy completion time
// and lets the epoch layer re-plan: survivors agree on a liveness view,
// compute the undelivered residual from the per-pair ledger, and drain it
// with repair schedules until every reachable pair is served exactly once.
// The cell shows the struck run's percent of *healthy* peak (re-plan cycles
// included), the number of repair epochs it took and the payload volume
// the repair epochs re-sourced. Strategies with relay custody (TPS, VMesh)
// pay more: the dead node strands whole second-phase batches that must be
// re-sent from their origins.
//
// Table 2 turns on the corrupt:p fabric mode (payload bits flipped at
// delivery, never dropped) and reports the throughput cost of detecting
// and retransmitting every corruption end-to-end. Detection must be total:
// a '!' marks a run where a corrupted payload escaped the checksum or some
// reachable pair went unserved — both are bugs, not tuning.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/util/shape_arg.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination (default 240)");
  cli.describe("shape", "partition to strike (default 8x8x8)");
  cli.validate();
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 240));
  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x8"), cli.program());

  bench::print_header("Ablation — epoch recovery from a mid-collective fail-stop",
                      "percent of healthy peak / repair epochs / payload re-sourced");

  const coll::StrategyKind kinds[] = {coll::StrategyKind::kAdaptiveRandom,
                                      coll::StrategyKind::kTwoPhase,
                                      coll::StrategyKind::kVirtualMesh};
  const char* kind_names[] = {"AR", "TPS", "VMesh"};

  // Healthy baselines: one run per strategy fixes the strike times (fractions
  // of the healthy completion) and the reference peak for every cell.
  coll::Tick healthy_cycles[std::size(kinds)] = {};
  double healthy_peak[std::size(kinds)] = {};
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    auto options = bench::base_options(shape, bytes, ctx);
    options.net.seed = ctx.seed();
    const auto healthy = coll::run_alltoall(kinds[k], options);
    healthy_cycles[k] = healthy.elapsed_cycles;
    healthy_peak[k] = healthy.percent_peak;
  }

  const double strike_fracs[] = {0.125, 0.25, 0.5, 0.75};
  const double corrupt_probs[] = {1e-4, 1e-3};

  harness::Sweep sweep;
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    for (const double frac : strike_fracs) {
      auto options = bench::base_options(shape, bytes, ctx);
      options.verify = true;
      options.net.faults.node_fail = 1;
      options.net.faults.fail_at =
          static_cast<coll::Tick>(static_cast<double>(healthy_cycles[k]) * frac);
      sweep.add(kinds[k], options,
                shape.to_string() + "/" + kind_names[k] + "/strike" +
                    util::fmt(100.0 * frac, 0) + "%");
    }
  }
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    for (const double prob : corrupt_probs) {
      auto options = bench::base_options(shape, bytes, ctx);
      options.verify = true;
      options.net.faults.corrupt_prob = prob;
      sweep.add(kinds[k], options,
                shape.to_string() + "/" + kind_names[k] + "/corrupt" +
                    util::fmt(1e4 * prob, 0) + "e-4");
    }
  }
  const auto results = ctx.run(sweep);

  std::size_t job = 0;
  bool all_recovered = true;

  std::vector<std::string> header = {"strategy", "healthy"};
  for (const double frac : strike_fracs) {
    header.push_back("strike@" + util::fmt(100.0 * frac, 0) + "%");
  }
  util::Table table(header);
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    std::vector<std::string> row = {kind_names[k], util::fmt(healthy_peak[k], 1) + "%"};
    for (std::size_t f = 0; f < std::size(strike_fracs); ++f) {
      const auto& r = results[job++];
      if (!r.ran) {
        row.push_back("-");
        continue;
      }
      const bool ok = r.run.reachable_complete && r.run.faults.stranded_relay_bytes == 0;
      row.push_back(util::fmt(r.run.percent_peak, 1) + " / " +
                    std::to_string(r.run.epochs.replans) + "ep / " +
                    util::fmt(static_cast<double>(r.run.epochs.recovered_bytes) / 1024.0, 0) +
                    "KB" + (ok ? "" : " !"));
      if (!ok) all_recovered = false;
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nByzantine-link detection overhead (corrupt:p):\n\n");
  std::vector<std::string> cheader = {"strategy"};
  for (const double prob : corrupt_probs) {
    cheader.push_back("corrupt " + util::fmt(1e4 * prob, 0) + "e-4");
  }
  util::Table ctable(cheader);
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    std::vector<std::string> row = {kind_names[k]};
    for (std::size_t c = 0; c < std::size(corrupt_probs); ++c) {
      const auto& r = results[job++];
      if (!r.ran) {
        row.push_back("-");
        continue;
      }
      const bool ok = r.run.reachable_complete &&
                      r.run.reliability.corrupt_rejected == r.run.faults.corrupted_payloads;
      row.push_back(util::fmt(r.run.percent_peak, 1) + "% / " +
                    std::to_string(r.run.epochs.corruption_retransmits) + " rtx" +
                    (ok ? "" : " !"));
      if (!ok) all_recovered = false;
    }
    ctable.add_row(std::move(row));
  }
  ctable.print();

  std::printf("\nTable 1 cell: struck-run percent of the healthy Eq. 2 peak (re-plan\n"
              "cycles included) / repair epochs / payload the repair epochs re-sourced.\n"
              "Table 2 cell: percent of peak / corrupted payloads detected and\n"
              "retransmitted. '!' marks a run that left a reachable pair unserved,\n"
              "stranded relay bytes undrained, or a corruption undetected — all bugs.\n"
              "Runs are bit-deterministic for a fixed --seed at any --jobs count.\n");
  if (!all_recovered) {
    std::printf("FAILED: at least one run failed recovery or detection.\n");
  }
  // Non-zero on any violated contract so CI's chaos-smoke job can gate on it.
  return all_recovered ? 0 : 1;
}
