// Table 2: AR % of peak for large messages on asymmetric meshes and tori —
// the motivating degradation ("M" marks a mesh dimension).
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination");
  cli.validate();

  bench::print_header("Table 2 — AR % of peak on asymmetric partitions (large messages)",
                      "paper-reported vs simulated; the asymmetry-induced degradation");

  struct Row {
    const char* shape;
    double paper;
  };
  const Row rows[] = {
      {"8x2M", 91.8},      {"8x4M", 89.0},     {"8x16", 85.7},     {"8x32", 84.0},
      {"8x8x2M", 90.1},    {"8x8x4M", 87.7},   {"8x8x16", 81.0},   {"8x16x16", 87.0},
      {"8x32x16", 73.3},   {"16x32x16", 71.0}, {"32x32x16", 73.6},
  };

  harness::Sweep sweep;
  for (const Row& row : rows) {
    const auto run_shape = ctx.runnable(topo::parse_shape(row.shape));
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        cli.get_int("bytes", run_shape.nodes() <= 512 ? 960 : 240));
    sweep.add(coll::StrategyKind::kAdaptiveRandom,
              bench::base_options(run_shape, bytes, ctx));
  }
  const auto results = ctx.run(sweep);

  util::Table table({"partition", "run as", "paper %", "measured %", "X/Y/Z link util %"});
  std::size_t job = 0;
  for (const Row& row : rows) {
    const auto paper_shape = topo::parse_shape(row.shape);
    const auto run_shape = ctx.runnable(paper_shape);
    const auto& result = results[job++].run;
    const auto& links = result.links.axis;
    table.add_row({row.shape, bench::shape_note(paper_shape, run_shape),
                   util::fmt(row.paper, 1), util::fmt(result.percent_peak, 1),
                   util::fmt(100 * links[0].mean, 0) + "/" + util::fmt(100 * links[1].mean, 0) +
                       "/" + util::fmt(100 * links[2].mean, 0)});
  }
  table.print();
  std::printf("\nPaper claim: AR falls from ~99%% (symmetric) to 71-92%% as asymmetry or\n"
              "mesh dimensions load the longest dimension's links unevenly.\n");
  return 0;
}
