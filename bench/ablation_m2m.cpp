// Extension bench: the paper's techniques applied to many-to-many patterns
// (introduction / Section 5: "we hope the performance analysis and the
// optimization techniques ... can also be applied for more complex
// many-to-many communication patterns").
//
// Sweeps the fan-out of a random-subset pattern on an asymmetric torus and
// compares direct adaptive routing against two-phase (TPS-style) routing.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/coll/many_to_many.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("shape", "partition (default 8x8x16)");
  cli.describe("bytes", "message bytes per destination (default 960)");
  cli.validate();

  const auto shape = topo::parse_shape(cli.get("shape", "8x8x16"));
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 960));
  const auto nodes = static_cast<std::int32_t>(shape.nodes());

  bench::print_header("Extension — many-to-many fan-out sweep, direct vs two-phase",
                      ("partition " + shape.to_string() + ", " + std::to_string(bytes) +
                       " B per message")
                          .c_str());

  util::Table table({"pattern", "messages", "direct us", "two-phase us", "2ph speedup",
                     "bottleneck axis util %"});

  auto run = [&](const coll::Pattern& pattern, bool two_phase) {
    coll::ManyToManyOptions options;
    options.net.shape = shape;
    options.net.seed = ctx.seed;
    options.msg_bytes = bytes;
    options.two_phase = two_phase;
    return coll::run_many_to_many(pattern, options);
  };

  const auto halo = coll::Pattern::halo(shape);
  {
    const auto direct = run(halo, false);
    const auto tps = run(halo, true);
    const int axis = shape.longest_axis();
    table.add_row({"halo", std::to_string(direct.messages), util::fmt(direct.elapsed_us, 1),
                   util::fmt(tps.elapsed_us, 1),
                   util::fmt(direct.elapsed_us / tps.elapsed_us, 2),
                   util::fmt(100.0 * direct.links.axis[static_cast<std::size_t>(axis)].mean, 1)});
  }
  for (const int fanout : {4, 16, 64}) {
    const auto pattern = coll::Pattern::random_subset(nodes, fanout, ctx.seed ^ 0x777);
    const auto direct = run(pattern, false);
    const auto tps = run(pattern, true);
    const int axis = shape.longest_axis();
    table.add_row({"random k=" + std::to_string(fanout), std::to_string(direct.messages),
                   util::fmt(direct.elapsed_us, 1), util::fmt(tps.elapsed_us, 1),
                   util::fmt(direct.elapsed_us / tps.elapsed_us, 2),
                   util::fmt(100.0 * direct.links.axis[static_cast<std::size_t>(axis)].mean, 1)});
  }
  table.print();
  std::printf("\nExpected shape: sparse fan-outs are latency-bound (two-phase's extra hop\n"
              "hurts); dense fan-outs on an asymmetric torus congest like all-to-all\n"
              "and two-phase routing wins — the paper's claim carried beyond AA.\n");
  return 0;
}
