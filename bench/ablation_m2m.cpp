// Extension bench: the paper's techniques applied to many-to-many patterns
// (introduction / Section 5: "we hope the performance analysis and the
// optimization techniques ... can also be applied for more complex
// many-to-many communication patterns").
//
// Sweeps the fan-out of a random-subset pattern on an asymmetric torus and
// compares direct adaptive routing against two-phase (TPS-style) routing.
// Each (pattern, routing) cell is an independent simulation, so the grid
// runs through the generic harness runner with per-job derived seeds.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/coll/many_to_many.hpp"
#include "src/harness/runner.hpp"
#include "src/util/shape_arg.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("shape", "partition (default 8x8x16)");
  cli.describe("bytes", "message bytes per destination (default 960)");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x16"), cli.program());
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 960));
  const auto nodes = static_cast<std::int32_t>(shape.nodes());

  bench::print_header("Extension — many-to-many fan-out sweep, direct vs two-phase",
                      ("partition " + shape.to_string() + ", " + std::to_string(bytes) +
                       " B per message")
                          .c_str());

  struct Case {
    std::string name;
    coll::Pattern pattern;
  };
  std::vector<Case> cases;
  cases.push_back({"halo", coll::Pattern::halo(shape)});
  for (const int fanout : {4, 16, 64}) {
    cases.push_back({"random k=" + std::to_string(fanout),
                     coll::Pattern::random_subset(nodes, fanout, ctx.seed() ^ 0x777)});
  }

  // Two jobs per case: [2i] direct, [2i+1] two-phase.
  const auto results = harness::run_ordered(
      cases.size() * 2, ctx.sweep.jobs, [&](std::size_t index) {
        coll::ManyToManyOptions options;
        options.net.shape = shape;
        options.net.seed = harness::derive_seed(ctx.seed(), index / 2);
        options.msg_bytes = bytes;
        options.two_phase = (index % 2) == 1;
        return coll::run_many_to_many(cases[index / 2].pattern, options);
      });

  util::Table table({"pattern", "messages", "direct us", "two-phase us", "2ph speedup",
                     "bottleneck axis util %"});
  const int axis = shape.longest_axis();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& direct = results[2 * i];
    const auto& tps = results[2 * i + 1];
    table.add_row({cases[i].name, std::to_string(direct.messages),
                   util::fmt(direct.elapsed_us, 1), util::fmt(tps.elapsed_us, 1),
                   util::fmt(direct.elapsed_us / tps.elapsed_us, 2),
                   util::fmt(100.0 * direct.links.axis[static_cast<std::size_t>(axis)].mean, 1)});
  }
  table.print();
  std::printf("\nExpected shape: sparse fan-outs are latency-bound (two-phase's extra hop\n"
              "hurts); dense fan-outs on an asymmetric torus congest like all-to-all\n"
              "and two-phase routing wins — the paper's claim carried beyond AA.\n");
  return 0;
}
