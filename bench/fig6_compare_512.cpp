// Figure 6: all-to-all time on 512 nodes (8x8x8), AR direct vs the 32x16
// virtual-mesh combining scheme, across short message sizes.
//
// Paper landmarks: VMesh ~2x faster than AR for very short messages; the
// change-over sits between 32 and 64 bytes; for large messages VMesh takes
// ~2x AR's time (every byte is injected twice).
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("sizes", "comma-separated payload sizes in bytes");
  cli.validate();

  const auto shape = topo::parse_shape("8x8x8");
  bench::print_header("Figure 6 — AR vs VMesh on 512 nodes (8x8x8), time in us",
                      "short-message regime; crossover expected between 32 and 64 B");

  std::vector<std::int64_t> sizes = {1, 8, 16, 32, 64, 128, 240, 480, 960, 4096};
  if (cli.has("sizes")) sizes = util::parse_int_list(cli.get("sizes", ""));

  harness::Sweep sweep;
  for (const std::int64_t size : sizes) {
    auto options = bench::base_options(shape, static_cast<std::uint64_t>(size), ctx);
    sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
    options.pvx = 32;
    options.pvy = 16;
    sweep.add(coll::StrategyKind::kVirtualMesh, options);
  }
  const auto results = ctx.run(sweep);

  util::Table table({"msg bytes", "AR us", "VMesh us", "VMesh/AR", "winner"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto m = static_cast<std::uint64_t>(sizes[i]);
    const auto& ar = results[2 * i].run;
    const auto& vm = results[2 * i + 1].run;
    table.add_row({util::fmt_bytes(m), util::fmt(ar.elapsed_us, 1),
                   util::fmt(vm.elapsed_us, 1),
                   util::fmt(vm.elapsed_us / ar.elapsed_us, 2),
                   vm.elapsed_cycles < ar.elapsed_cycles ? "VMesh" : "AR"});
  }
  table.print();
  std::printf("\nPaper claims to check: combining wins below ~32-64 B (message startup\n"
              "amortized over 31 messages instead of 511), loses ~2x for large sizes.\n");
  return 0;
}
