// Shared helpers for the reproduction benches.
//
// Every bench prints the paper's table/figure rows with a measured column
// next to the paper's reported value. Partitions above kDefaultNodeBudget
// nodes are expensive to simulate packet-by-packet on one core, so by
// default such rows run on a shape scaled down by halving dimensions while
// preserving the asymmetry ratios; `--full` runs the paper-exact sizes
// (documented per bench in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/coll/alltoall.hpp"
#include "src/topology/torus.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace bgl::bench {

inline constexpr std::int64_t kDefaultNodeBudget = 1024;

struct BenchContext {
  bool full = false;
  std::int64_t node_budget = kDefaultNodeBudget;
  std::uint64_t seed = 1;

  static BenchContext from_cli(util::Cli& cli) {
    cli.describe("full", "run paper-exact partition sizes (slow)");
    cli.describe("budget", "max nodes before scaling a row down");
    cli.describe("seed", "simulation seed");
    BenchContext ctx;
    ctx.full = cli.get_bool("full", false);
    ctx.node_budget = cli.get_int("budget", kDefaultNodeBudget);
    ctx.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    return ctx;
  }

  /// The shape a row actually runs at. Preference: halve *every* non-trivial
  /// dimension at once, which preserves the paper shape's asymmetry ratios
  /// exactly (32x32x16 -> 16x16x8); when some dimension is too small for
  /// that, halve the largest halvable dimension instead. Wrap flags are
  /// kept; dimensions never drop below 2.
  topo::Shape runnable(const topo::Shape& paper_shape) const {
    if (full) return paper_shape;
    topo::Shape shape = paper_shape;
    // Ratio-preserving halving divides a 3-D shape by 8, so allow 25% slack
    // rather than overshooting to 1/8th of the budget.
    while (shape.nodes() > node_budget + node_budget / 4) {
      bool all_halvable = true;
      for (int a = 0; a < topo::kAxes; ++a) {
        const int extent = shape.dim[static_cast<std::size_t>(a)];
        if (extent > 1 && (extent < 4 || extent % 2 != 0)) all_halvable = false;
      }
      if (all_halvable) {
        for (int a = 0; a < topo::kAxes; ++a) {
          auto& extent = shape.dim[static_cast<std::size_t>(a)];
          if (extent > 1) extent /= 2;
        }
        continue;
      }
      int axis = -1;
      for (int a = 0; a < topo::kAxes; ++a) {
        const int extent = shape.dim[static_cast<std::size_t>(a)];
        if (extent >= 4 && extent % 2 == 0 &&
            (axis < 0 || extent > shape.dim[static_cast<std::size_t>(axis)])) {
          axis = a;
        }
      }
      if (axis < 0) break;
      shape.dim[static_cast<std::size_t>(axis)] /= 2;
    }
    return shape;
  }
};

inline std::string shape_note(const topo::Shape& paper_shape, const topo::Shape& run_shape) {
  if (paper_shape == run_shape) return run_shape.to_string();
  return run_shape.to_string() + " (paper " + paper_shape.to_string() + ")";
}

inline void print_header(const char* title, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

inline coll::AlltoallOptions base_options(const topo::Shape& shape, std::uint64_t msg_bytes,
                                          const BenchContext& ctx) {
  coll::AlltoallOptions options;
  options.net.shape = shape;
  options.net.seed = ctx.seed;
  options.msg_bytes = msg_bytes;
  return options;
}

}  // namespace bgl::bench
