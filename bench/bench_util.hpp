// Formatting helpers shared by the reproduction benches.
//
// The sweep machinery — BenchContext (paper-shape scaling, --jobs/--seed/
// --csv/--json), the worker pool and the deterministic per-job seeding —
// lives in src/harness. This header keeps only what the benches need to
// print their paper-facing tables.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/harness/bench.hpp"
#include "src/util/table.hpp"

namespace bgl::bench {

using harness::BenchContext;
using harness::kDefaultNodeBudget;

inline std::string shape_note(const topo::Shape& paper_shape, const topo::Shape& run_shape) {
  if (paper_shape == run_shape) return run_shape.to_string();
  return run_shape.to_string() + " (paper " + paper_shape.to_string() + ")";
}

inline void print_header(const char* title, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

inline coll::AlltoallOptions base_options(const topo::Shape& shape, std::uint64_t msg_bytes,
                                          const BenchContext& ctx) {
  return ctx.base_options(shape, msg_bytes);
}

}  // namespace bgl::bench
