// Section 5 (future work) ablation: credit-based flow control bounding the
// memory that TPS intermediates need for store-and-forward packets.
//
// Paper sketch: one 32 B credit packet per ten 256 B data packets is ~1%
// bandwidth overhead; the open question is the trade between intermediate
// memory (the credit window) and performance. This bench measures it.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/coll/tps.hpp"
#include "src/network/fabric.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("shape", "partition (default 8x8x16)");
  cli.describe("bytes", "payload per destination (default 960)");
  cli.validate();

  const auto shape = topo::parse_shape(cli.get("shape", "8x8x16"));
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 960));
  bench::print_header("Ablation — TPS credit-based flow control (paper Section 5)",
                      ("partition " + shape.to_string() + ", " + std::to_string(bytes) +
                       " B per destination; window 0 = unbounded (no flow control)")
                          .c_str());

  util::Table table({"credit window", "batch", "% of peak", "max fwd backlog (pkts)",
                     "credit pkts", "credit overhead %"});
  for (const int window : {0, 8, 32}) {
    net::NetworkConfig config;
    config.shape = shape;
    config.seed = ctx.seed;
    coll::TpsTuning tuning;
    tuning.credit_window = window;
    tuning.credit_batch = window > 0 ? std::max(1, window / 2) : 10;
    coll::TwoPhaseClient client(config, bytes, tuning, nullptr);
    net::Fabric fabric(config, client);
    client.bind(fabric);
    const bool drained = fabric.run();
    const double peak = coll::peak_cycles_for(shape, bytes, config.chunk_cycles);
    const double pct = drained && client.completion_cycles() > 0
                           ? 100.0 * peak / static_cast<double>(client.completion_cycles())
                           : 0.0;
    const double overhead =
        100.0 * static_cast<double>(client.credit_packets_sent()) /
        static_cast<double>(fabric.stats().packets_injected);
    table.add_row({window == 0 ? std::string("unbounded") : std::to_string(window),
                   std::to_string(tuning.credit_batch), util::fmt(pct, 1),
                   std::to_string(client.max_forward_backlog()),
                   std::to_string(client.credit_packets_sent()), util::fmt(overhead, 2)});
  }
  table.print();
  std::printf("\nExpected: small windows bound intermediate memory sharply with modest\n"
              "throughput cost; the credit-packet overhead stays in the low percents\n"
              "(the paper estimates ~1%% for one 32 B credit per ten 256 B packets).\n");
  return 0;
}
