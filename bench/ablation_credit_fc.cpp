// Section 5 (future work) ablation: credit-based flow control bounding the
// memory that TPS intermediates need for store-and-forward packets.
//
// Paper sketch: one 32 B credit packet per ten 256 B data packets is ~1%
// bandwidth overhead; the open question is the trade between intermediate
// memory (the credit window) and performance. This bench measures it.
//
// Runs the strategy client directly (it needs client-side stats the
// RunResult does not carry), so it parallelizes the window sweep through
// the generic harness runner rather than a Sweep.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/coll/tps.hpp"
#include "src/coll/schedule.hpp"
#include "src/harness/runner.hpp"
#include "src/network/fabric.hpp"
#include "src/util/shape_arg.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("shape", "partition (default 8x8x16)");
  cli.describe("bytes", "payload per destination (default 960)");
  cli.validate();

  const auto shape = util::shape_arg_or_exit(cli.get("shape", "8x8x16"), cli.program());
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 960));
  bench::print_header("Ablation — TPS credit-based flow control (paper Section 5)",
                      ("partition " + shape.to_string() + ", " + std::to_string(bytes) +
                       " B per destination; window 0 = unbounded (no flow control)")
                          .c_str());

  const int windows[] = {0, 8, 32};

  struct WindowResult {
    int batch = 0;
    double pct = 0.0;
    std::uint64_t backlog = 0;
    std::uint64_t credit_packets = 0;
    double overhead = 0.0;
  };
  const auto results = harness::run_ordered(
      std::size(windows), ctx.sweep.jobs, [&](std::size_t index) {
        const int window = windows[index];
        net::NetworkConfig config;
        config.shape = shape;
        config.seed = harness::derive_seed(ctx.seed(), index);
        coll::TpsTuning tuning;
        tuning.credit_window = window;
        tuning.credit_batch = window > 0 ? std::max(1, window / 2) : 10;
        coll::ScheduleExecutor client(
            config, coll::build_tps_schedule(config, bytes, tuning), nullptr);
        net::Fabric fabric(config, client);
        client.bind(fabric);
        const bool drained = fabric.run();
        const double peak = coll::peak_cycles_for(shape, bytes, config.chunk_cycles);

        WindowResult result;
        result.batch = tuning.credit_batch;
        result.pct = drained && client.completion_cycles() > 0
                         ? 100.0 * peak / static_cast<double>(client.completion_cycles())
                         : 0.0;
        result.backlog = client.max_forward_backlog();
        result.credit_packets = client.credit_packets_sent();
        result.overhead = 100.0 * static_cast<double>(client.credit_packets_sent()) /
                          static_cast<double>(fabric.stats().packets_injected);
        return result;
      });

  util::Table table({"credit window", "batch", "% of peak", "max fwd backlog (pkts)",
                     "credit pkts", "credit overhead %"});
  for (std::size_t i = 0; i < std::size(windows); ++i) {
    const auto& r = results[i];
    table.add_row({windows[i] == 0 ? std::string("unbounded") : std::to_string(windows[i]),
                   std::to_string(r.batch), util::fmt(r.pct, 1),
                   std::to_string(r.backlog), std::to_string(r.credit_packets),
                   util::fmt(r.overhead, 2)});
  }
  table.print();
  std::printf("\nExpected: small windows bound intermediate memory sharply with modest\n"
              "throughput cost; the credit-packet overhead stays in the low percents\n"
              "(the paper estimates ~1%% for one 32 B credit per ten 256 B packets).\n");
  return 0;
}
