// Figure 1: AR strategy performance and prediction on an 8x8x8 midplane.
//
// Sweeps the per-destination message size and prints, per point: the
// simulated AR all-to-all time, the Eq. 3 model prediction, and the Eq. 2
// zero-overhead peak — the three curves of the paper's Figure 1.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/model/predict.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("sizes", "comma-separated payload sizes in bytes");
  cli.validate();

  const auto shape = topo::parse_shape("8x8x8");
  bench::print_header(
      "Figure 1 — AR all-to-all on an 8x8x8 midplane (512 nodes)",
      "measured vs Eq. 3 prediction vs Eq. 2 peak; times in microseconds");

  std::vector<std::int64_t> sizes = {8, 32, 64, 128, 240, 480, 960, 1920, 4096, 8192, 16384};
  if (cli.has("sizes")) sizes = util::parse_int_list(cli.get("sizes", ""));

  harness::Sweep sweep;
  for (const std::int64_t size : sizes) {
    const auto m = static_cast<std::uint64_t>(size);
    sweep.add(coll::StrategyKind::kAdaptiveRandom, bench::base_options(shape, m, ctx));
  }
  const auto results = ctx.run(sweep);

  util::Table table({"msg bytes", "measured us", "model us", "peak us", "% of peak",
                     "% of model"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto m = static_cast<std::uint64_t>(sizes[i]);
    const auto& result = results[i].run;
    const double model_us = model::direct_aa_time_us(shape, m);
    const double peak_us = model::peak_aa_time_us(shape, m);
    table.add_row({util::fmt_bytes(m), util::fmt(result.elapsed_us, 1),
                   util::fmt(model_us, 1), util::fmt(peak_us, 1),
                   util::fmt(result.percent_peak, 1),
                   util::fmt(100.0 * model_us / result.elapsed_us, 1)});
  }
  table.print();
  std::printf("\nPaper: AR reaches ~99%% of peak for large messages on the midplane;\n"
              "the model tracks measurement closely across the sweep.\n");
  return 0;
}
