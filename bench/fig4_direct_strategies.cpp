// Figure 4: percent of peak for large messages and the direct strategies —
// AR (adaptive routing), DR (deterministic routing) and throttled AR.
//
// Paper landmarks: DR > 90% on 2n x n x n partitions (X longest) but worse
// when the long dimension is Y or Z (packets enter on X); on 8x32x16 DR
// beats AR (86 vs 77) while on 8x16x16 DR loses (67 vs 86); throttling buys
// only ~2-3% on 1024 nodes.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("bytes", "payload per destination");
  cli.validate();

  bench::print_header("Figure 4 — direct strategies, % of peak for large messages",
                      "AR vs DR vs throttled AR across partition shapes");

  struct Row {
    const char* shape;
    double paper_ar;  // approximate values read off the paper's Figure 4
    double paper_dr;
  };
  const Row rows[] = {
      {"8x8x8", 99.0, 90.0},   {"16x8x8", 81.0, 93.0},  {"8x16x8", 82.0, 75.0},
      {"8x8x16", 81.0, 70.0},  {"8x16x16", 86.0, 67.0}, {"8x32x16", 77.0, 86.0},
  };

  harness::Sweep sweep;
  for (const Row& row : rows) {
    const auto shape = ctx.runnable(topo::parse_shape(row.shape));
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        cli.get_int("bytes", shape.nodes() <= 512 ? 960 : 240));
    const auto options = bench::base_options(shape, bytes, ctx);
    sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
    sweep.add(coll::StrategyKind::kDeterministic, options);
    sweep.add(coll::StrategyKind::kThrottled, options);
  }
  const auto results = ctx.run(sweep);

  util::Table table({"partition", "run as", "AR %", "DR %", "throttle %", "paper AR",
                     "paper DR"});
  std::size_t job = 0;
  for (const Row& row : rows) {
    const auto paper_shape = topo::parse_shape(row.shape);
    const auto shape = ctx.runnable(paper_shape);
    const auto& ar = results[job++].run;
    const auto& dr = results[job++].run;
    const auto& th = results[job++].run;
    table.add_row({row.shape, bench::shape_note(paper_shape, shape),
                   util::fmt(ar.percent_peak, 1), util::fmt(dr.percent_peak, 1),
                   util::fmt(th.percent_peak, 1), util::fmt(row.paper_ar, 0),
                   util::fmt(row.paper_dr, 0)});
  }
  table.print();
  std::printf("\nPaper claims to check: DR wins when X is the longest dimension and loses\n"
              "when it is not; throttling barely helps; no direct strategy is best on\n"
              "every shape (motivating the Two Phase Schedule).\n");
  return 0;
}
