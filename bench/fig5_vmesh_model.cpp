// Figure 5: analytical prediction (Eq. 4) of the 2-D virtual-mesh all-to-all
// on 512 nodes with a 32x16 virtual mesh — pure model, no simulation, with
// the simulator's measurement alongside for reference.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/model/predict.hpp"

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  cli.describe("sizes", "comma-separated payload sizes in bytes");
  cli.validate();

  const auto shape = topo::parse_shape("8x8x8");
  bench::print_header("Figure 5 — VMesh (32x16) prediction on 512 nodes",
                      "Eq. 4 predicted time vs simulated VMesh time (us)");

  std::vector<std::int64_t> sizes = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  if (cli.has("sizes")) sizes = util::parse_int_list(cli.get("sizes", ""));

  harness::Sweep sweep;
  for (const std::int64_t size : sizes) {
    auto options = bench::base_options(shape, static_cast<std::uint64_t>(size), ctx);
    options.pvx = 32;
    options.pvy = 16;
    sweep.add(coll::StrategyKind::kVirtualMesh, options);
  }
  const auto results = ctx.run(sweep);

  util::Table table({"msg bytes", "Eq.4 predicted us", "simulated us", "ratio"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto m = static_cast<std::uint64_t>(sizes[i]);
    const double predicted = model::vmesh_aa_time_us(shape, 32, 16, m);
    const auto& result = results[i].run;
    table.add_row({util::fmt_bytes(m), util::fmt(predicted, 1),
                   util::fmt(result.elapsed_us, 1),
                   util::fmt(result.elapsed_us / predicted, 2)});
  }
  table.print();
  std::printf("\nPaper: Eq. 4 with alpha=1.7us, beta=6.48ns/B, gamma=1.6ns/B predicts the\n"
              "two-phase combining time; the (Pvx+Pvy)*alpha term dominates tiny sizes.\n");
  return 0;
}
