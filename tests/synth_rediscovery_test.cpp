// Rediscovery regression: on one of the paper's asymmetric torus shapes the
// beam search — whose relay seed deliberately starts on the *wrong* axis —
// must land on a TPS-equivalent schedule (relay family, Z linear axis, the
// paper's choose_linear_axis pick for 4x4x16) with simulated peak at least
// TPS's, within a fixed budget. The winner's transfer table is pinned as a
// golden file next to the schedule_lint goldens.
//
// Regenerate the golden after an intentional change with
//   BGL_UPDATE_GOLDEN=1 ./build/tests/synth_rediscovery_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/coll/schedule_lint.hpp"
#include "src/coll/synth.hpp"

namespace bgl::coll::synth {
namespace {

constexpr const char* kGoldenFile =
    BGL_TEST_GOLDEN_DIR "/synth_winner_4x4x16.csv";

TEST(SynthRediscovery, FindsTpsEquivalentScheduleOnAsymmetricTorus) {
  SynthOptions opts;
  opts.net.shape = topo::parse_shape("4x4x16");
  opts.net.seed = 1;
  opts.msg_bytes = 240;
  opts.seed = 2;  // fixed budget + seed: the whole search is deterministic
  opts.beam_width = 3;
  opts.generations = 2;
  opts.mutations_per_survivor = 3;
  opts.jobs = 4;
  opts.score_baselines = false;  // compared against TPS directly below

  const SynthResult result = synthesize(opts);
  ASSERT_TRUE(result.best.lint_ok);
  ASSERT_TRUE(result.best.drained);

  // The paper's structure, rediscovered: store-and-forward relay family on
  // the Z axis (choose_linear_axis's pick for 4x4x16), not the axis-0 seed.
  EXPECT_EQ(result.best.genome.family, GenomeFamily::kRelay);
  EXPECT_EQ(result.best.genome.relay_axis, topo::kZ);

  // Simulated peak >= TPS's on the same pinned evaluation config.
  AlltoallOptions tps_opts;
  tps_opts.net = opts.net;
  tps_opts.net.sim_threads = 1;
  tps_opts.msg_bytes = opts.msg_bytes;
  const RunResult tps = run_alltoall(StrategyKind::kTwoPhase, tps_opts);
  ASSERT_TRUE(tps.drained);
  EXPECT_LE(result.best.cycles, tps.elapsed_cycles)
      << "winner " << result.best.genome.key() << " lost to registry TPS";

  // Pin the winning schedule's transfer table.
  const CommSchedule sched =
      build_genome_schedule(result.best.genome, opts.net, opts.msg_bytes, nullptr);
  const std::string csv = sched.to_csv(nullptr);
  if (const char* update = std::getenv("BGL_UPDATE_GOLDEN");
      update != nullptr && update[0] != '\0' && update[0] != '0') {
    std::ofstream out(kGoldenFile, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << kGoldenFile;
    out << csv;
    GTEST_SKIP() << "golden regenerated: " << kGoldenFile;
  }
  std::ifstream in(kGoldenFile, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << kGoldenFile
                  << " (regenerate with BGL_UPDATE_GOLDEN=1)";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(csv, golden.str())
      << "winner " << result.best.genome.key()
      << " no longer matches the pinned schedule";
}

}  // namespace
}  // namespace bgl::coll::synth
