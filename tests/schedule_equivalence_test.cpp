// The schedule IR refactor's contract: running a strategy through
// build_*_schedule + ScheduleExecutor is BIT-IDENTICAL to the legacy
// per-strategy client — same completion cycles, same fabric event count,
// same delivery matrix, same reachability mask — fault-free and under a
// fault plan, across the determinism-suite shape and the tuning variants.
#include <gtest/gtest.h>

#include <string>

#include "src/coll/alltoall.hpp"

namespace bgl::coll {
namespace {

struct EquivCase {
  const char* name;
  StrategyKind kind;
  const char* shape;
  std::uint64_t msg_bytes;
  void (*tweak)(AlltoallOptions&);
};

void untweaked(AlltoallOptions&) {}

void check_equivalence(const EquivCase& c, bool faulted) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape(c.shape);
  options.net.seed = 1234;
  options.msg_bytes = c.msg_bytes;
  c.tweak(options);
  if (faulted) {
    options.net.faults.link_fail = 0.04;
    options.net.faults.node_fail = 1;
  }
  const auto nodes = static_cast<std::int32_t>(options.net.shape.nodes());
  DeliveryMatrix legacy_matrix(nodes);
  DeliveryMatrix ir_matrix(nodes);

  AlltoallOptions legacy_options = options;
  legacy_options.use_legacy_clients = true;
  legacy_options.deliveries = &legacy_matrix;
  const RunResult legacy = run_alltoall(c.kind, legacy_options);

  AlltoallOptions ir_options = options;
  ir_options.use_legacy_clients = false;
  ir_options.deliveries = &ir_matrix;
  const RunResult ir = run_alltoall(c.kind, ir_options);

  SCOPED_TRACE(std::string(c.name) + (faulted ? " [faulted]" : " [fault-free]"));
  EXPECT_EQ(legacy.elapsed_cycles, ir.elapsed_cycles);
  EXPECT_EQ(legacy.events, ir.events);
  EXPECT_EQ(legacy.packets_delivered, ir.packets_delivered);
  EXPECT_EQ(legacy.payload_bytes, ir.payload_bytes);
  EXPECT_EQ(legacy.drained, ir.drained);
  EXPECT_TRUE(legacy.drained);
  EXPECT_EQ(legacy.unreachable_pairs, ir.unreachable_pairs);
  EXPECT_EQ(legacy.pairs_complete, ir.pairs_complete);
  EXPECT_EQ(legacy.reachable_complete, ir.reachable_complete);
  EXPECT_DOUBLE_EQ(legacy.links.overall_mean, ir.links.overall_mean);
  for (topo::Rank s = 0; s < nodes; ++s) {
    for (topo::Rank d = 0; d < nodes; ++d) {
      ASSERT_EQ(legacy_matrix.bytes(s, d), ir_matrix.bytes(s, d))
          << "delivery matrix diverges at (" << s << " -> " << d << ")";
      ASSERT_EQ(legacy.reachable.reachable(s, d), ir.reachable.reachable(s, d))
          << "reachability diverges at (" << s << " -> " << d << ")";
    }
  }
}

class ScheduleEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(ScheduleEquivalence, FaultFree) { check_equivalence(GetParam(), false); }
TEST_P(ScheduleEquivalence, Faulted) { check_equivalence(GetParam(), true); }

const EquivCase kCases[] = {
    // The determinism-suite shape, every strategy.
    {"mpi_4x4x8", StrategyKind::kMpi, "4x4x8", 300, &untweaked},
    {"ar_4x4x8", StrategyKind::kAdaptiveRandom, "4x4x8", 300, &untweaked},
    {"dr_4x4x8", StrategyKind::kDeterministic, "4x4x8", 300, &untweaked},
    {"throttled_4x4x8", StrategyKind::kThrottled, "4x4x8", 300, &untweaked},
    {"tps_4x4x8", StrategyKind::kTwoPhase, "4x4x8", 300, &untweaked},
    {"vmesh_4x4x8", StrategyKind::kVirtualMesh, "4x4x8", 300, &untweaked},
    // Tuning variants on the small cube.
    {"mpi_burst2", StrategyKind::kMpi, "4x4x4", 520,
     [](AlltoallOptions& o) { o.burst = 2; }},
    {"ar_rotation", StrategyKind::kAdaptiveRandom, "4x4x4", 300,
     [](AlltoallOptions& o) { o.order = OrderPolicy::kRotation; }},
    {"ar_identity", StrategyKind::kAdaptiveRandom, "4x4x4", 300,
     [](AlltoallOptions& o) { o.order = OrderPolicy::kIdentity; }},
    {"ar_single_packet", StrategyKind::kAdaptiveRandom, "4x4x4", 32, &untweaked},
    {"throttled_larger", StrategyKind::kThrottled, "4x4x4", 1024,
     [](AlltoallOptions& o) { o.throttle = 0.7; }},
    {"tps_no_reserved", StrategyKind::kTwoPhase, "4x4x4", 300,
     [](AlltoallOptions& o) { o.reserved_fifos = false; }},
    {"tps_credits", StrategyKind::kTwoPhase, "4x4x4", 300,
     [](AlltoallOptions& o) { o.credit_window = 8; o.credit_batch = 4; }},
    {"tps_linear_x", StrategyKind::kTwoPhase, "4x4x8", 300,
     [](AlltoallOptions& o) { o.linear_axis = 0; }},
    {"vmesh_zyx", StrategyKind::kVirtualMesh, "4x4x4", 300,
     [](AlltoallOptions& o) { o.vmesh_mapping = 1; }},
    {"vmesh_yxz", StrategyKind::kVirtualMesh, "4x4x4", 300,
     [](AlltoallOptions& o) { o.vmesh_mapping = 2; }},
    {"vmesh_16x4", StrategyKind::kVirtualMesh, "4x4x4", 300,
     [](AlltoallOptions& o) { o.pvx = 16; o.pvy = 4; }},
};

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ScheduleEquivalence, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<EquivCase>& param) {
      return std::string(param.param.name);
    });

}  // namespace
}  // namespace bgl::coll
