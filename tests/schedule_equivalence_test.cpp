// The schedule IR's behavioral contract, re-pinned when the legacy
// per-strategy clients were retired: every one of the 34 equivalence runs
// (17 cases x fault-free/faulted) must keep reproducing — bit-identically —
// the metrics captured from the build in which build_*_schedule +
// ScheduleExecutor matched the legacy clients exactly. The pinned numbers
// live in tests/golden/schedule_equivalence.txt; regenerate them only for an
// intentional behavior change (tools/equivalence_golden) and say so in the
// commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/coll/alltoall.hpp"
#include "tests/equivalence_cases.hpp"

namespace bgl::coll {
namespace {

struct GoldenRecord {
  std::uint64_t elapsed = 0;
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
  std::uint64_t payload = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t pairs_complete = 0;
  int reachable_complete = 0;
  double links_mean = 0.0;
  std::uint64_t matrix_fnv = 0;
  std::uint64_t reachable_fnv = 0;
};

const std::map<std::string, GoldenRecord>& golden() {
  static const std::map<std::string, GoldenRecord> records = [] {
    std::map<std::string, GoldenRecord> out;
    const std::string path =
        std::string(BGL_TEST_GOLDEN_DIR) + "/schedule_equivalence.txt";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream row(line);
      std::string name;
      std::string variant;
      GoldenRecord r;
      row >> name >> variant >> r.elapsed >> r.events >> r.packets >> r.payload >>
          r.unreachable >> r.pairs_complete >> r.reachable_complete >> r.links_mean >>
          std::hex >> r.matrix_fnv >> r.reachable_fnv;
      EXPECT_FALSE(row.fail()) << "malformed golden line: " << line;
      out[name + "/" + variant] = r;
    }
    return out;
  }();
  return records;
}

void check_against_golden(const EquivCase& c, bool faulted) {
  const std::string key =
      std::string(c.name) + "/" + (faulted ? "faulted" : "fault_free");
  SCOPED_TRACE(key);
  const auto it = golden().find(key);
  ASSERT_NE(it, golden().end()) << "no golden record for " << key;
  const GoldenRecord& want = it->second;

  AlltoallOptions options = equiv_options(c, faulted);
  const auto nodes = static_cast<std::int32_t>(options.net.shape.nodes());
  DeliveryMatrix matrix(nodes);
  options.deliveries = &matrix;
  const RunResult result = run_alltoall(c.kind, options);

  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.elapsed_cycles, want.elapsed);
  EXPECT_EQ(result.events, want.events);
  EXPECT_EQ(result.packets_delivered, want.packets);
  EXPECT_EQ(result.payload_bytes, want.payload);
  EXPECT_EQ(result.unreachable_pairs, want.unreachable);
  EXPECT_EQ(result.pairs_complete, want.pairs_complete);
  EXPECT_EQ(result.reachable_complete ? 1 : 0, want.reachable_complete);
  EXPECT_DOUBLE_EQ(result.links.overall_mean, want.links_mean);
  EXPECT_EQ(equiv_matrix_fnv(matrix), want.matrix_fnv)
      << "delivery matrix diverges from the pinned legacy behavior";
  EXPECT_EQ(equiv_reachable_fnv(result.reachable, nodes), want.reachable_fnv)
      << "reachability mask diverges from the pinned legacy behavior";
}

class ScheduleEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(ScheduleEquivalence, FaultFree) { check_against_golden(GetParam(), false); }
TEST_P(ScheduleEquivalence, Faulted) { check_against_golden(GetParam(), true); }

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ScheduleEquivalence, ::testing::ValuesIn(kEquivCases),
    [](const ::testing::TestParamInfo<EquivCase>& param) {
      return std::string(param.param.name);
    });

TEST(ScheduleEquivalenceGolden, CoversEveryCase) {
  EXPECT_EQ(golden().size(), 2u * std::size(kEquivCases));
}

}  // namespace
}  // namespace bgl::coll
