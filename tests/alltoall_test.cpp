#include "src/coll/alltoall.hpp"

#include <gtest/gtest.h>

#include "src/coll/selector.hpp"
#include "src/coll/tps.hpp"
#include "src/coll/vmesh.hpp"
#include "src/topology/torus.hpp"

namespace bgl::coll {
namespace {

AlltoallOptions make_options(const char* shape, std::uint64_t msg_bytes,
                             std::uint64_t seed = 1) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape(shape);
  options.net.seed = seed;
  options.msg_bytes = msg_bytes;
  return options;
}

class StrategyCorrectness
    : public ::testing::TestWithParam<std::tuple<StrategyKind, const char*, std::uint64_t>> {};

TEST_P(StrategyCorrectness, EveryPairReceivesExactlyItsBytes) {
  const auto& [kind, shape, msg_bytes] = GetParam();
  AlltoallOptions options = make_options(shape, msg_bytes);
  DeliveryMatrix matrix(static_cast<std::int32_t>(options.net.shape.nodes()));
  options.deliveries = &matrix;
  const RunResult result = run_alltoall(kind, options);
  EXPECT_TRUE(result.drained) << "collective stalled";
  EXPECT_TRUE(matrix.complete(msg_bytes)) << matrix.first_error(msg_bytes);
  EXPECT_GT(result.elapsed_cycles, 0u);
  EXPECT_GT(result.percent_peak, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesSmallShapes, StrategyCorrectness,
    ::testing::Combine(
        ::testing::Values(StrategyKind::kMpi, StrategyKind::kAdaptiveRandom,
                          StrategyKind::kDeterministic, StrategyKind::kThrottled,
                          StrategyKind::kTwoPhase, StrategyKind::kVirtualMesh),
        ::testing::Values("4x4x4", "8x4x2", "4x2M", "8", "4Mx4x2"),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{100}, std::uint64_t{700})));

TEST(Alltoall, TwoNodeEdgeCase) {
  for (const auto kind : {StrategyKind::kAdaptiveRandom, StrategyKind::kTwoPhase,
                          StrategyKind::kVirtualMesh}) {
    AlltoallOptions options = make_options("2", 64);
    DeliveryMatrix matrix(2);
    options.deliveries = &matrix;
    const RunResult result = run_alltoall(kind, options);
    EXPECT_TRUE(result.drained);
    EXPECT_TRUE(matrix.complete(64)) << strategy_name(kind) << ": "
                                     << matrix.first_error(64);
  }
}

TEST(Alltoall, RejectsSingleNode) {
  AlltoallOptions options = make_options("1", 64);
  EXPECT_THROW(run_alltoall(StrategyKind::kAdaptiveRandom, options), std::invalid_argument);
}

TEST(Alltoall, DeterministicForFixedSeed) {
  const RunResult a =
      run_alltoall(StrategyKind::kAdaptiveRandom, make_options("4x4x4", 240, 5));
  const RunResult b =
      run_alltoall(StrategyKind::kAdaptiveRandom, make_options("4x4x4", 240, 5));
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  const RunResult c =
      run_alltoall(StrategyKind::kAdaptiveRandom, make_options("4x4x4", 240, 6));
  EXPECT_NE(a.elapsed_cycles, c.elapsed_cycles);
}

TEST(Alltoall, PercentPeakIsSane) {
  // Percent of peak must be positive and cannot meaningfully exceed 100
  // (small slack for rounding of the wire-chunk accounting).
  for (const auto kind :
       {StrategyKind::kAdaptiveRandom, StrategyKind::kDeterministic, StrategyKind::kTwoPhase}) {
    const RunResult r = run_alltoall(kind, make_options("4x4x4", 960));
    EXPECT_GT(r.percent_peak, 10.0) << strategy_name(kind);
    EXPECT_LE(r.percent_peak, 102.0) << strategy_name(kind);
  }
}

TEST(Alltoall, TpsLinearAxisFollowsPaperRule) {
  using topo::parse_shape;
  // Table 3's choices.
  EXPECT_EQ(choose_linear_axis(parse_shape("16x8x8")), topo::kX);
  EXPECT_EQ(choose_linear_axis(parse_shape("8x16x8")), topo::kY);
  EXPECT_EQ(choose_linear_axis(parse_shape("8x8x16")), topo::kZ);
  EXPECT_EQ(choose_linear_axis(parse_shape("16x16x8")), topo::kZ);
  EXPECT_EQ(choose_linear_axis(parse_shape("16x8x16")), topo::kY);
  EXPECT_EQ(choose_linear_axis(parse_shape("8x16x16")), topo::kX);
  EXPECT_EQ(choose_linear_axis(parse_shape("8x32x16")), topo::kY);
  EXPECT_EQ(choose_linear_axis(parse_shape("16x32x16")), topo::kY);
  EXPECT_EQ(choose_linear_axis(parse_shape("32x16x16")), topo::kX);
  EXPECT_EQ(choose_linear_axis(parse_shape("32x32x16")), topo::kZ);
  EXPECT_EQ(choose_linear_axis(parse_shape("40x32x16")), topo::kX);
  // Cubes: all three choices are equivalent; we use Z.
  EXPECT_EQ(choose_linear_axis(parse_shape("8x8x8")), topo::kZ);
}

TEST(Alltoall, TpsExplicitLinearAxisRespected) {
  AlltoallOptions options = make_options("4x4x8", 100);
  options.linear_axis = topo::kX;
  DeliveryMatrix matrix(static_cast<std::int32_t>(options.net.shape.nodes()));
  options.deliveries = &matrix;
  const RunResult result = run_alltoall(StrategyKind::kTwoPhase, options);
  EXPECT_TRUE(result.drained);
  EXPECT_TRUE(matrix.complete(100)) << matrix.first_error(100);
}

TEST(Alltoall, TpsCreditFlowControlStaysCorrect) {
  for (int window : {1, 4, 16}) {
    AlltoallOptions options = make_options("8x4x4", 300);
    options.credit_window = window;
    options.credit_batch = 4;
    DeliveryMatrix matrix(static_cast<std::int32_t>(options.net.shape.nodes()));
    options.deliveries = &matrix;
    const RunResult result = run_alltoall(StrategyKind::kTwoPhase, options);
    EXPECT_TRUE(result.drained) << "window=" << window;
    EXPECT_TRUE(matrix.complete(300)) << "window=" << window << ": "
                                      << matrix.first_error(300);
  }
}

TEST(Alltoall, TpsCreditWindowBoundsForwardBacklog) {
  auto run_with = [](int window) {
    net::NetworkConfig config;
    config.shape = topo::parse_shape("8x4x4");
    config.seed = 3;
    TpsTuning tuning;
    tuning.credit_window = window;
    tuning.credit_batch = window > 0 ? std::max(1, window / 2) : 10;
    ScheduleExecutor client(config, build_tps_schedule(config, 480, tuning), nullptr);
    net::Fabric fabric(config, client);
    client.bind(fabric);
    EXPECT_TRUE(fabric.run());
    return client.max_forward_backlog();
  };
  const std::size_t unbounded = run_with(0);
  const std::size_t bounded = run_with(2);
  // With a window of 2 per source, an intermediate with k sources can hold at
  // most ~2k un-forwarded packets; unbounded runs hold far more.
  EXPECT_LT(bounded, unbounded);
}

TEST(Alltoall, VmeshFactorization) {
  EXPECT_EQ(vmesh_factorize(512), (std::pair<int, int>{32, 16}));
  EXPECT_EQ(vmesh_factorize(64), (std::pair<int, int>{8, 8}));
  EXPECT_EQ(vmesh_factorize(4096), (std::pair<int, int>{64, 64}));
  EXPECT_EQ(vmesh_factorize(2), (std::pair<int, int>{2, 1}));
  EXPECT_EQ(vmesh_factorize(13), (std::pair<int, int>{13, 1}));
  EXPECT_EQ(vmesh_factorize(20480), (std::pair<int, int>{160, 128}));
}

TEST(Alltoall, VmeshExplicitDecomposition) {
  AlltoallOptions options = make_options("4x4x4", 16);
  options.pvx = 16;
  options.pvy = 4;
  DeliveryMatrix matrix(64);
  options.deliveries = &matrix;
  const RunResult result = run_alltoall(StrategyKind::kVirtualMesh, options);
  EXPECT_TRUE(result.drained);
  EXPECT_TRUE(matrix.complete(16)) << matrix.first_error(16);
}

TEST(Alltoall, SelectorFollowsPaperRule) {
  using topo::parse_shape;
  EXPECT_EQ(select_strategy(parse_shape("8x8x8"), 4096).kind, StrategyKind::kAdaptiveRandom);
  EXPECT_EQ(select_strategy(parse_shape("16x16x16"), 4096).kind,
            StrategyKind::kAdaptiveRandom);
  EXPECT_EQ(select_strategy(parse_shape("8x32x16"), 4096).kind, StrategyKind::kTwoPhase);
  EXPECT_EQ(select_strategy(parse_shape("8x8x16"), 4096).kind, StrategyKind::kTwoPhase);
  EXPECT_EQ(select_strategy(parse_shape("8x8x2M"), 4096).kind, StrategyKind::kTwoPhase);
  EXPECT_EQ(select_strategy(parse_shape("8x8x8"), 8).kind, StrategyKind::kVirtualMesh);
  EXPECT_EQ(select_strategy(parse_shape("8x32x16"), 8).kind, StrategyKind::kVirtualMesh);
  // Small partitions do not combine.
  EXPECT_EQ(select_strategy(parse_shape("4x4x4"), 8).kind, StrategyKind::kAdaptiveRandom);
}

TEST(Alltoall, BestDispatchesAndCompletes) {
  AlltoallOptions options = make_options("4x4x8", 128);
  DeliveryMatrix matrix(static_cast<std::int32_t>(options.net.shape.nodes()));
  options.deliveries = &matrix;
  const RunResult result = run_alltoall(StrategyKind::kBest, options);
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.strategy, "TPS");
  EXPECT_TRUE(matrix.complete(128)) << matrix.first_error(128);
}

}  // namespace
}  // namespace bgl::coll
