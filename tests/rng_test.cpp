#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace bgl::util {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256StarStar rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 512ull, 20480ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256StarStar rng(11);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets / 5.0);
  }
}

TEST(Xoshiro, UnitIsInHalfOpenInterval) {
  Xoshiro256StarStar rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, CoinIsFair) {
  Xoshiro256StarStar rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.coin();
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Xoshiro, ShuffleIsAPermutation) {
  Xoshiro256StarStar rng(9);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  const auto original = values;
  rng.shuffle(values);
  EXPECT_NE(values, original);  // astronomically unlikely to be identity
  std::set<int> seen(values.begin(), values.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Xoshiro, ForkedStreamsAreIndependent) {
  Xoshiro256StarStar parent(13);
  auto child1 = parent.fork();
  auto child2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child1() == child2());
  EXPECT_EQ(equal, 0);
}

TEST(AffinePermutation, IsABijection) {
  Xoshiro256StarStar rng(17);
  for (const std::uint64_t n : {1ull, 2ull, 7ull, 64ull, 512ull, 20480ull}) {
    AffinePermutation perm(n, rng);
    std::set<std::uint64_t> image;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = perm(i);
      EXPECT_LT(v, n);
      image.insert(v);
    }
    EXPECT_EQ(image.size(), n) << "not a bijection for n=" << n;
  }
}

TEST(AffinePermutation, UsuallyNotIdentity) {
  Xoshiro256StarStar rng(23);
  int identity = 0;
  for (int trial = 0; trial < 20; ++trial) {
    AffinePermutation perm(512, rng);
    bool is_identity = true;
    for (std::uint64_t i = 0; i < 512 && is_identity; ++i) is_identity = perm(i) == i;
    identity += is_identity;
  }
  EXPECT_LE(identity, 1);
}

TEST(SplitMix, KnownSequenceIsStable) {
  // Guards against accidental changes to seeding (which would silently
  // change every "deterministic" simulation result).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace bgl::util
