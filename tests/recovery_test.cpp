// Epoch-based recovery and Byzantine-corruption detection, end to end:
// the corrupt:p fault mode (every flipped payload rejected by the proto
// checksum, recovered by retransmission), the epoch transition after a
// delayed permanent strike (residual computation, repair-schedule
// construction, exactly-once delivery across epochs), and the itemized
// stranded-custody ledger on relay-bearing and multi-barrier schedules.
#include "src/coll/recovery.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/coll/schedule.hpp"
#include "src/coll/schedule_lint.hpp"
#include "src/coll/synth.hpp"
#include "src/coll/verify.hpp"
#include "src/network/fabric.hpp"
#include "src/network/faults.hpp"
#include "src/runtime/reliability.hpp"

namespace bgl::coll {
namespace {

AlltoallOptions options_for(const char* shape, std::uint64_t msg_bytes,
                            std::uint64_t seed) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape(shape);
  options.net.seed = seed;
  options.msg_bytes = msg_bytes;
  options.verify = true;
  return options;
}

// --- corrupt:p end to end ---------------------------------------------------

TEST(CorruptEndToEnd, ChecksumRejectsEveryCorruptionAndRunCompletes) {
  AlltoallOptions options = options_for("4x4x1", 480, 11);
  options.net.faults.corrupt_prob = 0.02;
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);

  ASSERT_TRUE(r.drained);
  // The mode actually fired, and detection is total: every payload the
  // fabric corrupted was rejected by the receiver's checksum — none reached
  // the application as silent garbage.
  EXPECT_GT(r.faults.corrupted_payloads, 0u);
  EXPECT_EQ(r.reliability.corrupt_rejected, r.faults.corrupted_payloads);
  // Corruption is not loss: nothing dropped, everything re-covered.
  EXPECT_EQ(r.faults.dropped_prob, 0u);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.unreachable_pairs, 0u);
  // No strike, no re-plan — corruption is repaired inline.
  EXPECT_EQ(r.epochs.epochs, 1);
  EXPECT_EQ(r.epochs.replans, 0);
  EXPECT_EQ(r.epochs.corruption_retransmits, r.reliability.corrupt_rejected);
}

TEST(CorruptEndToEnd, CorruptionRunsAreDeterministic) {
  AlltoallOptions options = options_for("4x2x2", 300, 21);
  options.net.faults.corrupt_prob = 0.05;
  const RunResult a = run_alltoall(StrategyKind::kDeterministic, options);
  const RunResult b = run_alltoall(StrategyKind::kDeterministic, options);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults.corrupted_payloads, b.faults.corrupted_payloads);
  EXPECT_EQ(a.reliability.retransmits, b.reliability.retransmits);
}

TEST(CorruptEndToEnd, SurvivesCombinedDropAndCorrupt) {
  AlltoallOptions options = options_for("4x4x1", 256, 31);
  options.net.faults.drop_prob = 0.01;
  options.net.faults.corrupt_prob = 0.01;
  const RunResult r = run_alltoall(StrategyKind::kTwoPhase, options);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.faults.corrupted_payloads, 0u);
  EXPECT_GT(r.faults.dropped_prob, 0u);
  EXPECT_EQ(r.reliability.corrupt_rejected, r.faults.corrupted_payloads);
  EXPECT_TRUE(r.reachable_complete);
}

// --- residual + repair schedule unit pieces ---------------------------------

TEST(Residual, DiscardAndResidualFollowTheLivenessView) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x1");
  net.seed = 3;
  net.faults.node_fail = 1;
  net.faults.fail_at = 1;  // delayed strike; dead set identical to fail_at=0
  const net::FaultPlan plan(net, net.shape);
  ASSERT_EQ(plan.dead_node_count(), 1u);
  topo::Rank dead = -1;
  for (topo::Rank n = 0; n < 8; ++n) {
    if (!plan.node_alive(n)) dead = n;
  }
  ASSERT_GE(dead, 0);

  const std::uint64_t msg = 100;
  DeliveryMatrix matrix(8);
  const topo::Rank alive_a = dead == 0 ? 1 : 0;
  const topo::Rank alive_b = dead <= 1 ? 2 : (dead == 2 ? 3 : 2);
  matrix.record(alive_a, alive_b, 40);   // partial, recoverable
  matrix.record(alive_b, alive_a, msg);  // complete
  matrix.record(alive_a, dead, 60);      // partial, dead destination

  EXPECT_FALSE(pair_recoverable(plan, alive_a, dead));
  EXPECT_FALSE(pair_recoverable(plan, dead, alive_a));
  EXPECT_TRUE(pair_recoverable(plan, alive_a, alive_b));

  const std::vector<ResidualPair> residual = compute_residual(matrix, msg, plan);
  // Every recoverable pair short of msg shows up, topped up by the exact
  // missing bytes; the complete and the dead-endpoint pairs do not.
  bool found = false;
  for (const ResidualPair& r : residual) {
    EXPECT_TRUE(pair_recoverable(plan, r.src, r.dst));
    EXPECT_GT(r.bytes, 0u);
    EXPECT_LE(r.bytes, msg);
    if (r.src == alive_a && r.dst == alive_b) {
      found = true;
      EXPECT_EQ(r.bytes, msg - 40);
    }
    EXPECT_FALSE(r.src == alive_b && r.dst == alive_a);
    EXPECT_FALSE(r.dst == dead || r.src == dead);
  }
  EXPECT_TRUE(found);

  EXPECT_EQ(matrix.discard(alive_a, dead), 60u);
  EXPECT_EQ(matrix.bytes(alive_a, dead), 0u);
}

TEST(RepairSchedule, LintsCleanAndCoversExactlyTheResidual) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 7;
  net.faults.node_fail = 1;
  const net::FaultPlan plan(net, net.shape);

  const std::uint64_t msg = 512;
  std::vector<ResidualPair> residual;
  for (topo::Rank s = 0; s < 4; ++s) {
    for (topo::Rank d = 8; d < 12; ++d) {
      if (s == d || !pair_recoverable(plan, s, d)) continue;
      residual.push_back(ResidualPair{s, d, s % 2 == 0 ? msg : msg / 4});
    }
  }
  ASSERT_FALSE(residual.empty());

  const CommSchedule repair = build_repair_schedule(net, msg, residual);
  EXPECT_EQ(repair.form, StreamForm::kExplicit);
  EXPECT_EQ(repair.ops.size(), residual.size());
  const LintReport report = schedule_lint(repair, &plan);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.covered_pairs, residual.size());
  // Coverage is the residual and nothing else.
  for (const ResidualPair& r : residual) {
    EXPECT_TRUE(repair.pair_covered(r.src, r.dst, &plan));
  }
  EXPECT_FALSE(repair.pair_covered(8, 0, &plan));

  // Executing the repair alone delivers exactly the residual bytes.
  AlltoallOptions options;
  options.net = net;
  options.msg_bytes = msg;
  DeliveryMatrix matrix(repair.nodes());
  options.deliveries = &matrix;
  options.recover = false;
  const RunResult rr = run_schedule(repair, options, "repair");
  ASSERT_TRUE(rr.drained);
  for (const ResidualPair& r : residual) {
    EXPECT_EQ(matrix.bytes(r.src, r.dst), r.bytes)
        << "pair " << r.src << " -> " << r.dst;
  }
}

// --- epoch recovery end to end ----------------------------------------------

TEST(EpochRecovery, TpsMidStrikeDeliversAllReachableExactlyOnce) {
  AlltoallOptions options = options_for("4x4x4", 2048, 13);
  const RunResult healthy = run_alltoall(StrategyKind::kTwoPhase, options);
  ASSERT_TRUE(healthy.drained);
  ASSERT_TRUE(healthy.reachable_complete);
  EXPECT_EQ(healthy.epochs.epochs, 1);  // fault-free runs never re-plan

  // Same strike as parallel_core_test's MidRunStrike — but with recovery
  // left on (the default), so the stranded custody and the abandoned pairs
  // must be re-sourced by repair epochs until the survivors are whole.
  options.net.faults.node_fail = 1;
  options.net.faults.fail_at = healthy.elapsed_cycles / 4;
  const RunResult r = run_alltoall(StrategyKind::kTwoPhase, options);

  ASSERT_TRUE(r.drained);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.verified);
  // The whole point: every pair the survivors can still serve is delivered
  // exactly once, and nothing stays stranded in dead custody.
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.faults.stranded_relay_bytes, 0u);
  EXPECT_GE(r.epochs.epochs, 2);
  EXPECT_GE(r.epochs.replans, 1);
  EXPECT_GT(r.epochs.residual_pairs, 0u);
  EXPECT_GT(r.epochs.recovered_bytes, 0u);
  EXPECT_GT(r.epochs.replan_cycles, 0u);
  // Post-recovery reachability is the survivors' view: the dead node's
  // undelivered pairs are the unreachable ones.
  EXPECT_GT(r.unreachable_pairs, 0u);
  // Time accounting: the re-plan cycles are folded into the total.
  EXPECT_GT(r.elapsed_cycles, r.epochs.replan_cycles);
}

TEST(EpochRecovery, RecoveredRunsAreBitDeterministic) {
  AlltoallOptions options = options_for("4x4x4", 1024, 17);
  options.net.faults.node_fail = 1;
  options.net.faults.fail_at = 400'000;
  const RunResult a = run_alltoall(StrategyKind::kTwoPhase, options);
  const RunResult b = run_alltoall(StrategyKind::kTwoPhase, options);
  ASSERT_TRUE(a.drained);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.epochs.replans, b.epochs.replans);
  EXPECT_EQ(a.epochs.residual_pairs, b.epochs.residual_pairs);
  EXPECT_EQ(a.epochs.recovered_bytes, b.epochs.recovered_bytes);
  EXPECT_EQ(a.pairs_complete, b.pairs_complete);
  EXPECT_EQ(a.reachable_complete, b.reachable_complete);
}

TEST(EpochRecovery, Combine3dBarrierWedgeIsRepaired) {
  // A mid-run node strike wedges the victims' downstream barriers: their
  // stage-1/2 ops never open, so epoch 0 quiesces with a large shortfall
  // that is *not* all attributable to dead custody. The matrix-driven
  // residual must cover it anyway.
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 9;
  AlltoallOptions options;
  options.net = net;
  options.msg_bytes = 96;
  options.verify = true;
  const RunResult healthy =
      run_schedule(synth::build_combine3d_schedule(net, 96, 0, nullptr), options,
                   "combine3d");
  ASSERT_TRUE(healthy.drained);
  ASSERT_TRUE(healthy.reachable_complete);

  options.net.faults.node_fail = 1;
  options.net.faults.fail_at = healthy.elapsed_cycles / 3;
  // Planning stays blind: the schedule is built fault-free, exactly as the
  // pre-strike network looks.
  const RunResult r = run_schedule(
      synth::build_combine3d_schedule(options.net, 96, 0, nullptr), options,
      "combine3d");
  ASSERT_TRUE(r.drained);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.faults.stranded_relay_bytes, 0u);
  EXPECT_GE(r.epochs.epochs, 2);
  EXPECT_GT(r.epochs.recovered_bytes, 0u);
}

TEST(EpochRecovery, SynthesizedRelayScheduleRecovers) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 23;
  synth::Genome genome;
  genome.family = synth::GenomeFamily::kRelay;
  genome.relay_axis = 0;
  genome.fifo_split = 4;

  AlltoallOptions options;
  options.net = net;
  options.msg_bytes = 480;
  options.verify = true;
  const RunResult healthy = run_schedule(
      synth::build_genome_schedule(genome, net, 480, nullptr), options, "R:a0");
  ASSERT_TRUE(healthy.drained);
  ASSERT_TRUE(healthy.reachable_complete);

  options.net.faults.node_fail = 1;
  options.net.faults.fail_at = healthy.elapsed_cycles / 4;
  const RunResult r = run_schedule(
      synth::build_genome_schedule(genome, options.net, 480, nullptr), options,
      "R:a0");
  ASSERT_TRUE(r.drained);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.faults.stranded_relay_bytes, 0u);
}

TEST(EpochRecovery, RecoverFalsePreservesTheStruckContract) {
  AlltoallOptions options = options_for("4x4x4", 2048, 13);
  const RunResult healthy = run_alltoall(StrategyKind::kTwoPhase, options);
  ASSERT_TRUE(healthy.drained);

  options.recover = false;
  options.net.faults.node_fail = 1;
  options.net.faults.fail_at = healthy.elapsed_cycles / 4;
  const RunResult r = run_alltoall(StrategyKind::kTwoPhase, options);
  ASSERT_TRUE(r.drained);
  EXPECT_FALSE(r.reachable_complete);
  EXPECT_GT(r.faults.stranded_relay_bytes, 0u);
  EXPECT_EQ(r.epochs.epochs, 1);
  EXPECT_EQ(r.epochs.replans, 0);
}

TEST(EpochRecovery, ImmediateStrikeNeverRearms) {
  // fail_at == 0 plans around the faults up front: nothing to recover, and
  // the recovery layer must stay out of the way.
  AlltoallOptions options = options_for("4x4x1", 300, 5);
  options.net.faults.node_fail = 2;
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(r.drained);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.epochs.epochs, 1);
  EXPECT_EQ(r.epochs.replans, 0);
}

// --- stranded-custody itemization (multi-barrier + synthesized) -------------

/// Runs `sched` under `net`'s blind strike through the full reliability
/// stack and returns the executor's post-quiescence itemized custody.
std::vector<StrandedRelay> struck_stranded(const net::NetworkConfig& net,
                                           CommSchedule sched,
                                           DeliveryMatrix& matrix,
                                           std::uint64_t& total) {
  ScheduleExecutor exec(net, std::move(sched), &matrix, nullptr);
  rt::ReliableClient reliable(net, exec);
  net::Fabric fabric(net, reliable);
  exec.bind(fabric);
  reliable.attach(fabric);
  EXPECT_TRUE(fabric.run(Tick{1} << 40));
  const net::FaultPlan plan(net, net.shape);
  std::vector<StrandedRelay> records;
  exec.collect_stranded(plan, records);
  total = exec.stranded_relay_bytes(plan);
  return records;
}

TEST(StrandedCustody, Combine3dItemizationMatchesTheTotal) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 9;
  net.faults.node_fail = 1;
  net.faults.fail_at = 600'000;
  const std::uint64_t msg = 96;
  const net::FaultPlan plan(net, net.shape);

  DeliveryMatrix matrix(16);
  std::uint64_t total = 0;
  const std::vector<StrandedRelay> records = struck_stranded(
      net, synth::build_combine3d_schedule(net, msg, 0, nullptr), matrix, total);

  std::uint64_t sum = 0;
  for (const StrandedRelay& r : records) {
    EXPECT_GE(r.orig_src, 0);
    EXPECT_GE(r.final_dst, 0);
    EXPECT_NE(r.orig_src, r.final_dst);
    EXPECT_GT(r.payload_bytes, 0u);
    // Custody explains shortfall: a stranded pair is short in the matrix.
    EXPECT_LT(matrix.bytes(r.orig_src, r.final_dst), msg);
    sum += r.payload_bytes;
  }
  EXPECT_EQ(sum, total);
}

TEST(StrandedCustody, SynthesizedRelayItemizationMatchesTheTotal) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 23;
  net.faults.node_fail = 1;
  net.faults.fail_at = 400'000;
  const std::uint64_t msg = 480;

  synth::Genome genome;
  genome.family = synth::GenomeFamily::kRelay;
  genome.relay_axis = 0;
  genome.fifo_split = 4;

  DeliveryMatrix matrix(16);
  std::uint64_t total = 0;
  const std::vector<StrandedRelay> records = struck_stranded(
      net, synth::build_genome_schedule(genome, net, msg, nullptr), matrix, total);

  std::uint64_t sum = 0;
  for (const StrandedRelay& r : records) {
    EXPECT_NE(r.orig_src, r.final_dst);
    EXPECT_GT(r.payload_bytes, 0u);
    EXPECT_LT(matrix.bytes(r.orig_src, r.final_dst), msg);
    sum += r.payload_bytes;
  }
  EXPECT_EQ(sum, total);
  // Determinism: the ledger is identical run to run.
  DeliveryMatrix matrix2(16);
  std::uint64_t total2 = 0;
  const std::vector<StrandedRelay> records2 = struck_stranded(
      net, synth::build_genome_schedule(genome, net, msg, nullptr), matrix2,
      total2);
  ASSERT_EQ(records2.size(), records.size());
  EXPECT_EQ(total2, total);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].orig_src, records2[i].orig_src);
    EXPECT_EQ(records[i].final_dst, records2[i].final_dst);
    EXPECT_EQ(records[i].payload_bytes, records2[i].payload_bytes);
  }
}

}  // namespace
}  // namespace bgl::coll
