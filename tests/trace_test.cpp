// Tests for the link-utilization instrumentation.
#include "src/trace/stats.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/coll/direct.hpp"
#include "src/coll/schedule.hpp"
#include "src/network/fabric.hpp"

namespace bgl::trace {
namespace {

/// One packet 0 -> +X neighbor: exactly one link busy for chunks*128 cycles.
class OneShot : public net::Client {
 public:
  bool next_packet(topo::Rank node, net::InjectDesc& out) override {
    if (node != 0 || sent_) return false;
    sent_ = true;
    out.dst = 1;
    out.wire_chunks = 4;
    out.payload_bytes = 128;
    return true;
  }
  void on_delivery(topo::Rank, const net::Packet&) override {}

 private:
  bool sent_ = false;
};

TEST(LinkStats, SingleTransferUtilization) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape("4x1x1");
  OneShot client;
  net::Fabric fabric(config, client);
  ASSERT_TRUE(fabric.run());
  const net::Tick elapsed = fabric.stats().last_delivery;
  const auto report = summarize_links(fabric, elapsed);
  // Only X links exist; only one of them was ever busy.
  EXPECT_GT(report.axis[topo::kX].max, 0.0);
  EXPECT_DOUBLE_EQ(report.axis[topo::kY].max, 0.0);
  EXPECT_DOUBLE_EQ(report.axis[topo::kZ].max, 0.0);
  // The busy link carried 4 chunks * 128 cycles within `elapsed`.
  EXPECT_NEAR(report.axis[topo::kX].max, 4.0 * 128.0 / static_cast<double>(elapsed), 1e-9);
  EXPECT_GT(report.overall_mean, 0.0);
  EXPECT_LE(report.overall_mean, report.overall_max);
}

TEST(LinkStats, ZeroElapsedYieldsEmptyReport) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape("4x1x1");
  OneShot client;
  net::Fabric fabric(config, client);
  const auto report = summarize_links(fabric, 0);
  EXPECT_DOUBLE_EQ(report.overall_mean, 0.0);
  EXPECT_DOUBLE_EQ(report.overall_max, 0.0);
}

TEST(LinkStats, MeshEdgesExcluded) {
  // A 4-mesh line has 3 links per direction, not 4; the report must not
  // count the non-existent wrap links as idle links.
  net::NetworkConfig config;
  config.shape = topo::parse_shape("4Mx1x1");
  config.seed = 2;
  coll::ScheduleExecutor client(
      config, coll::build_direct_schedule(config, 64, coll::DirectTuning::ar()),
      nullptr);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  ASSERT_TRUE(fabric.run());
  const auto torus_report = summarize_links(fabric, fabric.stats().last_delivery);
  EXPECT_GT(torus_report.axis[topo::kX].mean, 0.0);
  // min over existing links only; with an AA workload every real X link is
  // used at least once.
  EXPECT_GT(torus_report.axis[topo::kX].min, 0.0);
}

TEST(LinkStats, HistogramCountsExistingLinks) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape("4x4x1");
  config.seed = 3;
  coll::ScheduleExecutor client(
      config, coll::build_direct_schedule(config, 240, coll::DirectTuning::ar()),
      nullptr);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  ASSERT_TRUE(fabric.run());
  const auto histogram = utilization_histogram(fabric, fabric.stats().last_delivery, 10);
  const int total = std::accumulate(histogram.begin(), histogram.end(), 0);
  // 16 nodes x 4 existing directions (X+, X-, Y+, Y-).
  EXPECT_EQ(total, 16 * 4);
}

TEST(LinkStats, ReportToStringMentionsAllAxes) {
  LinkReport report;
  report.axis[0].mean = 0.5;
  report.axis[0].max = 0.9;
  const std::string text = report.to_string();
  EXPECT_NE(text.find("X: mean 50.0% max 90.0%"), std::string::npos);
  EXPECT_NE(text.find("Y:"), std::string::npos);
  EXPECT_NE(text.find("Z:"), std::string::npos);
}

}  // namespace
}  // namespace bgl::trace
