#include "src/util/cli.hpp"

#include <gtest/gtest.h>

#include "src/util/table.hpp"

namespace bgl::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, KeyValueForms) {
  const Cli cli = make({"--shape", "8x8x8", "--bytes=4096"});
  EXPECT_EQ(cli.get("shape", ""), "8x8x8");
  EXPECT_EQ(cli.get_int("bytes", 0), 4096);
  EXPECT_EQ(cli.get("missing", "fallback"), "fallback");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, BareFlagBeforeAnotherOption) {
  const Cli cli = make({"--full", "--seed", "3"});
  EXPECT_TRUE(cli.has("full"));
  EXPECT_TRUE(cli.get_bool("full", false));
  EXPECT_EQ(cli.get_int("seed", 0), 3);
}

TEST(Cli, BoolValueForms) {
  const Cli cli = make({"--a=0", "--b=false", "--c=yes", "--d=1"});
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_TRUE(cli.get_bool("d", false));
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, DoubleValues) {
  const Cli cli = make({"--factor", "2.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("factor", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make({"first", "--opt", "v", "second"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, ValidateRejectsUnknownOptions) {
  Cli cli = make({"--typo", "1"});
  cli.describe("real", "a real option");
  EXPECT_THROW(cli.validate(), std::runtime_error);
}

TEST(Cli, ValidateAcceptsDescribedOptions) {
  Cli cli = make({"--real", "1"});
  cli.describe("real", "a real option");
  EXPECT_NO_THROW(cli.validate());
}

TEST(ParseIntList, Basics) {
  EXPECT_EQ(parse_int_list("8,64,512"), (std::vector<std::int64_t>{8, 64, 512}));
  EXPECT_EQ(parse_int_list("42"), (std::vector<std::int64_t>{42}));
  EXPECT_TRUE(parse_int_list("").empty());
  EXPECT_EQ(parse_int_list("1,,2"), (std::vector<std::int64_t>{1, 2}));
}

// Values must parse in full: "12x" silently running as 12 once turned a
// typo'd --seed into a valid but wrong experiment.
TEST(Cli, IntValuesRejectTrailingJunk) {
  for (const char* bad : {"12x", "x12", "1.5", "0x10", "12 "}) {
    const Cli cli = make({std::string("--seed=").append(bad).c_str()});
    EXPECT_THROW(cli.get_int("seed", 0), std::runtime_error) << "'" << bad << "'";
  }
  // The error names the offending option so the user can find it.
  const Cli cli = make({"--seed=12x"});
  try {
    cli.get_int("seed", 0);
    FAIL() << "expected get_int to reject 12x";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("--seed"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("12x"), std::string::npos);
  }
}

TEST(Cli, IntValuesAcceptNegativesAndRejectOverflow) {
  EXPECT_EQ(make({"--n=-42"}).get_int("n", 0), -42);
  EXPECT_THROW(make({"--n=99999999999999999999999"}).get_int("n", 0),
               std::runtime_error);
}

TEST(Cli, DoubleValuesRejectTrailingJunk) {
  for (const char* bad : {"2.5x", "x2.5", "1e"}) {
    const Cli cli = make({std::string("--factor=").append(bad).c_str()});
    EXPECT_THROW(cli.get_double("factor", 0.0), std::runtime_error)
        << "'" << bad << "'";
  }
  EXPECT_DOUBLE_EQ(make({"--factor=2.5e1"}).get_double("factor", 0.0), 25.0);
}

TEST(ParseIntList, RejectsJunkEntries) {
  EXPECT_THROW(parse_int_list("8,64x,512"), std::runtime_error);
  EXPECT_THROW(parse_int_list("abc"), std::runtime_error);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "450"});
  table.add_row({"beta", "6.48"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric cells right-aligned: "  450" ends at the column edge.
  EXPECT_NE(out.find("  450 |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NO_THROW(table.render());
}

TEST(Fmt, Bytes) {
  EXPECT_EQ(fmt_bytes(8), "8B");
  EXPECT_EQ(fmt_bytes(1024), "1KB");
  EXPECT_EQ(fmt_bytes(4096), "4KB");
  EXPECT_EQ(fmt_bytes(1536), "1536B");
  EXPECT_EQ(fmt_bytes(2 * 1024 * 1024), "2MB");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(99.94, 1), "99.9");
  EXPECT_EQ(fmt(5.0, 0), "5");
}

}  // namespace
}  // namespace bgl::util
