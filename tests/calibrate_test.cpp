#include "src/model/calibrate.hpp"

#include <gtest/gtest.h>

namespace bgl::model {
namespace {

net::NetworkConfig make_config(const char* shape) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape(shape);
  config.seed = 1;
  return config;
}

TEST(Fit, RecoversExactLine) {
  std::vector<PingPongSample> samples;
  for (std::uint64_t m = 0; m <= 1000; m += 100) {
    samples.push_back({m, static_cast<net::Tick>(500 + 4 * m)});
  }
  double alpha = 0, beta = 0;
  fit_alpha_beta(samples, alpha, beta);
  EXPECT_NEAR(alpha, 500.0, 1e-6);
  EXPECT_NEAR(beta, 4.0, 1e-6);
}

TEST(Fit, RejectsDegenerateInput) {
  double alpha = 0, beta = 0;
  std::vector<PingPongSample> one = {{100, 900}};
  EXPECT_THROW(fit_alpha_beta(one, alpha, beta), std::invalid_argument);
  std::vector<PingPongSample> same_size = {{100, 900}, {100, 950}};
  EXPECT_THROW(fit_alpha_beta(same_size, alpha, beta), std::invalid_argument);
}

TEST(PingPong, TimeGrowsWithSizeAndDistance) {
  const auto config = make_config("8x8x8");
  const net::Tick small = ping_message_cycles(config, 0, 1, 64);
  const net::Tick large = ping_message_cycles(config, 0, 1, 4096);
  EXPECT_GT(large, small);

  const topo::Torus torus{config.shape};
  const topo::Rank far_node = torus.rank_of({{4, 4, 4}});
  const net::Tick near_time = ping_message_cycles(config, 0, 1, 64);
  const net::Tick far_time = ping_message_cycles(config, 0, far_node, 64);
  EXPECT_GT(far_time, near_time) << "per-hop latency must show up";
}

TEST(Calibrate, RecoversSimulatorGroundTruth) {
  const auto config = make_config("8x8x8");
  const auto calibration =
      calibrate(config, {64, 256, 1024, 4096, 16384});
  // Ground truth: 450 charged startup cycles, partially hidden behind the
  // first packet's wire time (the fit sees the non-overlapped remainder).
  EXPECT_GT(calibration.alpha_cycles, 150.0);
  EXPECT_LT(calibration.alpha_cycles, 2500.0);
  // Links run at 4 cycles/byte = 5.71 ns/B; headers push the effective
  // per-payload-byte cost a bit above that, toward the paper's 6.48.
  EXPECT_GT(calibration.beta_ns_per_byte, 5.0);
  EXPECT_LT(calibration.beta_ns_per_byte, 7.5);
  ASSERT_EQ(calibration.samples.size(), 5u);
}

TEST(Calibrate, ThrowsOnSingleNode) {
  EXPECT_THROW(calibrate(make_config("1"), {64, 128}), std::invalid_argument);
}

}  // namespace
}  // namespace bgl::model
