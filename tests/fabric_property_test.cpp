// Property tests on the router model: routing legality, hop minimality,
// accounting invariants, and the dimension-order discipline — checked with
// the fabric's hop observer and invariant checker.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/network/fabric.hpp"
#include "src/util/rng.hpp"

namespace bgl::net {
namespace {

class TaggedTrafficClient : public Client {
 public:
  TaggedTrafficClient(std::int32_t nodes, int per_node, RoutingMode mode,
                      std::uint64_t seed)
      : nodes_(nodes), remaining_(static_cast<std::size_t>(nodes), per_node),
        mode_(mode), rng_(seed) {}

  bool next_packet(topo::Rank node, InjectDesc& out) override {
    auto& left = remaining_[static_cast<std::size_t>(node)];
    if (left == 0) return false;
    --left;
    topo::Rank dst;
    do {
      dst = static_cast<topo::Rank>(rng_.below(static_cast<std::uint64_t>(nodes_)));
    } while (dst == node);
    out.dst = dst;
    out.wire_chunks = static_cast<std::uint16_t>(1 + rng_.below(8));
    out.payload_bytes = out.wire_chunks * 32u;
    out.mode = mode_;
    out.fifo = static_cast<std::uint8_t>(rng_.below(8));
    out.tag = next_tag_++;
    return true;
  }

  void on_delivery(topo::Rank node, const Packet& packet) override {
    deliveries.emplace_back(node, packet);
  }

  std::vector<std::pair<topo::Rank, Packet>> deliveries;

 private:
  std::int32_t nodes_;
  std::vector<int> remaining_;
  RoutingMode mode_;
  util::Xoshiro256StarStar rng_;
  std::uint64_t next_tag_ = 0;
};

NetworkConfig make_config(const char* shape, std::uint64_t seed) {
  NetworkConfig config;
  config.shape = topo::parse_shape(shape);
  config.seed = seed;
  return config;
}

class RoutingProperty
    : public ::testing::TestWithParam<std::tuple<const char*, RoutingMode>> {};

TEST_P(RoutingProperty, EveryPacketTakesExactlyMinimalHops) {
  const auto& [shape, mode] = GetParam();
  auto config = make_config(shape, 11);
  const auto nodes = static_cast<std::int32_t>(config.shape.nodes());
  const topo::Torus torus{config.shape};
  TaggedTrafficClient client(nodes, 60, mode, 5);
  Fabric fabric(config, client);

  std::map<std::uint64_t, int> hops_taken;
  fabric.set_hop_observer(
      [&](const Packet& packet, topo::Rank, int, int) { ++hops_taken[packet.tag]; });

  ASSERT_TRUE(fabric.run());
  ASSERT_EQ(client.deliveries.size(), static_cast<std::size_t>(nodes) * 60u);
  for (const auto& [node, packet] : client.deliveries) {
    EXPECT_EQ(node, packet.dst);
    EXPECT_EQ(hops_taken[packet.tag], torus.distance(packet.src, packet.dst))
        << packet.src << " -> " << packet.dst;
  }
}

TEST_P(RoutingProperty, InvariantsHoldMidRunAndAtQuiescence) {
  const auto& [shape, mode] = GetParam();
  auto config = make_config(shape, 23);
  const auto nodes = static_cast<std::int32_t>(config.shape.nodes());
  TaggedTrafficClient client(nodes, 120, mode, 9);
  Fabric fabric(config, client);

  bool done = false;
  for (int slice = 1; slice <= 400 && !done; ++slice) {
    done = fabric.run(static_cast<Tick>(slice) * 20000);
    const std::string violation = fabric.check_invariants(/*quiescent=*/false);
    ASSERT_EQ(violation, "") << "at slice " << slice;
  }
  ASSERT_TRUE(done) << "traffic did not drain";
  EXPECT_EQ(fabric.check_invariants(/*quiescent=*/true), "");
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndModes, RoutingProperty,
    ::testing::Combine(::testing::Values("4x4x4", "8x4x2", "4Mx4x4", "8x2M", "3x5x2"),
                       ::testing::Values(RoutingMode::kAdaptive,
                                         RoutingMode::kDeterministic)));

TEST(DimensionOrder, DeterministicPacketsNeverGoBackToAnEarlierAxis) {
  auto config = make_config("4x4x4", 3);
  TaggedTrafficClient client(64, 80, RoutingMode::kDeterministic, 7);
  Fabric fabric(config, client);

  std::map<std::uint64_t, int> last_axis;
  bool order_violated = false;
  fabric.set_hop_observer([&](const Packet& packet, topo::Rank, int dir, int) {
    const int axis = dir / 2;
    auto [it, inserted] = last_axis.try_emplace(packet.tag, axis);
    if (!inserted) {
      if (axis < it->second) order_violated = true;
      it->second = axis;
    }
  });

  ASSERT_TRUE(fabric.run());
  EXPECT_FALSE(order_violated) << "a deterministic packet hopped X after Y/Z";
}

TEST(DimensionOrder, DeterministicPacketsUseOnlyTheBubbleVc) {
  auto config = make_config("4x4x4", 3);
  TaggedTrafficClient client(64, 80, RoutingMode::kDeterministic, 7);
  Fabric fabric(config, client);
  const int bubble = config.dynamic_vcs;  // bubble VC index

  bool wrong_vc = false;
  fabric.set_hop_observer([&](const Packet&, topo::Rank, int, int target) {
    // Every non-delivery hop must land on the bubble VC.
    if (target >= 0 && target != bubble) wrong_vc = true;
  });
  ASSERT_TRUE(fabric.run());
  EXPECT_FALSE(wrong_vc);
}

TEST(AdaptiveEscape, AdaptivePacketsUseBubbleOnlyOnTheirDimOrderAxis) {
  auto config = make_config("4x4x4", 3);
  config.vc_capacity_chunks = 16;  // tighter buffers force escapes
  TaggedTrafficClient client(64, 800, RoutingMode::kAdaptive, 13);
  Fabric fabric(config, client);
  const int bubble = config.dynamic_vcs;

  std::uint64_t bubble_hops = 0;
  bool bad_escape = false;
  fabric.set_hop_observer([&](const Packet& packet, topo::Rank, int dir, int target) {
    if (target != bubble) return;
    ++bubble_hops;
    // After the decrement, the axis just taken must have been the packet's
    // dimension-order axis: every earlier axis must already be 0.
    for (int a = 0; a < dir / 2; ++a) {
      if (packet.hops[static_cast<std::size_t>(a)] != 0) bad_escape = true;
    }
  });
  ASSERT_TRUE(fabric.run());
  EXPECT_FALSE(bad_escape);
  EXPECT_GT(bubble_hops, 0u) << "congestion should force some bubble escapes";
}

TEST(Accounting, ChunkHopsEqualObservedHops) {
  auto config = make_config("4x4x2", 3);
  TaggedTrafficClient client(32, 50, RoutingMode::kAdaptive, 17);
  Fabric fabric(config, client);
  std::uint64_t chunk_hops = 0;
  fabric.set_hop_observer([&](const Packet& packet, topo::Rank, int, int) {
    chunk_hops += packet.chunks;
  });
  ASSERT_TRUE(fabric.run());
  EXPECT_EQ(fabric.stats().chunk_hops, chunk_hops);
}

}  // namespace
}  // namespace bgl::net
