// Tests for the fabric's client-facing API surface: timers, FIFO queries,
// wake semantics and run-result accounting.
#include <gtest/gtest.h>

#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/network/fabric.hpp"

namespace bgl::net {
namespace {

NetworkConfig make_config(const char* shape) {
  NetworkConfig config;
  config.shape = topo::parse_shape(shape);
  config.seed = 1;
  return config;
}

/// Client that exercises timers and deferred injection via wake_cpu.
class TimerClient : public Client {
 public:
  bool next_packet(topo::Rank node, InjectDesc& out) override {
    if (node != 0) return false;
    if (!armed_) {
      // First ask: refuse and arm a timer instead; the packet goes out only
      // after the timer wakes us.
      armed_ = true;
      fabric->schedule_timer(0, 5000, /*cookie=*/77);
      return false;
    }
    if (!timer_fired_ || sent_) return false;
    sent_ = true;
    out.dst = 1;
    out.wire_chunks = 1;
    out.payload_bytes = 32;
    return true;
  }

  void on_timer(topo::Rank node, std::uint64_t cookie) override {
    EXPECT_EQ(node, 0);
    EXPECT_EQ(cookie, 77u);
    timer_fired_ = true;
    fire_time = fabric->now();
    fabric->wake_cpu(node);
  }

  void on_delivery(topo::Rank node, const Packet&) override {
    EXPECT_EQ(node, 1);
    delivery_time = fabric->now();
  }

  Fabric* fabric = nullptr;
  Tick fire_time = 0;
  Tick delivery_time = 0;

 private:
  bool armed_ = false;
  bool timer_fired_ = false;
  bool sent_ = false;
};

TEST(FabricApi, TimerFiresAndWakesTheCore) {
  auto config = make_config("4x1x1");
  TimerClient client;
  Fabric fabric(config, client);
  client.fabric = &fabric;
  EXPECT_TRUE(fabric.run());
  EXPECT_GE(client.fire_time, 5000u);
  EXPECT_GT(client.delivery_time, client.fire_time)
      << "the deferred packet must go out only after the wake";
}

/// Floods one FIFO so occupancy queries have something to see.
class FloodClient : public Client {
 public:
  explicit FloodClient(int count) : remaining_(count) {}
  bool next_packet(topo::Rank node, InjectDesc& out) override {
    if (node != 0 || remaining_ == 0) return false;
    --remaining_;
    out.dst = 1;
    out.wire_chunks = 8;
    out.payload_bytes = 240;
    out.fifo = 3;
    return true;
  }
  void on_delivery(topo::Rank, const Packet&) override {}

 private:
  int remaining_;
};

TEST(FabricApi, FifoQueriesSeeOccupancy) {
  auto config = make_config("4x1x1");
  FloodClient client(20);
  Fabric fabric(config, client);
  EXPECT_EQ(fabric.fifo_free_chunks(0, 3), config.injection_fifo_chunks);
  // Run a slice: FIFO 3 backs up behind the single serialized link.
  fabric.run(3000);
  EXPECT_LT(fabric.fifo_free_chunks(0, 3), config.injection_fifo_chunks);
  // pick_fifo avoids the crowded one.
  const int picked = fabric.pick_fifo(0, 0, config.injection_fifos);
  EXPECT_NE(picked, 3);
  EXPECT_TRUE(fabric.run());
  EXPECT_EQ(fabric.fifo_free_chunks(0, 3), config.injection_fifo_chunks);
}

TEST(FabricApi, RunResultAccountingConsistent) {
  coll::AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x2");
  options.net.seed = 2;
  options.msg_bytes = 500;
  const auto result = coll::run_alltoall(coll::StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(result.drained);
  const auto nodes = static_cast<std::uint64_t>(options.net.shape.nodes());
  // Payload accounting: every ordered pair moved exactly msg_bytes.
  EXPECT_EQ(result.payload_bytes, nodes * (nodes - 1) * 500u);
  // 500 B = 3 packets per pair.
  EXPECT_EQ(result.packets_delivered, nodes * (nodes - 1) * 3u);
  // Unit conversions.
  EXPECT_NEAR(result.elapsed_us, static_cast<double>(result.elapsed_cycles) / 700.0, 1e-9);
  const double expected_rate =
      static_cast<double>((nodes - 1) * 500u) / result.elapsed_us;
  EXPECT_NEAR(result.per_node_mbps, expected_rate, 1e-6);
  EXPECT_GT(result.events, result.packets_delivered);
}

TEST(FabricApi, CollectLinkStatsOffLeavesCountersEmpty) {
  coll::AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x2x2");
  options.net.collect_link_stats = false;
  options.msg_bytes = 100;
  const auto result = coll::run_alltoall(coll::StrategyKind::kAdaptiveRandom, options);
  EXPECT_TRUE(result.drained);
  EXPECT_DOUBLE_EQ(result.links.overall_mean, 0.0);
}

TEST(FabricApi, DeadlinePreventsRunawayRuns) {
  coll::AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x4");
  options.msg_bytes = 4096;
  options.deadline = 1000;  // absurdly tight: must report non-drained
  const auto result = coll::run_alltoall(coll::StrategyKind::kAdaptiveRandom, options);
  EXPECT_FALSE(result.drained);
}

}  // namespace
}  // namespace bgl::net
