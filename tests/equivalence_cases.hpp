// The 17 schedule-equivalence cases (x fault-free/faulted = 34 runs), shared
// by the equivalence test and tools/equivalence_golden which regenerates the
// pinned metrics under tests/golden/. The table pins the exact behavior the
// legacy per-strategy clients had when they were retired: the IR executor
// must keep reproducing these numbers bit-identically.
#pragma once

#include <cstdint>

#include "src/coll/alltoall.hpp"

namespace bgl::coll {

struct EquivCase {
  const char* name;
  StrategyKind kind;
  const char* shape;
  std::uint64_t msg_bytes;
  void (*tweak)(AlltoallOptions&);
};

inline void equiv_untweaked(AlltoallOptions&) {}

inline const EquivCase kEquivCases[] = {
    // The determinism-suite shape, every strategy.
    {"mpi_4x4x8", StrategyKind::kMpi, "4x4x8", 300, &equiv_untweaked},
    {"ar_4x4x8", StrategyKind::kAdaptiveRandom, "4x4x8", 300, &equiv_untweaked},
    {"dr_4x4x8", StrategyKind::kDeterministic, "4x4x8", 300, &equiv_untweaked},
    {"throttled_4x4x8", StrategyKind::kThrottled, "4x4x8", 300, &equiv_untweaked},
    {"tps_4x4x8", StrategyKind::kTwoPhase, "4x4x8", 300, &equiv_untweaked},
    {"vmesh_4x4x8", StrategyKind::kVirtualMesh, "4x4x8", 300, &equiv_untweaked},
    // Tuning variants on the small cube.
    {"mpi_burst2", StrategyKind::kMpi, "4x4x4", 520,
     [](AlltoallOptions& o) { o.burst = 2; }},
    {"ar_rotation", StrategyKind::kAdaptiveRandom, "4x4x4", 300,
     [](AlltoallOptions& o) { o.order = OrderPolicy::kRotation; }},
    {"ar_identity", StrategyKind::kAdaptiveRandom, "4x4x4", 300,
     [](AlltoallOptions& o) { o.order = OrderPolicy::kIdentity; }},
    {"ar_single_packet", StrategyKind::kAdaptiveRandom, "4x4x4", 32, &equiv_untweaked},
    {"throttled_larger", StrategyKind::kThrottled, "4x4x4", 1024,
     [](AlltoallOptions& o) { o.throttle = 0.7; }},
    {"tps_no_reserved", StrategyKind::kTwoPhase, "4x4x4", 300,
     [](AlltoallOptions& o) { o.reserved_fifos = false; }},
    {"tps_credits", StrategyKind::kTwoPhase, "4x4x4", 300,
     [](AlltoallOptions& o) {
       o.credit_window = 8;
       o.credit_batch = 4;
     }},
    {"tps_linear_x", StrategyKind::kTwoPhase, "4x4x8", 300,
     [](AlltoallOptions& o) { o.linear_axis = 0; }},
    {"vmesh_zyx", StrategyKind::kVirtualMesh, "4x4x4", 300,
     [](AlltoallOptions& o) { o.vmesh_mapping = 1; }},
    {"vmesh_yxz", StrategyKind::kVirtualMesh, "4x4x4", 300,
     [](AlltoallOptions& o) { o.vmesh_mapping = 2; }},
    {"vmesh_16x4", StrategyKind::kVirtualMesh, "4x4x4", 300,
     [](AlltoallOptions& o) {
       o.pvx = 16;
       o.pvy = 4;
     }},
};

/// Configures one equivalence run: seed 1234 and, for the faulted variant,
/// the fault plan the suite has always used.
inline AlltoallOptions equiv_options(const EquivCase& c, bool faulted) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape(c.shape);
  options.net.seed = 1234;
  options.msg_bytes = c.msg_bytes;
  c.tweak(options);
  if (faulted) {
    options.net.faults.link_fail = 0.04;
    options.net.faults.node_fail = 1;
  }
  return options;
}

/// FNV-1a over the full delivery matrix, row-major (src outer, dst inner).
inline std::uint64_t equiv_matrix_fnv(const DeliveryMatrix& matrix) {
  std::uint64_t h = 1469598103934665603ULL;
  for (topo::Rank s = 0; s < matrix.nodes(); ++s) {
    for (topo::Rank d = 0; d < matrix.nodes(); ++d) {
      std::uint64_t v = matrix.bytes(s, d);
      for (int byte = 0; byte < 8; ++byte) {
        h = (h ^ ((v >> (8 * byte)) & 0xffu)) * 1099511628211ULL;
      }
    }
  }
  return h;
}

/// FNV-1a over the reachability mask, row-major, one byte per pair.
inline std::uint64_t equiv_reachable_fnv(const PairMask& mask, std::int32_t nodes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (topo::Rank s = 0; s < nodes; ++s) {
    for (topo::Rank d = 0; d < nodes; ++d) {
      h = (h ^ (mask.reachable(s, d) ? 1u : 0u)) * 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace bgl::coll
