// Unit and behavioral tests for the 2-D virtual mesh combining strategy,
// driven through the schedule builder and the ScheduleExecutor.
#include "src/coll/vmesh.hpp"

#include <gtest/gtest.h>

#include "src/coll/alltoall.hpp"
#include "src/coll/schedule.hpp"
#include "src/network/fabric.hpp"
#include "src/runtime/packetizer.hpp"

namespace bgl::coll {
namespace {

net::NetworkConfig make_config(const char* shape, std::uint64_t seed = 1) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape(shape);
  config.seed = seed;
  return config;
}

TEST(VmeshFactorize, NearSquareWithPvxLarger) {
  for (const std::int32_t n : {4, 12, 64, 100, 512, 1024, 4096}) {
    const auto [pvx, pvy] = vmesh_factorize(n);
    EXPECT_EQ(static_cast<std::int64_t>(pvx) * pvy, n);
    EXPECT_GE(pvx, pvy);
    // pvx is the smallest divisor >= sqrt(n), so pvx/pvy is as square as
    // the divisor structure allows.
    for (int candidate = pvy + 1; candidate < pvx; ++candidate) {
      if (n % candidate == 0) {
        EXPECT_GE(candidate * candidate, n)
            << "a squarer factorization exists for n=" << n;
      }
    }
  }
}

TEST(VmeshMapOrder, ThreeAxisOrdersMatchTheMappings) {
  EXPECT_EQ(mesh_axis_order(MeshMapping::kXYZ, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(mesh_axis_order(MeshMapping::kZYX, 3), (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(mesh_axis_order(MeshMapping::kYXZ, 3), (std::vector<int>{1, 0, 2}));
  // Degenerate counts still permute what exists.
  EXPECT_EQ(mesh_axis_order(MeshMapping::kZYX, 1), (std::vector<int>{0}));
  EXPECT_EQ(mesh_axis_order(MeshMapping::kYXZ, 2), (std::vector<int>{1, 0}));
  EXPECT_EQ(mesh_axis_order(MeshMapping::kZYX, 4), (std::vector<int>{3, 2, 1, 0}));
}

TEST(VmeshRun, MessageSizesMatchTheTwoPhases) {
  // Phase 1 sends (pvx-1) messages of pvy*m bytes; phase 2 (pvy-1) of
  // pvx*m. Verify via the fabric's total payload accounting.
  const auto config = make_config("4x4x4");  // 64 nodes -> 8x8 auto mesh
  const auto [pvx, pvy] = vmesh_factorize(64);
  EXPECT_EQ(pvx, 8);
  EXPECT_EQ(pvy, 8);
  VmeshTuning tuning;
  ScheduleExecutor client(config, build_vmesh_schedule(config, 10, tuning), nullptr);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  ASSERT_TRUE(fabric.run());
  // Per node: 7 messages x 80 B (phase 1) + 7 x 80 B (phase 2).
  const std::uint64_t expected_payload = 64ull * (7 * 80 + 7 * 80);
  EXPECT_EQ(fabric.stats().payload_bytes_delivered, expected_payload);
}

TEST(VmeshRun, CorrectForUnevenMesh) {
  const auto config = make_config("4x2x2");  // 16 nodes
  VmeshTuning tuning;
  tuning.pvx = 8;
  tuning.pvy = 2;
  DeliveryMatrix matrix(16);
  ScheduleExecutor client(config, build_vmesh_schedule(config, 33, tuning), &matrix);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  EXPECT_TRUE(fabric.run());
  EXPECT_TRUE(matrix.complete(33)) << matrix.first_error(33);
}

TEST(VmeshRun, SingleRowDegeneratesToDirectCombining) {
  const auto config = make_config("4x2x2");
  VmeshTuning tuning;
  tuning.pvx = 16;  // one row: no phase 2 at all
  tuning.pvy = 1;
  DeliveryMatrix matrix(16);
  ScheduleExecutor client(config, build_vmesh_schedule(config, 50, tuning), &matrix);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  EXPECT_TRUE(fabric.run());
  EXPECT_TRUE(matrix.complete(50)) << matrix.first_error(50);
}

TEST(VmeshRun, SingleColumnDegenerates) {
  const auto config = make_config("4x2x2");
  VmeshTuning tuning;
  tuning.pvx = 1;
  tuning.pvy = 16;
  DeliveryMatrix matrix(16);
  ScheduleExecutor client(config, build_vmesh_schedule(config, 50, tuning), &matrix);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  EXPECT_TRUE(fabric.run());
  EXPECT_TRUE(matrix.complete(50)) << matrix.first_error(50);
}

class VmeshMapping : public ::testing::TestWithParam<MeshMapping> {};

TEST_P(VmeshMapping, AllMappingsDeliverCorrectly) {
  const auto config = make_config("4x2x8");
  VmeshTuning tuning;
  tuning.mapping = GetParam();
  DeliveryMatrix matrix(64);
  ScheduleExecutor client(config, build_vmesh_schedule(config, 25, tuning), &matrix);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  EXPECT_TRUE(fabric.run());
  EXPECT_TRUE(matrix.complete(25)) << matrix.first_error(25);
}

INSTANTIATE_TEST_SUITE_P(Mappings, VmeshMapping,
                         ::testing::Values(MeshMapping::kXYZ, MeshMapping::kZYX,
                                           MeshMapping::kYXZ));

TEST(VmeshRun, GammaCopyDelaysPhase2) {
  // A larger copy cost must strictly increase completion time.
  const auto config = make_config("4x4x4");
  net::Tick elapsed[2];
  int idx = 0;
  for (const double gamma : {1.6, 50.0}) {
    VmeshTuning tuning;
    tuning.gamma_ns_per_byte = gamma;
    ScheduleExecutor client(config, build_vmesh_schedule(config, 64, tuning), nullptr);
    net::Fabric fabric(config, client);
    client.bind(fabric);
    EXPECT_TRUE(fabric.run());
    elapsed[idx++] = client.completion_cycles();
  }
  EXPECT_GT(elapsed[1], elapsed[0]);
}

TEST(VmeshRun, AlphaPerMessageNotPerDestination) {
  // VMesh pays (pvx-1)+(pvy-1) message startups instead of P-1: for tiny
  // messages it must beat AR's startup bill on a large enough partition.
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("8x8x8");
  options.net.seed = 1;
  options.msg_bytes = 8;
  const auto vm = run_alltoall(StrategyKind::kVirtualMesh, options);
  const auto ar = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  EXPECT_LT(vm.elapsed_cycles, ar.elapsed_cycles)
      << "8 B combining must win on 512 nodes (paper Figure 6)";
}

TEST(VmeshRun, LargeMessagesLoseToDirect) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("8x8x8");
  options.net.seed = 1;
  options.msg_bytes = 960;
  const auto vm = run_alltoall(StrategyKind::kVirtualMesh, options);
  const auto ar = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  EXPECT_GT(vm.elapsed_cycles, ar.elapsed_cycles)
      << "large messages pay the double injection (paper Figure 6)";
}

}  // namespace
}  // namespace bgl::coll
