#include "src/runtime/packetizer.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bgl::rt {
namespace {

std::uint64_t sum_payload(const std::vector<PacketSpec>& packets) {
  return std::accumulate(packets.begin(), packets.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const PacketSpec& p) {
                           return acc + p.payload_bytes;
                         });
}

TEST(Packetizer, OneByteMessageIsOne64BytePacket) {
  // Paper Section 3: the 48 B software header makes the shortest all-to-all
  // packet 64 bytes.
  const auto packets = packetize(1, WireFormat::direct());
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload_bytes, 1u);
  EXPECT_EQ(packets[0].wire_chunks * kChunkBytes, 64);
}

TEST(Packetizer, FullPacketCarries240Bytes) {
  // Paper Section 3: a full 256 B packet generally contains 240 B of payload
  // (packets after the first carry only the hardware header).
  const auto packets = packetize(240 + 208, WireFormat::direct());
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].payload_bytes, 208u);  // 256 - 48 software header
  EXPECT_EQ(packets[0].wire_chunks, 8);
  EXPECT_EQ(packets[1].payload_bytes, 240u);  // 256 - 16 hardware header
  EXPECT_EQ(packets[1].wire_chunks, 8);
}

TEST(Packetizer, ZeroByteMessageStillSendsHeader) {
  const auto packets = packetize(0, WireFormat::direct());
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload_bytes, 0u);
  EXPECT_GE(packets[0].wire_chunks, 1);
}

TEST(Packetizer, CombiningFormatUsesSmallHeader) {
  // 8 B protocol header + 16 B hardware header: 8 B payload fits in 32 B.
  const auto packets = packetize(8, WireFormat::combining());
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].wire_chunks * kChunkBytes, 32);
}

TEST(Packetizer, PayloadConservedAndChunksBounded) {
  for (const auto& format : {WireFormat::direct(), WireFormat::combining()}) {
    for (std::uint64_t m : {1u, 7u, 32u, 64u, 100u, 240u, 241u, 1000u, 4096u, 65536u}) {
      const auto packets = packetize(m, format);
      EXPECT_EQ(sum_payload(packets), m);
      for (const auto& p : packets) {
        EXPECT_GE(p.wire_chunks, 1);
        EXPECT_LE(p.wire_chunks * kChunkBytes, kMaxWireBytes);
        EXPECT_LE(p.payload_bytes, static_cast<std::uint32_t>(kMaxWireBytes));
      }
      // All but the last later-packet should be full-size.
      for (std::size_t i = 1; i + 1 < packets.size(); ++i) {
        EXPECT_EQ(packets[i].wire_chunks * kChunkBytes, kMaxWireBytes);
      }
    }
  }
}

TEST(Packetizer, FastTotalsMatchMaterializedList) {
  for (const auto& format : {WireFormat::direct(), WireFormat::combining()}) {
    for (std::uint64_t m = 0; m <= 3000; m += 13) {
      const auto packets = packetize(m, format);
      std::uint64_t chunks = 0;
      for (const auto& p : packets) chunks += p.wire_chunks;
      EXPECT_EQ(wire_chunks_total(m, format), chunks) << "m=" << m;
      EXPECT_EQ(packet_count(m, format), packets.size()) << "m=" << m;
    }
  }
}

TEST(Packetizer, FourKilobyteMessage) {
  const auto packets = packetize(4096, WireFormat::direct());
  // 208 B in the first packet, then ceil(3888/240) = 17 more.
  EXPECT_EQ(packets.size(), 18u);
  EXPECT_EQ(sum_payload(packets), 4096u);
}

}  // namespace
}  // namespace bgl::rt
