// Property suite for schedule synthesis: across a randomized matrix of
// (shape, seed, fault plan) cases, every synthesized winner must
//   (a) pass schedule_lint against its planning fault plan,
//   (b) deliver every reachable pair exactly once when executed
//       (DeliveryMatrix::complete_reachable), and
//   (c) be bit-identical when re-synthesized with the same search seed at
//       any --jobs count.
// Plus executor/lint coverage for the multi-barrier machinery the
// three-stage combining family rides on, and a thread-pool stress case for
// the TSan matrix.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/coll/direct.hpp"
#include "src/coll/schedule_lint.hpp"
#include "src/coll/synth.hpp"
#include "src/util/rng.hpp"

namespace bgl::coll::synth {
namespace {

struct Case {
  std::string shape;
  std::uint64_t msg_bytes = 0;
  std::uint64_t net_seed = 0;
  std::uint64_t search_seed = 0;
  net::FaultConfig faults{};
};

/// The randomized case matrix: >= 30 cases over small shapes, three message
/// sizes and three fault modes (clean / dead nodes / dead links). The
/// generator is seeded, so the matrix is the same on every run — failures
/// reproduce.
std::vector<Case> property_cases() {
  const char* shapes[] = {"2x2x2", "4x2x2", "2x4x2", "4x4x2",
                          "2x2x8", "4x4x4", "8x4x2", "4x2x8"};
  const std::uint64_t sizes[] = {32, 64, 240};
  util::Xoshiro256StarStar rng(20260807);
  std::vector<Case> cases;
  for (int i = 0; i < 32; ++i) {
    Case c;
    c.shape = shapes[rng.below(sizeof(shapes) / sizeof(shapes[0]))];
    c.msg_bytes = sizes[rng.below(3)];
    c.net_seed = 1 + rng.below(1000);
    c.search_seed = 1 + rng.below(1000);
    switch (i % 3) {
      case 0: break;  // fault-free
      case 1:
        c.faults.node_fail = 1 + static_cast<int>(rng.below(2));
        c.faults.seed = 1 + rng.below(64);
        break;
      default:
        c.faults.link_fail = 0.02 + 0.01 * static_cast<double>(rng.below(4));
        c.faults.seed = 1 + rng.below(64);
        break;
    }
    cases.push_back(c);
  }
  return cases;
}

SynthOptions options_for(const Case& c) {
  SynthOptions opts;
  opts.net.shape = topo::parse_shape(c.shape);
  opts.net.seed = c.net_seed;
  opts.net.faults = c.faults;
  opts.msg_bytes = c.msg_bytes;
  opts.seed = c.search_seed;
  opts.beam_width = 2;
  opts.generations = 1;
  opts.mutations_per_survivor = 2;
  opts.jobs = 1;
  opts.score_baselines = false;  // the property is about the winner, not the
                                 // registry comparison; skip for speed
  return opts;
}

std::string trace_of(const Case& c) {
  return c.shape + " m" + std::to_string(c.msg_bytes) + " net_seed " +
         std::to_string(c.net_seed) + " search_seed " +
         std::to_string(c.search_seed) + " node_fail " +
         std::to_string(c.faults.node_fail) + " link_fail " +
         std::to_string(c.faults.link_fail) + " fseed " +
         std::to_string(c.faults.seed);
}

TEST(SynthProperty, EveryWinnerLintsCleanAndDeliversReachablePairs) {
  for (const Case& c : property_cases()) {
    SCOPED_TRACE(trace_of(c));
    const SynthOptions opts = options_for(c);
    const SynthResult result = synthesize(opts);
    ASSERT_TRUE(result.best.lint_ok);
    ASSERT_TRUE(result.best.drained);
    ASSERT_NE(result.best.cycles, ~std::uint64_t{0});

    // The genome string round-trips: a cache entry can reproduce the winner.
    Genome parsed;
    ASSERT_TRUE(genome_from_key(result.best.genome.key(), parsed));
    EXPECT_EQ(parsed, result.best.genome);

    // Rebuild the winner the way the evaluator scored it and re-lint.
    net::NetworkConfig net = opts.net;
    const net::FaultPlan plan(net, net.shape);
    const net::FaultPlan* faults = plan.enabled() ? &plan : nullptr;
    const CommSchedule sched =
        build_genome_schedule(result.best.genome, net, opts.msg_bytes, faults);
    const LintReport report = schedule_lint(sched, faults);
    EXPECT_TRUE(report.ok()) << report.to_string();

    // Execute it: every reachable pair gets its bytes exactly once, nothing
    // lands anywhere else.
    AlltoallOptions run_opts;
    run_opts.net = net;
    run_opts.msg_bytes = opts.msg_bytes;
    run_opts.verify = true;
    const RunResult r = run_schedule(sched, run_opts, result.best.genome.key());
    EXPECT_TRUE(r.drained);
    EXPECT_TRUE(r.reachable_complete);
    EXPECT_EQ(r.elapsed_cycles, result.best.cycles);
  }
}

TEST(SynthProperty, WinnerIsBitIdenticalAcrossJobsAndReruns) {
  int checked = 0;
  for (const Case& c : property_cases()) {
    if (++checked > 10) break;  // determinism triples the work; 10 cases
                                // across all three fault modes suffice
    SCOPED_TRACE(trace_of(c));
    SynthOptions opts = options_for(c);
    const SynthResult serial = synthesize(opts);
    opts.jobs = 3;
    const SynthResult pooled = synthesize(opts);
    opts.jobs = 7;
    const SynthResult pooled7 = synthesize(opts);
    for (const SynthResult* other : {&pooled, &pooled7}) {
      EXPECT_EQ(serial.best.genome.key(), other->best.genome.key());
      EXPECT_EQ(serial.best.cycles, other->best.cycles);
      EXPECT_EQ(serial.evaluated, other->evaluated);
      EXPECT_EQ(serial.lint_rejected, other->lint_rejected);
      ASSERT_EQ(serial.beam.size(), other->beam.size());
      for (std::size_t i = 0; i < serial.beam.size(); ++i) {
        EXPECT_EQ(serial.beam[i].genome.key(), other->beam[i].genome.key());
        EXPECT_EQ(serial.beam[i].cycles, other->beam[i].cycles);
      }
    }
  }
}

TEST(SynthProperty, SimulatedAnnealingIsDeterministicAndNeverWorsens) {
  Case c;
  c.shape = "4x4x4";
  c.msg_bytes = 64;
  c.net_seed = 11;
  c.search_seed = 5;
  SynthOptions opts = options_for(c);
  opts.sa_steps = 6;
  const SynthResult a = synthesize(opts);
  opts.jobs = 4;
  const SynthResult b = synthesize(opts);
  EXPECT_EQ(a.best.genome.key(), b.best.genome.key());
  EXPECT_EQ(a.best.cycles, b.best.cycles);

  opts.jobs = 1;
  opts.sa_steps = 0;
  const SynthResult beam_only = synthesize(opts);
  EXPECT_LE(a.best.cycles, beam_only.best.cycles);
}

TEST(SynthProperty, SaltZeroReproducesRegistryBuilders) {
  // The genome space contains the registry strategies themselves: a
  // zero-salt genome must expand to the exact schedule the registry builds
  // (the search's seeds start from known-good ground).
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x4x2");
  net.seed = 42;
  Genome direct;  // D:m0,o0,b1,s0 == AR
  const CommSchedule synth_sched =
      build_genome_schedule(direct, net, 240, nullptr);
  DirectTuning ar;  // registry AR defaults
  const CommSchedule registry_sched = build_direct_schedule(net, 240, ar);
  EXPECT_EQ(synth_sched.to_csv(nullptr), registry_sched.to_csv(nullptr));
}

// --- multi-barrier machinery (ROADMAP item 5) -------------------------------

TEST(SynthProperty, Combine3dUsesTwoBarriersAndDeliversEverything) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 9;
  const CommSchedule sched = build_combine3d_schedule(net, 96, 0, nullptr);
  ASSERT_EQ(sched.barriers.size(), 2u);
  EXPECT_EQ(sched.barriers[0].phase, 1);
  EXPECT_EQ(sched.barriers[1].phase, 2);
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_TRUE(report.ok()) << report.to_string();

  AlltoallOptions opts;
  opts.net = net;
  opts.msg_bytes = 96;
  opts.verify = true;
  const RunResult r = run_schedule(sched, opts, "C3:p0,s0");
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.reachable_complete);
}

TEST(SynthProperty, MisorderedBarriersAreRejectedByLintAndExecutor) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 9;
  CommSchedule sched = build_combine3d_schedule(net, 96, 0, nullptr);
  std::swap(sched.barriers[0], sched.barriers[1]);  // now 2 before 1

  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  bool flagged = false;
  for (const LintIssue& issue : report.issues) {
    if (issue.check == "structure" &&
        issue.message.find("out of order") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << report.to_string();

  EXPECT_THROW(ScheduleExecutor(net, sched, nullptr, nullptr),
               std::invalid_argument);
}

TEST(SynthProperty, DuplicateBarrierPhaseIsRejected) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 9;
  CommSchedule sched = build_combine3d_schedule(net, 96, 0, nullptr);
  sched.barriers[1].phase = 1;  // both barriers now gate phase 1

  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok()) << report.to_string();
  EXPECT_THROW(ScheduleExecutor(net, sched, nullptr, nullptr),
               std::invalid_argument);
}

TEST(SynthProperty, BarriersOnOrderedFormAreRejected) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x2x2");
  net.seed = 9;
  Genome direct;
  CommSchedule sched = build_genome_schedule(direct, net, 64, nullptr);
  ASSERT_EQ(sched.form, StreamForm::kOrdered);
  BarrierSpec barrier;
  barrier.phase = 0;
  sched.barriers.push_back(barrier);
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok()) << report.to_string();
  EXPECT_THROW(ScheduleExecutor(net, sched, nullptr, nullptr),
               std::invalid_argument);
}

// TSan matrix target: the scoring pool evaluating many schedules (several
// with barrier timers) concurrently. Named SynthPool so the sanitizer jobs
// can select it by filter.
TEST(SynthPool, ParallelScoringMatchesSerial) {
  Case c;
  c.shape = "4x4x2";
  c.msg_bytes = 64;
  c.net_seed = 3;
  c.search_seed = 3;
  c.faults.node_fail = 1;
  c.faults.seed = 5;
  SynthOptions opts = options_for(c);
  opts.beam_width = 3;
  opts.mutations_per_survivor = 3;
  const SynthResult serial = synthesize(opts);
  opts.jobs = 4;
  const SynthResult pooled = synthesize(opts);
  EXPECT_EQ(serial.best.genome.key(), pooled.best.genome.key());
  EXPECT_EQ(serial.best.cycles, pooled.best.cycles);
}

}  // namespace
}  // namespace bgl::coll::synth
