#include "src/coll/many_to_many.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/network/fabric.hpp"

namespace bgl::coll {
namespace {

net::NetworkConfig make_config(const char* shape, std::uint64_t seed = 1) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape(shape);
  config.seed = seed;
  return config;
}

TEST(Pattern, RandomSubsetHasExactFanout) {
  const auto pattern = Pattern::random_subset(64, 5, 9);
  ASSERT_EQ(pattern.dests.size(), 64u);
  for (std::size_t n = 0; n < 64; ++n) {
    EXPECT_EQ(pattern.dests[n].size(), 5u);
    std::set<topo::Rank> unique(pattern.dests[n].begin(), pattern.dests[n].end());
    EXPECT_EQ(unique.size(), 5u);
    EXPECT_EQ(unique.count(static_cast<topo::Rank>(n)), 0u);
  }
  EXPECT_EQ(pattern.total_messages(), 64u * 5u);
}

TEST(Pattern, HaloMatchesTorusNeighbors) {
  const auto shape = topo::parse_shape("4x4x4");
  const auto pattern = Pattern::halo(shape);
  for (const auto& dests : pattern.dests) EXPECT_EQ(dests.size(), 6u);

  // On a 2-extent dimension +/- reach the same node: deduplicated.
  const auto thin = Pattern::halo(topo::parse_shape("4x4x2"));
  for (const auto& dests : thin.dests) EXPECT_EQ(dests.size(), 5u);

  // Mesh corner has fewer neighbors.
  const auto mesh = Pattern::halo(topo::parse_shape("4Mx4x4"));
  const topo::Torus torus{topo::parse_shape("4Mx4x4")};
  const topo::Rank corner = torus.rank_of({{0, 0, 0}});
  EXPECT_EQ(mesh.dests[static_cast<std::size_t>(corner)].size(), 5u);
}

TEST(Pattern, GridPartnersRowAndColumn) {
  const auto pattern = Pattern::grid_partners(16, 4);
  // Each of 16 ranks talks to 3 row + 3 column partners.
  for (const auto& dests : pattern.dests) EXPECT_EQ(dests.size(), 6u);
  // Rank 5 (row 1, col 1): row partners 4,6,7; column partners 1,9,13.
  const std::set<topo::Rank> expected = {4, 6, 7, 1, 9, 13};
  const std::set<topo::Rank> actual(pattern.dests[5].begin(), pattern.dests[5].end());
  EXPECT_EQ(actual, expected);
}

class M2MTransport : public ::testing::TestWithParam<bool> {};

TEST_P(M2MTransport, DeliversEveryMessageExactlyOnce) {
  const bool two_phase = GetParam();
  ManyToManyOptions options;
  options.net = make_config("4x4x8");
  options.msg_bytes = 333;
  options.two_phase = two_phase;
  DeliveryMatrix matrix(static_cast<std::int32_t>(options.net.shape.nodes()));
  options.deliveries = &matrix;

  const auto pattern = Pattern::random_subset(128, 7, 3);
  const auto result = run_many_to_many(pattern, options);
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.messages, 128u * 7u);

  // Exactly the patterned pairs received exactly msg_bytes.
  for (topo::Rank s = 0; s < 128; ++s) {
    std::set<topo::Rank> expected(pattern.dests[static_cast<std::size_t>(s)].begin(),
                                  pattern.dests[static_cast<std::size_t>(s)].end());
    for (topo::Rank d = 0; d < 128; ++d) {
      const std::uint64_t want = expected.count(d) ? 333u : 0u;
      ASSERT_EQ(matrix.bytes(s, d), want) << s << " -> " << d;
    }
  }
}

TEST_P(M2MTransport, HaloCompletes) {
  const bool two_phase = GetParam();
  ManyToManyOptions options;
  options.net = make_config("4x4x4");
  options.msg_bytes = 1024;
  options.two_phase = two_phase;
  const auto pattern = Pattern::halo(options.net.shape);
  const auto result = run_many_to_many(pattern, options);
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.elapsed_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(DirectAndTwoPhase, M2MTransport, ::testing::Bool());

TEST(M2M, TwoPhaseUsesChosenLinearAxis) {
  ManyToManyOptions options;
  options.net = make_config("4x4x8");
  options.two_phase = true;
  const auto pattern = Pattern::random_subset(128, 3, 1);
  SparseClient client(options.net, pattern, options);
  EXPECT_EQ(client.linear_axis(), topo::kZ);
}

TEST(M2M, DeterministicRoutingWorksToo) {
  ManyToManyOptions options;
  options.net = make_config("4x4x4");
  options.mode = net::RoutingMode::kDeterministic;
  options.msg_bytes = 100;
  DeliveryMatrix matrix(64);
  options.deliveries = &matrix;
  const auto pattern = Pattern::random_subset(64, 4, 5);
  const auto result = run_many_to_many(pattern, options);
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.packets_delivered, 64u * 4u);
}

TEST(M2M, EmptyPatternFinishesImmediately) {
  ManyToManyOptions options;
  options.net = make_config("4x4x4");
  Pattern pattern;
  pattern.dests.resize(64);
  const auto result = run_many_to_many(pattern, options);
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.elapsed_cycles, 0u);
  EXPECT_EQ(result.messages, 0u);
}

}  // namespace
}  // namespace bgl::coll
