// Tests for the visualization/tracing helpers: heatmaps and packet journeys.
#include <gtest/gtest.h>

#include "src/coll/direct.hpp"
#include "src/coll/schedule.hpp"
#include "src/network/fabric.hpp"
#include "src/trace/heatmap.hpp"
#include "src/trace/journey.hpp"

namespace bgl::trace {
namespace {

TEST(Shade, MapsUtilizationToCharacters) {
  EXPECT_EQ(shade(0.0), ' ');
  EXPECT_EQ(shade(0.05), ' ');
  EXPECT_EQ(shade(0.15), '.');
  EXPECT_EQ(shade(0.95), '@');
  EXPECT_EQ(shade(1.0), '@');   // clamped
  EXPECT_EQ(shade(1.7), '@');   // over-unity clamped (transient overfill)
  EXPECT_EQ(shade(-0.1), ' ');  // clamped below
}

class TrafficFixture : public ::testing::Test {
 protected:
  void run(const char* shape) {
    config_.shape = topo::parse_shape(shape);
    config_.seed = 5;
    client_ = std::make_unique<coll::ScheduleExecutor>(
        config_, coll::build_direct_schedule(config_, 240, coll::DirectTuning::ar()),
        nullptr);
    fabric_ = std::make_unique<net::Fabric>(config_, *client_);
    client_->bind(*fabric_);
    ASSERT_TRUE(fabric_->run());
  }
  net::NetworkConfig config_;
  std::unique_ptr<coll::ScheduleExecutor> client_;
  std::unique_ptr<net::Fabric> fabric_;
};

TEST_F(TrafficFixture, PlaneHeatmapHasGridDimensions) {
  run("4x3x2");
  const auto text = plane_heatmap(*fabric_, fabric_->stats().last_delivery, 0);
  // Header line + 3 rows (Y extent), each with 4 cells of "cc " = 12 chars.
  int lines = 0;
  for (const char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 4);
  EXPECT_NE(text.find("z=0 plane"), std::string::npos);
}

TEST_F(TrafficFixture, AxisSummaryShadesBusyLines) {
  run("4x4x4");
  const auto text = axis_summary(*fabric_, fabric_->stats().last_delivery);
  EXPECT_NE(text.find("X lines: "), std::string::npos);
  EXPECT_NE(text.find("Y lines: "), std::string::npos);
  EXPECT_NE(text.find("Z lines: "), std::string::npos);
  // An all-to-all keeps links busy: some non-blank shades must appear.
  EXPECT_NE(text.find_first_of(".:-=+*#%@"), std::string::npos);
}

TEST_F(TrafficFixture, AxisSummaryCoversOnlyTheShapesAxes) {
  run("6x4");
  const auto text = axis_summary(*fabric_, fabric_->stats().last_delivery);
  EXPECT_NE(text.find("X lines: "), std::string::npos);
  EXPECT_NE(text.find("Y lines: "), std::string::npos);
  EXPECT_EQ(text.find("Z lines: "), std::string::npos)
      << "a 2-D shape has no Z axis to summarize";
  // One character per orthogonal line: 4 for X (the Y extent), 6 for Y.
  const auto x_at = text.find("X lines: ");
  const auto x_end = text.find('\n', x_at);
  EXPECT_EQ(x_end - (x_at + 9), 4u);
}

/// Single tagged packet whose journey we trace.
class OneTaggedPacket : public net::Client {
 public:
  OneTaggedPacket(topo::Rank src, topo::Rank dst) : src_(src), dst_(dst) {}
  bool next_packet(topo::Rank node, net::InjectDesc& out) override {
    if (node != src_ || sent_) return false;
    sent_ = true;
    out.dst = dst_;
    out.wire_chunks = 2;
    out.payload_bytes = 64;
    out.tag = 42;
    return true;
  }
  void on_delivery(topo::Rank, const net::Packet&) override {}

 private:
  topo::Rank src_;
  topo::Rank dst_;
  bool sent_ = false;
};

TEST(Journey, RecordsEveryHopInOrder) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape("4x4x4");
  const topo::Torus torus{config.shape};
  const topo::Rank dst = torus.rank_of({{1, 1, 0}});  // no half-way direction tie
  OneTaggedPacket client(0, dst);
  net::Fabric fabric(config, client);
  JourneyRecorder recorder(fabric, /*sample_every=*/42);
  ASSERT_TRUE(fabric.run());

  ASSERT_EQ(recorder.hops(42), 2u);  // 1 X hop + 1 Y hop, minimal
  const auto& hops = recorder.journeys().at(42);
  EXPECT_EQ(hops.front().from, 0);
  EXPECT_EQ(hops.back().vc, -1) << "last hop is the delivery";
  const std::string text = recorder.to_string(42);
  EXPECT_NE(text.find("delivered"), std::string::npos);
  EXPECT_NE(text.find("X+"), std::string::npos);
  EXPECT_NE(text.find("Y+"), std::string::npos);
  EXPECT_EQ(recorder.to_string(7), "") << "unseen tags yield empty strings";
}

TEST(Journey, DirNames) {
  EXPECT_EQ(dir_name(0), "X+");
  EXPECT_EQ(dir_name(1), "X-");
  EXPECT_EQ(dir_name(5), "Z-");
  EXPECT_EQ(dir_name(6), "W+");
  EXPECT_EQ(dir_name(7), "W-");
  EXPECT_EQ(dir_name(9), "?");
  EXPECT_EQ(dir_name(-1), "?");
}

}  // namespace
}  // namespace bgl::trace
