// File-level shard-merge determinism: the CSV/JSON files written by the
// shards of a sweep, concatenated with merge_*_shards, must be byte-identical
// to the files the unsharded sweep writes — the contract that lets a sweep
// run across machines and still produce one canonical artifact.
#include "src/harness/sink.hpp"
#include "src/harness/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bgl::harness {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Ten points across three shapes, both strategies exercised.
Sweep shard_sweep() {
  Sweep sweep;
  for (const char* spec : {"4x4", "2x2x2", "8", "4x2", "2x4"}) {
    for (const auto kind :
         {coll::StrategyKind::kAdaptiveRandom, coll::StrategyKind::kTwoPhase}) {
      coll::AlltoallOptions options;
      options.net.shape = topo::parse_shape(spec);
      options.msg_bytes = 64;
      sweep.add(kind, options);
    }
  }
  return sweep;
}

/// Runs `sweep` under `options` and writes the rows (per-run when repeats is
/// 1, aggregated otherwise — the same rule BenchContext::run applies) to
/// both a CSV and a JSON file named `stem`.
void run_to_files(const Sweep& sweep, const SweepOptions& options,
                  const std::string& stem, std::string& csv_path,
                  std::string& json_path) {
  csv_path = testing::TempDir() + stem + ".csv";
  json_path = testing::TempDir() + stem + ".json";
  const auto results = sweep.run(options);
  CsvSink csv(csv_path);
  JsonSink json(json_path);
  MultiSink sinks;
  sinks.attach(&csv);
  sinks.attach(&json);
  if (options.repeats == 1) {
    emit(results, sinks);
  } else {
    emit_aggregate(aggregate(results), sinks);
  }
}

class ShardMergeFiles : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : cleanup_) std::remove(path.c_str());
  }

  std::vector<std::string> cleanup_;
};

TEST_F(ShardMergeFiles, MergedShardsAreByteIdenticalToTheUnshardedRun) {
  const auto sweep = shard_sweep();
  SweepOptions options;
  options.jobs = 4;

  std::string full_csv, full_json;
  run_to_files(sweep, options, "shard_full", full_csv, full_json);
  cleanup_ = {full_csv, full_json};

  std::vector<std::string> shard_csvs, shard_jsons;
  for (int i = 1; i <= 3; ++i) {
    auto shard_options = options;
    shard_options.shard_index = i;
    shard_options.shard_count = 3;
    std::string csv_path, json_path;
    run_to_files(sweep, shard_options, "shard_" + std::to_string(i), csv_path,
                 json_path);
    shard_csvs.push_back(csv_path);
    shard_jsons.push_back(json_path);
    cleanup_.push_back(csv_path);
    cleanup_.push_back(json_path);
  }

  const std::string merged_csv = testing::TempDir() + "shard_merged.csv";
  const std::string merged_json = testing::TempDir() + "shard_merged.json";
  cleanup_.push_back(merged_csv);
  cleanup_.push_back(merged_json);
  merge_csv_shards(shard_csvs, merged_csv);
  merge_json_shards(shard_jsons, merged_json);

  EXPECT_EQ(slurp(merged_csv), slurp(full_csv));
  EXPECT_EQ(slurp(merged_json), slurp(full_json));
  EXPECT_FALSE(slurp(full_csv).empty());
}

TEST_F(ShardMergeFiles, AggregateFilesAreIdenticalAcrossWorkerCounts) {
  const auto sweep = shard_sweep();
  SweepOptions serial;
  serial.repeats = 3;
  serial.jobs = 1;
  auto parallel = serial;
  parallel.jobs = 8;

  std::string serial_csv, serial_json, parallel_csv, parallel_json;
  run_to_files(sweep, serial, "agg_serial", serial_csv, serial_json);
  run_to_files(sweep, parallel, "agg_parallel", parallel_csv, parallel_json);
  cleanup_ = {serial_csv, serial_json, parallel_csv, parallel_json};

  EXPECT_EQ(slurp(serial_csv), slurp(parallel_csv));
  EXPECT_EQ(slurp(serial_json), slurp(parallel_json));
  EXPECT_FALSE(slurp(serial_csv).empty());
}

TEST_F(ShardMergeFiles, ShardedRepeatedAggregatesMergeToTheUnshardedOutput) {
  // Aggregation groups by point and shards split on point boundaries, so the
  // per-shard aggregate files must concatenate into the unsharded aggregate.
  const auto sweep = shard_sweep();
  SweepOptions options;
  options.repeats = 2;
  options.jobs = 4;

  std::string full_csv, full_json;
  run_to_files(sweep, options, "agg_full", full_csv, full_json);
  cleanup_ = {full_csv, full_json};

  std::vector<std::string> shard_csvs, shard_jsons;
  for (int i = 1; i <= 2; ++i) {
    auto shard_options = options;
    shard_options.shard_index = i;
    shard_options.shard_count = 2;
    std::string csv_path, json_path;
    run_to_files(sweep, shard_options, "agg_shard_" + std::to_string(i),
                 csv_path, json_path);
    shard_csvs.push_back(csv_path);
    shard_jsons.push_back(json_path);
    cleanup_.push_back(csv_path);
    cleanup_.push_back(json_path);
  }

  const std::string merged_csv = testing::TempDir() + "agg_merged.csv";
  const std::string merged_json = testing::TempDir() + "agg_merged.json";
  cleanup_.push_back(merged_csv);
  cleanup_.push_back(merged_json);
  merge_csv_shards(shard_csvs, merged_csv);
  merge_json_shards(shard_jsons, merged_json);

  EXPECT_EQ(slurp(merged_csv), slurp(full_csv));
  EXPECT_EQ(slurp(merged_json), slurp(full_json));
}

TEST_F(ShardMergeFiles, CsvMergeRejectsMismatchedHeaders) {
  const std::string a = testing::TempDir() + "merge_a.csv";
  const std::string b = testing::TempDir() + "merge_b.csv";
  const std::string out = testing::TempDir() + "merge_out.csv";
  cleanup_ = {a, b, out};
  {
    std::ofstream(a) << "x,y\n1,2\n";
    std::ofstream(b) << "x,z\n3,4\n";
  }
  EXPECT_THROW(merge_csv_shards({a, b}, out), std::runtime_error);
}

TEST_F(ShardMergeFiles, MergeRejectsMissingInputs) {
  const std::string out = testing::TempDir() + "merge_missing_out.csv";
  cleanup_ = {out};
  EXPECT_THROW(merge_csv_shards({testing::TempDir() + "does_not_exist.csv"}, out),
               std::runtime_error);
  EXPECT_THROW(merge_json_shards({testing::TempDir() + "does_not_exist.json"}, out),
               std::runtime_error);
}

}  // namespace
}  // namespace bgl::harness
