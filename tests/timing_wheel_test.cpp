#include <gtest/gtest.h>

#include "src/sim/event_queue.hpp"
#include "src/util/rng.hpp"

namespace bgl::sim {
namespace {

TEST(TimingWheel, BasicOrdering) {
  TimingWheel wheel;
  wheel.push(30, 0, 0, 0);
  wheel.push(10, 1, 0, 0);
  wheel.push(20, 2, 0, 0);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 10u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 20u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 30u);
  EXPECT_TRUE(wheel.empty());
  EXPECT_FALSE(wheel.pop_if_at_most(~Tick{0}).has_value());
}

TEST(TimingWheel, SameTimeFifoOrder) {
  TimingWheel wheel;
  for (std::uint32_t i = 0; i < 50; ++i) wheel.push(5, i, 0, 0);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto e = wheel.pop_if_at_most(~Tick{0});
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->type, i);
  }
}

TEST(TimingWheel, DeadlineRespected) {
  TimingWheel wheel;
  wheel.push(10, 0, 0, 0);
  wheel.push(100, 1, 0, 0);
  EXPECT_TRUE(wheel.pop_if_at_most(50).has_value());
  EXPECT_FALSE(wheel.pop_if_at_most(50).has_value());
  EXPECT_FALSE(wheel.empty());  // the event at 100 is still there
  EXPECT_TRUE(wheel.pop_if_at_most(100).has_value());
}

TEST(TimingWheel, OverflowBeyondHorizon) {
  TimingWheel wheel(64);  // tiny wheel to force the overflow path
  wheel.push(5, 0, 0, 0);
  wheel.push(1000, 1, 0, 0);        // far beyond a 64-slot horizon
  wheel.push(100000, 2, 0, 0);      // much farther
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 5u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 1000u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 100000u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, OverflowMigrationPreservesSameTimeOrder) {
  TimingWheel wheel(16);
  // Event A at t=100 goes to overflow (horizon 16).
  wheel.push(100, /*type=*/0, 0, 0);
  // Drain a filler to advance the cursor close to 100, then push B at 100
  // directly into the wheel. A was scheduled first and must pop first.
  wheel.push(95, 10, 0, 0);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->type, 10u);
  wheel.push(100, /*type=*/1, 0, 0);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->type, 0u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->type, 1u);
}

TEST(TimingWheel, HorizonBoundaryExactlyAtCursorPlusSize) {
  // The wheel window is [cursor, cursor + size): an event at exactly
  // cursor + size must take the overflow path (a bucket insert would alias
  // slot `cursor` and fire a full rotation early).
  TimingWheel wheel(16);
  wheel.push(16, 0, 0, 0);  // first time outside the window
  wheel.push(15, 1, 0, 0);  // last time inside the window
  EXPECT_EQ(wheel.size(), 2u);
  const auto first = wheel.pop_if_at_most(~Tick{0});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->time, 15u);
  EXPECT_EQ(first->type, 1u);
  const auto second = wheel.pop_if_at_most(~Tick{0});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->time, 16u);
  EXPECT_EQ(second->type, 0u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, WrapAroundKeepsTimes) {
  // Advance the cursor past the ring size so bucket indices wrap; events on
  // both sides of the wrap point must still fire in time order.
  TimingWheel wheel(16);
  wheel.push(14, 0, 0, 0);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 14u);  // cursor near the edge
  wheel.push(17, 1, 0, 0);  // wraps to slot 1
  wheel.push(15, 2, 0, 0);  // still below the wrap point
  wheel.push(16, 3, 0, 0);  // wraps to slot 0
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 15u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 16u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 17u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, NextTimeOnEmptyWheel) {
  TimingWheel wheel(16);
  EXPECT_FALSE(wheel.next_time().has_value());
}

TEST(TimingWheel, NextTimeSeesBucketsAndOverflow) {
  TimingWheel wheel(16);
  wheel.push(1000, 0, 0, 0);  // overflow only
  EXPECT_EQ(wheel.next_time().value(), 1000u);
  wheel.push(7, 1, 0, 0);  // in-window bucket beats overflow
  EXPECT_EQ(wheel.next_time().value(), 7u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 7u);
  EXPECT_EQ(wheel.next_time().value(), 1000u);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 1000u);
  EXPECT_FALSE(wheel.next_time().has_value());
}

TEST(TimingWheel, NextTimeDoesNotConsume) {
  TimingWheel wheel(16);
  wheel.push(5, 42, 0, 0);
  EXPECT_EQ(wheel.next_time().value(), 5u);
  EXPECT_EQ(wheel.next_time().value(), 5u);  // idempotent
  const auto e = wheel.pop_if_at_most(~Tick{0});
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->type, 42u);
}

TEST(TimingWheel, NextTimeSkipsConsumedPrefixOfCurrentBucket) {
  // Partially consumed same-tick bucket: next_time must report the same tick
  // while unread events remain, then move on.
  TimingWheel wheel(16);
  wheel.push(3, 0, 0, 0);
  wheel.push(3, 1, 0, 0);
  wheel.push(9, 2, 0, 0);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->type, 0u);
  EXPECT_EQ(wheel.next_time().value(), 3u);  // one event left at t=3
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->type, 1u);
  EXPECT_EQ(wheel.next_time().value(), 9u);
}

TEST(TimingWheel, PastPushClampsToCursor) {
  TimingWheel wheel;
  wheel.push(50, 0, 0, 0);
  EXPECT_EQ(wheel.pop_if_at_most(~Tick{0})->time, 50u);
  wheel.push(10, 1, 0, 0);  // in the past; must fire at >= 50
  const auto e = wheel.pop_if_at_most(~Tick{0});
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->time, 50u);
}

/// Property: the wheel and the reference heap produce the identical event
/// sequence for a random interleaved workload of pushes and pops.
class WheelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WheelEquivalence, MatchesHeapExactly) {
  util::Xoshiro256StarStar rng(GetParam());
  TimingWheel wheel(256);  // small wheel: exercises overflow heavily
  EventQueue heap;

  Tick now = 0;
  // Seed both with the same initial events.
  for (std::uint32_t i = 0; i < 20; ++i) {
    const Tick t = rng.below(2000);
    wheel.push(t, i, 0, 0);
    heap.push(t, i, 0, 0);
  }

  std::uint32_t next_type = 20;
  for (int step = 0; step < 20000; ++step) {
    const auto from_wheel = wheel.pop_if_at_most(~Tick{0});
    if (!from_wheel.has_value()) {
      EXPECT_TRUE(heap.empty());
      break;
    }
    ASSERT_FALSE(heap.empty());
    const Event from_heap = heap.pop();
    EXPECT_EQ(from_wheel->time, from_heap.time) << "step " << step;
    EXPECT_EQ(from_wheel->type, from_heap.type) << "step " << step;
    now = from_wheel->time;

    // Handler-style behavior: schedule 0-2 future events, occasionally far
    // beyond the wheel horizon.
    const int fanout = static_cast<int>(rng.below(3));
    for (int k = 0; k < fanout; ++k) {
      const Tick delay = rng.below(10) == 0 ? 300 + rng.below(5000) : rng.below(200);
      wheel.push(now + delay, next_type, 0, 0);
      heap.push(now + delay, next_type, 0, 0);
      ++next_type;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WheelEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bgl::sim
