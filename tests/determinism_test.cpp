// Cross-strategy determinism and seed-sensitivity: every strategy must be
// bit-exactly reproducible for a fixed seed (the property all debugging and
// all reported numbers rest on), and must actually consume the seed.
#include <gtest/gtest.h>

#include "src/coll/alltoall.hpp"

namespace bgl::coll {
namespace {

class StrategyDeterminism : public ::testing::TestWithParam<StrategyKind> {};

RunResult run_with_seed(StrategyKind kind, std::uint64_t seed) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x8");
  options.net.seed = seed;
  options.msg_bytes = 300;
  return run_alltoall(kind, options);
}

TEST_P(StrategyDeterminism, SameSeedBitExact) {
  const auto a = run_with_seed(GetParam(), 99);
  const auto b = run_with_seed(GetParam(), 99);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_DOUBLE_EQ(a.links.overall_mean, b.links.overall_mean);
}

TEST_P(StrategyDeterminism, DifferentSeedsDiverge) {
  const auto a = run_with_seed(GetParam(), 1);
  const auto b = run_with_seed(GetParam(), 2);
  // Completion time OR event count must differ; identical both would mean
  // the seed never reaches the randomized schedule / tie-breaks.
  EXPECT_TRUE(a.elapsed_cycles != b.elapsed_cycles || a.events != b.events)
      << strategy_name(GetParam());
}

TEST_P(StrategyDeterminism, ResultsAreWellFormed) {
  const auto r = run_with_seed(GetParam(), 7);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.elapsed_cycles, 0u);
  EXPECT_GT(r.percent_peak, 0.0);
  EXPECT_LE(r.percent_peak, 110.0);
  EXPECT_GT(r.per_node_mbps, 0.0);
  // Indirect strategies deliver forwarded/combined payload at intermediates
  // too, so the fabric-level count is at least the application total.
  EXPECT_GE(r.payload_bytes, 128u * 127u * 300u);
  EXPECT_EQ(r.msg_bytes, 300u);
  EXPECT_EQ(r.shape.nodes(), 128);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyDeterminism,
                         ::testing::Values(StrategyKind::kMpi,
                                           StrategyKind::kAdaptiveRandom,
                                           StrategyKind::kDeterministic,
                                           StrategyKind::kThrottled,
                                           StrategyKind::kTwoPhase,
                                           StrategyKind::kVirtualMesh));

}  // namespace
}  // namespace bgl::coll
