// Tests for the bench scaling rules: scaled rows must preserve the paper
// shapes' asymmetry ratios and wrap flags, or the reproduced tables would
// quietly measure a different phenomenon.
#include "bench/bench_util.hpp"

#include <gtest/gtest.h>

namespace bgl::bench {
namespace {

BenchContext make_context(std::int64_t budget, bool full = false) {
  BenchContext ctx;
  ctx.node_budget = budget;
  ctx.full = full;
  return ctx;
}

TEST(Runnable, FullFlagKeepsPaperShape) {
  const auto ctx = make_context(64, /*full=*/true);
  const auto shape = topo::parse_shape("40x32x16");
  EXPECT_EQ(ctx.runnable(shape), shape);
}

TEST(Runnable, UnderBudgetShapesUntouched) {
  const auto ctx = make_context(2048);
  for (const char* spec : {"8x8x8", "16x8x8", "8x16x16", "8"}) {
    const auto shape = topo::parse_shape(spec);
    EXPECT_EQ(ctx.runnable(shape), shape) << spec;
  }
}

TEST(Runnable, HalvesAllDimensionsPreservingRatio) {
  const auto ctx = make_context(2048);
  const auto scaled = ctx.runnable(topo::parse_shape("32x32x16"));
  EXPECT_EQ(scaled.to_string(), "16x16x8");
  const auto scaled2 = ctx.runnable(topo::parse_shape("8x32x16"));
  EXPECT_EQ(scaled2.to_string(), "4x16x8");
}

TEST(Runnable, SlackAvoidsOvershooting) {
  // 40x32x16 -> 20x16x8 = 2560 nodes, within the 25% slack of a 2048
  // budget; halving again (to 320) would overshoot massively.
  const auto ctx = make_context(2048);
  const auto scaled = ctx.runnable(topo::parse_shape("40x32x16"));
  EXPECT_EQ(scaled.to_string(), "20x16x8");
}

TEST(Runnable, PreservesWrapFlags) {
  const auto ctx = make_context(64);
  const auto scaled = ctx.runnable(topo::parse_shape("16x16x8M"));
  EXPECT_TRUE(scaled.wrap[0]);
  EXPECT_TRUE(scaled.wrap[1]);
  EXPECT_FALSE(scaled.wrap[2]);
  EXPECT_EQ(scaled.to_string(), "4x4x2M");  // halved twice, mesh flag kept
}

TEST(Runnable, StopsWhenDimensionsTooSmallToHalve) {
  const auto ctx = make_context(2);
  const auto scaled = ctx.runnable(topo::parse_shape("2x2x2"));
  EXPECT_EQ(scaled.to_string(), "2x2x2") << "never drops a dimension below 2";
}

TEST(Runnable, FallsBackToLargestWhenMixed) {
  // 16x2x2: the 2s cannot halve, so only X shrinks.
  const auto ctx = make_context(16);
  const auto scaled = ctx.runnable(topo::parse_shape("16x2x2"));
  EXPECT_EQ(scaled.to_string(), "4x2x2");
}

TEST(ShapeNote, AnnotatesOnlyWhenScaled) {
  const auto paper = topo::parse_shape("32x32x16");
  EXPECT_EQ(shape_note(paper, paper), "32x32x16");
  EXPECT_EQ(shape_note(paper, topo::parse_shape("16x16x8")),
            "16x16x8 (paper 32x32x16)");
}

}  // namespace
}  // namespace bgl::bench
