// Property test: on ~50 deterministically sampled torus/mesh shapes, every
// strategy must deliver exactly m bytes per ordered pair (DeliveryMatrix
// completeness) and conserve bytes end to end. The sample space covers 1-3
// axes, extents 2..8 (capped at 64 nodes), mesh dimensions, and payloads
// from a single byte to multi-packet messages — far beyond the handful of
// hand-picked shapes in alltoall_test.cpp.
#include "src/coll/alltoall.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "src/network/faults.hpp"
#include "src/topology/torus.hpp"

namespace bgl::coll {
namespace {

/// splitmix64 — the same generator the harness derives per-job seeds with;
/// used here so every case is a pure function of its index.
std::uint64_t next_random(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct PropertyCase {
  std::string shape_spec;
  std::int64_t nodes = 1;
  StrategyKind kind = StrategyKind::kAdaptiveRandom;
  std::uint64_t msg_bytes = 0;
};

PropertyCase make_case(int index) {
  std::uint64_t state = 0xb61f00d5eed00000ull + static_cast<std::uint64_t>(index);
  next_random(state);  // decorrelate adjacent indices

  PropertyCase c;
  const int axes = 1 + static_cast<int>(next_random(state) % 3);
  for (int axis = 0; axis < axes; ++axis) {
    // Cap each extent so the node count stays <= 64 (DeliveryMatrix is
    // O(nodes^2) and the packet-level sim is slow on big partitions).
    const std::int64_t cap = std::min<std::int64_t>(8, 64 / c.nodes);
    if (cap < 2) break;
    const auto extent =
        2 + static_cast<std::int64_t>(next_random(state) % static_cast<std::uint64_t>(cap - 1));
    c.nodes *= extent;
    if (!c.shape_spec.empty()) c.shape_spec += 'x';
    c.shape_spec += std::to_string(extent);
    // ~25% of dimensions are open meshes instead of wrapped tori.
    if (next_random(state) % 4 == 0) c.shape_spec += 'M';
  }

  constexpr StrategyKind kKinds[] = {
      StrategyKind::kAdaptiveRandom, StrategyKind::kDeterministic,
      StrategyKind::kTwoPhase, StrategyKind::kVirtualMesh};
  c.kind = kKinds[next_random(state) % 4];

  constexpr std::uint64_t kSizes[] = {1, 13, 64, 240, 500};
  c.msg_bytes = kSizes[next_random(state) % 5];
  return c;
}

class AlltoallProperty : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallProperty, DeliversExactlyAndConservesBytes) {
  const PropertyCase c = make_case(GetParam());
  SCOPED_TRACE("shape " + c.shape_spec + ", strategy " + strategy_name(c.kind) +
               ", msg " + std::to_string(c.msg_bytes) + "B");

  AlltoallOptions options;
  options.net.shape = topo::parse_shape(c.shape_spec);
  options.net.seed = 0xc0ffee + static_cast<std::uint64_t>(GetParam());
  options.msg_bytes = c.msg_bytes;
  ASSERT_EQ(options.net.shape.nodes(), c.nodes);

  DeliveryMatrix matrix(static_cast<std::int32_t>(c.nodes));
  options.deliveries = &matrix;
  const RunResult result = run_alltoall(c.kind, options);

  EXPECT_TRUE(result.drained) << "collective stalled";
  EXPECT_TRUE(matrix.complete(c.msg_bytes)) << matrix.first_error(c.msg_bytes);

  // Byte conservation: the matrix must hold exactly the injected volume, and
  // the fabric cannot have delivered less payload than the application saw
  // (indirect strategies may move more, never less).
  const std::uint64_t expected_total =
      static_cast<std::uint64_t>(c.nodes) *
      static_cast<std::uint64_t>(c.nodes - 1) * c.msg_bytes;
  EXPECT_EQ(matrix.total_bytes(), expected_total);
  EXPECT_GE(result.payload_bytes, expected_total);
}

std::string case_name(const ::testing::TestParamInfo<int>& param_info) {
  const PropertyCase c = make_case(param_info.param);
  std::string name = "i";
  name.append(std::to_string(param_info.param));
  name.append("_").append(c.shape_spec);
  name.append("_").append(strategy_name(c.kind));
  name.append("_").append(std::to_string(c.msg_bytes)).append("B");
  for (char& ch : name) {
    if (ch == 'x' || ch == '/' || ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, AlltoallProperty, ::testing::Range(0, 50),
                         case_name);

// --- fault injection -------------------------------------------------------
//
// The same sampled (shape, strategy, payload) space, now with a random fault
// plan layered on top: permanent link failures, dead nodes, transient
// outages and probabilistic drops. The contract shifts from "every pair
// delivered" to the degraded-mode one: the run must still drain (no hang, no
// lost credits — router invariants are checked every cycle via
// net.debug_checks), every *reachable* pair must receive exactly its bytes,
// and unreachable pairs exactly none.

struct FaultCase {
  PropertyCase base;
  std::string fault_spec;
};

FaultCase make_fault_case(int index) {
  FaultCase c;
  c.base = make_case(index + 1000);  // decorrelate from the healthy suite
  std::uint64_t state = 0xfa17ca5e00000000ull + static_cast<std::uint64_t>(index);
  next_random(state);

  const double link = 0.02 * static_cast<double>(next_random(state) % 5);  // 0..8%
  const auto nodes_down = next_random(state) % 3;                          // 0..2
  const bool transients = next_random(state) % 2 == 0;
  const bool drops = next_random(state) % 2 == 0;

  c.fault_spec = "link:" + std::to_string(link);
  c.fault_spec += ",node:" + std::to_string(nodes_down);
  if (transients) c.fault_spec += ",tlink:0.1,repair:50000";
  if (drops) c.fault_spec += ",drop:0.002";
  c.fault_spec += ",seed:" + std::to_string(1 + next_random(state) % 1000);
  return c;
}

class FaultProperty : public ::testing::TestWithParam<int> {};

TEST_P(FaultProperty, DeliversExactlyToEveryReachablePair) {
  const FaultCase c = make_fault_case(GetParam());
  SCOPED_TRACE("shape " + c.base.shape_spec + ", strategy " +
               strategy_name(c.base.kind) + ", msg " +
               std::to_string(c.base.msg_bytes) + "B, faults " + c.fault_spec);

  AlltoallOptions options;
  options.net.shape = topo::parse_shape(c.base.shape_spec);
  options.net.seed = 0xfa17ull + static_cast<std::uint64_t>(GetParam());
  options.net.faults = net::parse_fault_spec(c.fault_spec);
  options.net.debug_checks = true;  // credit/occupancy invariants every event
  options.msg_bytes = c.base.msg_bytes;
  options.verify = true;

  const RunResult result = run_alltoall(c.base.kind, options);

  EXPECT_TRUE(result.drained) << "degraded collective stalled";
  EXPECT_EQ(result.abandoned_pairs, 0u)
      << "retry budget exhausted on a routable pair";
  EXPECT_TRUE(result.reachable_complete)
      << "a reachable pair was not served exactly";
  const auto nodes = static_cast<std::uint64_t>(options.net.shape.nodes());
  EXPECT_EQ(result.pairs_complete + result.unreachable_pairs, nodes * (nodes - 1));
}

std::string fault_case_name(const ::testing::TestParamInfo<int>& param_info) {
  const FaultCase c = make_fault_case(param_info.param);
  std::string name = "i";
  name.append(std::to_string(param_info.param));
  name.append("_").append(c.base.shape_spec);
  name.append("_").append(strategy_name(c.base.kind));
  for (char& ch : name) {
    if (ch == 'x' || ch == '/' || ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(RandomFaultPlans, FaultProperty, ::testing::Range(0, 30),
                         fault_case_name);

}  // namespace
}  // namespace bgl::coll
