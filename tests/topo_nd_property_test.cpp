// Property suite for the k-ary n-dimensional topology generalization:
// on deterministically sampled random shapes with 1 to 4 axes (torus and
// mesh dimensions mixed), the geometry queries must agree with brute force
// — rank/coord round-trips, neighbor symmetry, per-axis hop counts
// including the half-way tie, distance as the axis sum, and mean hops —
// and the schedule executor must deliver every pair's payload exactly once
// end to end.
#include "src/topology/torus.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/coll/alltoall.hpp"

namespace bgl::topo {
namespace {

/// splitmix64 — every sampled case is a pure function of its index.
std::uint64_t next_random(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// A random 1-4 dimensional shape spec (extents 2..6, ~1/4 of the
/// dimensions mesh), built through the parser so the string path is
/// exercised too.
std::string random_spec(int axes, std::uint64_t salt) {
  std::uint64_t state = 0x70d07e57ull * 2654435761ull + salt;
  next_random(state);
  std::string spec;
  for (int a = 0; a < axes; ++a) {
    if (a > 0) spec += 'x';
    spec += std::to_string(2 + next_random(state) % 5);
    if (next_random(state) % 4 == 0) spec += 'M';
  }
  return spec;
}

/// Brute-force minimal hops along one axis: walk both ways, take the best
/// legal path.
int brute_hops(const Shape& shape, int a, int b, int axis) {
  const int extent = shape.dim[static_cast<std::size_t>(axis)];
  const int direct = std::abs(a - b);
  if (!shape.wrap[static_cast<std::size_t>(axis)]) return direct;
  return std::min(direct, extent - direct);
}

class NdShapeProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(NdShapeProperty, RankCoordRoundTrip) {
  const Shape shape = parse_shape(GetParam());
  const Torus torus{shape};
  for (Rank r = 0; r < torus.nodes(); ++r) {
    const Coord c = torus.coord_of(r);
    EXPECT_EQ(torus.rank_of(c), r);
    for (int a = 0; a < kMaxAxes; ++a) {
      if (a < shape.axis_count()) {
        EXPECT_GE(c[a], 0);
        EXPECT_LT(c[a], shape.dim[static_cast<std::size_t>(a)]);
      } else {
        EXPECT_EQ(c[a], 0) << "coords beyond the shape's axes must stay 0";
      }
    }
  }
}

TEST_P(NdShapeProperty, NeighborSymmetryAndEdges) {
  const Shape shape = parse_shape(GetParam());
  const Torus torus{shape};
  for (Rank r = 0; r < torus.nodes(); ++r) {
    for (int d = 0; d < torus.directions(); ++d) {
      const Direction dir = Direction::from_index(d);
      const Rank nb = torus.neighbor(r, dir);
      const Coord c = torus.coord_of(r);
      const int extent = shape.dim[static_cast<std::size_t>(dir.axis)];
      const bool at_edge = dir.sign > 0 ? c[dir.axis] == extent - 1 : c[dir.axis] == 0;
      const bool wraps = shape.wrap[static_cast<std::size_t>(dir.axis)];
      if (at_edge && !wraps) {
        EXPECT_EQ(nb, -1) << "stepping off a mesh edge must fail";
        continue;
      }
      ASSERT_GE(nb, 0);
      // The reverse direction (index ^ 1) leads straight back.
      EXPECT_EQ(torus.neighbor(nb, Direction::from_index(d ^ 1)), r);
      // Exactly one coordinate moved, by one step (mod extent).
      const Coord nc = torus.coord_of(nb);
      for (int a = 0; a < shape.axis_count(); ++a) {
        if (a != dir.axis) {
          EXPECT_EQ(nc[a], c[a]);
        } else {
          const int expect = (c[a] + dir.sign + extent) % extent;
          EXPECT_EQ(nc[a], expect);
        }
      }
    }
  }
}

TEST_P(NdShapeProperty, HopsMatchBruteForce) {
  const Shape shape = parse_shape(GetParam());
  const Torus torus{shape};
  for (int axis = 0; axis < shape.axis_count(); ++axis) {
    const int extent = shape.dim[static_cast<std::size_t>(axis)];
    for (int a = 0; a < extent; ++a) {
      for (int b = 0; b < extent; ++b) {
        const int want = brute_hops(shape, a, b, axis);
        EXPECT_EQ(torus.hops(a, b, axis), want);
        const int signed_hops = torus.hops_signed(a, b, axis);
        EXPECT_EQ(std::abs(signed_hops), want);
        // Walking `signed_hops` steps from `a` must land on `b`.
        const int landed = shape.wrap[static_cast<std::size_t>(axis)]
                               ? ((a + signed_hops) % extent + extent) % extent
                               : a + signed_hops;
        EXPECT_EQ(landed, b);
        // The half-way tie exists iff the torus distance is ambiguous; the
        // deterministic variant prefers +.
        const bool tie = torus.is_halfway_tie(a, b, axis);
        const bool expect_tie = shape.wrap[static_cast<std::size_t>(axis)] &&
                                extent % 2 == 0 && want == extent / 2 && want > 0;
        EXPECT_EQ(tie, expect_tie);
        if (tie) EXPECT_GT(signed_hops, 0);
      }
    }
  }
}

TEST_P(NdShapeProperty, DistanceIsTheAxisSum) {
  const Shape shape = parse_shape(GetParam());
  const Torus torus{shape};
  const std::int32_t nodes = torus.nodes();
  // Sample pairs on larger shapes; exhaustive below 32 nodes.
  const std::int32_t stride = nodes <= 32 ? 1 : nodes / 31;
  for (Rank s = 0; s < nodes; s += stride) {
    for (Rank d = 0; d < nodes; ++d) {
      const Coord cs = torus.coord_of(s);
      const Coord cd = torus.coord_of(d);
      int want = 0;
      for (int a = 0; a < shape.axis_count(); ++a) {
        want += brute_hops(shape, cs[a], cd[a], a);
      }
      EXPECT_EQ(torus.distance(s, d), want);
    }
  }
}

TEST_P(NdShapeProperty, MeanHopsMatchesBruteForce) {
  const Shape shape = parse_shape(GetParam());
  const Torus torus{shape};
  for (int axis = 0; axis < shape.axis_count(); ++axis) {
    const int extent = shape.dim[static_cast<std::size_t>(axis)];
    double total = 0.0;
    for (int a = 0; a < extent; ++a) {
      for (int b = 0; b < extent; ++b) {
        total += brute_hops(shape, a, b, axis);
      }
    }
    EXPECT_DOUBLE_EQ(torus.mean_hops(axis),
                     total / (static_cast<double>(extent) * extent));
  }
}

std::vector<std::string> sampled_specs() {
  std::vector<std::string> specs;
  for (int axes = 1; axes <= 4; ++axes) {
    for (std::uint64_t salt = 0; salt < 4; ++salt) {
      specs.push_back(random_spec(axes, static_cast<std::uint64_t>(axes) * 16 + salt));
    }
  }
  // Pin the corner cases the sampler may miss.
  specs.push_back("64");
  specs.push_back("2M");
  specs.push_back("8x8");
  specs.push_back("4x4x4x4");
  specs.push_back("2x2x2x2M");
  return specs;
}

INSTANTIATE_TEST_SUITE_P(SampledShapes, NdShapeProperty,
                         ::testing::ValuesIn(sampled_specs()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == 'x') c = '_';
                           }
                           return name;
                         });

// --- end-to-end delivery on n-D shapes --------------------------------------

struct EndToEndCase {
  const char* spec;
  coll::StrategyKind kind;
  std::uint64_t msg_bytes;
};

class NdEndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(NdEndToEnd, DeliversEveryPairExactlyOnce) {
  const EndToEndCase& c = GetParam();
  coll::AlltoallOptions options;
  options.net.shape = parse_shape(c.spec);
  options.net.seed = 11;
  options.msg_bytes = c.msg_bytes;
  const auto nodes = static_cast<std::int32_t>(options.net.shape.nodes());
  coll::DeliveryMatrix matrix(nodes);
  options.deliveries = &matrix;
  const coll::RunResult result = coll::run_alltoall(c.kind, options);
  EXPECT_TRUE(result.drained);
  // complete() demands *exactly* msg_bytes per ordered pair: missing and
  // duplicated deliveries both fail.
  EXPECT_TRUE(matrix.complete(c.msg_bytes)) << matrix.first_error(c.msg_bytes);
}

const EndToEndCase kEndToEndCases[] = {
    {"16", coll::StrategyKind::kAdaptiveRandom, 300},
    {"32", coll::StrategyKind::kVirtualMesh, 64},
    {"8x4", coll::StrategyKind::kAdaptiveRandom, 300},
    {"6x6", coll::StrategyKind::kTwoPhase, 120},
    {"8x8", coll::StrategyKind::kVirtualMesh, 48},
    {"4x3x2M", coll::StrategyKind::kMpi, 200},
    {"3x3x3x3", coll::StrategyKind::kAdaptiveRandom, 96},
    {"2x2x4x2", coll::StrategyKind::kTwoPhase, 150},
    {"4x2x2x2M", coll::StrategyKind::kVirtualMesh, 80},
};

INSTANTIATE_TEST_SUITE_P(SampledRuns, NdEndToEnd, ::testing::ValuesIn(kEndToEndCases),
                         [](const ::testing::TestParamInfo<EndToEndCase>& info) {
                           std::string name = info.param.spec;
                           for (char& c : name) {
                             if (c == 'x') c = '_';
                           }
                           return name + "_" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace bgl::topo
