#include "src/network/fabric.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/util/rng.hpp"

namespace bgl::net {
namespace {

NetworkConfig make_config(const char* shape, std::uint64_t seed = 1) {
  NetworkConfig config;
  config.shape = topo::parse_shape(shape);
  config.seed = seed;
  return config;
}

/// Sends a fixed list of (src, dst, chunks, mode) packets, one per call.
class ScriptedClient : public Client {
 public:
  struct Send {
    topo::Rank src;
    topo::Rank dst;
    std::uint16_t chunks = 1;
    RoutingMode mode = RoutingMode::kAdaptive;
  };

  explicit ScriptedClient(std::vector<Send> sends) : sends_(std::move(sends)) {}

  bool next_packet(topo::Rank node, InjectDesc& out) override {
    for (std::size_t i = 0; i < sends_.size(); ++i) {
      if (sends_[i].src != node || sent_[i]) continue;
      sent_[i] = true;
      out.dst = sends_[i].dst;
      out.payload_bytes = sends_[i].chunks * 32u;
      out.wire_chunks = sends_[i].chunks;
      out.mode = sends_[i].mode;
      out.tag = i;
      return true;
    }
    return false;
  }

  void on_delivery(topo::Rank node, const Packet& packet) override {
    deliveries.push_back({node, packet});
  }

  std::vector<std::pair<topo::Rank, Packet>> deliveries;

 private:
  std::vector<Send> sends_;
  std::map<std::size_t, bool> sent_;
};

TEST(Fabric, SingleHopDelivery) {
  auto config = make_config("4x4x4");
  ScriptedClient client({{0, 1, 2}});
  Fabric fabric(config, client);
  EXPECT_TRUE(fabric.run());
  ASSERT_EQ(client.deliveries.size(), 1u);
  EXPECT_EQ(client.deliveries[0].first, 1);
  EXPECT_EQ(client.deliveries[0].second.src, 0);
  EXPECT_EQ(client.deliveries[0].second.dst, 1);
  EXPECT_TRUE(client.deliveries[0].second.at_destination());
  EXPECT_EQ(fabric.packets_in_network(), 0);
  // One hop: serialization (2 chunks x 128) + hop latency, after CPU inject.
  EXPECT_GT(fabric.stats().last_delivery, 0u);
}

TEST(Fabric, EmptyRunStatsUseSentinel) {
  // A client with no traffic: first_injection must stay at the kNever
  // sentinel (a real injection at tick 0 is common, so 0 can't mean "none")
  // and active_span() must report a zero-length run.
  auto config = make_config("4x4x4");
  ScriptedClient client({});
  Fabric fabric(config, client);
  EXPECT_TRUE(fabric.run());
  EXPECT_EQ(fabric.stats().packets_injected, 0u);
  EXPECT_EQ(fabric.stats().first_injection, FabricStats::kNever);
  EXPECT_EQ(fabric.stats().active_span(), 0u);
}

TEST(Fabric, ActiveSpanCoversInjectionToDelivery) {
  auto config = make_config("4x4x4");
  ScriptedClient client({{0, 1, 2}});
  Fabric fabric(config, client);
  EXPECT_TRUE(fabric.run());
  EXPECT_NE(fabric.stats().first_injection, FabricStats::kNever);
  EXPECT_LE(fabric.stats().first_injection, fabric.stats().last_delivery);
  EXPECT_EQ(fabric.stats().active_span(),
            fabric.stats().last_delivery - fabric.stats().first_injection);
}

TEST(Fabric, MultiHopDeliveryBothModes) {
  for (const auto mode : {RoutingMode::kAdaptive, RoutingMode::kDeterministic}) {
    auto config = make_config("4x4x4");
    const topo::Torus t{config.shape};
    const topo::Rank src = t.rank_of({{0, 0, 0}});
    const topo::Rank dst = t.rank_of({{2, 1, 3}});
    ScriptedClient client({{src, dst, 8, mode}});
    Fabric fabric(config, client);
    EXPECT_TRUE(fabric.run());
    ASSERT_EQ(client.deliveries.size(), 1u);
    EXPECT_EQ(client.deliveries[0].first, dst);
    // Minimal route: 2 + 1 + 1 = 4 hops of serialization at least.
    EXPECT_GE(fabric.stats().chunk_hops, 4u * 8u);
  }
}

TEST(Fabric, MeshEdgeRoutesTheLongWay) {
  // On a 4-mesh X dimension, 0 -> 3 must take 3 hops (no wrap link).
  auto config = make_config("4Mx1x1");
  ScriptedClient client({{0, 3, 1}});
  Fabric fabric(config, client);
  EXPECT_TRUE(fabric.run());
  ASSERT_EQ(client.deliveries.size(), 1u);
  EXPECT_EQ(fabric.stats().chunk_hops, 3u);
}

TEST(Fabric, AllPairsConservation) {
  // Every node sends one packet to every other node; all must arrive exactly
  // once with payload intact.
  auto config = make_config("3x4x2");
  const std::int32_t nodes = static_cast<std::int32_t>(config.shape.nodes());
  std::vector<ScriptedClient::Send> sends;
  for (topo::Rank s = 0; s < nodes; ++s) {
    for (topo::Rank d = 0; d < nodes; ++d) {
      if (s != d) sends.push_back({s, d, 2});
    }
  }
  ScriptedClient client(sends);
  Fabric fabric(config, client);
  EXPECT_TRUE(fabric.run());
  EXPECT_EQ(client.deliveries.size(), static_cast<std::size_t>(nodes) * (nodes - 1));
  EXPECT_EQ(fabric.stats().packets_delivered, static_cast<std::uint64_t>(nodes) * (nodes - 1));
  EXPECT_EQ(fabric.packets_in_network(), 0);

  std::map<std::pair<topo::Rank, topo::Rank>, int> count;
  for (const auto& [node, packet] : client.deliveries) {
    EXPECT_EQ(packet.dst, node);
    ++count[{packet.src, packet.dst}];
  }
  for (const auto& [pair, c] : count) EXPECT_EQ(c, 1) << pair.first << "->" << pair.second;
  EXPECT_EQ(count.size(), static_cast<std::size_t>(nodes) * (nodes - 1));
}

/// Random heavy traffic: every node fires `per_node` random-destination
/// packets back to back. Checks quiescence (deadlock freedom) and counts.
class RandomTrafficClient : public Client {
 public:
  RandomTrafficClient(std::int32_t nodes, int per_node, RoutingMode mode,
                      std::uint64_t seed)
      : nodes_(nodes), remaining_(static_cast<std::size_t>(nodes), per_node),
        mode_(mode), rng_(seed) {}

  bool next_packet(topo::Rank node, InjectDesc& out) override {
    auto& left = remaining_[static_cast<std::size_t>(node)];
    if (left == 0) return false;
    --left;
    topo::Rank dst;
    do {
      dst = static_cast<topo::Rank>(rng_.below(static_cast<std::uint64_t>(nodes_)));
    } while (dst == node);
    out.dst = dst;
    out.wire_chunks = static_cast<std::uint16_t>(1 + rng_.below(8));
    out.payload_bytes = out.wire_chunks * 32u;
    out.mode = mode_;
    out.fifo = static_cast<std::uint8_t>(rng_.below(4));
    return true;
  }

  void on_delivery(topo::Rank, const Packet&) override { ++delivered; }

  std::uint64_t delivered = 0;

 private:
  std::int32_t nodes_;
  std::vector<int> remaining_;
  RoutingMode mode_;
  util::Xoshiro256StarStar rng_;
};

class RoutingModeTest : public ::testing::TestWithParam<std::tuple<const char*, RoutingMode>> {};

TEST_P(RoutingModeTest, HeavyRandomTrafficDrains) {
  const auto& [shape, mode] = GetParam();
  auto config = make_config(shape, 99);
  const auto nodes = static_cast<std::int32_t>(config.shape.nodes());
  RandomTrafficClient client(nodes, 200, mode, 42);
  Fabric fabric(config, client);
  // A hang (deadlock) would blow this generous deadline.
  EXPECT_TRUE(fabric.run(Tick{1} << 36)) << "network did not drain";
  EXPECT_EQ(client.delivered, static_cast<std::uint64_t>(nodes) * 200u);
  EXPECT_EQ(fabric.packets_in_network(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndModes, RoutingModeTest,
    ::testing::Combine(::testing::Values("4x4x4", "8x4x2", "4Mx4x4", "8x2M", "2x2x2"),
                       ::testing::Values(RoutingMode::kAdaptive,
                                         RoutingMode::kDeterministic)));

TEST(Fabric, DeterministicRunsAreBitIdentical) {
  for (int rep = 0; rep < 2; ++rep) {
    static Tick first_time = 0;
    static std::uint64_t first_events = 0;
    auto config = make_config("4x4x4", 7);
    RandomTrafficClient client(64, 100, RoutingMode::kAdaptive, 7);
    Fabric fabric(config, client);
    EXPECT_TRUE(fabric.run());
    if (rep == 0) {
      first_time = fabric.stats().last_delivery;
      first_events = fabric.events_processed();
    } else {
      EXPECT_EQ(fabric.stats().last_delivery, first_time);
      EXPECT_EQ(fabric.events_processed(), first_events);
    }
  }
}

TEST(Fabric, DifferentSeedsDiffer) {
  Tick times[2];
  for (int rep = 0; rep < 2; ++rep) {
    auto config = make_config("4x4x4", 1000 + static_cast<std::uint64_t>(rep));
    RandomTrafficClient client(64, 100, RoutingMode::kAdaptive, 7);
    Fabric fabric(config, client);
    EXPECT_TRUE(fabric.run());
    times[rep] = fabric.stats().last_delivery;
  }
  // Half-way tie-breaking randomness differs between seeds; identical totals
  // would indicate the seed is ignored.
  EXPECT_NE(times[0], times[1]);
}

TEST(Fabric, CpuRateLimitsInjection) {
  // One node sending many max-size packets to its +X neighbor can keep at
  // most one link busy; with cpu_links = 4 the CPU is not the bottleneck and
  // the link serializes: elapsed ~= n * 8 chunks * 128 cycles.
  auto config = make_config("8x1x1");
  std::vector<ScriptedClient::Send> sends(50, {0, 1, 8});
  ScriptedClient client(sends);
  Fabric fabric(config, client);
  EXPECT_TRUE(fabric.run());
  const Tick serialization = 50u * 8u * 128u;
  EXPECT_GE(fabric.stats().last_delivery, serialization);
  EXPECT_LE(fabric.stats().last_delivery, serialization + serialization / 4 + 2000);
}

TEST(Fabric, RejectsBadConfig) {
  ScriptedClient client({});
  {
    auto config = make_config("4x4x4");
    config.injection_fifos = 0;
    EXPECT_THROW(Fabric(config, client), std::invalid_argument);
  }
  {
    auto config = make_config("4x4x4");
    config.max_packet_chunks = 64;  // larger than VC buffer
    config.vc_capacity_chunks = 32;
    EXPECT_THROW(Fabric(config, client), std::invalid_argument);
  }
}

TEST(Fabric, LinkStatsAccumulate) {
  auto config = make_config("4x1x1");
  ScriptedClient client({{0, 1, 4}, {0, 1, 4}});
  Fabric fabric(config, client);
  EXPECT_TRUE(fabric.run());
  // The X+ link out of node 0 carried 2 packets x 4 chunks x 128 cycles.
  const auto& busy = fabric.link_busy_cycles();
  EXPECT_EQ(busy[0], 2u * 4u * 128u);  // link (node 0, X+)
}

}  // namespace
}  // namespace bgl::net
