#include "src/coll/selector.hpp"

#include <gtest/gtest.h>

#include "src/network/config.hpp"
#include "src/network/faults.hpp"

namespace bgl::coll {
namespace {

using topo::parse_shape;

TEST(Selector, ShortMessageBoundaryAt64Bytes) {
  // At and below the 32-64 B measured change-over on a big partition the
  // combining scheme wins — kShortMessageBytes is documented inclusive, so
  // a 64 B message still selects the virtual mesh.
  EXPECT_EQ(select_strategy(parse_shape("8x8x8"), 63).kind, StrategyKind::kVirtualMesh);
  EXPECT_EQ(select_strategy(parse_shape("8x8x8"), 64).kind, StrategyKind::kVirtualMesh);
  EXPECT_EQ(select_strategy(parse_shape("8x8x16"), 64).kind, StrategyKind::kVirtualMesh);
  // Strictly above it the long-message rules take over.
  EXPECT_EQ(select_strategy(parse_shape("8x8x8"), 65).kind, StrategyKind::kAdaptiveRandom);
  EXPECT_EQ(select_strategy(parse_shape("8x8x16"), 65).kind, StrategyKind::kTwoPhase);
}

TEST(Selector, SmallPartitionsNeverCombine) {
  EXPECT_EQ(select_strategy(parse_shape("4x4x4"), 1).kind, StrategyKind::kAdaptiveRandom);
  EXPECT_EQ(select_strategy(parse_shape("4x4x8"), 1).kind, StrategyKind::kTwoPhase);
}

TEST(Selector, MeshPartitionsAreAsymmetric) {
  // A mesh dimension breaks the "symmetric torus" condition even when the
  // extents are equal: the direct strategy no longer reaches peak.
  EXPECT_EQ(select_strategy(parse_shape("8x8x8M"), 4096).kind, StrategyKind::kTwoPhase);
  EXPECT_EQ(select_strategy(parse_shape("8Mx8x8"), 4096).kind, StrategyKind::kTwoPhase);
}

TEST(Selector, LinesAndPlanesCountAsSymmetric) {
  EXPECT_EQ(select_strategy(parse_shape("16"), 4096).kind, StrategyKind::kAdaptiveRandom);
  EXPECT_EQ(select_strategy(parse_shape("16x16"), 4096).kind,
            StrategyKind::kAdaptiveRandom);
  EXPECT_EQ(select_strategy(parse_shape("16x8"), 4096).kind, StrategyKind::kTwoPhase);
}

TEST(Selector, RationaleIsNonEmpty) {
  for (const char* spec : {"8x8x8", "8x8x16", "4x4x4"}) {
    for (const std::uint64_t m : {8u, 4096u}) {
      EXPECT_FALSE(select_strategy(parse_shape(spec), m).rationale.empty());
    }
  }
}

TEST(Selector, PaperRuleExtendsAcrossDimensionalities) {
  // Symmetric full torus (any n) -> direct AR for long messages; an
  // asymmetric shape -> TPS. 1-D lines are trivially symmetric.
  EXPECT_EQ(select_strategy(parse_shape("4x4x4x4"), 4096).kind,
            StrategyKind::kAdaptiveRandom);
  EXPECT_EQ(select_strategy(parse_shape("4x4x4x8"), 4096).kind,
            StrategyKind::kTwoPhase);
  EXPECT_EQ(select_strategy(parse_shape("64"), 4096).kind,
            StrategyKind::kAdaptiveRandom);
}

TEST(Selector, NdFaultModeScoringNeverThrows) {
  // Regression for the n-D generalization: under a fault plan the selector
  // scores every registry builder by building its schedule. A builder that
  // cannot serve the dimensionality must be scored out as ineligible (zero
  // coverage, reason recorded) — never propagate an exception.
  for (const char* spec : {"16", "8x8", "4x2x2x4"}) {
    SCOPED_TRACE(spec);
    const auto shape = parse_shape(spec);
    net::NetworkConfig net;
    net.shape = shape;
    net.seed = 5;
    net.faults.link_fail = 0.05;
    const net::FaultPlan plan(net, shape);
    ASSERT_TRUE(plan.enabled());
    Selection selection;
    ASSERT_NO_THROW(selection = select_strategy(shape, 300, &plan));
    EXPECT_FALSE(selection.rationale.empty());
    ASSERT_FALSE(selection.candidates.empty());
    // Candidates are ranked best-first; the winner must be an eligible
    // schedule with real coverage.
    EXPECT_TRUE(selection.candidates.front().eligible);
    EXPECT_GT(selection.candidates.front().covered_pairs, 0u);
    for (const auto& candidate : selection.candidates) {
      if (!candidate.eligible) {
        EXPECT_EQ(candidate.covered_pairs, 0u);
        EXPECT_FALSE(candidate.ineligible_reason.empty());
      }
    }
  }
}

TEST(Selector, PaperHeadlinePartitions) {
  // The machines the paper highlights: LLNL 64x32x32 and Watson 40x32x16.
  EXPECT_EQ(select_strategy(parse_shape("64x32x32"), 1 << 20).kind,
            StrategyKind::kTwoPhase);
  EXPECT_EQ(select_strategy(parse_shape("40x32x16"), 1 << 20).kind,
            StrategyKind::kTwoPhase);
  EXPECT_EQ(select_strategy(parse_shape("40x32x16"), 8).kind,
            StrategyKind::kVirtualMesh);
}

}  // namespace
}  // namespace bgl::coll
