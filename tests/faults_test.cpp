// The fault-injection plan: strict --faults spec parsing, deterministic
// expansion of a FaultConfig over a Shape, and the minimal-path routability
// oracle that strategies and verification share.
#include "src/network/faults.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "src/topology/torus.hpp"

namespace bgl::net {
namespace {

// --- parse_fault_spec ------------------------------------------------------

TEST(ParseFaultSpec, ParsesEveryKey) {
  const FaultConfig c = parse_fault_spec(
      "link:0.02,tlink=0.01,repair:1000,fail_at:5,degrade:0.1,degrade_mult:8,"
      "node:3,drop:1e-5,corrupt:2e-4,seed:7,rto:2000,retries:4,stuck:9000");
  EXPECT_DOUBLE_EQ(c.link_fail, 0.02);
  EXPECT_DOUBLE_EQ(c.link_transient, 0.01);
  EXPECT_EQ(c.repair_cycles, 1000);
  EXPECT_EQ(c.fail_at, 5);
  EXPECT_DOUBLE_EQ(c.degrade, 0.1);
  EXPECT_EQ(c.degrade_mult, 8u);
  EXPECT_EQ(c.node_fail, 3);
  EXPECT_DOUBLE_EQ(c.drop_prob, 1e-5);
  EXPECT_DOUBLE_EQ(c.corrupt_prob, 2e-4);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_EQ(c.retrans_timeout, 2000);
  EXPECT_EQ(c.max_retries, 4);
  EXPECT_EQ(c.stuck_drop_cycles, 9000);
  EXPECT_TRUE(c.enabled());
}

TEST(ParseFaultSpec, EmptySpecIsDisabled) {
  EXPECT_FALSE(parse_fault_spec("").enabled());
}

TEST(ParseFaultSpec, ParsesCorruptProbability) {
  const FaultConfig c = parse_fault_spec("corrupt:0.01");
  EXPECT_DOUBLE_EQ(c.corrupt_prob, 0.01);
  EXPECT_TRUE(c.enabled());
  EXPECT_DOUBLE_EQ(parse_fault_spec("corrupt:0").corrupt_prob, 0.0);
  EXPECT_DOUBLE_EQ(parse_fault_spec("drop:0.001,corrupt:1e-3").corrupt_prob, 1e-3);
}

TEST(ParseFaultSpec, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_fault_spec("link:0.1,link:0.2"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("drop:0.1,corrupt:0.1,drop:0.1"),
               std::runtime_error);
  // Mixed key:value / key=value syntax is still the same key.
  EXPECT_THROW(parse_fault_spec("node:1,node=2"), std::runtime_error);
  try {
    parse_fault_spec("corrupt:0.1,corrupt:0.1");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("corrupt"), std::string::npos);
  }
}

TEST(ParseFaultSpec, RejectsOutOfRangeProbabilities) {
  EXPECT_THROW(parse_fault_spec("corrupt:1.5"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("corrupt:-0.1"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("drop:1.0001"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("tlink:2"), std::runtime_error);
  // The bounds themselves are legal.
  EXPECT_DOUBLE_EQ(parse_fault_spec("corrupt:1").corrupt_prob, 1.0);
  EXPECT_DOUBLE_EQ(parse_fault_spec("drop:1,corrupt:0").drop_prob, 1.0);
}

TEST(ParseFaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_spec("link"), std::runtime_error);          // no value
  EXPECT_THROW(parse_fault_spec("link:"), std::runtime_error);         // empty value
  EXPECT_THROW(parse_fault_spec(":0.1"), std::runtime_error);          // empty key
  EXPECT_THROW(parse_fault_spec("link:0.1,,drop:0"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("warp:0.5"), std::runtime_error);      // unknown key
  EXPECT_THROW(parse_fault_spec("link:zebra"), std::runtime_error);    // not a number
  EXPECT_THROW(parse_fault_spec("link:1.5"), std::runtime_error);      // > 1
  EXPECT_THROW(parse_fault_spec("drop:-0.1"), std::runtime_error);     // < 0
  EXPECT_THROW(parse_fault_spec("node:-2"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("repair:0"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("rto:0"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("degrade_mult:1"), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("link:0.1 "), std::runtime_error);     // trailing junk
}

TEST(ParseFaultSpec, ErrorMessagesNameTheOption) {
  try {
    parse_fault_spec("bogus:1");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("--faults"), std::string::npos);
  }
}

// --- FaultPlan expansion ---------------------------------------------------

NetworkConfig config_for(const std::string& spec, std::uint64_t seed = 1) {
  NetworkConfig net;
  net.shape = topo::parse_shape("4x4x4");
  net.seed = seed;
  net.faults = parse_fault_spec(spec);
  return net;
}

TEST(FaultPlan, DisabledConfigYieldsEmptyPlan) {
  const NetworkConfig net = config_for("");
  const FaultPlan plan(net, net.shape);
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.dead_link_count(), 0u);
  EXPECT_EQ(plan.dead_node_count(), 0u);
  EXPECT_TRUE(plan.node_alive(0));
  EXPECT_EQ(plan.link_health(0), LinkHealth::kUp);
}

TEST(FaultPlan, PureFunctionOfConfigAndShape) {
  const NetworkConfig net = config_for("link:0.05,tlink:0.05,node:2,degrade:0.1");
  const FaultPlan a(net, net.shape);
  const FaultPlan b(net, net.shape);
  ASSERT_TRUE(a.enabled());
  EXPECT_EQ(a.derived_seed(), b.derived_seed());
  EXPECT_EQ(a.dead_link_count(), b.dead_link_count());
  EXPECT_EQ(a.degraded_link_count(), b.degraded_link_count());
  EXPECT_EQ(a.dead_node_count(), b.dead_node_count());
  ASSERT_EQ(a.transients().size(), b.transients().size());
  for (std::size_t i = 0; i < a.transients().size(); ++i) {
    EXPECT_EQ(a.transients()[i].link, b.transients()[i].link);
    EXPECT_EQ(a.transients()[i].down_at, b.transients()[i].down_at);
    EXPECT_EQ(a.transients()[i].up_at, b.transients()[i].up_at);
  }
  const int links = static_cast<int>(net.shape.nodes()) * net.shape.directions();
  for (int link = 0; link < links; ++link) {
    EXPECT_EQ(a.link_health(link), b.link_health(link));
  }
}

TEST(FaultPlan, SeedZeroDerivesFromNetworkSeed) {
  const FaultPlan a(config_for("link:0.05", 1), topo::parse_shape("4x4x4"));
  const FaultPlan b(config_for("link:0.05", 2), topo::parse_shape("4x4x4"));
  EXPECT_NE(a.derived_seed(), b.derived_seed());

  // An explicit fault seed pins the placement regardless of the network seed.
  const FaultPlan c(config_for("link:0.05,seed:9", 1), topo::parse_shape("4x4x4"));
  const FaultPlan d(config_for("link:0.05,seed:9", 2), topo::parse_shape("4x4x4"));
  EXPECT_EQ(c.derived_seed(), 9u);
  EXPECT_EQ(c.dead_link_count(), d.dead_link_count());
  const int links = 4 * 4 * 4 * topo::parse_shape("4x4x4").directions();
  for (int link = 0; link < links; ++link) {
    EXPECT_EQ(c.link_health(link), d.link_health(link));
  }
}

TEST(FaultPlan, FailsBothDirectionsOfAnUndirectedLink) {
  const NetworkConfig net = config_for("link:0.10");
  const FaultPlan plan(net, net.shape);
  const topo::Torus torus(net.shape);
  ASSERT_GT(plan.dead_link_count(), 0u);
  std::size_t directed_dead = 0;
  for (topo::Rank n = 0; n < torus.nodes(); ++n) {
    for (int d = 0; d < torus.directions(); ++d) {
      if (!plan.link_dead(plan.link_id(n, d))) continue;
      ++directed_dead;
      const topo::Rank peer = torus.neighbor(n, topo::Direction::from_index(d));
      ASSERT_GE(peer, 0);
      // The reverse port on the peer must be dead too.
      const int reverse = d ^ 1;
      EXPECT_TRUE(plan.link_dead(plan.link_id(peer, reverse)));
    }
  }
  EXPECT_EQ(directed_dead, 2 * plan.dead_link_count());
}

TEST(FaultPlan, NodeFailureCountsMatch) {
  const NetworkConfig net = config_for("node:3");
  const FaultPlan plan(net, net.shape);
  EXPECT_EQ(plan.dead_node_count(), 3u);
  std::size_t dead = 0;
  for (topo::Rank n = 0; n < net.shape.nodes(); ++n) {
    if (!plan.node_alive(n)) ++dead;
  }
  EXPECT_EQ(dead, 3u);
}

// --- routability oracle ----------------------------------------------------

TEST(FaultPlan, PairRoutableRespectsDeadEndpoints) {
  const NetworkConfig net = config_for("node:2");
  const FaultPlan plan(net, net.shape);
  topo::Rank dead = -1;
  for (topo::Rank n = 0; n < net.shape.nodes(); ++n) {
    if (!plan.node_alive(n)) { dead = n; break; }
  }
  ASSERT_GE(dead, 0);
  const topo::Rank alive = plan.node_alive(0) ? 0 : 1;
  ASSERT_TRUE(plan.node_alive(alive));
  EXPECT_FALSE(plan.pair_routable(alive, dead, RoutingMode::kAdaptive));
  EXPECT_FALSE(plan.pair_routable(dead, alive, RoutingMode::kAdaptive));
}

TEST(FaultPlan, AdaptiveSurvivesFaultsThatKillDeterministicPaths) {
  // With only link faults (all nodes alive), adaptive minimal routing on a
  // torus finds a detour for most pairs, while dimension-order loses every
  // pair whose single path crosses a dead link. Adaptive routability must
  // be a superset of deterministic routability.
  const NetworkConfig net = config_for("link:0.08");
  const FaultPlan plan(net, net.shape);
  ASSERT_GT(plan.dead_link_count(), 0u);
  std::size_t det_lost = 0;
  for (topo::Rank s = 0; s < net.shape.nodes(); ++s) {
    for (topo::Rank d = 0; d < net.shape.nodes(); ++d) {
      if (s == d) continue;
      const bool adaptive = plan.pair_routable(s, d, RoutingMode::kAdaptive);
      const bool det = plan.pair_routable(s, d, RoutingMode::kDeterministic);
      if (det) EXPECT_TRUE(adaptive) << "pair " << s << "->" << d;
      if (!det) ++det_lost;
    }
  }
  EXPECT_GT(det_lost, 0u);  // 8% dead links must cut some dimension-order path
}

TEST(FaultPlan, RoutabilityIsStableAcrossCalls) {
  const NetworkConfig net = config_for("link:0.05,node:1");
  const FaultPlan plan(net, net.shape);
  for (topo::Rank s = 0; s < 8; ++s) {
    for (topo::Rank d = 56; d < net.shape.nodes(); ++d) {
      if (s == d) continue;
      const bool first = plan.pair_routable(s, d, RoutingMode::kAdaptive);
      plan.invalidate_routes();
      EXPECT_EQ(plan.pair_routable(s, d, RoutingMode::kAdaptive), first);
    }
  }
}

}  // namespace
}  // namespace bgl::net
