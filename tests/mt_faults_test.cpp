// Fault injection on the slab-parallel core.
//
// The contract under test (DESIGN.md "Counter-based fault randomness"):
//  - Every probabilistic fault decision (drop, corruption) is a pure
//    function of (fault seed, flow, sequence, attempt, remaining hops)
//    through a counter-based hash — so with retransmissions quiesced by a
//    generous RTO, the realization and the delivery matrix are *cell-exact*
//    across any --sim-threads count.
//  - Timing-coupled populations (packets in flight when a strike lands, the
//    set of RTO-expired retransmissions) are only promised to be
//    bit-deterministic per (seed, sim_threads): the same run twice is
//    identical, and the final delivery verdict matches single-thread.
//  - Hop observers run parallel via per-slab buffers drained at window
//    barriers in (tick, link id) order: same grant multiset as the
//    reference engine, deterministic replay order.
//
// The chaos case at the bottom exists for the sanitizer CI: every MT fault
// mechanism (transients, drops, corruption, a mid-run strike, the stuck
// sweep) active at once under TSan.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/coll/alltoall.hpp"
#include "src/network/faults.hpp"

namespace bgl::coll {
namespace {

/// One faulted verified run. A generous RTO (rto:2000000 in the specs
/// below) keeps the retransmit population empty so the fault realization is
/// the only stochastic surface.
RunResult faulted_run(const char* shape, StrategyKind kind,
                      std::uint64_t bytes, const char* spec, int threads,
                      DeliveryMatrix* matrix = nullptr) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape(shape);
  options.net.seed = 7;
  options.net.sim_threads = threads;
  options.net.faults = net::parse_fault_spec(spec);
  options.msg_bytes = bytes;
  options.verify = true;
  options.deliveries = matrix;
  return run_alltoall(kind, options);
}

void expect_matrices_equal(const DeliveryMatrix& a, const DeliveryMatrix& b) {
  ASSERT_EQ(a.nodes(), b.nodes());
  for (topo::Rank s = 0; s < a.nodes(); ++s) {
    for (topo::Rank d = 0; d < a.nodes(); ++d) {
      ASSERT_EQ(a.bytes(s, d), b.bytes(s, d))
          << "pair (" << s << " -> " << d << ")";
    }
  }
}

TEST(MtFaults, DropPlanFaultStatsMatchAcrossThreads) {
  const char* spec = "drop:5e-4,seed:3,rto:2000000";
  const std::int32_t nodes = 128;  // 4x4x8
  DeliveryMatrix st(nodes);
  const RunResult ref = faulted_run("4x4x8", StrategyKind::kAdaptiveRandom,
                                    480, spec, 1, &st);
  ASSERT_TRUE(ref.drained);
  ASSERT_GT(ref.faults.dropped_prob, 0u) << "plan injected no drops";
  for (const int threads : {2, 4}) {
    DeliveryMatrix mt(nodes);
    const RunResult r = faulted_run("4x4x8", StrategyKind::kAdaptiveRandom,
                                    480, spec, threads, &mt);
    ASSERT_TRUE(r.drained);
    EXPECT_EQ(r.sim_threads, threads);
    EXPECT_EQ(r.sim_threads_reason, net::ThreadFallbackReason::kNone);
    // The counter-based draws make the loss realization thread-invariant.
    EXPECT_EQ(r.faults.dropped_prob, ref.faults.dropped_prob);
    EXPECT_EQ(r.faults.corrupted_payloads, 0u);
    EXPECT_EQ(r.reliability.data_sequenced, ref.reliability.data_sequenced);
    EXPECT_EQ(r.pairs_complete, ref.pairs_complete);
    EXPECT_TRUE(r.reachable_complete);
    expect_matrices_equal(st, mt);
  }
}

TEST(MtFaults, DegradedLinksMatchAcrossThreads) {
  const char* spec = "link:0.03,degrade:0.05,degrade_mult:4,seed:11,rto:2000000";
  const std::int32_t nodes = 128;
  DeliveryMatrix st(nodes);
  const RunResult ref =
      faulted_run("4x4x8", StrategyKind::kTwoPhase, 480, spec, 1, &st);
  ASSERT_TRUE(ref.drained);
  ASSERT_GT(ref.unreachable_pairs, 0u) << "plan killed no pairs";
  for (const int threads : {2, 4}) {
    DeliveryMatrix mt(nodes);
    const RunResult r =
        faulted_run("4x4x8", StrategyKind::kTwoPhase, 480, spec, threads, &mt);
    ASSERT_TRUE(r.drained);
    EXPECT_EQ(r.sim_threads, threads);
    EXPECT_EQ(r.unreachable_pairs, ref.unreachable_pairs);
    EXPECT_EQ(r.pairs_complete, ref.pairs_complete);
    EXPECT_TRUE(r.reachable_complete);
    expect_matrices_equal(st, mt);
  }
}

TEST(MtFaults, CorruptDetectionMatchesAcrossThreads) {
  const char* spec = "corrupt:2e-4,seed:5,rto:2000000";
  const std::int32_t nodes = 128;
  DeliveryMatrix st(nodes);
  const RunResult ref =
      faulted_run("4x4x8", StrategyKind::kTwoPhase, 480, spec, 1, &st);
  ASSERT_TRUE(ref.drained);
  ASSERT_GT(ref.faults.corrupted_payloads, 0u) << "plan corrupted nothing";
  // Every injected corruption was caught end to end.
  EXPECT_EQ(ref.reliability.corrupt_rejected, ref.faults.corrupted_payloads);
  for (const int threads : {2, 4}) {
    DeliveryMatrix mt(nodes);
    const RunResult r =
        faulted_run("4x4x8", StrategyKind::kTwoPhase, 480, spec, threads, &mt);
    ASSERT_TRUE(r.drained);
    EXPECT_EQ(r.sim_threads, threads);
    EXPECT_EQ(r.faults.corrupted_payloads, ref.faults.corrupted_payloads);
    EXPECT_EQ(r.reliability.corrupt_rejected, r.faults.corrupted_payloads);
    EXPECT_TRUE(r.reachable_complete);
    expect_matrices_equal(st, mt);
  }
}

TEST(MtFaults, MidRunStrikeWithRecoveryDeterministicPerThreadCount) {
  // A blind strike's in-flight casualty set is timing-coupled, so across
  // thread counts only the final verdict must agree; for a fixed
  // (seed, sim_threads) the whole run — strike, sweeps, recovery epochs —
  // must be bit-identical.
  const char* spec = "node:1,fail_at:200000,seed:13";
  const RunResult ref =
      faulted_run("4x4x8", StrategyKind::kTwoPhase, 1024, spec, 1);
  const RunResult a =
      faulted_run("4x4x8", StrategyKind::kTwoPhase, 1024, spec, 4);
  const RunResult b =
      faulted_run("4x4x8", StrategyKind::kTwoPhase, 1024, spec, 4);
  ASSERT_TRUE(ref.drained);
  ASSERT_TRUE(a.drained);
  EXPECT_EQ(a.sim_threads, 4);

  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults.dropped_in_flight, b.faults.dropped_in_flight);
  EXPECT_EQ(a.faults.dropped_stuck, b.faults.dropped_stuck);
  EXPECT_EQ(a.faults.stranded_relay_bytes, b.faults.stranded_relay_bytes);
  EXPECT_EQ(a.epochs.epochs, b.epochs.epochs);
  EXPECT_EQ(a.epochs.residual_pairs, b.epochs.residual_pairs);
  EXPECT_EQ(a.epochs.recovered_bytes, b.epochs.recovered_bytes);
  EXPECT_EQ(a.pairs_complete, b.pairs_complete);

  // Thread counts agree on what was recoverable, if not on the casualties.
  EXPECT_EQ(a.unreachable_pairs, ref.unreachable_pairs);
  EXPECT_EQ(a.pairs_complete, ref.pairs_complete);
  EXPECT_GT(a.epochs.epochs, 1) << "recovery never re-planned";
}

TEST(MtFaults, TransientOutagesDeterministicPerThreadCount) {
  const char* spec = "tlink:0.05,repair:30000,seed:17,rto:60000";
  const RunResult ref =
      faulted_run("4x4x8", StrategyKind::kAdaptiveRandom, 480, spec, 1);
  const RunResult a =
      faulted_run("4x4x8", StrategyKind::kAdaptiveRandom, 480, spec, 4);
  const RunResult b =
      faulted_run("4x4x8", StrategyKind::kAdaptiveRandom, 480, spec, 4);
  ASSERT_TRUE(ref.drained);
  ASSERT_TRUE(a.drained);
  EXPECT_EQ(a.sim_threads, 4);
  // The outage schedule itself is plan state: identical everywhere.
  EXPECT_EQ(a.faults.transient_strikes, ref.faults.transient_strikes);
  EXPECT_EQ(a.faults.link_down_cycles, ref.faults.link_down_cycles);
  // Same (seed, N) -> same casualties, same everything.
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults.dropped_in_flight, b.faults.dropped_in_flight);
  EXPECT_EQ(a.reliability.retransmits, b.reliability.retransmits);
  // Transients heal: both engines deliver everything.
  EXPECT_TRUE(ref.reachable_complete);
  EXPECT_TRUE(a.reachable_complete);
  EXPECT_EQ(a.pairs_complete, ref.pairs_complete);
}

TEST(MtFaults, HopObserverSeesEveryGrantUnderMt) {
  // Observer runs no longer force the reference engine. Two properties:
  //  - grant *count* matches the reference engine exactly (minimal routing:
  //    every packet takes the same number of hops on any path, and the
  //    delivered packet set is thread-invariant);
  //  - the barrier-drained replay is in a deterministic order — an
  //    order-sensitive hash is bit-equal across reruns at the same width.
  // The per-link multiset is NOT compared against single-thread: adaptive
  // direction choices are timing-coupled and legitimately differ.
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x8");
  options.net.seed = 7;
  options.msg_bytes = 300;
  // Observer invocations are serial in both engines (inline in the handler
  // loop, or replayed by the one thread running the window barrier), so
  // plain variables and order-sensitive mixing are safe.
  std::uint64_t grants = 0;
  std::uint64_t order_hash = 0;
  options.hop_observer = [&](const net::Packet& packet, topo::Rank node,
                             int dir, int target) {
    ++grants;
    const auto key = (static_cast<std::uint64_t>(node) << 16) ^
                     (static_cast<std::uint64_t>(dir) << 8) ^
                     static_cast<std::uint64_t>(target + 1) ^
                     (packet.tag << 24);
    order_hash = order_hash * 0x100000001b3ULL + key;
  };

  options.net.sim_threads = 1;
  const RunResult st = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(st.drained);
  const std::uint64_t st_grants = grants;
  grants = 0;
  order_hash = 0;

  options.net.sim_threads = 4;
  const RunResult mt = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(mt.drained);
  EXPECT_EQ(mt.sim_threads, 4) << "observer run fell back to one thread";
  EXPECT_EQ(grants, st_grants);
  const std::uint64_t mt_grants = grants;
  const std::uint64_t mt_hash = order_hash;
  grants = 0;
  order_hash = 0;

  const RunResult again = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(again.drained);
  EXPECT_EQ(grants, mt_grants);
  EXPECT_EQ(order_hash, mt_hash) << "barrier replay order is not deterministic";
}

TEST(MtFaults, ChaosRunUnderEveryFaultMechanismDrains) {
  // Sanitizer fodder: drops + corruption + transients + a mid-run strike +
  // stuck sweeps, all on 4 slabs. Assertions are deliberately light — the
  // point is that TSan/ASan observe every MT fault path in one run, and
  // that the run still quiesces and verifies.
  const char* spec =
      "node:1,link:0.02,tlink:0.03,repair:20000,drop:2e-4,corrupt:1e-4,"
      "fail_at:150000,seed:23,rto:40000";
  const RunResult a =
      faulted_run("4x4x8", StrategyKind::kAdaptiveRandom, 480, spec, 4);
  const RunResult b =
      faulted_run("4x4x8", StrategyKind::kAdaptiveRandom, 480, spec, 4);
  EXPECT_TRUE(a.drained);
  EXPECT_FALSE(a.timed_out);
  EXPECT_EQ(a.sim_threads, 4);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults.total_dropped(), b.faults.total_dropped());
  EXPECT_EQ(a.reliability.corrupt_rejected, b.reliability.corrupt_rejected);
  EXPECT_EQ(a.pairs_complete, b.pairs_complete);
}

}  // namespace
}  // namespace bgl::coll
