// Slab-parallel simulator core and the bugfix-sweep regressions that ride
// with it:
//  - Engine strict mode aborts on past-due schedule() calls instead of
//    silently clamping (the default still clamps).
//  - A multi-threaded run preserves the per-pair delivery matrix and the
//    delivered packet/byte totals of the single-threaded reference exactly,
//    and is deterministic for a fixed (seed, threads).
//  - Fault runs are parallel-eligible (counter-based fault draws, slab-owned
//    fault state); the remaining ineligible configurations (legacy clients,
//    cross-node extra_deps) fall back to the reference engine and report
//    sim_threads == 1 with the cause in sim_threads_reason.
//  - A delayed permanent strike (fail_at > 0) is planned blind, quiesces
//    without tripping the watchdog, and reports the relay payload stranded
//    in dead custodians.
//  - CommSchedule::extra_deps are enforced on ordered relay-free schedules
//    and rejected everywhere else.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/coll/alltoall.hpp"
#include "src/coll/registry.hpp"
#include "src/coll/schedule.hpp"
#include "src/network/fabric.hpp"
#include "src/sim/engine.hpp"

namespace bgl::coll {
namespace {

// --- Engine strict mode ----------------------------------------------------

/// Handler that reacts to a type-0 event by scheduling a type-1 event at
/// half its time — past-due once the type-0 event has fired.
struct PastDueHandler : sim::EventHandler {
  sim::Engine* engine = nullptr;
  std::vector<sim::Tick> fired;
  void handle(const sim::Event& event) override {
    fired.push_back(event.time);
    if (event.type == 0) engine->schedule(event.time / 2, 1);
  }
};

TEST(EngineStrict, PastDueScheduleThrows) {
  PastDueHandler handler;
  sim::Engine engine(handler);
  handler.engine = &engine;
  engine.set_strict(true);
  engine.schedule(100, 0);
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(EngineStrict, PastDueScheduleClampsByDefault) {
  PastDueHandler handler;
  sim::Engine engine(handler);
  handler.engine = &engine;
  engine.schedule(100, 0);
  EXPECT_TRUE(engine.run());
  // The past-due event fired, clamped to the scheduling instant.
  ASSERT_EQ(handler.fired.size(), 2u);
  EXPECT_EQ(handler.fired[0], 100u);
  EXPECT_EQ(handler.fired[1], 100u);
}

// --- multi-threaded equivalence and determinism ----------------------------

RunResult run_threaded(StrategyKind kind, int threads, DeliveryMatrix* matrix) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x8");
  options.net.seed = 7;
  options.net.sim_threads = threads;
  options.msg_bytes = 300;
  options.deliveries = matrix;
  return run_alltoall(kind, options);
}

class ParallelEquivalence : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(ParallelEquivalence, DeliveryMatrixMatchesSingleThread) {
  const std::int32_t nodes = 128;  // 4x4x8
  DeliveryMatrix st(nodes);
  DeliveryMatrix mt(nodes);
  const RunResult a = run_threaded(GetParam(), 1, &st);
  const RunResult b = run_threaded(GetParam(), 4, &mt);
  ASSERT_TRUE(a.drained);
  ASSERT_TRUE(b.drained);
  EXPECT_EQ(a.sim_threads, 1);
  EXPECT_EQ(b.sim_threads, 4) << "parallel run fell back to the reference engine";
  // Timing may shift across slab boundaries; what was delivered may not.
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
  EXPECT_EQ(a.pairs_complete, b.pairs_complete);
  for (topo::Rank s = 0; s < nodes; ++s) {
    for (topo::Rank d = 0; d < nodes; ++d) {
      ASSERT_EQ(st.bytes(s, d), mt.bytes(s, d))
          << "pair (" << s << " -> " << d << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ParallelEquivalence,
                         ::testing::Values(StrategyKind::kMpi,
                                           StrategyKind::kAdaptiveRandom,
                                           StrategyKind::kTwoPhase,
                                           StrategyKind::kVirtualMesh));

TEST(ParallelCore, SameSeedSameThreadsBitExact) {
  const RunResult a = run_threaded(StrategyKind::kAdaptiveRandom, 4, nullptr);
  const RunResult b = run_threaded(StrategyKind::kAdaptiveRandom, 4, nullptr);
  ASSERT_TRUE(a.drained);
  EXPECT_EQ(a.sim_threads, 4);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
}

TEST(ParallelCore, ThreadCountCappedBySlabAxisExtent) {
  // 4x4x8 partitions along z (extent 8): more workers than slabs is clamped.
  const RunResult r = run_threaded(StrategyKind::kMpi, 64, nullptr);
  ASSERT_TRUE(r.drained);
  EXPECT_EQ(r.sim_threads, 8);
}

TEST(ParallelCore, FaultRunsStayOnTheParallelEngine) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x4");
  options.net.seed = 7;
  options.net.sim_threads = 4;
  options.net.faults.link_fail = 0.05;
  options.msg_bytes = 240;
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(r.drained);
  EXPECT_EQ(r.sim_threads, 4);
  EXPECT_EQ(r.sim_threads_reason, net::ThreadFallbackReason::kNone);
}

TEST(ParallelCore, FallbackReasonNamesCrossNodeDeps) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x1x1");
  net.seed = 3;
  net.sim_threads = 4;
  AlltoallOptions options;
  options.net = net;
  options.msg_bytes = 240;
  options.order = OrderPolicy::kRotation;
  CommSchedule sched =
      build_schedule(StrategyKind::kMpi, net, options.msg_bytes, options, nullptr);
  sched.extra_deps = {{5, 0}};
  const RunResult r = run_schedule(std::move(sched), options, "deps");
  ASSERT_TRUE(r.drained);
  EXPECT_EQ(r.sim_threads, 1);
  EXPECT_EQ(r.sim_threads_reason, net::ThreadFallbackReason::kCrossNodeDeps);
}

TEST(ParallelCore, EveryRegistryStrategyRunsOnTheParallelEngine) {
  // With the bespoke clients retired, every registry strategy expands to a
  // CommSchedule and is slab-eligible on a fault-free run.
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x8");
  options.net.seed = 7;
  options.net.sim_threads = 4;
  options.msg_bytes = 240;
  const RunResult r = run_alltoall(StrategyKind::kMpi, options);
  ASSERT_TRUE(r.drained);
  EXPECT_EQ(r.sim_threads, 4);
}

// --- mid-collective fail-stop (fail_at > 0) --------------------------------

TEST(MidRunStrike, BlindPlanningQuiescesAndReportsStrandedRelayBytes) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x4");
  options.net.seed = 13;
  options.msg_bytes = 2048;
  options.verify = true;
  const RunResult healthy = run_alltoall(StrategyKind::kTwoPhase, options);
  ASSERT_TRUE(healthy.drained);
  ASSERT_TRUE(healthy.reachable_complete);

  // Strike one node a quarter of the way into the healthy run: phase-1
  // forwards are in flight and (for this seed) some sit in the victim's
  // custody at the strike instant. Deterministic — not timing-flaky.
  // Recovery off: this test pins the raw struck-epoch contract (recovery
  // semantics have their own suite in recovery_test.cpp).
  options.recover = false;
  options.net.faults.node_fail = 1;
  options.net.faults.fail_at = healthy.elapsed_cycles / 4;
  const RunResult r = run_alltoall(StrategyKind::kTwoPhase, options);

  // The run must quiesce by itself (give-ups + sweeps), not by watchdog.
  EXPECT_TRUE(r.drained);
  EXPECT_FALSE(r.timed_out);
  // Planning was blind: nothing was steered around the future fault...
  EXPECT_EQ(r.unreachable_pairs, 0u);
  // ...so the strike shows up as a delivery shortfall, with the stranded
  // relay payload accounting for part of it.
  EXPECT_FALSE(r.reachable_complete);
  EXPECT_GT(r.faults.stranded_relay_bytes, 0u);
  const auto nodes = static_cast<std::uint64_t>(options.net.shape.nodes());
  EXPECT_GT(r.pairs_complete, 0u);
  EXPECT_LT(r.pairs_complete, nodes * (nodes - 1));
}

TEST(MidRunStrike, ImmediateStrikeStillPlansAroundFaults) {
  // fail_at == 0 keeps the existing semantics: the plan is visible to the
  // builders and unreachable pairs are skipped at the source.
  AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x4");
  options.net.seed = 5;
  options.msg_bytes = 300;
  options.verify = true;
  options.net.faults.node_fail = 2;
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.unreachable_pairs, 0u);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.faults.stranded_relay_bytes, 0u);
}

// --- extra_deps execution --------------------------------------------------

/// Direct single-phase schedule on a 4-node ring with the deterministic
/// rotation order: node n sends to n+1, n+2, n+3 in turn. Transfer ids are
/// node-major: node 0 emits ids 0..2, node 1 ids 3..5 (id 5 = 1 -> 0), etc.
CommSchedule ring_schedule(const net::NetworkConfig& net, std::uint64_t msg_bytes) {
  AlltoallOptions options;
  options.net = net;
  options.msg_bytes = msg_bytes;
  options.order = OrderPolicy::kRotation;
  return build_schedule(StrategyKind::kMpi, net, msg_bytes, options, nullptr);
}

struct HopLog {
  std::uint64_t counter = 0;
  std::uint64_t first_0to1 = 0;       // first hop grant of any (0 -> 1) packet
  std::uint64_t last_1to0_delivery = 0;  // last delivery grant of (1 -> 0)
};

void observe_hops(net::Fabric& fabric, HopLog& log) {
  fabric.set_hop_observer(
      [&log](const net::Packet& packet, topo::Rank, int, int target) {
        ++log.counter;
        if ((packet.tag >> 62) != 0) return;  // kFinal only
        const auto orig = static_cast<topo::Rank>((packet.tag >> 24) & 0xffffff);
        const auto dst = static_cast<topo::Rank>(packet.tag & 0xffffff);
        if (orig == 0 && dst == 1 && log.first_0to1 == 0) {
          log.first_0to1 = log.counter;
        }
        if (orig == 1 && dst == 0 && target == -1) {  // delivery grant
          log.last_1to0_delivery = log.counter;
        }
      });
}

TEST(ExtraDeps, GateHoldsTransferUntilDependencyDelivered) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x1x1");
  net.seed = 3;
  const std::uint64_t msg_bytes = 480;

  // Baseline: without the dependency, (0 -> 1) — node 0's first transfer —
  // is injected long before (1 -> 0), node 1's last, finishes.
  {
    CommSchedule sched = ring_schedule(net, msg_bytes);
    ScheduleExecutor exec(net, sched, nullptr);
    net::Fabric fabric(net, exec);
    exec.bind(fabric);
    HopLog log;
    observe_hops(fabric, log);
    ASSERT_TRUE(fabric.run(Tick{1} << 40));
    ASSERT_GT(log.last_1to0_delivery, 0u);
    ASSERT_GT(log.first_0to1, 0u);
    EXPECT_LT(log.first_0to1, log.last_1to0_delivery);
  }

  // With "(1 -> 0) before (0 -> 1)", node 0's whole stream parks until the
  // full dependency message has been delivered, then completes normally.
  {
    CommSchedule sched = ring_schedule(net, msg_bytes);
    sched.extra_deps = {{5, 0}};
    DeliveryMatrix matrix(4);
    ScheduleExecutor exec(net, sched, &matrix);
    net::Fabric fabric(net, exec);
    exec.bind(fabric);
    HopLog log;
    observe_hops(fabric, log);
    ASSERT_TRUE(fabric.run(Tick{1} << 40));
    ASSERT_GT(log.last_1to0_delivery, 0u);
    ASSERT_GT(log.first_0to1, 0u);
    EXPECT_GT(log.first_0to1, log.last_1to0_delivery);
    EXPECT_TRUE(matrix.complete(msg_bytes)) << matrix.first_error(msg_bytes);
  }
}

TEST(ExtraDeps, RejectedOnRelaySchedules) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x4x4");
  net.seed = 3;
  AlltoallOptions options;
  options.net = net;
  options.msg_bytes = 300;
  CommSchedule sched =
      build_schedule(StrategyKind::kTwoPhase, net, options.msg_bytes, options, nullptr);
  sched.extra_deps = {{0, 1}};
  EXPECT_THROW(ScheduleExecutor(net, std::move(sched), nullptr), std::invalid_argument);
}

TEST(ExtraDeps, RejectedOnExplicitSchedules) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x4x4");
  net.seed = 3;
  AlltoallOptions options;
  options.net = net;
  options.msg_bytes = 300;
  CommSchedule sched = build_schedule(StrategyKind::kVirtualMesh, net,
                                      options.msg_bytes, options, nullptr);
  ASSERT_EQ(sched.form, StreamForm::kExplicit);
  sched.extra_deps = {{0, 1}};
  EXPECT_THROW(ScheduleExecutor(net, std::move(sched), nullptr), std::invalid_argument);
}

TEST(ExtraDeps, RejectedWhenOutOfRangeOrSelfReferential) {
  net::NetworkConfig net;
  net.shape = topo::parse_shape("4x1x1");
  net.seed = 3;
  {
    CommSchedule sched = ring_schedule(net, 240);
    sched.extra_deps = {{0, 9999}};
    EXPECT_THROW(ScheduleExecutor(net, std::move(sched), nullptr),
                 std::invalid_argument);
  }
  {
    CommSchedule sched = ring_schedule(net, 240);
    sched.extra_deps = {{2, 2}};
    EXPECT_THROW(ScheduleExecutor(net, std::move(sched), nullptr),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace bgl::coll
