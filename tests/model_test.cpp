#include <gtest/gtest.h>

#include "src/model/constants.hpp"
#include "src/model/peak.hpp"
#include "src/model/predict.hpp"
#include "src/topology/torus.hpp"

namespace bgl::model {
namespace {

using topo::parse_shape;

TEST(PeakModel, TorusFactorMatchesPaperM8) {
  // Eq. 2: contention C = M/8 per directed link for the longest torus dim.
  EXPECT_DOUBLE_EQ(axis_load_factor(parse_shape("8x8x8"), topo::kX), 1.0);
  EXPECT_DOUBLE_EQ(axis_load_factor(parse_shape("16x8x8"), topo::kX), 2.0);
  EXPECT_DOUBLE_EQ(axis_load_factor(parse_shape("40x32x16"), topo::kX), 5.0);
  EXPECT_DOUBLE_EQ(bottleneck_factor(parse_shape("40x32x16")), 5.0);
  EXPECT_EQ(bottleneck_axis(parse_shape("8x32x16")), topo::kY);
}

TEST(PeakModel, MeshFactorIsDoubled) {
  // A mesh dimension's center cut gives C = E/4: twice the torus value.
  EXPECT_DOUBLE_EQ(axis_load_factor(parse_shape("8M"), topo::kX), 2.0);
  EXPECT_DOUBLE_EQ(axis_load_factor(parse_shape("16M"), topo::kX), 4.0);
  // 8x8x2M from Table 2: the 2-mesh contributes (1*1)/2 = 0.5; X dominates.
  const auto shape = parse_shape("8x8x2M");
  EXPECT_DOUBLE_EQ(axis_load_factor(shape, topo::kZ), 0.5);
  EXPECT_DOUBLE_EQ(bottleneck_factor(shape), 1.0);
}

TEST(PeakModel, ExtentOneContributesNothing) {
  EXPECT_DOUBLE_EQ(axis_load_factor(parse_shape("8"), topo::kY), 0.0);
  EXPECT_DOUBLE_EQ(bottleneck_factor(parse_shape("8")), 1.0);
}

TEST(PeakModel, PeakCyclesScalesLinearlyInLoad) {
  const auto shape = parse_shape("8x8x8");
  const double one = aa_peak_cycles(shape, 1.0, 128);
  EXPECT_DOUBLE_EQ(one, 512.0 * 1.0 * 128.0);
  EXPECT_DOUBLE_EQ(aa_peak_cycles(shape, 8.0, 128), 8.0 * one);
}

TEST(Predict, Equation3DirectTime) {
  // T ~= P*alpha + P*C*(m+h)*beta on 8x8x8, m = 4096 B.
  const auto shape = parse_shape("8x8x8");
  const double t = direct_aa_time_us(shape, 4096);
  const double alpha_term = 512.0 * kPaper.alpha_ar_us();
  const double net_term = 512.0 * 1.0 * (4096.0 + 48.0) * 6.48e-3;
  EXPECT_NEAR(t, alpha_term + net_term, 1e-9);
  EXPECT_GT(net_term, alpha_term);  // large messages are bandwidth-bound
}

TEST(Predict, PeakIsBelowDirectPrediction) {
  for (const char* spec : {"8x8x8", "16x16x16", "8x32x16"}) {
    const auto shape = parse_shape(spec);
    for (std::uint64_t m : {8u, 240u, 4096u}) {
      EXPECT_LT(peak_aa_time_us(shape, m), direct_aa_time_us(shape, m))
          << spec << " m=" << m;
    }
  }
}

TEST(Predict, Equation4VmeshCrossover) {
  // Paper Section 4.2: the analytical change-over point is m = h - 2*proto
  // = 32 bytes; below it VMesh wins, well above it the direct scheme wins.
  EXPECT_DOUBLE_EQ(vmesh_changeover_bytes(), 32.0);

  const auto shape = parse_shape("8x8x8");
  const double vmesh_8 = vmesh_aa_time_us(shape, 32, 16, 8);
  const double direct_8 = direct_aa_time_us(shape, 8);
  EXPECT_LT(vmesh_8, direct_8) << "8 B: combining must win";

  const double vmesh_4k = vmesh_aa_time_us(shape, 32, 16, 4096);
  const double direct_4k = direct_aa_time_us(shape, 4096);
  EXPECT_GT(vmesh_4k, direct_4k) << "4 KB: direct must win";
}

TEST(Predict, VmeshAlphaTermUsesMeshPerimeter) {
  // Doubling only the message size must not change the (Pvx+Pvy)*alpha term.
  const auto shape = parse_shape("8x8x8");
  const double t1 = vmesh_aa_time_us(shape, 32, 16, 0);
  EXPECT_NEAR(t1, 48.0 * kPaper.alpha_msg_us() +
                      2.0 * 512.0 * 8.0 * (6.48e-3 + 1.6e-3),
              1e-9);
}

TEST(Predict, PeakPerNodeThroughput) {
  // 1/(C*beta): ~154 MB/s on a symmetric midplane, halved when C doubles.
  const double mid = peak_per_node_mbps(parse_shape("8x8x8"));
  EXPECT_NEAR(mid, 1e3 / 6.48, 1e-6);
  EXPECT_NEAR(peak_per_node_mbps(parse_shape("16x16x16")), mid / 2.0, 1e-6);
}

TEST(Constants, AlphaTypoResolution) {
  // 450 cycles at 700 MHz is 0.643 us (the paper's "640 us" is a typo).
  EXPECT_NEAR(kPaper.alpha_ar_us(), 0.6428, 1e-3);
  EXPECT_NEAR(kPaper.alpha_msg_us(), 1.6714, 1e-3);
}

struct PeakCase {
  const char* shape;
  double factor;  // expected bottleneck factor (C in Eq. 2 terms)
};

class PeakFactorTest : public ::testing::TestWithParam<PeakCase> {};

TEST_P(PeakFactorTest, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(bottleneck_factor(parse_shape(GetParam().shape)), GetParam().factor);
}

INSTANTIATE_TEST_SUITE_P(
    Table2Shapes, PeakFactorTest,
    ::testing::Values(PeakCase{"8", 1.0},            // 8-torus line: 8/8
                      PeakCase{"16", 2.0},           // 16/8
                      PeakCase{"8x8", 1.0}, PeakCase{"16x16", 2.0},
                      PeakCase{"8x8x8", 1.0}, PeakCase{"16x16x16", 2.0},
                      PeakCase{"8x16", 2.0}, PeakCase{"8x32", 4.0},
                      PeakCase{"8x2M", 1.0},         // X torus dominates
                      PeakCase{"8x4M", 1.0},         // 4-mesh center cut: 4/4 = 1
                      PeakCase{"8x8x16", 2.0}, PeakCase{"8x32x16", 4.0},
                      PeakCase{"16x32x16", 4.0}, PeakCase{"32x32x16", 4.0},
                      PeakCase{"40x32x16", 5.0}));

}  // namespace
}  // namespace bgl::model
