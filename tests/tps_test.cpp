// Unit and behavioral tests for the Two Phase Schedule strategy, driven
// through the schedule builder and the ScheduleExecutor.
#include "src/coll/tps.hpp"

#include <gtest/gtest.h>

#include "src/coll/alltoall.hpp"
#include "src/coll/schedule.hpp"
#include "src/network/fabric.hpp"
#include "src/trace/stats.hpp"

namespace bgl::coll {
namespace {

net::NetworkConfig make_config(const char* shape, std::uint64_t seed = 1) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape(shape);
  config.seed = seed;
  return config;
}

TEST(TpsSchedule, StreamPacketsAreLinearOrPlanarOnly) {
  // Every packet a TPS source emits either travels purely along the linear
  // axis (to an intermediate) or purely within the plane (direct planar).
  const auto config = make_config("4x4x8");
  TpsTuning tuning;  // linear axis Z by the rule
  const CommSchedule sched = build_tps_schedule(config, 100, tuning);
  ASSERT_EQ(sched.stream.relay_axis, topo::kZ);
  ScheduleExecutor client(config, sched, nullptr);

  const topo::Torus torus{config.shape};
  net::InjectDesc desc;
  int linear = 0;
  int planar = 0;
  while (client.next_packet(3, desc)) {
    const topo::Coord src = torus.coord_of(3);
    const topo::Coord dst = torus.coord_of(desc.dst);
    const bool z_differs = src[topo::kZ] != dst[topo::kZ];
    const bool xy_differs = src[topo::kX] != dst[topo::kX] || src[topo::kY] != dst[topo::kY];
    EXPECT_FALSE(z_differs && xy_differs)
        << "packet to " << desc.dst << " mixes linear and planar travel";
    linear += z_differs;
    planar += xy_differs;
    ASSERT_LT(linear + planar, 1000);
  }
  // 4x4x8: 7 other Z-coordinates x 16 nodes each reachable via phase 1 (112),
  // and 15 same-Z destinations sent directly in-plane.
  EXPECT_EQ(linear, 112);
  EXPECT_EQ(planar, 15);
}

TEST(TpsSchedule, ReservedFifoGroupsSeparatePhases) {
  const auto config = make_config("4x4x8");  // 8 injection FIFOs -> groups 0-3, 4-7
  TpsTuning tuning;
  ScheduleExecutor client(config, build_tps_schedule(config, 100, tuning), nullptr);
  const topo::Torus torus{config.shape};
  net::InjectDesc desc;
  while (client.next_packet(0, desc)) {
    const topo::Coord src = torus.coord_of(0);
    const topo::Coord dst = torus.coord_of(desc.dst);
    if (src[topo::kZ] != dst[topo::kZ]) {
      EXPECT_LT(desc.fifo, 4) << "phase-1 packet outside the reserved group";
    } else {
      EXPECT_GE(desc.fifo, 4) << "planar packet in the phase-1 group";
    }
  }
}

TEST(TpsRun, CompletesAndForwardsOnAsymmetricTorus) {
  const auto config = make_config("4x4x8");
  TpsTuning tuning;
  DeliveryMatrix matrix(static_cast<std::int32_t>(config.shape.nodes()));
  ScheduleExecutor client(config, build_tps_schedule(config, 333, tuning), &matrix);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  EXPECT_TRUE(fabric.run());
  EXPECT_TRUE(matrix.complete(333)) << matrix.first_error(333);
  EXPECT_GT(client.max_forward_backlog(), 0u) << "store-and-forward must be exercised";
  EXPECT_EQ(client.credit_packets_sent(), 0u) << "credits off by default";
}

TEST(TpsRun, Phase1TrafficStaysOffPlanarLinks) {
  // With a Z linear phase, X/Y links carry only phase-2 traffic. Compare
  // against AR where X/Y links also carry packets with pending Z hops: the
  // phase separation shows as different X/Y vs Z utilization structure.
  const auto config = make_config("4x4x8", 7);
  TpsTuning tuning;
  ScheduleExecutor client(config, build_tps_schedule(config, 240, tuning), nullptr);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  ASSERT_TRUE(fabric.run());
  const auto report = trace::summarize_links(fabric, fabric.stats().last_delivery);
  // Z is the bottleneck dimension (factor 1.0 vs 0.5): its mean utilization
  // must clearly exceed X and Y.
  EXPECT_GT(report.axis[topo::kZ].mean, report.axis[topo::kX].mean * 1.3);
  EXPECT_GT(report.axis[topo::kZ].mean, report.axis[topo::kY].mean * 1.3);
}

TEST(TpsRun, UnreservedFifosStillCorrect) {
  const auto config = make_config("4x4x8");
  TpsTuning tuning;
  tuning.reserved_fifos = false;
  DeliveryMatrix matrix(static_cast<std::int32_t>(config.shape.nodes()));
  ScheduleExecutor client(config, build_tps_schedule(config, 100, tuning), &matrix);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  EXPECT_TRUE(fabric.run());
  EXPECT_TRUE(matrix.complete(100)) << matrix.first_error(100);
}

TEST(TpsCredits, WindowClampsToBatch) {
  const auto config = make_config("4x4x8");
  TpsTuning tuning;
  tuning.credit_window = 1;
  tuning.credit_batch = 10;  // window must rise to batch or sources stall
  DeliveryMatrix matrix(static_cast<std::int32_t>(config.shape.nodes()));
  ScheduleExecutor client(config, build_tps_schedule(config, 100, tuning), &matrix);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  EXPECT_TRUE(fabric.run());
  EXPECT_TRUE(matrix.complete(100)) << matrix.first_error(100);
  EXPECT_GT(client.credit_packets_sent(), 0u);
}

TEST(TpsCredits, OverheadMatchesPaperEstimate) {
  // Paper Section 5: one 32 B credit per ten 256 B data packets is ~1%
  // bandwidth overhead. Check the packet-count ratio directly.
  const auto config = make_config("4x4x8");
  TpsTuning tuning;
  tuning.credit_window = 20;
  tuning.credit_batch = 10;
  ScheduleExecutor client(config, build_tps_schedule(config, 2400, tuning),
                          nullptr);  // 10 packets/dest
  net::Fabric fabric(config, client);
  client.bind(fabric);
  ASSERT_TRUE(fabric.run());
  const double ratio = static_cast<double>(client.credit_packets_sent()) /
                       static_cast<double>(fabric.stats().packets_injected);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 0.12) << "credits must stay a small fraction of traffic";
}

TEST(TpsRun, PhasesActuallyPipeline) {
  // Paper Section 4.1: phase 2 overlaps phase 1. In the IR this is a
  // structural property — both phases are kPipelined with no barrier gate —
  // and at run time the intermediates must actually queue forwards.
  const auto config = make_config("4x4x8");
  TpsTuning tuning;
  const CommSchedule sched = build_tps_schedule(config, 960, tuning);
  ASSERT_EQ(sched.phases.size(), 2u);
  EXPECT_EQ(sched.phases[0].gate, PhaseGate::kPipelined);
  EXPECT_EQ(sched.phases[1].gate, PhaseGate::kPipelined);
  EXPECT_TRUE(sched.barriers.empty());
  ScheduleExecutor client(config, sched, nullptr);
  net::Fabric fabric(config, client);
  client.bind(fabric);
  ASSERT_TRUE(fabric.run());
  EXPECT_GT(client.max_forward_backlog(), 0u)
      << "forwarding must overlap the injection phase";
}

TEST(TpsChoice, CubeUsesZ) {
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("4x4x4")), topo::kZ);
}

TEST(TpsChoice, PlanarSymmetryBeatsLongest) {
  // 16x16x8: removing Z leaves the symmetric 16x16 plane even though Z is
  // the shortest dimension.
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("16x16x8")), topo::kZ);
}

TEST(TpsChoice, LowDimensionalShapesUseLongestAxis) {
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("64")), 0);
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("8x16")), 1);
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("16x8")), 0);
}

TEST(TpsChoice, FourDimensionalRule) {
  // Hypercube: every axis is a candidate, pick the last.
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("4x4x4x4")), 3);
  // Exactly one axis whose removal leaves a symmetric remainder.
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("4x4x4x8")), 3);
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("8x4x4x4")), 0);
  // No symmetric candidate: fall back to the longest axis.
  EXPECT_EQ(choose_linear_axis(topo::parse_shape("2x4x8x16")), 3);
}

}  // namespace
}  // namespace bgl::coll
