#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/engine.hpp"
#include "src/util/rng.hpp"

namespace bgl::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(30, 0, 0, 0);
  q.push(10, 1, 0, 0);
  q.push(20, 2, 0, 0);
  EXPECT_EQ(q.pop().time, 10u);
  EXPECT_EQ(q.pop().time, 20u);
  EXPECT_EQ(q.pop().time, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push(42, i, 0, 0);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 42u);
    EXPECT_EQ(e.type, i) << "same-time events must fire in scheduling order";
  }
}

TEST(EventQueue, RandomizedHeapProperty) {
  util::Xoshiro256StarStar rng(7);
  EventQueue q;
  std::vector<Tick> times;
  for (int i = 0; i < 10000; ++i) {
    const Tick t = rng.below(1000);
    times.push_back(t);
    q.push(t, 0, 0, 0);
  }
  std::sort(times.begin(), times.end());
  for (const Tick expected : times) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.pop().time, expected);
  }
}

TEST(EventQueue, InterleavedPushPop) {
  util::Xoshiro256StarStar rng(11);
  EventQueue q;
  Tick last = 0;
  q.push(0, 0, 0, 0);
  for (int i = 0; i < 5000; ++i) {
    const Event e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
    // Schedule 0-2 future events relative to the popped one.
    const int fanout = static_cast<int>(rng.below(3));
    for (int k = 0; k < fanout && q.size() < 64; ++k) {
      q.push(last + rng.below(50), 0, 0, 0);
    }
    if (q.empty()) q.push(last + 1, 0, 0, 0);
  }
}

class Recorder : public EventHandler {
 public:
  void handle(const Event& event) override { log.push_back(event); }
  std::vector<Event> log;
};

TEST(Engine, RunsToQuiescence) {
  Recorder recorder;
  Engine engine(recorder);
  engine.schedule(5, 1);
  engine.schedule(2, 2);
  EXPECT_TRUE(engine.run());
  ASSERT_EQ(recorder.log.size(), 2u);
  EXPECT_EQ(recorder.log[0].type, 2u);
  EXPECT_EQ(recorder.log[1].type, 1u);
  EXPECT_EQ(engine.now(), 5u);
}

TEST(Engine, DeadlineStopsBeforeLaterEvents) {
  Recorder recorder;
  Engine engine(recorder);
  engine.schedule(10, 1);
  engine.schedule(1000, 2);
  EXPECT_FALSE(engine.run(100));
  ASSERT_EQ(recorder.log.size(), 1u);
  EXPECT_EQ(recorder.log[0].type, 1u);
}

TEST(Engine, PastScheduleClampsToNow) {
  class SelfScheduler : public EventHandler {
   public:
    explicit SelfScheduler(Engine*& e) : engine(e) {}
    void handle(const Event& event) override {
      if (event.type == 1) {
        engine->schedule(0, 2);  // in the past relative to now()==7
      } else {
        fired_at = engine->now();
      }
    }
    Engine*& engine;
    Tick fired_at = 0;
  };
  Engine* engine_ptr = nullptr;
  SelfScheduler handler(engine_ptr);
  Engine engine(handler);
  engine_ptr = &engine;
  engine.schedule(7, 1);
  EXPECT_TRUE(engine.run());
  EXPECT_EQ(handler.fired_at, 7u);
}

}  // namespace
}  // namespace bgl::sim
