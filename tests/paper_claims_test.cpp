// Integration tests that pin the paper's qualitative findings — the
// orderings and crossovers its conclusions rest on — at test-sized
// partitions. If a simulator change breaks one of these, the reproduction
// story in EXPERIMENTS.md no longer holds.
#include <gtest/gtest.h>

#include "src/coll/alltoall.hpp"
#include "src/coll/selector.hpp"

namespace bgl::coll {
namespace {

RunResult run(const char* shape, StrategyKind kind, std::uint64_t bytes,
              std::uint64_t seed = 1) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape(shape);
  options.net.seed = seed;
  options.msg_bytes = bytes;
  const RunResult result = run_alltoall(kind, options);
  EXPECT_TRUE(result.drained) << shape << " stalled";
  return result;
}

// --- Section 3.1 / Table 1: AR near peak on symmetric partitions ---

TEST(PaperClaims, ArNearPeakOnSymmetricTorus) {
  EXPECT_GT(run("8x8x8", StrategyKind::kAdaptiveRandom, 960).percent_peak, 90.0);
  EXPECT_GT(run("8x8", StrategyKind::kAdaptiveRandom, 960).percent_peak, 85.0);
}

TEST(PaperClaims, OnePacketAlreadyNearAsymptote) {
  // Figure 3: a one-packet AA achieves close to the achievable throughput.
  const double one = run("8x8x8", StrategyKind::kAdaptiveRandom, 240).percent_peak;
  const double big = run("8x8x8", StrategyKind::kAdaptiveRandom, 1920).percent_peak;
  EXPECT_GT(one, 0.9 * big);
}

// --- Section 3.2 / Table 2: asymmetry degrades AR ---

TEST(PaperClaims, AsymmetryDegradesAr) {
  const double sym = run("8x8x8", StrategyKind::kAdaptiveRandom, 240).percent_peak;
  const double asym = run("8x8x16", StrategyKind::kAdaptiveRandom, 240).percent_peak;
  EXPECT_LT(asym, sym - 10.0) << "the motivating degradation must be visible";
}

TEST(PaperClaims, AsymmetricArOverloadsTheLongDimension) {
  // In a 2n x n x n torus the long dimension's links see ~2x the utilization.
  const auto result = run("16x8x8", StrategyKind::kAdaptiveRandom, 240);
  EXPECT_GT(result.links.axis[topo::kX].mean, 1.5 * result.links.axis[topo::kY].mean);
  EXPECT_GT(result.links.axis[topo::kX].mean, 1.5 * result.links.axis[topo::kZ].mean);
}

// --- Section 3.2 / Figure 4: deterministic routing ---

TEST(PaperClaims, DrBeatsArWhenXIsLongest) {
  const double dr = run("16x8x8", StrategyKind::kDeterministic, 240).percent_peak;
  const double ar = run("16x8x8", StrategyKind::kAdaptiveRandom, 240).percent_peak;
  EXPECT_GT(dr, ar);
}

TEST(PaperClaims, DrPrefersXLongestOverZLongest) {
  // Dimension-ordered packets inject onto X first; DR on 16x8x8 must beat
  // DR on the same-sized 8x8x16.
  const double x_long = run("16x8x8", StrategyKind::kDeterministic, 240).percent_peak;
  const double z_long = run("8x8x16", StrategyKind::kDeterministic, 240).percent_peak;
  EXPECT_GT(x_long, z_long + 5.0);
}

TEST(PaperClaims, DrWorseThanArOnSymmetricTorus) {
  const double dr = run("8x8x8", StrategyKind::kDeterministic, 240).percent_peak;
  const double ar = run("8x8x8", StrategyKind::kAdaptiveRandom, 240).percent_peak;
  EXPECT_LT(dr, ar);
}

TEST(PaperClaims, ThrottlingIsNotTheAnswer) {
  // The paper measured only a 2-3% gain from throttling. Our packet-level
  // congestion collapse is deeper than hardware's, so pacing recovers more
  // here (documented in EXPERIMENTS.md) — but the conclusion it supports is
  // the same and is what we pin: throttling never reaches the Two Phase
  // Schedule, which is why the paper moves to indirect strategies.
  const double ar = run("8x8x16", StrategyKind::kAdaptiveRandom, 240).percent_peak;
  const double throttled = run("8x8x16", StrategyKind::kThrottled, 240).percent_peak;
  const double tps = run("8x8x16", StrategyKind::kTwoPhase, 240).percent_peak;
  EXPECT_GT(throttled, ar - 5.0) << "pacing must not hurt";
  EXPECT_GT(tps, throttled) << "TPS must beat paced direct injection";
}

// --- Section 4.1 / Table 3: the Two Phase Schedule ---

TEST(PaperClaims, TpsRescuesAsymmetricTori) {
  for (const char* shape : {"8x8x16", "16x8x8", "8x16x8"}) {
    const double tps = run(shape, StrategyKind::kTwoPhase, 240).percent_peak;
    const double ar = run(shape, StrategyKind::kAdaptiveRandom, 240).percent_peak;
    EXPECT_GT(tps, ar + 10.0) << shape;
    EXPECT_GT(tps, 80.0) << shape;
  }
}

TEST(PaperClaims, TpsDipsOnTheMidplane) {
  // Table 3: 77.2% on 8x8x8 — the core cannot keep the linear phase and the
  // forwarding going at full rate; the direct strategy wins there.
  const double tps = run("8x8x8", StrategyKind::kTwoPhase, 240).percent_peak;
  const double ar = run("8x8x8", StrategyKind::kAdaptiveRandom, 240).percent_peak;
  EXPECT_LT(tps, ar - 10.0);
  EXPECT_GT(tps, 60.0);
}

// --- Section 4.1 / Table 4: 1-byte latency ---

TEST(PaperClaims, ArWinsOneByteLatencyOnSmallPartitions) {
  const auto tps = run("8x8x8", StrategyKind::kTwoPhase, 1);
  const auto ar = run("8x8x8", StrategyKind::kAdaptiveRandom, 1);
  EXPECT_GT(tps.elapsed_cycles, ar.elapsed_cycles)
      << "the extra forwarding hop must cost latency on a midplane";
}

// --- Section 4.2 / Figures 6-7: the virtual mesh and its crossover ---

TEST(PaperClaims, VmeshDoublesShortMessagePerformance) {
  const auto vm = run("8x8x8", StrategyKind::kVirtualMesh, 8);
  const auto ar = run("8x8x8", StrategyKind::kAdaptiveRandom, 8);
  EXPECT_LT(static_cast<double>(vm.elapsed_cycles),
            0.6 * static_cast<double>(ar.elapsed_cycles))
      << "paper: ~2x at 8 bytes";
}

TEST(PaperClaims, CrossoverBetween32And64Bytes) {
  const auto vm32 = run("8x8x8", StrategyKind::kVirtualMesh, 32);
  const auto ar32 = run("8x8x8", StrategyKind::kAdaptiveRandom, 32);
  EXPECT_LT(vm32.elapsed_cycles, ar32.elapsed_cycles) << "VMesh must still win at 32 B";
  const auto vm128 = run("8x8x8", StrategyKind::kVirtualMesh, 128);
  const auto ar128 = run("8x8x8", StrategyKind::kAdaptiveRandom, 128);
  EXPECT_GT(vm128.elapsed_cycles, ar128.elapsed_cycles) << "AR must win at 128 B";
}

TEST(PaperClaims, VmeshRoughlyDoubleTimeForLargeMessages) {
  const auto vm = run("8x8x8", StrategyKind::kVirtualMesh, 960);
  const auto ar = run("8x8x8", StrategyKind::kAdaptiveRandom, 960);
  const double ratio = static_cast<double>(vm.elapsed_cycles) /
                       static_cast<double>(ar.elapsed_cycles);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.5);
}

// --- Section 3 text: MPI baseline vs AR ---

TEST(PaperClaims, ArBeatsMpiBaseline) {
  const double ar = run("8x8x8", StrategyKind::kAdaptiveRandom, 4096).percent_peak;
  const double mpi = run("8x8x8", StrategyKind::kMpi, 4096).percent_peak;
  EXPECT_GT(ar, mpi);
  EXPECT_GT(mpi, 0.85 * ar) << "the baseline is production-quality, not a strawman";
}

// --- Section 5: the best-strategy rule delivers on every partition ---

TEST(PaperClaims, BestStrategyHighOnEveryTestedPartition) {
  for (const char* shape : {"8x8x8", "8x8x16", "16x8x8", "8x16x8"}) {
    const double best = run(shape, StrategyKind::kBest, 240).percent_peak;
    EXPECT_GT(best, 80.0) << shape;
  }
}

}  // namespace
}  // namespace bgl::coll
