// The synthesized-winner cache: store -> lookup -> executor run must be
// byte-identical to a fresh synthesis run, corrupt or truncated entries must
// read as misses (and be re-synthesized, never trusted), and the cached
// selector must only prefer a winner that actually beat its baseline.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "src/coll/schedule_lint.hpp"
#include "src/coll/synth.hpp"

namespace bgl::coll::synth {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = testing::TempDir() + "bgl_synth_cache_" + name + "_" +
                          std::to_string(::getpid());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

SynthOptions small_options() {
  SynthOptions opts;
  opts.net.shape = topo::parse_shape("4x4x2");
  opts.net.seed = 17;
  opts.msg_bytes = 64;
  opts.seed = 2;
  opts.beam_width = 2;
  opts.generations = 1;
  opts.mutations_per_survivor = 2;
  opts.jobs = 2;
  return opts;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST(SynthCache, RoundTripIsByteIdenticalToFreshSynthesis) {
  const SynthCache cache(fresh_dir("roundtrip"));
  const SynthOptions opts = small_options();

  const SynthResult fresh = synthesize_cached(opts, cache);
  ASSERT_TRUE(fresh.best.lint_ok);

  const std::string key =
      SynthCache::problem_key(opts.net.shape, opts.msg_bytes, opts.net.faults);
  CacheEntry entry;
  ASSERT_TRUE(cache.lookup(key, entry));
  EXPECT_EQ(entry.genome, fresh.best.genome);
  EXPECT_EQ(entry.cycles, fresh.best.cycles);
  EXPECT_EQ(entry.msg_bytes, opts.msg_bytes);
  EXPECT_EQ(entry.net_seed, opts.net.seed);
  EXPECT_EQ(entry.search_seed, opts.seed);
  EXPECT_EQ(entry.baseline_name, fresh.baseline_name);
  EXPECT_EQ(entry.baseline_cycles, fresh.baseline_cycles);

  // The cached path returns the same winner...
  const SynthResult cached = synthesize_cached(opts, cache);
  EXPECT_EQ(cached.best.genome.key(), fresh.best.genome.key());
  EXPECT_EQ(cached.best.cycles, fresh.best.cycles);

  // ...and rebuilding + executing the cached schedule reproduces the scored
  // cycle count and the transfer table of a from-scratch expansion.
  const CommSchedule rebuilt = build_cached_schedule(entry, opts.net, nullptr);
  net::NetworkConfig scored_net = opts.net;
  const CommSchedule direct_build =
      build_genome_schedule(entry.genome, scored_net, opts.msg_bytes, nullptr);
  EXPECT_EQ(rebuilt.to_csv(nullptr), direct_build.to_csv(nullptr));

  AlltoallOptions run_opts;
  run_opts.net = opts.net;
  run_opts.net.sim_threads = 1;  // the evaluator's pinned configuration
  run_opts.msg_bytes = opts.msg_bytes;
  run_opts.verify = true;
  const RunResult r = run_schedule(rebuilt, run_opts, entry.genome.key());
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.elapsed_cycles, entry.cycles);
}

TEST(SynthCache, DistinctProblemsGetDistinctSlots) {
  net::FaultConfig clean;
  net::FaultConfig faulted;
  faulted.node_fail = 1;
  faulted.seed = 3;
  const topo::Shape shape = topo::parse_shape("4x4x2");
  const std::string a = SynthCache::problem_key(shape, 64, clean);
  const std::string b = SynthCache::problem_key(shape, 240, clean);
  const std::string c = SynthCache::problem_key(shape, 64, faulted);
  const std::string d =
      SynthCache::problem_key(topo::parse_shape("2x4x4"), 64, clean);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(b, c);
}

TEST(SynthCache, CorruptEntriesAreMissesAndGetResynthesized) {
  const SynthCache cache(fresh_dir("corrupt"));
  const SynthOptions opts = small_options();
  const SynthResult fresh = synthesize_cached(opts, cache);
  const std::string key =
      SynthCache::problem_key(opts.net.shape, opts.msg_bytes, opts.net.faults);
  const std::string path = cache.path_for(key);
  const std::string good = read_file(path);
  ASSERT_FALSE(good.empty());

  CacheEntry entry;

  // Flip one byte inside the genome field: checksum mismatch -> miss.
  {
    std::string bad = good;
    const std::size_t pos = bad.find("genome ");
    ASSERT_NE(pos, std::string::npos);
    bad[pos + 7] = bad[pos + 7] == 'D' ? 'R' : 'D';
    write_file(path, bad);
    EXPECT_FALSE(cache.lookup(key, entry));
  }

  // Truncated file (checksum line cut off) -> miss.
  write_file(path, good.substr(0, good.size() / 2));
  EXPECT_FALSE(cache.lookup(key, entry));

  // Valid checksum over a record whose key belongs to another problem ->
  // miss (a hash collision must not serve the wrong winner).
  {
    const std::string other_key = SynthCache::problem_key(
        topo::parse_shape("2x2x2"), opts.msg_bytes, opts.net.faults);
    CacheEntry forged;
    forged.key = other_key;
    forged.genome = fresh.best.genome;
    forged.msg_bytes = opts.msg_bytes;
    forged.cycles = fresh.best.cycles;
    forged.baseline_cycles = fresh.baseline_cycles;
    cache.store(forged);
    std::error_code ec;
    std::filesystem::copy_file(cache.path_for(other_key), path,
                               std::filesystem::copy_options::overwrite_existing,
                               ec);
    ASSERT_FALSE(ec);
    EXPECT_FALSE(cache.lookup(key, entry));
  }

  // Garbage -> miss; empty -> miss.
  write_file(path, "not a cache entry at all\n");
  EXPECT_FALSE(cache.lookup(key, entry));
  write_file(path, "");
  EXPECT_FALSE(cache.lookup(key, entry));

  // A corrupt entry is re-synthesized, not trusted: the cached path runs the
  // search again and heals the slot with the same deterministic winner.
  const SynthResult healed = synthesize_cached(opts, cache);
  EXPECT_EQ(healed.best.genome.key(), fresh.best.genome.key());
  EXPECT_EQ(healed.best.cycles, fresh.best.cycles);
  ASSERT_TRUE(cache.lookup(key, entry));
  EXPECT_EQ(entry.genome, fresh.best.genome);
}

TEST(SynthCache, SelectorPrefersCachedWinnerOnlyWhenItBeatsBaseline) {
  const SynthCache cache(fresh_dir("selector"));
  const topo::Shape shape = topo::parse_shape("4x4x2");
  const std::string key = SynthCache::problem_key(shape, 64, net::FaultConfig{});

  // Empty cache: fall through to the paper's selector.
  CachedSelection selection = select_strategy_cached(shape, 64, nullptr, cache);
  EXPECT_FALSE(selection.use_synth);
  EXPECT_FALSE(selection.registry.rationale.empty());

  // A winner that merely tied its baseline stays on the registry pick.
  CacheEntry entry;
  entry.key = key;
  entry.genome = Genome{};
  entry.msg_bytes = 64;
  entry.cycles = 1000;
  entry.baseline_name = "AR";
  entry.baseline_cycles = 1000;
  cache.store(entry);
  selection = select_strategy_cached(shape, 64, nullptr, cache);
  EXPECT_FALSE(selection.use_synth);

  // A strictly better winner becomes the seventh registry entry.
  entry.cycles = 900;
  cache.store(entry);
  selection = select_strategy_cached(shape, 64, nullptr, cache);
  EXPECT_TRUE(selection.use_synth);
  EXPECT_EQ(selection.entry.genome, entry.genome);
  EXPECT_EQ(selection.entry.cycles, 900u);
  EXPECT_EQ(selection.registry.kind, select_strategy(shape, 64, nullptr).kind);
}

}  // namespace
}  // namespace bgl::coll::synth
