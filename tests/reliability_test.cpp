// End-to-end reliability under injected faults: retransmission recovers
// dropped packets, duplicates are suppressed, fault-free runs pay nothing,
// and the verification contract ("every reachable pair delivered exactly")
// holds across strategies.
#include "src/coll/alltoall.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "src/network/faults.hpp"
#include "src/topology/torus.hpp"

namespace bgl::coll {
namespace {

AlltoallOptions options_for(const char* shape, std::uint64_t msg_bytes,
                            const char* fault_spec, std::uint64_t seed = 7) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape(shape);
  options.net.seed = seed;
  options.net.faults = net::parse_fault_spec(fault_spec);
  options.msg_bytes = msg_bytes;
  options.verify = true;
  return options;
}

std::uint64_t all_pairs(const AlltoallOptions& options) {
  const auto n = static_cast<std::uint64_t>(options.net.shape.nodes());
  return n * (n - 1);
}

// --- fault-free runs pay nothing ------------------------------------------

TEST(Reliability, FaultFreeRunHasZeroOverhead) {
  const auto options = options_for("4x4x4", 240, "");
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(r.drained);
  EXPECT_EQ(r.reliability.data_sequenced, 0u);
  EXPECT_EQ(r.reliability.retransmits, 0u);
  EXPECT_EQ(r.reliability.acks_standalone, 0u);
  EXPECT_EQ(r.reliability.acks_piggybacked, 0u);
  EXPECT_EQ(r.faults.total_dropped(), 0u);
  EXPECT_EQ(r.unreachable_pairs, 0u);
  EXPECT_EQ(r.abandoned_pairs, 0u);
  EXPECT_EQ(r.reachable.nodes(), 0);  // empty mask: "all reachable"
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.pairs_complete, all_pairs(options));
}

TEST(Reliability, FaultFreeRunIsBitIdenticalWithAndWithoutFaultStructs) {
  // The empty FaultConfig path must not perturb simulated time at all.
  auto options = options_for("3x3x3", 240, "");
  const RunResult a = run_alltoall(StrategyKind::kTwoPhase, options);
  const RunResult b = run_alltoall(StrategyKind::kTwoPhase, options);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
}

// --- probabilistic drops are repaired by retransmission --------------------

TEST(Reliability, DropsAreRetransmittedToCompletion) {
  const auto options = options_for("4x4x4", 240, "drop:0.02");
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.faults.dropped_prob, 0u);
  EXPECT_GT(r.reliability.data_sequenced, 0u);
  EXPECT_GT(r.reliability.retransmits, 0u);
  EXPECT_EQ(r.reliability.gave_up, 0u);
  EXPECT_EQ(r.abandoned_pairs, 0u);
  // Every pair is reachable (no permanent faults) and must be served exactly.
  EXPECT_EQ(r.unreachable_pairs, 0u);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.pairs_complete, all_pairs(options));
}

TEST(Reliability, DuplicateRetransmitsAreSuppressed) {
  // At a 5% drop rate acks get lost too, so some delivered packet is
  // retransmitted and the copy must be dropped by the receiver, not
  // double-counted into the delivery matrix (reachable_complete checks
  // *exact* byte counts per pair).
  const auto options = options_for("4x4x4", 240, "drop:0.05");
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.reliability.duplicates_dropped, 0u);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.pairs_complete, all_pairs(options));
}

// --- transient outages: backoff rides out the downtime ---------------------

TEST(Reliability, BackoffRidesOutTransientOutages) {
  // Long outages (many RTOs) force repeated retries with exponential
  // backoff; the link heals, so every pair still completes.
  const auto options =
      options_for("3x3x3", 240, "tlink:0.3,repair:100000,rto:2000");
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.faults.transient_strikes, 0u);
  EXPECT_GT(r.faults.link_down_cycles, 0u);
  EXPECT_EQ(r.unreachable_pairs, 0u);  // transients never make a pair unreachable
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.pairs_complete, all_pairs(options));
}

// --- permanent faults: reachable pairs exactly, unreachable skipped --------

TEST(Reliability, NodeFailureShrinksTheReachableSet) {
  const auto options = options_for("4x4x4", 240, "node:2,seed:3");
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(r.drained);
  // Every ordered pair touching a dead endpoint is unreachable: 2 dead
  // nodes cut at least 2*63 + 2*63 - 2 = 250 of the 64*63 pairs.
  EXPECT_GE(r.unreachable_pairs, 250u);
  EXPECT_TRUE(r.reachable_complete);
  EXPECT_EQ(r.pairs_complete + r.unreachable_pairs, all_pairs(options));
}

TEST(Reliability, DeadLinksDegradeGracefullyAcrossStrategies) {
  for (const StrategyKind kind :
       {StrategyKind::kAdaptiveRandom, StrategyKind::kDeterministic,
        StrategyKind::kTwoPhase, StrategyKind::kVirtualMesh}) {
    SCOPED_TRACE(strategy_name(kind));
    const auto options = options_for("4x4x4", 240, "link:0.05,seed:5");
    const RunResult r = run_alltoall(kind, options);
    ASSERT_TRUE(r.drained);
    EXPECT_TRUE(r.reachable_complete);
    EXPECT_EQ(r.pairs_complete + r.unreachable_pairs, all_pairs(options));
  }
}

TEST(Reliability, ExhaustedRetryBudgetIsReportedNotHung) {
  // retries:0 abandons a packet on its first timeout, so at a high drop
  // rate some reachable pairs go unserved — the run must still drain and
  // the verification must flag the loss instead of hanging the simulation.
  const auto options = options_for("3x3x3", 240, "drop:0.08,retries:0,rto:2000");
  const RunResult r = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.reliability.gave_up, 0u);
  EXPECT_GT(r.abandoned_pairs, 0u);
  EXPECT_FALSE(r.reachable_complete);
  EXPECT_LT(r.pairs_complete, all_pairs(options));
}

// --- determinism ----------------------------------------------------------

TEST(Reliability, FaultyRunsAreDeterministic) {
  const auto options =
      options_for("4x4x4", 240, "link:0.03,tlink:0.05,repair:30000,drop:0.01");
  const RunResult a = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  const RunResult b = run_alltoall(StrategyKind::kAdaptiveRandom, options);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults.dropped_prob, b.faults.dropped_prob);
  EXPECT_EQ(a.faults.dropped_in_flight, b.faults.dropped_in_flight);
  EXPECT_EQ(a.reliability.retransmits, b.reliability.retransmits);
  EXPECT_EQ(a.reliability.duplicates_dropped, b.reliability.duplicates_dropped);
  EXPECT_EQ(a.pairs_complete, b.pairs_complete);
}

}  // namespace
}  // namespace bgl::coll
