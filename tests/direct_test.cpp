// Unit tests for the direct strategy family's schedule builder and tuning
// knobs, driven through the ScheduleExecutor.
#include "src/coll/direct.hpp"

#include <gtest/gtest.h>

#include <map>

#include "src/coll/alltoall.hpp"
#include "src/coll/schedule.hpp"
#include "src/network/fabric.hpp"

namespace bgl::coll {
namespace {

net::NetworkConfig make_config(const char* shape, std::uint64_t seed = 1) {
  net::NetworkConfig config;
  config.shape = topo::parse_shape(shape);
  config.seed = seed;
  return config;
}

/// Drains an executor's schedule for one node without a fabric, collecting
/// the emitted (dst, payload, first-packet) sequence.
struct Emitted {
  topo::Rank dst;
  std::uint32_t payload;
  bool has_alpha;
};

std::vector<Emitted> drain_node(ScheduleExecutor& client, topo::Rank node) {
  std::vector<Emitted> out;
  net::InjectDesc desc;
  while (client.next_packet(node, desc)) {
    out.push_back({desc.dst, desc.payload_bytes, desc.extra_cpu_cycles >= 450});
    EXPECT_LT(out.size(), 100000u) << "schedule does not terminate";
    if (out.size() >= 100000u) break;
  }
  return out;
}

TEST(DirectSchedule, CoversAllDestinationsOnce) {
  const auto config = make_config("4x4x4");
  ScheduleExecutor client(config, build_direct_schedule(config, 100, DirectTuning::ar()),
                          nullptr);
  const auto emitted = drain_node(client, 0);
  ASSERT_EQ(emitted.size(), 63u);  // 100 B = 1 packet per destination
  std::map<topo::Rank, int> counts;
  std::uint64_t payload = 0;
  for (const auto& e : emitted) {
    ++counts[e.dst];
    payload += e.payload;
    EXPECT_TRUE(e.has_alpha) << "every first packet carries alpha";
  }
  EXPECT_EQ(counts.size(), 63u);
  EXPECT_EQ(counts.count(0), 0u) << "never sends to self";
  EXPECT_EQ(payload, 63u * 100u);
}

TEST(DirectSchedule, Burst1InterleavesPacketsAcrossDestinations) {
  // 700 B = 208 + 240 + 240 + 12 -> 4 packets; with burst 1 each round
  // visits every destination before any destination sees its next packet.
  const auto config = make_config("4x4x4");
  ScheduleExecutor client(config, build_direct_schedule(config, 700, DirectTuning::ar()),
                          nullptr);
  const auto emitted = drain_node(client, 5);
  ASSERT_EQ(emitted.size(), 63u * 4u);
  // The first 63 sends are all distinct destinations (round 0).
  std::map<topo::Rank, int> first_round;
  for (std::size_t i = 0; i < 63; ++i) ++first_round[emitted[i].dst];
  EXPECT_EQ(first_round.size(), 63u);
  // Alpha charged only in round 0.
  for (std::size_t i = 63; i < emitted.size(); ++i) {
    EXPECT_FALSE(emitted[i].has_alpha);
  }
}

TEST(DirectSchedule, Burst2SendsPairsBeforeMovingOn) {
  const auto config = make_config("4x4x4");
  ScheduleExecutor client(config, build_direct_schedule(config, 700, DirectTuning::mpi()),
                          nullptr);  // burst 2
  const auto emitted = drain_node(client, 5);
  ASSERT_EQ(emitted.size(), 63u * 4u);
  // Round 0 sends packets 0 and 1 back-to-back per destination.
  for (std::size_t i = 0; i + 1 < 126; i += 2) {
    EXPECT_EQ(emitted[i].dst, emitted[i + 1].dst) << "burst pair split at " << i;
  }
}

TEST(DirectSchedule, RandomizedOrderDiffersAcrossNodes) {
  const auto config = make_config("4x4x4");
  ScheduleExecutor client(config, build_direct_schedule(config, 32, DirectTuning::ar()),
                          nullptr);
  const auto a = drain_node(client, 1);
  const auto b = drain_node(client, 2);
  ASSERT_EQ(a.size(), b.size());
  int same_position = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same_position += (a[i].dst == b[i].dst);
  EXPECT_LT(same_position, 20) << "per-node orders should be (mostly) different";
}

TEST(DirectSchedule, ThrottleAddsPacingCost) {
  const auto config = make_config("8x8x8");
  ScheduleExecutor paced(
      config, build_direct_schedule(config, 240, DirectTuning::throttled(1.0)), nullptr);
  ScheduleExecutor unpaced(config, build_direct_schedule(config, 240, DirectTuning::ar()),
                           nullptr);
  net::InjectDesc a, b;
  ASSERT_TRUE(paced.next_packet(0, a));
  ASSERT_TRUE(unpaced.next_packet(0, b));
  EXPECT_GT(a.extra_cpu_cycles, b.extra_cpu_cycles);
}

TEST(DirectSchedule, DeliveriesMatchScheduleShape) {
  const auto config = make_config("4x2x2");
  const CommSchedule sched = build_direct_schedule(config, 700, DirectTuning::ar());
  const std::uint64_t packets_per_message = sched.phases[0].packets.size();
  ScheduleExecutor client(config, sched, nullptr);
  net::NetworkConfig fabric_config = config;
  net::Fabric fabric(fabric_config, client);
  client.bind(fabric);
  EXPECT_TRUE(fabric.run());
  const std::uint64_t expected = 16u * 15u * packets_per_message;
  EXPECT_EQ(fabric.stats().packets_delivered, expected);
  EXPECT_EQ(client.final_deliveries(), expected);
  EXPECT_EQ(client.completion_cycles(), fabric.stats().last_delivery);
}

TEST(DirectSchedule, DeterministicModeSetsRoutingMode) {
  const auto config = make_config("4x4x4");
  ScheduleExecutor client(config, build_direct_schedule(config, 64, DirectTuning::dr()),
                          nullptr);
  net::InjectDesc desc;
  ASSERT_TRUE(client.next_packet(0, desc));
  EXPECT_EQ(desc.mode, net::RoutingMode::kDeterministic);
}

}  // namespace
}  // namespace bgl::coll
