// Resumable sweeps: parsing the partial CSV/JSON output of an interrupted
// run, planning which slots it already covers, and the headline contract —
// a resumed run's merged output is byte-identical to the file an
// uninterrupted run would have written.
#include "src/harness/resume.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/harness/runner.hpp"
#include "src/harness/sink.hpp"
#include "src/harness/sweep.hpp"
#include "src/topology/torus.hpp"

namespace bgl::harness {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Six quick points across two strategies and three shapes.
Sweep small_sweep() {
  Sweep sweep;
  for (const char* spec : {"4x4", "2x2x2", "8"}) {
    for (const auto kind :
         {coll::StrategyKind::kAdaptiveRandom, coll::StrategyKind::kTwoPhase}) {
      coll::AlltoallOptions options;
      options.net.shape = topo::parse_shape(spec);
      options.msg_bytes = 64;
      sweep.add(kind, options, std::string(spec) + "/" +
                (kind == coll::StrategyKind::kAdaptiveRandom ? "AR" : "TPS"));
    }
  }
  return sweep;
}

class ResumeFiles : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : cleanup_) std::remove(path.c_str());
  }

  std::string temp(const std::string& stem) {
    const std::string path = testing::TempDir() + stem;
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

// --- parsers ---------------------------------------------------------------

TEST(ResumeParse, CsvRoundTripIncludingQuotedCells) {
  const std::string text =
      "label,repeat,seed\n"
      "\"a,b\",0,42\n"
      "plain,1,\"7\"\n"
      "\"quote\"\"inside\",2,9\n"
      "\"multi\nline\",3,11\n";
  const ResumeLog log = parse_result_csv(text);
  ASSERT_EQ(log.columns, (std::vector<std::string>{"label", "repeat", "seed"}));
  ASSERT_EQ(log.rows.size(), 4u);
  EXPECT_EQ(log.rows[0][0], "a,b");
  EXPECT_EQ(log.rows[1][2], "7");
  EXPECT_EQ(log.rows[2][0], "quote\"inside");
  EXPECT_EQ(log.rows[3][0], "multi\nline");
}

TEST(ResumeParse, CsvToleratesCrlfAndMissingFinalNewline) {
  const ResumeLog log = parse_result_csv("a,b\r\n1,2\r\n3,4");
  ASSERT_EQ(log.rows.size(), 2u);
  EXPECT_EQ(log.rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(ResumeParse, CsvRejectsBrokenInput) {
  EXPECT_THROW(parse_result_csv("a,b\n1,2,3\n"), std::runtime_error);
  EXPECT_THROW(parse_result_csv("a,b\n\"unterminated,2\n"), std::runtime_error);
  EXPECT_THROW(parse_result_csv(""), std::runtime_error);
}

TEST(ResumeParse, JsonRejectsBrokenInput) {
  EXPECT_THROW(parse_result_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_result_json("[{\"a\": 1}"), std::runtime_error);
  EXPECT_THROW(parse_result_json("[{\"a\": 1},\n{\"b\": 2}]"),
               std::runtime_error);  // rows disagree on keys
}

TEST_F(ResumeFiles, JsonSinkOutputRoundTrips) {
  // Parse exactly what JsonSink writes: numbers unquoted, strings escaped.
  const std::string path = temp("resume_roundtrip.json");
  {
    JsonSink sink(path);
    sink.begin({"label", "value", "note"});
    sink.row({"4x4/AR", "12.5", "has \"quotes\" and ,commas"});
    sink.row({"2x2x2/TPS", "7", "tab\there"});
    sink.end();
  }
  const ResumeLog log = parse_result_json(slurp(path));
  ASSERT_EQ(log.columns,
            (std::vector<std::string>{"label", "value", "note"}));
  ASSERT_EQ(log.rows.size(), 2u);
  EXPECT_EQ(log.rows[0][0], "4x4/AR");
  EXPECT_EQ(log.rows[0][1], "12.5");
  EXPECT_EQ(log.rows[0][2], "has \"quotes\" and ,commas");
  EXPECT_EQ(log.rows[1][2], "tab\there");
}

TEST_F(ResumeFiles, LoadPicksParserByExtension) {
  const std::string csv = temp("resume_load.csv");
  const std::string json = temp("resume_load.json");
  std::ofstream(csv) << "a,b\n1,2\n";
  std::ofstream(json) << "[\n  {\"a\": 1, \"b\": 2}\n]\n";
  EXPECT_EQ(load_resume_log(csv).rows.size(), 1u);
  EXPECT_EQ(load_resume_log(json).rows.size(), 1u);
  EXPECT_THROW(load_resume_log(testing::TempDir() + "resume_missing.csv"),
               std::runtime_error);
}

// --- planning --------------------------------------------------------------

/// The full per-run CSV of `sweep` under `options`, as a parsed log.
ResumeLog full_log(const Sweep& sweep, const SweepOptions& options,
                   std::vector<SimResult>* results_out = nullptr) {
  auto results = sweep.run(options);
  std::ostringstream text;
  ResumeLog log;
  log.columns = result_columns(false);
  for (const auto& result : results) log.rows.push_back(result_cells(result));
  if (results_out != nullptr) *results_out = std::move(results);
  return log;
}

TEST(ResumePlanTest, CompleteLogSkipsEverySlot) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;
  const ResumeLog log = full_log(sweep, options);
  const ResumePlan plan = plan_resume(log, sweep, options);
  EXPECT_EQ(plan.reused, sweep.size());
  for (std::size_t slot = 0; slot < plan.skip.size(); ++slot) {
    EXPECT_TRUE(plan.skip[slot]) << "slot " << slot;
    EXPECT_EQ(plan.saved[slot], log.rows[slot]);
  }
}

TEST(ResumePlanTest, UndrainedRowsAreRerun) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;
  ResumeLog log = full_log(sweep, options);
  const std::size_t drained_col = 10;  // see result_columns()
  ASSERT_EQ(result_columns(false)[drained_col], "drained");
  log.rows[2][drained_col] = "0";
  const ResumePlan plan = plan_resume(log, sweep, options);
  EXPECT_EQ(plan.reused, sweep.size() - 1);
  EXPECT_FALSE(plan.skip[2]);
}

TEST(ResumePlanTest, ChangedBaseSeedRerunsEverything) {
  // The seed is part of the slot identity, so a stale file from a different
  // --seed contributes nothing rather than corrupting the merged output.
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;
  const ResumeLog log = full_log(sweep, options);
  SweepOptions reseeded = options;
  reseeded.base_seed = 999;
  const ResumePlan plan = plan_resume(log, sweep, reseeded);
  EXPECT_EQ(plan.reused, 0u);
}

TEST(ResumePlanTest, RejectsNonPerRunSchema) {
  const auto sweep = small_sweep();
  ResumeLog log;
  log.columns = aggregate_columns();
  EXPECT_THROW(plan_resume(log, sweep, SweepOptions{}), std::runtime_error);
  log.columns = result_columns(true);  // host-timing schema
  EXPECT_THROW(plan_resume(log, sweep, SweepOptions{}), std::runtime_error);
}

TEST(ResumePlanTest, SkipSlotsMustMatchSlotCount) {
  const auto sweep = small_sweep();
  SweepOptions options;
  std::vector<bool> wrong(sweep.size() + 1, false);
  options.skip_slots = &wrong;
  EXPECT_THROW(sweep.run(options), std::invalid_argument);
}

TEST(ResumePlanTest, SkippedSlotsComeBackUnranWithTheirSeed) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;
  std::vector<bool> skip(sweep.size(), false);
  skip[1] = skip[4] = true;
  options.skip_slots = &skip;
  const auto results = sweep.run(options);
  ASSERT_EQ(results.size(), sweep.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].ran, !skip[i]) << "slot " << i;
    EXPECT_EQ(results[i].seed, derive_seed(options.base_seed, i));
  }
}

// --- the headline contract -------------------------------------------------

TEST_F(ResumeFiles, ResumedRunWritesByteIdenticalOutput) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;

  // The uninterrupted run's files: the gold standard.
  const std::string full_csv = temp("resume_full.csv");
  const std::string full_json = temp("resume_full.json");
  {
    const auto results = sweep.run(options);
    CsvSink csv(full_csv);
    JsonSink json(full_json);
    MultiSink sinks;
    sinks.attach(&csv);
    sinks.attach(&json);
    emit(results, sinks);
  }

  // An "interrupted" run: only rows 0, 2 and 5 made it to disk (out of
  // order, as a parallel writer might have flushed them).
  const ResumeLog full = parse_result_csv(slurp(full_csv));
  const std::string partial_csv = temp("resume_partial.csv");
  {
    CsvSink csv(partial_csv);
    csv.begin(full.columns);
    for (const std::size_t i : {5u, 0u, 2u}) csv.row(full.rows[i]);
    csv.end();
  }

  // Resume: plan against the partial file, run only the missing slots,
  // splice and compare bytes.
  const ResumePlan plan =
      plan_resume(load_resume_log(partial_csv), sweep, options);
  EXPECT_EQ(plan.reused, 3u);
  SweepOptions resumed = options;
  resumed.skip_slots = &plan.skip;
  const auto results = sweep.run(resumed);

  const std::string merged_csv = temp("resume_merged.csv");
  const std::string merged_json = temp("resume_merged.json");
  {
    CsvSink csv(merged_csv);
    JsonSink json(merged_json);
    MultiSink sinks;
    sinks.attach(&csv);
    sinks.attach(&json);
    emit_merged(results, plan, options.repeats, sinks);
  }
  EXPECT_EQ(slurp(merged_csv), slurp(full_csv));
  EXPECT_EQ(slurp(merged_json), slurp(full_json));
  EXPECT_FALSE(slurp(full_csv).empty());
}

TEST_F(ResumeFiles, ResumeComposesWithSharding) {
  // A killed shard resumes from its own partial file and still produces the
  // exact bytes the full shard run would have written.
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;
  options.shard_index = 1;
  options.shard_count = 2;

  const std::string full_csv = temp("resume_shard_full.csv");
  {
    const auto results = sweep.run(options);
    CsvSink csv(full_csv);
    emit(results, csv);
  }

  const ResumeLog full = parse_result_csv(slurp(full_csv));
  ASSERT_GE(full.rows.size(), 2u);
  const std::string partial_csv = temp("resume_shard_partial.csv");
  {
    CsvSink csv(partial_csv);
    csv.begin(full.columns);
    csv.row(full.rows[0]);
    csv.end();
  }

  const ResumePlan plan =
      plan_resume(load_resume_log(partial_csv), sweep, options);
  EXPECT_EQ(plan.reused, 1u);
  SweepOptions resumed = options;
  resumed.skip_slots = &plan.skip;
  const auto results = sweep.run(resumed);

  const std::string merged_csv = temp("resume_shard_merged.csv");
  {
    CsvSink csv(merged_csv);
    emit_merged(results, plan, options.repeats, csv);
  }
  EXPECT_EQ(slurp(merged_csv), slurp(full_csv));
}

}  // namespace
}  // namespace bgl::harness
