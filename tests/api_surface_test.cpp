// Coverage for small public API surfaces not exercised elsewhere: direction
// helpers, packet route state, name tables, and the remaining model entry
// points.
#include <gtest/gtest.h>

#include "src/coll/alltoall.hpp"
#include "src/model/peak.hpp"
#include "src/model/predict.hpp"
#include "src/network/packet.hpp"
#include "src/topology/torus.hpp"

namespace bgl {
namespace {

TEST(Direction, IndexRoundTrip) {
  for (int i = 0; i < topo::kMaxDirections; ++i) {
    const auto dir = topo::Direction::from_index(i);
    EXPECT_EQ(dir.index(), i);
    EXPECT_TRUE(dir.sign == 1 || dir.sign == -1);
    EXPECT_GE(dir.axis, 0);
    EXPECT_LT(dir.axis, topo::kMaxAxes);
  }
  EXPECT_EQ((topo::Direction{topo::kX, +1}).index(), 0);
  EXPECT_EQ((topo::Direction{topo::kZ, -1}).index(), 5);
  EXPECT_EQ((topo::Direction{topo::kW, -1}).index(), 7);
}

TEST(ShapeToString, RoundTripsThroughParse) {
  for (const char* spec :
       {"8x8x8", "8x8x2M", "4Mx4x2M", "16", "8x32", "40x32x16", "2M", "4x4x4x4",
        "8x8x1", "2x3Mx4x5M"}) {
    const auto shape = topo::parse_shape(spec);
    EXPECT_EQ(topo::parse_shape(shape.to_string()), shape) << spec;
  }
}

TEST(Packet, RouteStateHelpers) {
  net::Packet packet;
  EXPECT_TRUE(packet.at_destination());
  EXPECT_EQ(packet.dim_order_axis(), -1);
  packet.hops = {0, -2, 1};
  EXPECT_FALSE(packet.at_destination());
  EXPECT_EQ(packet.dim_order_axis(), topo::kY) << "first non-zero axis in X,Y,Z order";
  packet.hops = {0, 0, 3};
  EXPECT_EQ(packet.dim_order_axis(), topo::kZ);
}

TEST(StrategyNames, AllDistinctAndNonEmpty) {
  const coll::StrategyKind kinds[] = {
      coll::StrategyKind::kMpi,        coll::StrategyKind::kAdaptiveRandom,
      coll::StrategyKind::kDeterministic, coll::StrategyKind::kThrottled,
      coll::StrategyKind::kTwoPhase,   coll::StrategyKind::kVirtualMesh,
      coll::StrategyKind::kBest,
  };
  std::set<std::string> names;
  for (const auto kind : kinds) {
    const auto name = coll::strategy_name(kind);
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 7u);
}

TEST(PeakModel, PerNodeBytesPerCycle) {
  const auto shape = topo::parse_shape("8x8x8");
  // factor 1: one payload byte per (wire_chunks * chunk_cycles) per pair.
  const double rate = model::peak_per_node_bytes_per_cycle(shape, 240.0, 8.0, 128);
  EXPECT_NEAR(rate, 240.0 / (8.0 * 128.0), 1e-12);
  // Degenerate single-line-of-one shape: no network, rate reported as 0.
  EXPECT_DOUBLE_EQ(model::peak_per_node_bytes_per_cycle(topo::parse_shape("1"), 1, 1, 128),
                   0.0);
}

TEST(Predict, PointToPointEquation1) {
  // T = alpha + (m + h) * C * beta + hops * L; check the size derivative.
  const double t1 = model::ptp_time_us(1000, 1.0, 3);
  const double t2 = model::ptp_time_us(2000, 1.0, 3);
  EXPECT_NEAR(t2 - t1, 1000 * 6.48e-3, 1e-9);
  // Contention multiplies the transfer term only.
  const double t4 = model::ptp_time_us(1000, 2.0, 3);
  EXPECT_GT(t4, t1);
  // More hops cost latency.
  EXPECT_GT(model::ptp_time_us(1000, 1.0, 10), model::ptp_time_us(1000, 1.0, 1));
}

TEST(PeakCyclesFor, MatchesManualComputation) {
  // 240 B direct = 208 B behind the 48 B header (8 chunks) + a 32 B tail
  // packet with the 16 B hardware header (2 chunks); 8x8x8 factor 1.0.
  const double peak = coll::peak_cycles_for(topo::parse_shape("8x8x8"), 240, 128);
  EXPECT_DOUBLE_EQ(peak, 512.0 * 1.0 * 10.0 * 128.0);
  // 1 B = one 64 B (2-chunk) packet.
  const double tiny = coll::peak_cycles_for(topo::parse_shape("8x8x8"), 1, 128);
  EXPECT_DOUBLE_EQ(tiny, 512.0 * 1.0 * 2.0 * 128.0);
}

TEST(Shape, LongestAxisTieGoesToX) {
  EXPECT_EQ(topo::parse_shape("16x16x8").longest_axis(), topo::kX);
  EXPECT_EQ(topo::parse_shape("8x16x16").longest_axis(), topo::kY);
}

TEST(AlltoallOptions, DefaultsAreThePaperConfiguration) {
  const coll::AlltoallOptions options;
  EXPECT_EQ(options.net.chunk_cycles, 128u);       // 0.25 B/cycle links
  EXPECT_EQ(options.net.max_packet_chunks, 8);     // 256 B packets
  EXPECT_EQ(options.net.vc_capacity_chunks, 32);   // 1 KB per VC
  EXPECT_EQ(options.net.dynamic_vcs, 2);           // BG/L's two dynamic VCs
  EXPECT_EQ(options.net.injection_fifos, 8);
  EXPECT_DOUBLE_EQ(options.net.cpu_links, 4.0);    // out-of-L1 core limit
  EXPECT_EQ(options.burst, 1);
  EXPECT_TRUE(options.reserved_fifos);
  EXPECT_EQ(options.credit_window, 0);
}

}  // namespace
}  // namespace bgl
