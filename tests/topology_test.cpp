#include "src/topology/torus.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bgl::topo {
namespace {

TEST(ParseShape, SingleDimensionLine) {
  const Shape s = parse_shape("8");
  EXPECT_EQ(s.dim[0], 8);
  EXPECT_EQ(s.dim[1], 1);
  EXPECT_EQ(s.dim[2], 1);
  EXPECT_TRUE(s.wrap[0]);
  EXPECT_FALSE(s.wrap[1]);  // extent-1 dims never wrap
  EXPECT_FALSE(s.wrap[2]);
  EXPECT_EQ(s.nodes(), 8);
}

TEST(ParseShape, ThreeDimensionalTorus) {
  const Shape s = parse_shape("40x32x16");
  EXPECT_EQ(s.dim[0], 40);
  EXPECT_EQ(s.dim[1], 32);
  EXPECT_EQ(s.dim[2], 16);
  EXPECT_TRUE(s.full_torus());
  EXPECT_EQ(s.nodes(), 20480);
}

TEST(ParseShape, MeshSuffix) {
  const Shape s = parse_shape("8x8x2M");
  EXPECT_TRUE(s.wrap[0]);
  EXPECT_TRUE(s.wrap[1]);
  EXPECT_FALSE(s.wrap[2]);
  EXPECT_FALSE(s.full_torus());
  EXPECT_EQ(s.to_string(), "8x8x2M");
}

TEST(ParseShape, RejectsMalformed) {
  EXPECT_THROW(parse_shape(""), std::invalid_argument);
  EXPECT_THROW(parse_shape("8x"), std::invalid_argument);
  EXPECT_THROW(parse_shape("axb"), std::invalid_argument);
  EXPECT_THROW(parse_shape("8x8x8x8x8"), std::invalid_argument);  // > kMaxAxes dims
  EXPECT_THROW(parse_shape("8-8"), std::invalid_argument);
  EXPECT_THROW(parse_shape("0x8"), std::invalid_argument);
  EXPECT_THROW(parse_shape("-4x8"), std::invalid_argument);
  EXPECT_THROW(parse_shape("8xM"), std::invalid_argument);
  // Node counts must fit int32: 2048^4 overflows.
  EXPECT_THROW(parse_shape("2048x2048x2048x2048"), std::invalid_argument);
}

TEST(ParseShape, DimensionalityIsWhatWasWritten) {
  EXPECT_EQ(parse_shape("64").axis_count(), 1);
  EXPECT_EQ(parse_shape("8x8").axis_count(), 2);
  EXPECT_EQ(parse_shape("8x8x1").axis_count(), 3);
  EXPECT_EQ(parse_shape("4x4x4x4").axis_count(), 4);
  EXPECT_EQ(parse_shape("4x4x4x4").directions(), 8);
  EXPECT_EQ(parse_shape("64").directions(), 2);
  // 2-D and 3-D-with-trailing-1 are distinct shapes with distinct strings.
  EXPECT_NE(parse_shape("8x8"), parse_shape("8x8x1"));
  EXPECT_EQ(parse_shape("8x8").to_string(), "8x8");
  EXPECT_EQ(parse_shape("8x8x1").to_string(), "8x8x1");
  EXPECT_EQ(parse_shape("4x4x4x4M").to_string(), "4x4x4x4M");
}

TEST(ParseShape, FourDimensionalTorus) {
  const Shape s = parse_shape("4x4x4x4");
  EXPECT_EQ(s.nodes(), 256);
  EXPECT_TRUE(s.full_torus());
  EXPECT_TRUE(s.symmetric());
  const Torus t{s};
  EXPECT_EQ(t.rank_of(Coord{{0, 0, 0, 1}}), 64);
  EXPECT_EQ(t.neighbor(0, Direction{kW, -1}), t.rank_of(Coord{{0, 0, 0, 3}}));
}

TEST(ShapeQueries, LongestAndSymmetry) {
  EXPECT_EQ(parse_shape("8x32x16").longest(), 32);
  EXPECT_EQ(parse_shape("8x32x16").longest_axis(), kY);
  EXPECT_TRUE(parse_shape("8x8x8").symmetric());
  EXPECT_TRUE(parse_shape("16x16").symmetric());
  EXPECT_TRUE(parse_shape("16").symmetric());
  EXPECT_FALSE(parse_shape("16x8x8").symmetric());
}

TEST(Torus, RankCoordRoundTrip) {
  const Torus t{parse_shape("5x3x4")};
  std::set<Rank> seen;
  for (int z = 0; z < 4; ++z) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 5; ++x) {
        const Coord c{{x, y, z}};
        const Rank r = t.rank_of(c);
        EXPECT_EQ(t.coord_of(r), c);
        seen.insert(r);
      }
    }
  }
  EXPECT_EQ(seen.size(), 60u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 59);
}

TEST(Torus, XMajorRankOrder) {
  // BG/L rank order: X varies fastest.
  const Torus t{parse_shape("4x4x4")};
  EXPECT_EQ(t.rank_of(Coord{{1, 0, 0}}), 1);
  EXPECT_EQ(t.rank_of(Coord{{0, 1, 0}}), 4);
  EXPECT_EQ(t.rank_of(Coord{{0, 0, 1}}), 16);
}

TEST(Torus, NeighborWraps) {
  const Torus t{parse_shape("4x4x4")};
  const Rank origin = t.rank_of(Coord{{0, 0, 0}});
  EXPECT_EQ(t.neighbor(origin, Direction{kX, +1}), t.rank_of(Coord{{1, 0, 0}}));
  EXPECT_EQ(t.neighbor(origin, Direction{kX, -1}), t.rank_of(Coord{{3, 0, 0}}));
  EXPECT_EQ(t.neighbor(origin, Direction{kZ, -1}), t.rank_of(Coord{{0, 0, 3}}));
}

TEST(Torus, NeighborMeshEdgeIsAbsent) {
  const Torus t{parse_shape("4Mx4x4")};
  const Rank origin = t.rank_of(Coord{{0, 1, 1}});
  EXPECT_EQ(t.neighbor(origin, Direction{kX, -1}), -1);
  EXPECT_NE(t.neighbor(origin, Direction{kX, +1}), -1);
  const Rank far_edge = t.rank_of(Coord{{3, 1, 1}});
  EXPECT_EQ(t.neighbor(far_edge, Direction{kX, +1}), -1);
}

TEST(Torus, SignedHopsMinimal) {
  const Torus t{parse_shape("8x8x8")};
  EXPECT_EQ(t.hops_signed(0, 3, kX), 3);
  EXPECT_EQ(t.hops_signed(0, 5, kX), -3);  // wrap is shorter
  EXPECT_EQ(t.hops_signed(0, 4, kX), 4);   // half-way tie prefers +
  EXPECT_EQ(t.hops_signed(6, 1, kX), 3);
  EXPECT_EQ(t.hops_signed(3, 3, kX), 0);
}

TEST(Torus, SignedHopsMesh) {
  const Torus t{parse_shape("8Mx8x8")};
  EXPECT_EQ(t.hops_signed(0, 5, kX), 5);  // no wrap available
  EXPECT_EQ(t.hops_signed(7, 2, kX), -5);
}

TEST(Torus, HalfwayTieDetection) {
  const Torus t{parse_shape("8x7x8M")};
  EXPECT_TRUE(t.is_halfway_tie(0, 4, kX));
  EXPECT_FALSE(t.is_halfway_tie(0, 3, kX));
  EXPECT_FALSE(t.is_halfway_tie(0, 3, kY));  // odd extent has no tie
  EXPECT_FALSE(t.is_halfway_tie(0, 4, kZ));  // mesh has no tie
}

TEST(Torus, DistanceIsSumOfAxisHops) {
  const Torus t{parse_shape("8x8x8")};
  const Rank a = t.rank_of(Coord{{0, 0, 0}});
  const Rank b = t.rank_of(Coord{{4, 5, 1}});
  EXPECT_EQ(t.distance(a, b), 4 + 3 + 1);
  EXPECT_EQ(t.distance(a, a), 0);
  EXPECT_EQ(t.distance(a, b), t.distance(b, a));
}

TEST(Torus, MeanHopsMatchesPaperEquation2) {
  // Torus of even extent E: mean hops = E/4 (the paper's M/4).
  EXPECT_DOUBLE_EQ(Torus{parse_shape("8x1x1")}.mean_hops(kX), 2.0);
  EXPECT_DOUBLE_EQ(Torus{parse_shape("16x1x1")}.mean_hops(kX), 4.0);
  EXPECT_DOUBLE_EQ(Torus{parse_shape("40x1x1")}.mean_hops(kX), 10.0);
  // Odd extent: (E^2-1)/(4E).
  EXPECT_DOUBLE_EQ(Torus{parse_shape("7x1x1")}.mean_hops(kX), 48.0 / 28.0);
  // Mesh of extent E: mean |i-j| over ordered pairs = (E^2-1)/(3E).
  EXPECT_DOUBLE_EQ(Torus{parse_shape("8M")}.mean_hops(kX), 63.0 / 24.0);
  // Extent-1 dims contribute nothing.
  EXPECT_DOUBLE_EQ(Torus{parse_shape("8")}.mean_hops(kY), 0.0);
}

class TorusPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TorusPropertyTest, MinimalHopsNeverExceedHalfExtent) {
  const Torus t{parse_shape(GetParam())};
  for (int a = 0; a < t.axis_count(); ++a) {
    const int extent = t.shape().dim[static_cast<std::size_t>(a)];
    for (int i = 0; i < extent; ++i) {
      for (int j = 0; j < extent; ++j) {
        const int h = t.hops(i, j, a);
        if (t.shape().wrap[static_cast<std::size_t>(a)]) {
          EXPECT_LE(h, extent / 2);
        } else {
          EXPECT_LE(h, extent - 1);
        }
        EXPECT_GE(h, 0);
        // Walking `hops_signed` steps from i lands on j.
        int pos = i;
        int steps = t.hops_signed(i, j, a);
        const int dir = steps > 0 ? 1 : -1;
        while (steps != 0) {
          pos = (pos + dir + extent) % extent;
          steps -= dir;
        }
        EXPECT_EQ(pos, j);
      }
    }
  }
}

TEST_P(TorusPropertyTest, NeighborIsInverse) {
  const Torus t{parse_shape(GetParam())};
  for (Rank r = 0; r < t.nodes(); ++r) {
    for (int d = 0; d < t.directions(); ++d) {
      const Direction dir = Direction::from_index(d);
      const Rank n = t.neighbor(r, dir);
      if (n < 0) continue;
      const Direction back{dir.axis, -dir.sign};
      EXPECT_EQ(t.neighbor(n, back), r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusPropertyTest,
                         ::testing::Values("8x8x8", "16x8x4", "8x2M", "5x3x7", "8Mx4x2M",
                                           "2x2x2", "16x16", "9", "12M", "6x4M",
                                           "3x4x5x2", "4x4x4x4M"));

}  // namespace
}  // namespace bgl::topo
