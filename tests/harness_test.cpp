// The parallel experiment harness: deterministic seeding, the worker pool,
// ordered result collection, exception propagation and the result sinks.
#include "src/harness/bench.hpp"
#include "src/harness/pool.hpp"
#include "src/harness/runner.hpp"
#include "src/harness/sink.hpp"
#include "src/harness/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace bgl::harness {
namespace {

// --- derive_seed -----------------------------------------------------------

TEST(DeriveSeed, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_EQ(derive_seed(42, 17), derive_seed(42, 17));
}

TEST(DeriveSeed, DistinctIndicesAndBasesDecorrelate) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {1ull, 2ull, 0xdeadbeefull}) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seeds.insert(derive_seed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);  // no collisions across the grid
}

TEST(DeriveSeed, IndexZeroIsNotTheBaseSeed) {
  for (std::uint64_t base : {0ull, 1ull, 7ull, ~0ull}) {
    EXPECT_NE(derive_seed(base, 0), base);
  }
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroAndNegativeClampToOneWorker) {
  EXPECT_EQ(ThreadPool(0).threads(), 1);
  EXPECT_EQ(ThreadPool(-3).threads(), 1);
}

TEST(ThreadPool, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not deadlock
}

TEST(ThreadPool, DispatchesHighestCostFirst) {
  // One worker, blocked on a gate while the costed tasks queue up; once the
  // gate opens the worker must drain them in descending-cost order.
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); });

  std::mutex order_mutex;
  std::vector<std::uint64_t> order;
  for (const std::uint64_t cost : {5ull, 500ull, 50ull, 500ull}) {
    pool.submit(
        [cost, &order, &order_mutex] {
          std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(cost);
        },
        cost);
  }
  gate.set_value();
  pool.wait();
  // Equal costs keep submission order (the first 500 before the second).
  EXPECT_EQ(order, (std::vector<std::uint64_t>{500, 500, 50, 5}));
}

// --- run_indexed / run_ordered ---------------------------------------------

TEST(Runner, OrderedResultsForAnyWorkerCount) {
  for (const int jobs : {1, 2, 8}) {
    const auto results =
        run_ordered(16, jobs, [](std::size_t index) { return index * index; });
    ASSERT_EQ(results.size(), 16u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i);
    }
  }
}

TEST(Runner, EmptyJobListIsANoOp) {
  bool ran = false;
  run_indexed(0, 8, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(run_ordered(0, 8, [](std::size_t i) { return i; }).empty());
}

TEST(Runner, LowestIndexExceptionWinsAndLaterJobsStillRun) {
  std::atomic<int> completed{0};
  try {
    run_indexed(8, 4, [&](std::size_t index) {
      if (index == 2 || index == 5) {
        throw std::runtime_error("job " + std::to_string(index));
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the job exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "job 2");
  }
  EXPECT_EQ(completed.load(), 6);  // non-throwing jobs all ran to completion
}

// --- Sweep -----------------------------------------------------------------

Sweep small_sweep() {
  Sweep sweep;
  for (const char* spec : {"4x4", "2x2x2", "8"}) {
    for (const std::uint64_t bytes : {32ull, 240ull}) {
      coll::AlltoallOptions options;
      options.net.shape = topo::parse_shape(spec);
      options.msg_bytes = bytes;
      sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
    }
  }
  return sweep;
}

/// The default machine-readable row excludes the host-timing columns, so it
/// is exactly what must be bit-identical across worker counts and shards.
std::vector<std::string> deterministic_cells(const SimResult& result) {
  return result_cells(result);
}

TEST(Sweep, ResultRowsAreBitIdenticalAcrossWorkerCounts) {
  const auto sweep = small_sweep();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;

  const auto a = sweep.run(serial);
  const auto b = sweep.run(parallel);
  ASSERT_EQ(a.size(), sweep.size());
  ASSERT_EQ(b.size(), sweep.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(deterministic_cells(a[i]), deterministic_cells(b[i])) << "job " << i;
  }
}

TEST(Sweep, PerJobSeedsAreDerivedFromBaseAndIndex) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;
  options.base_seed = 99;
  const auto results = sweep.run(options);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].seed, derive_seed(99, i));
  }
}

TEST(Sweep, EmptySweepReturnsEmptyResults) {
  const Sweep sweep;
  EXPECT_TRUE(sweep.run({}).empty());
}

TEST(Sweep, JobExceptionPropagatesAfterAllJobsRan) {
  // Job 1 is invalid (single-node all-to-all); run_alltoall throws and the
  // sweep must surface that exception rather than return a partial vector.
  Sweep sweep;
  coll::AlltoallOptions good;
  good.net.shape = topo::parse_shape("4x4");
  good.msg_bytes = 32;
  coll::AlltoallOptions bad;
  bad.net.shape = topo::parse_shape("1x1x1");
  bad.msg_bytes = 32;
  sweep.add(coll::StrategyKind::kAdaptiveRandom, good);
  sweep.add(coll::StrategyKind::kAdaptiveRandom, bad);
  SweepOptions options;
  options.jobs = 2;
  EXPECT_THROW(sweep.run(options), std::invalid_argument);
}

TEST(Sweep, AutoLabelsAndSchemaAgree) {
  const auto sweep = small_sweep();
  EXPECT_EQ(sweep.jobs()[0].label, topo::parse_shape("4x4").to_string() + "/32B/AR");
  const auto results = sweep.run({});
  const auto columns = result_columns();
  for (const auto& result : results) {
    EXPECT_EQ(result_cells(result).size(), columns.size());
  }
}

TEST(Sweep, JobsCarryNodesTimesBytesCostHints) {
  Sweep sweep;
  coll::AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4x4");
  options.msg_bytes = 240;
  sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
  options.msg_bytes = 0;  // floored so empty payloads still scale with nodes
  sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
  EXPECT_EQ(sweep.jobs()[0].cost, 64u * 240u);
  EXPECT_EQ(sweep.jobs()[1].cost, 64u);
}

TEST(Sweep, HostTimingColumnsAreOptIn) {
  const auto base = result_columns();
  const auto timed = result_columns(true);
  ASSERT_EQ(timed.size(), base.size() + 2);
  EXPECT_EQ(timed[timed.size() - 2], "wall_ms");
  EXPECT_EQ(timed.back(), "events_per_sec");
  SimResult result;
  EXPECT_EQ(result_cells(result).size(), base.size());
  EXPECT_EQ(result_cells(result, true).size(), timed.size());
}

// --- sharding ---------------------------------------------------------------

TEST(ShardRange, CoversEveryPointExactlyOnce) {
  for (const std::size_t points : {0u, 1u, 5u, 12u, 100u}) {
    for (const int count : {1, 2, 3, 7}) {
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (int i = 1; i <= count; ++i) {
        const auto range = shard_range(points, i, count);
        EXPECT_EQ(range.begin, expected_begin);  // contiguous, in order
        EXPECT_LE(range.begin, range.end);
        covered += range.size();
        expected_begin = range.end;
      }
      EXPECT_EQ(covered, points);
      EXPECT_EQ(expected_begin, points);
    }
  }
}

TEST(ShardRange, BalancedToWithinOnePoint) {
  for (int i = 1; i <= 3; ++i) {
    const auto range = shard_range(10, i, 3);
    EXPECT_GE(range.size(), 3u);
    EXPECT_LE(range.size(), 4u);
  }
}

TEST(ShardRange, RejectsInvalidSpecs) {
  EXPECT_THROW(shard_range(10, 0, 3), std::invalid_argument);
  EXPECT_THROW(shard_range(10, 4, 3), std::invalid_argument);
  EXPECT_THROW(shard_range(10, 1, 0), std::invalid_argument);
}

TEST(ParseShard, AcceptsWellFormedSpecs) {
  const auto spec = parse_shard("2/3");
  EXPECT_EQ(spec.index, 2);
  EXPECT_EQ(spec.count, 3);
  EXPECT_EQ(parse_shard("1/1").count, 1);
}

TEST(ParseShard, RejectsMalformedSpecsWithClearErrors) {
  for (const char* bad : {"a/b", "2", "", "1/", "/3", "1//3", "-1/3", "1/-3",
                          "0/3", "4/3", "1/0"}) {
    EXPECT_THROW(parse_shard(bad), std::runtime_error) << "'" << bad << "'";
  }
  try {
    parse_shard("0/3");
    FAIL() << "expected parse_shard to reject 0/3";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("1..N"), std::string::npos);
  }
}

TEST(Sweep, ShardResultsConcatenateToTheUnshardedRun) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 4;
  const auto full = sweep.run(options);

  std::vector<SimResult> concatenated;
  for (int i = 1; i <= 3; ++i) {
    auto shard_options = options;
    shard_options.shard_index = i;
    shard_options.shard_count = 3;
    auto part = sweep.run(shard_options);
    for (auto& result : part) concatenated.push_back(std::move(result));
  }
  ASSERT_EQ(concatenated.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].index, concatenated[i].index);
    EXPECT_EQ(full[i].seed, concatenated[i].seed);
    EXPECT_EQ(deterministic_cells(full[i]), deterministic_cells(concatenated[i]));
  }
}

TEST(Sweep, InvalidOptionsThrow) {
  const auto sweep = small_sweep();
  SweepOptions bad_repeats;
  bad_repeats.repeats = 0;
  EXPECT_THROW(sweep.run(bad_repeats), std::invalid_argument);
  SweepOptions bad_shard;
  bad_shard.shard_index = 3;
  bad_shard.shard_count = 2;
  EXPECT_THROW(sweep.run(bad_shard), std::invalid_argument);
}

// --- repeats ----------------------------------------------------------------

TEST(Sweep, RepeatsExpandPointMajorWithGlobalRunSeeds) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;
  options.base_seed = 7;
  options.repeats = 3;
  const auto results = sweep.run(options);
  ASSERT_EQ(results.size(), sweep.size() * 3);
  for (std::size_t slot = 0; slot < results.size(); ++slot) {
    const auto& result = results[slot];
    EXPECT_EQ(result.index, slot / 3);
    EXPECT_EQ(result.repeat, static_cast<int>(slot % 3));
    // Seed = derive_seed(base, global run index): what makes shard and
    // unsharded runs agree, and distinct repeats independent.
    EXPECT_EQ(result.seed, derive_seed(7, result.index * 3 +
                                              static_cast<std::size_t>(result.repeat)));
  }
}

TEST(Sweep, RepeatsOfOnePreserveTheLegacySeedMapping) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.base_seed = 42;
  options.repeats = 1;
  const auto results = sweep.run(options);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].seed, derive_seed(42, i));
  }
}

TEST(Sweep, RepeatedRunsAreDeterministicAcrossWorkerCounts) {
  Sweep sweep;
  coll::AlltoallOptions options;
  options.net.shape = topo::parse_shape("4x4");
  options.msg_bytes = 64;
  sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
  sweep.add(coll::StrategyKind::kTwoPhase, options);

  SweepOptions serial;
  serial.repeats = 4;
  serial.jobs = 1;
  auto parallel = serial;
  parallel.jobs = 8;
  const auto a = sweep.run(serial);
  const auto b = sweep.run(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(deterministic_cells(a[i]), deterministic_cells(b[i])) << "slot " << i;
  }
}

// --- sinks -----------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Sinks, CsvAndJsonCarryTheSameRows) {
  const std::string csv_path = testing::TempDir() + "harness_test_rows.csv";
  const std::string json_path = testing::TempDir() + "harness_test_rows.json";
  CsvSink csv(csv_path);
  JsonSink json(json_path);
  MultiSink multi;
  multi.attach(&csv);
  multi.attach(&json);
  EXPECT_FALSE(multi.empty());

  multi.begin({"label", "value", "note"});
  multi.row({"a", "1.5", "plain"});
  multi.row({"b", "-7", "needs,quoting"});
  multi.end();
  EXPECT_EQ(csv.rows_written(), 2u);
  EXPECT_EQ(json.rows_written(), 2u);

  const auto csv_text = slurp(csv_path);
  EXPECT_NE(csv_text.find("label,value,note"), std::string::npos);
  EXPECT_NE(csv_text.find("\"needs,quoting\""), std::string::npos);

  const auto json_text = slurp(json_path);
  EXPECT_NE(json_text.find("\"value\": 1.5"), std::string::npos);   // numeric: bare
  EXPECT_NE(json_text.find("\"value\": -7"), std::string::npos);
  EXPECT_NE(json_text.find("\"note\": \"plain\""), std::string::npos);
  EXPECT_EQ(json_text.front(), '[');
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

TEST(Sinks, RowWidthMismatchThrows) {
  const std::string path = testing::TempDir() + "harness_test_width.json";
  JsonSink json(path);
  json.begin({"a", "b"});
  EXPECT_THROW(json.row({"only-one"}), std::invalid_argument);
  json.end();
  std::remove(path.c_str());
}

// --- BenchContext ----------------------------------------------------------

TEST(BenchContext, CliRoundTrip) {
  const char* argv[] = {"bench",  "--jobs", "3",          "--seed",
                        "7",      "--full", "--budget",   "512",
                        "--csv",  "x.csv",  "--json",     "y.json"};
  util::Cli cli(static_cast<int>(std::size(argv)), argv);
  const auto ctx = BenchContext::from_cli(cli);
  EXPECT_EQ(ctx.sweep.jobs, 3);
  EXPECT_EQ(ctx.seed(), 7u);
  EXPECT_TRUE(ctx.full);
  EXPECT_EQ(ctx.node_budget, 512);
  EXPECT_EQ(ctx.csv_path, "x.csv");
  EXPECT_EQ(ctx.json_path, "y.json");
  EXPECT_EQ(ctx.sweep.repeats, 1);
  EXPECT_EQ(ctx.sweep.shard_index, 1);
  EXPECT_EQ(ctx.sweep.shard_count, 1);
  EXPECT_FALSE(ctx.host_timing);
}

TEST(BenchContext, CliRoundTripForShardingAndRepeats) {
  const char* argv[] = {"bench",     "--repeats", "4",     "--shard",
                        "2/3",       "--jobs",    "2",     "--host-timing",
                        "--progress"};
  util::Cli cli(static_cast<int>(std::size(argv)), argv);
  const auto ctx = BenchContext::from_cli(cli);
  EXPECT_EQ(ctx.sweep.repeats, 4);
  EXPECT_EQ(ctx.sweep.shard_index, 2);
  EXPECT_EQ(ctx.sweep.shard_count, 3);
  EXPECT_TRUE(ctx.host_timing);
  EXPECT_TRUE(ctx.sweep.progress);
}

// from_cli reports bad flags as `prog: error: ...` on stderr and exits with
// status 2 — the contract scripts and CI rely on.
void expect_cli_rejected(std::vector<const char*> argv, const char* pattern) {
  argv.insert(argv.begin(), "bench");
  EXPECT_EXIT(
      {
        util::Cli cli(static_cast<int>(argv.size()), argv.data());
        BenchContext::from_cli(cli);
      },
      ::testing::ExitedWithCode(2), pattern);
}

TEST(BenchContextDeathTest, ExplicitZeroJobsIsAnError) {
  expect_cli_rejected({"--jobs", "0"}, "error: .*--jobs");
}

TEST(BenchContextDeathTest, ZeroRepeatsIsAnError) {
  expect_cli_rejected({"--repeats", "0"}, "error: .*--repeats");
}

TEST(BenchContextDeathTest, MalformedShardSpecsAreErrors) {
  expect_cli_rejected({"--shard", "a/b"}, "error: .*shard");
  expect_cli_rejected({"--shard", "0/3"}, "error: .*shard");
  expect_cli_rejected({"--shard", "4/3"}, "error: .*shard");
}

TEST(BenchContextDeathTest, NonNumericSeedIsAnError) {
  expect_cli_rejected({"--seed", "12x"}, "error: .*--seed");
}

TEST(BenchContextDeathTest, NonPositiveTimeoutIsAnError) {
  expect_cli_rejected({"--timeout", "0"}, "error: .*--timeout");
  expect_cli_rejected({"--timeout", "-3"}, "error: .*--timeout");
}

TEST(BenchContextDeathTest, MalformedFaultSpecIsAnError) {
  expect_cli_rejected({"--faults", "link:2.0"}, "error: .*--faults");
  expect_cli_rejected({"--faults", "warp:0.5"}, "error: .*--faults");
}

TEST(BenchContext, FaultSpecReachesBaseOptions) {
  const char* argv[] = {"bench", "--faults", "link:0.02,drop:1e-4"};
  util::Cli cli(3, argv);
  const auto ctx = BenchContext::from_cli(cli);
  const auto options = ctx.base_options(topo::parse_shape("4x4"), 64);
  EXPECT_DOUBLE_EQ(options.net.faults.link_fail, 0.02);
  EXPECT_DOUBLE_EQ(options.net.faults.drop_prob, 1e-4);
  EXPECT_TRUE(options.net.faults.enabled());
}

// --- per-job wall-clock watchdog -------------------------------------------

TEST(SweepTimeout, WedgedJobIsKilledAndExcludedFromAggregates) {
  // One job far too big to finish inside the watchdog, surrounded by jobs
  // that finish in milliseconds. The sweep must complete, mark only the big
  // job as timed out (drained == false), and aggregate() must keep it out
  // of the statistics while the healthy points aggregate normally.
  Sweep sweep;
  coll::AlltoallOptions tiny;
  tiny.net.shape = topo::parse_shape("2x2x2");
  tiny.msg_bytes = 32;
  coll::AlltoallOptions huge;
  huge.net.shape = topo::parse_shape("10x10x10");
  huge.msg_bytes = 4096;
  sweep.add(coll::StrategyKind::kAdaptiveRandom, tiny);
  sweep.add(coll::StrategyKind::kAdaptiveRandom, huge);
  sweep.add(coll::StrategyKind::kAdaptiveRandom, tiny);

  SweepOptions options;
  options.jobs = 2;
  options.timeout_ms = 150.0;
  const auto results = sweep.run(options);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_TRUE(results[0].run.drained);
  EXPECT_FALSE(results[0].run.timed_out);
  EXPECT_FALSE(results[1].run.drained);
  EXPECT_TRUE(results[1].run.timed_out);
  EXPECT_TRUE(results[2].run.drained);
  EXPECT_FALSE(results[2].run.timed_out);

  const auto stats = aggregate(results);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].repeats_ok, 1);
  EXPECT_EQ(stats[1].repeats, 1);
  EXPECT_EQ(stats[1].repeats_ok, 0);  // failed run: not in the stats
  EXPECT_EQ(stats[2].repeats_ok, 1);
}

TEST(SweepTimeout, PerJobTimeoutOverridesTheSweepDefault) {
  // A job that already carries its own wall_timeout_ms keeps it.
  Sweep sweep;
  coll::AlltoallOptions options;
  options.net.shape = topo::parse_shape("2x2x2");
  options.msg_bytes = 32;
  options.wall_timeout_ms = 60'000.0;  // generous: the job must NOT time out
  sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
  SweepOptions sweep_options;
  sweep_options.jobs = 1;
  sweep_options.timeout_ms = 0.001;  // would kill the job if it applied
  const auto results = sweep.run(sweep_options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].run.drained);
  EXPECT_FALSE(results[0].run.timed_out);
}

}  // namespace
}  // namespace bgl::harness
