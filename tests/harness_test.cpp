// The parallel experiment harness: deterministic seeding, the worker pool,
// ordered result collection, exception propagation and the result sinks.
#include "src/harness/bench.hpp"
#include "src/harness/pool.hpp"
#include "src/harness/runner.hpp"
#include "src/harness/sink.hpp"
#include "src/harness/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace bgl::harness {
namespace {

// --- derive_seed -----------------------------------------------------------

TEST(DeriveSeed, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_EQ(derive_seed(42, 17), derive_seed(42, 17));
}

TEST(DeriveSeed, DistinctIndicesAndBasesDecorrelate) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {1ull, 2ull, 0xdeadbeefull}) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seeds.insert(derive_seed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);  // no collisions across the grid
}

TEST(DeriveSeed, IndexZeroIsNotTheBaseSeed) {
  for (std::uint64_t base : {0ull, 1ull, 7ull, ~0ull}) {
    EXPECT_NE(derive_seed(base, 0), base);
  }
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroAndNegativeClampToOneWorker) {
  EXPECT_EQ(ThreadPool(0).threads(), 1);
  EXPECT_EQ(ThreadPool(-3).threads(), 1);
}

TEST(ThreadPool, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not deadlock
}

// --- run_indexed / run_ordered ---------------------------------------------

TEST(Runner, OrderedResultsForAnyWorkerCount) {
  for (const int jobs : {1, 2, 8}) {
    const auto results =
        run_ordered(16, jobs, [](std::size_t index) { return index * index; });
    ASSERT_EQ(results.size(), 16u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i);
    }
  }
}

TEST(Runner, EmptyJobListIsANoOp) {
  bool ran = false;
  run_indexed(0, 8, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(run_ordered(0, 8, [](std::size_t i) { return i; }).empty());
}

TEST(Runner, LowestIndexExceptionWinsAndLaterJobsStillRun) {
  std::atomic<int> completed{0};
  try {
    run_indexed(8, 4, [&](std::size_t index) {
      if (index == 2 || index == 5) {
        throw std::runtime_error("job " + std::to_string(index));
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the job exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "job 2");
  }
  EXPECT_EQ(completed.load(), 6);  // non-throwing jobs all ran to completion
}

// --- Sweep -----------------------------------------------------------------

Sweep small_sweep() {
  Sweep sweep;
  for (const char* spec : {"4x4", "2x2x2", "8"}) {
    for (const std::uint64_t bytes : {32ull, 240ull}) {
      coll::AlltoallOptions options;
      options.net.shape = topo::parse_shape(spec);
      options.msg_bytes = bytes;
      sweep.add(coll::StrategyKind::kAdaptiveRandom, options);
    }
  }
  return sweep;
}

/// The machine-readable row minus the host-timing columns (wall_ms,
/// events_per_sec) — everything that must be bit-identical across worker
/// counts.
std::vector<std::string> deterministic_cells(const SimResult& result) {
  auto cells = result_cells(result);
  cells.resize(cells.size() - 2);
  return cells;
}

TEST(Sweep, ResultRowsAreBitIdenticalAcrossWorkerCounts) {
  const auto sweep = small_sweep();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;

  const auto a = sweep.run(serial);
  const auto b = sweep.run(parallel);
  ASSERT_EQ(a.size(), sweep.size());
  ASSERT_EQ(b.size(), sweep.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(deterministic_cells(a[i]), deterministic_cells(b[i])) << "job " << i;
  }
}

TEST(Sweep, PerJobSeedsAreDerivedFromBaseAndIndex) {
  const auto sweep = small_sweep();
  SweepOptions options;
  options.jobs = 2;
  options.base_seed = 99;
  const auto results = sweep.run(options);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].seed, derive_seed(99, i));
  }
}

TEST(Sweep, EmptySweepReturnsEmptyResults) {
  const Sweep sweep;
  EXPECT_TRUE(sweep.run({}).empty());
}

TEST(Sweep, JobExceptionPropagatesAfterAllJobsRan) {
  // Job 1 is invalid (single-node all-to-all); run_alltoall throws and the
  // sweep must surface that exception rather than return a partial vector.
  Sweep sweep;
  coll::AlltoallOptions good;
  good.net.shape = topo::parse_shape("4x4");
  good.msg_bytes = 32;
  coll::AlltoallOptions bad;
  bad.net.shape = topo::parse_shape("1x1x1");
  bad.msg_bytes = 32;
  sweep.add(coll::StrategyKind::kAdaptiveRandom, good);
  sweep.add(coll::StrategyKind::kAdaptiveRandom, bad);
  SweepOptions options;
  options.jobs = 2;
  EXPECT_THROW(sweep.run(options), std::invalid_argument);
}

TEST(Sweep, AutoLabelsAndSchemaAgree) {
  const auto sweep = small_sweep();
  EXPECT_EQ(sweep.jobs()[0].label, topo::parse_shape("4x4").to_string() + "/32B/AR");
  const auto results = sweep.run({});
  const auto columns = result_columns();
  for (const auto& result : results) {
    EXPECT_EQ(result_cells(result).size(), columns.size());
  }
}

// --- sinks -----------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Sinks, CsvAndJsonCarryTheSameRows) {
  const std::string csv_path = testing::TempDir() + "harness_test_rows.csv";
  const std::string json_path = testing::TempDir() + "harness_test_rows.json";
  CsvSink csv(csv_path);
  JsonSink json(json_path);
  MultiSink multi;
  multi.attach(&csv);
  multi.attach(&json);
  EXPECT_FALSE(multi.empty());

  multi.begin({"label", "value", "note"});
  multi.row({"a", "1.5", "plain"});
  multi.row({"b", "-7", "needs,quoting"});
  multi.end();
  EXPECT_EQ(csv.rows_written(), 2u);
  EXPECT_EQ(json.rows_written(), 2u);

  const auto csv_text = slurp(csv_path);
  EXPECT_NE(csv_text.find("label,value,note"), std::string::npos);
  EXPECT_NE(csv_text.find("\"needs,quoting\""), std::string::npos);

  const auto json_text = slurp(json_path);
  EXPECT_NE(json_text.find("\"value\": 1.5"), std::string::npos);   // numeric: bare
  EXPECT_NE(json_text.find("\"value\": -7"), std::string::npos);
  EXPECT_NE(json_text.find("\"note\": \"plain\""), std::string::npos);
  EXPECT_EQ(json_text.front(), '[');
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

TEST(Sinks, RowWidthMismatchThrows) {
  const std::string path = testing::TempDir() + "harness_test_width.json";
  JsonSink json(path);
  json.begin({"a", "b"});
  EXPECT_THROW(json.row({"only-one"}), std::invalid_argument);
  json.end();
  std::remove(path.c_str());
}

// --- BenchContext ----------------------------------------------------------

TEST(BenchContext, CliRoundTrip) {
  const char* argv[] = {"bench",  "--jobs", "3",          "--seed",
                        "7",      "--full", "--budget",   "512",
                        "--csv",  "x.csv",  "--json",     "y.json"};
  util::Cli cli(static_cast<int>(std::size(argv)), argv);
  const auto ctx = BenchContext::from_cli(cli);
  EXPECT_EQ(ctx.sweep.jobs, 3);
  EXPECT_EQ(ctx.seed(), 7u);
  EXPECT_TRUE(ctx.full);
  EXPECT_EQ(ctx.node_budget, 512);
  EXPECT_EQ(ctx.csv_path, "x.csv");
  EXPECT_EQ(ctx.json_path, "y.json");
}

}  // namespace
}  // namespace bgl::harness
