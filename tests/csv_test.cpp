#include "src/trace/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace bgl::trace {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/bgl_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"shape", "strategy", "pct"});
    csv.row({"8x8x8", "AR", "96.5"});
    csv.row({"8x32x16", "TPS", "87.4"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path_), "shape,strategy,pct\n8x8x8,AR,96.5\n8x32x16,TPS,87.4\n");
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST(CsvEscape, Rfc4180) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

}  // namespace
}  // namespace bgl::trace
