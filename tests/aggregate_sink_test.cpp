// The --repeats aggregation path: summarize() against hand-computed
// statistics, the R == 1 degenerate case, exclusion of failed repeats, and
// the guarantee that the emitted rows are NaN-free even when every repeat of
// a point failed.
#include "src/harness/sink.hpp"
#include "src/harness/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bgl::harness {
namespace {

// --- summarize ---------------------------------------------------------------

TEST(Summarize, MatchesHandComputedStatistics) {
  // {2, 4, 6, 8}: mean 5, population variance (9 + 1 + 1 + 9) / 4 = 5.
  const auto stats = summarize({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.max, 8.0);
  EXPECT_DOUBLE_EQ(stats.stddev, std::sqrt(5.0));
}

TEST(Summarize, OrderOfSamplesDoesNotMatter) {
  const auto a = summarize({8.0, 2.0, 6.0, 4.0});
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.mean, 5.0);
  EXPECT_DOUBLE_EQ(a.max, 8.0);
  EXPECT_DOUBLE_EQ(a.stddev, std::sqrt(5.0));
}

TEST(Summarize, SingleSampleDegeneratesToZeroSpread) {
  const auto stats = summarize({42.5});
  EXPECT_DOUBLE_EQ(stats.min, 42.5);
  EXPECT_DOUBLE_EQ(stats.mean, 42.5);
  EXPECT_DOUBLE_EQ(stats.max, 42.5);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(Summarize, EmptySampleSetIsAllZerosNotNaN) {
  const auto stats = summarize({});
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_FALSE(std::isnan(stats.mean));
}

// --- aggregate ---------------------------------------------------------------

SimResult make_result(std::size_t index, int repeat, double elapsed_us,
                      bool drained) {
  SimResult result;
  result.index = index;
  result.repeat = repeat;
  result.ran = true;
  result.label = "point-" + std::to_string(index);
  result.run.strategy = "AR";
  result.run.shape = topo::parse_shape("4x4");
  result.run.msg_bytes = 64;
  result.run.elapsed_us = elapsed_us;
  result.run.percent_peak = elapsed_us / 2.0;
  result.run.per_node_mbps = elapsed_us * 3.0;
  result.run.drained = drained;
  return result;
}

TEST(Aggregate, OnePointPerSweepIndexWithHandCheckedStats) {
  const std::vector<SimResult> runs = {
      make_result(0, 0, 2.0, true),  make_result(0, 1, 4.0, true),
      make_result(0, 2, 6.0, true),  make_result(0, 3, 8.0, true),
      make_result(1, 0, 10.0, true), make_result(1, 1, 10.0, true),
  };
  const auto points = aggregate(runs);
  ASSERT_EQ(points.size(), 2u);

  EXPECT_EQ(points[0].index, 0u);
  EXPECT_EQ(points[0].label, "point-0");
  EXPECT_EQ(points[0].repeats, 4);
  EXPECT_EQ(points[0].repeats_ok, 4);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.mean, 5.0);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.stddev, std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(points[0].percent_peak.mean, 2.5);
  EXPECT_DOUBLE_EQ(points[0].per_node_mbps.mean, 15.0);

  EXPECT_EQ(points[1].repeats, 2);
  EXPECT_DOUBLE_EQ(points[1].elapsed_us.min, 10.0);
  EXPECT_DOUBLE_EQ(points[1].elapsed_us.max, 10.0);
  EXPECT_DOUBLE_EQ(points[1].elapsed_us.stddev, 0.0);
}

TEST(Aggregate, SingleRepeatIsTheDegenerateCase) {
  const auto points = aggregate({make_result(0, 0, 7.5, true)});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].repeats, 1);
  EXPECT_EQ(points[0].repeats_ok, 1);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.min, 7.5);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.mean, 7.5);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.max, 7.5);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.stddev, 0.0);
}

TEST(Aggregate, FailedRepeatsAreExcludedFromTheStatistics) {
  // The failed (non-drained) repeat reports elapsed 0 — including it would
  // drag min/mean toward 0; the stats must come from the two good runs only.
  const auto points = aggregate({
      make_result(0, 0, 4.0, true),
      make_result(0, 1, 0.0, false),
      make_result(0, 2, 6.0, true),
  });
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].repeats, 3);
  EXPECT_EQ(points[0].repeats_ok, 2);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.min, 4.0);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.mean, 5.0);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.max, 6.0);
}

TEST(Aggregate, AllRepeatsFailedYieldsZeroStatsNotNaN) {
  const auto points = aggregate({
      make_result(0, 0, 0.0, false),
      make_result(0, 1, 0.0, false),
  });
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].repeats, 2);
  EXPECT_EQ(points[0].repeats_ok, 0);
  EXPECT_DOUBLE_EQ(points[0].elapsed_us.mean, 0.0);
  for (const auto& cell : aggregate_cells(points[0])) {
    EXPECT_EQ(cell.find("nan"), std::string::npos) << cell;
    EXPECT_EQ(cell.find("inf"), std::string::npos) << cell;
  }
}

TEST(Aggregate, EmptyInputYieldsNoPoints) {
  EXPECT_TRUE(aggregate({}).empty());
}

// --- the emitted schema ------------------------------------------------------

TEST(AggregateSchema, CellsMatchColumnsOneToOne) {
  const auto columns = aggregate_columns();
  const auto points = aggregate({make_result(0, 0, 7.5, true)});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(aggregate_cells(points[0]).size(), columns.size());
  // Every metric carries the four statistics, suffixed consistently.
  for (const char* metric : {"elapsed_us", "percent_peak", "per_node_mbps"}) {
    for (const char* suffix : {"_min", "_mean", "_max", "_stddev"}) {
      const std::string want = std::string(metric) + suffix;
      EXPECT_NE(std::find(columns.begin(), columns.end(), want), columns.end())
          << want;
    }
  }
}

TEST(AggregateSchema, EmitWritesOneRowPerPointAndNoNaN) {
  const std::string path = testing::TempDir() + "aggregate_sink_test.csv";
  const auto points = aggregate({
      make_result(0, 0, 2.0, true),
      make_result(0, 1, 4.0, true),
      make_result(1, 0, 0.0, false),
  });
  {
    CsvSink csv(path);
    emit_aggregate(points, csv);
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  const std::string text = out.str();
  EXPECT_NE(text.find("elapsed_us_stddev"), std::string::npos);
  EXPECT_NE(text.find("repeats_ok"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bgl::harness
