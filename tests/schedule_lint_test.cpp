// Static schedule validation: every registered strategy must lint clean on
// the standard shape matrix (fault-free and under a fault plan), and the
// linter must reject the seeded-bad schedules — a dropped pair and a
// dependency cycle — plus FIFO-budget violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/coll/registry.hpp"
#include "src/coll/schedule_lint.hpp"

namespace bgl::coll {
namespace {

bool has_issue(const LintReport& report, const std::string& check) {
  return std::any_of(report.issues.begin(), report.issues.end(),
                     [&](const LintIssue& i) { return i.check == check; });
}

AlltoallOptions options_for(const char* shape, std::uint64_t msg_bytes) {
  AlltoallOptions options;
  options.net.shape = topo::parse_shape(shape);
  options.net.seed = 42;
  options.msg_bytes = msg_bytes;
  return options;
}

TEST(ScheduleLint, EveryStrategyLintsCleanFaultFree) {
  for (const char* shape : {"4x4x4", "4x4x8", "2x4x4", "8x4x2"}) {
    for (const StrategyInfo& info : strategy_registry()) {
      SCOPED_TRACE(std::string(info.name) + " on " + shape);
      const AlltoallOptions options = options_for(shape, 300);
      const CommSchedule sched =
          build_schedule(info.kind, options.net, options.msg_bytes, options, nullptr);
      const LintReport report = schedule_lint(sched, nullptr);
      EXPECT_TRUE(report.ok()) << report.to_string();
      const auto nodes = static_cast<std::uint64_t>(options.net.shape.nodes());
      EXPECT_EQ(report.covered_pairs, nodes * (nodes - 1));
      EXPECT_GE(report.transfers, static_cast<std::int64_t>(nodes * (nodes - 1)));
    }
  }
}

TEST(ScheduleLint, EveryStrategyLintsCleanUnderFaults) {
  for (const StrategyInfo& info : strategy_registry()) {
    SCOPED_TRACE(info.name);
    AlltoallOptions options = options_for("4x4x4", 300);
    options.net.faults.link_fail = 0.05;
    options.net.faults.node_fail = 2;
    options.net.faults.seed = 7;
    const net::FaultPlan plan(options.net, options.net.shape);
    ASSERT_GT(plan.dead_link_count() + plan.dead_node_count(), 0u);
    const CommSchedule sched =
        build_schedule(info.kind, options.net, options.msg_bytes, options, &plan);
    const LintReport report = schedule_lint(sched, &plan);
    EXPECT_TRUE(report.ok()) << report.to_string();
    const auto nodes = static_cast<std::uint64_t>(options.net.shape.nodes());
    EXPECT_LT(report.covered_pairs, nodes * (nodes - 1));
    EXPECT_GT(report.covered_pairs, 0u);
  }
}

TEST(ScheduleLint, CoverageMatchesExecutorReachability) {
  // The lint's covered-pair count must agree with the executor's
  // mark_reachable (both derive from CommSchedule::pair_covered).
  AlltoallOptions options = options_for("4x4x4", 64);
  options.net.faults.node_fail = 3;
  options.net.faults.seed = 11;
  const net::FaultPlan plan(options.net, options.net.shape);
  for (const StrategyInfo& info : strategy_registry()) {
    SCOPED_TRACE(info.name);
    const CommSchedule sched =
        build_schedule(info.kind, options.net, options.msg_bytes, options, &plan);
    const LintReport report = schedule_lint(sched, &plan);
    EXPECT_TRUE(report.ok()) << report.to_string();
    ScheduleExecutor exec(options.net, sched, nullptr, &plan);
    PairMask mask(sched.nodes());
    exec.mark_reachable(mask);
    std::uint64_t reachable = 0;
    for (topo::Rank s = 0; s < sched.nodes(); ++s) {
      for (topo::Rank d = 0; d < sched.nodes(); ++d) {
        if (s != d && mask.reachable(s, d)) ++reachable;
      }
    }
    EXPECT_EQ(report.covered_pairs, reachable);
  }
}

/// A minimal hand-built explicit schedule on two nodes: each node sends its
/// own block to the other in one phase. Valid as written; the negative tests
/// below break it in targeted ways.
CommSchedule tiny_explicit_schedule() {
  CommSchedule sched;
  sched.shape = topo::parse_shape("2x1x1");
  sched.torus = topo::Torus(sched.shape);
  sched.msg_bytes = 64;
  sched.form = StreamForm::kExplicit;
  PhaseSpec phase;
  phase.packets = rt::packetize(sched.msg_bytes, rt::WireFormat::direct());
  sched.phases.push_back(phase);
  sched.fifo_classes.push_back(FifoClass{});
  SendOp op;
  op.flags = SendOp::kFinalizeSelf;
  op.dst = 1;
  sched.ops.push_back(op);
  op.dst = 0;
  sched.ops.push_back(op);
  sched.op_begin = {0, 1, 2};
  return sched;
}

TEST(ScheduleLint, TinyExplicitScheduleIsClean) {
  const LintReport report = schedule_lint(tiny_explicit_schedule(), nullptr);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.transfers, 2);
  EXPECT_EQ(report.covered_pairs, 2u);
}

TEST(ScheduleLint, RejectsDroppedPair) {
  // Node 1 never sends to node 0, but the schedule still claims full
  // coverage (empty mask = all pairs): the linter must flag the hole.
  CommSchedule sched = tiny_explicit_schedule();
  sched.ops.pop_back();
  sched.op_begin = {0, 1, 1};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "coverage")) << report.to_string();
  EXPECT_EQ(report.covered_pairs, 2u);  // claimed, not carried
  EXPECT_EQ(report.transfers, 1);
}

TEST(ScheduleLint, RejectsDuplicatedPair) {
  CommSchedule sched = tiny_explicit_schedule();
  SendOp dup = sched.ops[0];
  sched.ops.insert(sched.ops.begin() + 1, dup);
  sched.op_begin = {0, 2, 3};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "coverage")) << report.to_string();
}

TEST(ScheduleLint, RejectsDependencyCycle) {
  CommSchedule sched = tiny_explicit_schedule();
  sched.extra_deps = {{0, 1}, {1, 0}};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "deps")) << report.to_string();
}

TEST(ScheduleLint, RejectsDependenciesOnExplicitForm) {
  // Even an acyclic, in-range dependency set is unenforceable on an
  // explicit-form schedule: the executor has no per-transfer emission point
  // to gate, so the linter must flag the constraint as non-executable.
  CommSchedule sched = tiny_explicit_schedule();
  sched.extra_deps = {{0, 1}};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "deps")) << report.to_string();
}

TEST(ScheduleLint, RejectsDependenciesOnRelaySchedule) {
  // TPS relays through intermediates; extra_deps on such a schedule are
  // declared-but-unenforceable and must be rejected, not silently ignored.
  const AlltoallOptions options = options_for("4x4x4", 300);
  CommSchedule sched =
      build_schedule(StrategyKind::kTwoPhase, options.net, options.msg_bytes,
                     options, nullptr);
  ASSERT_EQ(sched.form, StreamForm::kOrdered);
  ASSERT_NE(sched.stream.relay, RelayRule::kNone);
  sched.extra_deps = {{0, 1}};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "deps")) << report.to_string();
}

TEST(ScheduleLint, AcceptsDependenciesOnOrderedDirectSchedule) {
  const AlltoallOptions options = options_for("4x4x4", 300);
  CommSchedule sched = build_schedule(StrategyKind::kMpi, options.net,
                                      options.msg_bytes, options, nullptr);
  ASSERT_EQ(sched.form, StreamForm::kOrdered);
  ASSERT_EQ(sched.stream.relay, RelayRule::kNone);
  sched.extra_deps = {{0, 100}};  // acyclic, in range: executable
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ScheduleLint, RejectsOutOfRangeDependency) {
  CommSchedule sched = tiny_explicit_schedule();
  sched.extra_deps = {{0, 99}};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "deps")) << report.to_string();
}

TEST(ScheduleLint, RejectsBackwardsPhaseDependency) {
  // Two-phase variant: an edge from a phase-1 transfer back to a phase-0
  // transfer contradicts execution order.
  CommSchedule sched = tiny_explicit_schedule();
  sched.phases.push_back(sched.phases[0]);
  sched.ops[1].phase = 1;
  sched.extra_deps = {{1, 0}};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "deps")) << report.to_string();
}

TEST(ScheduleLint, RejectsOverlappingReservedFifoClasses) {
  CommSchedule sched = tiny_explicit_schedule();
  sched.injection_fifos = 8;
  sched.fifo_classes = {FifoClass{0, 5, FifoPolicy::kRoundRobin, true},
                        FifoClass{4, 4, FifoPolicy::kRoundRobin, true}};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "fifo-budget")) << report.to_string();
}

TEST(ScheduleLint, RejectsFifoClassOutsideHardwareRange) {
  CommSchedule sched = tiny_explicit_schedule();
  sched.injection_fifos = 4;
  sched.fifo_classes = {FifoClass{2, 6, FifoPolicy::kRoundRobin, false}};
  const LintReport report = schedule_lint(sched, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "fifo-budget")) << report.to_string();
}

TEST(ScheduleLint, RejectsDeadRelayUnderFaults) {
  // Claim coverage of a pair whose only listed transfer relays through a
  // dead node: the relay check must fire.
  AlltoallOptions options = options_for("4x1x1", 64);
  CommSchedule sched;
  sched.shape = options.net.shape;
  sched.torus = topo::Torus(sched.shape);
  sched.msg_bytes = 64;
  sched.form = StreamForm::kExplicit;
  PhaseSpec phase;
  phase.packets = rt::packetize(sched.msg_bytes, rt::WireFormat::direct());
  sched.phases.push_back(phase);
  sched.phases.push_back(phase);
  sched.fifo_classes.push_back(FifoClass{});
  // Node 0 hands its block to relay 1 (phase 0 is implicit in the pool
  // model: the relay's op lists node 0 as an original source); node 1
  // forwards to 2. Then kill node 1 with a fault plan.
  sched.covered = PairMask(4);
  for (topo::Rank s = 0; s < 4; ++s) {
    for (topo::Rank d = 0; d < 4; ++d) {
      if (s != d && !(s == 0 && d == 2)) sched.covered.set_unreachable(s, d);
    }
  }
  sched.finalize_pool = {0};
  SendOp op;
  op.dst = 2;
  op.phase = 1;
  op.finalize_begin = 0;
  op.finalize_count = 1;
  sched.ops.push_back(op);
  sched.op_begin = {0, 0, 1, 1, 1};

  net::NetworkConfig net = options.net;
  net.faults.node_fail = 1;
  net.faults.seed = 3;
  // Find a seed that kills node 1 specifically.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    net.faults.seed = seed;
    const net::FaultPlan probe(net, net.shape);
    if (!probe.node_alive(1) && probe.node_alive(0) && probe.node_alive(2)) break;
  }
  const net::FaultPlan plan(net, net.shape);
  ASSERT_FALSE(plan.node_alive(1));
  const LintReport report = schedule_lint(sched, &plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "relay")) << report.to_string();
}

// Golden transfer tables on a 4-node mesh (seed 5, 64 B): pins the schedule
// builders' destination orders, relay picks, phase and FIFO-class
// assignments. Regenerate with
//   schedule_lint --strategy <name> --shape 2x2x1 --size 64 --seed 5 --dump-csv
TEST(ScheduleLint, GoldenDumps) {
  AlltoallOptions options = options_for("2x2x1", 64);
  options.net.seed = 5;
  const struct {
    StrategyKind kind;
    const char* csv;
  } goldens[] = {
      {StrategyKind::kAdaptiveRandom,
       "transfer,phase,src,dst,relays,bytes,fifo_class\n"
       "0,0,0,2,,64,0\n"
       "1,0,0,1,,64,0\n"
       "2,0,0,3,,64,0\n"
       "3,0,1,2,,64,0\n"
       "4,0,1,3,,64,0\n"
       "5,0,1,0,,64,0\n"
       "6,0,2,0,,64,0\n"
       "7,0,2,1,,64,0\n"
       "8,0,2,3,,64,0\n"
       "9,0,3,0,,64,0\n"
       "10,0,3,1,,64,0\n"
       "11,0,3,2,,64,0\n"},
      {StrategyKind::kTwoPhase,
       "transfer,phase,src,dst,relays,bytes,fifo_class\n"
       "0,1,0,3,1,64,1\n"
       "1,1,0,2,,64,1\n"
       "2,0,0,1,,64,0\n"
       "3,1,1,3,,64,1\n"
       "4,1,1,2,0,64,1\n"
       "5,0,1,0,,64,0\n"
       "6,1,2,0,,64,1\n"
       "7,1,2,1,3,64,1\n"
       "8,0,2,3,,64,0\n"
       "9,1,3,1,,64,1\n"
       "10,0,3,2,,64,0\n"
       "11,1,3,0,2,64,1\n"},
      {StrategyKind::kVirtualMesh,
       "transfer,phase,src,dst,relays,bytes,fifo_class\n"
       "0,0,0,1,,64,0\n"
       "1,1,0,2,,64,0\n"
       "2,1,1,2,0,64,0\n"
       "3,0,1,0,,64,0\n"
       "4,1,0,3,1,64,0\n"
       "5,1,1,3,,64,0\n"
       "6,0,2,3,,64,0\n"
       "7,1,2,0,,64,0\n"
       "8,1,3,0,2,64,0\n"
       "9,0,3,2,,64,0\n"
       "10,1,2,1,3,64,0\n"
       "11,1,3,1,,64,0\n"},
  };
  for (const auto& golden : goldens) {
    SCOPED_TRACE(strategy_name(golden.kind));
    const CommSchedule sched =
        build_schedule(golden.kind, options.net, options.msg_bytes, options, nullptr);
    EXPECT_EQ(sched.to_csv(nullptr), golden.csv);
  }
}

TEST(ScheduleLint, DumpsMatchTransferCount) {
  const AlltoallOptions options = options_for("2x2x2", 96);
  for (const StrategyInfo& info : strategy_registry()) {
    SCOPED_TRACE(info.name);
    const CommSchedule sched =
        build_schedule(info.kind, options.net, options.msg_bytes, options, nullptr);
    const std::string csv = sched.to_csv(nullptr);
    const auto rows = static_cast<std::int64_t>(
        std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(rows, sched.transfer_count(nullptr) + 1);  // + header
    const std::string json = sched.to_json(nullptr);
    EXPECT_NE(json.find("\"transfers\""), std::string::npos);
  }
}

}  // namespace
}  // namespace bgl::coll
