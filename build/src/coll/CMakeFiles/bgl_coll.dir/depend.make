# Empty dependencies file for bgl_coll.
# This may be replaced when dependencies are built.
