file(REMOVE_RECURSE
  "libbgl_coll.a"
)
