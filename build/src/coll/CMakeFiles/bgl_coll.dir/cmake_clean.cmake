file(REMOVE_RECURSE
  "CMakeFiles/bgl_coll.dir/alltoall.cpp.o"
  "CMakeFiles/bgl_coll.dir/alltoall.cpp.o.d"
  "CMakeFiles/bgl_coll.dir/direct.cpp.o"
  "CMakeFiles/bgl_coll.dir/direct.cpp.o.d"
  "CMakeFiles/bgl_coll.dir/many_to_many.cpp.o"
  "CMakeFiles/bgl_coll.dir/many_to_many.cpp.o.d"
  "CMakeFiles/bgl_coll.dir/selector.cpp.o"
  "CMakeFiles/bgl_coll.dir/selector.cpp.o.d"
  "CMakeFiles/bgl_coll.dir/tps.cpp.o"
  "CMakeFiles/bgl_coll.dir/tps.cpp.o.d"
  "CMakeFiles/bgl_coll.dir/vmesh.cpp.o"
  "CMakeFiles/bgl_coll.dir/vmesh.cpp.o.d"
  "libbgl_coll.a"
  "libbgl_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
